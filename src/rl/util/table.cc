#include "rl/util/table.h"

#include <algorithm>
#include <iomanip>

#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::util {

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    rl_assert(!header.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rl_assert(cells.size() == header.size(),
              "row has ", cells.size(), " cells, expected ", header.size());
    body.push_back(std::move(cells));
}

std::string
TextTable::toCell(double value)
{
    // Pick a representation that keeps tables readable across the huge
    // dynamic ranges in the paper's log-scale figures.
    double magnitude = value < 0 ? -value : value;
    if (value == 0.0)
        return "0";
    if (magnitude >= 1e6 || magnitude < 1e-3)
        return format("%.3e", value);
    return compactDouble(value, 4);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : body)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ")
               << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << '\n';
    };

    emit(header);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : body)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << cells[c];
        os << '\n';
    };
    emit(header);
    for (const auto &row : body)
        emit(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << std::string(72, '=') << '\n'
       << "  " << title << '\n'
       << std::string(72, '=') << '\n';
}

} // namespace racelogic::util
