/**
 * @file
 * Incremental FNV-1a hashing over 64-bit words.
 *
 * The one fingerprint primitive shared by everything that keys caches
 * on content identity (api plan shape keys, variation-graph topology
 * fingerprints).  Keeping a single implementation matters: two
 * divergent mixes would silently decouple fingerprints that tests
 * and the plan cache expect to agree.
 */

#ifndef RACELOGIC_UTIL_FNV_H
#define RACELOGIC_UTIL_FNV_H

#include <cstdint>

namespace racelogic::util {

/** Incremental FNV-1a over 64-bit words. */
struct Fnv {
    uint64_t h = 1469598103934665603ull;

    void
    mix(uint64_t v)
    {
        h ^= v;
        h *= 1099511628211ull;
    }
};

} // namespace racelogic::util

#endif // RACELOGIC_UTIL_FNV_H
