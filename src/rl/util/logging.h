/**
 * @file
 * Unconditional error reporting in the gem5 idiom.
 *
 * The error spine has three tiers; this header holds the two that
 * stop the process, rl/util/status.h the one that does not:
 *
 *  - panic():      an internal invariant of the library itself was
 *                  violated (a bug in this code).  Aborts so a
 *                  debugger or core dump can capture the state.
 *  - fatal():      the caller asked for something impossible at the
 *                  command line or in a config.  Exits cleanly with a
 *                  nonzero status.  Input-facing library paths must
 *                  NOT call this directly: they return rl::Status /
 *                  rl::Expected<T>, and the legacy fatal entry points
 *                  are thin valueOrFatal()/orFatal() wrappers kept
 *                  for CLI tools and examples (docs/errors.md).
 *  - rl::Status:   every failure an *input* can trigger -- parse
 *                  errors, invalid matrices/graphs, resource budgets
 *                  -- is returned, not raised, so a serving daemon
 *                  bounces the one bad request and keeps running.
 *
 * warn() / inform() print advisory messages and never stop execution.
 */

#ifndef RACELOGIC_UTIL_LOGGING_H
#define RACELOGIC_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace racelogic::util {

/** Verbosity gate for inform(); warnings and errors always print. */
enum class LogLevel { Silent, Warnings, Info };

/** Set the global verbosity; returns the previous level. */
LogLevel setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** @{ Internal sinks used by the macros below. Not for direct use. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);
/** @} */

namespace detail {

/** Fold an arbitrary argument pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace racelogic::util

/** Abort on a broken internal invariant (library bug). */
#define rl_panic(...)                                                       \
    ::racelogic::util::panicImpl(                                           \
        __FILE__, __LINE__, ::racelogic::util::detail::concat(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define rl_fatal(...)                                                       \
    ::racelogic::util::fatalImpl(                                           \
        __FILE__, __LINE__, ::racelogic::util::detail::concat(__VA_ARGS__))

/** Print a warning (suspect but survivable condition). */
#define rl_warn(...)                                                        \
    ::racelogic::util::warnImpl(::racelogic::util::detail::concat(__VA_ARGS__))

/** Print an informational status message (gated by LogLevel::Info). */
#define rl_inform(...)                                                      \
    ::racelogic::util::informImpl(                                          \
        ::racelogic::util::detail::concat(__VA_ARGS__))

/** panic() unless the stated library invariant holds. */
#define rl_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            rl_panic("assertion '" #cond "' failed. ",                     \
                     ::racelogic::util::detail::concat(__VA_ARGS__));       \
        }                                                                   \
    } while (0)

/**
 * Debug-only twin of rl_assert for per-element checks on hot paths
 * (e.g. net-id bounds in the simulation kernels): compiled out under
 * NDEBUG, where the check would cost measurable throughput.
 */
#ifdef NDEBUG
#define rl_dassert(cond, ...)                                               \
    do {                                                                    \
    } while (0)
#else
#define rl_dassert(cond, ...) rl_assert(cond, __VA_ARGS__)
#endif

#endif // RACELOGIC_UTIL_LOGGING_H
