/**
 * @file
 * A minimal dense 2-D array.
 *
 * Used for DP score tables, wavefront maps, and clock-gating region
 * bookkeeping.  Row-major, bounds-checked in debug via rl_assert.
 */

#ifndef RACELOGIC_UTIL_GRID_H
#define RACELOGIC_UTIL_GRID_H

#include <vector>

#include "rl/util/logging.h"

namespace racelogic::util {

/** Dense row-major rows x cols matrix of T. */
template <typename T>
class Grid
{
  public:
    Grid() = default;

    /** rows x cols cells, all initialized to `fill`. */
    Grid(size_t rows, size_t cols, const T &fill = T())
        : numRows(rows), numCols(cols), cells(rows * cols, fill)
    {}

    size_t rows() const { return numRows; }
    size_t cols() const { return numCols; }
    size_t size() const { return cells.size(); }
    bool empty() const { return cells.empty(); }

    T &
    at(size_t r, size_t c)
    {
        rl_assert(r < numRows && c < numCols, "Grid index (", r, ",", c,
                  ") out of ", numRows, "x", numCols);
        return cells[r * numCols + c];
    }

    const T &
    at(size_t r, size_t c) const
    {
        rl_assert(r < numRows && c < numCols, "Grid index (", r, ",", c,
                  ") out of ", numRows, "x", numCols);
        return cells[r * numCols + c];
    }

    T &operator()(size_t r, size_t c) { return at(r, c); }
    const T &operator()(size_t r, size_t c) const { return at(r, c); }

    /** Set every cell to `value`. */
    void
    fill(const T &value)
    {
        for (T &cell : cells)
            cell = value;
    }

    /** Flat row-major storage (for iteration / serialization). */
    const std::vector<T> &flat() const { return cells; }

    bool
    operator==(const Grid &other) const
    {
        return numRows == other.numRows && numCols == other.numCols &&
               cells == other.cells;
    }

  private:
    size_t numRows = 0;
    size_t numCols = 0;
    std::vector<T> cells;
};

} // namespace racelogic::util

#endif // RACELOGIC_UTIL_GRID_H
