/**
 * @file
 * A small fixed-size worker pool for embarrassingly parallel batches.
 *
 * The race-logic workloads that want threads are batch shaped: many
 * independent comparisons, each touching only its own state, with the
 * results collected by input index.  parallelFor() covers exactly
 * that: workers pull indices off a shared atomic counter, so the
 * schedule is dynamic but the output is deterministic -- result i is
 * whatever body(i) computes, regardless of which thread ran it or in
 * what order.  api::RaceEngine uses this to race solveBatch()/
 * screen() comparisons across cores before handing the cycle counts
 * to the core::batch fabric-pool scheduler.
 */

#ifndef RACELOGIC_UTIL_THREAD_POOL_H
#define RACELOGIC_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace racelogic::util {

/**
 * N long-lived worker threads executing parallelFor() bodies.
 *
 * The pool is cheap to keep around (idle workers block on a condition
 * variable) and is meant to be constructed once per engine, not per
 * batch.  parallelFor() may be called repeatedly; calls do not nest
 * and the pool expects one caller at a time.
 */
class ThreadPool
{
  public:
    /**
     * Spawn `threads` workers; 0 picks defaultThreadCount().  The
     * worker count is the batch parallelism -- the calling thread
     * only coordinates.
     */
    explicit ThreadPool(size_t threads = 0);

    /** Joins all workers (any running parallelFor completes first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker threads owned by the pool. */
    size_t threadCount() const { return workerCount; }

    /**
     * Run body(0) .. body(count-1), distributing indices over the
     * workers; returns when every index has completed.  Bodies must
     * not call back into the pool.  If any body throws, every index
     * still completes (later bodies keep running) and the *first*
     * exception is rethrown here on the calling thread -- a throwing
     * body terminates the batch's caller, never the process.
     */
    void parallelFor(size_t count,
                     const std::function<void(size_t)> &body);

    /**
     * Stop the workers and join them; after this the pool is dead
     * and parallelFor() must not be called again.  Idempotent with
     * the destructor (which only joins if this was never called) but
     * deliberately NOT with itself: a second explicit shutdown is a
     * lifecycle bug in the caller and panics.  The serve daemon
     * calls this on SIGTERM to guarantee every drained request
     * finished before the process exits.
     */
    void shutdownAndJoin();

    /** hardware_concurrency with a floor of 1. */
    static size_t defaultThreadCount();

  private:
    void workerLoop();

    // Fixed before any worker starts; workers must not touch the
    // `workers` vector itself (it is still growing as they spawn).
    size_t workerCount = 0;
    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable wakeWorkers; ///< new batch / shutdown
    std::condition_variable allParked;   ///< every worker back in wait
    std::condition_variable batchDone;   ///< all indices completed

    // Current-batch state, guarded by `mutex` except for the index
    // counter, which workers claim lock-free.  A new batch is only
    // published while every worker is parked, so no worker can hold a
    // stale body pointer or index bound across batches.
    const std::function<void(size_t)> *body = nullptr;
    size_t count = 0;
    std::atomic<size_t> nextIndex{0};
    size_t completed = 0;
    size_t parked = 0;
    uint64_t generation = 0;
    bool shutdown = false;

    /** First exception thrown by a body this batch (rethrown by
     *  parallelFor); later exceptions in the same batch are dropped. */
    std::exception_ptr batchException;
};

} // namespace racelogic::util

#endif // RACELOGIC_UTIL_THREAD_POOL_H
