/**
 * @file
 * Aligned text tables and CSV emission for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's figures as a table
 * of rows/series.  TextTable renders those tables with aligned columns
 * for terminals and can additionally emit CSV so the data can be
 * re-plotted.
 */

#ifndef RACELOGIC_UTIL_TABLE_H
#define RACELOGIC_UTIL_TABLE_H

#include <initializer_list>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace racelogic::util {

/** A column-aligned table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: build a row from heterogeneous printable values. */
    template <typename... Cells>
    void
    row(Cells &&...cells)
    {
        addRow({toCell(std::forward<Cells>(cells))...});
    }

    /** Number of data rows. */
    size_t rows() const { return body.size(); }

    /** Render with aligned columns and a rule under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

  private:
    static std::string toCell(const std::string &value) { return value; }
    static std::string toCell(const char *value) { return value; }
    static std::string toCell(double value);
    static std::string toCell(float value) { return toCell(double(value)); }

    template <typename T>
    static std::string
    toCell(T value)
        requires std::is_integral_v<T>
    {
        return std::to_string(value);
    }

    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

/** Print a section banner used between bench sub-experiments. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace racelogic::util

#endif // RACELOGIC_UTIL_TABLE_H
