/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the library (workload generators,
 * property tests, random DAGs) draws from an explicitly seeded Rng so
 * that all experiments are exactly reproducible.  The generator is
 * xoshiro256** seeded through SplitMix64, which is both fast and has
 * no observable bias for the small-range draws used here.
 */

#ifndef RACELOGIC_UTIL_RANDOM_H
#define RACELOGIC_UTIL_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace racelogic::util {

/**
 * SplitMix64: a tiny 64-bit mixing generator.
 *
 * Used to expand one user seed into the four words of xoshiro state;
 * also usable standalone for hashing-style mixing.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** Next 64-bit output. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state;
};

/**
 * Seedable pseudo-random source (xoshiro256**).
 *
 * Satisfies the subset of the UniformRandomBitGenerator concept the
 * library needs, plus convenience draws for common distributions.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a single 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5eedDEADbeefULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~uint64_t(0); }

    /** Raw 64 random bits. */
    uint64_t operator()() { return next(); }

    /** Raw 64 random bits. */
    uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform size_t in [0, n). Requires n > 0. */
    size_t index(size_t n);

    /** Uniform real in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[index(v.size())];
    }

    /** Fisher-Yates shuffle in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = index(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Fork a statistically independent child generator. */
    Rng split();

  private:
    uint64_t s[4];
};

} // namespace racelogic::util

#endif // RACELOGIC_UTIL_RANDOM_H
