#include "rl/util/random.h"

#include "rl/util/logging.h"

namespace racelogic::util {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    SplitMix64 mixer(seed);
    for (auto &word : s)
        word = mixer.next();
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    rl_assert(lo <= hi, "uniformInt bounds reversed: ", lo, " > ", hi);
    uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = max() - max() % span;
    uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<int64_t>(draw % span);
}

size_t
Rng::index(size_t n)
{
    rl_assert(n > 0, "index() requires a non-empty range");
    return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(n) - 1));
}

double
Rng::uniformReal()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
}

} // namespace racelogic::util
