/**
 * @file
 * Small bit-manipulation helpers used when sizing hardware structures
 * (counter widths, one-hot vs binary encodings, H-tree levels).
 */

#ifndef RACELOGIC_UTIL_BITOPS_H
#define RACELOGIC_UTIL_BITOPS_H

#include <cstdint>

namespace racelogic::util {

/** True iff x is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)) for x >= 1. */
constexpr unsigned
log2Floor(uint64_t x)
{
    unsigned result = 0;
    while (x >>= 1)
        ++result;
    return result;
}

/** ceil(log2(x)) for x >= 1; log2Ceil(1) == 0. */
constexpr unsigned
log2Ceil(uint64_t x)
{
    return x <= 1 ? 0 : log2Floor(x - 1) + 1;
}

/**
 * Number of flip-flop bits needed by a register that must represent
 * values 0..max_value inclusive.
 */
constexpr unsigned
bitsForValue(uint64_t max_value)
{
    return max_value == 0 ? 1 : log2Floor(max_value) + 1;
}

/** Smallest power of two >= x (x >= 1). */
constexpr uint64_t
nextPowerOfTwo(uint64_t x)
{
    return uint64_t(1) << log2Ceil(x);
}

/** Integer ceiling division for non-negative operands. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace racelogic::util

#endif // RACELOGIC_UTIL_BITOPS_H
