#include "rl/util/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace racelogic::util {

std::vector<std::string>
split(const std::string &text, char delimiter)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(delimiter, start);
        if (pos == std::string::npos) {
            fields.push_back(text.substr(start));
            return fields;
        }
        fields.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trim(const std::string &text)
{
    const char *ws = " \t\r\n";
    size_t begin = text.find_first_not_of(ws);
    if (begin == std::string::npos)
        return "";
    size_t end = text.find_last_not_of(ws);
    return text.substr(begin, end - begin + 1);
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

std::string
siFormat(double value, const std::string &unit, int significant)
{
    static const struct { double scale; const char *prefix; } bands[] = {
        { 1e12, "T" }, { 1e9, "G" }, { 1e6, "M" }, { 1e3, "k" },
        { 1.0,  ""  }, { 1e-3, "m" }, { 1e-6, "u" }, { 1e-9, "n" },
        { 1e-12, "p" }, { 1e-15, "f" }, { 1e-18, "a" },
    };
    if (value == 0.0)
        return "0" + unit;
    double magnitude = std::fabs(value);
    for (const auto &band : bands) {
        if (magnitude >= band.scale) {
            double scaled = value / band.scale;
            return compactDouble(scaled, significant) + band.prefix + unit;
        }
    }
    return compactDouble(value, significant) + unit;
}

std::string
compactDouble(double value, int max_decimals)
{
    std::string out = format("%.*f", max_decimals, value);
    if (out.find('.') == std::string::npos)
        return out;
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.')
        --last;
    return out.substr(0, last + 1);
}

} // namespace racelogic::util
