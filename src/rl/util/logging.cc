#include "rl/util/logging.h"

#include <cstdlib>
#include <iostream>

namespace racelogic::util {

namespace {

LogLevel globalLevel = LogLevel::Warnings;

} // namespace

LogLevel
setLogLevel(LogLevel level)
{
    LogLevel old = globalLevel;
    globalLevel = level;
    return old;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "panic: " << message << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "fatal: " << message << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &message)
{
    if (globalLevel >= LogLevel::Warnings)
        std::cerr << "warn: " << message << std::endl;
}

void
informImpl(const std::string &message)
{
    if (globalLevel >= LogLevel::Info)
        std::cerr << "info: " << message << std::endl;
}

} // namespace racelogic::util
