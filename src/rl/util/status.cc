#include "rl/util/status.h"

namespace racelogic {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Ok:
        return "ok";
    case ErrorCode::InvalidArgument:
        return "invalid-argument";
    case ErrorCode::ParseError:
        return "parse-error";
    case ErrorCode::Unsupported:
        return "unsupported";
    case ErrorCode::NotFound:
        return "not-found";
    case ErrorCode::Oversized:
        return "oversized";
    case ErrorCode::ResourceExhausted:
        return "resource-exhausted";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(errorCodeName(code_)) + ": " + message_;
}

} // namespace racelogic
