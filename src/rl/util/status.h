/**
 * @file
 * The recoverable half of the error spine: rl::Status / rl::Expected.
 *
 * rl/util/logging.h keeps the two unconditional stops (rl_panic for
 * library bugs, rl_fatal for command-line tools); everything an
 * *input* can trigger -- malformed FASTA/GFA bytes, a matrix that is
 * not race-ready, a plan the substrate cannot realize, a request over
 * a resource budget -- returns a typed Status instead, so a daemon
 * can bounce the one bad request and keep serving.
 *
 * The contract, layer by layer:
 *
 *  - parsers and validators return Status / Expected<T> ("try" APIs);
 *  - the legacy fatal entry points survive as thin wrappers that call
 *    valueOrFatal()/orFatal() -- one line each, for CLI tools and
 *    examples where exit(1) with the same message is the right UX;
 *  - rl_panic / rl_assert remain for invariants no input can reach.
 *
 * ErrorCode is deliberately small and wire-stable: racelogic::serve
 * maps each code to exactly one wire status (see serve/wire.h), so a
 * new failure mode means picking an existing code, not growing the
 * protocol.
 */

#ifndef RACELOGIC_UTIL_STATUS_H
#define RACELOGIC_UTIL_STATUS_H

#include <optional>
#include <string>
#include <utility>

#include "rl/util/logging.h"

namespace racelogic {

/** Coarse, wire-stable classification of recoverable failures. */
enum class ErrorCode : uint8_t {
    Ok = 0,
    /** Well-formed input that violates a semantic precondition. */
    InvalidArgument = 1,
    /** Bytes/text that do not parse as the claimed format. */
    ParseError = 2,
    /** Valid input the race substrate cannot realize (e.g. a cyclic
     *  graph, reverse-strand GFA links, weights past the calendar). */
    Unsupported = 3,
    /** A named thing (file, GFA segment) does not exist. */
    NotFound = 4,
    /** Input larger than an admission limit (sequence/batch caps). */
    Oversized = 5,
    /** A compute/memory budget would be exceeded (product states,
     *  grid cells, arenas) -- the request is valid but too expensive. */
    ResourceExhausted = 6,
};

/** Stable lowercase name for an ErrorCode ("invalid-argument"...). */
const char *errorCodeName(ErrorCode code);

/**
 * One recoverable verdict: an ErrorCode plus a human-readable message
 * (same prose the old rl_fatal sites printed).  Default-constructed
 * Status is Ok.  [[nodiscard]] because a dropped Status is exactly
 * the silent-corruption bug this type exists to prevent.
 */
class [[nodiscard]] Status
{
  public:
    Status() = default; // Ok

    /** Build an error Status; message parts are folded via op<<. */
    template <typename... Args>
    static Status error(ErrorCode code, Args &&...parts)
    {
        rl_assert(code != ErrorCode::Ok,
                  "Status::error() needs a non-Ok code");
        Status s;
        s.code_ = code;
        s.message_ = util::detail::concat(std::forward<Args>(parts)...);
        return s;
    }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "<code-name>: <message>" (or "ok") for logs and tests. */
    std::string toString() const;

    /**
     * The CLI adapter: no-op when Ok, rl_fatal(message) otherwise.
     * This is the only sanctioned way back from Status to exit(1).
     */
    void orFatal() const
    {
        if (!ok())
            rl_fatal(message_);
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * Value-or-Status.  Holds T on success, a non-Ok Status on failure.
 * Converting constructors keep the "try" APIs readable:
 *
 *   Expected<Graph> tryReadGfa(...) {
 *       if (bad) return Status::error(ErrorCode::ParseError, ...);
 *       return graph;
 *   }
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}

    Expected(Status status) : status_(std::move(status))
    {
        rl_assert(!status_.ok(),
                  "Expected<T> from a Status requires a non-Ok status");
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    T &value()
    {
        rl_assert(ok(), "value() on an error Expected: ",
                  status_.message());
        return *value_;
    }
    const T &value() const
    {
        rl_assert(ok(), "value() on an error Expected: ",
                  status_.message());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** The CLI adapter: the value, or rl_fatal with the message. */
    T valueOrFatal() &&
    {
        if (!ok())
            rl_fatal(status_.message());
        return std::move(*value_);
    }

  private:
    std::optional<T> value_;
    Status status_; // Ok iff value_ holds
};

} // namespace racelogic

/** The short spelling used throughout docs and call sites. */
namespace rl = racelogic;

#endif // RACELOGIC_UTIL_STATUS_H
