/**
 * @file
 * Minimal string helpers shared by the table writer, benches, and
 * examples.  Kept deliberately tiny; anything heavier should use the
 * standard library directly.
 */

#ifndef RACELOGIC_UTIL_STRINGS_H
#define RACELOGIC_UTIL_STRINGS_H

#include <string>
#include <vector>

namespace racelogic::util {

/** Split on a single character delimiter; keeps empty fields. */
std::vector<std::string> split(const std::string &text, char delimiter);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Engineering notation with an SI suffix, e.g. 2.65e-9 -> "2.65n".
 * Used for human-readable bench output (areas, energies, times).
 */
std::string siFormat(double value, const std::string &unit,
                     int significant = 3);

/** Fixed-precision decimal without trailing zeros, e.g. 3.1400 -> 3.14. */
std::string compactDouble(double value, int max_decimals = 4);

} // namespace racelogic::util

#endif // RACELOGIC_UTIL_STRINGS_H
