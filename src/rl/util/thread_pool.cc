#include "rl/util/thread_pool.h"

#include "rl/util/logging.h"

namespace racelogic::util {

size_t
ThreadPool::defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workerCount = threads;
    workers.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    // Explicit shutdownAndJoin() already emptied `workers`; joining
    // here again would be a no-op loop over nothing.
    if (!workers.empty())
        shutdownAndJoin();
}

void
ThreadPool::shutdownAndJoin()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        rl_assert(!shutdown,
                  "ThreadPool already shut down; a second explicit "
                  "shutdownAndJoin() is a caller lifecycle bug");
        shutdown = true;
    }
    wakeWorkers.notify_all();
    for (std::thread &worker : workers)
        worker.join();
    workers.clear();
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        ++parked;
        if (parked == workerCount)
            allParked.notify_one();
        wakeWorkers.wait(lock,
                         [&] { return shutdown || generation != seen; });
        --parked;
        if (shutdown)
            return;
        seen = generation;
        const std::function<void(size_t)> *fn = body;
        const size_t total = count;

        lock.unlock();
        size_t done = 0;
        std::exception_ptr firstHere;
        for (;;) {
            size_t i = nextIndex.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                break;
            try {
                (*fn)(i);
            } catch (...) {
                // Record and keep claiming: the batch's completion
                // accounting must reach `count` even on failure, and
                // sibling indices may legitimately succeed.
                if (!firstHere)
                    firstHere = std::current_exception();
            }
            ++done;
        }
        lock.lock();

        if (firstHere && !batchException)
            batchException = firstHere;
        completed += done;
        if (completed == count)
            batchDone.notify_one();
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &loopBody)
{
    if (n == 0)
        return;
    if (workerCount == 0) {
        for (size_t i = 0; i < n; ++i)
            loopBody(i);
        return;
    }

    std::unique_lock<std::mutex> lock(mutex);
    rl_assert(!shutdown,
              "parallelFor() on a ThreadPool that was shut down");
    // Publish the batch only once every worker is back in wait():
    // a straggler from the previous batch could otherwise claim the
    // reset index counter against its stale body pointer.
    allParked.wait(lock, [&] { return parked == workerCount; });
    body = &loopBody;
    count = n;
    completed = 0;
    batchException = nullptr;
    nextIndex.store(0, std::memory_order_relaxed);
    ++generation;
    wakeWorkers.notify_all();

    batchDone.wait(lock, [&] { return completed == count; });
    body = nullptr;
    if (batchException) {
        std::exception_ptr rethrow = batchException;
        batchException = nullptr;
        lock.unlock();
        std::rethrow_exception(rethrow);
    }
}

} // namespace racelogic::util
