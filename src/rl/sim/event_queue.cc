#include "rl/sim/event_queue.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::sim {

void
EventQueue::schedule(Tick when, Callback callback, int priority)
{
    rl_assert(when >= currentTick,
              "scheduling into the past: ", when, " < ", currentTick);
    heap.push_back(Entry{when, priority, nextSequence++,
                         std::move(callback)});
    std::push_heap(heap.begin(), heap.end(), Later{});
}

EventQueue::Entry
EventQueue::popTop()
{
    std::pop_heap(heap.begin(), heap.end(), Later{});
    Entry entry = std::move(heap.back());
    heap.pop_back();
    return entry;
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // Move out of the queue before firing: the callback may schedule.
    Entry entry = popTop();
    currentTick = entry.when;
    ++firedCount;
    entry.callback();
    return true;
}

size_t
EventQueue::run(size_t limit)
{
    size_t n = 0;
    while (n < limit && step())
        ++n;
    return n;
}

size_t
EventQueue::runUntil(Tick horizon)
{
    size_t n = 0;
    while (!heap.empty() && top().when <= horizon) {
        step();
        ++n;
    }
    if (currentTick < horizon)
        currentTick = horizon;
    return n;
}

void
EventQueue::reset()
{
    heap.clear();
    currentTick = 0;
    firedCount = 0;
}

} // namespace racelogic::sim
