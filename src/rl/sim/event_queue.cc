#include "rl/sim/event_queue.h"

#include "rl/util/logging.h"

namespace racelogic::sim {

void
EventQueue::schedule(Tick when, Callback callback, int priority)
{
    rl_assert(when >= currentTick,
              "scheduling into the past: ", when, " < ", currentTick);
    heap.push(Entry{when, priority, nextSequence++, std::move(callback)});
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // Move out of the queue before firing: the callback may schedule.
    Entry entry = heap.top();
    heap.pop();
    currentTick = entry.when;
    ++firedCount;
    entry.callback();
    return true;
}

size_t
EventQueue::run(size_t limit)
{
    size_t n = 0;
    while (n < limit && step())
        ++n;
    return n;
}

size_t
EventQueue::runUntil(Tick horizon)
{
    size_t n = 0;
    while (!heap.empty() && heap.top().when <= horizon) {
        step();
        ++n;
    }
    if (currentTick < horizon)
        currentTick = horizon;
    return n;
}

void
EventQueue::reset()
{
    heap = {};
    currentTick = 0;
    firedCount = 0;
}

} // namespace racelogic::sim
