/**
 * @file
 * Statistics collection for simulations and benches.
 *
 * Provides the handful of aggregates the reproduction needs: running
 * scalar summaries, integer histograms, and an ordinary-least-squares
 * polynomial fit.  The fit is what regenerates the paper's Eq. 5
 * (energy-vs-N polynomials fitted to simulated points).
 */

#ifndef RACELOGIC_SIM_STATS_H
#define RACELOGIC_SIM_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace racelogic::sim {

/** Running scalar summary: count / min / max / mean / stddev. */
class RunningStats
{
  public:
    /** Fold one sample into the summary. */
    void add(double sample);

    uint64_t count() const { return n; }
    double min() const;
    double max() const;
    double mean() const;
    /** Population variance (0 for fewer than 2 samples). */
    double variance() const;
    double stddev() const;
    double sum() const { return total; }

    /** Merge another summary into this one. */
    void merge(const RunningStats &other);

  private:
    uint64_t n = 0;
    double total = 0.0;
    double m2 = 0.0;      // sum of squared deviations (Welford)
    double mu = 0.0;      // running mean (Welford)
    double lo = 0.0;
    double hi = 0.0;
};

/** Sparse integer histogram. */
class Histogram
{
  public:
    void add(int64_t value, uint64_t weight = 1);

    uint64_t count() const { return n; }
    uint64_t at(int64_t value) const;
    int64_t minValue() const;
    int64_t maxValue() const;
    double mean() const;

    /** Value v such that >= fraction of mass is <= v (fraction in (0,1]). */
    int64_t percentile(double fraction) const;

    /** Iterate buckets in increasing value order. */
    const std::map<int64_t, uint64_t> &buckets() const { return counts; }

  private:
    std::map<int64_t, uint64_t> counts;
    uint64_t n = 0;
};

/**
 * Ordinary least squares fit of y = sum_k c[k] * x^k.
 *
 * @param xs      Sample abscissae.
 * @param ys      Sample ordinates (same length as xs).
 * @param degree  Highest power of x in the model.
 * @return Coefficients c[0..degree], constant term first.
 *
 * Used to regenerate the paper's Eq. 5 coefficients from simulated
 * energy points.  Solves the normal equations by Gaussian elimination
 * with partial pivoting, which is ample for degree <= 4 fits.
 */
std::vector<double> polyFit(const std::vector<double> &xs,
                            const std::vector<double> &ys,
                            unsigned degree);

/**
 * Constrained monomial fit y = sum_{k in powers} c[k] * x^k.
 *
 * The paper fits energy to exactly aN^3 + bN^2 (no constant or linear
 * term); this variant reproduces that model family directly.
 */
std::vector<double> monomialFit(const std::vector<double> &xs,
                                const std::vector<double> &ys,
                                const std::vector<unsigned> &powers);

/** Evaluate a polyFit-style coefficient vector at x. */
double polyEval(const std::vector<double> &coefficients, double x);

/** Coefficient of determination R^2 for predictions vs observations. */
double rSquared(const std::vector<double> &observed,
                const std::vector<double> &predicted);

} // namespace racelogic::sim

#endif // RACELOGIC_SIM_STATS_H
