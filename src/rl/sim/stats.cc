#include "rl/sim/stats.h"

#include <algorithm>
#include <cmath>

#include "rl/util/logging.h"

namespace racelogic::sim {

void
RunningStats::add(double sample)
{
    if (n == 0) {
        lo = hi = sample;
    } else {
        lo = std::min(lo, sample);
        hi = std::max(hi, sample);
    }
    ++n;
    total += sample;
    double delta = sample - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (sample - mu);
}

double
RunningStats::min() const
{
    rl_assert(n > 0, "min of empty stats");
    return lo;
}

double
RunningStats::max() const
{
    rl_assert(n > 0, "max of empty stats");
    return hi;
}

double
RunningStats::mean() const
{
    rl_assert(n > 0, "mean of empty stats");
    return mu;
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    uint64_t combined = n + other.n;
    double delta = other.mu - mu;
    double new_mu = mu + delta * static_cast<double>(other.n) /
                             static_cast<double>(combined);
    m2 = m2 + other.m2 +
         delta * delta * static_cast<double>(n) *
             static_cast<double>(other.n) / static_cast<double>(combined);
    mu = new_mu;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    n = combined;
}

void
Histogram::add(int64_t value, uint64_t weight)
{
    counts[value] += weight;
    n += weight;
}

uint64_t
Histogram::at(int64_t value) const
{
    auto it = counts.find(value);
    return it == counts.end() ? 0 : it->second;
}

int64_t
Histogram::minValue() const
{
    rl_assert(n > 0, "minValue of empty histogram");
    return counts.begin()->first;
}

int64_t
Histogram::maxValue() const
{
    rl_assert(n > 0, "maxValue of empty histogram");
    return counts.rbegin()->first;
}

double
Histogram::mean() const
{
    rl_assert(n > 0, "mean of empty histogram");
    double acc = 0.0;
    for (const auto &[value, weight] : counts)
        acc += static_cast<double>(value) * static_cast<double>(weight);
    return acc / static_cast<double>(n);
}

int64_t
Histogram::percentile(double fraction) const
{
    rl_assert(n > 0, "percentile of empty histogram");
    rl_assert(fraction > 0.0 && fraction <= 1.0,
              "fraction out of range: ", fraction);
    uint64_t needed = static_cast<uint64_t>(
        std::ceil(fraction * static_cast<double>(n)));
    uint64_t seen = 0;
    for (const auto &[value, weight] : counts) {
        seen += weight;
        if (seen >= needed)
            return value;
    }
    return counts.rbegin()->first;
}

namespace {

/**
 * Solve the square system a*x = b in place by Gaussian elimination
 * with partial pivoting.  Sizes here are tiny (<= 5), so numerical
 * sophistication beyond pivoting is unnecessary.
 */
std::vector<double>
solveLinear(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const size_t n = a.size();
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r)
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                pivot = r;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        rl_assert(std::fabs(a[col][col]) > 1e-30,
                  "singular system in polynomial fit");
        for (size_t r = col + 1; r < n; ++r) {
            double factor = a[r][col] / a[col][col];
            for (size_t c = col; c < n; ++c)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }
    std::vector<double> x(n);
    for (size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (size_t c = i + 1; c < n; ++c)
            acc -= a[i][c] * x[c];
        x[i] = acc / a[i][i];
    }
    return x;
}

} // namespace

std::vector<double>
polyFit(const std::vector<double> &xs, const std::vector<double> &ys,
        unsigned degree)
{
    std::vector<unsigned> powers(degree + 1);
    for (unsigned k = 0; k <= degree; ++k)
        powers[k] = k;
    return monomialFit(xs, ys, powers);
}

std::vector<double>
monomialFit(const std::vector<double> &xs, const std::vector<double> &ys,
            const std::vector<unsigned> &powers)
{
    rl_assert(xs.size() == ys.size(), "mismatched fit inputs");
    rl_assert(xs.size() >= powers.size(),
              "need at least as many points as model terms");
    const size_t terms = powers.size();
    std::vector<std::vector<double>> normal(terms,
                                            std::vector<double>(terms, 0.0));
    std::vector<double> rhs(terms, 0.0);
    for (size_t i = 0; i < xs.size(); ++i) {
        std::vector<double> basis(terms);
        for (size_t t = 0; t < terms; ++t)
            basis[t] = std::pow(xs[i], powers[t]);
        for (size_t r = 0; r < terms; ++r) {
            rhs[r] += basis[r] * ys[i];
            for (size_t c = 0; c < terms; ++c)
                normal[r][c] += basis[r] * basis[c];
        }
    }
    std::vector<double> solution = solveLinear(std::move(normal),
                                               std::move(rhs));
    // Re-expand into a dense coefficient vector indexed by power.
    unsigned max_power = 0;
    for (unsigned p : powers)
        max_power = std::max(max_power, p);
    std::vector<double> dense(max_power + 1, 0.0);
    for (size_t t = 0; t < terms; ++t)
        dense[powers[t]] = solution[t];
    return dense;
}

double
polyEval(const std::vector<double> &coefficients, double x)
{
    double acc = 0.0;
    for (size_t k = coefficients.size(); k-- > 0;)
        acc = acc * x + coefficients[k];
    return acc;
}

double
rSquared(const std::vector<double> &observed,
         const std::vector<double> &predicted)
{
    rl_assert(observed.size() == predicted.size() && !observed.empty(),
              "mismatched rSquared inputs");
    double mean = 0.0;
    for (double y : observed)
        mean += y;
    mean /= static_cast<double>(observed.size());
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (size_t i = 0; i < observed.size(); ++i) {
        double r = observed[i] - predicted[i];
        double d = observed[i] - mean;
        ss_res += r * r;
        ss_tot += d * d;
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace racelogic::sim
