/**
 * @file
 * Tick-based discrete-event simulation kernel.
 *
 * Race Logic is fundamentally about *when* signals arrive, so the
 * natural simulation substrate is discrete-event: the event-driven
 * race-network solver and the asynchronous variants schedule arrival
 * events on this queue, while the synchronous gate-level simulator
 * uses it for clock-edge sequencing.
 *
 * Ticks are dimensionless; in synchronous Race Logic one tick is one
 * clock cycle, and the technology model (rl/tech) converts cycles to
 * nanoseconds per standard-cell library.
 */

#ifndef RACELOGIC_SIM_EVENT_QUEUE_H
#define RACELOGIC_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <vector>

namespace racelogic::sim {

/** Simulation time in abstract ticks (clock cycles when synchronous). */
using Tick = uint64_t;

/** Sentinel for "never happens" / unreachable. */
constexpr Tick kTickInfinity = ~Tick(0);

/**
 * A priority queue of timestamped callbacks with deterministic
 * tie-breaking.
 *
 * Events scheduled for the same tick fire in (priority, insertion
 * order), which keeps simulations bit-reproducible regardless of the
 * underlying heap behaviour.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Number of events not yet fired. */
    size_t pending() const { return heap.size(); }

    /**
     * Pre-size the underlying storage for `capacity` pending events.
     * Callers that know the event population up front (a race
     * schedules at most one arrival per edge) avoid every heap
     * reallocation on the hot path.
     */
    void reserve(size_t capacity) { heap.reserve(capacity); }

    /**
     * Schedule a callback.
     *
     * @param when      Absolute tick; must be >= now().
     * @param callback  Work to run at that tick.
     * @param priority  Lower fires first within a tick.
     */
    void schedule(Tick when, Callback callback, int priority = 0);

    /** Schedule relative to now(). */
    void
    scheduleIn(Tick delay, Callback callback, int priority = 0)
    {
        schedule(currentTick + delay, std::move(callback), priority);
    }

    /**
     * Fire the single earliest event.
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains or `limit` events have fired. */
    size_t run(size_t limit = ~size_t(0));

    /** Run events with tick <= horizon. Returns events fired. */
    size_t runUntil(Tick horizon);

    /** Drop all pending events and reset time to zero. */
    void reset();

    /** Total events fired since construction/reset. */
    uint64_t fired() const { return firedCount; }

  private:
    struct Entry {
        Tick when;
        int priority;
        uint64_t sequence;
        Callback callback;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    /** Earliest entry, valid only while the heap is non-empty. */
    const Entry &top() const { return heap.front(); }

    /** Remove and return the earliest entry by move (no copy). */
    Entry popTop();

    // An explicit binary heap (std::push_heap/std::pop_heap over a
    // vector) instead of std::priority_queue: it can be reserve()d,
    // and entries move out on pop instead of being copied off a
    // const top() -- each Entry carries a std::function whose copy
    // would heap-allocate.
    std::vector<Entry> heap;
    Tick currentTick = 0;
    uint64_t nextSequence = 0;
    uint64_t firedCount = 0;
};

} // namespace racelogic::sim

#endif // RACELOGIC_SIM_EVENT_QUEUE_H
