/**
 * @file
 * telemetry::Registry -- named counters, gauges, and log2 latency
 * histograms for the serving stack.
 *
 * Design constraints, in order:
 *
 *  1. The hot path is wait-free: recording is one relaxed
 *     fetch_add on an atomic cell, no locks, no allocation.  The
 *     registry mutex is taken only to *register* a metric (startup)
 *     and to *snapshot* (scrape time).
 *  2. Writers never contend: counters and histograms are sharded
 *     into cache-line-padded lanes; the dispatcher and each shard
 *     worker record into their own lane and the lanes are summed at
 *     snapshot time.
 *  3. Handles are stable: metrics live in deques owned by the
 *     registry, so a `Counter *` captured at startup stays valid for
 *     the registry's lifetime and can be used lock-free forever.
 *
 * Histograms use fixed log2 boundaries: bucket 0 holds the value 0,
 * bucket i (i >= 1) holds values in [2^(i-1), 2^i), and the last
 * bucket is open-ended.  Exact-power-of-two boundaries make the
 * bucket index one `bit_width` instruction and give every percentile
 * estimate a guaranteed error bound: the true value lies inside the
 * reported bucket, so the estimate is off by at most 2x.  Units are
 * whatever the caller records -- the serve daemon records
 * microseconds.
 *
 * Name collisions are rejected with a typed rl::Status
 * (InvalidArgument), never a fatal: registration is driven by
 * configuration-adjacent code and must not crash a daemon.
 */

#ifndef RACELOGIC_TELEMETRY_REGISTRY_H
#define RACELOGIC_TELEMETRY_REGISTRY_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rl/util/status.h"

namespace racelogic::telemetry {

/** Log2 histogram resolution: bucket 39 is open-ended (>= 2^38). */
inline constexpr size_t kHistogramBuckets = 40;

/** Writer lanes per metric (power of two; lane index is masked). */
inline constexpr size_t kMetricLanes = 8;

/** The log2 bucket holding `value`: 0 -> 0, else bit_width clamped. */
inline size_t
histogramBucket(uint64_t value)
{
    if (value == 0)
        return 0;
    const size_t width = static_cast<size_t>(std::bit_width(value));
    return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

/** Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...). */
inline uint64_t
histogramBucketLower(size_t i)
{
    return i == 0 ? 0 : uint64_t(1) << (i - 1);
}

/**
 * Inclusive upper bound of bucket `i`; the last bucket reports
 * 2 * lower so percentile interpolation stays finite.
 */
inline uint64_t
histogramBucketUpper(size_t i)
{
    if (i == 0)
        return 0;
    if (i >= kHistogramBuckets - 1)
        return uint64_t(1) << i; // open-ended: pretend one more octave
    return (uint64_t(1) << i) - 1;
}

/**
 * A monotonically increasing counter, sharded into padded lanes so
 * concurrent writers (dispatcher vs. shard workers) never share a
 * cache line.  add() is wait-free; total() is a scrape-time sum.
 */
class Counter
{
  public:
    void
    add(uint64_t n = 1, size_t lane = 0)
    {
        cells[lane & (kMetricLanes - 1)].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (const Cell &cell : cells)
            sum += cell.v.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    struct alignas(64) Cell {
        std::atomic<uint64_t> v{0};
    };
    std::array<Cell, kMetricLanes> cells;
};

/**
 * A point-in-time signed value.  set()/add()/max() are wait-free
 * (max() is a relaxed CAS loop -- lock-free, and contention-free in
 * practice because high-water marks rarely move).
 */
class Gauge
{
  public:
    void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }

    void
    add(int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Raise the gauge to `v` if it is below (a high-water mark). */
    void
    max(int64_t v)
    {
        int64_t seen = value_.load(std::memory_order_relaxed);
        while (seen < v && !value_.compare_exchange_weak(
                               seen, v, std::memory_order_relaxed))
            ;
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-boundary log2 histogram, lane-sharded like Counter: each
 * writer lane owns a full bucket array plus a sum cell, so record()
 * is two relaxed fetch_adds on lines no other lane touches.
 */
class Histogram
{
  public:
    void
    record(uint64_t value, size_t lane = 0)
    {
        Lane &l = lanes[lane & (kMetricLanes - 1)];
        l.buckets[histogramBucket(value)].fetch_add(
            1, std::memory_order_relaxed);
        l.sum.fetch_add(value, std::memory_order_relaxed);
    }

    /** Total recordings across all lanes (scrape-time sum). */
    uint64_t count() const;

    /** Sum of recorded values across all lanes. */
    uint64_t sum() const;

  private:
    friend class Registry;
    friend struct HistogramSnapshot;

    struct alignas(64) Lane {
        std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
        std::atomic<uint64_t> sum{0};
    };
    std::array<Lane, kMetricLanes> lanes;
};

/** One counter (or gauge rendered as a value) in a snapshot. */
struct CounterSnapshot {
    std::string name;
    uint64_t value = 0;
};

struct GaugeSnapshot {
    std::string name;
    int64_t value = 0;
};

/** One histogram in a snapshot: per-bucket counts plus aggregates. */
struct HistogramSnapshot {
    std::string name;
    std::vector<uint64_t> buckets; ///< kHistogramBuckets long (local);
                                   ///< wire decode may carry fewer
    uint64_t count = 0;            ///< sum of buckets
    uint64_t sum = 0;              ///< sum of recorded values

    /**
     * Estimated value at percentile `p` in (0, 100], by linear
     * interpolation inside the bucket containing the target rank.
     * The true value lies within that bucket, so the estimate is off
     * by at most the bucket width (a factor of 2).  0 when empty.
     */
    double percentile(double p) const;
};

/**
 * A coherent point-in-time view of every registered metric, taken
 * under the registry mutex.  Counters are monotone, so two
 * snapshots bracket the truth; histogram `count` always equals the
 * bucket sum because both are derived from the same lane reads.
 */
struct Snapshot {
    std::vector<CounterSnapshot> counters;
    std::vector<GaugeSnapshot> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** Find by name; nullptr when absent. */
    const CounterSnapshot *counter(std::string_view name) const;
    const GaugeSnapshot *gauge(std::string_view name) const;
    const HistogramSnapshot *histogram(std::string_view name) const;

    /**
     * Prometheus-text-style exposition: `# TYPE` comments, counter
     * and gauge sample lines, histograms as cumulative
     * `_bucket{le="..."}` series plus `_sum` / `_count`.
     */
    std::string renderPrometheus() const;
};

/**
 * The metric registry: owns every metric, hands out stable handles.
 *
 * Registration (addCounter / addGauge / addHistogram) takes the
 * mutex and rejects duplicate or malformed names with a typed
 * rl::Status; recording through the returned handles never takes it.
 * snapshot() takes the mutex once, reads every lane, and returns a
 * self-contained value.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Expected<Counter *> addCounter(std::string name);
    Expected<Gauge *> addGauge(std::string name);
    Expected<Histogram *> addHistogram(std::string name);

    /** Metrics registered so far (all three kinds). */
    size_t size() const;

    Snapshot snapshot() const;

  private:
    /** nullptr-message Ok, or why `name` cannot be registered. */
    Status checkName(const std::string &name) const;

    mutable std::mutex mutex;
    std::deque<std::pair<std::string, Counter>> counters;
    std::deque<std::pair<std::string, Gauge>> gauges;
    std::deque<std::pair<std::string, Histogram>> histograms;
};

} // namespace racelogic::telemetry

#endif // RACELOGIC_TELEMETRY_REGISTRY_H
