#include "rl/telemetry/registry.h"

#include <cctype>
#include <sstream>

namespace racelogic::telemetry {

// ------------------------------------------------------- Histogram

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (const Lane &lane : lanes)
        for (const std::atomic<uint64_t> &bucket : lane.buckets)
            total += bucket.load(std::memory_order_relaxed);
    return total;
}

uint64_t
Histogram::sum() const
{
    uint64_t total = 0;
    for (const Lane &lane : lanes)
        total += lane.sum.load(std::memory_order_relaxed);
    return total;
}

// ----------------------------------------------- HistogramSnapshot

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0 || p <= 0.0)
        return 0.0;
    if (p > 100.0)
        p = 100.0;
    const double target = p / 100.0 * static_cast<double>(count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        const double reached =
            static_cast<double>(cumulative + buckets[i]);
        if (reached + 1e-9 >= target) {
            const double lower =
                static_cast<double>(histogramBucketLower(i));
            const double upper =
                static_cast<double>(histogramBucketUpper(i));
            const double frac =
                (target - static_cast<double>(cumulative)) /
                static_cast<double>(buckets[i]);
            return lower + frac * (upper - lower);
        }
        cumulative += buckets[i];
    }
    // Unreachable when count == sum of buckets; be defensive anyway.
    return static_cast<double>(
        histogramBucketUpper(buckets.empty() ? 0 : buckets.size() - 1));
}

// --------------------------------------------------------- Snapshot

const CounterSnapshot *
Snapshot::counter(std::string_view name) const
{
    for (const CounterSnapshot &c : counters)
        if (c.name == name)
            return &c;
    return nullptr;
}

const GaugeSnapshot *
Snapshot::gauge(std::string_view name) const
{
    for (const GaugeSnapshot &g : gauges)
        if (g.name == name)
            return &g;
    return nullptr;
}

const HistogramSnapshot *
Snapshot::histogram(std::string_view name) const
{
    for (const HistogramSnapshot &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

std::string
Snapshot::renderPrometheus() const
{
    std::ostringstream out;
    for (const CounterSnapshot &c : counters) {
        out << "# TYPE " << c.name << " counter\n";
        out << c.name << ' ' << c.value << '\n';
    }
    for (const GaugeSnapshot &g : gauges) {
        out << "# TYPE " << g.name << " gauge\n";
        out << g.name << ' ' << g.value << '\n';
    }
    for (const HistogramSnapshot &h : histograms) {
        out << "# TYPE " << h.name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.buckets.size(); ++i) {
            cumulative += h.buckets[i];
            const bool last = i + 1 == h.buckets.size();
            out << h.name << "_bucket{le=\"";
            if (last)
                out << "+Inf";
            else
                out << histogramBucketUpper(i);
            out << "\"} " << cumulative << '\n';
        }
        out << h.name << "_sum " << h.sum << '\n';
        out << h.name << "_count " << h.count << '\n';
    }
    return out.str();
}

// --------------------------------------------------------- Registry

Status
Registry::checkName(const std::string &name) const
{
    // Prometheus-compatible: [a-zA-Z_][a-zA-Z0-9_]*, non-empty.
    if (name.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "telemetry: empty metric name");
    auto wordChar = [](char c, bool first) {
        const unsigned char u = static_cast<unsigned char>(c);
        return c == '_' || std::isalpha(u) ||
               (!first && std::isdigit(u));
    };
    for (size_t i = 0; i < name.size(); ++i)
        if (!wordChar(name[i], i == 0))
            return Status::error(
                ErrorCode::InvalidArgument,
                "telemetry: metric name '", name,
                "' is not [a-zA-Z_][a-zA-Z0-9_]*");
    for (const auto &[existing, unused] : counters)
        if (existing == name)
            return Status::error(ErrorCode::InvalidArgument,
                                 "telemetry: duplicate metric name '",
                                 name, "'");
    for (const auto &[existing, unused] : gauges)
        if (existing == name)
            return Status::error(ErrorCode::InvalidArgument,
                                 "telemetry: duplicate metric name '",
                                 name, "'");
    for (const auto &[existing, unused] : histograms)
        if (existing == name)
            return Status::error(ErrorCode::InvalidArgument,
                                 "telemetry: duplicate metric name '",
                                 name, "'");
    return {};
}

Expected<Counter *>
Registry::addCounter(std::string name)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (Status bad = checkName(name); !bad.ok())
        return bad;
    counters.emplace_back(std::piecewise_construct,
                          std::forward_as_tuple(std::move(name)),
                          std::forward_as_tuple());
    return &counters.back().second;
}

Expected<Gauge *>
Registry::addGauge(std::string name)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (Status bad = checkName(name); !bad.ok())
        return bad;
    gauges.emplace_back(std::piecewise_construct,
                        std::forward_as_tuple(std::move(name)),
                        std::forward_as_tuple());
    return &gauges.back().second;
}

Expected<Histogram *>
Registry::addHistogram(std::string name)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (Status bad = checkName(name); !bad.ok())
        return bad;
    histograms.emplace_back(std::piecewise_construct,
                            std::forward_as_tuple(std::move(name)),
                            std::forward_as_tuple());
    return &histograms.back().second;
}

size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters.size() + gauges.size() + histograms.size();
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex);
    Snapshot snap;
    snap.counters.reserve(counters.size());
    for (const auto &[name, counter] : counters)
        snap.counters.push_back({name, counter.total()});
    snap.gauges.reserve(gauges.size());
    for (const auto &[name, gauge] : gauges)
        snap.gauges.push_back({name, gauge.value()});
    snap.histograms.reserve(histograms.size());
    for (const auto &[name, histogram] : histograms) {
        HistogramSnapshot h;
        h.name = name;
        h.buckets.assign(kHistogramBuckets, 0);
        for (const Histogram::Lane &lane : histogram.lanes) {
            for (size_t i = 0; i < kHistogramBuckets; ++i)
                h.buckets[i] +=
                    lane.buckets[i].load(std::memory_order_relaxed);
            h.sum += lane.sum.load(std::memory_order_relaxed);
        }
        for (uint64_t b : h.buckets)
            h.count += b;
        snap.histograms.push_back(std::move(h));
    }
    return snap;
}

} // namespace racelogic::telemetry
