/**
 * @file
 * RequestTrace: per-request stage timestamps for the serve daemon.
 *
 * One trace rides alongside each request from the moment its frame
 * header has been parsed to the moment its response is flushed,
 * collecting steady-clock stamps at every stage boundary:
 *
 *   readStart ── body read ──▶ readDone (arrival)
 *            ── decode ──────▶ decodeDone
 *            ── admit ───────▶ admitDone        (budgets + tryPush)
 *            ── queue wait ──▶ dispatchStart    (drained by dispatcher)
 *            ── dispatch ────▶ solveStart       (grouped, pool handoff)
 *            ── solve ───────▶ solveDone        (the race)
 *            ── encode ──────▶ encodeDone       (response bytes built)
 *            ── write ───────▶ writeDone        (response flushed)
 *
 * Stage durations are differences of *consecutive* stamps, so they
 * are nonnegative by construction and their sum equals the
 * end-to-end latency exactly.  Requests that skip stages (inline
 * Stats/Ping, rejections, shed jobs) leave later stamps unset;
 * finalize() carries the last known stamp forward, turning skipped
 * stages into zero-length ones instead of garbage.
 *
 * The struct is plain data -- no locks, no allocation beyond the
 * stamps themselves -- because one lives on the stack / inside the
 * queued job for every request the daemon handles.
 */

#ifndef RACELOGIC_TELEMETRY_TRACE_H
#define RACELOGIC_TELEMETRY_TRACE_H

#include <chrono>
#include <cstdint>

namespace racelogic::telemetry {

struct RequestTrace {
    using Clock = std::chrono::steady_clock;
    using TimePoint = Clock::time_point;

    /** Wire id of the request (0 until decode succeeds). */
    uint32_t id = 0;

    /** Wire RequestTag as a raw byte (0 until decode succeeds). */
    uint8_t tag = 0;

    /** Wire Status of the response as a raw byte. */
    uint8_t status = 0;

    TimePoint readStart;     ///< frame header parsed, body read begins
    TimePoint readDone;      ///< body fully read (the arrival stamp)
    TimePoint decodeDone;    ///< decodeRequest returned
    TimePoint admitDone;     ///< budgets checked, job pushed (or bounced)
    TimePoint dispatchStart; ///< dispatcher drained the job
    TimePoint solveStart;    ///< shard group reached the worker
    TimePoint solveDone;     ///< engine returned
    TimePoint encodeDone;    ///< response frame built
    TimePoint writeDone;     ///< response flushed to the socket

    /**
     * Carry the last set stamp forward through any unset (default)
     * stamps, in stage order.  After finalize() every duration below
     * is well-defined and nonnegative, and their sum is exactly
     * totalUs().
     */
    void
    finalize()
    {
        const TimePoint unset{};
        TimePoint last = readStart;
        for (TimePoint *stamp :
             {&readDone, &decodeDone, &admitDone, &dispatchStart,
              &solveStart, &solveDone, &encodeDone, &writeDone}) {
            if (*stamp == unset || *stamp < last)
                *stamp = last;
            last = *stamp;
        }
    }

    /** Microseconds from `from` to `to`, clamped at zero. */
    static uint64_t
    us(TimePoint from, TimePoint to)
    {
        if (to <= from)
            return 0;
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                to - from)
                .count());
    }

    uint64_t readUs() const { return us(readStart, readDone); }
    uint64_t decodeUs() const { return us(readDone, decodeDone); }
    uint64_t admitUs() const { return us(decodeDone, admitDone); }
    uint64_t queueWaitUs() const { return us(admitDone, dispatchStart); }
    uint64_t dispatchUs() const { return us(dispatchStart, solveStart); }
    uint64_t solveUs() const { return us(solveStart, solveDone); }
    uint64_t encodeUs() const { return us(solveDone, encodeDone); }
    uint64_t writeUs() const { return us(encodeDone, writeDone); }

    /** End-to-end: body read start to response flushed. */
    uint64_t totalUs() const { return us(readStart, writeDone); }
};

} // namespace racelogic::telemetry

#endif // RACELOGIC_TELEMETRY_TRACE_H
