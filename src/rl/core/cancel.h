/**
 * @file
 * CancelToken: cooperative cancellation for the bucket-sweep kernels.
 *
 * The paper's Section 6 early-termination horizon already gives the
 * race kernels a bounded-abort shape: the sweep stops, the sink never
 * fires, and the caller gets a typed incomplete result instead of a
 * wasted full solve.  A CancelToken reuses exactly that plumbing for
 * *runtime* aborts -- a serving deadline expiring mid-race, a caller
 * giving up -- by letting the kernel poll one cheap predicate at
 * bucket-drain granularity (once per simulated clock cycle, i.e. per
 * calendar bucket, never per event).
 *
 * A token cancels for two reasons, checked in order:
 *
 *  - someone called cancel() (one relaxed atomic flag), or
 *  - a construction-time steady_clock deadline has passed.
 *
 * Deadline expiry latches the flag, so after the first positive check
 * every subsequent cancelled() is a single relaxed load -- the clock
 * is read at most once per tick until expiry and never after.
 *
 * Tokens are passed by non-owning const pointer (nullptr = never
 * cancels) so the hot paths stay free of shared_ptr traffic and the
 * default behavior of every kernel is bit-identical to the
 * pre-cancellation code.
 */

#ifndef RACELOGIC_CORE_CANCEL_H
#define RACELOGIC_CORE_CANCEL_H

#include <atomic>
#include <chrono>

namespace racelogic::core {

class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** A token that cancels only via cancel(). */
    CancelToken() = default;

    /** A token that also cancels once `deadline` passes. */
    explicit CancelToken(Clock::time_point deadline) : expiry(deadline) {}

    /** Request cancellation (safe from any thread). */
    void
    cancel() const noexcept
    {
        flag.store(true, std::memory_order_relaxed);
    }

    /**
     * True once cancelled or past the deadline.  Monotone: after the
     * first true, every later call is true (expiry latches the flag).
     */
    bool
    cancelled() const noexcept
    {
        if (flag.load(std::memory_order_relaxed))
            return true;
        if (expiry == Clock::time_point::max())
            return false;
        if (Clock::now() < expiry)
            return false;
        flag.store(true, std::memory_order_relaxed);
        return true;
    }

    /** The deadline, or time_point::max() for flag-only tokens. */
    Clock::time_point deadline() const noexcept { return expiry; }

  private:
    mutable std::atomic<bool> flag{false};
    Clock::time_point expiry = Clock::time_point::max();
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_CANCEL_H
