/**
 * @file
 * RaceAligner: the library's legacy front door.
 *
 * @deprecated New code should go through the unified facade,
 * rl/api/api.h:
 *
 *   api::RaceEngine engine;
 *   auto r = engine.solve(api::RaceProblem::pairwiseAlignment(
 *       matrix, a, b));
 *
 * This class is kept as a thin shim over api::RaceEngine so existing
 * callers keep working with identical semantics: Section 5 matrix
 * conversion, edit-graph racing, and score recovery behind one call,
 * accepting either score semantics.  Backend::GateLevel additionally
 * runs the race on a real netlist (cached per string-length pair by
 * the engine's plan cache) and cross-checks it against the behavioral
 * result.
 */

#ifndef RACELOGIC_CORE_RACE_ALIGNER_H
#define RACELOGIC_CORE_RACE_ALIGNER_H

#include <optional>

#include "rl/bio/score_convert.h"
#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/core/race_grid.h"

namespace racelogic::core {

/** Execution strategy for RaceAligner. */
enum class Backend {
    Behavioral, ///< event-driven temporal simulation (fast, default)
    GateLevel,  ///< synthesize a netlist per size and simulate it
};

/** A completed alignment in the caller's score semantics. */
struct AlignOutcome {
    /** Score in the semantics of the matrix passed to RaceAligner. */
    bio::Score score = 0;

    /** The raw race outcome (converted cost = sink arrival cycle). */
    bio::Score racedCost = 0;

    /** Clock cycles the race took. */
    sim::Tick latencyCycles = 0;

    /** Full behavioral detail (arrival map / wavefront). */
    RaceGridResult detail;
};

/**
 * High-level aligner over any ScoreMatrix.
 *
 * Cost matrices must already be race-ready (finite weights >= 1,
 * forbidden pairs allowed); similarity matrices are converted
 * automatically and scores are mapped back.
 *
 * @deprecated Shim over api::RaceEngine; see rl/api/api.h.
 */
class RaceAligner
{
  public:
    explicit RaceAligner(const bio::ScoreMatrix &matrix,
                         Backend backend = Backend::Behavioral);

    /** Align two sequences over the matrix's alphabet. */
    AlignOutcome align(const bio::Sequence &a,
                       const bio::Sequence &b) const;

    /** The cost matrix actually raced. */
    const bio::ScoreMatrix &racedMatrix() const;

    /** Conversion metadata when a similarity matrix was supplied. */
    const std::optional<bio::ShortestPathForm> &conversion() const
    {
        return converted;
    }

    Backend backend() const { return mode; }

  private:
    bio::ScoreMatrix original;
    std::optional<bio::ShortestPathForm> converted;
    Backend mode;
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_RACE_ALIGNER_H
