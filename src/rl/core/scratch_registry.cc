#include "rl/core/scratch_registry.h"

namespace racelogic::core {

ScratchRegistry &
ScratchRegistry::instance()
{
    // Leaked on purpose: thread_local scratch destructors may run
    // after static destruction would have torn this down.
    static ScratchRegistry *registry = new ScratchRegistry();
    return *registry;
}

ScratchEntry &
ScratchRegistry::registerEntry(std::function<size_t(bool)> probe)
{
    ScratchEntry *entry = new ScratchEntry(); // leaked with the registry
    entry->probe = std::move(probe);
    std::lock_guard<std::mutex> lock(mutex);
    entries.push_back(entry);
    return *entry;
}

size_t
ScratchRegistry::totalResidentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex);
    size_t total = 0;
    for (const ScratchEntry *entry : entries)
        total += entry->residentBytes.load(std::memory_order_relaxed);
    return total;
}

size_t
ScratchRegistry::entryCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

size_t
ScratchRegistry::shrinkIdle(std::chrono::nanoseconds idle)
{
    std::vector<ScratchEntry *> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex);
        snapshot = entries;
    }
    const int64_t cutoff =
        (std::chrono::steady_clock::now() - idle).time_since_epoch().count();
    size_t reclaimed = 0;
    for (ScratchEntry *entry : snapshot) {
        if (entry->lastUseNs.load(std::memory_order_relaxed) > cutoff)
            continue;
        // Never block a solve: a busy entry is by definition not
        // idle, and a later pass will catch it.
        if (!entry->busy.try_lock())
            continue;
        // A tombstone slot: its thread died and retracted the hook.
        if (!entry->probe) {
            entry->busy.unlock();
            continue;
        }
        const size_t before =
            entry->residentBytes.load(std::memory_order_relaxed);
        const size_t after = entry->probe(/*shrink=*/true);
        entry->residentBytes.store(after, std::memory_order_relaxed);
        entry->busy.unlock();
        reclaimed += before > after ? before - after : 0;
    }
    return reclaimed;
}

ScratchRegistration::ScratchRegistration(std::function<size_t(bool)> probe)
    : slot(&ScratchRegistry::instance().registerEntry(std::move(probe)))
{
}

ScratchRegistration::~ScratchRegistration()
{
    // The probe hook points into this thread's dying arena; retract
    // it under the busy mutex so an in-flight shrinker finishes (or
    // never starts) before the arena goes away.
    std::lock_guard<std::mutex> lock(slot->busy);
    slot->probe = nullptr;
    slot->residentBytes.store(0, std::memory_order_relaxed);
}

} // namespace racelogic::core
