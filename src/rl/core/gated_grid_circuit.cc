#include "rl/core/gated_grid_circuit.h"

#include <algorithm>
#include <array>

#include "rl/util/bitops.h"
#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::core {

GatedRaceGridCircuit::GatedRaceGridCircuit(const bio::Alphabet &alpha,
                                           size_t rows, size_t cols,
                                           size_t region_side)
    : numRows(rows), numCols(cols), regionSideLen(region_side),
      regionRows(util::ceilDiv(rows, region_side)),
      regionCols(util::ceilDiv(cols, region_side)), alphabet(alpha),
      nodeNets(rows + 1, cols + 1, circuit::kNoNet)
{
    rl_assert(rows >= 1 && cols >= 1, "grid needs at least one cell");
    rl_assert(region_side >= 1, "region side must be >= 1");
    const unsigned bits = std::max(1u, alphabet.bitsPerSymbol());

    go = net.input("go");
    for (size_t i = 0; i < rows; ++i)
        rowSymbols.push_back(circuit::buildInputBus(
            net, util::format("a%zu_", i), bits));
    for (size_t j = 0; j < cols; ++j)
        colSymbols.push_back(circuit::buildInputBus(
            net, util::format("b%zu_", j), bits));

    // Boundary frame: left un-gated (it is O(N) of the O(N^2)
    // fabric; the paper gates the cell array).
    nodeNets.at(0, 0) = go;
    for (size_t j = 1; j <= cols; ++j)
        nodeNets.at(0, j) = net.dff(nodeNets.at(0, j - 1));
    for (size_t i = 1; i <= rows; ++i)
        nodeNets.at(i, 0) = net.dff(nodeNets.at(i - 1, 0));

    // Pass 1: the datapath, with per-cell DFFs created enable-less.
    util::Grid<std::array<circuit::NetId, 3>> cell_dffs(
        rows + 1, cols + 1,
        {circuit::kNoNet, circuit::kNoNet, circuit::kNoNet});
    for (size_t i = 1; i <= rows; ++i) {
        for (size_t j = 1; j <= cols; ++j) {
            circuit::NetId match = circuit::buildMatchComparator(
                net, rowSymbols[i - 1], colSymbols[j - 1]);
            circuit::NetId top = net.dff(nodeNets.at(i - 1, j));
            circuit::NetId left = net.dff(nodeNets.at(i, j - 1));
            circuit::NetId diag_delayed =
                net.dff(nodeNets.at(i - 1, j - 1));
            circuit::NetId diag = net.andGate({match, diag_delayed});
            nodeNets.at(i, j) = net.orGate({top, left, diag});
            cell_dffs.at(i, j) = {top, left, diag_delayed};
        }
    }

    // Pass 2: one gating leaf per m x m region (Fig. 7b): the region
    // wakes when a 1 reaches any net entering it and sleeps once all
    // of its cell outputs have latched.
    size_t gates_before = net.gateCount();
    for (size_t rr = 0; rr < regionRows; ++rr) {
        for (size_t rc = 0; rc < regionCols; ++rc) {
            size_t r0 = rr * region_side + 1;
            size_t c0 = rc * region_side + 1;
            size_t r1 = std::min(rows, r0 + region_side - 1);
            size_t c1 = std::min(cols, c0 + region_side - 1);

            // Halo: nodes feeding the region's top/left cells.
            std::vector<circuit::NetId> entering;
            for (size_t j = c0 - 1; j <= c1; ++j)
                entering.push_back(nodeNets.at(r0 - 1, j));
            for (size_t i = r0; i <= r1; ++i)
                entering.push_back(nodeNets.at(i, c0 - 1));
            circuit::NetId wake =
                entering.size() == 1 ? entering[0]
                                     : net.orGate(std::move(entering));

            std::vector<circuit::NetId> outputs;
            for (size_t i = r0; i <= r1; ++i)
                for (size_t j = c0; j <= c1; ++j)
                    outputs.push_back(nodeNets.at(i, j));
            circuit::NetId all_done =
                outputs.size() == 1 ? outputs[0]
                                    : net.andGate(std::move(outputs));

            circuit::NetId enable =
                net.andGate({wake, net.notGate(all_done)});
            for (size_t i = r0; i <= r1; ++i)
                for (size_t j = c0; j <= c1; ++j)
                    for (circuit::NetId dff : cell_dffs.at(i, j))
                        net.bindDffEnable(dff, enable);
        }
    }
    gatingGates = net.gateCount() - gates_before;

    net.validate();
    compiled = std::make_unique<circuit::CompiledNetlist>(net);
    simulator = std::make_unique<circuit::CompiledSim>(*compiled);
}

detail::GridFabricView
GatedRaceGridCircuit::view() const
{
    detail::GridFabricView v;
    v.compiled = compiled.get();
    v.go = go;
    v.sink = nodeNets.at(numRows, numCols);
    v.rowSymbols = &rowSymbols;
    v.colSymbols = &colSymbols;
    v.symbolBits = std::max(1u, alphabet.bitsPerSymbol());
    v.alphabet = &alphabet;
    v.rows = numRows;
    v.cols = numCols;
    return v;
}

CircuitRunResult
GatedRaceGridCircuit::align(const bio::Sequence &a,
                            const bio::Sequence &b, uint64_t max_cycles)
{
    if (max_cycles == 0)
        max_cycles = numRows + numCols + 2;
    return detail::raceFabricPair(*simulator, view(), a, b, max_cycles);
}

LaneBatchResult
GatedRaceGridCircuit::alignLanes(const std::vector<LanePair> &lanes,
                                 uint64_t max_cycles,
                                 KernelCounters *counters) const
{
    if (max_cycles == 0)
        max_cycles = numRows + numCols + 2;
    return detail::raceFabricLanes(view(), lanes, max_cycles, counters);
}

CircuitRunResult
GatedRaceGridCircuit::alignReference(const bio::Sequence &a,
                                     const bio::Sequence &b,
                                     uint64_t max_cycles)
{
    if (max_cycles == 0)
        max_cycles = numRows + numCols + 2;
    return detail::raceFabricPair(referenceSim(), view(), a, b,
                                  max_cycles);
}

circuit::SyncSim &
GatedRaceGridCircuit::referenceSim()
{
    if (!refSim)
        refSim = std::make_unique<circuit::SyncSim>(net);
    return *refSim;
}

} // namespace racelogic::core
