#include "rl/core/batch.h"

#include <algorithm>
#include <queue>

#include "rl/util/logging.h"

namespace racelogic::core {

BatchScreeningEngine::BatchScreeningEngine(bio::ScoreMatrix costs,
                                           BatchConfig config)
    : racer(std::move(costs)), cfg(config)
{
    rl_assert(cfg.fabricCount >= 1, "pool needs at least one fabric");
    rl_assert(cfg.threshold >= 0, "negative threshold");
}

BatchReport
scheduleBatch(const BatchConfig &config,
              const std::vector<ScreenedComparison> &runs)
{
    rl_assert(config.fabricCount >= 1, "pool needs at least one fabric");

    BatchReport report;
    report.comparisons = runs.size();
    report.accepted.reserve(runs.size());

    // Greedy list scheduling: each comparison goes to the fabric
    // that frees up first (min-heap of fabric-free times).
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<>>
        free_at;
    for (size_t f = 0; f < config.fabricCount; ++f)
        free_at.push(0);

    for (const ScreenedComparison &run : runs) {
        report.accepted.push_back(run.accepted);
        report.acceptedCount += run.accepted;

        uint64_t cycles = run.cyclesUsed + config.resetCycles;
        report.busyCycles += cycles;

        uint64_t start = free_at.top();
        free_at.pop();
        uint64_t done = start + cycles;
        free_at.push(done);
        report.makespanCycles = std::max(report.makespanCycles, done);
    }

    // Drain: the makespan is the largest completion time (already
    // tracked); utilization relates busy time to pool-time.
    if (report.makespanCycles > 0)
        report.utilization =
            static_cast<double>(report.busyCycles) /
            (static_cast<double>(config.fabricCount) *
             static_cast<double>(report.makespanCycles));
    return report;
}

BatchReport
BatchScreeningEngine::run(const bio::Sequence &query,
                          const std::vector<bio::Sequence> &database) const
{
    // Each comparison races with the threshold as its kernel horizon:
    // the fabric-busy time comes straight out of the simulation (a
    // rejected race stops at the threshold cycle) instead of racing
    // to completion and clamping afterwards.  The two accountings
    // agree by arrival-time monotonicity; tests assert it.
    const bool bounded = cfg.threshold != bio::kScoreInfinity;
    std::vector<ScreenedComparison> runs;
    runs.reserve(database.size());
    for (const bio::Sequence &candidate : database) {
        RaceGridResult raced =
            bounded ? racer.align(query, candidate,
                                  static_cast<sim::Tick>(cfg.threshold))
                    : racer.align(query, candidate);
        ScreenedComparison run;
        run.accepted = raced.completed && raced.score <= cfg.threshold;
        run.cyclesUsed = raced.completed
                             ? static_cast<uint64_t>(raced.score)
                             : static_cast<uint64_t>(cfg.threshold);
        runs.push_back(run);
    }
    return scheduleBatch(cfg, runs);
}

} // namespace racelogic::core
