#include "rl/core/generalized.h"

#include <algorithm>
#include <set>

#include "rl/util/bitops.h"
#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::core {

GeneralizedCellSpec
GeneralizedCellSpec::fromMatrix(const bio::ScoreMatrix &costs)
{
    rl_assert(costs.isCost(), "generalized cells race cost matrices");
    GeneralizedCellSpec spec;
    spec.dynamicRange = costs.dynamicRange();
    spec.counterBits = util::bitsForValue(
        static_cast<uint64_t>(spec.dynamicRange));
    spec.symbolBits = std::max(1u, costs.alphabet().bitsPerSymbol());
    spec.hasForbiddenPairs = costs.hasForbiddenPairs();

    std::set<bio::Score> pair_weights;
    std::set<bio::Score> gap_weights;
    const bio::Alphabet &alphabet = costs.alphabet();
    for (bio::Symbol a = 0; a < alphabet.size(); ++a) {
        gap_weights.insert(costs.gap(a));
        for (bio::Symbol b = 0; b < alphabet.size(); ++b)
            if (costs.pair(a, b) != bio::kScoreInfinity)
                pair_weights.insert(costs.pair(a, b));
    }
    spec.distinctPairWeights.assign(pair_weights.begin(),
                                    pair_weights.end());
    spec.distinctGapWeights.assign(gap_weights.begin(),
                                   gap_weights.end());
    return spec;
}

circuit::NetId
buildWeightApplicator(circuit::Netlist &netlist, circuit::NetId pred,
                      const circuit::Bus &select,
                      const std::vector<bio::Score> &weight_by_index,
                      const GeneralizedCellSpec &spec,
                      DelayEncoding encoding)
{
    const size_t slots = size_t(1) << select.size();
    rl_assert(weight_by_index.size() <= slots,
              "more weights than select codes");

    if (encoding == DelayEncoding::OneHot) {
        // Tapped DFF chain: tap w is pred delayed w cycles, and a
        // step input keeps every passed tap high, so no latch is
        // needed.
        circuit::Bus taps = circuit::buildTappedDelayChain(
            netlist, pred, static_cast<size_t>(spec.dynamicRange));
        circuit::NetId never = netlist.constant(false);
        std::vector<circuit::NetId> data(weight_by_index.size(), never);
        for (size_t idx = 0; idx < weight_by_index.size(); ++idx) {
            bio::Score w = weight_by_index[idx];
            if (w == bio::kScoreInfinity)
                continue;
            rl_assert(w >= 1 && w <= spec.dynamicRange,
                      "weight ", w, " outside dynamic range");
            data[idx] = taps[static_cast<size_t>(w)];
        }
        return circuit::buildMuxTree(netlist, select, data);
    }

    // Binary saturating counter + per-weight equality taps +
    // set-on-arrival (the literal Fig. 8 structure).
    circuit::Bus count = circuit::buildSaturatingCounter(
        netlist, pred, spec.counterBits);
    std::vector<std::pair<bio::Score, circuit::NetId>> taps;
    circuit::NetId never = netlist.constant(false);
    std::vector<circuit::NetId> data(weight_by_index.size(), never);
    for (size_t idx = 0; idx < weight_by_index.size(); ++idx) {
        bio::Score w = weight_by_index[idx];
        if (w == bio::kScoreInfinity)
            continue;
        rl_assert(w >= 1 && w <= spec.dynamicRange,
                  "weight ", w, " outside dynamic range");
        circuit::NetId tap = circuit::kNoNet;
        for (const auto &[tw, tnet] : taps)
            if (tw == w)
                tap = tnet;
        if (tap == circuit::kNoNet) {
            tap = circuit::buildEqualsConst(
                netlist, count, static_cast<uint64_t>(w));
            taps.emplace_back(w, tap);
        }
        data[idx] = tap;
    }
    circuit::NetId selected = circuit::buildMuxTree(netlist, select, data);
    return circuit::buildSetOnArrival(netlist, selected);
}

GeneralizedAligner::GeneralizedAligner(const bio::ScoreMatrix &similarity,
                                       bio::Score lambda)
    : converted(bio::toShortestPathForm(similarity, lambda)),
      cellSpec(GeneralizedCellSpec::fromMatrix(converted.costs)),
      racer(converted.costs)
{}

GeneralizedAligner::Result
GeneralizedAligner::align(const bio::Sequence &a,
                          const bio::Sequence &b) const
{
    RaceGridResult raced = racer.align(a, b);
    Result result;
    result.racedCost = raced.score;
    result.latencyCycles = raced.latencyCycles;
    result.similarityScore =
        converted.recoverScore(raced.score, a.size(), b.size());
    return result;
}

GeneralizedGridCircuit::GeneralizedGridCircuit(bio::ScoreMatrix costs_in,
                                               size_t rows, size_t cols,
                                               DelayEncoding encoding_in)
    : costs(std::move(costs_in)),
      cellSpec(GeneralizedCellSpec::fromMatrix(costs)),
      encoding(encoding_in), numRows(rows), numCols(cols),
      nodeNets(rows + 1, cols + 1, circuit::kNoNet)
{
    rl_assert(rows >= 1 && cols >= 1, "grid needs at least one cell");
    const bio::Alphabet &alphabet = costs.alphabet();
    const unsigned bits = cellSpec.symbolBits;

    go = net.input("go");
    for (size_t i = 0; i < rows; ++i)
        rowSymbols.push_back(circuit::buildInputBus(
            net, util::format("a%zu_", i), bits));
    for (size_t j = 0; j < cols; ++j)
        colSymbols.push_back(circuit::buildInputBus(
            net, util::format("b%zu_", j), bits));

    // Per-symbol gap weight table, indexed by symbol code.
    std::vector<bio::Score> gap_by_symbol(size_t(1) << bits,
                                          bio::kScoreInfinity);
    for (bio::Symbol s = 0; s < alphabet.size(); ++s)
        gap_by_symbol[s] = costs.gap(s);

    // Pair weight table indexed by a + (b << bits).
    std::vector<bio::Score> pair_by_code(size_t(1) << (2 * bits),
                                         bio::kScoreInfinity);
    for (bio::Symbol a = 0; a < alphabet.size(); ++a)
        for (bio::Symbol b = 0; b < alphabet.size(); ++b)
            pair_by_code[a + (size_t(b) << bits)] = costs.pair(a, b);

    // Boundary chains apply the symbol-dependent gap weights.
    nodeNets.at(0, 0) = go;
    for (size_t j = 1; j <= cols; ++j)
        nodeNets.at(0, j) = buildEdge(nodeNets.at(0, j - 1),
                                      colSymbols[j - 1], gap_by_symbol,
                                      encoding);
    for (size_t i = 1; i <= rows; ++i)
        nodeNets.at(i, 0) = buildEdge(nodeNets.at(i - 1, 0),
                                      rowSymbols[i - 1], gap_by_symbol,
                                      encoding);

    for (size_t i = 1; i <= rows; ++i) {
        for (size_t j = 1; j <= cols; ++j) {
            circuit::NetId top = buildEdge(nodeNets.at(i - 1, j),
                                           rowSymbols[i - 1],
                                           gap_by_symbol, encoding);
            circuit::NetId left = buildEdge(nodeNets.at(i, j - 1),
                                            colSymbols[j - 1],
                                            gap_by_symbol, encoding);
            circuit::Bus pair_select = rowSymbols[i - 1];
            pair_select.insert(pair_select.end(),
                               colSymbols[j - 1].begin(),
                               colSymbols[j - 1].end());
            circuit::NetId diag = buildEdge(nodeNets.at(i - 1, j - 1),
                                            pair_select, pair_by_code,
                                            encoding);
            nodeNets.at(i, j) = net.orGate({top, left, diag});
        }
    }

    net.validate();
    compiled = std::make_unique<circuit::CompiledNetlist>(net);
    simulator = std::make_unique<circuit::CompiledSim>(*compiled);
}

circuit::NetId
GeneralizedGridCircuit::buildEdge(circuit::NetId pred,
                                  const circuit::Bus &sel,
                                  const std::vector<bio::Score> &weights,
                                  DelayEncoding enc)
{
    return buildWeightApplicator(net, pred, sel, weights, cellSpec, enc);
}

detail::GridFabricView
GeneralizedGridCircuit::view() const
{
    detail::GridFabricView v;
    v.compiled = compiled.get();
    v.go = go;
    v.sink = nodeNets.at(numRows, numCols);
    v.rowSymbols = &rowSymbols;
    v.colSymbols = &colSymbols;
    v.symbolBits = cellSpec.symbolBits;
    v.alphabet = &costs.alphabet();
    v.rows = numRows;
    v.cols = numCols;
    return v;
}

uint64_t
GeneralizedGridCircuit::defaultBudget() const
{
    return (numRows + numCols) *
               static_cast<uint64_t>(cellSpec.dynamicRange) +
           2;
}

CircuitRunResult
GeneralizedGridCircuit::align(const bio::Sequence &a,
                              const bio::Sequence &b,
                              uint64_t max_cycles)
{
    if (max_cycles == 0)
        max_cycles = defaultBudget();
    return detail::raceFabricPair(*simulator, view(), a, b, max_cycles);
}

LaneBatchResult
GeneralizedGridCircuit::alignLanes(const std::vector<LanePair> &lanes,
                                   uint64_t max_cycles,
                                   KernelCounters *counters) const
{
    if (max_cycles == 0)
        max_cycles = defaultBudget();
    return detail::raceFabricLanes(view(), lanes, max_cycles, counters);
}

CircuitRunResult
GeneralizedGridCircuit::alignReference(const bio::Sequence &a,
                                       const bio::Sequence &b,
                                       uint64_t max_cycles)
{
    if (max_cycles == 0)
        max_cycles = defaultBudget();
    return detail::raceFabricPair(referenceSim(), view(), a, b,
                                  max_cycles);
}

circuit::SyncSim &
GeneralizedGridCircuit::referenceSim()
{
    if (!refSim)
        refSim = std::make_unique<circuit::SyncSim>(net);
    return *refSim;
}

std::array<size_t, circuit::kGateTypeCount>
GeneralizedGridCircuit::cellInventory(const bio::ScoreMatrix &costs,
                                      DelayEncoding encoding)
{
    GeneralizedCellSpec spec = GeneralizedCellSpec::fromMatrix(costs);
    const unsigned bits = spec.symbolBits;
    circuit::Netlist scratch;
    circuit::NetId pred = scratch.input("pred");
    circuit::Bus sym_a = circuit::buildInputBus(scratch, "a", bits);
    circuit::Bus sym_b = circuit::buildInputBus(scratch, "b", bits);

    const bio::Alphabet &alphabet = costs.alphabet();
    std::vector<bio::Score> gap_by_symbol(size_t(1) << bits,
                                          bio::kScoreInfinity);
    for (bio::Symbol s = 0; s < alphabet.size(); ++s)
        gap_by_symbol[s] = costs.gap(s);
    std::vector<bio::Score> pair_by_code(size_t(1) << (2 * bits),
                                         bio::kScoreInfinity);
    for (bio::Symbol a = 0; a < alphabet.size(); ++a)
        for (bio::Symbol b = 0; b < alphabet.size(); ++b)
            pair_by_code[a + (size_t(b) << bits)] = costs.pair(a, b);

    // One cell = two gap applicators + one pair applicator + OR3.
    circuit::NetId top = buildWeightApplicator(scratch, pred, sym_a,
                                               gap_by_symbol, spec,
                                               encoding);
    circuit::NetId left = buildWeightApplicator(scratch, pred, sym_b,
                                                gap_by_symbol, spec,
                                                encoding);
    circuit::Bus pair_sel = sym_a;
    pair_sel.insert(pair_sel.end(), sym_b.begin(), sym_b.end());
    circuit::NetId diag = buildWeightApplicator(scratch, pred, pair_sel,
                                                pair_by_code, spec,
                                                encoding);
    scratch.orGate({top, left, diag});

    auto counts = scratch.typeCounts();
    // Inputs are shared fabric wiring, not per-cell hardware.
    counts[static_cast<size_t>(circuit::GateType::Input)] = 0;
    return counts;
}

} // namespace racelogic::core
