/**
 * @file
 * Bucketed wavefront race kernel (Dial's algorithm on the DAG).
 *
 * The paper's OR-type race *is* a shortest-path wavefront sweeping the
 * edit graph one clock cycle at a time; the generic discrete-event
 * simulator (sim::EventQueue) models that with a binary heap of
 * std::function closures -- one heap allocation plus O(log E) ordering
 * work per edge arrival.  But Race Logic delays are small bounded
 * integers (cost-matrix weights), so a calendar of W+1 circular
 * buckets (Dial's algorithm, W = the largest edge weight) schedules
 * the same arrivals in O(1) each: an arrival at tick t+w goes into
 * bucket (t+w) mod (W+1), and the simulation simply drains bucket t,
 * t+1, t+2, ... -- exactly the clock the hardware would tick.  Total
 * cost O(E + T) with flat arrays, no per-event allocation, and no
 * comparator.
 *
 * Two kernels are provided:
 *
 *  - WavefrontRaceKernel: races any graph::Dag via its packed CSR
 *    view.  Supports Or (first-arrival, min) and And (last-arrival
 *    via in-degree countdown, max) races, and an early-termination
 *    horizon: arrivals past the horizon are never scheduled, which is
 *    the Section 6 abort counter -- a threshold screen stops racing
 *    at `threshold` cycles instead of draining the whole grid.
 *
 *  - raceEditGrid(): the same bucket sweep specialized to the
 *    (|a|+1) x (|b|+1) edit graph of two sequences, with the three
 *    out-edges of each cell (delete / insert / align) generated on
 *    the fly from the cost matrix.  No graph is materialized at all,
 *    which is what makes the behavioral race-grid aligner fast enough
 *    for database screening sweeps.
 *
 * Both kernels fire events in the same order as the event-driven
 * reference (rl/core/race_network.h raceDagEventDriven), so outcomes
 * -- firing times *and* event counts -- are bit-identical; the
 * equivalence suite in tests/core_wavefront_test.cc checks them
 * against each other and against the DP oracle.  sim::EventQueue
 * remains the substrate of the gate-level synchronous simulator,
 * which genuinely needs timestamped callbacks.
 */

#ifndef RACELOGIC_CORE_WAVEFRONT_H
#define RACELOGIC_CORE_WAVEFRONT_H

#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/core/cancel.h"
#include "rl/core/kernel_counters.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_network.h"
#include "rl/graph/dag.h"

namespace racelogic::core {

/**
 * Largest edge weight the bucket calendar will size itself for.  The
 * ring needs maxWeight+1 buckets, so a pathological graph with one
 * enormous delay would explode memory; raceDag() falls back to the
 * heap-based event kernel above this bound.  Every workload in the
 * paper (cost matrices, DTW sample distances) sits far below it.
 */
constexpr graph::Weight kMaxWavefrontWeight = 1 << 16;

/**
 * Calendar-queue race kernel over a DAG's packed CSR view.
 *
 * Construction snapshots the adjacency (O(V + E)); race() is const
 * and allocates only its own per-race state, so one kernel can race
 * many source sets -- including concurrently from several threads.
 *
 * The caller is responsible for validity (acyclic, weights in
 * [0, kMaxWavefrontWeight]); raceDag() performs those checks before
 * constructing a kernel.
 */
class WavefrontRaceKernel
{
  public:
    explicit WavefrontRaceKernel(const graph::Dag &dag);

    /** True iff the bucket calendar can represent this graph. */
    static bool suitableFor(const graph::Dag &dag);

    /**
     * Race from `sources` (all injected at tick 0).
     *
     * @param horizon  Arrivals later than this tick are never
     *                 scheduled (Section 6 early termination); the
     *                 default races to full drain.
     */
    RaceOutcome race(const std::vector<graph::NodeId> &sources,
                     RaceType type,
                     sim::Tick horizon = sim::kTickInfinity) const;

    size_t nodeCount() const { return inDegree.size(); }
    size_t edgeCount() const { return csr.edgeCount(); }

  private:
    graph::CsrOutEdges csr;
    std::vector<uint32_t> inDegree;
    graph::Weight maxWeight = 0;
};

/**
 * The Dial's-algorithm bucket calendar as a single flat arena, shared
 * by the fused sweep kernels (raceEditGrid here and
 * pangraph::raceAlignmentGrid).
 *
 * Instead of a vector-of-vectors calendar (one heap allocation per
 * ring slot, re-allocated every call), the pending arrivals live in
 * one backing vector of {cell, next} nodes and the ring holds only
 * head offsets into it -- push is an O(1) append plus a head swap,
 * and a drain walks a detached chain.  A calendar kept across calls
 * retains the arena's capacity, so steady-state screening and read
 * mapping (the per-thread batch loops) allocate no calendar storage
 * per comparison.
 *
 * The chain-detach drain relies on Dial's w >= 1 invariant: a fire at
 * tick t must never schedule back into bucket t (zero-weight edges
 * need kernel-level special-casing, as the super-sink wires of the
 * graph-align kernel do).
 */
struct BucketCalendar {
    /** One pending arrival, chained per bucket. */
    struct Node {
        uint32_t cell;
        uint32_t next; ///< arena offset of the next node, or kNil
    };

    static constexpr uint32_t kNil = ~uint32_t(0);

    std::vector<uint32_t> heads; ///< per ring slot: chain head offset
    std::vector<Node> arena;     ///< the one backing vector
    size_t pending = 0;          ///< scheduled-but-undrained arrivals

    /** Empty the ring to `ring` buckets, keeping arena capacity. */
    void
    reset(size_t ring)
    {
        heads.assign(ring, kNil);
        arena.clear();
        pending = 0;
    }

    /**
     * Release retained capacity.  reset() deliberately keeps the
     * arena's high-water allocation so steady-state batch loops
     * allocate nothing per comparison -- but one oversized solve then
     * pins that high-water for the thread's lifetime.  Brownout and
     * the idle-worker timer call this to give the memory back; the
     * next race simply regrows.
     */
    void
    shrinkToFit()
    {
        heads.clear();
        heads.shrink_to_fit();
        arena.clear();
        arena.shrink_to_fit();
        pending = 0;
    }

    /** Heap bytes currently retained by the ring and arena. */
    size_t
    residentBytes() const
    {
        return heads.capacity() * sizeof(uint32_t) +
               arena.capacity() * sizeof(Node);
    }

    /** O(1) append of `cell` to the bucket at ring slot `slot`. */
    void
    push(uint32_t cell, size_t slot)
    {
        uint32_t &head = heads[slot];
        arena.push_back({cell, head});
        head = static_cast<uint32_t>(arena.size() - 1);
        ++pending;
    }

    /**
     * Append `cell` to the bucket `w` ticks ahead of the slot being
     * drained, with one conditional wrap instead of a division
     * (requires w < ring, i.e. ring sized to maxWeight + 1).
     */
    void
    pushAhead(uint32_t cell, size_t slot, size_t w, size_t ring)
    {
        size_t at = slot + w;
        if (at >= ring)
            at -= ring;
        push(cell, at);
    }

    /** Detach and return slot's chain head (kNil when empty). */
    uint32_t
    detach(size_t slot)
    {
        uint32_t head = heads[slot];
        heads[slot] = kNil;
        return head;
    }

    /**
     * Drain bucket after bucket from tick 0 until the calendar is
     * empty, invoking visit(cell, t, slot) for every scheduled
     * arrival.  Each chain is detached before its nodes are visited:
     * visit may push -- into *other* buckets only (the w >= 1
     * invariant) -- and may grow the arena, so nodes are copied out
     * first.  The current slot (t % ring) is tracked incrementally
     * and handed to visit so pushes divide nothing.
     *
     * `cancel` (nullptr = never) is polled once per bucket -- the
     * simulated clock edge, the same granularity as the Section 6
     * abort counter -- so cooperative cancellation costs nothing per
     * event.  Returns false iff the sweep stopped early on a
     * cancelled token; arrivals still pending are simply abandoned
     * (the next reset() clears them).
     */
    template <typename Visit>
    bool
    drain(size_t ring, Visit &&visit, const CancelToken *cancel = nullptr)
    {
        size_t slot = 0;
        for (sim::Tick t = 0; pending > 0; ++t) {
            if (cancel && cancel->cancelled())
                return false;
            uint32_t node = detach(slot);
            while (node != kNil) {
                const Node entry = arena[node];
                node = entry.next;
                --pending;
                visit(entry.cell, t, slot);
            }
            if (++slot == ring)
                slot = 0;
        }
        return true;
    }
};

/**
 * Reusable scratch state for raceEditGrid: the bucket calendar plus
 * the hoisted per-symbol gap weights.
 */
struct RaceGridScratch {
    BucketCalendar calendar;
    std::vector<bio::Score> gapA, gapB; ///< hoisted gap weights

    /** Release all retained capacity (see BucketCalendar). */
    void
    shrinkToFit()
    {
        calendar.shrinkToFit();
        gapA.clear();
        gapA.shrink_to_fit();
        gapB.clear();
        gapB.shrink_to_fit();
    }

    /** Heap bytes currently retained across calendar and rows. */
    size_t
    residentBytes() const
    {
        return calendar.residentBytes() +
               (gapA.capacity() + gapB.capacity()) * sizeof(bio::Score);
    }
};

/**
 * Bucket-wavefront OR-type race of the edit graph of (a, b) under a
 * race-ready cost matrix, without materializing the graph.
 *
 * Semantically identical to racing makeEditGraph(a, b, costs) with
 * raceDag(..., RaceType::Or, horizon): same arrival grid (filled for
 * every cell firing at or before `horizon`), same event count, same
 * sink score.  `completed` is false iff the sink had not fired by the
 * horizon, in which case score is bio::kScoreInfinity and
 * latencyCycles is the horizon (the cycle the abort counter tripped).
 *
 * fatal() on alphabet mismatch; requires a Cost-kind matrix with all
 * finite weights >= 1 (checked by RaceGridAligner's constructor).
 */
RaceGridResult raceEditGrid(const bio::Sequence &a,
                            const bio::Sequence &b,
                            const bio::ScoreMatrix &costs,
                            sim::Tick horizon = sim::kTickInfinity);

/**
 * Scratch-reuse overload: identical outcome, but the bucket calendar
 * lives in (and keeps the capacity of) the caller's scratch.
 *
 * `cancel` (nullptr = never) is polled once per simulated clock
 * cycle; a cancelled race comes back completed = false with
 * cancelled = true, score kScoreInfinity, and latencyCycles the last
 * cycle swept -- the same typed-abort shape as a horizon trip, so
 * callers built around Section 6 aborts handle it unchanged.
 *
 * `counters` (nullptr = off) accumulates per-race profiling counts
 * the sweep tracks anyway -- events drained, buckets swept, arena
 * high-water, cells fired, cancel/horizon aborts.  It is touched only
 * after the drain, so the raced result is bit-identical either way.
 */
RaceGridResult raceEditGrid(const bio::Sequence &a,
                            const bio::Sequence &b,
                            const bio::ScoreMatrix &costs,
                            sim::Tick horizon,
                            RaceGridScratch &scratch,
                            const CancelToken *cancel = nullptr,
                            KernelCounters *counters = nullptr);

} // namespace racelogic::core

#endif // RACELOGIC_CORE_WAVEFRONT_H
