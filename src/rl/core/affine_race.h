/**
 * @file
 * Racing affine-gap alignments.
 *
 * Thin glue: build the 3-layer Gotoh lattice
 * (rl/bio/affine.h) and run the standard OR-type race over it.  One
 * call shows the paradigm generalizing beyond the paper's
 * linear-gap case study with zero new hardware concepts -- only a
 * different DAG.
 */

#ifndef RACELOGIC_CORE_AFFINE_RACE_H
#define RACELOGIC_CORE_AFFINE_RACE_H

#include "rl/bio/affine.h"
#include "rl/core/race_network.h"

namespace racelogic::core {

/** Outcome of an affine-gap race. */
struct AffineRaceResult {
    /** Minimal affine-gap alignment cost (= sink arrival cycle). */
    bio::Score score = 0;

    /** Race duration in cycles. */
    sim::Tick latencyCycles = 0;

    /** Events processed by the temporal simulation. */
    uint64_t events = 0;

    /** Lattice size actually raced (3 layers + sink). */
    size_t nodes = 0;
};

/**
 * Race the affine-gap alignment of (a, b).
 *
 * @param costs  Cost-kind substitution matrix (finite pair weights
 *               >= 1; forbidden pairs allowed).
 * @param gaps   Affine gap parameters (open >= extend >= 1).
 */
AffineRaceResult raceAffine(const bio::Sequence &a,
                            const bio::Sequence &b,
                            const bio::ScoreMatrix &costs,
                            const bio::AffineGapCosts &gaps);

} // namespace racelogic::core

#endif // RACELOGIC_CORE_AFFINE_RACE_H
