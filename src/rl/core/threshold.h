/**
 * @file
 * Threshold-based early termination (paper Section 6).
 *
 * A unique property of the OR-type race: "the maximum possible score
 * is known at each instant in time, and not only at the end of the
 * computation".  If the sink has not fired by cycle T, the score is
 * already known to exceed T, so a screening engine can abort and
 * move to the next candidate -- the systolic baseline must always
 * run to completion.  In database screening, where genuinely related
 * sequences are rare, this makes the *best* case the representative
 * one.
 */

#ifndef RACELOGIC_CORE_THRESHOLD_H
#define RACELOGIC_CORE_THRESHOLD_H

#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/core/race_grid.h"

namespace racelogic::core {

/** Verdict for one screened candidate. */
struct ScreenOutcome {
    /** True iff the race cost was <= the threshold. */
    bool similar = false;

    /** Exact score when similar; kScoreInfinity when aborted. */
    bio::Score score = bio::kScoreInfinity;

    /** Cycles the fabric was busy: min(score, threshold). */
    sim::Tick cyclesUsed = 0;
};

/** Aggregate statistics over a screened database. */
struct ScreeningStats {
    size_t candidates = 0;
    size_t acceptedCount = 0;
    uint64_t cyclesWithThreshold = 0; ///< total, early termination on
    uint64_t cyclesFullRace = 0;      ///< total, racing to completion
    std::vector<bool> accepted;       ///< verdict per candidate

    /** Throughput gain from early termination. */
    double
    speedup() const
    {
        return cyclesWithThreshold == 0
                   ? 1.0
                   : static_cast<double>(cyclesFullRace) /
                         static_cast<double>(cyclesWithThreshold);
    }
};

/**
 * Behavioral screening engine over a race-ready cost matrix.
 *
 * The verdict is exact (tests check it against a full DP filter):
 * aborting at the threshold can never misclassify, because the race
 * cost is monotone in time.
 */
class ThresholdScreener
{
  public:
    /**
     * @param costs      Race-ready cost matrix (finite weights >= 1;
     *                   forbidden pairs allowed).
     * @param threshold  Maximum cost still considered "similar".
     */
    ThresholdScreener(bio::ScoreMatrix costs, bio::Score threshold);

    /** Screen one candidate against `query`. */
    ScreenOutcome screen(const bio::Sequence &query,
                         const bio::Sequence &candidate) const;

    /** Screen a whole database and aggregate fabric-busy cycles. */
    ScreeningStats screenDatabase(
        const bio::Sequence &query,
        const std::vector<bio::Sequence> &database) const;

    bio::Score threshold() const { return maxCost; }

  private:
    RaceGridAligner racer;
    bio::Score maxCost;
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_THRESHOLD_H
