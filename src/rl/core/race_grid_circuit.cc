#include "rl/core/race_grid_circuit.h"

#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::core {

namespace detail {

void
checkFabricPair(const GridFabricView &view, const bio::Sequence &a,
                const bio::Sequence &b)
{
    rl_assert(a.alphabet() == *view.alphabet &&
                  b.alphabet() == *view.alphabet,
              "sequence alphabet does not match the fabric");
    rl_assert(a.size() == view.rows && b.size() == view.cols,
              "this fabric aligns exactly ", view.rows, " x ",
              view.cols, " symbols (got ", a.size(), " x ", b.size(),
              ")");
}

LaneBatchResult
raceFabricLanes(const GridFabricView &view,
                const std::vector<LanePair> &lanes, uint64_t max_cycles,
                KernelCounters *counters)
{
    rl_assert(!lanes.empty() && lanes.size() <= 64,
              "lane-packed races take 1..64 pairs (got ", lanes.size(),
              ")");
    circuit::CompiledSim sim(*view.compiled,
                             static_cast<unsigned>(lanes.size()));
    for (unsigned lane = 0; lane < lanes.size(); ++lane) {
        const bio::Sequence &a = *lanes[lane].a;
        const bio::Sequence &b = *lanes[lane].b;
        checkFabricPair(view, a, b);
        for (size_t i = 0; i < view.rows; ++i)
            for (unsigned bit = 0; bit < view.symbolBits; ++bit)
                sim.setInputLane((*view.rowSymbols)[i][bit], lane,
                                 (a[i] >> bit) & 1);
        for (size_t j = 0; j < view.cols; ++j)
            for (unsigned bit = 0; bit < view.symbolBits; ++bit)
                sim.setInputLane((*view.colSymbols)[j][bit], lane,
                                 (b[j] >> bit) & 1);
    }
    sim.setInput(view.go, true);

    std::array<uint64_t, 64> arrival;
    sim.raceLanes(view.sink, max_cycles, arrival, counters);

    LaneBatchResult out;
    out.cyclesRun = sim.cycle();
    out.activity = sim.activity();
    out.lanes.reserve(lanes.size());
    for (unsigned lane = 0; lane < lanes.size(); ++lane) {
        CircuitRunResult r;
        r.cyclesRun = out.cyclesRun;
        if (arrival[lane] != circuit::kLaneNever) {
            r.completed = true;
            r.score = static_cast<bio::Score>(arrival[lane]);
        }
        out.lanes.push_back(r);
    }
    return out;
}

} // namespace detail

RaceGridCircuit::RaceGridCircuit(const bio::Alphabet &alphabet_in,
                                 size_t rows, size_t cols)
    : numRows(rows), numCols(cols), alphabet(alphabet_in),
      nodeNets(rows + 1, cols + 1, circuit::kNoNet)
{
    rl_assert(rows >= 1 && cols >= 1, "grid needs at least one cell");
    const unsigned bits = std::max(1u, alphabet.bitsPerSymbol());

    // Primary inputs: the start signal and one symbol bus per row
    // and per column -- the strings are external conditions, which
    // is what makes the fabric reusable across comparisons.
    go = net.input("go");
    rowSymbols.reserve(rows);
    for (size_t i = 0; i < rows; ++i)
        rowSymbols.push_back(circuit::buildInputBus(
            net, util::format("a%zu_", i), bits));
    colSymbols.reserve(cols);
    for (size_t j = 0; j < cols; ++j)
        colSymbols.push_back(circuit::buildInputBus(
            net, util::format("b%zu_", j), bits));

    // Boundary delay chains: indel weight 1 per step.
    nodeNets.at(0, 0) = go;
    for (size_t j = 1; j <= cols; ++j)
        nodeNets.at(0, j) = net.dff(nodeNets.at(0, j - 1));
    for (size_t i = 1; i <= rows; ++i)
        nodeNets.at(i, 0) = net.dff(nodeNets.at(i - 1, 0));

    // Unit cells (Fig. 4b): OR(top-delayed, left-delayed,
    // match & diag-delayed).
    for (size_t i = 1; i <= rows; ++i) {
        for (size_t j = 1; j <= cols; ++j) {
            circuit::NetId match = circuit::buildMatchComparator(
                net, rowSymbols[i - 1], colSymbols[j - 1]);
            circuit::NetId top = net.dff(nodeNets.at(i - 1, j));
            circuit::NetId left = net.dff(nodeNets.at(i, j - 1));
            circuit::NetId diag_delayed =
                net.dff(nodeNets.at(i - 1, j - 1));
            circuit::NetId diag = net.andGate({match, diag_delayed});
            nodeNets.at(i, j) = net.orGate({top, left, diag});
        }
    }

    net.validate();
    compiled = std::make_unique<circuit::CompiledNetlist>(net);
    simulator = std::make_unique<circuit::CompiledSim>(*compiled);
}

detail::GridFabricView
RaceGridCircuit::view() const
{
    detail::GridFabricView v;
    v.compiled = compiled.get();
    v.go = go;
    v.sink = nodeNets.at(numRows, numCols);
    v.rowSymbols = &rowSymbols;
    v.colSymbols = &colSymbols;
    v.symbolBits = std::max(1u, alphabet.bitsPerSymbol());
    v.alphabet = &alphabet;
    v.rows = numRows;
    v.cols = numCols;
    return v;
}

CircuitRunResult
RaceGridCircuit::align(const bio::Sequence &a, const bio::Sequence &b,
                       uint64_t max_cycles)
{
    if (max_cycles == 0)
        max_cycles = numRows + numCols + 2;
    return detail::raceFabricPair(*simulator, view(), a, b, max_cycles);
}

LaneBatchResult
RaceGridCircuit::alignLanes(const std::vector<LanePair> &lanes,
                            uint64_t max_cycles,
                            KernelCounters *counters) const
{
    if (max_cycles == 0)
        max_cycles = numRows + numCols + 2;
    return detail::raceFabricLanes(view(), lanes, max_cycles, counters);
}

CircuitRunResult
RaceGridCircuit::alignReference(const bio::Sequence &a,
                                const bio::Sequence &b,
                                uint64_t max_cycles)
{
    if (max_cycles == 0)
        max_cycles = numRows + numCols + 2;
    return detail::raceFabricPair(referenceSim(), view(), a, b,
                                  max_cycles);
}

circuit::SyncSim &
RaceGridCircuit::referenceSim()
{
    if (!refSim)
        refSim = std::make_unique<circuit::SyncSim>(net);
    return *refSim;
}

util::Grid<sim::Tick>
RaceGridCircuit::arrivalMap()
{
    // Reconstructable only for the sink-visible prefix of the run:
    // report which nodes are high now; nodes still low are marked
    // never-fired.  (Exact per-cell firing cycles come from the
    // behavioral model; this map is used for consistency checks.)
    util::Grid<sim::Tick> map(numRows + 1, numCols + 1,
                              sim::kTickInfinity);
    for (size_t i = 0; i <= numRows; ++i)
        for (size_t j = 0; j <= numCols; ++j)
            if (simulator->value(nodeNets.at(i, j)))
                map.at(i, j) = simulator->cycle();
    return map;
}

std::array<size_t, circuit::kGateTypeCount>
RaceGridCircuit::unitCellInventory(unsigned symbol_bits)
{
    std::array<size_t, circuit::kGateTypeCount> inv{};
    auto slot = [&inv](circuit::GateType t) -> size_t & {
        return inv[static_cast<size_t>(t)];
    };
    slot(circuit::GateType::Dff) = 3;  // top, left, diagonal delays
    slot(circuit::GateType::Or) = 1;   // the min node
    // diagonal gating AND + comparator AND (multi-bit symbols only)
    slot(circuit::GateType::And) = symbol_bits > 1 ? 2 : 1;
    slot(circuit::GateType::Xnor) = symbol_bits; // Eq. 2 comparator
    return inv;
}

} // namespace racelogic::core
