#include "rl/core/race_grid_circuit.h"

#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::core {

RaceGridCircuit::RaceGridCircuit(const bio::Alphabet &alphabet_in,
                                 size_t rows, size_t cols)
    : numRows(rows), numCols(cols), alphabet(alphabet_in),
      nodeNets(rows + 1, cols + 1, circuit::kNoNet)
{
    rl_assert(rows >= 1 && cols >= 1, "grid needs at least one cell");
    const unsigned bits = std::max(1u, alphabet.bitsPerSymbol());

    // Primary inputs: the start signal and one symbol bus per row
    // and per column -- the strings are external conditions, which
    // is what makes the fabric reusable across comparisons.
    go = net.input("go");
    rowSymbols.reserve(rows);
    for (size_t i = 0; i < rows; ++i)
        rowSymbols.push_back(circuit::buildInputBus(
            net, util::format("a%zu_", i), bits));
    colSymbols.reserve(cols);
    for (size_t j = 0; j < cols; ++j)
        colSymbols.push_back(circuit::buildInputBus(
            net, util::format("b%zu_", j), bits));

    // Boundary delay chains: indel weight 1 per step.
    nodeNets.at(0, 0) = go;
    for (size_t j = 1; j <= cols; ++j)
        nodeNets.at(0, j) = net.dff(nodeNets.at(0, j - 1));
    for (size_t i = 1; i <= rows; ++i)
        nodeNets.at(i, 0) = net.dff(nodeNets.at(i - 1, 0));

    // Unit cells (Fig. 4b): OR(top-delayed, left-delayed,
    // match & diag-delayed).
    for (size_t i = 1; i <= rows; ++i) {
        for (size_t j = 1; j <= cols; ++j) {
            circuit::NetId match = circuit::buildMatchComparator(
                net, rowSymbols[i - 1], colSymbols[j - 1]);
            circuit::NetId top = net.dff(nodeNets.at(i - 1, j));
            circuit::NetId left = net.dff(nodeNets.at(i, j - 1));
            circuit::NetId diag_delayed =
                net.dff(nodeNets.at(i - 1, j - 1));
            circuit::NetId diag = net.andGate({match, diag_delayed});
            nodeNets.at(i, j) = net.orGate({top, left, diag});
        }
    }

    net.validate();
    simulator = std::make_unique<circuit::SyncSim>(net);
}

CircuitRunResult
RaceGridCircuit::align(const bio::Sequence &a, const bio::Sequence &b,
                       uint64_t max_cycles)
{
    rl_assert(a.alphabet() == alphabet && b.alphabet() == alphabet,
              "sequence alphabet does not match the fabric");
    rl_assert(a.size() == numRows && b.size() == numCols,
              "this fabric aligns exactly ", numRows, " x ", numCols,
              " symbols (got ", a.size(), " x ", b.size(), ")");
    if (max_cycles == 0)
        max_cycles = numRows + numCols + 2;

    simulator->reset();
    const unsigned bits = std::max(1u, alphabet.bitsPerSymbol());
    for (size_t i = 0; i < numRows; ++i)
        for (unsigned bit = 0; bit < bits; ++bit)
            simulator->setInput(rowSymbols[i][bit], (a[i] >> bit) & 1);
    for (size_t j = 0; j < numCols; ++j)
        for (unsigned bit = 0; bit < bits; ++bit)
            simulator->setInput(colSymbols[j][bit], (b[j] >> bit) & 1);
    simulator->setInput(go, true);

    CircuitRunResult result;
    auto fired = simulator->runUntil(nodeNets.at(numRows, numCols), true,
                                     max_cycles);
    result.cyclesRun = simulator->cycle();
    if (fired) {
        result.completed = true;
        result.score = static_cast<bio::Score>(*fired);
    }
    return result;
}

util::Grid<sim::Tick>
RaceGridCircuit::arrivalMap()
{
    // Reconstructable only for the sink-visible prefix of the run:
    // report which nodes are high now; nodes still low are marked
    // never-fired.  (Exact per-cell firing cycles come from the
    // behavioral model; this map is used for consistency checks.)
    util::Grid<sim::Tick> map(numRows + 1, numCols + 1,
                              sim::kTickInfinity);
    for (size_t i = 0; i <= numRows; ++i)
        for (size_t j = 0; j <= numCols; ++j)
            if (simulator->value(nodeNets.at(i, j)))
                map.at(i, j) = simulator->cycle();
    return map;
}

std::array<size_t, circuit::kGateTypeCount>
RaceGridCircuit::unitCellInventory(unsigned symbol_bits)
{
    std::array<size_t, circuit::kGateTypeCount> inv{};
    auto slot = [&inv](circuit::GateType t) -> size_t & {
        return inv[static_cast<size_t>(t)];
    };
    slot(circuit::GateType::Dff) = 3;  // top, left, diagonal delays
    slot(circuit::GateType::Or) = 1;   // the min node
    // diagonal gating AND + comparator AND (multi-bit symbols only)
    slot(circuit::GateType::And) = symbol_bits > 1 ? 2 : 1;
    slot(circuit::GateType::Xnor) = symbol_bits; // Eq. 2 comparator
    return inv;
}

} // namespace racelogic::core
