/**
 * @file
 * Gate-level race fabric with data-dependent clock gating (§4.3,
 * Fig. 7), realized with real enable logic rather than an analytic
 * model.
 *
 * The fabric is the same Fig. 4 unit-cell grid as RaceGridCircuit,
 * partitioned into m x m multi-cell regions.  Each region's clock
 * enable is derived exactly as the paper describes: the region wakes
 * when a Boolean "1" reaches any net entering it (the "black" cells'
 * inputs arriving) and sleeps once every cell output inside it has
 * latched high (all "grey" cells done) -- after which its state can
 * never change again, so freezing is safe, which the score-equality
 * tests confirm.
 *
 * Because the simulator charges clock energy only to enabled DFFs,
 * the measured clockedDffCycles of this fabric *is* the gated C_clk
 * activity of Eq. 6, now produced by real gates instead of the
 * behavioral window analysis -- the two are cross-checked in tests.
 */

#ifndef RACELOGIC_CORE_GATED_GRID_CIRCUIT_H
#define RACELOGIC_CORE_GATED_GRID_CIRCUIT_H

#include <memory>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/circuit/builders.h"
#include "rl/circuit/netlist.h"
#include "rl/circuit/sim_sync.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/sim/event_queue.h"
#include "rl/util/grid.h"

namespace racelogic::core {

/** Clock-gated gate-level race aligner. */
class GatedRaceGridCircuit
{
  public:
    /**
     * @param alphabet     Symbol set.
     * @param rows, cols   Fabric dimensions (string lengths).
     * @param region_side  Gating granularity m (Fig. 7a).
     */
    GatedRaceGridCircuit(const bio::Alphabet &alphabet, size_t rows,
                         size_t cols, size_t region_side);

    /** Race one pair (same contract as RaceGridCircuit::align). */
    CircuitRunResult align(const bio::Sequence &a,
                           const bio::Sequence &b,
                           uint64_t max_cycles = 0);

    /** Race up to 64 pairs lock-step on the bit-parallel lanes. */
    LaneBatchResult alignLanes(const std::vector<LanePair> &lanes,
                               uint64_t max_cycles = 0,
                               KernelCounters *counters = nullptr) const;

    /** Replay a race on the interpretive SyncSim reference path. */
    CircuitRunResult alignReference(const bio::Sequence &a,
                                    const bio::Sequence &b,
                                    uint64_t max_cycles = 0);

    size_t regionSide() const { return regionSideLen; }
    size_t regions() const { return regionRows * regionCols; }

    /** Extra gates spent on gating logic (the C_gate overhead). */
    size_t gatingGateCount() const { return gatingGates; }

    const circuit::Netlist &netlist() const { return net; }

    /** The active (compiled) simulator behind align(). */
    circuit::CompiledSim &sim() { return *simulator; }

    /** The lazily created SyncSim behind alignReference(). */
    circuit::SyncSim &referenceSim();

  private:
    detail::GridFabricView view() const;

    size_t numRows;
    size_t numCols;
    size_t regionSideLen;
    size_t regionRows;
    size_t regionCols;
    size_t gatingGates = 0;
    bio::Alphabet alphabet;
    circuit::Netlist net;
    circuit::NetId go = circuit::kNoNet;
    util::Grid<circuit::NetId> nodeNets;
    std::vector<circuit::Bus> rowSymbols;
    std::vector<circuit::Bus> colSymbols;
    std::unique_ptr<circuit::CompiledNetlist> compiled;
    std::unique_ptr<circuit::CompiledSim> simulator;
    std::unique_ptr<circuit::SyncSim> refSim;
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_GATED_GRID_CIRCUIT_H
