#include "rl/core/race_network.h"

#include <algorithm>

#include "rl/circuit/builders.h"
#include "rl/core/wavefront.h"
#include "rl/graph/topo.h"
#include "rl/util/logging.h"

namespace racelogic::core {

namespace {

void
checkRaceable(const graph::Dag &dag)
{
    dag.validateAcyclic();
    for (const graph::Edge &e : dag.edges())
        if (e.weight < 0)
            rl_fatal("edge ", e.from, "->", e.to, " has negative weight ",
                     e.weight, "; Race Logic cannot realize negative "
                     "delays (convert the matrix first, Section 5)");
}

/** The heap-scheduled race body; callers have validated the graph. */
RaceOutcome
raceEventDrivenImpl(const graph::Dag &dag,
                    const std::vector<graph::NodeId> &sources,
                    RaceType type, sim::Tick horizon)
{
    const size_t n = dag.nodeCount();
    RaceOutcome outcome;
    outcome.firing.assign(n, TemporalValue::never());

    // For AND nodes, count in-edges still waiting; the node fires on
    // the last arrival.  For OR nodes, the first arrival fires it and
    // later arrivals are absorbed (the gate is already high).
    std::vector<size_t> waiting(n);
    for (graph::NodeId id = 0; id < n; ++id)
        waiting[id] = dag.inEdges(id).size();

    sim::EventQueue queue;
    // At most one pending arrival per edge can be in flight.
    queue.reserve(dag.edgeCount());

    // fire() marks a node and schedules the arrivals it causes.
    std::function<void(graph::NodeId)> fire = [&](graph::NodeId node) {
        outcome.firing[node] = TemporalValue::at(queue.now());
        outcome.horizon = std::max(outcome.horizon, queue.now());
        for (uint32_t idx : dag.outEdges(node)) {
            const graph::Edge &edge = dag.edges()[idx];
            queue.scheduleIn(static_cast<sim::Tick>(edge.weight), [&, edge] {
                graph::NodeId to = edge.to;
                if (outcome.firing[to].fired())
                    return; // OR node already high
                if (type == RaceType::Or) {
                    fire(to);
                } else {
                    rl_assert(waiting[to] > 0, "arrival underflow");
                    if (--waiting[to] == 0)
                        fire(to); // last arrival = max
                }
            });
        }
    };

    for (graph::NodeId s : sources) {
        rl_assert(s < n, "bad source node ", s);
        // In AND mode a source with in-edges would double-fire; the
        // injected edge simply dominates (hardware ties the input
        // high), so clear its waiting count.
        waiting[s] = 0;
        if (!outcome.firing[s].fired())
            fire(s);
    }

    outcome.events = horizon == sim::kTickInfinity
                         ? queue.run()
                         : queue.runUntil(horizon);
    return outcome;
}

} // namespace

RaceOutcome
raceDag(const graph::Dag &dag, const std::vector<graph::NodeId> &sources,
        RaceType type, sim::Tick horizon)
{
    checkRaceable(dag);
    rl_assert(!sources.empty(), "race needs at least one source");
    if (WavefrontRaceKernel::suitableFor(dag))
        return WavefrontRaceKernel(dag).race(sources, type, horizon);
    return raceEventDrivenImpl(dag, sources, type, horizon);
}

RaceOutcome
raceDagEventDriven(const graph::Dag &dag,
                   const std::vector<graph::NodeId> &sources,
                   RaceType type, sim::Tick horizon)
{
    checkRaceable(dag);
    rl_assert(!sources.empty(), "race needs at least one source");
    return raceEventDrivenImpl(dag, sources, type, horizon);
}

bool
andRaceMatchesDp(const graph::Dag &dag,
                 const std::vector<graph::NodeId> &sources)
{
    std::vector<bool> reach = graph::reachableFromAny(dag, sources);
    for (graph::NodeId id = 0; id < dag.nodeCount(); ++id) {
        if (!reach[id])
            continue;
        bool is_source =
            std::find(sources.begin(), sources.end(), id) != sources.end();
        if (is_source)
            continue;
        for (uint32_t idx : dag.inEdges(id))
            if (!reach[dag.edges()[idx].from])
                return false;
    }
    return true;
}

RaceCircuit
compileRaceCircuit(const graph::Dag &dag,
                   const std::vector<graph::NodeId> &sources,
                   RaceType type)
{
    checkRaceable(dag);
    rl_assert(!sources.empty(), "race needs at least one source");

    RaceCircuit rc;
    const size_t n = dag.nodeCount();
    rc.nodeNets.assign(n, circuit::kNoNet);

    std::vector<bool> is_source(n, false);
    for (graph::NodeId s : sources) {
        rl_assert(s < n, "bad source node ", s);
        is_source[s] = true;
    }

    // Create nets in topological order so edge delay chains always
    // have their driver available.
    std::vector<std::vector<circuit::NetId>> fanin(n);
    for (graph::NodeId node : graph::topologicalOrder(dag)) {
        circuit::NetId net;
        if (is_source[node]) {
            net = rc.netlist.input("src" + std::to_string(node));
            rc.sourceInputs.push_back(net);
        } else if (fanin[node].empty()) {
            // Unreachable non-source node: never fires (tie low).
            net = rc.netlist.constant(false);
        } else if (fanin[node].size() == 1) {
            // Single in-edge: the gate degenerates to a wire.
            net = fanin[node][0];
        } else if (type == RaceType::Or) {
            net = rc.netlist.orGate(fanin[node]);
        } else {
            net = rc.netlist.andGate(fanin[node]);
        }
        rc.nodeNets[node] = net;
        for (uint32_t idx : dag.outEdges(node)) {
            const graph::Edge &edge = dag.edges()[idx];
            circuit::NetId delayed = circuit::buildDelayChain(
                rc.netlist, net, static_cast<size_t>(edge.weight));
            fanin[edge.to].push_back(delayed);
        }
    }

    // sourceInputs must follow the order of `sources`, not topo order.
    std::vector<circuit::NetId> ordered;
    ordered.reserve(sources.size());
    for (graph::NodeId s : sources)
        ordered.push_back(rc.nodeNets[s]);
    rc.sourceInputs = std::move(ordered);

    rc.netlist.validate();
    return rc;
}

} // namespace racelogic::core
