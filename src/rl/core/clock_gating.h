/**
 * @file
 * Data-dependent clock gating along the wavefront (paper §4.3).
 *
 * Only cells on the propagating wavefront change state; cells ahead
 * of it are still all-zero and cells behind it have latched.  The
 * fabric is partitioned into m x m "multi-cell regions", each gated
 * as a unit by an H-tree leaf: a region's clock runs only while the
 * wavefront is inside it.  The analysis here turns a race's arrival
 * map into per-region clock windows and aggregate clock activity --
 * the C_clk term that Eq. 6 models and Fig. 5's "with gating" curves
 * plot.
 */

#ifndef RACELOGIC_CORE_CLOCK_GATING_H
#define RACELOGIC_CORE_CLOCK_GATING_H

#include "rl/circuit/sim_sync.h"
#include "rl/core/race_grid.h"
#include "rl/util/grid.h"

namespace racelogic::core {

/** Clock-enable window of one multi-cell region. */
struct RegionWindow {
    /** First cycle the region must be clocked (never = untouched). */
    sim::Tick start = sim::kTickInfinity;

    /** Last cycle the region must be clocked (inclusive). */
    sim::Tick end = 0;

    /** Cycles the region's gated clock runs. */
    sim::Tick
    activeCycles() const
    {
        return start == sim::kTickInfinity ? 0 : end - start + 1;
    }
};

/** Aggregate clock activity with and without gating. */
struct GatingAnalysis {
    size_t regionSide = 1;      ///< m
    size_t regions = 0;         ///< (ceil(N/m))^2 and friends
    uint64_t totalCycles = 0;   ///< race duration

    /** DFF-clock events without gating: dffs x totalCycles. */
    uint64_t ungatedDffCycles = 0;

    /** DFF-clock events with gating: sum over region windows. */
    uint64_t gatedDffCycles = 0;

    /** Gating-logic clock events: regions x totalCycles (Eq. 6's
     *  second term -- the H-tree leaves themselves stay clocked). */
    uint64_t gateOverheadCycles = 0;

    /** Per-region windows (region-grid coordinates). */
    util::Grid<RegionWindow> windows;

    /** Fraction of ungated clock activity that survives gating. */
    double
    clockActivityRatio() const
    {
        return ungatedDffCycles == 0
                   ? 0.0
                   : static_cast<double>(gatedDffCycles) /
                         static_cast<double>(ungatedDffCycles);
    }
};

/**
 * Analyze gated-clock activity for a completed race.
 *
 * A region containing unit cells must be clocked from one cycle
 * before its earliest member fires (its delay elements are then
 * capturing arriving inputs) through one cycle after its latest
 * member fires (the final state latches).  Regions the wavefront
 * never reaches -- e.g. under Section 6 early termination -- are
 * never clocked at all.
 *
 * @param result         Race outcome (arrival map).
 * @param region_side    m: the gated granule is m x m unit cells.
 * @param dffs_per_cell  Delay elements per unit cell (3 for Fig. 4b).
 */
GatingAnalysis analyzeClockGating(const RaceGridResult &result,
                                  size_t region_side,
                                  size_t dffs_per_cell = 3);

/** Measured clock activity of a gated fabric, split by structure. */
struct MeasuredGatedClocks {
    /** Boundary-frame DFF-cycles (the un-gated O(N) delay chains). */
    uint64_t boundaryDffCycles = 0;

    /** Cell-array DFF-cycles -- the gated C_clk term Eq. 6 models. */
    uint64_t cellDffCycles = 0;
};

/**
 * Split the clockedDffCycles a gate-level simulation measured on a
 * GatedRaceGridCircuit into the un-gated boundary frame (rows + cols
 * DFFs, clocked every cycle by construction) and the gated cell
 * array.  Works on both simulator kernels: `activity.cycles` is
 * lane-summed by the compiled simulator, so the boundary term scales
 * with the packed lane count automatically.
 */
MeasuredGatedClocks splitGatedClockActivity(
    const circuit::Activity &activity, size_t rows, size_t cols);

} // namespace racelogic::core

#endif // RACELOGIC_CORE_CLOCK_GATING_H
