/**
 * @file
 * Alignment traceback from race arrival times.
 *
 * The paper's related-work section notes that systolic follow-ups
 * "added markers in processing elements to trace back optimal
 * similarity paths".  Race Logic gets traceback almost for free: the
 * per-cell firing times recorded during the race form a valid DP
 * table, so walking backwards along tight edges (predecessor firing
 * time + edge weight == own firing time) recovers an optimal
 * alignment without re-running any DP.
 */

#ifndef RACELOGIC_CORE_TRACEBACK_H
#define RACELOGIC_CORE_TRACEBACK_H

#include "rl/bio/align_dp.h"
#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/core/race_grid.h"

namespace racelogic::core {

/**
 * Recover an optimal alignment from a completed race.
 *
 * @param result  The race outcome (arrival map) for align(a, b).
 * @param a       Row sequence used in the race.
 * @param b       Column sequence used in the race.
 * @param costs   The cost matrix that was raced.
 *
 * Tie-breaking prefers diagonal, then vertical, then horizontal
 * edges -- the same policy as bio::globalAlign, so the two produce
 * identical alignments, which tests exploit.
 */
bio::Alignment tracebackFromRace(const RaceGridResult &result,
                                 const bio::Sequence &a,
                                 const bio::Sequence &b,
                                 const bio::ScoreMatrix &costs);

} // namespace racelogic::core

#endif // RACELOGIC_CORE_TRACEBACK_H
