/**
 * @file
 * The temporal-value algebra at the heart of Race Logic.
 *
 * A TemporalValue is the arrival time of a rising edge -- the
 * paper's information representation: "a score of n is represented
 * by a Boolean signal '1' appearing at the output of the node n unit
 * delays after t".  Three operators are cheap in this encoding:
 *
 *  - firstArrival (min)  = OR gate,
 *  - lastArrival  (max)  = AND gate,
 *  - delayed(c)   (+c)   = c-deep DFF chain.
 *
 * Together with the never() element these form the min-plus
 * (tropical) and max-plus semirings, which is precisely why
 * shortest/longest-path DP maps onto races.  The algebraic laws are
 * property-tested in tests/core_temporal_test.cc.
 */

#ifndef RACELOGIC_CORE_TEMPORAL_H
#define RACELOGIC_CORE_TEMPORAL_H

#include <algorithm>
#include <initializer_list>

#include "rl/sim/event_queue.h"
#include "rl/util/logging.h"

namespace racelogic::core {

/** Arrival time of a signal's rising edge (or "never"). */
class TemporalValue
{
  public:
    /** A signal that never rises (missing edge / unreachable node). */
    static constexpr TemporalValue
    never()
    {
        return TemporalValue(sim::kTickInfinity);
    }

    /** A signal rising at absolute tick t. */
    static constexpr TemporalValue
    at(sim::Tick t)
    {
        return TemporalValue(t);
    }

    constexpr TemporalValue() : tick(sim::kTickInfinity) {}

    /** True iff the edge ever arrives. */
    constexpr bool fired() const { return tick != sim::kTickInfinity; }

    /** Arrival tick; asserts fired(). */
    sim::Tick
    time() const
    {
        rl_assert(fired(), "reading the time of a never-arriving edge");
        return tick;
    }

    /** Arrival tick or kTickInfinity; no assertion. */
    constexpr sim::Tick rawTime() const { return tick; }

    /**
     * Delay by c ticks (a c-deep DFF chain).  Delaying "never" stays
     * "never": a chain cannot conjure an edge.
     */
    constexpr TemporalValue
    delayed(sim::Tick c) const
    {
        return fired() ? TemporalValue(tick + c) : never();
    }

    constexpr bool
    operator==(const TemporalValue &other) const
    {
        return tick == other.tick;
    }

    /** Earlier edges order first; "never" is the maximum. */
    constexpr bool
    operator<(const TemporalValue &other) const
    {
        return tick < other.tick;
    }

  private:
    explicit constexpr TemporalValue(sim::Tick t) : tick(t) {}

    sim::Tick tick;
};

/** OR gate: the earliest of two edges. */
constexpr TemporalValue
firstArrival(TemporalValue a, TemporalValue b)
{
    return a < b ? a : b;
}

/**
 * AND gate: the latest of two edges.  If either input never fires
 * the output never fires -- the hardware waits forever.
 */
constexpr TemporalValue
lastArrival(TemporalValue a, TemporalValue b)
{
    if (!a.fired() || !b.fired())
        return TemporalValue::never();
    return a < b ? b : a;
}

/** N-ary firstArrival. */
inline TemporalValue
firstArrival(std::initializer_list<TemporalValue> values)
{
    TemporalValue best = TemporalValue::never();
    for (TemporalValue v : values)
        best = firstArrival(best, v);
    return best;
}

/** N-ary lastArrival. */
inline TemporalValue
lastArrival(std::initializer_list<TemporalValue> values)
{
    rl_assert(values.size() > 0, "lastArrival of nothing");
    TemporalValue worst = TemporalValue::at(0);
    for (TemporalValue v : values)
        worst = lastArrival(worst, v);
    return worst;
}

} // namespace racelogic::core

#endif // RACELOGIC_CORE_TEMPORAL_H
