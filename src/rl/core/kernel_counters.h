/**
 * @file
 * KernelCounters: per-race profiling counters the wavefront kernels
 * and the compiled gate-level simulator already compute (or can
 * derive for free) while racing.
 *
 * Every kernel entry point that accepts one takes it as an optional
 * out-param (`KernelCounters *counters = nullptr`): a null pointer
 * costs nothing on the hot path -- the kernels only touch the struct
 * after the sweep, from values they tracked anyway -- and the raced
 * result is bit-identical either way.  Counters *accumulate* so one
 * struct can aggregate a whole batch; scratchHighWater is a running
 * maximum, everything else a running sum.
 *
 * The struct lives in rl/core (the lowest layer that races) so the
 * grid kernel, the fused graph kernel, and the circuit simulator can
 * all fill it without depending on rl/telemetry; the serve daemon
 * drains it into telemetry::Registry series per request.
 */

#ifndef RACELOGIC_CORE_KERNEL_COUNTERS_H
#define RACELOGIC_CORE_KERNEL_COUNTERS_H

#include <algorithm>
#include <cstdint>

namespace racelogic::core {

struct KernelCounters {
    /** Calendar events drained (one per scheduled arrival swept). */
    uint64_t events = 0;

    /** Calendar buckets swept: simulated clock cycles the race ran. */
    uint64_t bucketsDrained = 0;

    /** Peak calendar arena nodes allocated in any single race. */
    uint64_t scratchHighWater = 0;

    /**
     * Structure elements that fired: grid cells, product states, or
     * (gate-level) simulation lanes that reached the sink.
     */
    uint64_t lanesOccupied = 0;

    /** Races aborted by a cancel token (deadline, caller gave up). */
    uint64_t cancels = 0;

    /** Races stopped by the Section 6 horizon before the sink fired. */
    uint64_t horizonAborts = 0;

    /** Fold another race's counters into this aggregate. */
    void
    merge(const KernelCounters &other)
    {
        events += other.events;
        bucketsDrained += other.bucketsDrained;
        scratchHighWater =
            std::max(scratchHighWater, other.scratchHighWater);
        lanesOccupied += other.lanesOccupied;
        cancels += other.cancels;
        horizonAborts += other.horizonAborts;
    }
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_KERNEL_COUNTERS_H
