#include "rl/core/race_aligner.h"

#include "rl/core/generalized.h"
#include "rl/util/logging.h"

namespace racelogic::core {

namespace {

bio::ScoreMatrix
raceReady(const bio::ScoreMatrix &matrix,
          std::optional<bio::ShortestPathForm> &converted)
{
    if (matrix.isCost())
        return matrix;
    converted = bio::toShortestPathForm(matrix);
    return converted->costs;
}

} // namespace

RaceAligner::RaceAligner(const bio::ScoreMatrix &matrix, Backend backend)
    : converted(), racer(raceReady(matrix, converted)), mode(backend)
{}

AlignOutcome
RaceAligner::align(const bio::Sequence &a, const bio::Sequence &b) const
{
    AlignOutcome outcome;
    outcome.detail = racer.align(a, b);
    outcome.racedCost = outcome.detail.score;
    outcome.latencyCycles = outcome.detail.latencyCycles;

    if (mode == Backend::GateLevel) {
        // Build the synthesizable fabric for this size and cross-check
        // the behavioral result against real gates.
        GeneralizedGridCircuit fabric(racer.matrix(), a.size(), b.size());
        CircuitRunResult run = fabric.align(a, b);
        rl_assert(run.completed,
                  "gate-level race did not complete within budget");
        rl_assert(run.score == outcome.racedCost,
                  "gate-level race disagrees with behavioral model: ",
                  run.score, " vs ", outcome.racedCost);
    }

    outcome.score = converted
                        ? converted->recoverScore(outcome.racedCost,
                                                  a.size(), b.size())
                        : outcome.racedCost;
    return outcome;
}

const bio::ScoreMatrix &
RaceAligner::racedMatrix() const
{
    return racer.matrix();
}

} // namespace racelogic::core
