#include "rl/core/race_aligner.h"

#include "rl/api/engine.h"
#include "rl/util/logging.h"

namespace racelogic::core {

namespace {

api::EngineConfig
shimConfig(Backend backend)
{
    api::EngineConfig config;
    config.backend = backend == Backend::GateLevel
                         ? api::BackendKind::GateLevel
                         : api::BackendKind::Behavioral;
    // The legacy interface reports scores and latencies only; skip
    // the facade's technology pricing.
    config.withEstimates = false;
    return config;
}

} // namespace

RaceAligner::RaceAligner(const bio::ScoreMatrix &matrix, Backend backend)
    : original(matrix), converted(), mode(backend)
{
    // The engine converts again inside its plan; this copy exists
    // only to serve the legacy racedMatrix()/conversion() accessors.
    if (!matrix.isCost())
        converted = bio::toShortestPathForm(matrix);
}

AlignOutcome
RaceAligner::align(const bio::Sequence &a, const bio::Sequence &b) const
{
    // A fresh engine per call keeps this legacy const method
    // stateless (concurrent align() on a shared aligner stays safe,
    // as before the shim); planning per call matches the old cost --
    // the legacy GateLevel path also synthesized per align().  Reuse
    // wants api::RaceEngine directly, where plans are cached.
    api::RaceEngine engine(shimConfig(mode));
    api::RaceResult raced = engine.solve(
        api::RaceProblem::pairwiseAlignment(original, a, b));

    AlignOutcome outcome;
    outcome.score = raced.score;
    outcome.racedCost = raced.racedCost;
    outcome.latencyCycles = raced.latencyCycles;
    outcome.detail.score = raced.racedCost;
    outcome.detail.latencyCycles = raced.latencyCycles;
    outcome.detail.arrival = std::move(raced.arrival);
    outcome.detail.cellsFired = raced.cellsFired;
    outcome.detail.events = raced.events;
    return outcome;
}

const bio::ScoreMatrix &
RaceAligner::racedMatrix() const
{
    return converted ? converted->costs : original;
}

} // namespace racelogic::core
