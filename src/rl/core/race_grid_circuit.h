/**
 * @file
 * Gate-level synchronous Race Logic aligner (paper Fig. 4a/4b).
 *
 * This is the synthesizable artifact of the case study: a rows x
 * cols fabric of unit cells, each hosting an OR gate, three DFF
 * delay elements, the diagonal-gating AND, and the XNOR match
 * comparator of Eq. 2.  It implements the Fig. 2b cost matrix with
 * the mismatch weight raised to infinity (missing diagonal edge),
 * which the paper shows -- and our tests verify -- is
 * score-equivalent.
 *
 * The same hardware is reused across comparisons: the strings are
 * primary inputs ("weights of some (or all) edges are controlled by
 * external conditions"), and the fabric is reset between runs.
 */

#ifndef RACELOGIC_CORE_RACE_GRID_CIRCUIT_H
#define RACELOGIC_CORE_RACE_GRID_CIRCUIT_H

#include <memory>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/circuit/builders.h"
#include "rl/circuit/netlist.h"
#include "rl/circuit/sim_sync.h"
#include "rl/sim/event_queue.h"
#include "rl/util/grid.h"

namespace racelogic::core {

/** Outcome of one gate-level race. */
struct CircuitRunResult {
    /** Alignment score (sink arrival cycle); kScoreInfinity if the
     *  sink did not fire within the cycle budget. */
    bio::Score score = bio::kScoreInfinity;

    /** Cycles actually simulated. */
    uint64_t cyclesRun = 0;

    /** True iff the sink fired. */
    bool completed = false;
};

/**
 * A fixed-size gate-level race grid; align any string pair of
 * exactly (rows, cols) symbols over the construction alphabet.
 */
class RaceGridCircuit
{
  public:
    /**
     * Build the fabric.
     *
     * @param alphabet  Symbol set (determines comparator width).
     * @param rows      Length of the first (vertical) string.
     * @param cols      Length of the second (horizontal) string.
     */
    RaceGridCircuit(const bio::Alphabet &alphabet, size_t rows,
                    size_t cols);

    /**
     * Race one string pair.  Resets the fabric, loads the symbols,
     * injects the start signal, and steps until the sink fires.
     *
     * @param max_cycles  Optional cycle budget (default: worst case
     *                    rows + cols, plus margin).  A lower budget
     *                    implements Section 6's threshold screening.
     */
    CircuitRunResult align(const bio::Sequence &a, const bio::Sequence &b,
                           uint64_t max_cycles = 0);

    /** Firing cycle of every grid node from the last align() call. */
    util::Grid<racelogic::sim::Tick> arrivalMap();

    size_t rows() const { return numRows; }
    size_t cols() const { return numCols; }

    const circuit::Netlist &netlist() const { return net; }
    circuit::SyncSim &sim() { return *simulator; }

    /**
     * Gate inventory of a single unit cell (3 DFFs, OR3, diagonal
     * AND, and a symbolBits-wide XNOR comparator + AND), used by the
     * technology area/energy models.
     */
    static std::array<size_t, circuit::kGateTypeCount>
    unitCellInventory(unsigned symbol_bits);

  private:
    size_t numRows;
    size_t numCols;
    bio::Alphabet alphabet;
    circuit::Netlist net;
    circuit::NetId go = circuit::kNoNet;
    util::Grid<circuit::NetId> nodeNets;     ///< (rows+1) x (cols+1)
    std::vector<circuit::Bus> rowSymbols;    ///< per row i: symbol bus
    std::vector<circuit::Bus> colSymbols;    ///< per col j: symbol bus
    std::unique_ptr<circuit::SyncSim> simulator;
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_RACE_GRID_CIRCUIT_H
