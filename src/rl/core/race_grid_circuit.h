/**
 * @file
 * Gate-level synchronous Race Logic aligner (paper Fig. 4a/4b).
 *
 * This is the synthesizable artifact of the case study: a rows x
 * cols fabric of unit cells, each hosting an OR gate, three DFF
 * delay elements, the diagonal-gating AND, and the XNOR match
 * comparator of Eq. 2.  It implements the Fig. 2b cost matrix with
 * the mismatch weight raised to infinity (missing diagonal edge),
 * which the paper shows -- and our tests verify -- is
 * score-equivalent.
 *
 * The same hardware is reused across comparisons: the strings are
 * primary inputs ("weights of some (or all) edges are controlled by
 * external conditions"), and the fabric is reset between runs.
 *
 * Simulation runs on the compiled levelized kernel
 * (rl/circuit/compiled_sim.h): align() races one pair on the
 * event-driven frontier, and alignLanes() packs up to 64 independent
 * pairs into the bit-parallel lanes of one simulation -- the
 * database-screening configuration.  alignReference() replays a race
 * on the interpretive SyncSim, which stays the tested reference and
 * the debug/inspection path.
 */

#ifndef RACELOGIC_CORE_RACE_GRID_CIRCUIT_H
#define RACELOGIC_CORE_RACE_GRID_CIRCUIT_H

#include <memory>
#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/circuit/builders.h"
#include "rl/circuit/compiled_sim.h"
#include "rl/circuit/netlist.h"
#include "rl/circuit/sim_sync.h"
#include "rl/sim/event_queue.h"
#include "rl/util/grid.h"

namespace racelogic::core {

struct KernelCounters; // rl/core/kernel_counters.h

/** Outcome of one gate-level race. */
struct CircuitRunResult {
    /** Alignment score (sink arrival cycle); kScoreInfinity if the
     *  sink did not fire within the cycle budget. */
    bio::Score score = bio::kScoreInfinity;

    /** Cycles actually simulated. */
    uint64_t cyclesRun = 0;

    /** True iff the sink fired. */
    bool completed = false;
};

/** One lane of a packed gate-level race (borrowed sequences). */
struct LanePair {
    const bio::Sequence *a = nullptr;
    const bio::Sequence *b = nullptr;
};

/** Outcome of a lane-packed gate-level race. */
struct LaneBatchResult {
    /** Per-lane outcomes, in input order. */
    std::vector<CircuitRunResult> lanes;

    /** Lock-step cycles ticked (max over lanes, budget-clamped). */
    uint64_t cyclesRun = 0;

    /**
     * Lane-summed switching activity of the packed word: the Eq. 3
     * inputs for the whole batch (equal to the sum of the lanes run
     * individually in lock-step for the same cyclesRun).
     */
    circuit::Activity activity;
};

namespace detail {

/**
 * The slice of a grid fabric the shared race drivers need: every
 * rows x cols fabric in this library (plain, gated, generalized)
 * exposes the same go / symbol-bus / sink-net interface.
 */
struct GridFabricView {
    const circuit::CompiledNetlist *compiled = nullptr;
    circuit::NetId go = circuit::kNoNet;
    circuit::NetId sink = circuit::kNoNet;
    const std::vector<circuit::Bus> *rowSymbols = nullptr;
    const std::vector<circuit::Bus> *colSymbols = nullptr;
    unsigned symbolBits = 1;
    const bio::Alphabet *alphabet = nullptr;
    size_t rows = 0;
    size_t cols = 0;
};

/** fatal() unless (a, b) fit the fabric. */
void checkFabricPair(const GridFabricView &view, const bio::Sequence &a,
                     const bio::Sequence &b);

/**
 * Reset `sim`, broadcast the pair's symbols onto the input buses,
 * raise go, and race to the sink: the one-pair driver shared by the
 * compiled (align) and reference (alignReference) paths.
 */
template <typename Sim>
CircuitRunResult
raceFabricPair(Sim &sim, const GridFabricView &view,
               const bio::Sequence &a, const bio::Sequence &b,
               uint64_t max_cycles)
{
    checkFabricPair(view, a, b);
    sim.reset();
    for (size_t i = 0; i < view.rows; ++i)
        for (unsigned bit = 0; bit < view.symbolBits; ++bit)
            sim.setInput((*view.rowSymbols)[i][bit],
                         (a[i] >> bit) & 1);
    for (size_t j = 0; j < view.cols; ++j)
        for (unsigned bit = 0; bit < view.symbolBits; ++bit)
            sim.setInput((*view.colSymbols)[j][bit],
                         (b[j] >> bit) & 1);
    sim.setInput(view.go, true);

    CircuitRunResult result;
    auto fired = sim.runUntil(view.sink, true, max_cycles);
    result.cyclesRun = sim.cycle();
    if (fired) {
        result.completed = true;
        result.score = static_cast<bio::Score>(*fired);
    }
    return result;
}

/**
 * Race up to 64 pairs lock-step on a fresh bit-parallel simulator
 * over the fabric's shared compile (thread-safe: the compile is
 * immutable, the per-call sim state is local).
 *
 * `counters` (nullptr = off) accumulates the packed run's profiling
 * counts -- one lock-step sweep shared by every lane (see
 * CompiledSim::raceLanes); the simulated values are identical either
 * way.
 */
LaneBatchResult raceFabricLanes(const GridFabricView &view,
                                const std::vector<LanePair> &lanes,
                                uint64_t max_cycles,
                                KernelCounters *counters = nullptr);

} // namespace detail

/**
 * A fixed-size gate-level race grid; align any string pair of
 * exactly (rows, cols) symbols over the construction alphabet.
 */
class RaceGridCircuit
{
  public:
    /**
     * Build the fabric.
     *
     * @param alphabet  Symbol set (determines comparator width).
     * @param rows      Length of the first (vertical) string.
     * @param cols      Length of the second (horizontal) string.
     */
    RaceGridCircuit(const bio::Alphabet &alphabet, size_t rows,
                    size_t cols);

    /**
     * Race one string pair on the compiled kernel.  Resets the
     * fabric, loads the symbols, injects the start signal, and steps
     * until the sink fires.
     *
     * @param max_cycles  Optional cycle budget (default: worst case
     *                    rows + cols, plus margin).  A lower budget
     *                    implements Section 6's threshold screening.
     */
    CircuitRunResult align(const bio::Sequence &a, const bio::Sequence &b,
                           uint64_t max_cycles = 0);

    /**
     * Race up to 64 pairs at once, one per bit-parallel lane, on a
     * private simulator.  const and allocation-local, so batch
     * screening may call it from many threads concurrently.
     */
    LaneBatchResult alignLanes(const std::vector<LanePair> &lanes,
                               uint64_t max_cycles = 0,
                               KernelCounters *counters = nullptr) const;

    /**
     * Replay a race on the interpretive SyncSim (the reference /
     * debug path; activity lands in referenceSim().activity()).
     */
    CircuitRunResult alignReference(const bio::Sequence &a,
                                    const bio::Sequence &b,
                                    uint64_t max_cycles = 0);

    /** Firing cycle of every grid node from the last align() call. */
    util::Grid<racelogic::sim::Tick> arrivalMap();

    size_t rows() const { return numRows; }
    size_t cols() const { return numCols; }

    const circuit::Netlist &netlist() const { return net; }

    /** The shared one-time compile align()/alignLanes() run on. */
    const circuit::CompiledNetlist &compiledNetlist() const
    {
        return *compiled;
    }

    /** The active (compiled) simulator behind align(). */
    circuit::CompiledSim &sim() { return *simulator; }

    /** The lazily created SyncSim behind alignReference(). */
    circuit::SyncSim &referenceSim();

    /**
     * Gate inventory of a single unit cell (3 DFFs, OR3, diagonal
     * AND, and a symbolBits-wide XNOR comparator + AND), used by the
     * technology area/energy models.
     */
    static std::array<size_t, circuit::kGateTypeCount>
    unitCellInventory(unsigned symbol_bits);

  private:
    detail::GridFabricView view() const;

    size_t numRows;
    size_t numCols;
    bio::Alphabet alphabet;
    circuit::Netlist net;
    circuit::NetId go = circuit::kNoNet;
    util::Grid<circuit::NetId> nodeNets;     ///< (rows+1) x (cols+1)
    std::vector<circuit::Bus> rowSymbols;    ///< per row i: symbol bus
    std::vector<circuit::Bus> colSymbols;    ///< per col j: symbol bus
    std::unique_ptr<circuit::CompiledNetlist> compiled;
    std::unique_ptr<circuit::CompiledSim> simulator;
    std::unique_ptr<circuit::SyncSim> refSim; ///< lazy debug path
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_RACE_GRID_CIRCUIT_H
