/**
 * @file
 * Batch screening on a pool of race fabrics.
 *
 * A deployed accelerator would instantiate several N x M fabrics and
 * stream database candidates across them ("move on to the next
 * pattern", Section 6).  This module models that system layer: a
 * greedy dispatcher assigns each comparison to the earliest-free
 * fabric; each comparison occupies its fabric for its race time
 * (bounded by the Section 6 threshold when one is set) plus a reset
 * cycle.  The report carries makespan, utilization, and accept
 * verdicts, and prices wall time against a technology model.
 */

#ifndef RACELOGIC_CORE_BATCH_H
#define RACELOGIC_CORE_BATCH_H

#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/core/race_grid.h"
#include "rl/tech/cell_library.h"

namespace racelogic::core {

/** Pool configuration. */
struct BatchConfig {
    /** Parallel fabrics instantiated. */
    size_t fabricCount = 4;

    /** Early-termination threshold; kScoreInfinity disables it. */
    bio::Score threshold = bio::kScoreInfinity;

    /** Cycles to reset a fabric between comparisons. */
    uint64_t resetCycles = 1;
};

/** Outcome of one batch run. */
struct BatchReport {
    size_t comparisons = 0;
    size_t acceptedCount = 0;
    std::vector<bool> accepted; ///< verdict per candidate (threshold on)

    /** Cycle at which the last fabric goes idle. */
    uint64_t makespanCycles = 0;

    /** Total fabric-busy cycles across the pool. */
    uint64_t busyCycles = 0;

    /** busyCycles / (fabricCount * makespanCycles). */
    double utilization = 0.0;

    /** Wall time for the whole batch under a library's race clock. */
    double
    wallTimeNs(const tech::CellLibrary &lib) const
    {
        return static_cast<double>(makespanCycles) * lib.racePeriodNs;
    }

    /** Batch throughput in comparisons per second. */
    double
    comparisonsPerSecond(const tech::CellLibrary &lib) const
    {
        double ns = wallTimeNs(lib);
        return ns > 0.0 ? double(comparisons) * 1e9 / ns : 0.0;
    }
};

/** One already-raced comparison, ready for pool scheduling. */
struct ScreenedComparison {
    bool accepted = false;

    /** Cycles the comparison occupies a fabric (threshold-clamped). */
    uint64_t cyclesUsed = 0;
};

/**
 * Greedy list scheduling of precomputed comparisons onto the fabric
 * pool (each goes to the fabric that frees up first).  This is the
 * dispatcher BatchScreeningEngine uses after racing; callers that
 * have already raced their comparisons (api::RaceEngine::solveBatch)
 * schedule here directly without racing twice.
 */
BatchReport scheduleBatch(const BatchConfig &config,
                          const std::vector<ScreenedComparison> &runs);

/** A pool of behavioral race fabrics with a greedy dispatcher. */
class BatchScreeningEngine
{
  public:
    BatchScreeningEngine(bio::ScoreMatrix costs, BatchConfig config);

    /** Screen every candidate against `query`. */
    BatchReport run(const bio::Sequence &query,
                    const std::vector<bio::Sequence> &database) const;

    const BatchConfig &config() const { return cfg; }

  private:
    RaceGridAligner racer;
    BatchConfig cfg;
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_BATCH_H
