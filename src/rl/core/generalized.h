/**
 * @file
 * Generalized Race Logic (paper Section 5, Fig. 8).
 *
 * Modern score matrices (BLOSUM62, PAM250) have symbol-dependent
 * weights spanning a dynamic range N_DR >> 1.  The generalized cell
 * realizes a weight-w edge as: the predecessor's rising edge enables
 * a binary *saturating up-counter*; equality taps detect each
 * distinct weight; a multiplexer addressed by the encoded alphabet
 * selects the desired tap; and a set-on-arrival latch turns the tap
 * pulse into a held level.  A one-hot alternative (a tapped DFF
 * chain) trades N_DR flip-flops against the counter's log2(N_DR)
 * flip-flops plus comparators -- the Section 5 area trade-off
 * reproduced by bench_ablation_encoding.
 *
 * The behavioral GeneralizedAligner first rewrites a similarity
 * matrix into race-ready costs (rl/bio/score_convert.h), races the
 * edit graph, and maps the winning delay back to the original score.
 */

#ifndef RACELOGIC_CORE_GENERALIZED_H
#define RACELOGIC_CORE_GENERALIZED_H

#include <memory>
#include <vector>

#include "rl/bio/score_convert.h"
#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/circuit/builders.h"
#include "rl/circuit/netlist.h"
#include "rl/circuit/sim_sync.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_grid_circuit.h"

namespace racelogic::core {

/** Delay-element encoding inside a cell (Section 5 trade-off). */
enum class DelayEncoding {
    OneHot, ///< tapped DFF chain: N_DR flip-flops, no comparators
    Binary, ///< saturating counter: log2 flip-flops + equality taps
};

/** Hardware sizing of a generalized cell for a given cost matrix. */
struct GeneralizedCellSpec {
    bio::Score dynamicRange = 0;   ///< N_DR
    unsigned counterBits = 0;      ///< ceil(log2(N_DR + 1))
    unsigned symbolBits = 0;       ///< encoding width per string
    std::vector<bio::Score> distinctPairWeights; ///< finite, ascending
    std::vector<bio::Score> distinctGapWeights;  ///< ascending
    bool hasForbiddenPairs = false;

    /** Derive the sizing from a race-ready cost matrix. */
    static GeneralizedCellSpec fromMatrix(const bio::ScoreMatrix &costs);
};

/**
 * Build the weight applicator for one incoming edge (the Fig. 8
 * structure): delays `pred` by weight_by_index[select], holding the
 * output high once fired.  Index values whose weight is
 * kScoreInfinity never fire (missing edge).
 *
 * @param netlist          Target netlist.
 * @param pred             Predecessor node's output net.
 * @param select           Select bus (symbol or symbol-pair code).
 * @param weight_by_index  Weight for each select code; indexes past
 *                         the vector behave as forbidden.
 * @param spec             Cell sizing (counter width, N_DR).
 * @param encoding         Binary counter or one-hot chain.
 */
circuit::NetId buildWeightApplicator(
    circuit::Netlist &netlist, circuit::NetId pred,
    const circuit::Bus &select,
    const std::vector<bio::Score> &weight_by_index,
    const GeneralizedCellSpec &spec, DelayEncoding encoding);

/**
 * Behavioral generalized aligner: similarity matrix in, original
 * similarity score out, with the race cost and latency reported.
 */
class GeneralizedAligner
{
  public:
    /** Convert `similarity` (Section 5) and build the race model. */
    explicit GeneralizedAligner(const bio::ScoreMatrix &similarity,
                                bio::Score lambda = 1);

    struct Result {
        /** Score in the original similarity semantics. */
        bio::Score similarityScore = 0;
        /** The raced (converted) cost = race latency in cycles. */
        bio::Score racedCost = 0;
        sim::Tick latencyCycles = 0;
    };

    Result align(const bio::Sequence &a, const bio::Sequence &b) const;

    const bio::ShortestPathForm &form() const { return converted; }
    const GeneralizedCellSpec &spec() const { return cellSpec; }

  private:
    bio::ShortestPathForm converted;
    GeneralizedCellSpec cellSpec;
    RaceGridAligner racer;
};

/**
 * Gate-level grid of generalized cells over an arbitrary race-ready
 * cost matrix, simulated on the compiled levelized kernel (lane-pack
 * batches with alignLanes; SyncSim stays the reference path via
 * alignReference).
 */
class GeneralizedGridCircuit
{
  public:
    GeneralizedGridCircuit(bio::ScoreMatrix costs, size_t rows,
                           size_t cols,
                           DelayEncoding encoding = DelayEncoding::Binary);

    /** Race one pair; budget defaults to (rows+cols) * N_DR + 2. */
    CircuitRunResult align(const bio::Sequence &a, const bio::Sequence &b,
                           uint64_t max_cycles = 0);

    /**
     * Race up to 64 pairs at once, one per bit-parallel lane, on a
     * private simulator over the shared compile.  const and
     * allocation-local: the engine's batch screening calls this from
     * many pool threads against one cached fabric plan.
     */
    LaneBatchResult alignLanes(const std::vector<LanePair> &lanes,
                               uint64_t max_cycles = 0,
                               KernelCounters *counters = nullptr) const;

    /** Replay a race on the interpretive SyncSim reference path. */
    CircuitRunResult alignReference(const bio::Sequence &a,
                                    const bio::Sequence &b,
                                    uint64_t max_cycles = 0);

    const circuit::Netlist &netlist() const { return net; }

    /** The active (compiled) simulator behind align(). */
    circuit::CompiledSim &sim() { return *simulator; }

    /** The lazily created SyncSim behind alignReference(). */
    circuit::SyncSim &referenceSim();

    const GeneralizedCellSpec &spec() const { return cellSpec; }

    /**
     * Gate inventory of one generalized cell under `encoding`,
     * measured by building a single cell into a scratch netlist --
     * the library's equivalent of a synthesis report.
     */
    static std::array<size_t, circuit::kGateTypeCount>
    cellInventory(const bio::ScoreMatrix &costs, DelayEncoding encoding);

  private:
    circuit::NetId buildEdge(circuit::NetId pred, const circuit::Bus &sel,
                             const std::vector<bio::Score> &weights,
                             DelayEncoding encoding);

    detail::GridFabricView view() const;
    uint64_t defaultBudget() const;

    bio::ScoreMatrix costs;
    GeneralizedCellSpec cellSpec;
    DelayEncoding encoding;
    size_t numRows;
    size_t numCols;
    circuit::Netlist net;
    circuit::NetId go = circuit::kNoNet;
    util::Grid<circuit::NetId> nodeNets;
    std::vector<circuit::Bus> rowSymbols;
    std::vector<circuit::Bus> colSymbols;
    std::unique_ptr<circuit::CompiledNetlist> compiled;
    std::unique_ptr<circuit::CompiledSim> simulator;
    std::unique_ptr<circuit::SyncSim> refSim;
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_GENERALIZED_H
