#include "rl/core/threshold.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::core {

ThresholdScreener::ThresholdScreener(bio::ScoreMatrix costs,
                                     bio::Score threshold)
    : racer(std::move(costs)), maxCost(threshold)
{
    rl_assert(maxCost >= 0, "negative threshold");
}

ScreenOutcome
ThresholdScreener::screen(const bio::Sequence &query,
                          const bio::Sequence &candidate) const
{
    // The abort counter for real: the race runs with the threshold as
    // its horizon, so a hopeless comparison stops at the threshold
    // cycle instead of draining the grid.  Monotonicity of arrival
    // times makes the verdict exact: "sink not fired by T" is
    // equivalent to "score > T".
    RaceGridResult raced =
        racer.align(query, candidate, static_cast<sim::Tick>(maxCost));
    ScreenOutcome outcome;
    if (raced.completed) {
        outcome.similar = true;
        outcome.score = raced.score;
        outcome.cyclesUsed = static_cast<sim::Tick>(raced.score);
    } else {
        outcome.similar = false;
        outcome.score = bio::kScoreInfinity;
        outcome.cyclesUsed = static_cast<sim::Tick>(maxCost);
    }
    return outcome;
}

ScreeningStats
ThresholdScreener::screenDatabase(
    const bio::Sequence &query,
    const std::vector<bio::Sequence> &database) const
{
    ScreeningStats stats;
    stats.candidates = database.size();
    stats.accepted.reserve(database.size());
    for (const bio::Sequence &candidate : database) {
        RaceGridResult raced = racer.align(query, candidate);
        bool similar = raced.score <= maxCost;
        stats.accepted.push_back(similar);
        stats.acceptedCount += similar;
        stats.cyclesWithThreshold += similar
                                         ? static_cast<uint64_t>(raced.score)
                                         : static_cast<uint64_t>(maxCost);
        stats.cyclesFullRace += static_cast<uint64_t>(raced.score);
    }
    return stats;
}

} // namespace racelogic::core
