#include "rl/core/race_grid.h"

#include <sstream>

#include "rl/core/wavefront.h"
#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::core {

size_t
wavefrontSizeOf(const util::Grid<sim::Tick> &arrival, sim::Tick cycle)
{
    size_t count = 0;
    for (sim::Tick t : arrival.flat())
        if (t == cycle)
            ++count;
    return count;
}

size_t
RaceGridResult::wavefrontSize(sim::Tick cycle) const
{
    return wavefrontSizeOf(arrival, cycle);
}

std::string
renderArrivalTable(const util::Grid<sim::Tick> &arrival)
{
    // Column width fits the largest finite arrival.
    sim::Tick largest = 0;
    for (sim::Tick t : arrival.flat())
        if (t != sim::kTickInfinity)
            largest = std::max(largest, t);
    int width = 1;
    for (sim::Tick v = largest; v >= 10; v /= 10)
        ++width;

    std::ostringstream os;
    for (size_t r = 0; r < arrival.rows(); ++r) {
        for (size_t c = 0; c < arrival.cols(); ++c) {
            sim::Tick t = arrival.at(r, c);
            if (c)
                os << ' ';
            if (t == sim::kTickInfinity)
                os << util::format("%*s", width, ".");
            else
                os << util::format("%*llu", width,
                                   static_cast<unsigned long long>(t));
        }
        os << '\n';
    }
    return os.str();
}

std::string
RaceGridResult::arrivalTable() const
{
    return renderArrivalTable(arrival);
}

std::string
renderWavefrontPicture(const util::Grid<sim::Tick> &arrival,
                       sim::Tick cycle)
{
    std::ostringstream os;
    for (size_t r = 0; r < arrival.rows(); ++r) {
        for (size_t c = 0; c < arrival.cols(); ++c) {
            sim::Tick t = arrival.at(r, c);
            if (t == cycle)
                os << 'o';
            else if (t < cycle)
                os << '#';
            else
                os << '.';
        }
        os << '\n';
    }
    return os.str();
}

std::string
RaceGridResult::wavefrontPicture(sim::Tick cycle) const
{
    return renderWavefrontPicture(arrival, cycle);
}

RaceGridAligner::RaceGridAligner(bio::ScoreMatrix matrix)
    : costMatrix(std::move(matrix))
{
    rl_assert(costMatrix.isCost(),
              "OR-type race grids minimize; pass a Cost matrix "
              "(convert similarity matrices via toShortestPathForm)");
    rl_assert(costMatrix.minFinite() >= 1,
              "race-grid weights must be >= 1 clock cycle");
}

RaceGridResult
RaceGridAligner::align(const bio::Sequence &a,
                       const bio::Sequence &b) const
{
    RaceGridResult result =
        raceEditGrid(a, b, costMatrix, sim::kTickInfinity);
    rl_assert(result.completed,
              "sink never fired; gap weights should guarantee a path");
    return result;
}

RaceGridResult
RaceGridAligner::align(const bio::Sequence &a, const bio::Sequence &b,
                       sim::Tick horizon) const
{
    return raceEditGrid(a, b, costMatrix, horizon);
}

RaceGridResult
RaceGridAligner::align(const bio::Sequence &a, const bio::Sequence &b,
                       sim::Tick horizon, RaceGridScratch &scratch,
                       const CancelToken *cancel,
                       KernelCounters *counters) const
{
    return raceEditGrid(a, b, costMatrix, horizon, scratch, cancel,
                        counters);
}

} // namespace racelogic::core
