/**
 * @file
 * The N x M unit-cell Race Logic sequence aligner (paper Fig. 4).
 *
 * Behavioral model: the edit graph of the two strings is raced
 * (OR-type) on the bucketed wavefront kernel (rl/core/wavefront.h),
 * which sweeps the grid one clock cycle at a time without ever
 * materializing the graph; each grid node's firing cycle is
 * recorded.  The firing-time table *is* the
 * paper's Fig. 4c ("the number inside each cell represents ... [the]
 * clock cycle at which signal '1' reached the output of an OR gate
 * of a particular unit cell"), and thresholding it by cycle yields
 * the Fig. 6 wavefront shades.
 *
 * The companion gate-level artifact lives in
 * rl/core/race_grid_circuit.h and is checked against this model.
 */

#ifndef RACELOGIC_CORE_RACE_GRID_H
#define RACELOGIC_CORE_RACE_GRID_H

#include <string>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/sim/event_queue.h"
#include "rl/util/grid.h"

namespace racelogic::core {

class CancelToken;      // rl/core/cancel.h
struct RaceGridScratch; // rl/core/wavefront.h
struct KernelCounters;  // rl/core/kernel_counters.h

/** @name Arrival-grid renderers
 *  Shared by RaceGridResult and the api facade (which holds the same
 *  grid without the surrounding struct).
 * @{ */

/** Cells whose arrival time equals `cycle`. */
size_t wavefrontSizeOf(const util::Grid<sim::Tick> &arrival,
                       sim::Tick cycle);

/** Fig. 4c rendering of an arrival grid. */
std::string renderArrivalTable(const util::Grid<sim::Tick> &arrival);

/** Fig. 6 wavefront rendering at `cycle`. */
std::string renderWavefrontPicture(const util::Grid<sim::Tick> &arrival,
                                   sim::Tick cycle);

/** @} */

/** Result of one race-grid alignment. */
struct RaceGridResult {
    /** Alignment score = arrival cycle of the sink node. */
    bio::Score score = 0;

    /**
     * True iff the sink fired.  A horizon-bounded race (Section 6
     * abort) or a cancelled one can leave it false; score is then
     * kScoreInfinity and latencyCycles the cycle the sweep stopped.
     */
    bool completed = true;

    /** True iff a CancelToken stopped the sweep before the sink. */
    bool cancelled = false;

    /** Race duration in clock cycles (equals score for OR type). */
    sim::Tick latencyCycles = 0;

    /**
     * Firing cycle of every edit-graph node (rows+1 x cols+1);
     * kTickInfinity where the signal never arrives.
     */
    util::Grid<sim::Tick> arrival;

    /** Number of grid nodes that fired during the race. */
    size_t cellsFired = 0;

    /** Events processed by the temporal simulation. */
    uint64_t events = 0;

    /** Cells whose arrival time equals `cycle` (wavefront members). */
    size_t wavefrontSize(sim::Tick cycle) const;

    /**
     * Render the arrival table like Fig. 4c (one row per line,
     * right-aligned numbers, '.' for never-fired cells).
     */
    std::string arrivalTable() const;

    /**
     * Render the wavefront at `cycle` like Fig. 6: '#' for cells
     * already fired, 'o' for cells firing exactly at `cycle`, '.'
     * for cells still dark.
     */
    std::string wavefrontPicture(sim::Tick cycle) const;
};

/**
 * Behavioral OR-type race-grid aligner for a cost matrix.
 *
 * The matrix must be Cost kind with all finite weights >= 1
 * (forbidden pairs allowed -- they become missing diagonal edges,
 * the paper's mismatch-to-infinity trick).
 */
class RaceGridAligner
{
  public:
    explicit RaceGridAligner(bio::ScoreMatrix matrix);

    /** Race the two sequences; fatal() on alphabet mismatch. */
    RaceGridResult align(const bio::Sequence &a,
                         const bio::Sequence &b) const;

    /**
     * Race with a Section 6 early-termination horizon: the race stops
     * at cycle `horizon` instead of draining the grid.  If the sink
     * has not fired by then, result.completed is false, score is
     * kScoreInfinity, and latencyCycles is the horizon -- the exact
     * behavior of the hardware abort counter.  align() is const and
     * allocation-local, so one aligner can race from many threads.
     */
    RaceGridResult align(const bio::Sequence &a, const bio::Sequence &b,
                         sim::Tick horizon) const;

    /**
     * Scratch-reuse overload for tight screening loops: the kernel's
     * bucket calendar lives in the caller's RaceGridScratch (one per
     * thread), so repeated aligns stop allocating calendar storage.
     * `cancel` (nullptr = never) aborts the sweep cooperatively at
     * clock-cycle granularity (see raceEditGrid).  `counters`
     * (nullptr = off) accumulates the kernel's profiling counts
     * without changing the raced result.
     */
    RaceGridResult align(const bio::Sequence &a, const bio::Sequence &b,
                         sim::Tick horizon, RaceGridScratch &scratch,
                         const CancelToken *cancel = nullptr,
                         KernelCounters *counters = nullptr) const;

    const bio::ScoreMatrix &matrix() const { return costMatrix; }

  private:
    bio::ScoreMatrix costMatrix;
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_RACE_GRID_H
