#include "rl/core/wavefront.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::core {

WavefrontRaceKernel::WavefrontRaceKernel(const graph::Dag &dag)
    : csr(dag.outEdgesCsr())
{
    inDegree.assign(dag.nodeCount(), 0);
    for (graph::NodeId to : csr.to)
        ++inDegree[to];
    for (graph::Weight w : csr.weight) {
        rl_assert(w >= 0 && w <= kMaxWavefrontWeight,
                  "wavefront kernel weight ", w, " outside [0, ",
                  kMaxWavefrontWeight, "]; use raceDag(), which "
                  "dispatches oversized graphs to the event kernel");
        maxWeight = std::max(maxWeight, w);
    }
}

bool
WavefrontRaceKernel::suitableFor(const graph::Dag &dag)
{
    if (dag.edgeCount() == 0)
        return true;
    return dag.maxWeight() <= kMaxWavefrontWeight;
}

RaceOutcome
WavefrontRaceKernel::race(const std::vector<graph::NodeId> &sources,
                          RaceType type, sim::Tick horizon) const
{
    rl_assert(!sources.empty(), "race needs at least one source");

    const size_t n = nodeCount();
    RaceOutcome outcome;
    outcome.firing.assign(n, TemporalValue::never());

    // And nodes fire on the last arrival (in-degree countdown); Or
    // nodes on the first (later arrivals are absorbed).
    std::vector<uint32_t> waiting;
    if (type == RaceType::And)
        waiting = inDegree;

    // The calendar: ring of maxWeight+1 buckets, one per future tick
    // an arrival can land on.  Entries are arrival target nodes.
    const size_t ring = static_cast<size_t>(maxWeight) + 1;
    std::vector<std::vector<graph::NodeId>> buckets(ring);
    size_t pending = 0;
    sim::Tick lastFired = 0;

    auto fire = [&](graph::NodeId node, sim::Tick t) {
        outcome.firing[node] = TemporalValue::at(t);
        lastFired = std::max(lastFired, t);
        const uint32_t begin = csr.offsets[node];
        const uint32_t end = csr.offsets[node + 1];
        for (uint32_t e = begin; e < end; ++e) {
            sim::Tick at = t + static_cast<sim::Tick>(csr.weight[e]);
            if (at > horizon)
                continue; // Section 6: the abort counter trips first.
            buckets[at % ring].push_back(csr.to[e]);
            ++pending;
        }
    };

    for (graph::NodeId s : sources) {
        rl_assert(s < n, "bad source node ", s);
        // In AND mode a source with in-edges would double-fire; the
        // injected edge dominates (hardware ties the input high).
        if (type == RaceType::And)
            waiting[s] = 0;
        if (!outcome.firing[s].fired())
            fire(s, 0);
    }

    for (sim::Tick t = 0; pending > 0; ++t) {
        std::vector<graph::NodeId> &bucket = buckets[t % ring];
        // Index loop: zero-weight edges append to this same bucket
        // mid-drain and must still fire at tick t.
        for (size_t i = 0; i < bucket.size(); ++i) {
            graph::NodeId node = bucket[i];
            --pending;
            ++outcome.events;
            if (outcome.firing[node].fired())
                continue; // OR node already high
            if (type == RaceType::Or) {
                fire(node, t);
            } else {
                rl_assert(waiting[node] > 0, "arrival underflow");
                if (--waiting[node] == 0)
                    fire(node, t); // last arrival = max
            }
        }
        bucket.clear();
    }

    outcome.horizon = lastFired;
    return outcome;
}

RaceGridResult
raceEditGrid(const bio::Sequence &a, const bio::Sequence &b,
             const bio::ScoreMatrix &costs, sim::Tick horizon)
{
    RaceGridScratch scratch;
    return raceEditGrid(a, b, costs, horizon, scratch);
}

RaceGridResult
raceEditGrid(const bio::Sequence &a, const bio::Sequence &b,
             const bio::ScoreMatrix &costs, sim::Tick horizon,
             RaceGridScratch &scratch, const CancelToken *cancel,
             KernelCounters *counters)
{
    rl_assert(a.alphabet() == costs.alphabet() &&
              b.alphabet() == costs.alphabet(),
              "sequences and matrix use different alphabets");
    // The chain-detaching drain below relies on every weight being
    // >= 1 (a fire at tick t never schedules back into bucket t);
    // zero-weight graphs must race on the general DAG kernel.
    rl_assert(costs.minFinite() >= 1,
              "raceEditGrid requires all finite weights >= 1 (got ",
              costs.minFinite(), ")");

    const size_t rows = a.size();
    const size_t cols = b.size();
    const size_t width = cols + 1;

    // Per-symbol gap weights, hoisted out of the sweep.
    std::vector<bio::Score> &gapA = scratch.gapA;
    std::vector<bio::Score> &gapB = scratch.gapB;
    gapA.resize(rows);
    gapB.resize(cols);
    for (size_t i = 0; i < rows; ++i)
        gapA[i] = costs.gap(a[i]);
    for (size_t j = 0; j < cols; ++j)
        gapB[j] = costs.gap(b[j]);

    // The calendar cells and arena offsets are 32-bit; bound the
    // grid so neither can wrap (each cell fires at most once and
    // pushes at most three arrivals).  Checked before the arrival
    // grid is allocated, so the diagnostic fires instead of an OOM.
    if ((rows + 1) * (cols + 1) >=
        static_cast<size_t>(BucketCalendar::kNil) / 3)
        rl_fatal("edit grid of ", rows, " x ", cols,
                 " exceeds the calendar's 32-bit arena; split the "
                 "comparison");

    RaceGridResult result;
    result.arrival = util::Grid<sim::Tick>(rows + 1, cols + 1,
                                           sim::kTickInfinity);

    // The calendar: ring of maxWeight+1 chain heads over one flat
    // node arena.  Weights are >= 1, so a drain of tick t never
    // pushes back into bucket t, and nothing scheduled can alias a
    // slot still holding older entries (Dial's invariant).
    const size_t ring = static_cast<size_t>(costs.maxFinite()) + 1;
    BucketCalendar &calendar = scratch.calendar;
    calendar.reset(ring);

    // fire() generates the cell's out-edges straight from the cost
    // matrix -- the edit graph is never materialized.  `slot` is
    // t % ring, tracked by the calendar's drain; pushAhead addresses
    // the ring as slot + w with one conditional wrap (w <= maxFinite
    // < ring), so the sweep divides nothing per scheduled arrival.
    auto fire = [&](size_t cell, sim::Tick t, size_t slot) {
        const size_t i = cell / width;
        const size_t j = cell % width;
        result.arrival.at(i, j) = t;
        ++result.cellsFired;
        auto push = [&](size_t to, bio::Score w) {
            if (t + static_cast<sim::Tick>(w) > horizon)
                return; // Section 6: the abort counter trips first.
            calendar.pushAhead(static_cast<uint32_t>(to), slot,
                               static_cast<size_t>(w), ring);
        };
        if (i < rows) // vertical: delete a[i]
            push(cell + width, gapA[i]);
        if (j < cols) // horizontal: insert b[j]
            push(cell + 1, gapB[j]);
        if (i < rows && j < cols) {
            bio::Score w = costs.pair(a[i], b[j]);
            if (w != bio::kScoreInfinity) // forbidden pair: no edge
                push(cell + width + 1, w);
        }
    };

    fire(0, 0, 0); // root injected at tick 0 (always <= horizon)

    sim::Tick lastSwept = 0;
    const bool drained = calendar.drain(
        ring,
        [&](uint32_t cell, sim::Tick t, size_t slot) {
            ++result.events;
            lastSwept = t;
            const size_t r = cell / width;
            const size_t c = cell % width;
            if (result.arrival.at(r, c) == sim::kTickInfinity)
                fire(cell, t, slot); // else: OR cell already high
        },
        cancel);

    // Profiling export: everything below was tracked by the sweep
    // anyway (or is a container size), so a null `counters` costs
    // nothing and a non-null one cannot change the result.
    if (counters) {
        counters->events += result.events;
        counters->bucketsDrained += static_cast<uint64_t>(lastSwept) + 1;
        counters->scratchHighWater =
            std::max(counters->scratchHighWater,
                     static_cast<uint64_t>(calendar.arena.size()));
        counters->lanesOccupied += result.cellsFired;
    }

    const sim::Tick sink = result.arrival.at(rows, cols);
    if (!drained && sink == sim::kTickInfinity) {
        // Cancelled before the sink fired: the same typed-abort shape
        // as a horizon trip, stamped with the last cycle swept.
        result.completed = false;
        result.cancelled = true;
        result.score = bio::kScoreInfinity;
        result.latencyCycles = lastSwept;
        if (counters)
            ++counters->cancels;
        return result;
    }
    if (sink != sim::kTickInfinity) {
        result.completed = true;
        result.score = static_cast<bio::Score>(sink);
        result.latencyCycles = sink;
    } else {
        rl_assert(horizon != sim::kTickInfinity,
                  "sink never fired; gap weights should guarantee a "
                  "path");
        result.completed = false;
        result.score = bio::kScoreInfinity;
        result.latencyCycles = horizon;
        if (counters)
            ++counters->horizonAborts;
    }
    return result;
}

} // namespace racelogic::core
