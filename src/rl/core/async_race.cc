#include "rl/core/async_race.h"

#include <algorithm>
#include <cmath>

#include "rl/graph/paths.h"
#include "rl/graph/topo.h"
#include "rl/util/logging.h"

namespace racelogic::core {

namespace {

/** Standard normal via Box-Muller on the library Rng. */
double
gaussian(util::Rng &rng)
{
    double u1 = rng.uniformReal();
    double u2 = rng.uniformReal();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

} // namespace

AsyncOutcome
raceDagAnalog(const graph::Dag &dag,
              const std::vector<graph::NodeId> &sources, RaceType type,
              const AnalogDelayModel &model, util::Rng &rng)
{
    dag.validateAcyclic();
    rl_assert(!sources.empty(), "race needs at least one source");
    rl_assert(model.unitDelayNs > 0, "unit delay must be positive");
    rl_assert(model.sigma >= 0, "sigma must be non-negative");

    AsyncOutcome outcome;
    outcome.arrivalNs.assign(dag.nodeCount(), AsyncOutcome::kNeverNs);
    outcome.edgeDelaysNs.resize(dag.edgeCount());
    for (size_t e = 0; e < dag.edgeCount(); ++e) {
        const graph::Edge &edge = dag.edges()[e];
        rl_assert(edge.weight >= 0, "negative weight in analog race");
        double variation =
            model.sigma == 0.0 ? 1.0
                               : std::exp(model.sigma * gaussian(rng));
        outcome.edgeDelaysNs[e] = static_cast<double>(edge.weight) *
                                  model.unitDelayNs * variation;
    }

    std::vector<bool> is_source(dag.nodeCount(), false);
    for (graph::NodeId s : sources) {
        rl_assert(s < dag.nodeCount(), "bad source node ", s);
        is_source[s] = true;
        outcome.arrivalNs[s] = 0.0;
    }

    // Continuous time, but arrival order still follows topological
    // structure, so a topological sweep is exact (and deterministic).
    for (graph::NodeId node : graph::topologicalOrder(dag)) {
        if (is_source[node])
            continue;
        const auto &in = dag.inEdges(node);
        if (in.empty())
            continue;
        double value = type == RaceType::Or ? AsyncOutcome::kNeverNs
                                            : 0.0;
        bool all_fired = true;
        for (uint32_t idx : in) {
            const graph::Edge &edge = dag.edges()[idx];
            double pred = outcome.arrivalNs[edge.from];
            if (pred >= AsyncOutcome::kNeverNs) {
                all_fired = false;
                continue;
            }
            double t = pred + outcome.edgeDelaysNs[idx];
            value = type == RaceType::Or ? std::min(value, t)
                                         : std::max(value, t);
        }
        if (type == RaceType::And && !all_fired)
            value = AsyncOutcome::kNeverNs; // a dead input stalls AND
        outcome.arrivalNs[node] = value;
    }
    return outcome;
}

RobustnessReport
analyzeVariationRobustness(const graph::Dag &dag,
                           const std::vector<graph::NodeId> &sources,
                           graph::NodeId sink,
                           const AnalogDelayModel &model, size_t trials,
                           util::Rng &rng)
{
    rl_assert(sink < dag.nodeCount(), "bad sink");
    auto dp = graph::solveDag(dag, sources, graph::Objective::Shortest);
    rl_assert(dp.reached(sink), "sink unreachable");
    const double ideal =
        static_cast<double>(dp.distance[sink]) * model.unitDelayNs;

    std::vector<bool> is_source(dag.nodeCount(), false);
    for (graph::NodeId s : sources)
        is_source[s] = true;

    RobustnessReport report;
    report.trials = trials;
    for (size_t trial = 0; trial < trials; ++trial) {
        AsyncOutcome outcome =
            raceDagAnalog(dag, sources, RaceType::Or, model, rng);
        rl_assert(outcome.fired(sink), "analog race lost the sink");
        double measured = outcome.arrivalNs[sink];

        // Readout: a time-to-digital converter quantizing by the
        // nominal unit delay.
        auto readout = static_cast<graph::Weight>(
            std::llround(measured / model.unitDelayNs));
        if (readout == dp.distance[sink])
            ++report.readoutExact;

        double rel = std::fabs(measured - ideal) / std::max(ideal, 1e-9);
        report.meanRelativeError += rel / static_cast<double>(trials);
        report.maxRelativeError =
            std::max(report.maxRelativeError, rel);

        // Recover the analog winner path by tight-edge traceback and
        // price it with the true integer weights.
        graph::NodeId node = sink;
        graph::Weight true_weight = 0;
        bool broken = false;
        size_t guard = dag.nodeCount() + 1;
        while (!is_source[node] && guard-- > 0) {
            double here = outcome.arrivalNs[node];
            uint32_t best_idx = ~0u;
            double best_gap = 1e-6; // tolerance for fp equality
            for (uint32_t idx : dag.inEdges(node)) {
                const graph::Edge &edge = dag.edges()[idx];
                double pred = outcome.arrivalNs[edge.from];
                if (pred >= AsyncOutcome::kNeverNs)
                    continue;
                double gap = std::fabs(
                    pred + outcome.edgeDelaysNs[idx] - here);
                if (gap < best_gap) {
                    best_gap = gap;
                    best_idx = idx;
                }
            }
            if (best_idx == ~0u) {
                broken = true;
                break;
            }
            true_weight += dag.edges()[best_idx].weight;
            node = dag.edges()[best_idx].from;
        }
        if (!broken && is_source[node] &&
            true_weight == dp.distance[sink])
            ++report.decisionCorrect;
    }
    return report;
}

} // namespace racelogic::core
