#include "rl/core/clock_gating.h"

#include <algorithm>

#include "rl/util/bitops.h"
#include "rl/util/logging.h"

namespace racelogic::core {

GatingAnalysis
analyzeClockGating(const RaceGridResult &result, size_t region_side,
                   size_t dffs_per_cell)
{
    rl_assert(region_side >= 1, "region side must be >= 1");
    // Unit cells are the interior nodes (i >= 1, j >= 1) of the
    // arrival grid; boundary chains belong to the frame and are
    // clocked with their adjacent edge region in hardware.  We gate
    // the cell grid.
    rl_assert(result.arrival.rows() >= 2 && result.arrival.cols() >= 2,
              "need at least one unit cell");
    const size_t cell_rows = result.arrival.rows() - 1;
    const size_t cell_cols = result.arrival.cols() - 1;
    const size_t regions_r = util::ceilDiv(cell_rows, region_side);
    const size_t regions_c = util::ceilDiv(cell_cols, region_side);

    GatingAnalysis analysis;
    analysis.regionSide = region_side;
    analysis.regions = regions_r * regions_c;
    analysis.totalCycles = result.latencyCycles;
    analysis.windows = util::Grid<RegionWindow>(regions_r, regions_c);

    const uint64_t total_dffs =
        static_cast<uint64_t>(cell_rows) * cell_cols * dffs_per_cell;
    analysis.ungatedDffCycles = total_dffs * analysis.totalCycles;
    analysis.gateOverheadCycles =
        static_cast<uint64_t>(analysis.regions) * analysis.totalCycles;

    for (size_t i = 1; i <= cell_rows; ++i) {
        for (size_t j = 1; j <= cell_cols; ++j) {
            sim::Tick fired = result.arrival.at(i, j);
            // A cell's delay elements start capturing when any of
            // its inputs fire; the earliest possible input is the
            // cell's own firing time minus the largest incoming
            // weight, but the window below is what the H-tree leaf
            // can actually observe: the wake signal is the arrival
            // of a 1 at the region's black (leading) cells, and the
            // sleep signal is all grey (trailing) cells latched.
            if (fired == sim::kTickInfinity)
                continue;
            RegionWindow &w = analysis.windows.at((i - 1) / region_side,
                                                  (j - 1) / region_side);
            sim::Tick wake = fired == 0 ? 0 : fired - 1;
            w.start = std::min(w.start, wake);
            w.end = std::max(w.end, fired + 1);
        }
    }

    for (size_t r = 0; r < regions_r; ++r) {
        for (size_t c = 0; c < regions_c; ++c) {
            const RegionWindow &w = analysis.windows.at(r, c);
            if (w.start == sim::kTickInfinity)
                continue;
            // Cells in this region (edge regions may be partial).
            size_t rows_here =
                std::min(region_side, cell_rows - r * region_side);
            size_t cols_here =
                std::min(region_side, cell_cols - c * region_side);
            uint64_t dffs = static_cast<uint64_t>(rows_here) *
                            cols_here * dffs_per_cell;
            // Clamp the window to the race duration.
            sim::Tick end = std::min<sim::Tick>(w.end,
                                                analysis.totalCycles);
            sim::Tick active = end >= w.start ? end - w.start + 1 : 0;
            analysis.gatedDffCycles += dffs * active;
        }
    }
    return analysis;
}

MeasuredGatedClocks
splitGatedClockActivity(const circuit::Activity &activity, size_t rows,
                        size_t cols)
{
    MeasuredGatedClocks split;
    split.boundaryDffCycles =
        static_cast<uint64_t>(rows + cols) * activity.cycles;
    rl_assert(activity.clockedDffCycles >= split.boundaryDffCycles,
              "measured clock activity smaller than the un-gated "
              "boundary frame alone; wrong fabric dimensions?");
    split.cellDffCycles =
        activity.clockedDffCycles - split.boundaryDffCycles;
    return split;
}

} // namespace racelogic::core
