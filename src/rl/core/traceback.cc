#include "rl/core/traceback.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::core {

bio::Alignment
tracebackFromRace(const RaceGridResult &result, const bio::Sequence &a,
                  const bio::Sequence &b, const bio::ScoreMatrix &costs)
{
    const size_t n = a.size();
    const size_t m = b.size();
    rl_assert(result.arrival.rows() == n + 1 &&
                  result.arrival.cols() == m + 1,
              "arrival map does not match the sequences");
    const bio::Alphabet &alphabet = costs.alphabet();

    auto at = [&](size_t i, size_t j) -> sim::Tick {
        return result.arrival.at(i, j);
    };

    bio::Alignment out;
    out.score = result.score;

    size_t i = n, j = m;
    std::string ra, rb;
    std::vector<std::pair<uint32_t, uint32_t>> rpath;
    rpath.emplace_back(i, j);
    while (i > 0 || j > 0) {
        sim::Tick here = at(i, j);
        rl_assert(here != sim::kTickInfinity, "traceback into a cell "
                  "that never fired");
        bool stepped = false;
        if (i > 0 && j > 0) {
            bio::Score w = costs.pair(a[i - 1], b[j - 1]);
            if (w != bio::kScoreInfinity &&
                at(i - 1, j - 1) != sim::kTickInfinity &&
                at(i - 1, j - 1) + static_cast<sim::Tick>(w) == here) {
                ra.push_back(alphabet.letter(a[i - 1]));
                rb.push_back(alphabet.letter(b[j - 1]));
                if (a[i - 1] == b[j - 1])
                    ++out.matches;
                else
                    ++out.mismatches;
                --i;
                --j;
                stepped = true;
            }
        }
        if (!stepped && i > 0 &&
            at(i - 1, j) + static_cast<sim::Tick>(costs.gap(a[i - 1])) ==
                here) {
            ra.push_back(alphabet.letter(a[i - 1]));
            rb.push_back('-');
            ++out.indels;
            --i;
            stepped = true;
        }
        if (!stepped && j > 0 &&
            at(i, j - 1) + static_cast<sim::Tick>(costs.gap(b[j - 1])) ==
                here) {
            ra.push_back('-');
            rb.push_back(alphabet.letter(b[j - 1]));
            ++out.indels;
            --j;
            stepped = true;
        }
        rl_assert(stepped,
                  "no tight predecessor at (", i, ",", j,
                  "): arrival map inconsistent with the matrix");
        rpath.emplace_back(i, j);
    }
    std::reverse(ra.begin(), ra.end());
    std::reverse(rb.begin(), rb.end());
    std::reverse(rpath.begin(), rpath.end());
    out.alignedA = std::move(ra);
    out.alignedB = std::move(rb);
    out.path = std::move(rpath);
    return out;
}

} // namespace racelogic::core
