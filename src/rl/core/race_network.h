/**
 * @file
 * Compiling a weighted DAG into a race and running it.
 *
 * This is the paper's Section 3 construction: "all nodes are replaced
 * with OR/AND gates while edges [are replaced] with corresponding
 * delays", and the shortest/longest path is read off as the
 * propagation time from the root node(s) to the output node(s).
 *
 * Two execution backends are provided:
 *
 *  - raceDag(): a temporal simulation on the DAG itself.  Arrival
 *    events propagate in time order exactly as edges would in
 *    hardware; per-node firing times come out as a by-product (the
 *    "wavefront").  Graphs with bounded delays (all of them, in
 *    practice) run on the bucketed wavefront kernel
 *    (rl/core/wavefront.h -- Dial's algorithm, O(E + T), no heap and
 *    no per-event allocation); raceDagEventDriven() is the original
 *    heap-scheduled reference kernel, kept for equivalence testing
 *    and as the fallback for out-of-range delays.
 *
 *  - compileRaceCircuit(): an actual gate-level netlist (OR/AND
 *    gates + DFF delay chains) runnable on circuit::SyncSim.  This
 *    is the synthesizable artifact; the event backend and the DP
 *    oracle validate it.
 */

#ifndef RACELOGIC_CORE_RACE_NETWORK_H
#define RACELOGIC_CORE_RACE_NETWORK_H

#include <vector>

#include "rl/circuit/netlist.h"
#include "rl/core/temporal.h"
#include "rl/graph/dag.h"
#include "rl/sim/event_queue.h"

namespace racelogic::core {

/** Gate family the nodes become (paper Fig. 3b vs 3c). */
enum class RaceType {
    Or,  ///< first arrival wins: min / shortest path
    And, ///< last arrival wins: max / longest path
};

/** Outcome of an event-driven race. */
struct RaceOutcome {
    /** Per-node firing time ("never" where the signal can't reach). */
    std::vector<TemporalValue> firing;

    /** Events processed by the simulation. */
    uint64_t events = 0;

    /** Latest firing time among fired nodes (total race duration). */
    sim::Tick horizon = 0;

    TemporalValue
    at(graph::NodeId node) const
    {
        return firing[node];
    }
};

/**
 * Race over `dag` injecting a rising edge at every node in `sources`
 * at tick 0.
 *
 * Dispatches to the bucketed wavefront kernel (rl/core/wavefront.h)
 * when the graph's delays fit its calendar, falling back to the
 * heap-scheduled event kernel otherwise; both produce identical
 * outcomes.
 *
 * Requirements checked: the graph is acyclic and every edge weight
 * is >= 0 (Race Logic cannot realize negative delays; Section 5).
 * For RaceType::And the hardware fires a node only after *all*
 * in-edges have fired, so any node with an in-edge that cannot fire
 * stays at never(); callers comparing against a longest-path DP
 * should ensure all predecessors are reachable (see
 * andRaceMatchesDp()).
 *
 * @param horizon  Section 6 early termination: arrivals later than
 *                 this tick are never simulated, so nodes whose
 *                 signal would arrive past the horizon stay at
 *                 never().  Default races to full drain.
 */
RaceOutcome raceDag(const graph::Dag &dag,
                    const std::vector<graph::NodeId> &sources,
                    RaceType type,
                    sim::Tick horizon = sim::kTickInfinity);

/**
 * The original heap-scheduled reference kernel: one sim::EventQueue
 * callback per edge arrival.  Same semantics (and same outcome,
 * event counts included) as raceDag(); kept as the equivalence
 * reference for the wavefront kernel and as raceDag()'s fallback for
 * graphs whose delays exceed kMaxWavefrontWeight.
 */
RaceOutcome raceDagEventDriven(const graph::Dag &dag,
                               const std::vector<graph::NodeId> &sources,
                               RaceType type,
                               sim::Tick horizon = sim::kTickInfinity);

/**
 * True iff an AND-type race over this graph/source set computes the
 * same values as the longest-path DP at every node: that is, every
 * node is either unreachable or has all of its predecessors
 * reachable.  (OR-type races always match the shortest-path DP.)
 */
bool andRaceMatchesDp(const graph::Dag &dag,
                      const std::vector<graph::NodeId> &sources);

/** A DAG compiled to gates, with the net bindings needed to run it. */
struct RaceCircuit {
    circuit::Netlist netlist;

    /** Primary-input net of each source node (in `sources` order). */
    std::vector<circuit::NetId> sourceInputs;

    /** Net carrying each DAG node's firing signal. */
    std::vector<circuit::NetId> nodeNets;
};

/**
 * Compile `dag` into a synchronous race circuit (Fig. 3b/3c): each
 * non-source node becomes one OR/AND gate, each weight-w edge a
 * w-deep DFF chain (weight 0 = plain wire).
 *
 * fatal() on negative weights or cyclic graphs.  Run by driving
 * sourceInputs high at cycle 0 and stepping SyncSim until the sink's
 * nodeNets entry rises; the cycle number is the path score.
 */
RaceCircuit compileRaceCircuit(const graph::Dag &dag,
                               const std::vector<graph::NodeId> &sources,
                               RaceType type);

} // namespace racelogic::core

#endif // RACELOGIC_CORE_RACE_NETWORK_H
