/**
 * @file
 * Process-wide registry of thread-local scratch arenas, so a memory
 * budget can *see* and *reclaim* capacity that is otherwise pinned
 * inside worker threads.
 *
 * The race kernels keep their bucket calendars in `static
 * thread_local` scratch so steady-state batches allocate nothing per
 * comparison.  The flip side: one oversized solve grows a worker's
 * arena to its high-water and nothing ever gives those bytes back --
 * invisible, unbounded-in-aggregate resident memory.  The registry
 * fixes both halves:
 *
 *  - every scratch site registers once per thread and *publishes* its
 *    resident byte count (a relaxed atomic, probed from the arena by
 *    the lease destructor while the owner still holds its lease --
 *    honest even when the solve threw) plus a last-use timestamp, so
 *    `totalResidentBytes()` is an honest daemon-wide sum with no
 *    locks on the solve path;
 *  - `shrinkIdle()` / `shrinkAll()` walk the entries and call each
 *    scratch's shrinkToFit -- but only under a per-entry try_lock, so
 *    a janitor thread can reclaim an *idle* worker's arena without
 *    ever blocking (or racing) a solve in progress.  The owning
 *    thread holds its entry's mutex for the duration of a solve via
 *    an RAII ScratchLease.
 *
 * Entry *slots* are never removed: thread_local destruction order at
 * process exit is unsequenced with respect to other statics, so the
 * registry leaks its (tiny) entry list deliberately -- the same
 * leak-on-exit idiom the telemetry lane registry uses.  But a dying
 * worker thread MUST retract its probe hook (the hook points into
 * its thread_local arena): ScratchRegistration's destructor does so
 * under the entry's mutex, leaving a zero-byte tombstone slot that
 * shrinkers skip.
 */

#ifndef RACELOGIC_CORE_SCRATCH_REGISTRY_H
#define RACELOGIC_CORE_SCRATCH_REGISTRY_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace racelogic::core {

/** One registered thread-local scratch arena. */
struct ScratchEntry {
    /** Held by the owning thread across each solve (ScratchLease);
     *  try_locked by shrinkers so they never block a solve. */
    std::mutex busy;

    /** Resident heap bytes, published after each solve (lease
     *  destructor) and after every shrink.  Relaxed: a stale read
     *  only skews a budget snapshot by one solve. */
    std::atomic<size_t> residentBytes{0};

    /** steady_clock::time_since_epoch of the last lease release, in
     *  nanoseconds; lets shrinkIdle() spare recently-active workers. */
    std::atomic<int64_t> lastUseNs{0};

    /** Probes the arena's resident byte count, first releasing its
     *  retained capacity when `shrink` is true.  Called only with
     *  `busy` held, so it never races the owner.  Must be bound to
     *  the owning thread's arena instance at registration time --
     *  shrinkers run on other threads. */
    std::function<size_t(bool shrink)> probe;
};

/**
 * RAII lease an owning thread holds across one solve: locks the
 * entry's mutex so shrinkers keep their hands off, and on destruction
 * probes the arena for its *actual* resident bytes and publishes them
 * with a last-use stamp.  Destructor-driven on purpose: a solve that
 * throws (the dispatcher tolerates throwing jobs) still publishes its
 * true high-water, not zero -- those bytes must stay visible to the
 * brownout budget.
 */
class ScratchLease
{
  public:
    /** Blocks only if a shrinker won the try_lock race this instant
     *  (shrinks are microseconds; solves are milliseconds). */
    explicit ScratchLease(ScratchEntry &entry) : entry(entry)
    {
        entry.busy.lock();
    }

    ScratchLease(const ScratchLease &) = delete;
    ScratchLease &operator=(const ScratchLease &) = delete;

    ~ScratchLease()
    {
        // `probe` cannot be retracted mid-lease (retraction takes
        // `busy`, which we hold); the null check covers only a lease
        // taken on an already-tombstoned slot.
        const size_t bytes = entry.probe ? entry.probe(false) : 0;
        entry.residentBytes.store(bytes, std::memory_order_relaxed);
        entry.lastUseNs.store(
            std::chrono::steady_clock::now().time_since_epoch().count(),
            std::memory_order_relaxed);
        entry.busy.unlock();
    }

  private:
    ScratchEntry &entry;
};

/**
 * Per-thread RAII handle on one registered scratch site.  Declare it
 * `static thread_local`, AFTER the scratch arena it covers, so its
 * destructor runs first at thread exit and retracts the shrink hook
 * while the arena is still alive.  The slot itself is leaked (see the
 * file comment); a retracted slot publishes zero bytes and is skipped
 * by shrinkers.
 */
class ScratchRegistration
{
  public:
    explicit ScratchRegistration(std::function<size_t(bool)> probe);

    ScratchRegistration(const ScratchRegistration &) = delete;
    ScratchRegistration &operator=(const ScratchRegistration &) = delete;

    ~ScratchRegistration();

    ScratchEntry &entry() { return *slot; }

  private:
    ScratchEntry *slot;
};

/**
 * The process-wide registry.  registerEntry() is called once per
 * (thread, scratch site); snapshots and shrinks walk the entry list
 * under the registry mutex but touch each arena only via try_lock.
 */
class ScratchRegistry
{
  public:
    static ScratchRegistry &instance();

    /**
     * Register a scratch site; the returned entry lives until process
     * exit.  `probe(shrink)` must return the arena's resident byte
     * count, releasing its capacity first when `shrink` is true; the
     * registry publishes the returned count.
     */
    ScratchEntry &registerEntry(std::function<size_t(bool)> probe);

    /** Sum of every entry's published resident bytes. */
    size_t totalResidentBytes() const;

    /** Number of registered scratch sites (tests/metrics). */
    size_t entryCount() const;

    /**
     * Shrink every entry that is not mid-solve (try_lock) and whose
     * last use is at least `idle` ago.  Returns bytes reclaimed
     * (published deltas; an entry busy right now contributes 0 and
     * will be caught on a later pass).
     */
    size_t shrinkIdle(std::chrono::nanoseconds idle);

    /** Shrink every non-busy entry regardless of idle time
     *  (brownout's reclaim hammer).  Returns bytes reclaimed. */
    size_t
    shrinkAll()
    {
        return shrinkIdle(std::chrono::nanoseconds{0});
    }

  private:
    ScratchRegistry() = default;

    mutable std::mutex mutex;
    std::vector<ScratchEntry *> entries; ///< leaked on exit, by design
};

} // namespace racelogic::core

#endif // RACELOGIC_CORE_SCRATCH_REGISTRY_H
