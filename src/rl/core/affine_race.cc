#include "rl/core/affine_race.h"

#include "rl/util/logging.h"

namespace racelogic::core {

AffineRaceResult
raceAffine(const bio::Sequence &a, const bio::Sequence &b,
           const bio::ScoreMatrix &costs, const bio::AffineGapCosts &gaps)
{
    bio::AffineEditGraph lattice =
        bio::makeAffineEditGraph(a, b, costs, gaps);
    RaceOutcome outcome =
        raceDag(lattice.dag, {lattice.source}, RaceType::Or);
    TemporalValue sink = outcome.at(lattice.sink);
    rl_assert(sink.fired(),
              "affine race never finished; finite gaps should always "
              "connect the corners");

    AffineRaceResult result;
    result.score = static_cast<bio::Score>(sink.time());
    result.latencyCycles = sink.time();
    result.events = outcome.events;
    result.nodes = lattice.dag.nodeCount();
    return result;
}

} // namespace racelogic::core
