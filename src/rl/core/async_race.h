/**
 * @file
 * Asynchronous (analog-delay) Race Logic (paper Fig. 3d and the
 * Section 6 discussion).
 *
 * "The most optimal implementation of Race Logic is asynchronous and
 * in the analog domain" -- edges become physical delays (e.g.
 * memristive RC, Fig. 3d) instead of DFF chains, removing the clock
 * network entirely (the clockless energy curves of Figs. 5/9).  The
 * cost is precision: fabricated delays vary from device to device,
 * and a race decided by analog delays can pick a path whose *true*
 * weight is not minimal.
 *
 * This module simulates the analog variant: per-edge delays are
 * weight * unit_delay * (1 + variation), with lognormal-ish
 * multiplicative variation drawn per edge, and the race is evaluated
 * in continuous time.  analyzeVariationRobustness() Monte-Carlos the
 * decision quality -- how often the analog winner is a true shortest
 * path and how far off the readout is -- quantifying the
 * precision/energy trade the paper alludes to.
 */

#ifndef RACELOGIC_CORE_ASYNC_RACE_H
#define RACELOGIC_CORE_ASYNC_RACE_H

#include <vector>

#include "rl/core/race_network.h"
#include "rl/graph/dag.h"
#include "rl/util/random.h"

namespace racelogic::core {

/** Analog edge-delay model. */
struct AnalogDelayModel {
    /** Nominal delay per unit of edge weight (ns). */
    double unitDelayNs = 1.0;

    /**
     * Relative device variation: each edge's delay is multiplied by
     * exp(sigma * gaussian) (median-preserving, always positive).
     */
    double sigma = 0.0;
};

/** One analog race's outcome. */
struct AsyncOutcome {
    /** Continuous arrival time per node (infinity = never). */
    std::vector<double> arrivalNs;

    /** Edge delays actually instantiated (per dag edge index). */
    std::vector<double> edgeDelaysNs;

    bool
    fired(graph::NodeId node) const
    {
        return arrivalNs[node] < kNeverNs;
    }

    static constexpr double kNeverNs = 1e300;
};

/**
 * Race `dag` with analog delays.
 *
 * @param dag     Weighted DAG (weights >= 0).
 * @param sources Nodes injected at t = 0.
 * @param type    Or (min) or And (max) node behaviour.
 * @param model   Delay model; sigma = 0 gives the ideal analog race
 *                whose arrival times equal weight * unitDelayNs.
 * @param rng     Variation source (one draw per edge).
 */
AsyncOutcome raceDagAnalog(const graph::Dag &dag,
                           const std::vector<graph::NodeId> &sources,
                           RaceType type, const AnalogDelayModel &model,
                           util::Rng &rng);

/** Monte-Carlo decision quality of the analog OR race. */
struct RobustnessReport {
    size_t trials = 0;

    /** Trials whose analog winner path is a true shortest path. */
    size_t decisionCorrect = 0;

    /** Trials whose rounded readout equals the true score. */
    size_t readoutExact = 0;

    /** Mean |analog arrival - ideal arrival| / ideal at the sink. */
    double meanRelativeError = 0.0;

    /** Largest relative error observed. */
    double maxRelativeError = 0.0;

    double
    decisionRate() const
    {
        return trials ? double(decisionCorrect) / double(trials) : 1.0;
    }

    double
    readoutRate() const
    {
        return trials ? double(readoutExact) / double(trials) : 1.0;
    }
};

/**
 * Repeatedly instantiate analog delays and race, comparing against
 * the exact digital result.
 *
 * The "analog winner" is recovered by tight-edge traceback on the
 * continuous arrival times; its true (integer) weight is compared to
 * the DP optimum.  The readout is the sink arrival divided by
 * unitDelayNs, rounded -- what a time-to-digital converter at the
 * output would report.
 */
RobustnessReport analyzeVariationRobustness(
    const graph::Dag &dag, const std::vector<graph::NodeId> &sources,
    graph::NodeId sink, const AnalogDelayModel &model, size_t trials,
    util::Rng &rng);

} // namespace racelogic::core

#endif // RACELOGIC_CORE_ASYNC_RACE_H
