#include "rl/apps/dtw.h"

#include <algorithm>
#include <cmath>

#include "rl/api/engine.h"
#include "rl/util/logging.h"

namespace racelogic::apps {

namespace {

int64_t
cost(Sample a, Sample b)
{
    return a > b ? a - b : b - a;
}

} // namespace

int64_t
dtwDistance(const std::vector<Sample> &x, const std::vector<Sample> &y)
{
    rl_assert(!x.empty() && !y.empty(), "DTW of an empty signal");
    const size_t n = x.size();
    const size_t m = y.size();
    constexpr int64_t inf = INT64_MAX / 4;

    std::vector<int64_t> prev(m + 1, inf), curr(m + 1, inf);
    prev[0] = 0; // virtual start before both signals
    for (size_t i = 1; i <= n; ++i) {
        curr[0] = inf;
        for (size_t j = 1; j <= m; ++j) {
            int64_t best =
                std::min({prev[j], curr[j - 1], prev[j - 1]});
            curr[j] = best >= inf ? inf
                                  : best + cost(x[i - 1], y[j - 1]);
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

DtwGraph
makeDtwGraph(const std::vector<Sample> &x, const std::vector<Sample> &y)
{
    rl_assert(!x.empty() && !y.empty(), "DTW of an empty signal");
    DtwGraph g;
    g.rows = x.size();
    g.cols = y.size();
    g.dag.addNodes(g.rows * g.cols);
    g.source = g.dag.addNode("dtwSource");
    g.sink = g.node(g.rows, g.cols);

    // The node cost |x_i - y_j| weighs every edge entering (i, j).
    g.dag.addEdge(g.source, g.node(1, 1), cost(x[0], y[0]));
    for (size_t i = 1; i <= g.rows; ++i) {
        for (size_t j = 1; j <= g.cols; ++j) {
            int64_t w = cost(x[i - 1], y[j - 1]);
            if (i > 1)
                g.dag.addEdge(g.node(i - 1, j), g.node(i, j), w);
            if (j > 1)
                g.dag.addEdge(g.node(i, j - 1), g.node(i, j), w);
            if (i > 1 && j > 1)
                g.dag.addEdge(g.node(i - 1, j - 1), g.node(i, j), w);
        }
    }
    return g;
}

DtwRaceResult
raceDtw(const std::vector<Sample> &x, const std::vector<Sample> &y)
{
    api::EngineConfig config;
    config.withEstimates = false;
    api::RaceEngine engine(config);
    api::RaceResult raced = engine.solve(api::RaceProblem::dtw(x, y));

    DtwRaceResult result;
    result.distance = static_cast<int64_t>(raced.score);
    result.latencyCycles = raced.latencyCycles;
    result.events = raced.events;
    return result;
}

std::vector<Sample>
quantizedSine(util::Rng &rng, size_t length, double cycles,
              double amplitude, double phase, double noise)
{
    rl_assert(length >= 1, "empty signal requested");
    std::vector<Sample> signal(length);
    constexpr double tau = 2.0 * 3.14159265358979323846;
    for (size_t t = 0; t < length; ++t) {
        double value =
            amplitude *
            std::sin(tau * cycles * double(t) / double(length) + phase);
        if (noise > 0.0)
            value += (rng.uniformReal() * 2.0 - 1.0) * noise;
        signal[t] = static_cast<Sample>(std::llround(value));
    }
    return signal;
}

} // namespace racelogic::apps
