/**
 * @file
 * Dynamic time warping on Race Logic.
 *
 * DTW is the other canonical grid-DAG dynamic program: warp two
 * sampled signals onto each other minimizing the summed per-sample
 * distance.  Its recurrence has exactly the edit-graph shape --
 * three predecessors, non-negative node costs -- so the paper's
 * OR-type construction races it unchanged: the node cost |x_i - y_j|
 * becomes the weight of every edge *entering* cell (i, j), and
 * equal samples yield zero-weight edges, which are plain wires in
 * hardware.  This module gives the reference DP, the DAG builder,
 * and the raced version, plus a small signal workload generator.
 */

#ifndef RACELOGIC_APPS_DTW_H
#define RACELOGIC_APPS_DTW_H

#include <cstdint>
#include <vector>

#include "rl/core/race_network.h"
#include "rl/graph/dag.h"
#include "rl/util/random.h"

namespace racelogic::apps {

/** A quantized signal sample (integer ADC codes). */
using Sample = int64_t;

/** Reference DTW distance (classic O(n*m) DP, band-free). */
int64_t dtwDistance(const std::vector<Sample> &x,
                    const std::vector<Sample> &y);

/** The DTW lattice as a weighted DAG. */
struct DtwGraph {
    graph::Dag dag;
    graph::NodeId source = graph::kNoNode;
    graph::NodeId sink = graph::kNoNode;
    size_t rows = 0; ///< |x|
    size_t cols = 0; ///< |y|

    /** Node id of warp cell (i, j), 1-based like the DP. */
    graph::NodeId
    node(size_t i, size_t j) const
    {
        return static_cast<graph::NodeId>((i - 1) * cols + (j - 1));
    }
};

/** Build the DTW lattice of (x, y); both must be non-empty. */
DtwGraph makeDtwGraph(const std::vector<Sample> &x,
                      const std::vector<Sample> &y);

/** Result of racing a DTW lattice. */
struct DtwRaceResult {
    int64_t distance = 0;
    sim::Tick latencyCycles = 0;
    uint64_t events = 0;
};

/**
 * Race the DTW of (x, y) and read the distance off the clock.
 *
 * @deprecated Shim over the unified facade; new code should use
 * api::RaceEngine::solve(api::RaceProblem::dtw(x, y)) (rl/api/api.h),
 * which also offers the gate-level backend and technology pricing.
 */
DtwRaceResult raceDtw(const std::vector<Sample> &x,
                      const std::vector<Sample> &y);

/**
 * Quantized noisy sine for tests/examples: length samples of
 * amplitude * sin(2*pi*cycles*t/length + phase) + uniform noise,
 * rounded to integers.
 */
std::vector<Sample> quantizedSine(util::Rng &rng, size_t length,
                                  double cycles, double amplitude,
                                  double phase = 0.0,
                                  double noise = 0.0);

} // namespace racelogic::apps

#endif // RACELOGIC_APPS_DTW_H
