#include "rl/bio/align_dp.h"

#include <algorithm>

#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::bio {

namespace {

void
checkMatrixUsable(const Sequence &a, const Sequence &b,
                  const ScoreMatrix &matrix)
{
    rl_assert(a.alphabet() == matrix.alphabet() &&
              b.alphabet() == matrix.alphabet(),
              "sequences and matrix use different alphabets");
    for (Symbol s = 0; s < matrix.alphabet().size(); ++s)
        rl_assert(matrix.gap(s) != kScoreInfinity &&
                  matrix.gap(s) != -kScoreInfinity,
                  "gap weights must be finite");
}

inline bool
better(Score candidate, Score incumbent, bool minimize)
{
    return minimize ? candidate < incumbent : candidate > incumbent;
}

} // namespace

util::Grid<Score>
dpTable(const Sequence &a, const Sequence &b, const ScoreMatrix &matrix)
{
    checkMatrixUsable(a, b, matrix);
    const size_t n = a.size();
    const size_t m = b.size();
    const bool minimize = matrix.isCost();

    util::Grid<Score> t(n + 1, m + 1, 0);
    for (size_t i = 1; i <= n; ++i)
        t(i, 0) = t(i - 1, 0) + matrix.gap(a[i - 1]);
    for (size_t j = 1; j <= m; ++j)
        t(0, j) = t(0, j - 1) + matrix.gap(b[j - 1]);

    for (size_t i = 1; i <= n; ++i) {
        for (size_t j = 1; j <= m; ++j) {
            Score best = t(i - 1, j) + matrix.gap(a[i - 1]);
            Score left = t(i, j - 1) + matrix.gap(b[j - 1]);
            if (better(left, best, minimize))
                best = left;
            Score w = matrix.pair(a[i - 1], b[j - 1]);
            if (w != kScoreInfinity) {
                Score diag = t(i - 1, j - 1) + w;
                if (better(diag, best, minimize))
                    best = diag;
            }
            t(i, j) = best;
        }
    }
    return t;
}

Score
globalScore(const Sequence &a, const Sequence &b,
            const ScoreMatrix &matrix)
{
    checkMatrixUsable(a, b, matrix);
    const size_t n = a.size();
    const size_t m = b.size();
    const bool minimize = matrix.isCost();

    std::vector<Score> prev(m + 1), curr(m + 1);
    prev[0] = 0;
    for (size_t j = 1; j <= m; ++j)
        prev[j] = prev[j - 1] + matrix.gap(b[j - 1]);

    for (size_t i = 1; i <= n; ++i) {
        curr[0] = prev[0] + matrix.gap(a[i - 1]);
        for (size_t j = 1; j <= m; ++j) {
            Score best = prev[j] + matrix.gap(a[i - 1]);
            Score left = curr[j - 1] + matrix.gap(b[j - 1]);
            if (better(left, best, minimize))
                best = left;
            Score w = matrix.pair(a[i - 1], b[j - 1]);
            if (w != kScoreInfinity) {
                Score diag = prev[j - 1] + w;
                if (better(diag, best, minimize))
                    best = diag;
            }
            curr[j] = best;
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

Alignment
globalAlign(const Sequence &a, const Sequence &b,
            const ScoreMatrix &matrix)
{
    util::Grid<Score> t = dpTable(a, b, matrix);
    const size_t n = a.size();
    const size_t m = b.size();
    const Alphabet &alphabet = matrix.alphabet();

    Alignment result;
    result.score = t(n, m);

    // Deterministic traceback preference: diagonal, then vertical
    // (consume from a), then horizontal (consume from b).
    size_t i = n, j = m;
    std::string ra, rb;
    std::vector<std::pair<uint32_t, uint32_t>> rpath;
    rpath.emplace_back(i, j);
    while (i > 0 || j > 0) {
        bool stepped = false;
        if (i > 0 && j > 0) {
            Score w = matrix.pair(a[i - 1], b[j - 1]);
            if (w != kScoreInfinity && t(i, j) == t(i - 1, j - 1) + w) {
                ra.push_back(alphabet.letter(a[i - 1]));
                rb.push_back(alphabet.letter(b[j - 1]));
                if (a[i - 1] == b[j - 1])
                    ++result.matches;
                else
                    ++result.mismatches;
                --i;
                --j;
                stepped = true;
            }
        }
        if (!stepped && i > 0 &&
            t(i, j) == t(i - 1, j) + matrix.gap(a[i - 1])) {
            ra.push_back(alphabet.letter(a[i - 1]));
            rb.push_back('-');
            ++result.indels;
            --i;
            stepped = true;
        }
        if (!stepped && j > 0 &&
            t(i, j) == t(i, j - 1) + matrix.gap(b[j - 1])) {
            ra.push_back('-');
            rb.push_back(alphabet.letter(b[j - 1]));
            ++result.indels;
            --j;
            stepped = true;
        }
        rl_assert(stepped, "traceback stuck at (", i, ",", j,
                  "): inconsistent DP table");
        rpath.emplace_back(i, j);
    }

    std::reverse(ra.begin(), ra.end());
    std::reverse(rb.begin(), rb.end());
    std::reverse(rpath.begin(), rpath.end());
    result.alignedA = std::move(ra);
    result.alignedB = std::move(rb);
    result.path = std::move(rpath);
    return result;
}

namespace {

/** Last row of the global DP of (a, b): scores d(|a|, j). */
std::vector<Score>
lastRowScores(const Sequence &a, const Sequence &b,
              const ScoreMatrix &matrix)
{
    const size_t n = a.size();
    const size_t m = b.size();
    const bool minimize = matrix.isCost();
    std::vector<Score> prev(m + 1), curr(m + 1);
    prev[0] = 0;
    for (size_t j = 1; j <= m; ++j)
        prev[j] = prev[j - 1] + matrix.gap(b[j - 1]);
    for (size_t i = 1; i <= n; ++i) {
        curr[0] = prev[0] + matrix.gap(a[i - 1]);
        for (size_t j = 1; j <= m; ++j) {
            Score best = prev[j] + matrix.gap(a[i - 1]);
            Score left = curr[j - 1] + matrix.gap(b[j - 1]);
            if (better(left, best, minimize))
                best = left;
            Score w = matrix.pair(a[i - 1], b[j - 1]);
            if (w != kScoreInfinity) {
                Score diag = prev[j - 1] + w;
                if (better(diag, best, minimize))
                    best = diag;
            }
            curr[j] = best;
        }
        std::swap(prev, curr);
    }
    return prev;
}

Sequence
reversed(const Sequence &s)
{
    std::vector<Symbol> symbols(s.symbols().rbegin(),
                                s.symbols().rend());
    return Sequence(s.alphabet(), std::move(symbols));
}

/** Recursive Hirschberg: returns the two aligned rows. */
void
hirschbergRows(const Sequence &a, const Sequence &b,
               const ScoreMatrix &matrix, std::string &row_a,
               std::string &row_b)
{
    const Alphabet &alphabet = matrix.alphabet();
    if (a.empty()) {
        for (size_t j = 0; j < b.size(); ++j) {
            row_a.push_back('-');
            row_b.push_back(alphabet.letter(b[j]));
        }
        return;
    }
    if (b.empty()) {
        for (size_t i = 0; i < a.size(); ++i) {
            row_a.push_back(alphabet.letter(a[i]));
            row_b.push_back('-');
        }
        return;
    }
    if (a.size() == 1 || b.size() == 1) {
        Alignment base = globalAlign(a, b, matrix);
        row_a += base.alignedA;
        row_b += base.alignedB;
        return;
    }

    const size_t mid = a.size() / 2;
    Sequence top = a.slice(0, mid);
    Sequence bottom = a.slice(mid, a.size() - mid);
    std::vector<Score> forward = lastRowScores(top, b, matrix);
    std::vector<Score> backward =
        lastRowScores(reversed(bottom), reversed(b), matrix);

    const bool minimize = matrix.isCost();
    size_t split = 0;
    Score best = forward[0] + backward[b.size()];
    for (size_t j = 1; j <= b.size(); ++j) {
        Score candidate = forward[j] + backward[b.size() - j];
        if (better(candidate, best, minimize)) {
            best = candidate;
            split = j;
        }
    }

    hirschbergRows(top, b.slice(0, split), matrix, row_a, row_b);
    hirschbergRows(bottom, b.slice(split, b.size() - split), matrix,
                   row_a, row_b);
}

} // namespace

Alignment
hirschbergAlign(const Sequence &a, const Sequence &b,
                const ScoreMatrix &matrix)
{
    checkMatrixUsable(a, b, matrix);
    Alignment out;
    hirschbergRows(a, b, matrix, out.alignedA, out.alignedB);

    // Derive score, path, and operation counts from the rows.
    const Alphabet &alphabet = matrix.alphabet();
    uint32_t i = 0, j = 0;
    out.path.emplace_back(0u, 0u);
    for (size_t k = 0; k < out.alignedA.size(); ++k) {
        char ca = out.alignedA[k];
        char cb = out.alignedB[k];
        rl_assert(!(ca == '-' && cb == '-'), "double gap column");
        if (ca != '-' && cb != '-') {
            Score w = matrix.pair(alphabet.encode(ca),
                                  alphabet.encode(cb));
            rl_assert(w != kScoreInfinity,
                      "Hirschberg produced a forbidden pair");
            out.score += w;
            if (ca == cb)
                ++out.matches;
            else
                ++out.mismatches;
            ++i;
            ++j;
        } else if (ca != '-') {
            out.score += matrix.gap(alphabet.encode(ca));
            ++out.indels;
            ++i;
        } else {
            out.score += matrix.gap(alphabet.encode(cb));
            ++out.indels;
            ++j;
        }
        out.path.emplace_back(i, j);
    }
    return out;
}

LocalAlignment
localAlign(const Sequence &a, const Sequence &b,
           const ScoreMatrix &similarity)
{
    rl_assert(similarity.kind() == ScoreKind::Similarity,
              "Smith-Waterman requires a similarity matrix");
    checkMatrixUsable(a, b, similarity);
    const size_t n = a.size();
    const size_t m = b.size();
    const Alphabet &alphabet = similarity.alphabet();

    util::Grid<Score> t(n + 1, m + 1, 0);
    Score best = 0;
    size_t bi = 0, bj = 0;
    for (size_t i = 1; i <= n; ++i) {
        for (size_t j = 1; j <= m; ++j) {
            Score w = similarity.pair(a[i - 1], b[j - 1]);
            Score v = std::max<Score>(
                {0,
                 t(i - 1, j - 1) + w,
                 t(i - 1, j) + similarity.gap(a[i - 1]),
                 t(i, j - 1) + similarity.gap(b[j - 1])});
            t(i, j) = v;
            if (v > best) {
                best = v;
                bi = i;
                bj = j;
            }
        }
    }

    LocalAlignment result;
    result.score = best;
    if (best == 0)
        return result; // empty local alignment

    // Trace back until a zero cell.
    size_t i = bi, j = bj;
    std::string ra, rb;
    while (t(i, j) != 0) {
        if (i > 0 && j > 0 &&
            t(i, j) == t(i - 1, j - 1) +
                           similarity.pair(a[i - 1], b[j - 1])) {
            ra.push_back(alphabet.letter(a[i - 1]));
            rb.push_back(alphabet.letter(b[j - 1]));
            --i;
            --j;
        } else if (i > 0 &&
                   t(i, j) == t(i - 1, j) + similarity.gap(a[i - 1])) {
            ra.push_back(alphabet.letter(a[i - 1]));
            rb.push_back('-');
            --i;
        } else if (j > 0 &&
                   t(i, j) == t(i, j - 1) + similarity.gap(b[j - 1])) {
            ra.push_back('-');
            rb.push_back(alphabet.letter(b[j - 1]));
            --j;
        } else {
            rl_panic("Smith-Waterman traceback inconsistent");
        }
    }
    std::reverse(ra.begin(), ra.end());
    std::reverse(rb.begin(), rb.end());
    result.beginA = i;
    result.endA = bi;
    result.beginB = j;
    result.endB = bj;
    result.alignedA = std::move(ra);
    result.alignedB = std::move(rb);
    return result;
}

Score
bandedGlobalScore(const Sequence &a, const Sequence &b,
                  const ScoreMatrix &matrix, size_t band)
{
    checkMatrixUsable(a, b, matrix);
    const size_t n = a.size();
    const size_t m = b.size();
    const bool minimize = matrix.isCost();
    const Score unreachable =
        minimize ? kScoreInfinity : -kScoreInfinity;
    size_t diff = n > m ? n - m : m - n;
    if (band < diff)
        return unreachable;

    util::Grid<Score> t(n + 1, m + 1, unreachable);
    t(0, 0) = 0;
    for (size_t j = 1; j <= std::min(m, band); ++j)
        t(0, j) = t(0, j - 1) + matrix.gap(b[j - 1]);
    for (size_t i = 1; i <= std::min(n, band); ++i)
        t(i, 0) = t(i - 1, 0) + matrix.gap(a[i - 1]);

    for (size_t i = 1; i <= n; ++i) {
        size_t lo = i > band ? i - band : 1;
        size_t hi = std::min(m, i + band);
        for (size_t j = lo; j <= hi; ++j) {
            Score best = unreachable;
            if (t(i - 1, j) != unreachable) {
                Score up = t(i - 1, j) + matrix.gap(a[i - 1]);
                if (best == unreachable || better(up, best, minimize))
                    best = up;
            }
            if (t(i, j - 1) != unreachable) {
                Score left = t(i, j - 1) + matrix.gap(b[j - 1]);
                if (best == unreachable || better(left, best, minimize))
                    best = left;
            }
            Score w = matrix.pair(a[i - 1], b[j - 1]);
            if (w != kScoreInfinity && t(i - 1, j - 1) != unreachable) {
                Score diag = t(i - 1, j - 1) + w;
                if (best == unreachable || better(diag, best, minimize))
                    best = diag;
            }
            t(i, j) = best;
        }
    }
    return t(n, m);
}

Score
levenshtein(const Sequence &a, const Sequence &b)
{
    rl_assert(a.alphabet() == b.alphabet(),
              "sequences over different alphabets");
    const size_t n = a.size();
    const size_t m = b.size();
    std::vector<Score> prev(m + 1), curr(m + 1);
    for (size_t j = 0; j <= m; ++j)
        prev[j] = static_cast<Score>(j);
    for (size_t i = 1; i <= n; ++i) {
        curr[0] = static_cast<Score>(i);
        for (size_t j = 1; j <= m; ++j) {
            Score sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

size_t
lcsLength(const Sequence &a, const Sequence &b)
{
    rl_assert(a.alphabet() == b.alphabet(),
              "sequences over different alphabets");
    const size_t n = a.size();
    const size_t m = b.size();
    std::vector<size_t> prev(m + 1, 0), curr(m + 1, 0);
    for (size_t i = 1; i <= n; ++i) {
        for (size_t j = 1; j <= m; ++j) {
            if (a[i - 1] == b[j - 1])
                curr[j] = prev[j - 1] + 1;
            else
                curr[j] = std::max(prev[j], curr[j - 1]);
        }
        std::swap(prev, curr);
        std::fill(curr.begin(), curr.end(), 0);
    }
    return prev[m];
}

std::string
checkAlignment(const Sequence &a, const Sequence &b,
               const ScoreMatrix &matrix, const Alignment &alignment)
{
    using util::format;
    const size_t n = a.size();
    const size_t m = b.size();
    if (alignment.path.empty())
        return "empty path";
    if (alignment.path.front() != std::make_pair(0u, 0u))
        return "path does not start at (0,0)";
    if (alignment.path.back() !=
        std::make_pair(uint32_t(n), uint32_t(m)))
        return format("path does not end at (%zu,%zu)", n, m);

    Score total = 0;
    size_t matches = 0, mismatches = 0, indels = 0;
    for (size_t k = 0; k + 1 < alignment.path.size(); ++k) {
        auto [i0, j0] = alignment.path[k];
        auto [i1, j1] = alignment.path[k + 1];
        uint32_t di = i1 - i0, dj = j1 - j0;
        if (di == 1 && dj == 1) {
            Score w = matrix.pair(a[i0], b[j0]);
            if (w == kScoreInfinity)
                return format("forbidden diagonal used at (%u,%u)", i0,
                              j0);
            total += w;
            if (a[i0] == b[j0])
                ++matches;
            else
                ++mismatches;
        } else if (di == 1 && dj == 0) {
            total += matrix.gap(a[i0]);
            ++indels;
        } else if (di == 0 && dj == 1) {
            total += matrix.gap(b[j0]);
            ++indels;
        } else {
            return format("non-monotone step at index %zu", k);
        }
    }
    if (total != alignment.score)
        return format("path weight %lld != reported score %lld",
                      static_cast<long long>(total),
                      static_cast<long long>(alignment.score));
    if (matches != alignment.matches ||
        mismatches != alignment.mismatches ||
        indels != alignment.indels)
        return "operation counts disagree with path";
    if (alignment.alignedA.size() != alignment.alignedB.size())
        return "aligned rows have different lengths";
    // Stripping gaps must recover the originals.
    std::string stripped_a, stripped_b;
    for (char ch : alignment.alignedA)
        if (ch != '-')
            stripped_a.push_back(ch);
    for (char ch : alignment.alignedB)
        if (ch != '-')
            stripped_b.push_back(ch);
    if (stripped_a != a.str() || stripped_b != b.str())
        return "aligned rows do not reduce to the input sequences";
    return "";
}

} // namespace racelogic::bio
