/**
 * @file
 * Minimal FASTA input/output.
 *
 * Screening workloads in the wild arrive as FASTA files; this module
 * reads and writes the subset of the format the examples need:
 * '>' description lines followed by sequence lines, ';' comments
 * ignored, whitespace tolerated, case folded to upper.
 */

#ifndef RACELOGIC_BIO_FASTA_H
#define RACELOGIC_BIO_FASTA_H

#include <iosfwd>
#include <string>
#include <vector>

#include "rl/bio/sequence.h"

namespace racelogic::bio {

/** One FASTA record. */
struct FastaRecord {
    std::string description; ///< text after '>'
    Sequence sequence;
};

/**
 * Parse FASTA records from a stream over the given alphabet.
 *
 * Tolerant of real-world inputs: CRLF line endings, lowercase bases
 * (folded to upper), blank lines, and whitespace inside sequence
 * lines.  fatal() on letters outside the alphabet and on malformed
 * input: sequence data before any '>' header, or a record with no
 * sequence data at all (almost always a truncated file).
 */
std::vector<FastaRecord> readFasta(std::istream &in,
                                   const Alphabet &alphabet);

/** Parse a FASTA file by path (fatal if unreadable). */
std::vector<FastaRecord> readFastaFile(const std::string &path,
                                       const Alphabet &alphabet);

/**
 * Write records, wrapping sequence lines at `width` letters.
 * fatal() on an empty-sequence record: the reader rejects such
 * files, so the writer refuses to produce them.
 */
void writeFasta(std::ostream &out,
                const std::vector<FastaRecord> &records,
                size_t width = 60);

} // namespace racelogic::bio

#endif // RACELOGIC_BIO_FASTA_H
