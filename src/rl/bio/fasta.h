/**
 * @file
 * Minimal FASTA input/output.
 *
 * Screening workloads in the wild arrive as FASTA files; this module
 * reads and writes the subset of the format the examples need:
 * '>' description lines followed by sequence lines, ';' comments
 * ignored, whitespace tolerated, case folded to upper.
 *
 * There is exactly ONE parser.  tryReadFasta() is the fallible core
 * every consumer shares -- the CLI file readers wrap it in
 * valueOrFatal(), and serve/wire.cc feeds it request bytes with
 * FastaLimits set to the protocol's admission caps, so the daemon
 * and the command line cannot drift apart on what a record is.
 */

#ifndef RACELOGIC_BIO_FASTA_H
#define RACELOGIC_BIO_FASTA_H

#include <iosfwd>
#include <string>
#include <vector>

#include "rl/bio/sequence.h"
#include "rl/util/status.h"

namespace racelogic::bio {

/** One FASTA record. */
struct FastaRecord {
    std::string description; ///< text after '>'
    Sequence sequence;
};

/**
 * Admission caps for untrusted FASTA input.  0 means unlimited (the
 * CLI default); a server passes its wire caps so an oversized record
 * becomes a typed Oversized error instead of an unbounded allocation.
 */
struct FastaLimits {
    size_t maxSequenceLength = 0; ///< bases per record (0 = unlimited)
    size_t maxRecords = 0;        ///< records per input (0 = unlimited)
};

/**
 * Parse FASTA records from a stream over the given alphabet.
 *
 * Tolerant of real-world inputs: CRLF line endings, lowercase bases
 * (folded to upper), blank lines, and whitespace inside sequence
 * lines.  Typed errors: ParseError on malformed structure (sequence
 * data before any '>' header, a record with no sequence data),
 * InvalidArgument on letters outside the alphabet, Oversized when a
 * FastaLimits cap trips.
 */
Expected<std::vector<FastaRecord>>
tryReadFasta(std::istream &in, const Alphabet &alphabet,
             const FastaLimits &limits = {});

/** Convenience overload parsing an in-memory string (wire requests). */
Expected<std::vector<FastaRecord>>
tryReadFasta(const std::string &text, const Alphabet &alphabet,
             const FastaLimits &limits = {});

/** Parse a FASTA file by path; NotFound if unreadable. */
Expected<std::vector<FastaRecord>>
tryReadFastaFile(const std::string &path, const Alphabet &alphabet,
                 const FastaLimits &limits = {});

/** @name Fatal wrappers for CLI tools and examples
 * valueOrFatal() over the try* parsers: same messages, exit(1).
 * @{ */
std::vector<FastaRecord> readFasta(std::istream &in,
                                   const Alphabet &alphabet);
std::vector<FastaRecord> readFastaFile(const std::string &path,
                                       const Alphabet &alphabet);
/** @} */

/**
 * Write records, wrapping sequence lines at `width` letters.
 * InvalidArgument on an empty-sequence record: the reader rejects
 * such files, so the writer refuses to produce them.
 */
Status tryWriteFasta(std::ostream &out,
                     const std::vector<FastaRecord> &records,
                     size_t width = 60);

/** Fatal wrapper over tryWriteFasta() for CLI tools. */
void writeFasta(std::ostream &out,
                const std::vector<FastaRecord> &records,
                size_t width = 60);

} // namespace racelogic::bio

#endif // RACELOGIC_BIO_FASTA_H
