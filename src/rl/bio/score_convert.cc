#include "rl/bio/score_convert.h"

#include <algorithm>
#include <cmath>

#include "rl/util/logging.h"

namespace racelogic::bio {

Score
ShortestPathForm::recoverScore(Score converted_cost, size_t n,
                               size_t m) const
{
    Score numerator = bias * static_cast<Score>(n + m) - converted_cost;
    rl_assert(numerator % lambda == 0,
              "converted cost is not on the affine lattice; "
              "was it produced by this conversion?");
    return numerator / lambda;
}

Score
ShortestPathForm::convertScore(Score original_score, size_t n,
                               size_t m) const
{
    return bias * static_cast<Score>(n + m) - lambda * original_score;
}

ShortestPathForm
toShortestPathForm(const ScoreMatrix &similarity, Score lambda)
{
    rl_assert(similarity.kind() == ScoreKind::Similarity,
              "toShortestPathForm expects a similarity matrix");
    rl_assert(lambda >= 1, "lambda must be a positive integer scale");

    const Alphabet &alphabet = similarity.alphabet();

    // Scaled scores: S' = lambda * S.
    Score max_pair = INT64_MIN;
    Score max_gap = INT64_MIN;
    for (Symbol a = 0; a < alphabet.size(); ++a) {
        max_gap = std::max(max_gap, lambda * similarity.gap(a));
        for (Symbol b = 0; b < alphabet.size(); ++b)
            max_pair = std::max(max_pair,
                                lambda * similarity.pair(a, b));
    }

    // Smallest bias making every weight >= 1:
    //   pair:  2b - S'(a,b) >= 1  =>  b >= (1 + max S') / 2
    //   indel: b  - g'(s)   >= 1  =>  b >= 1 + max g'
    Score bias = std::max<Score>(
        {(max_pair + 2) / 2, // ceil((1 + max_pair) / 2)
         1 + max_gap, 1});

    ScoreMatrix costs(alphabet, ScoreKind::Cost);
    for (Symbol a = 0; a < alphabet.size(); ++a) {
        costs.setGap(a, bias - lambda * similarity.gap(a));
        for (Symbol b = 0; b < alphabet.size(); ++b)
            costs.setPair(a, b, 2 * bias - lambda * similarity.pair(a, b));
    }

    ShortestPathForm form(std::move(costs), bias, lambda);
    rl_assert(form.costs.minFinite() >= 1,
              "conversion failed to produce positive weights");
    return form;
}

ScoreMatrix
fromLogOdds(const Alphabet &alphabet, const util::Grid<double> &joint,
            const std::vector<double> &background, double lambda,
            Score gap_score)
{
    rl_assert(joint.rows() == alphabet.size() &&
              joint.cols() == alphabet.size(),
              "joint probability table must be Nss x Nss");
    rl_assert(background.size() == alphabet.size(),
              "need one background frequency per symbol");
    rl_assert(lambda > 0, "lambda must be positive");

    ScoreMatrix m(alphabet, ScoreKind::Similarity);
    for (Symbol a = 0; a < alphabet.size(); ++a) {
        rl_assert(background[a] > 0, "background frequency must be > 0");
        for (Symbol b = 0; b < alphabet.size(); ++b) {
            rl_assert(joint.at(a, b) > 0,
                      "joint probability must be > 0");
            double odds = joint.at(a, b) /
                          (background[a] * background[b]);
            double score = std::log(odds) / lambda;
            m.setPair(a, b, static_cast<Score>(std::llround(score)));
        }
    }
    m.setAllGaps(gap_score);
    return m;
}

} // namespace racelogic::bio
