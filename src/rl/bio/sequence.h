/**
 * @file
 * Sequences and the stochastic workload generator.
 *
 * The paper's evaluation regimes are defined by match structure:
 * best case (identical strings), worst case (complete mismatch), and
 * the "typical" regime of Section 6 where most database strings are
 * dissimilar and a few share ancestry with the query.  MutationModel
 * reproduces all three by deriving one string from another through
 * controlled substitution/insertion/deletion rates.
 */

#ifndef RACELOGIC_BIO_SEQUENCE_H
#define RACELOGIC_BIO_SEQUENCE_H

#include <string>
#include <utility>
#include <vector>

#include "rl/bio/alphabet.h"
#include "rl/util/random.h"

namespace racelogic::bio {

/** An encoded symbol string over a fixed alphabet. */
class Sequence
{
  public:
    /** Empty sequence over `alphabet`. */
    explicit Sequence(Alphabet alphabet);

    /** Encode `text` over `alphabet`; fatal() on foreign letters. */
    Sequence(Alphabet alphabet, const std::string &text);

    /** Adopt pre-encoded symbols. */
    Sequence(Alphabet alphabet, std::vector<Symbol> symbols);

    /** Uniform random sequence of the given length. */
    static Sequence random(util::Rng &rng, const Alphabet &alphabet,
                           size_t length);

    /**
     * Encode a text chunk from a real-world file: ASCII whitespace
     * skipped, lowercase folded to upper, fatal() (prefixed with
     * `where`, e.g. "FASTA line 12") on letters outside the
     * alphabet.  The one folding rule shared by every sequence
     * parser (FASTA, GFA), so format front ends cannot drift apart.
     */
    static std::vector<Symbol> encodeFolded(const Alphabet &alphabet,
                                            const std::string &text,
                                            const std::string &where);

    /**
     * Fallible twin of encodeFolded() for untrusted input: same
     * whitespace-skip and case-fold rules, but a letter outside the
     * alphabet returns InvalidArgument instead of exiting.  The
     * fatal variant is a valueOrFatal() wrapper over this one.
     */
    static Expected<std::vector<Symbol>>
    tryEncodeFolded(const Alphabet &alphabet, const std::string &text,
                    const std::string &where);

    /**
     * Strict fallible encoding: every character must match an
     * alphabet letter exactly -- no folding, no whitespace skipping.
     * The rule wire requests obey (a request is not a file; stray
     * bytes are a protocol error, not formatting).
     */
    static Expected<Sequence> tryEncode(const Alphabet &alphabet,
                                        const std::string &text);

    size_t size() const { return symbols_.size(); }
    bool empty() const { return symbols_.empty(); }

    Symbol operator[](size_t i) const;

    const std::vector<Symbol> &symbols() const { return symbols_; }
    const Alphabet &alphabet() const { return alphabet_; }

    /** Decode back to letters. */
    std::string str() const;

    /** Append one symbol. */
    void push_back(Symbol s);

    /** Subsequence [offset, offset+count). */
    Sequence slice(size_t offset, size_t count) const;

    bool
    operator==(const Sequence &other) const
    {
        return alphabet_ == other.alphabet_ && symbols_ == other.symbols_;
    }

  private:
    Alphabet alphabet_;
    std::vector<Symbol> symbols_;
};

/**
 * Per-position mutation rates used to derive a noisy copy of a
 * sequence (all probabilities independent per source position).
 */
struct MutationModel {
    double substitution = 0.0; ///< replace the symbol with a random other
    double insertion = 0.0;    ///< insert one random symbol before it
    double deletion = 0.0;     ///< drop the symbol

    /** Convenience: equal rates summing to `total`. */
    static MutationModel
    uniform(double total)
    {
        return MutationModel{total / 3, total / 3, total / 3};
    }
};

/** Apply a MutationModel; the result length may differ from input. */
Sequence mutate(util::Rng &rng, const Sequence &original,
                const MutationModel &model);

/**
 * Worst-case partner for a sequence: same length, drawn only from
 * alphabet symbols that never occur in `original`, so the pair shares
 * no characters at all -- the paper's "complete mismatch" corner
 * (every alignment is pure indels).  fatal() if `original` already
 * uses the whole alphabet.
 */
Sequence completeMismatch(util::Rng &rng, const Sequence &original);

/**
 * A guaranteed worst-case pair of length-n strings: the first is
 * drawn from the lower half of the alphabet, the second from the
 * upper half, so no symbol is shared and the optimal alignment under
 * any match-rewarding matrix is all indels.
 */
std::pair<Sequence, Sequence> worstCasePair(util::Rng &rng,
                                            const Alphabet &alphabet,
                                            size_t length);

/**
 * A generated screening workload: one query plus `database_size`
 * candidates, of which a `related_fraction` share are mutated copies
 * of the query (genuine alignments) and the rest are unrelated random
 * strings (chance similarity only) -- the Section 6 scenario.
 */
struct ScreeningWorkload {
    Sequence query;
    std::vector<Sequence> database;
    std::vector<bool> related; ///< ground truth per database entry
};

ScreeningWorkload makeScreeningWorkload(util::Rng &rng,
                                        const Alphabet &alphabet,
                                        size_t query_length,
                                        size_t database_size,
                                        double related_fraction,
                                        const MutationModel &noise);

} // namespace racelogic::bio

#endif // RACELOGIC_BIO_SEQUENCE_H
