/**
 * @file
 * Affine-gap alignment (Gotoh) and its Race Logic mapping.
 *
 * The paper's cost model charges every indel equally; real
 * bioinformatics pipelines charge gap *opening* more than gap
 * *extension*.  The classic Gotoh formulation tracks three states
 * per cell -- M (last step aligned a pair), Ix (gap in b), Iy (gap
 * in a).  That is still a DAG: three nodes per grid cell with
 * open/extend-weighted edges, so Race Logic accelerates it with the
 * same OR-type construction as the linear-gap case.  This module
 * provides the reference Gotoh DP and the 3-layer edit-graph
 * builder; rl/core racing machinery runs it unchanged -- a working
 * instance of the paper's "not limited to" claim.
 */

#ifndef RACELOGIC_BIO_AFFINE_H
#define RACELOGIC_BIO_AFFINE_H

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/graph/dag.h"

namespace racelogic::bio {

/** Affine gap weights (cost semantics, race-ready when >= 1). */
struct AffineGapCosts {
    Score open = 2;   ///< first residue of a gap
    Score extend = 1; ///< each further residue
};

/**
 * Reference Gotoh DP: minimal affine-gap global alignment cost.
 *
 * @param a, b   Sequences.
 * @param costs  Cost-kind substitution matrix (pair weights used;
 *               its gap column is ignored -- gaps come from `gaps`).
 * @param gaps   Affine gap parameters.
 */
Score affineGlobalScore(const Sequence &a, const Sequence &b,
                        const ScoreMatrix &costs,
                        const AffineGapCosts &gaps);

/** The 3-layer affine edit graph, ready to race. */
struct AffineEditGraph {
    graph::Dag dag;
    graph::NodeId source = graph::kNoNode; ///< M(0,0)
    graph::NodeId sink = graph::kNoNode;   ///< collector over M/Ix/Iy(n,m)
    size_t rows = 0;
    size_t cols = 0;

    /** Layers of the lattice. */
    enum Layer { M = 0, Ix = 1, Iy = 2 };

    /** Node id of (layer, i, j). */
    graph::NodeId
    node(Layer layer, size_t i, size_t j) const
    {
        return static_cast<graph::NodeId>(
            (static_cast<size_t>(layer) * (rows + 1) + i) * (cols + 1) +
            j);
    }
};

/**
 * Build the affine edit graph of (a, b).
 *
 * Requirements for race-readiness (checked): all finite pair weights
 * >= 1, open >= 1, extend >= 1.  Forbidden pairs (kScoreInfinity)
 * become missing M-edges.  Zero-weight collector edges (plain wires
 * in hardware) merge the three terminal states into the single sink,
 * so the raced sink arrival equals affineGlobalScore() exactly.
 */
AffineEditGraph makeAffineEditGraph(const Sequence &a,
                                    const Sequence &b,
                                    const ScoreMatrix &costs,
                                    const AffineGapCosts &gaps);

} // namespace racelogic::bio

#endif // RACELOGIC_BIO_AFFINE_H
