#include "rl/bio/fasta.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::bio {

Expected<std::vector<FastaRecord>>
tryReadFasta(std::istream &in, const Alphabet &alphabet,
             const FastaLimits &limits)
{
    std::vector<FastaRecord> records;
    std::string line;
    bool in_record = false;
    std::string description;
    std::vector<Symbol> symbols;

    Status verdict; // first structural error, reported after the scan
    auto flush = [&]() -> bool {
        if (!in_record)
            return true;
        if (symbols.empty()) {
            verdict = Status::error(
                ErrorCode::ParseError, "FASTA record '", description,
                "' has no sequence data; empty records are almost "
                "always a truncated or corrupted file");
            return false;
        }
        if (limits.maxRecords && records.size() >= limits.maxRecords) {
            verdict = Status::error(ErrorCode::Oversized, "FASTA input "
                                    "exceeds the cap of ",
                                    limits.maxRecords, " records");
            return false;
        }
        records.push_back(
            FastaRecord{description, Sequence(alphabet, symbols)});
        symbols.clear();
        return true;
    };

    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string trimmed = util::trim(line);
        if (trimmed.empty() || trimmed[0] == ';')
            continue;
        if (trimmed[0] == '>') {
            if (!flush())
                return verdict;
            in_record = true;
            description = util::trim(trimmed.substr(1));
            continue;
        }
        if (!in_record)
            return Status::error(ErrorCode::ParseError, "FASTA line ",
                                 line_no,
                                 ": sequence data before any '>' header");
        auto chunk = Sequence::tryEncodeFolded(
            alphabet, trimmed,
            "FASTA line " + std::to_string(line_no));
        if (!chunk.ok())
            return chunk.status();
        if (limits.maxSequenceLength &&
            symbols.size() + chunk->size() > limits.maxSequenceLength)
            return Status::error(ErrorCode::Oversized, "FASTA record '",
                                 description, "' exceeds the cap of ",
                                 limits.maxSequenceLength, " bases");
        symbols.insert(symbols.end(), chunk->begin(), chunk->end());
    }
    if (!flush())
        return verdict;
    return records;
}

Expected<std::vector<FastaRecord>>
tryReadFasta(const std::string &text, const Alphabet &alphabet,
             const FastaLimits &limits)
{
    std::istringstream in(text);
    return tryReadFasta(in, alphabet, limits);
}

Expected<std::vector<FastaRecord>>
tryReadFastaFile(const std::string &path, const Alphabet &alphabet,
                 const FastaLimits &limits)
{
    std::ifstream in(path);
    if (!in)
        return Status::error(ErrorCode::NotFound,
                             "cannot open FASTA file: ", path);
    return tryReadFasta(in, alphabet, limits);
}

std::vector<FastaRecord>
readFasta(std::istream &in, const Alphabet &alphabet)
{
    return tryReadFasta(in, alphabet).valueOrFatal();
}

std::vector<FastaRecord>
readFastaFile(const std::string &path, const Alphabet &alphabet)
{
    return tryReadFastaFile(path, alphabet).valueOrFatal();
}

Status
tryWriteFasta(std::ostream &out, const std::vector<FastaRecord> &records,
              size_t width)
{
    rl_assert(width >= 1, "line width must be >= 1");
    for (const FastaRecord &record : records) {
        if (record.sequence.empty())
            return Status::error(ErrorCode::InvalidArgument,
                                 "refusing to write empty FASTA record '",
                                 record.description,
                                 "'; the reader rejects such files");
        out << '>' << record.description << '\n';
        std::string text = record.sequence.str();
        for (size_t pos = 0; pos < text.size(); pos += width)
            out << text.substr(pos, width) << '\n';
    }
    return Status();
}

void
writeFasta(std::ostream &out, const std::vector<FastaRecord> &records,
           size_t width)
{
    tryWriteFasta(out, records, width).orFatal();
}

} // namespace racelogic::bio
