#include "rl/bio/fasta.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::bio {

std::vector<FastaRecord>
readFasta(std::istream &in, const Alphabet &alphabet)
{
    std::vector<FastaRecord> records;
    std::string line;
    bool in_record = false;
    std::string description;
    std::vector<Symbol> symbols;

    auto flush = [&] {
        if (in_record) {
            if (symbols.empty())
                rl_fatal("FASTA record '", description,
                         "' has no sequence data; empty records are "
                         "almost always a truncated or corrupted "
                         "file");
            records.push_back(FastaRecord{
                description, Sequence(alphabet, symbols)});
            symbols.clear();
        }
    };

    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string trimmed = util::trim(line);
        if (trimmed.empty() || trimmed[0] == ';')
            continue;
        if (trimmed[0] == '>') {
            flush();
            in_record = true;
            description = util::trim(trimmed.substr(1));
            continue;
        }
        if (!in_record)
            rl_fatal("FASTA line ", line_no,
                     ": sequence data before any '>' header");
        std::vector<Symbol> chunk = Sequence::encodeFolded(
            alphabet, trimmed,
            "FASTA line " + std::to_string(line_no));
        symbols.insert(symbols.end(), chunk.begin(), chunk.end());
    }
    flush();
    return records;
}

std::vector<FastaRecord>
readFastaFile(const std::string &path, const Alphabet &alphabet)
{
    std::ifstream in(path);
    if (!in)
        rl_fatal("cannot open FASTA file: ", path);
    return readFasta(in, alphabet);
}

void
writeFasta(std::ostream &out, const std::vector<FastaRecord> &records,
           size_t width)
{
    rl_assert(width >= 1, "line width must be >= 1");
    for (const FastaRecord &record : records) {
        if (record.sequence.empty())
            rl_fatal("refusing to write empty FASTA record '",
                     record.description,
                     "'; the reader rejects such files");
        out << '>' << record.description << '\n';
        std::string text = record.sequence.str();
        for (size_t pos = 0; pos < text.size(); pos += width)
            out << text.substr(pos, width) << '\n';
    }
}

} // namespace racelogic::bio
