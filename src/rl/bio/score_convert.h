/**
 * @file
 * Score-matrix conversions for the generalized Race Logic
 * architecture (paper Section 5).
 *
 * OR-type Race Logic needs a *cost* matrix with all weights in
 * {1..N_DR}: highest similarity must map to smallest delay, and zero
 * or negative delays are unimplementable.  Modern matrices
 * (BLOSUM62, PAM250) are similarity matrices with positive and
 * negative entries, so the paper prescribes a two-step conversion:
 *
 *  1. invert the sign convention (longest path -> shortest path);
 *  2. add a fixed bias b to indel weights and 2b to pair weights
 *     ("the latter are one rank ahead in the edit graph": a diagonal
 *     edge advances i+j by 2, an indel edge by 1).
 *
 * Because every full alignment path satisfies 2*diagonals + indels =
 * N + M, the conversion is affine on path scores: converted_cost =
 * b*(N+M) - lambda*original_score.  The optimal alignment is
 * therefore preserved exactly and the original score is recoverable
 * from the race latency -- both properties are unit-tested.
 */

#ifndef RACELOGIC_BIO_SCORE_CONVERT_H
#define RACELOGIC_BIO_SCORE_CONVERT_H

#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/util/grid.h"

namespace racelogic::bio {

/** A similarity matrix rewritten as race-ready costs. */
struct ShortestPathForm {
    /** Cost-kind matrix, every entry finite and >= 1. */
    ScoreMatrix costs;

    /** Bias b added once per edit-graph rank. */
    Score bias = 0;

    /** Scale factor applied to the original scores (Eq. 8's lambda). */
    Score lambda = 1;

    /**
     * Recover the original optimal similarity score from the race
     * outcome for a full global alignment of lengths n and m:
     * original = (bias*(n+m) - converted_cost) / lambda.
     */
    Score recoverScore(Score converted_cost, size_t n, size_t m) const;

    /** Forward map: converted cost a path with this original score has. */
    Score convertScore(Score original_score, size_t n, size_t m) const;

    ShortestPathForm(ScoreMatrix cost_matrix, Score bias_value,
                     Score lambda_value)
        : costs(std::move(cost_matrix)), bias(bias_value),
          lambda(lambda_value)
    {}
};

/**
 * Convert a Similarity matrix into ShortestPathForm.
 *
 * @param similarity  Input matrix (ScoreKind::Similarity).
 * @param lambda      Optional positive integer scale applied to all
 *                    scores before negation (use > 1 to stretch the
 *                    dynamic range; the paper's "changing the scaling
 *                    factor").
 *
 * The bias is chosen minimally so every resulting weight is >= 1.
 */
ShortestPathForm toShortestPathForm(const ScoreMatrix &similarity,
                                    Score lambda = 1);

/**
 * Build a similarity matrix from log-odds statistics (paper Eq. 8):
 * S(a,b) = round((1/lambda) * ln(P_ab / (f_a * f_b))).
 *
 * @param alphabet   Symbol set.
 * @param joint      Joint alignment probabilities P_ab (symmetric,
 *                   positive, need not be normalized).
 * @param background Background frequencies f_a (positive).
 * @param lambda     Positive scale that makes scores integer-sized.
 * @param gap_score  Similarity score assigned to indels.
 */
ScoreMatrix fromLogOdds(const Alphabet &alphabet,
                        const util::Grid<double> &joint,
                        const std::vector<double> &background,
                        double lambda, Score gap_score);

} // namespace racelogic::bio

#endif // RACELOGIC_BIO_SCORE_CONVERT_H
