#include "rl/bio/affine.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::bio {

namespace {

void
checkAffineInputs(const Sequence &a, const Sequence &b,
                  const ScoreMatrix &costs, const AffineGapCosts &gaps)
{
    rl_assert(a.alphabet() == costs.alphabet() &&
                  b.alphabet() == costs.alphabet(),
              "sequences and matrix use different alphabets");
    rl_assert(costs.isCost(), "affine alignment minimizes costs");
    rl_assert(gaps.open >= 1 && gaps.extend >= 1,
              "race-ready affine gaps need open/extend >= 1");
    rl_assert(gaps.open >= gaps.extend,
              "gap opening should cost at least as much as extension");
}

inline Score
addSat(Score x, Score delta)
{
    return x >= kScoreInfinity ? kScoreInfinity : x + delta;
}

} // namespace

Score
affineGlobalScore(const Sequence &a, const Sequence &b,
                  const ScoreMatrix &costs, const AffineGapCosts &gaps)
{
    checkAffineInputs(a, b, costs, gaps);
    const size_t n = a.size();
    const size_t m = b.size();

    // Full 3-state automaton (M / Ix = gap in b / Iy = gap in a),
    // with state switches between the two gap states charged a fresh
    // opening -- required for forbidden-pair matrices where opposite
    // gaps must be adjacent.
    std::vector<Score> pm(m + 1, kScoreInfinity);
    std::vector<Score> px(m + 1, kScoreInfinity);
    std::vector<Score> py(m + 1, kScoreInfinity);
    pm[0] = 0;
    for (size_t j = 1; j <= m; ++j)
        py[j] = gaps.open + Score(j - 1) * gaps.extend;

    std::vector<Score> cm(m + 1), cx(m + 1), cy(m + 1);
    for (size_t i = 1; i <= n; ++i) {
        cm[0] = kScoreInfinity;
        cy[0] = kScoreInfinity;
        cx[0] = gaps.open + Score(i - 1) * gaps.extend;
        for (size_t j = 1; j <= m; ++j) {
            Score w = costs.pair(a[i - 1], b[j - 1]);
            Score diag_best =
                std::min({pm[j - 1], px[j - 1], py[j - 1]});
            cm[j] = w == kScoreInfinity ? kScoreInfinity
                                        : addSat(diag_best, w);
            cx[j] = std::min({addSat(pm[j], gaps.open),
                              addSat(px[j], gaps.extend),
                              addSat(py[j], gaps.open)});
            cy[j] = std::min({addSat(cm[j - 1], gaps.open),
                              addSat(cy[j - 1], gaps.extend),
                              addSat(cx[j - 1], gaps.open)});
        }
        std::swap(pm, cm);
        std::swap(px, cx);
        std::swap(py, cy);
    }
    Score best = std::min({pm[m], px[m], py[m]});
    rl_assert(best < kScoreInfinity,
              "affine alignment infeasible (should not happen with "
              "finite gaps)");
    return best;
}

AffineEditGraph
makeAffineEditGraph(const Sequence &a, const Sequence &b,
                    const ScoreMatrix &costs, const AffineGapCosts &gaps)
{
    checkAffineInputs(a, b, costs, gaps);
    for (Symbol s = 0; s < costs.alphabet().size(); ++s)
        for (Symbol t = 0; t < costs.alphabet().size(); ++t)
            rl_assert(costs.pair(s, t) == kScoreInfinity ||
                          costs.pair(s, t) >= 1,
                      "race-ready pair weights must be >= 1");

    AffineEditGraph g;
    g.rows = a.size();
    g.cols = b.size();
    const size_t layer_nodes = (g.rows + 1) * (g.cols + 1);
    g.dag.addNodes(3 * layer_nodes);
    g.source = g.node(AffineEditGraph::M, 0, 0);

    using L = AffineEditGraph::Layer;
    for (size_t i = 0; i <= g.rows; ++i) {
        for (size_t j = 0; j <= g.cols; ++j) {
            // M(i, j): aligned pair entering from any layer.
            if (i >= 1 && j >= 1) {
                Score w = costs.pair(a[i - 1], b[j - 1]);
                if (w != kScoreInfinity) {
                    for (L from : {L::M, L::Ix, L::Iy})
                        g.dag.addEdge(g.node(from, i - 1, j - 1),
                                      g.node(L::M, i, j), w);
                }
            }
            // Ix(i, j): consume a[i-1] (gap in b).
            if (i >= 1) {
                g.dag.addEdge(g.node(L::M, i - 1, j),
                              g.node(L::Ix, i, j), gaps.open);
                g.dag.addEdge(g.node(L::Ix, i - 1, j),
                              g.node(L::Ix, i, j), gaps.extend);
                g.dag.addEdge(g.node(L::Iy, i - 1, j),
                              g.node(L::Ix, i, j), gaps.open);
            }
            // Iy(i, j): consume b[j-1] (gap in a).
            if (j >= 1) {
                g.dag.addEdge(g.node(L::M, i, j - 1),
                              g.node(L::Iy, i, j), gaps.open);
                g.dag.addEdge(g.node(L::Iy, i, j - 1),
                              g.node(L::Iy, i, j), gaps.extend);
                g.dag.addEdge(g.node(L::Ix, i, j - 1),
                              g.node(L::Iy, i, j), gaps.open);
            }
        }
    }

    // Zero-weight collector wires into the single output node.
    g.sink = g.dag.addNode("affineSink");
    for (L layer : {L::M, L::Ix, L::Iy})
        g.dag.addEdge(g.node(layer, g.rows, g.cols), g.sink, 0);
    return g;
}

} // namespace racelogic::bio
