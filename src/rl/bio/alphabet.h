/**
 * @file
 * Symbol alphabets for sequence comparison.
 *
 * The paper evaluates two alphabet sizes: 4 (DNA nucleobases A, G, C,
 * T) and 20 (amino acids for protein comparison with BLOSUM-family
 * matrices).  The alphabet determines both the symbol encoding width
 * (log2(Nss) bits, Fig. 8) and the XNOR-match circuitry of the unit
 * cell (Eq. 2).
 */

#ifndef RACELOGIC_BIO_ALPHABET_H
#define RACELOGIC_BIO_ALPHABET_H

#include <cstdint>
#include <string>
#include <vector>

#include "rl/util/status.h"

namespace racelogic::bio {

/** Encoded symbol: dense index into an Alphabet. */
using Symbol = uint8_t;

/**
 * An ordered set of symbol letters with dense encoding.
 *
 * Value type; cheap to copy (a small table).  Two alphabets compare
 * equal iff they contain the same letters in the same order.
 */
class Alphabet
{
  public:
    /** Construct from the ordered letters, e.g. "ACGT". */
    explicit Alphabet(std::string letters, std::string name = "");

    /**
     * Fallible construction for untrusted letters (wire requests,
     * config files): non-empty, at most 255 letters, every letter a
     * printable non-space ASCII character, no duplicates.  The
     * validation the fatal constructor and serve/wire.cc both lean
     * on, so the protocol cannot drift from the library.
     */
    static Expected<Alphabet> tryMake(std::string letters,
                                      std::string name = "");

    /** DNA nucleobases: A, C, G, T (Nss = 4). */
    static const Alphabet &dna();

    /** 20 amino acids in BLOSUM/PAM order: ARNDCQEGHILKMFPSTWYV. */
    static const Alphabet &protein();

    /** Binary alphabet {0, 1}; useful for adversarial tests. */
    static const Alphabet &binary();

    /** Number of symbols Nss. */
    size_t size() const { return letters_.size(); }

    /** Bits needed to encode one symbol: ceil(log2(Nss)). */
    unsigned bitsPerSymbol() const;

    /** Letter for an encoded symbol. */
    char letter(Symbol symbol) const;

    /** Encode a letter; fatal() if the letter is not in the alphabet. */
    Symbol encode(char letter) const;

    /** True iff the letter belongs to the alphabet. */
    bool contains(char letter) const;

    /** Encode a whole string. */
    std::vector<Symbol> encodeString(const std::string &text) const;

    /** Decode a symbol vector back to text. */
    std::string decodeString(const std::vector<Symbol> &symbols) const;

    const std::string &name() const { return name_; }
    const std::string &letters() const { return letters_; }

    bool
    operator==(const Alphabet &other) const
    {
        return letters_ == other.letters_;
    }

  private:
    std::string letters_;
    std::string name_;
    // Dense ASCII lookup; -1 marks letters outside the alphabet.
    std::vector<int16_t> lookup;
};

} // namespace racelogic::bio

#endif // RACELOGIC_BIO_ALPHABET_H
