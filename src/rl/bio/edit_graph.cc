#include "rl/bio/edit_graph.h"

#include "rl/util/logging.h"

namespace racelogic::bio {

EditGraph
makeEditGraph(const Sequence &a, const Sequence &b,
              const ScoreMatrix &matrix)
{
    rl_assert(a.alphabet() == matrix.alphabet() &&
              b.alphabet() == matrix.alphabet(),
              "sequences and matrix use different alphabets");

    EditGraph eg;
    eg.rows = a.size();
    eg.cols = b.size();
    eg.dag.addNodes((eg.rows + 1) * (eg.cols + 1));
    eg.source = eg.node(0, 0);
    eg.sink = eg.node(eg.rows, eg.cols);

    for (size_t i = 0; i <= eg.rows; ++i) {
        for (size_t j = 0; j <= eg.cols; ++j) {
            if (i < eg.rows) // vertical: delete a[i]
                eg.dag.addEdge(eg.node(i, j), eg.node(i + 1, j),
                               matrix.gap(a[i]));
            if (j < eg.cols) // horizontal: insert b[j]
                eg.dag.addEdge(eg.node(i, j), eg.node(i, j + 1),
                               matrix.gap(b[j]));
            if (i < eg.rows && j < eg.cols) {
                Score w = matrix.pair(a[i], b[j]);
                if (w != kScoreInfinity) // forbidden pair = missing edge
                    eg.dag.addEdge(eg.node(i, j), eg.node(i + 1, j + 1),
                                   w);
            }
        }
    }
    return eg;
}

} // namespace racelogic::bio
