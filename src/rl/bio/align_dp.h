/**
 * @file
 * Reference dynamic-programming aligners.
 *
 * These are the software implementations of the recurrences the
 * hardware accelerates (paper Eq. 1a/1b): Needleman-Wunsch global
 * alignment under either score semantics, Smith-Waterman local
 * alignment, Levenshtein distance, and LCS.  They serve three roles:
 *
 *  1. correctness oracles for every hardware model in the library
 *     (race grid, generalized array, systolic array);
 *  2. the source of the full DP tables the paper prints (Fig. 4c) and
 *     the wavefront analysis (Fig. 6);
 *  3. a software baseline for the examples.
 */

#ifndef RACELOGIC_BIO_ALIGN_DP_H
#define RACELOGIC_BIO_ALIGN_DP_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/util/grid.h"

namespace racelogic::bio {

/** A global alignment and its statistics. */
struct Alignment {
    /** Optimal score (cost or similarity, per the matrix kind). */
    Score score = 0;

    /**
     * Edit-graph node path (i, j) from (0,0) to (|a|, |b|); i indexes
     * sequence `a` (rows), j indexes sequence `b` (columns).
     */
    std::vector<std::pair<uint32_t, uint32_t>> path;

    /** Aligned letter rows with '-' in gap positions (Fig. 1a/1c). */
    std::string alignedA;
    std::string alignedB;

    size_t matches = 0;
    size_t mismatches = 0;
    size_t indels = 0;
};

/**
 * Full (|a|+1) x (|b|+1) DP score table under `matrix`.
 *
 * Cost matrices minimize, similarity matrices maximize.  Forbidden
 * transitions (kScoreInfinity cost) are skipped; unreachable cells
 * hold kScoreInfinity.
 */
util::Grid<Score> dpTable(const Sequence &a, const Sequence &b,
                          const ScoreMatrix &matrix);

/** Optimal global alignment score only (O(min(n,m)) memory). */
Score globalScore(const Sequence &a, const Sequence &b,
                  const ScoreMatrix &matrix);

/** Optimal global alignment with deterministic traceback. */
Alignment globalAlign(const Sequence &a, const Sequence &b,
                      const ScoreMatrix &matrix);

/**
 * Hirschberg divide-and-conquer global alignment: the same optimal
 * score as globalAlign() in O(min(n,m)) memory instead of O(n*m),
 * for aligning sequences too long for a full table.  The returned
 * alignment is optimal but may differ from globalAlign()'s
 * tie-breaking.
 */
Alignment hirschbergAlign(const Sequence &a, const Sequence &b,
                          const ScoreMatrix &matrix);

/** A local alignment (Smith-Waterman) result. */
struct LocalAlignment {
    /** Best local similarity (>= 0; 0 means "align nothing"). */
    Score score = 0;
    /** Inclusive-exclusive coordinates of the aligned region in a/b. */
    size_t beginA = 0, endA = 0;
    size_t beginB = 0, endB = 0;
    /** The aligned region rendered like Alignment. */
    std::string alignedA;
    std::string alignedB;
};

/**
 * Smith-Waterman local alignment; requires a Similarity matrix
 * (negative entries are what make locality meaningful).
 */
LocalAlignment localAlign(const Sequence &a, const Sequence &b,
                          const ScoreMatrix &similarity);

/**
 * Banded global alignment score: only cells with |i - j| <= band are
 * evaluated.  Exact whenever some optimal path stays inside the band
 * (always true for band >= max(|a|,|b|)); a common screening
 * shortcut when strings are known to be nearly aligned.  Returns
 * kScoreInfinity (cost) / -kScoreInfinity (similarity) if the band
 * cannot connect the corners (band < ||a| - |b||).
 */
Score bandedGlobalScore(const Sequence &a, const Sequence &b,
                        const ScoreMatrix &matrix, size_t band);

/** Unit-cost Levenshtein distance (two-row DP). */
Score levenshtein(const Sequence &a, const Sequence &b);

/** Length of the longest common subsequence. */
size_t lcsLength(const Sequence &a, const Sequence &b);

/**
 * Verify that an Alignment is internally consistent with the inputs
 * and matrix: the path is a monotone edit-graph walk whose edge
 * weights sum to `score`.  Used by tests and by examples as a sanity
 * gate; returns a diagnostic string, empty when valid.
 */
std::string checkAlignment(const Sequence &a, const Sequence &b,
                           const ScoreMatrix &matrix,
                           const Alignment &alignment);

} // namespace racelogic::bio

#endif // RACELOGIC_BIO_ALIGN_DP_H
