#include "rl/bio/alphabet.h"

#include "rl/util/bitops.h"
#include "rl/util/logging.h"

namespace racelogic::bio {

Alphabet::Alphabet(std::string letters, std::string name)
    : letters_(std::move(letters)), name_(std::move(name)),
      lookup(256, -1)
{
    rl_assert(!letters_.empty(), "empty alphabet");
    rl_assert(letters_.size() <= 255, "alphabet too large for Symbol");
    for (size_t i = 0; i < letters_.size(); ++i) {
        unsigned char ch = static_cast<unsigned char>(letters_[i]);
        if (lookup[ch] != -1)
            rl_fatal("duplicate letter '", letters_[i], "' in alphabet");
        lookup[ch] = static_cast<int16_t>(i);
    }
}

Expected<Alphabet>
Alphabet::tryMake(std::string letters, std::string name)
{
    if (letters.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "alphabet needs at least one letter");
    if (letters.size() > 255)
        return Status::error(ErrorCode::InvalidArgument, "alphabet of ",
                             letters.size(),
                             " letters exceeds the 255-symbol encoding");
    std::vector<bool> seen(256, false);
    for (char ch : letters) {
        if (ch <= ' ' || ch > '~')
            return Status::error(ErrorCode::InvalidArgument,
                                 "alphabet letters must be printable "
                                 "non-space ASCII");
        unsigned char u = static_cast<unsigned char>(ch);
        if (seen[u])
            return Status::error(ErrorCode::InvalidArgument,
                                 "duplicate letter '", ch,
                                 "' in alphabet");
        seen[u] = true;
    }
    return Alphabet(std::move(letters), std::move(name));
}

const Alphabet &
Alphabet::dna()
{
    static const Alphabet instance("ACGT", "DNA");
    return instance;
}

const Alphabet &
Alphabet::protein()
{
    static const Alphabet instance("ARNDCQEGHILKMFPSTWYV", "protein");
    return instance;
}

const Alphabet &
Alphabet::binary()
{
    static const Alphabet instance("01", "binary");
    return instance;
}

unsigned
Alphabet::bitsPerSymbol() const
{
    return util::log2Ceil(letters_.size());
}

char
Alphabet::letter(Symbol symbol) const
{
    rl_assert(symbol < letters_.size(), "symbol ", int(symbol),
              " out of alphabet of size ", letters_.size());
    return letters_[symbol];
}

Symbol
Alphabet::encode(char letter) const
{
    int16_t code = lookup[static_cast<unsigned char>(letter)];
    if (code < 0)
        rl_fatal("letter '", letter, "' not in alphabet ",
                 name_.empty() ? letters_ : name_);
    return static_cast<Symbol>(code);
}

bool
Alphabet::contains(char letter) const
{
    return lookup[static_cast<unsigned char>(letter)] >= 0;
}

std::vector<Symbol>
Alphabet::encodeString(const std::string &text) const
{
    std::vector<Symbol> out;
    out.reserve(text.size());
    for (char ch : text)
        out.push_back(encode(ch));
    return out;
}

std::string
Alphabet::decodeString(const std::vector<Symbol> &symbols) const
{
    std::string out;
    out.reserve(symbols.size());
    for (Symbol s : symbols)
        out.push_back(letter(s));
    return out;
}

} // namespace racelogic::bio
