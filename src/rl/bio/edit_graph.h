/**
 * @file
 * Edit-graph construction (paper Fig. 1e).
 *
 * The edit graph of sequences a (rows) and b (columns) is the
 * (|a|+1) x (|b|+1) grid DAG whose paths from the root (0,0) to the
 * end node (|a|,|b|) enumerate *all* global alignments: vertical
 * edges delete a symbol of `a`, horizontal edges insert a symbol of
 * `b`, diagonal edges align a pair.  Edge weights come from a
 * ScoreMatrix; forbidden pairs (infinite cost) become missing edges,
 * exactly as the race hardware realizes them.
 */

#ifndef RACELOGIC_BIO_EDIT_GRAPH_H
#define RACELOGIC_BIO_EDIT_GRAPH_H

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/graph/dag.h"

namespace racelogic::bio {

/** An edit graph plus its grid coordinate system. */
struct EditGraph {
    graph::Dag dag;
    size_t rows = 0; ///< |a|
    size_t cols = 0; ///< |b|
    graph::NodeId source = graph::kNoNode; ///< node (0, 0)
    graph::NodeId sink = graph::kNoNode;   ///< node (rows, cols)

    /** Node id of grid coordinate (i, j), 0 <= i <= rows. */
    graph::NodeId
    node(size_t i, size_t j) const
    {
        return static_cast<graph::NodeId>(i * (cols + 1) + j);
    }

    /** Inverse of node(): grid coordinate of a node id. */
    std::pair<size_t, size_t>
    coordinate(graph::NodeId id) const
    {
        return {id / (cols + 1), id % (cols + 1)};
    }
};

/**
 * Build the edit graph of (a, b) weighted by `matrix`.
 *
 * Works for both matrix kinds; the caller chooses the matching
 * objective (Cost -> shortest path, Similarity -> longest path).
 */
EditGraph makeEditGraph(const Sequence &a, const Sequence &b,
                        const ScoreMatrix &matrix);

} // namespace racelogic::bio

#endif // RACELOGIC_BIO_EDIT_GRAPH_H
