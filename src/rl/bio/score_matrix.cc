#include "rl/bio/score_matrix.h"

#include <algorithm>
#include <sstream>

#include "rl/util/fnv.h"
#include "rl/util/logging.h"

namespace racelogic::bio {

namespace {

/**
 * BLOSUM62 substitution scores (Henikoff & Henikoff 1992), symbol
 * order ARNDCQEGHILKMFPSTWYV -- the paper's Fig. 2c matrix.
 */
constexpr int kBlosum62[20][20] = {
    /*A*/ { 4,-1,-2,-2, 0,-1,-1, 0,-2,-1,-1,-1,-1,-2,-1, 1, 0,-3,-2, 0},
    /*R*/ {-1, 5, 0,-2,-3, 1, 0,-2, 0,-3,-2, 2,-1,-3,-2,-1,-1,-3,-2,-3},
    /*N*/ {-2, 0, 6, 1,-3, 0, 0, 0, 1,-3,-3, 0,-2,-3,-2, 1, 0,-4,-2,-3},
    /*D*/ {-2,-2, 1, 6,-3, 0, 2,-1,-1,-3,-4,-1,-3,-3,-1, 0,-1,-4,-3,-3},
    /*C*/ { 0,-3,-3,-3, 9,-3,-4,-3,-3,-1,-1,-3,-1,-2,-3,-1,-1,-2,-2,-1},
    /*Q*/ {-1, 1, 0, 0,-3, 5, 2,-2, 0,-3,-2, 1, 0,-3,-1, 0,-1,-2,-1,-2},
    /*E*/ {-1, 0, 0, 2,-4, 2, 5,-2, 0,-3,-3, 1,-2,-3,-1, 0,-1,-3,-2,-2},
    /*G*/ { 0,-2, 0,-1,-3,-2,-2, 6,-2,-4,-4,-2,-3,-3,-2, 0,-2,-2,-3,-3},
    /*H*/ {-2, 0, 1,-1,-3, 0, 0,-2, 8,-3,-3,-1,-2,-1,-2,-1,-2,-2, 2,-3},
    /*I*/ {-1,-3,-3,-3,-1,-3,-3,-4,-3, 4, 2,-3, 1, 0,-3,-2,-1,-3,-1, 3},
    /*L*/ {-1,-2,-3,-4,-1,-2,-3,-4,-3, 2, 4,-2, 2, 0,-3,-2,-1,-2,-1, 1},
    /*K*/ {-1, 2, 0,-1,-3, 1, 1,-2,-1,-3,-2, 5,-1,-3,-1, 0,-1,-3,-2,-2},
    /*M*/ {-1,-1,-2,-3,-1, 0,-2,-3,-2, 1, 2,-1, 5, 0,-2,-1,-1,-1,-1, 1},
    /*F*/ {-2,-3,-3,-3,-2,-3,-3,-3,-1, 0, 0,-3, 0, 6,-4,-2,-2, 1, 3,-1},
    /*P*/ {-1,-2,-2,-1,-3,-1,-1,-2,-2,-3,-3,-1,-2,-4, 7,-1,-1,-4,-3,-2},
    /*S*/ { 1,-1, 1, 0,-1, 0, 0, 0,-1,-2,-2, 0,-1,-2,-1, 4, 1,-3,-2,-2},
    /*T*/ { 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 1, 5,-2,-2, 0},
    /*W*/ {-3,-3,-4,-4,-2,-2,-3,-2,-2,-3,-2,-3,-1, 1,-4,-3,-2,11, 2,-3},
    /*Y*/ {-2,-2,-2,-3,-2,-1,-2,-3, 2,-1,-1,-2,-1, 3,-3,-2,-2, 2, 7,-1},
    /*V*/ { 0,-3,-3,-3,-1,-2,-2,-3,-3, 3, 1,-2, 1,-1,-2,-2, 0,-3,-1, 4},
};

/**
 * PAM250 substitution scores (Dayhoff), symbol order
 * ARNDCQEGHILKMFPSTWYV.
 */
constexpr int kPam250[20][20] = {
    /*A*/ { 2,-2, 0, 0,-2, 0, 0, 1,-1,-1,-2,-1,-1,-3, 1, 1, 1,-6,-3, 0},
    /*R*/ {-2, 6, 0,-1,-4, 1,-1,-3, 2,-2,-3, 3, 0,-4, 0, 0,-1, 2,-4,-2},
    /*N*/ { 0, 0, 2, 2,-4, 1, 1, 0, 2,-2,-3, 1,-2,-3, 0, 1, 0,-4,-2,-2},
    /*D*/ { 0,-1, 2, 4,-5, 2, 3, 1, 1,-2,-4, 0,-3,-6,-1, 0, 0,-7,-4,-2},
    /*C*/ {-2,-4,-4,-5,12,-5,-5,-3,-3,-2,-6,-5,-5,-4,-3, 0,-2,-8, 0,-2},
    /*Q*/ { 0, 1, 1, 2,-5, 4, 2,-1, 3,-2,-2, 1,-1,-5, 0,-1,-1,-5,-4,-2},
    /*E*/ { 0,-1, 1, 3,-5, 2, 4, 0, 1,-2,-3, 0,-2,-5,-1, 0, 0,-7,-4,-2},
    /*G*/ { 1,-3, 0, 1,-3,-1, 0, 5,-2,-3,-4,-2,-3,-5, 0, 1, 0,-7,-5,-1},
    /*H*/ {-1, 2, 2, 1,-3, 3, 1,-2, 6,-2,-2, 0,-2,-2, 0,-1,-1,-3, 0,-2},
    /*I*/ {-1,-2,-2,-2,-2,-2,-2,-3,-2, 5, 2,-2, 2, 1,-2,-1, 0,-5,-1, 4},
    /*L*/ {-2,-3,-3,-4,-6,-2,-3,-4,-2, 2, 6,-3, 4, 2,-3,-3,-2,-2,-1, 2},
    /*K*/ {-1, 3, 1, 0,-5, 1, 0,-2, 0,-2,-3, 5, 0,-5,-1, 0, 0,-3,-4,-2},
    /*M*/ {-1, 0,-2,-3,-5,-1,-2,-3,-2, 2, 4, 0, 6, 0,-2,-2,-1,-4,-2, 2},
    /*F*/ {-3,-4,-3,-6,-4,-5,-5,-5,-2, 1, 2,-5, 0, 9,-5,-3,-3, 0, 7,-1},
    /*P*/ { 1, 0, 0,-1,-3, 0,-1, 0, 0,-2,-3,-1,-2,-5, 6, 1, 0,-6,-5,-1},
    /*S*/ { 1, 0, 1, 0, 0,-1, 0, 1,-1,-1,-3, 0,-2,-3, 1, 2, 1,-2,-3,-1},
    /*T*/ { 1,-1, 0, 0,-2,-1, 0, 0,-1, 0,-2, 0,-1,-3, 0, 1, 3,-5,-3, 0},
    /*W*/ {-6, 2,-4,-7,-8,-5,-7,-7,-3,-5,-2,-3,-4, 0,-6,-2,-5,17, 0,-6},
    /*Y*/ {-3,-4,-2,-4, 0,-4,-4,-5, 0,-1,-1,-4,-2, 7,-5,-3,-3, 0,10,-2},
    /*V*/ { 0,-2,-2,-2,-2,-2,-2,-1,-2, 4, 2,-2, 2,-1,-1,-1, 0,-6,-2, 4},
};

ScoreMatrix
proteinMatrix(const int (&scores)[20][20], Score gap_penalty)
{
    ScoreMatrix m(Alphabet::protein(), ScoreKind::Similarity);
    for (Symbol a = 0; a < 20; ++a)
        for (Symbol b = 0; b < 20; ++b)
            m.setPair(a, b, scores[a][b]);
    m.setAllGaps(gap_penalty);
    return m;
}

} // namespace

ScoreMatrix::ScoreMatrix(Alphabet alphabet, ScoreKind kind)
    : alphabet_(std::move(alphabet)), kind_(kind),
      table((alphabet_.size() + 1) * (alphabet_.size() + 1), 0)
{}

ScoreMatrix
ScoreMatrix::dnaLongestPath()
{
    ScoreMatrix m(Alphabet::dna(), ScoreKind::Similarity);
    for (Symbol a = 0; a < 4; ++a)
        m.setPair(a, a, 1);
    return m; // mismatches and gaps already 0
}

ScoreMatrix
ScoreMatrix::dnaShortestPath()
{
    ScoreMatrix m(Alphabet::dna(), ScoreKind::Cost);
    for (Symbol a = 0; a < 4; ++a)
        for (Symbol b = 0; b < 4; ++b)
            m.setPair(a, b, a == b ? 1 : 2);
    m.setAllGaps(1);
    return m;
}

ScoreMatrix
ScoreMatrix::dnaShortestPathInfMismatch()
{
    ScoreMatrix m = dnaShortestPath();
    for (Symbol a = 0; a < 4; ++a)
        for (Symbol b = 0; b < 4; ++b)
            if (a != b)
                m.setPair(a, b, kScoreInfinity);
    return m;
}

ScoreMatrix
ScoreMatrix::blosum62()
{
    return proteinMatrix(kBlosum62, -4);
}

ScoreMatrix
ScoreMatrix::pam250()
{
    return proteinMatrix(kPam250, -8);
}

ScoreMatrix
ScoreMatrix::unitEdit(const Alphabet &alphabet)
{
    ScoreMatrix m(alphabet, ScoreKind::Cost);
    for (Symbol a = 0; a < alphabet.size(); ++a)
        for (Symbol b = 0; b < alphabet.size(); ++b)
            m.setPair(a, b, a == b ? 0 : 1);
    m.setAllGaps(1);
    return m;
}

ScoreMatrix
ScoreMatrix::uniform(const Alphabet &alphabet, ScoreKind kind, Score value)
{
    ScoreMatrix m(alphabet, kind);
    for (Symbol a = 0; a < alphabet.size(); ++a) {
        m.setGap(a, value);
        for (Symbol b = 0; b < alphabet.size(); ++b)
            m.setPair(a, b, value);
    }
    return m;
}

Score
ScoreMatrix::pair(Symbol a, Symbol b) const
{
    rl_assert(a < alphabet_.size() && b < alphabet_.size(),
              "symbol out of range");
    return table[index(a, b)];
}

Score
ScoreMatrix::gap(Symbol s) const
{
    rl_assert(s < alphabet_.size(), "symbol out of range");
    return table[index(s, gapSlot())];
}

void
ScoreMatrix::setPair(Symbol a, Symbol b, Score value)
{
    rl_assert(a < alphabet_.size() && b < alphabet_.size(),
              "symbol out of range");
    table[index(a, b)] = value;
}

void
ScoreMatrix::setPairSymmetric(Symbol a, Symbol b, Score value)
{
    setPair(a, b, value);
    setPair(b, a, value);
}

void
ScoreMatrix::setGap(Symbol s, Score value)
{
    rl_assert(s < alphabet_.size(), "symbol out of range");
    table[index(s, gapSlot())] = value;
    table[index(gapSlot(), s)] = value;
}

void
ScoreMatrix::setAllGaps(Score value)
{
    for (Symbol s = 0; s < alphabet_.size(); ++s)
        setGap(s, value);
}

bool
ScoreMatrix::isSymmetric() const
{
    for (Symbol a = 0; a < alphabet_.size(); ++a)
        for (Symbol b = 0; b < a; ++b)
            if (pair(a, b) != pair(b, a))
                return false;
    return true;
}

Score
ScoreMatrix::minFinite() const
{
    Score best = kScoreInfinity;
    for (Symbol a = 0; a < alphabet_.size(); ++a) {
        best = std::min(best, gap(a));
        for (Symbol b = 0; b < alphabet_.size(); ++b)
            if (pair(a, b) != kScoreInfinity)
                best = std::min(best, pair(a, b));
    }
    rl_assert(best != kScoreInfinity, "matrix has no finite entries");
    return best;
}

Score
ScoreMatrix::maxFinite() const
{
    Score best = INT64_MIN;
    for (Symbol a = 0; a < alphabet_.size(); ++a) {
        best = std::max(best, gap(a));
        for (Symbol b = 0; b < alphabet_.size(); ++b)
            if (pair(a, b) != kScoreInfinity)
                best = std::max(best, pair(a, b));
    }
    return best;
}

bool
ScoreMatrix::hasForbiddenPairs() const
{
    for (Symbol a = 0; a < alphabet_.size(); ++a)
        for (Symbol b = 0; b < alphabet_.size(); ++b)
            if (pair(a, b) == kScoreInfinity)
                return true;
    return false;
}

Score
ScoreMatrix::dynamicRange() const
{
    rl_assert(isCost(), "dynamic range is defined for cost matrices");
    rl_assert(minFinite() >= 1,
              "cost matrix must have all weights >= 1 for Race Logic; "
              "run toShortestPathForm() first");
    return maxFinite();
}

Status
ScoreMatrix::validateRaceReady(Score maxWeight,
                               bool allowForbiddenPairs) const
{
    if (!isCost())
        return Status::error(ErrorCode::InvalidArgument,
                             "race-ready validation needs a Cost-kind "
                             "matrix; convert similarity scores with "
                             "toShortestPathForm() first");
    const Score cap = maxWeight != 0 ? maxWeight : kScoreInfinity - 1;
    auto checkFinite = [&](Score w, const char *what,
                           char a, char b) -> Status {
        if (w == kScoreInfinity)
            return Status::error(ErrorCode::InvalidArgument, what, " (",
                                 a, ",", b, ") is infinite; a race "
                                 "needs a finite weight here");
        if (w < 1 || w > cap)
            return Status::error(ErrorCode::InvalidArgument, what, " (",
                                 a, ",", b, ") weight ", w,
                                 " outside the race-ready range [1, ",
                                 cap, "]");
        return Status();
    };
    for (Symbol a = 0; a < alphabet_.size(); ++a) {
        const char la = alphabet_.letter(a);
        if (Status s = checkFinite(gap(a), "gap", la, '-'); !s.ok())
            return s;
        for (Symbol b = 0; b < alphabet_.size(); ++b) {
            const char lb = alphabet_.letter(b);
            if (pair(a, b) == kScoreInfinity) {
                if (allowForbiddenPairs)
                    continue; // missing diagonal edge
                return Status::error(ErrorCode::InvalidArgument,
                                     "pair (", la, ",", lb,
                                     ") is infinite, but this problem "
                                     "kind requires finite pair "
                                     "weights");
            }
            if (Status s = checkFinite(pair(a, b), "pair", la, lb);
                !s.ok())
                return s;
        }
    }
    return Status();
}

uint64_t
ScoreMatrix::fingerprint() const
{
    util::Fnv f;
    f.mix(static_cast<uint64_t>(kind_));
    const size_t n = alphabet_.size();
    f.mix(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j)
            f.mix(static_cast<uint64_t>(
                pair(static_cast<Symbol>(i), static_cast<Symbol>(j))));
        f.mix(static_cast<uint64_t>(gap(static_cast<Symbol>(i))));
    }
    return f.h;
}

std::string
ScoreMatrix::toString() const
{
    std::ostringstream os;
    auto cell = [&](Score s) {
        if (s == kScoreInfinity)
            os << "  inf";
        else
            os << (s >= 0 && s < 10 ? "    " : "   ") << s;
    };
    os << " ";
    for (Symbol b = 0; b < alphabet_.size(); ++b)
        os << "    " << alphabet_.letter(b);
    os << "    _\n";
    for (Symbol a = 0; a <= alphabet_.size(); ++a) {
        os << (a < alphabet_.size() ? alphabet_.letter(a) : '_');
        for (Symbol b = 0; b < alphabet_.size(); ++b) {
            if (a < alphabet_.size())
                cell(pair(a, b));
            else
                cell(gap(b));
        }
        // gap column
        if (a < alphabet_.size())
            cell(gap(a));
        else
            os << "    -";
        os << '\n';
    }
    return os.str();
}

} // namespace racelogic::bio
