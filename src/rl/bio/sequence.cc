#include "rl/bio/sequence.h"

#include <cctype>

#include "rl/util/logging.h"

namespace racelogic::bio {

Sequence::Sequence(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

Sequence::Sequence(Alphabet alphabet, const std::string &text)
    : alphabet_(std::move(alphabet)),
      symbols_(alphabet_.encodeString(text))
{}

Sequence::Sequence(Alphabet alphabet, std::vector<Symbol> symbols)
    : alphabet_(std::move(alphabet)), symbols_(std::move(symbols))
{
    for (Symbol s : symbols_)
        rl_assert(s < alphabet_.size(), "symbol out of alphabet range");
}

Sequence
Sequence::random(util::Rng &rng, const Alphabet &alphabet, size_t length)
{
    std::vector<Symbol> symbols(length);
    for (size_t i = 0; i < length; ++i)
        symbols[i] = static_cast<Symbol>(rng.index(alphabet.size()));
    return Sequence(alphabet, std::move(symbols));
}

std::vector<Symbol>
Sequence::encodeFolded(const Alphabet &alphabet, const std::string &text,
                       const std::string &where)
{
    return tryEncodeFolded(alphabet, text, where).valueOrFatal();
}

Expected<std::vector<Symbol>>
Sequence::tryEncodeFolded(const Alphabet &alphabet,
                          const std::string &text,
                          const std::string &where)
{
    std::vector<Symbol> symbols;
    symbols.reserve(text.size());
    for (char ch : text) {
        if (std::isspace(static_cast<unsigned char>(ch)))
            continue;
        char upper = static_cast<char>(
            std::toupper(static_cast<unsigned char>(ch)));
        if (!alphabet.contains(upper))
            return Status::error(ErrorCode::InvalidArgument, where,
                                 ": letter '", ch, "' not in alphabet ",
                                 alphabet.letters());
        symbols.push_back(alphabet.encode(upper));
    }
    return symbols;
}

Expected<Sequence>
Sequence::tryEncode(const Alphabet &alphabet, const std::string &text)
{
    std::vector<Symbol> symbols;
    symbols.reserve(text.size());
    for (char ch : text) {
        if (!alphabet.contains(ch))
            return Status::error(ErrorCode::InvalidArgument, "letter '",
                                 ch, "' not in alphabet ",
                                 alphabet.letters());
        symbols.push_back(alphabet.encode(ch));
    }
    return Sequence(alphabet, std::move(symbols));
}

Symbol
Sequence::operator[](size_t i) const
{
    rl_assert(i < symbols_.size(), "sequence index ", i, " out of ",
              symbols_.size());
    return symbols_[i];
}

std::string
Sequence::str() const
{
    return alphabet_.decodeString(symbols_);
}

void
Sequence::push_back(Symbol s)
{
    rl_assert(s < alphabet_.size(), "symbol out of alphabet range");
    symbols_.push_back(s);
}

Sequence
Sequence::slice(size_t offset, size_t count) const
{
    rl_assert(offset <= symbols_.size() &&
              offset + count <= symbols_.size(),
              "slice out of range");
    return Sequence(alphabet_,
                    std::vector<Symbol>(symbols_.begin() + offset,
                                        symbols_.begin() + offset + count));
}

namespace {

Symbol
randomOtherSymbol(util::Rng &rng, const Alphabet &alphabet, Symbol avoid)
{
    rl_assert(alphabet.size() >= 2,
              "cannot draw a differing symbol from a 1-letter alphabet");
    // Draw from size-1 slots and skip over `avoid`.
    Symbol draw = static_cast<Symbol>(rng.index(alphabet.size() - 1));
    return draw >= avoid ? static_cast<Symbol>(draw + 1) : draw;
}

} // namespace

Sequence
mutate(util::Rng &rng, const Sequence &original, const MutationModel &model)
{
    const Alphabet &alphabet = original.alphabet();
    Sequence result(alphabet);
    for (size_t i = 0; i < original.size(); ++i) {
        if (rng.bernoulli(model.insertion))
            result.push_back(static_cast<Symbol>(rng.index(alphabet.size())));
        if (rng.bernoulli(model.deletion))
            continue;
        if (rng.bernoulli(model.substitution))
            result.push_back(randomOtherSymbol(rng, alphabet, original[i]));
        else
            result.push_back(original[i]);
    }
    return result;
}

Sequence
completeMismatch(util::Rng &rng, const Sequence &original)
{
    const Alphabet &alphabet = original.alphabet();
    std::vector<bool> used(alphabet.size(), false);
    for (size_t i = 0; i < original.size(); ++i)
        used[original[i]] = true;
    std::vector<Symbol> unused;
    for (Symbol s = 0; s < alphabet.size(); ++s)
        if (!used[s])
            unused.push_back(s);
    if (unused.empty())
        rl_fatal("completeMismatch: the sequence already uses every "
                 "symbol of its alphabet; use worstCasePair instead");
    Sequence result(alphabet);
    for (size_t i = 0; i < original.size(); ++i)
        result.push_back(rng.pick(unused));
    return result;
}

std::pair<Sequence, Sequence>
worstCasePair(util::Rng &rng, const Alphabet &alphabet, size_t length)
{
    rl_assert(alphabet.size() >= 2,
              "worst-case pairs need a 2+ letter alphabet");
    size_t half = alphabet.size() / 2;
    Sequence a(alphabet), b(alphabet);
    for (size_t i = 0; i < length; ++i) {
        a.push_back(static_cast<Symbol>(rng.index(half)));
        b.push_back(static_cast<Symbol>(half + rng.index(
                        alphabet.size() - half)));
    }
    return {a, b};
}

ScreeningWorkload
makeScreeningWorkload(util::Rng &rng, const Alphabet &alphabet,
                      size_t query_length, size_t database_size,
                      double related_fraction, const MutationModel &noise)
{
    ScreeningWorkload workload{
        Sequence::random(rng, alphabet, query_length), {}, {}};
    workload.database.reserve(database_size);
    workload.related.reserve(database_size);
    for (size_t i = 0; i < database_size; ++i) {
        bool is_related = rng.bernoulli(related_fraction);
        workload.related.push_back(is_related);
        if (is_related) {
            workload.database.push_back(mutate(rng, workload.query, noise));
        } else {
            workload.database.push_back(
                Sequence::random(rng, alphabet, query_length));
        }
    }
    return workload;
}

} // namespace racelogic::bio
