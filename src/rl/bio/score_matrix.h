/**
 * @file
 * Score matrices: the edge-weight tables of the edit graph.
 *
 * A score matrix assigns a weight to every edit operation: a pair
 * entry weights the diagonal (match/substitute) edge for a symbol
 * pair, and a gap entry weights the horizontal/vertical (indel) edge
 * for the symbol being skipped.  Two semantics exist (paper Fig. 2):
 *
 *  - Similarity (longest path / AND-type race): larger is better.
 *    Fig. 2a, BLOSUM62, PAM250.
 *  - Cost (shortest path / OR-type race): smaller is better.
 *    Fig. 2b and everything the synthesized design runs.
 *
 * An infinite cost means the edit is forbidden; Race Logic realizes
 * that as a *missing edge* ("truly infinite ... can be implemented as
 * a missing edge").
 */

#ifndef RACELOGIC_BIO_SCORE_MATRIX_H
#define RACELOGIC_BIO_SCORE_MATRIX_H

#include <cstdint>
#include <string>
#include <vector>

#include "rl/bio/alphabet.h"

namespace racelogic::bio {

/** Edit-operation weight. */
using Score = int64_t;

/** Forbidden edit (missing edge in the race circuit). */
constexpr Score kScoreInfinity = INT64_MAX / 4;

/** Whether bigger or smaller scores are better. */
enum class ScoreKind {
    Similarity, ///< maximize; longest path; AND-type race
    Cost,       ///< minimize; shortest path; OR-type race
};

/**
 * Dense (Nss+1) x (Nss+1) edit-weight table (last index = gap).
 *
 * Value type.  All factory matrices are symmetric, but the class
 * supports asymmetric substitution weights.
 */
class ScoreMatrix
{
  public:
    /** All-zero matrix of the given kind over `alphabet`. */
    ScoreMatrix(Alphabet alphabet, ScoreKind kind);

    /** @name Factories from the paper
     * @{ */

    /** Fig. 2a: DNA similarity; match = 1, mismatch = 0, gap = 0. */
    static ScoreMatrix dnaLongestPath();

    /** Fig. 2b: DNA cost; match = 1, mismatch = 2, indel = 1. */
    static ScoreMatrix dnaShortestPath();

    /**
     * The synthesized design's simplification of Fig. 2b: mismatch
     * weight raised from 2 to infinity (missing diagonal edge).  The
     * paper argues, and our tests verify, that this is score-
     * equivalent to Fig. 2b: a mismatch (cost 2) can always be
     * re-expressed as delete+insert (cost 1+1).
     */
    static ScoreMatrix dnaShortestPathInfMismatch();

    /** BLOSUM62 amino-acid similarity (Fig. 2c); linear gap = -4. */
    static ScoreMatrix blosum62();

    /** PAM250 amino-acid similarity; linear gap = -8. */
    static ScoreMatrix pam250();

    /** @} */

    /** Classic Levenshtein costs: match 0, mismatch 1, indel 1. */
    static ScoreMatrix unitEdit(const Alphabet &alphabet);

    /** Uniform matrix: every pair/gap weight = `value`. */
    static ScoreMatrix uniform(const Alphabet &alphabet, ScoreKind kind,
                               Score value);

    const Alphabet &alphabet() const { return alphabet_; }
    ScoreKind kind() const { return kind_; }
    bool isCost() const { return kind_ == ScoreKind::Cost; }

    /** Diagonal-edge weight for aligning symbols a and b. */
    Score pair(Symbol a, Symbol b) const;

    /** Indel-edge weight for skipping symbol `s`. */
    Score gap(Symbol s) const;

    void setPair(Symbol a, Symbol b, Score value);
    void setPairSymmetric(Symbol a, Symbol b, Score value);
    void setGap(Symbol s, Score value);
    void setAllGaps(Score value);

    /** True iff pair(a,b) == pair(b,a) for all symbols. */
    bool isSymmetric() const;

    /** Smallest finite entry over all pair and gap weights. */
    Score minFinite() const;

    /** Largest finite entry over all pair and gap weights. */
    Score maxFinite() const;

    /** True iff some pair entry is kScoreInfinity (Cost kind only). */
    bool hasForbiddenPairs() const;

    /**
     * Dynamic range N_DR as defined in Section 5: the largest finite
     * weight of a cost matrix whose smallest weight is >= 1.  This
     * sizes the saturating counter of the generalized cell.
     */
    Score dynamicRange() const;

    /**
     * Race-readiness validation, the one rule book shared by the
     * engine's problem validation and serve/wire.cc's request decode:
     * the matrix must be Cost kind, every gap weight finite and >= 1,
     * every pair weight >= 1 with kScoreInfinity (a missing diagonal
     * edge) allowed only when `allowForbiddenPairs`, and every finite
     * weight <= `maxWeight` when maxWeight != 0 (the calendar/wire
     * cap).  Returns InvalidArgument describing the first violation.
     */
    Status validateRaceReady(Score maxWeight = 0,
                             bool allowForbiddenPairs = true) const;

    /**
     * FNV-1a over kind, alphabet size, and every pair/gap weight:
     * the hardware identity of a score matrix (two fabrics are
     * interchangeable iff this matches).  Used by the api plan-cache
     * shape keys and by CompiledGraph to pin the matrix its hoisted
     * weights were bound to.
     */
    uint64_t fingerprint() const;

    /** Pretty-print in the Fig. 2 layout (letters + gap row/col). */
    std::string toString() const;

  private:
    size_t
    index(size_t a, size_t b) const
    {
        return a * (alphabet_.size() + 1) + b;
    }

    size_t gapSlot() const { return alphabet_.size(); }

    Alphabet alphabet_;
    ScoreKind kind_;
    std::vector<Score> table;
};

} // namespace racelogic::bio

#endif // RACELOGIC_BIO_SCORE_MATRIX_H
