#include "rl/graph/topo.h"

#include <algorithm>
#include <queue>

#include "rl/util/logging.h"

namespace racelogic::graph {

std::vector<NodeId>
topologicalOrder(const Dag &dag)
{
    const size_t n = dag.nodeCount();
    std::vector<size_t> remaining(n);
    // min-heap => deterministic smallest-id-first order
    std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
    for (NodeId node = 0; node < n; ++node) {
        remaining[node] = dag.inDegree(node);
        if (remaining[node] == 0)
            ready.push(node);
    }
    std::vector<NodeId> order;
    order.reserve(n);
    while (!ready.empty()) {
        NodeId node = ready.top();
        ready.pop();
        order.push_back(node);
        for (uint32_t idx : dag.outEdges(node)) {
            NodeId to = dag.edges()[idx].to;
            if (--remaining[to] == 0)
                ready.push(to);
        }
    }
    if (order.size() != n)
        rl_fatal("topologicalOrder: graph has a cycle");
    return order;
}

std::vector<bool>
reachableFrom(const Dag &dag, NodeId start)
{
    return reachableFromAny(dag, {start});
}

std::vector<bool>
reachableFromAny(const Dag &dag, const std::vector<NodeId> &starts)
{
    std::vector<bool> seen(dag.nodeCount(), false);
    std::vector<NodeId> stack;
    for (NodeId s : starts) {
        rl_assert(s < dag.nodeCount(), "bad start node ", s);
        if (!seen[s]) {
            seen[s] = true;
            stack.push_back(s);
        }
    }
    while (!stack.empty()) {
        NodeId node = stack.back();
        stack.pop_back();
        for (uint32_t idx : dag.outEdges(node)) {
            NodeId to = dag.edges()[idx].to;
            if (!seen[to]) {
                seen[to] = true;
                stack.push_back(to);
            }
        }
    }
    return seen;
}

std::vector<bool>
canReach(const Dag &dag, NodeId target)
{
    rl_assert(target < dag.nodeCount(), "bad target node ", target);
    std::vector<bool> seen(dag.nodeCount(), false);
    std::vector<NodeId> stack{target};
    seen[target] = true;
    while (!stack.empty()) {
        NodeId node = stack.back();
        stack.pop_back();
        for (uint32_t idx : dag.inEdges(node)) {
            NodeId from = dag.edges()[idx].from;
            if (!seen[from]) {
                seen[from] = true;
                stack.push_back(from);
            }
        }
    }
    return seen;
}

size_t
depth(const Dag &dag)
{
    std::vector<NodeId> order = topologicalOrder(dag);
    std::vector<size_t> level(dag.nodeCount(), 0);
    size_t deepest = 0;
    for (NodeId node : order) {
        for (uint32_t idx : dag.outEdges(node)) {
            NodeId to = dag.edges()[idx].to;
            level[to] = std::max(level[to], level[node] + 1);
            deepest = std::max(deepest, level[to]);
        }
    }
    return deepest;
}

} // namespace racelogic::graph
