#include "rl/graph/generate.h"

#include "rl/util/logging.h"

namespace racelogic::graph {

namespace {

Weight
drawWeight(util::Rng &rng, const WeightRange &range)
{
    rl_assert(range.min <= range.max, "bad weight range");
    return rng.uniformInt(range.min, range.max);
}

} // namespace

Dag
layeredDag(util::Rng &rng, size_t layers, size_t width, double edge_prob,
           WeightRange weights)
{
    rl_assert(layers >= 2 && width >= 1, "layeredDag needs >=2 layers");
    Dag dag(layers * width);
    auto id = [width](size_t layer, size_t slot) {
        return static_cast<NodeId>(layer * width + slot);
    };
    for (size_t layer = 0; layer + 1 < layers; ++layer) {
        // Track coverage so we can patch up isolated nodes afterward.
        std::vector<bool> has_out(width, false);
        std::vector<bool> has_in(width, false);
        for (size_t a = 0; a < width; ++a) {
            for (size_t b = 0; b < width; ++b) {
                if (rng.bernoulli(edge_prob)) {
                    dag.addEdge(id(layer, a), id(layer + 1, b),
                                drawWeight(rng, weights));
                    has_out[a] = true;
                    has_in[b] = true;
                }
            }
        }
        for (size_t a = 0; a < width; ++a) {
            if (!has_out[a]) {
                size_t b = rng.index(width);
                dag.addEdge(id(layer, a), id(layer + 1, b),
                            drawWeight(rng, weights));
                has_in[b] = true;
            }
        }
        for (size_t b = 0; b < width; ++b) {
            if (!has_in[b]) {
                size_t a = rng.index(width);
                dag.addEdge(id(layer, a), id(layer + 1, b),
                            drawWeight(rng, weights));
            }
        }
    }
    return dag;
}

Dag
gridDag(util::Rng &rng, size_t rows, size_t cols, WeightRange weights,
        bool with_diagonals)
{
    Dag dag((rows + 1) * (cols + 1));
    auto id = [cols](size_t r, size_t c) {
        return static_cast<NodeId>(r * (cols + 1) + c);
    };
    for (size_t r = 0; r <= rows; ++r) {
        for (size_t c = 0; c <= cols; ++c) {
            if (c < cols) // horizontal (deletion-like)
                dag.addEdge(id(r, c), id(r, c + 1),
                            drawWeight(rng, weights));
            if (r < rows) // vertical (insertion-like)
                dag.addEdge(id(r, c), id(r + 1, c),
                            drawWeight(rng, weights));
            if (with_diagonals && r < rows && c < cols)
                dag.addEdge(id(r, c), id(r + 1, c + 1),
                            drawWeight(rng, weights));
        }
    }
    return dag;
}

Dag
randomDag(util::Rng &rng, size_t nodes, double edge_prob,
          WeightRange weights)
{
    rl_assert(nodes >= 2, "randomDag needs >=2 nodes");
    Dag dag(nodes);
    // Random permutation = hidden topological order; edges only from
    // earlier to later in the permutation, so acyclicity is inherent.
    std::vector<NodeId> order(nodes);
    for (size_t i = 0; i < nodes; ++i)
        order[i] = static_cast<NodeId>(i);
    rng.shuffle(order);
    for (size_t i = 0; i < nodes; ++i) {
        for (size_t j = i + 1; j < nodes; ++j) {
            if (rng.bernoulli(edge_prob))
                dag.addEdge(order[i], order[j], drawWeight(rng, weights));
        }
    }
    return dag;
}

std::pair<NodeId, NodeId>
addSuperEndpoints(Dag &dag, Weight w)
{
    std::vector<NodeId> old_sources = dag.sources();
    std::vector<NodeId> old_sinks = dag.sinks();
    NodeId source = dag.addNode("superSource");
    NodeId sink = dag.addNode("superSink");
    for (NodeId s : old_sources)
        dag.addEdge(source, s, w);
    for (NodeId t : old_sinks)
        dag.addEdge(t, sink, w);
    return {source, sink};
}

} // namespace racelogic::graph
