#include "rl/graph/paths.h"

#include <algorithm>

#include "rl/graph/topo.h"
#include "rl/util/logging.h"

namespace racelogic::graph {

PathResult
solveDag(const Dag &dag, const std::vector<NodeId> &sources,
         Objective objective)
{
    rl_assert(!sources.empty(), "solveDag needs at least one source");
    PathResult result;
    result.objective = objective;
    result.distance.assign(dag.nodeCount(), kUnreachable);
    result.predecessor.assign(dag.nodeCount(), kNoNode);

    for (NodeId s : sources) {
        rl_assert(s < dag.nodeCount(), "bad source node ", s);
        result.distance[s] = 0;
    }

    const bool shortest = objective == Objective::Shortest;
    for (NodeId node : topologicalOrder(dag)) {
        if (result.distance[node] == kUnreachable)
            continue;
        Weight base = result.distance[node];
        for (uint32_t idx : dag.outEdges(node)) {
            const Edge &e = dag.edges()[idx];
            Weight candidate = base + e.weight;
            Weight &slot = result.distance[e.to];
            bool better;
            if (slot == kUnreachable) {
                better = true;
            } else if (shortest) {
                better = candidate < slot;
            } else {
                better = candidate > slot;
            }
            if (better) {
                slot = candidate;
                result.predecessor[e.to] = node;
            }
        }
    }
    return result;
}

std::vector<NodeId>
extractPath(const PathResult &result, NodeId sink)
{
    rl_assert(sink < result.distance.size(), "bad sink node ", sink);
    if (!result.reached(sink))
        return {};
    std::vector<NodeId> path;
    for (NodeId node = sink; node != kNoNode;
         node = result.predecessor[node]) {
        path.push_back(node);
        rl_assert(path.size() <= result.distance.size(),
                  "predecessor chain loops");
    }
    std::reverse(path.begin(), path.end());
    return path;
}

Weight
pathWeight(const Dag &dag, const std::vector<NodeId> &path)
{
    rl_assert(path.size() >= 1, "empty path");
    Weight total = 0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
        bool found = false;
        Weight best = 0;
        for (uint32_t idx : dag.outEdges(path[i])) {
            const Edge &e = dag.edges()[idx];
            if (e.to == path[i + 1]) {
                // Parallel edges: take the best (matches DP behaviour
                // for either objective only if unique; callers that
                // care use simple graphs).
                best = found ? std::min(best, e.weight) : e.weight;
                found = true;
            }
        }
        if (!found)
            rl_fatal("pathWeight: no edge ", path[i], " -> ", path[i + 1]);
        total += best;
    }
    return total;
}

uint64_t
countPaths(const Dag &dag, NodeId source, NodeId sink, uint64_t cap)
{
    rl_assert(source < dag.nodeCount() && sink < dag.nodeCount(),
              "bad endpoints");
    std::vector<uint64_t> ways(dag.nodeCount(), 0);
    ways[source] = 1;
    for (NodeId node : topologicalOrder(dag)) {
        if (ways[node] == 0)
            continue;
        for (uint32_t idx : dag.outEdges(node)) {
            NodeId to = dag.edges()[idx].to;
            uint64_t sum = ways[to] + ways[node];
            ways[to] = (sum < ways[to] || sum > cap) ? cap : sum;
        }
    }
    return ways[sink];
}

} // namespace racelogic::graph
