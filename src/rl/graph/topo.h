/**
 * @file
 * Topological ordering and reachability queries over a Dag.
 */

#ifndef RACELOGIC_GRAPH_TOPO_H
#define RACELOGIC_GRAPH_TOPO_H

#include <vector>

#include "rl/graph/dag.h"

namespace racelogic::graph {

/**
 * Deterministic topological order (Kahn's algorithm; smallest node id
 * first among ready nodes).  fatal() if the graph has a cycle.
 */
std::vector<NodeId> topologicalOrder(const Dag &dag);

/** Set of nodes reachable from `start` (including `start`). */
std::vector<bool> reachableFrom(const Dag &dag, NodeId start);

/** Set of nodes reachable from any of `starts`. */
std::vector<bool> reachableFromAny(const Dag &dag,
                                   const std::vector<NodeId> &starts);

/** Set of nodes that can reach `target` (including `target`). */
std::vector<bool> canReach(const Dag &dag, NodeId target);

/**
 * Length of the longest edge-count path in the graph (its depth); the
 * number of anti-diagonal "waves" a dynamic-programming evaluation of
 * the graph requires.
 */
size_t depth(const Dag &dag);

} // namespace racelogic::graph

#endif // RACELOGIC_GRAPH_TOPO_H
