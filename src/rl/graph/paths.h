/**
 * @file
 * Reference dynamic-programming path solvers on DAGs.
 *
 * These are the software oracles the paper's hardware is checked
 * against: an OR-type race network must report exactly the shortest
 * path and an AND-type network exactly the longest path computed here.
 *
 * The solvers run in O(V + E) over a topological order and track
 * predecessors so optimal paths (= optimal alignments, for edit
 * graphs) can be extracted.
 */

#ifndef RACELOGIC_GRAPH_PATHS_H
#define RACELOGIC_GRAPH_PATHS_H

#include <limits>
#include <vector>

#include "rl/graph/dag.h"

namespace racelogic::graph {

/** Which extremum the DP computes (paper's Eq. 1a vs 1b). */
enum class Objective {
    Shortest, ///< min-plus; hardware realization is the OR-type race
    Longest,  ///< max-plus; hardware realization is the AND-type race
};

/** Distance sentinel: node not reachable from any source. */
constexpr Weight kUnreachable = std::numeric_limits<Weight>::max();

/** Result of a single-objective DAG DP sweep. */
struct PathResult {
    Objective objective = Objective::Shortest;
    /** Per-node optimal score; kUnreachable where undefined. */
    std::vector<Weight> distance;
    /** Per-node best predecessor (kNoNode for sources/unreachable). */
    std::vector<NodeId> predecessor;

    /** True iff `node` was reached from some source. */
    bool
    reached(NodeId node) const
    {
        return distance[node] != kUnreachable;
    }
};

/**
 * Solve the DAG DP from a set of source nodes (all at distance 0).
 *
 * Ties between equal-score predecessors resolve to the smallest edge
 * index, making path extraction deterministic.
 *
 * @param dag        The graph; fatal() if it contains a cycle.
 * @param sources    Nodes whose score is fixed to 0; must be nonempty.
 * @param objective  Shortest (min) or Longest (max).
 */
PathResult solveDag(const Dag &dag, const std::vector<NodeId> &sources,
                    Objective objective);

/**
 * Walk predecessors back from `sink` to a source.
 *
 * @return Node sequence source..sink; empty if `sink` unreachable.
 */
std::vector<NodeId> extractPath(const PathResult &result, NodeId sink);

/** Sum of edge weights along a node path (fatal on a broken path). */
Weight pathWeight(const Dag &dag, const std::vector<NodeId> &path);

/**
 * Count distinct source-to-sink paths (saturating at the given cap).
 *
 * The edit graph of two length-N strings contains a combinatorial
 * number of alignments; this utility quantifies the search space a
 * race evaluates in parallel.
 */
uint64_t countPaths(const Dag &dag, NodeId source, NodeId sink,
                    uint64_t cap = ~uint64_t(0));

} // namespace racelogic::graph

#endif // RACELOGIC_GRAPH_PATHS_H
