#include "rl/graph/dag.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::graph {

NodeId
Dag::addNode(std::string label)
{
    NodeId id = static_cast<NodeId>(outAdjacency.size());
    outAdjacency.emplace_back();
    inAdjacency.emplace_back();
    labels.push_back(std::move(label));
    return id;
}

NodeId
Dag::addNodes(size_t count)
{
    NodeId first = static_cast<NodeId>(outAdjacency.size());
    for (size_t i = 0; i < count; ++i)
        addNode();
    return first;
}

void
Dag::addEdge(NodeId from, NodeId to, Weight weight)
{
    checkNode(from);
    checkNode(to);
    if (from == to)
        rl_fatal("self-loop on node ", from, " would create a cycle");
    uint32_t index = static_cast<uint32_t>(edges_.size());
    edges_.push_back(Edge{from, to, weight});
    outAdjacency[from].push_back(index);
    inAdjacency[to].push_back(index);
}

const std::vector<uint32_t> &
Dag::outEdges(NodeId node) const
{
    checkNode(node);
    return outAdjacency[node];
}

const std::vector<uint32_t> &
Dag::inEdges(NodeId node) const
{
    checkNode(node);
    return inAdjacency[node];
}

CsrOutEdges
Dag::outEdgesCsr() const
{
    CsrOutEdges csr;
    const size_t n = nodeCount();
    csr.offsets.assign(n + 1, 0);
    for (const Edge &e : edges_)
        ++csr.offsets[e.from + 1];
    for (size_t v = 0; v < n; ++v)
        csr.offsets[v + 1] += csr.offsets[v];
    csr.to.resize(edges_.size());
    csr.weight.resize(edges_.size());
    // Fill in per-node insertion order so CSR traversal matches
    // outEdges() traversal exactly (event-order equivalence).
    std::vector<uint32_t> cursor(csr.offsets.begin(),
                                 csr.offsets.end() - 1);
    for (size_t v = 0; v < n; ++v) {
        for (uint32_t idx : outAdjacency[v]) {
            uint32_t slot = cursor[v]++;
            csr.to[slot] = edges_[idx].to;
            csr.weight[slot] = edges_[idx].weight;
        }
    }
    return csr;
}

std::vector<NodeId>
Dag::sources() const
{
    std::vector<NodeId> result;
    for (NodeId n = 0; n < nodeCount(); ++n)
        if (inAdjacency[n].empty())
            result.push_back(n);
    return result;
}

std::vector<NodeId>
Dag::sinks() const
{
    std::vector<NodeId> result;
    for (NodeId n = 0; n < nodeCount(); ++n)
        if (outAdjacency[n].empty())
            result.push_back(n);
    return result;
}

const std::string &
Dag::label(NodeId node) const
{
    checkNode(node);
    return labels[node];
}

Weight
Dag::minWeight() const
{
    if (edges_.empty())
        rl_fatal("minWeight of an edgeless graph");
    Weight best = edges_.front().weight;
    for (const Edge &e : edges_)
        best = std::min(best, e.weight);
    return best;
}

Weight
Dag::maxWeight() const
{
    if (edges_.empty())
        rl_fatal("maxWeight of an edgeless graph");
    Weight best = edges_.front().weight;
    for (const Edge &e : edges_)
        best = std::max(best, e.weight);
    return best;
}

bool
Dag::isAcyclic() const
{
    // Kahn's algorithm: the graph is acyclic iff all nodes drain.
    std::vector<size_t> remaining(nodeCount());
    std::vector<NodeId> ready;
    for (NodeId n = 0; n < nodeCount(); ++n) {
        remaining[n] = inAdjacency[n].size();
        if (remaining[n] == 0)
            ready.push_back(n);
    }
    size_t visited = 0;
    while (!ready.empty()) {
        NodeId n = ready.back();
        ready.pop_back();
        ++visited;
        for (uint32_t idx : outAdjacency[n]) {
            NodeId to = edges_[idx].to;
            if (--remaining[to] == 0)
                ready.push_back(to);
        }
    }
    return visited == nodeCount();
}

void
Dag::validateAcyclic() const
{
    if (!isAcyclic())
        rl_fatal("graph contains a directed cycle; Race Logic requires "
                 "a DAG (", nodeCount(), " nodes, ", edgeCount(),
                 " edges)");
}

void
Dag::checkNode(NodeId node) const
{
    rl_assert(node < outAdjacency.size(), "node ", node,
              " out of range (", outAdjacency.size(), " nodes)");
}

Dag
makeFig3ExampleDag()
{
    // Reconstruction of the paper's Fig. 3a: two input nodes, one
    // output node, and unit/small weights {2, 3, 1, 1, 1, 1, 1}.  The
    // paper states the OR-type (shortest-path) race completes in two
    // cycles; this graph reproduces that.
    Dag dag;
    NodeId a = dag.addNode("inA");
    NodeId b = dag.addNode("inB");
    NodeId c = dag.addNode("mid0");
    NodeId d = dag.addNode("mid1");
    NodeId e = dag.addNode("out");
    dag.addEdge(a, c, 2);
    dag.addEdge(a, d, 3);
    dag.addEdge(b, c, 1);
    dag.addEdge(b, d, 1);
    dag.addEdge(c, d, 1);
    dag.addEdge(c, e, 1);
    dag.addEdge(d, e, 1);
    return dag;
}

} // namespace racelogic::graph
