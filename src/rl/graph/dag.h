/**
 * @file
 * Weighted directed-acyclic-graph substrate.
 *
 * The paper frames every dynamic-programming problem it accelerates as
 * a shortest/longest-path query on a weighted DAG (the edit graph
 * being the flagship instance).  This module is the in-memory graph
 * the rest of the library computes on: the reference DP solvers
 * (rl/graph/paths.h) act as the correctness oracle and the race-logic
 * mapper (rl/core/race_network.h) compiles the same structure into a
 * temporal circuit.
 */

#ifndef RACELOGIC_GRAPH_DAG_H
#define RACELOGIC_GRAPH_DAG_H

#include <cstdint>
#include <string>
#include <vector>

namespace racelogic::graph {

/** Dense node identifier (index into the DAG's node arrays). */
using NodeId = uint32_t;

/** Sentinel for "no node". */
constexpr NodeId kNoNode = ~NodeId(0);

/** Edge weight. Race Logic realizes weights as delays, so >= 0. */
using Weight = int64_t;

/** A weighted directed edge. */
struct Edge {
    NodeId from;
    NodeId to;
    Weight weight;

    bool
    operator==(const Edge &other) const
    {
        return from == other.from && to == other.to &&
               weight == other.weight;
    }
};

/**
 * Packed CSR (compressed sparse row) view of a DAG's out-edges.
 *
 * Three flat arrays replace the vector-of-vectors adjacency: the
 * out-edges of node v are the index range [offsets[v], offsets[v+1])
 * into the parallel `to` / `weight` arrays.  Within a node the edges
 * keep their insertion order, so CSR traversal visits edges in the
 * same order as Dag::outEdges() -- simulation kernels built on either
 * view are event-for-event identical.
 *
 * This is the layout the wavefront race kernel
 * (rl/core/wavefront.h) sweeps: contiguous, allocation-free, and
 * cache-friendly, where the adjacency lists cost one pointer chase
 * per node.
 */
struct CsrOutEdges {
    /** Size nodeCount()+1; offsets[v]..offsets[v+1] index the edges. */
    std::vector<uint32_t> offsets;

    /** Head node of each edge, grouped by tail node. */
    std::vector<NodeId> to;

    /** Weight of each edge, parallel to `to`. */
    std::vector<Weight> weight;

    size_t nodeCount() const { return offsets.empty() ? 0 : offsets.size() - 1; }
    size_t edgeCount() const { return to.size(); }
};

/**
 * A mutable weighted digraph intended to be acyclic.
 *
 * Nodes are created densely; edges may be added in any order.
 * Acyclicity is validated on demand (validateAcyclic() or the
 * topological-sort routines), not on every insertion, so construction
 * stays O(V + E).
 */
class Dag
{
  public:
    Dag() = default;

    /** Create a graph with `count` initial unnamed nodes. */
    explicit Dag(size_t count) { addNodes(count); }

    /** Add a single node; returns its id. */
    NodeId addNode(std::string label = "");

    /** Add `count` nodes; returns the id of the first. */
    NodeId addNodes(size_t count);

    /**
     * Add a directed weighted edge.
     *
     * Infinite weights are represented by *omitting* the edge (the
     * paper: "truly infinite [weight] ... can be implemented as a
     * missing edge"), so no sentinel weight exists.
     */
    void addEdge(NodeId from, NodeId to, Weight weight);

    size_t nodeCount() const { return outAdjacency.size(); }
    size_t edgeCount() const { return edges_.size(); }

    /** All edges in insertion order. */
    const std::vector<Edge> &edges() const { return edges_; }

    /** Out-edge indices (into edges()) of a node. */
    const std::vector<uint32_t> &outEdges(NodeId node) const;

    /** In-edge indices (into edges()) of a node. */
    const std::vector<uint32_t> &inEdges(NodeId node) const;

    /**
     * Build the packed CSR view of the out-adjacency (O(V + E)).
     *
     * The view is a snapshot by value: edges added to the Dag after
     * the call are not reflected in it.
     */
    CsrOutEdges outEdgesCsr() const;

    /** Number of edges entering `node`. */
    size_t inDegree(NodeId node) const { return inEdges(node).size(); }

    /** Number of edges leaving `node`. */
    size_t outDegree(NodeId node) const { return outEdges(node).size(); }

    /** Nodes with no incoming edges. */
    std::vector<NodeId> sources() const;

    /** Nodes with no outgoing edges. */
    std::vector<NodeId> sinks() const;

    /** Optional human-readable node label ("" if unset). */
    const std::string &label(NodeId node) const;

    /** Smallest edge weight (fatal on an edgeless graph). */
    Weight minWeight() const;

    /** Largest edge weight (fatal on an edgeless graph). */
    Weight maxWeight() const;

    /** True iff the graph currently contains no directed cycle. */
    bool isAcyclic() const;

    /** fatal() with a diagnostic if the graph contains a cycle. */
    void validateAcyclic() const;

  private:
    void checkNode(NodeId node) const;

    std::vector<Edge> edges_;
    std::vector<std::vector<uint32_t>> outAdjacency;
    std::vector<std::vector<uint32_t>> inAdjacency;
    std::vector<std::string> labels;
};

/**
 * Build the paper's Fig. 3a example DAG.
 *
 * Two input nodes, one output node, and the internal structure whose
 * shortest path is 2 and longest path is 4 under OR-/AND-type Race
 * Logic respectively (longest: inA ->(3) mid1 ->(1) out, tied by
 * inA ->(2) mid0 ->(1) mid1 ->(1) out; both DP and the AND-race
 * report 4).  Returned ids: sources = {0, 1}, sink = last.
 */
Dag makeFig3ExampleDag();

} // namespace racelogic::graph

#endif // RACELOGIC_GRAPH_DAG_H
