/**
 * @file
 * Random DAG workload generators.
 *
 * Property tests exercise the race solvers against DP oracles on many
 * graph shapes; these generators provide layered, grid, and arbitrary
 * random DAGs with controllable weight ranges.  Generated weights are
 * kept >= 1 by default because Race Logic realizes weights as delays
 * ("negative or zero weights cannot be implemented in a
 * straightforward way", paper Section 5).
 */

#ifndef RACELOGIC_GRAPH_GENERATE_H
#define RACELOGIC_GRAPH_GENERATE_H

#include "rl/graph/dag.h"
#include "rl/util/random.h"

namespace racelogic::graph {

/** Parameters shared by the random generators. */
struct WeightRange {
    Weight min = 1;
    Weight max = 4;
};

/**
 * Layered DAG: `layers` ranks of `width` nodes; edges only between
 * consecutive ranks, each present with probability `edge_prob`, and
 * every node is guaranteed at least one in-edge (except rank 0) and
 * one out-edge (except the last rank), so the graph stays connected.
 */
Dag layeredDag(util::Rng &rng, size_t layers, size_t width,
               double edge_prob, WeightRange weights);

/**
 * Grid DAG with the edit-graph topology: (rows+1) x (cols+1) nodes,
 * horizontal/vertical/diagonal edges with independently random
 * weights.  Node id = r * (cols + 1) + c.
 */
Dag gridDag(util::Rng &rng, size_t rows, size_t cols,
            WeightRange weights, bool with_diagonals = true);

/**
 * Arbitrary random DAG: `nodes` nodes in a random topological order,
 * each forward pair connected with probability `edge_prob`.
 */
Dag randomDag(util::Rng &rng, size_t nodes, double edge_prob,
              WeightRange weights);

/**
 * Add a super-source wired (weight `w`) to every current source and a
 * super-sink wired from every current sink; returns {source, sink}.
 * Lets multi-source/multi-sink graphs be raced through one input and
 * one output node, as a hardware deployment would.
 */
std::pair<NodeId, NodeId> addSuperEndpoints(Dag &dag, Weight w = 1);

} // namespace racelogic::graph

#endif // RACELOGIC_GRAPH_GENERATE_H
