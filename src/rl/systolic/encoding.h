/**
 * @file
 * Modular score arithmetic for the systolic baseline.
 *
 * Lipton & Lopresti's key trick: because adjacent edit-distance
 * cells differ by a bounded amount, scores can be stored and
 * compared *mod 4* inside the array ("maximum score dependent
 * modular arithmetic [that] limits the number of bits of data"),
 * with the true score recomputed by extra circuitry outside the
 * systolic structure.  For the Fig. 2b cost family the candidate
 * scores lie within {v+1, v+2, v+3} of the diagonal value v, so
 * two-bit residues are unambiguous.
 */

#ifndef RACELOGIC_SYSTOLIC_ENCODING_H
#define RACELOGIC_SYSTOLIC_ENCODING_H

#include <cstdint>

#include "rl/bio/score_matrix.h"

namespace racelogic::systolic {

/** Two-bit score residue stored inside a PE. */
using Mod4 = uint8_t;

/** Wrap a full score to its residue. */
constexpr Mod4
toMod4(bio::Score value)
{
    return static_cast<Mod4>(static_cast<uint64_t>(value) & 3);
}

/** Residue addition. */
constexpr Mod4
mod4Add(Mod4 a, bio::Score delta)
{
    return static_cast<Mod4>(
        (a + static_cast<uint64_t>(delta)) & 3);
}

/**
 * Offset of a candidate residue relative to a base residue,
 * interpreted in [0, 3].  Valid whenever the true difference is
 * known to lie in that window -- the bounded-difference property the
 * cost matrix must satisfy (checked by LiptonLoprestiArray).
 */
constexpr unsigned
mod4Offset(Mod4 candidate, Mod4 base)
{
    return (candidate + 4u - base) & 3u;
}

} // namespace racelogic::systolic

#endif // RACELOGIC_SYSTOLIC_ENCODING_H
