#include "rl/systolic/lipton_lopresti.h"

#include <algorithm>

#include "rl/systolic/encoding.h"
#include "rl/util/logging.h"

namespace racelogic::systolic {

namespace {

/** A character slot marching through the array. */
struct CharReg {
    bio::Symbol sym = 0;
    bool valid = false;

    bool
    operator==(const CharReg &other) const
    {
        return sym == other.sym && valid == other.valid;
    }
};

/** Bits that differ between two character-register values. */
unsigned
charRegToggles(const CharReg &before, const CharReg &after,
               unsigned sym_bits)
{
    unsigned toggles = 0;
    for (unsigned b = 0; b < sym_bits; ++b)
        toggles += ((before.sym >> b) & 1) != ((after.sym >> b) & 1);
    toggles += before.valid != after.valid;
    return toggles;
}

constexpr unsigned kScoreBits = 2; // mod-4 residue

} // namespace

LiptonLoprestiArray::LiptonLoprestiArray(bio::ScoreMatrix costs_in)
    : costs(std::move(costs_in))
{
    rl_assert(costs.isCost(),
              "the systolic baseline minimizes an edit cost");
    const bio::Alphabet &alphabet = costs.alphabet();
    bool saw_mismatch = false;
    for (bio::Symbol s = 0; s < alphabet.size(); ++s) {
        rl_assert(costs.gap(s) == 1,
                  "Lipton-Lopresti encoding needs unit indel weights");
        for (bio::Symbol t = 0; t < alphabet.size(); ++t) {
            bio::Score w = costs.pair(s, t);
            if (s == t) {
                rl_assert(w == 1, "match weight must be 1 (Fig. 2b)");
                continue;
            }
            rl_assert(w == 2 || w == bio::kScoreInfinity,
                      "mismatch weight must be 2 or infinity; the "
                      "mod-4 encoding relies on the bounded "
                      "cell-to-cell differences this family has");
            if (!saw_mismatch) {
                mismatchWeight = w;
                saw_mismatch = true;
            } else {
                rl_assert(w == mismatchWeight,
                          "the PE distinguishes only match/mismatch, "
                          "so the mismatch weight must be uniform");
            }
        }
    }
}

uint64_t
LiptonLoprestiArray::latencyCycles(size_t n, size_t m)
{
    // Cell (i, j) is computed at time i + j + max(n, m); the sink
    // latches one cycle after it is computed.
    return n + m + std::max(n, m) + 1;
}

uint64_t
LiptonLoprestiArray::initiationInterval(size_t n, size_t m)
{
    // Each injection port is busy for 2*len cycles; the next pair
    // can start two cycles after the longer stream drains.
    return 2 * std::max(n, m) + 2;
}

size_t
LiptonLoprestiArray::registerBitsPerPe(const bio::Alphabet &alphabet)
{
    unsigned sym_bits = std::max(1u, alphabet.bitsPerSymbol());
    // Two char streams (sym + valid) and the score residue.
    return 2 * (sym_bits + 1) + kScoreBits;
}

SystolicResult
LiptonLoprestiArray::align(const bio::Sequence &a,
                           const bio::Sequence &b) const
{
    const bio::Alphabet &alphabet = costs.alphabet();
    rl_assert(a.alphabet() == alphabet && b.alphabet() == alphabet,
              "sequence alphabet does not match the array");
    rl_assert(a.size() >= 1 && b.size() >= 1,
              "empty strings are not streamed through the array");

    const unsigned sym_bits = std::max(1u, alphabet.bitsPerSymbol());
    const size_t n = a.size();
    const size_t m = b.size();
    const size_t h = std::max(n, m);
    const size_t pe_count = n + m + 1;
    const uint64_t t_end = n + m + h;

    // Schedule geometry: cell (i, j) is handled by PE k = n + j - i
    // at time t = i + j + h.  The P stream enters PE 0 (one symbol
    // every other cycle, delayed by h - n); the Q stream enters PE
    // n + m delayed by h - m.  Exactly one of the delays is zero.
    const uint64_t offset_p = h - n;
    const uint64_t offset_q = h - m;

    std::vector<CharReg> x(pe_count), y(pe_count);
    std::vector<Mod4> s1(pe_count, 0);
    std::vector<bool> s1_valid(pe_count, false);

    // Reconstruction accumulator outside the array: primed with the
    // known boundary value of the first cell the sink PE computes.
    const size_t k_out = m; // n + m - n
    bio::Score reconstructed =
        static_cast<bio::Score>(n > m ? n - m : m - n);
    bool sink_primed = false;

    SystolicResult result;
    result.peCount = pe_count;

    const bio::Score mismatch = mismatchWeight;

    for (uint64_t t = 0; t <= t_end; ++t) {
        // Phase 1: character shift (every cycle; this is the
        // interleaved stream wiring toggling).
        std::vector<CharReg> nx(pe_count), ny(pe_count);
        for (size_t k = 1; k < pe_count; ++k)
            nx[k] = x[k - 1];
        for (size_t k = 0; k + 1 < pe_count; ++k)
            ny[k] = y[k + 1];
        if (t >= offset_p && (t - offset_p) % 2 == 0) {
            uint64_t idx = (t - offset_p) / 2;
            if (idx >= 1 && idx <= n)
                nx[0] = CharReg{a[idx - 1], true};
        }
        if (t >= offset_q && (t - offset_q) % 2 == 0) {
            uint64_t idx = (t - offset_q) / 2;
            if (idx >= 1 && idx <= m)
                ny[pe_count - 1] = CharReg{b[idx - 1], true};
        }
        for (size_t k = 0; k < pe_count; ++k) {
            result.registerBitToggles +=
                charRegToggles(x[k], nx[k], sym_bits) +
                charRegToggles(y[k], ny[k], sym_bits);
            if (!(x[k] == nx[k]))
                ++result.streamShiftEvents;
            if (!(y[k] == ny[k]))
                ++result.streamShiftEvents;
        }
        x = std::move(nx);
        y = std::move(ny);

        // Phase 2: cell computations (read state, then commit, as
        // the registers would behave on the clock edge).
        if (t < h)
            continue;
        std::vector<std::pair<size_t, Mod4>> commits;
        for (size_t k = 0; k < pe_count; ++k) {
            int64_t two_i = static_cast<int64_t>(t) -
                            static_cast<int64_t>(h) -
                            static_cast<int64_t>(k) +
                            static_cast<int64_t>(n);
            int64_t two_j = static_cast<int64_t>(t) -
                            static_cast<int64_t>(h) +
                            static_cast<int64_t>(k) -
                            static_cast<int64_t>(n);
            if (two_i < 0 || two_j < 0 || two_i % 2 || two_j % 2)
                continue;
            size_t i = static_cast<size_t>(two_i / 2);
            size_t j = static_cast<size_t>(two_j / 2);
            if (i > n || j > m)
                continue;

            Mod4 fresh;
            bio::Score sink_delta = 0;
            if (i == 0 && j == 0) {
                fresh = 0;
            } else if (i == 0) {
                rl_assert(s1_valid[k - 1], "left operand missing");
                fresh = mod4Add(s1[k - 1], 1);
            } else if (j == 0) {
                rl_assert(s1_valid[k + 1], "top operand missing");
                fresh = mod4Add(s1[k + 1], 1);
            } else {
                // The characters must be co-located here; asserting
                // that validates the streaming logic.  The match bit
                // is computed from the registers, as hardware would.
                rl_assert(x[k].valid && x[k].sym == a[i - 1],
                          "P stream misscheduled at PE ", k);
                rl_assert(y[k].valid && y[k].sym == b[j - 1],
                          "Q stream misscheduled at PE ", k);
                bool match = x[k].sym == y[k].sym;
                rl_assert(s1_valid[k] && s1_valid[k - 1] &&
                              s1_valid[k + 1],
                          "operand missing");
                Mod4 diag = s1[k];
                unsigned best = mod4Offset(s1[k + 1], diag) + 1; // top
                best = std::min(best,
                                mod4Offset(s1[k - 1], diag) + 1); // left
                if (match) {
                    best = std::min(best, 1u);
                } else if (mismatch != bio::kScoreInfinity) {
                    best = std::min(best,
                                    static_cast<unsigned>(mismatch));
                }
                fresh = mod4Add(diag, static_cast<bio::Score>(best));
                sink_delta = static_cast<bio::Score>(best);
            }

            if (k == k_out) {
                if (sink_primed)
                    reconstructed += sink_delta;
                sink_primed = true;
            }
            commits.emplace_back(k, fresh);
            ++result.activePeCycles;
        }
        for (auto [k, fresh] : commits) {
            if (!s1_valid[k] || s1[k] != fresh) {
                unsigned diff =
                    s1_valid[k] ? static_cast<unsigned>(s1[k] ^ fresh)
                                : static_cast<unsigned>(fresh);
                result.registerBitToggles +=
                    (diff & 1) + ((diff >> 1) & 1);
            }
            s1[k] = fresh;
            s1_valid[k] = true;
        }
    }

    result.cycles = t_end + 1;
    result.peClockCycles = result.cycles * pe_count;
    result.score = reconstructed;
    return result;
}

} // namespace racelogic::systolic
