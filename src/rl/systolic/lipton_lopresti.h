/**
 * @file
 * The Lipton-Lopresti linear systolic array -- the paper's baseline.
 *
 * A string of length N and one of length M are compared on a linear
 * array of N+M+1 processing elements (2N+1 for the paper's N = M
 * case).  The two character streams enter from opposite ends at one
 * symbol every other cycle and march toward each other; wherever
 * characters P_i and Q_j meet, that PE computes edit-graph cell
 * (i, j).  Successive cells computed by the same PE lie on the same
 * grid diagonal, so a PE's previously computed value *is* the
 * diagonal operand of its next computation, and the left/right
 * neighbours hold the horizontal/vertical operands -- the
 * anti-diagonal fine-grain parallelism Lipton & Lopresti first
 * exploited.
 *
 * Scores live in the array as two-bit mod-4 residues
 * (rl/systolic/encoding.h); a reconstruction accumulator outside the
 * array ("extra circuitry outside of the systolic structure")
 * rebuilds the true score from the offset stream of the output PE.
 *
 * The simulation is cycle-accurate at the register level: character
 * registers shift every cycle, score residues update on compute
 * cycles, and all register-bit toggles are counted for the energy
 * model.  Unlike Race Logic, the array has no data-dependent idle
 * regions -- every PE is clocked every cycle, which is precisely the
 * energy story the paper tells.
 */

#ifndef RACELOGIC_SYSTOLIC_LIPTON_LOPRESTI_H
#define RACELOGIC_SYSTOLIC_LIPTON_LOPRESTI_H

#include <cstdint>
#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"

namespace racelogic::systolic {

/** Outcome and activity of one systolic comparison. */
struct SystolicResult {
    /** Exact global alignment cost (after reconstruction). */
    bio::Score score = 0;

    /** Clock cycles from first injection to result latch. */
    uint64_t cycles = 0;

    /** Processing elements instantiated (N + M + 1). */
    size_t peCount = 0;

    /** PE-cycles of clock delivery (= peCount * cycles: no gating). */
    uint64_t peClockCycles = 0;

    /** PE-cycles that performed a cell computation. */
    uint64_t activePeCycles = 0;

    /** Register bits that changed value, summed over the run. */
    uint64_t registerBitToggles = 0;

    /** Character-stream shift events (drives the interconnect term
     *  of the energy model: the interleaved char/score wiring). */
    uint64_t streamShiftEvents = 0;
};

/**
 * Cycle-accurate Lipton-Lopresti engine for a Fig. 2b-family cost
 * matrix: all indel weights 1, match weight 1, mismatch weight 2 or
 * infinity.  (This is the family whose bounded cell-to-cell
 * differences make the mod-4 encoding sound, and it is exactly what
 * the paper's synthesized baseline runs.)
 */
class LiptonLoprestiArray
{
  public:
    explicit LiptonLoprestiArray(bio::ScoreMatrix costs);

    /** Compare two strings; fatal() on alphabet mismatch. */
    SystolicResult align(const bio::Sequence &a,
                         const bio::Sequence &b) const;

    /**
     * Cycles a comparison of lengths (n, m) occupies the array:
     * 3 * (n + m) / 2 + 1 (rounded up to the even-padded size).
     */
    static uint64_t latencyCycles(size_t n, size_t m);

    /**
     * Initiation interval under pipelined back-to-back comparisons
     * (a new pair may enter every 2n + 2 cycles).
     */
    static uint64_t initiationInterval(size_t n, size_t m);

    /** Registered bits per PE (char regs, valid/pad, score residue). */
    static size_t registerBitsPerPe(const bio::Alphabet &alphabet);

    const bio::ScoreMatrix &matrix() const { return costs; }

  private:
    bio::ScoreMatrix costs;
    /** Uniform off-diagonal weight (2 or kScoreInfinity). */
    bio::Score mismatchWeight = bio::kScoreInfinity;
};

} // namespace racelogic::systolic

#endif // RACELOGIC_SYSTOLIC_LIPTON_LOPRESTI_H
