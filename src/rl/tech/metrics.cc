#include "rl/tech/metrics.h"

#include "rl/bio/alphabet.h"
#include "rl/util/strings.h"

namespace racelogic::tech {

DesignPoint
raceDesignPoint(const CellLibrary &lib, size_t n, RaceCase which,
                ClockMode mode)
{
    DesignPoint point;
    const char *corner = which == RaceCase::Best ? "best" : "worst";
    const char *clock = mode == ClockMode::Ungated
                            ? ""
                            : (mode == ClockMode::Gated ? " gated"
                                                        : " clockless");
    point.label = util::format("RaceLogic %s%s %s", corner, clock,
                               lib.name.c_str());
    point.latencyNs =
        static_cast<double>(raceLatencyCycles(n, which)) *
        lib.racePeriodNs;
    point.energyJ = raceAnalyticEnergy(lib, n, which, mode).totalJ();
    point.areaUm2 =
        raceGridArea(lib, n, n,
                     bio::Alphabet::dna().bitsPerSymbol()).totalUm2;
    return point;
}

DesignPoint
systolicDesignPoint(const CellLibrary &lib, size_t n,
                    const std::optional<systolic::SystolicResult> &measured)
{
    const bio::Alphabet &dna = bio::Alphabet::dna();
    DesignPoint point;
    point.label = util::format("Systolic %s", lib.name.c_str());
    point.latencyNs =
        static_cast<double>(
            systolic::LiptonLoprestiArray::latencyCycles(n, n)) *
        lib.systolicPeriodNs;
    point.energyJ =
        (measured ? systolicEnergyFromResult(lib, *measured, dna)
                  : systolicAnalyticEnergy(lib, dna, n, n))
            .totalJ();
    point.areaUm2 = systolicArea(lib, dna, n, n).totalUm2;
    return point;
}

} // namespace racelogic::tech
