/**
 * @file
 * Derived figure-of-merit metrics (paper Fig. 9).
 *
 * Combines the latency, energy, and area models into the quantities
 * the paper plots: throughput per unit area (patterns/sec/cm^2),
 * power density (W/cm^2, against the ITRS 200 W/cm^2 ceiling), and
 * the energy-delay scatter of Fig. 9c.
 */

#ifndef RACELOGIC_TECH_METRICS_H
#define RACELOGIC_TECH_METRICS_H

#include <optional>
#include <string>

#include "rl/systolic/lipton_lopresti.h"
#include "rl/tech/area_model.h"
#include "rl/tech/cell_library.h"
#include "rl/tech/energy_model.h"

namespace racelogic::tech {

/** A (latency, energy, area) operating point of one design. */
struct DesignPoint {
    std::string label;
    double latencyNs = 0.0;
    double energyJ = 0.0;
    double areaUm2 = 0.0;

    double
    areaCm2() const
    {
        return areaUm2 * 1e-8;
    }

    /** Comparisons per second (one in flight at a time). */
    double
    throughputPerSec() const
    {
        return 1e9 / latencyNs;
    }

    /** Fig. 9a: patterns/sec/cm^2. */
    double
    throughputPerSecPerCm2() const
    {
        return throughputPerSec() / areaCm2();
    }

    /** Fig. 9b: W/cm^2. */
    double
    powerDensityWPerCm2() const
    {
        return energyJ / (latencyNs * 1e-9) / areaCm2();
    }

    /** Fig. 9c iso-lines: J * s. */
    double
    energyDelayProduct() const
    {
        return energyJ * latencyNs * 1e-9;
    }
};

/**
 * The Race Logic operating point for an N x N DNA comparison.
 *
 * @param lib    Technology.
 * @param n      String length.
 * @param which  Best or worst corner.
 * @param mode   Clock configuration (ungated / gated / clockless).
 */
DesignPoint raceDesignPoint(const CellLibrary &lib, size_t n,
                            RaceCase which,
                            ClockMode mode = ClockMode::Ungated);

/**
 * The systolic-baseline operating point for an N x N DNA comparison.
 *
 * @param measured  Pass a cycle-accurate result to price actual
 *                  activity; otherwise the analytic model is used.
 */
DesignPoint systolicDesignPoint(
    const CellLibrary &lib, size_t n,
    const std::optional<systolic::SystolicResult> &measured =
        std::nullopt);

} // namespace racelogic::tech

#endif // RACELOGIC_TECH_METRICS_H
