#include "rl/tech/area_model.h"

#include <algorithm>

#include "rl/util/bitops.h"
#include "rl/util/logging.h"

namespace racelogic::tech {

namespace {

using circuit::GateType;

size_t &
slot(std::array<size_t, circuit::kGateTypeCount> &inv, GateType t)
{
    return inv[static_cast<size_t>(t)];
}

} // namespace

AreaEstimate
raceGridArea(const CellLibrary &lib, size_t n, size_t m,
             unsigned symbol_bits)
{
    rl_assert(n >= 1 && m >= 1, "grid needs at least one cell");
    std::array<size_t, circuit::kGateTypeCount> cell{};
    slot(cell, GateType::Dff) = 3;
    slot(cell, GateType::Or) = 1;
    slot(cell, GateType::And) = symbol_bits > 1 ? 2 : 1;
    slot(cell, GateType::Xnor) = symbol_bits;

    AreaEstimate est;
    est.unitAreaUm2 = lib.areaOfInventory(cell);
    est.units = n * m;

    // Support: boundary delay frame (n + m DFFs), the result counter
    // (log2 of the worst score), and symbol distribution buffers.
    std::array<size_t, circuit::kGateTypeCount> support{};
    unsigned counter_bits = util::bitsForValue(n + m);
    slot(support, GateType::Dff) = n + m + counter_bits;
    slot(support, GateType::And) = counter_bits; // counter carry chain
    slot(support, GateType::Xor) = counter_bits;
    slot(support, GateType::Buf) = (n + m) * symbol_bits;
    est.supportAreaUm2 = lib.areaOfInventory(support);

    est.totalUm2 =
        est.unitAreaUm2 * static_cast<double>(est.units) +
        est.supportAreaUm2;
    return est;
}

AreaEstimate
generalizedGridArea(
    const CellLibrary &lib, const bio::ScoreMatrix &costs, size_t n,
    size_t m,
    const std::array<size_t, circuit::kGateTypeCount> &cell_inventory)
{
    rl_assert(n >= 1 && m >= 1, "grid needs at least one cell");
    AreaEstimate est;
    est.unitAreaUm2 = lib.areaOfInventory(cell_inventory);
    est.units = n * m;

    // Boundary applicators: one gap-weight applicator per frame step.
    // Approximate each as one third of a full cell (a cell holds
    // three applicators plus the OR).
    est.supportAreaUm2 =
        est.unitAreaUm2 / 3.0 * static_cast<double>(n + m) +
        lib.gateAreaUm2[static_cast<size_t>(GateType::Dff)] *
            static_cast<double>(
                util::bitsForValue((n + m) *
                                   static_cast<uint64_t>(
                                       costs.dynamicRange())));
    est.totalUm2 =
        est.unitAreaUm2 * static_cast<double>(est.units) +
        est.supportAreaUm2;
    return est;
}

std::array<size_t, circuit::kGateTypeCount>
systolicPeInventory(const bio::Alphabet &alphabet)
{
    unsigned sym_bits = std::max(1u, alphabet.bitsPerSymbol());
    std::array<size_t, circuit::kGateTypeCount> pe{};
    // Registers: two character streams (sym + valid each), the mod-4
    // score residue, and two control/phase bits.
    slot(pe, GateType::Dff) = 2 * (sym_bits + 1) + 2 + 2;
    // Match comparator (Eq. 2 on the PE's two char registers).
    slot(pe, GateType::Xnor) = sym_bits;
    // Mod-4 offset datapath: two subtract/compare units, the +1/+2
    // increment, and the 3-way minimum.
    slot(pe, GateType::Xor) = 4;
    slot(pe, GateType::And) = 10;
    slot(pe, GateType::Or) = 4;
    slot(pe, GateType::Not) = 4;
    slot(pe, GateType::Mux) = 6;
    return pe;
}

AreaEstimate
systolicArea(const CellLibrary &lib, const bio::Alphabet &alphabet,
             size_t n, size_t m)
{
    AreaEstimate est;
    est.unitAreaUm2 = lib.areaOfInventory(systolicPeInventory(alphabet));
    est.units = n + m + 1;

    // Support: the score-reconstruction accumulator outside the
    // array (paper: "extra circuitry outside of the systolic
    // structure to recalculate the original score").
    std::array<size_t, circuit::kGateTypeCount> support{};
    unsigned acc_bits = util::bitsForValue(2 * (n + m));
    slot(support, GateType::Dff) = acc_bits;
    slot(support, GateType::Xor) = acc_bits;
    slot(support, GateType::And) = acc_bits;
    est.supportAreaUm2 = lib.areaOfInventory(support);

    est.totalUm2 =
        est.unitAreaUm2 * static_cast<double>(est.units) +
        est.supportAreaUm2;
    return est;
}

} // namespace racelogic::tech
