#include "rl/tech/energy_model.h"

#include <algorithm>
#include <cmath>

#include "rl/util/logging.h"

namespace racelogic::tech {

namespace {

constexpr double kDffsPerRaceCell = 3.0;

/** DFF clock capacitance of the whole race fabric (F). */
double
raceClockCapF(const CellLibrary &lib, size_t n)
{
    return kDffsPerRaceCell * static_cast<double>(n) *
           static_cast<double>(n) * lib.dffClockCapF;
}

} // namespace

uint64_t
raceLatencyCycles(size_t n, RaceCase which)
{
    // Identical strings ride the diagonal (weight-1 matches): n
    // cycles.  Complete mismatches must take 2n indel steps.  (The
    // paper prints N-1 / 2N-2 with N counting grid nodes per side,
    // i.e. strings of length N-1; see EXPERIMENTS.md.)
    return which == RaceCase::Best ? n : 2 * n;
}

double
paperFitEnergyPj(const CellLibrary &lib, RaceCase which, double n)
{
    // Eq. 5a-5d, units pJ.
    const bool amis = lib.name == "AMIS";
    double a3, a2;
    if (amis) {
        if (which == RaceCase::Worst) {
            a3 = 2.65;
            a2 = 6.41;
        } else {
            a3 = 1.05;
            a2 = 5.91;
        }
    } else {
        if (which == RaceCase::Worst) {
            a3 = 5.30;
            a2 = 3.76;
        } else {
            a3 = 2.10;
            a2 = 4.86;
        }
    }
    return a3 * n * n * n + a2 * n * n;
}

EnergyBreakdown
raceAnalyticEnergy(const CellLibrary &lib, size_t n, RaceCase which,
                   ClockMode mode, size_t m)
{
    rl_assert(n >= 1, "empty comparison");
    EnergyBreakdown e;
    const double cells = static_cast<double>(n) * static_cast<double>(n);
    const double cycles =
        static_cast<double>(raceLatencyCycles(n, which));

    // Data term (paper §4.2): for both corners, every non-clocked
    // capacitance in the fabric charges once per comparison.
    e.dataJ = lib.raceCellTogglesPerComparison * cells *
              lib.switchEnergyJ(lib.netCapF);

    switch (mode) {
      case ClockMode::Ungated:
        e.clockJ = raceClockCapF(lib, n) * lib.vdd * lib.vdd * cycles;
        break;
      case ClockMode::Clockless:
        break; // the asynchronous estimate drops the clock network
      case ClockMode::Gated: {
        if (m == 0) {
            m = static_cast<size_t>(
                std::llround(optimalGatingGranularity(lib, n)));
            m = std::clamp<size_t>(m, 1, n);
        }
        // Eq. 6 first term: each region is clocked only while the
        // wavefront crosses it -- 2m-2 cycles in the worst case, m
        // in the best (diagonal crossing) -- plus one wake and one
        // latch cycle at the window edges.
        double window = which == RaceCase::Worst
                            ? 2.0 * static_cast<double>(m)
                            : static_cast<double>(m) + 1.0;
        e.clockJ =
            raceClockCapF(lib, n) * lib.vdd * lib.vdd * window;
        // Eq. 6 second term: the H-tree leaves' gating cells stay
        // clocked for the entire computation.
        double regions = std::ceil(static_cast<double>(n) /
                                   static_cast<double>(m));
        regions *= regions;
        e.gatingJ = regions * cycles *
                    lib.switchEnergyJ(lib.gatingCellCapF);
        break;
      }
    }
    return e;
}

double
optimalGatingGranularity(const CellLibrary &lib, size_t n)
{
    rl_assert(n >= 2, "gating granularity needs n >= 2");
    // Minimize Eq. 6 over m:
    //   E(m) = C_clk V^2 (2m - 2) + C_gate V^2 (N/m)^2 (2N - 2)
    // with C_clk = 3 N^2 c_dff.  dE/dm = 0 gives
    //   m* = cbrt(C_gate (2N - 2) / (3 c_dff)).
    double numerator =
        lib.gatingCellCapF * (2.0 * static_cast<double>(n) - 2.0);
    double denominator = kDffsPerRaceCell * lib.dffClockCapF;
    return std::cbrt(numerator / denominator);
}

size_t
numericOptimalGranularity(const CellLibrary &lib, size_t n,
                          RaceCase which)
{
    size_t best_m = 1;
    double best_e = raceAnalyticEnergy(lib, n, which, ClockMode::Gated, 1)
                        .totalJ();
    for (size_t m = 2; m <= n; ++m) {
        double e =
            raceAnalyticEnergy(lib, n, which, ClockMode::Gated, m)
                .totalJ();
        if (e < best_e) {
            best_e = e;
            best_m = m;
        }
    }
    return best_m;
}

double
energyFromActivityJ(const CellLibrary &lib,
                    const circuit::Activity &activity)
{
    double clock = static_cast<double>(activity.clockedDffCycles) *
                   lib.switchEnergyJ(lib.dffClockCapF);
    double data = static_cast<double>(activity.netToggles) *
                  lib.switchEnergyJ(lib.netCapF);
    return clock + data;
}

EnergyBreakdown
systolicEnergyFromResult(const CellLibrary &lib,
                         const systolic::SystolicResult &result,
                         const bio::Alphabet &alphabet)
{
    EnergyBreakdown e;
    double bits_per_pe = static_cast<double>(
        systolic::LiptonLoprestiArray::registerBitsPerPe(alphabet));
    // The linear array is clocked every cycle (no gating story).
    e.clockJ = static_cast<double>(result.peClockCycles) * bits_per_pe *
               lib.switchEnergyJ(lib.dffClockCapF);
    e.dataJ =
        static_cast<double>(result.registerBitToggles) *
            lib.switchEnergyJ(lib.netCapF) +
        static_cast<double>(result.activePeCycles) *
            lib.peComputeToggles * lib.switchEnergyJ(lib.netCapF);
    e.streamJ = static_cast<double>(result.streamShiftEvents) *
                lib.switchEnergyJ(lib.streamCapF);
    return e;
}

EnergyBreakdown
systolicAnalyticEnergy(const CellLibrary &lib,
                       const bio::Alphabet &alphabet, size_t n, size_t m)
{
    using systolic::LiptonLoprestiArray;
    EnergyBreakdown e;
    double cycles =
        static_cast<double>(LiptonLoprestiArray::latencyCycles(n, m));
    double pes = static_cast<double>(n + m + 1);
    double bits_per_pe = static_cast<double>(
        LiptonLoprestiArray::registerBitsPerPe(alphabet));
    e.clockJ = cycles * pes * bits_per_pe *
               lib.switchEnergyJ(lib.dffClockCapF);
    // Measured-typical activity (see the systolic tests): chars are
    // spaced every other slot, so occupied char registers toggle
    // their valid bit nearly every cycle.
    e.dataJ = cycles * pes *
              (3.0 + lib.peComputeToggles / 4.0) *
              lib.switchEnergyJ(lib.netCapF);
    e.streamJ = cycles * pes * 1.0 * lib.switchEnergyJ(lib.streamCapF);
    return e;
}

} // namespace racelogic::tech
