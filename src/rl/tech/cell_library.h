/**
 * @file
 * Standard-cell technology models (AMIS 0.5 um and OSU 0.5 um).
 *
 * The paper's methodology maps both designs onto 0.5 um standard
 * cells with Synopsys synthesis (area) and ModelSim+PrimeTime
 * toggle-based power.  We stand in for those tools with two
 * parameter sets: per-gate areas, per-event capacitances, and clock
 * periods.  The constants are calibrated so that
 *
 *  - the race fabric's fitted energy polynomials reproduce the
 *    paper's Eq. 5 coefficients (the N^3 clock term exactly, the
 *    N^2 data term closely), and
 *  - the headline ratios (4x latency, ~3x throughput/area, ~5x
 *    power density at N = 20) emerge from the models rather than
 *    being hard-coded,
 *
 * while every individual constant stays physically plausible for a
 * 0.5 um, 5 V process.  See DESIGN.md §6 (substitutions) and
 * EXPERIMENTS.md for the calibration notes.
 */

#ifndef RACELOGIC_TECH_CELL_LIBRARY_H
#define RACELOGIC_TECH_CELL_LIBRARY_H

#include <array>
#include <string>

#include "rl/circuit/gates.h"

namespace racelogic::tech {

/** ITRS power-density ceiling cited by the paper (W/cm^2). */
constexpr double kItrsPowerDensityLimit = 200.0;

/** One 0.5 um standard-cell library's model parameters. */
struct CellLibrary {
    std::string name;

    /** Supply voltage (V). */
    double vdd = 5.0;

    /** Cell area by gate type (um^2); Input/Const are free. */
    std::array<double, circuit::kGateTypeCount> gateAreaUm2{};

    /** Clock-pin capacitance charged per delivered DFF clock (F). */
    double dffClockCapF = 0.0;

    /** Average switched capacitance per net toggle, wiring included
     *  (F) -- the C_non-clk constituent of Eq. 3. */
    double netCapF = 0.0;

    /** Clock-gating cell capacitance per multi-cell region (F):
     *  the C_gate of Eq. 6. */
    double gatingCellCapF = 0.0;

    /** Race Logic clock period (ns): a unit cell's OR->DFF path. */
    double racePeriodNs = 0.0;

    /** Systolic clock period (ns): the PE's compare/add/min path. */
    double systolicPeriodNs = 0.0;

    /** Long-wire capacitance charged per systolic stream shift (F):
     *  the interleaved character/score broadcast wiring. */
    double streamCapF = 0.0;

    /** Average comb-net toggles per PE cell-computation (used by the
     *  analytic systolic energy model; the cycle-accurate simulator
     *  counts register toggles directly). */
    double peComputeToggles = 20.0;

    /** Net toggles per race unit cell per comparison (the analytic
     *  stand-in for simulated data activity; every cell's nets
     *  charge once per comparison -- paper §4.2). */
    double raceCellTogglesPerComparison = 6.5;

    /** The AMIS 0.5 um parameter set. */
    static const CellLibrary &amis();

    /** The OSU 0.5 um parameter set. */
    static const CellLibrary &osu();

    /** Both libraries, for sweep benches. */
    static const std::array<const CellLibrary *, 2> &all();

    /** Total area of a gate inventory (um^2). */
    double areaOfInventory(
        const std::array<size_t, circuit::kGateTypeCount> &counts) const;

    /** Energy of one switched capacitance: C * Vdd^2 (J). */
    double
    switchEnergyJ(double capacitance_f) const
    {
        return capacitance_f * vdd * vdd;
    }
};

} // namespace racelogic::tech

#endif // RACELOGIC_TECH_CELL_LIBRARY_H
