/**
 * @file
 * Area models (paper Fig. 5a/5d).
 *
 * Race Logic occupies N x M unit cells plus the boundary delay
 * frame and an output cycle counter: quadratic in N with a small
 * constant.  The systolic array is N + M + 1 processing elements:
 * linear in N with a much larger constant ("the constants associated
 * with Race Logic are smaller ... due to the simplicity of the
 * fundamental cells").  Both models price explicit gate inventories
 * with the library's cell areas -- the synthesis-report substitute.
 */

#ifndef RACELOGIC_TECH_AREA_MODEL_H
#define RACELOGIC_TECH_AREA_MODEL_H

#include "rl/bio/alphabet.h"
#include "rl/bio/score_matrix.h"
#include "rl/tech/cell_library.h"

namespace racelogic::tech {

/** An area estimate decomposed into its parts. */
struct AreaEstimate {
    double unitAreaUm2 = 0.0;   ///< one cell / PE
    size_t units = 0;           ///< cells or PEs instantiated
    double supportAreaUm2 = 0.0;///< boundary frame, counters, glue
    double totalUm2 = 0.0;

    double
    totalCm2() const
    {
        return totalUm2 * 1e-8;
    }
};

/**
 * Basic race grid (Fig. 4 fabric) area for an n x m comparison over
 * `symbol_bits`-wide symbols.
 */
AreaEstimate raceGridArea(const CellLibrary &lib, size_t n, size_t m,
                          unsigned symbol_bits);

/**
 * Generalized race grid (Fig. 8 cells) area; the per-cell inventory
 * is measured from an actually-constructed cell netlist.
 */
AreaEstimate generalizedGridArea(
    const CellLibrary &lib, const bio::ScoreMatrix &costs, size_t n,
    size_t m,
    const std::array<size_t, circuit::kGateTypeCount> &cell_inventory);

/** Lipton-Lopresti array (n + m + 1 PEs) area. */
AreaEstimate systolicArea(const CellLibrary &lib,
                          const bio::Alphabet &alphabet, size_t n,
                          size_t m);

/** The PE gate inventory used by systolicArea (per PE). */
std::array<size_t, circuit::kGateTypeCount>
systolicPeInventory(const bio::Alphabet &alphabet);

} // namespace racelogic::tech

#endif // RACELOGIC_TECH_AREA_MODEL_H
