/**
 * @file
 * Energy models (paper Eq. 3-6, Fig. 5c/5f).
 *
 * Three tiers, cross-validated by tests and benches:
 *
 *  1. paperFitEnergyPj(): the literal fitted polynomials the paper
 *     publishes as Eq. 5 (pJ as a function of string length N).
 *  2. raceAnalyticEnergy(): Eq. 3/4 evaluated with the library's
 *     capacitances -- clock term C_clk * V^2 * cycles (cubic in N,
 *     since the clocked area is quadratic) plus the data term
 *     (every non-clocked net charges once per comparison).
 *     Gating (Eq. 6) and the clockless estimate modify the clock
 *     term.
 *  3. energyFromActivity(): toggle counts from the cycle-accurate
 *     gate-level simulator priced per event -- the ModelSim ->
 *     PrimeTime substitute.
 */

#ifndef RACELOGIC_TECH_ENERGY_MODEL_H
#define RACELOGIC_TECH_ENERGY_MODEL_H

#include <cstdint>

#include "rl/bio/alphabet.h"
#include "rl/circuit/sim_sync.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/tech/cell_library.h"

namespace racelogic::tech {

/** Which alignment corner is being modeled (paper Fig. 5/6). */
enum class RaceCase {
    Best,  ///< identical strings: N cycles, diagonal wavefront
    Worst, ///< complete mismatch: 2N cycles, full-square wavefront
};

/** Clock-network configuration of the race fabric. */
enum class ClockMode {
    Ungated,   ///< every DFF clocked every cycle
    Gated,     ///< §4.3 multi-cell-region gating at granularity m
    Clockless, ///< asynchronous estimate: no clock term at all
};

/** Energy decomposed by source (J). */
struct EnergyBreakdown {
    double clockJ = 0.0;   ///< DFF clock-pin charging
    double dataJ = 0.0;    ///< data-dependent net toggles
    double gatingJ = 0.0;  ///< clock-gating cell overhead (Eq. 6)
    double streamJ = 0.0;  ///< systolic stream wiring (baseline only)

    double
    totalJ() const
    {
        return clockJ + dataJ + gatingJ + streamJ;
    }
};

/** Race latency in cycles for an N x N comparison (paper §4.2). */
uint64_t raceLatencyCycles(size_t n, RaceCase which);

/** The paper's Eq. 5 fitted energy (pJ) for an N x N comparison. */
double paperFitEnergyPj(const CellLibrary &lib, RaceCase which,
                        double n);

/**
 * Eq. 3/4 analytic race energy for an N x N comparison.
 *
 * @param lib   Technology parameters.
 * @param n     String length.
 * @param which Best or worst case (sets cycles and gated windows).
 * @param mode  Clock network configuration.
 * @param m     Gating granularity (ClockMode::Gated only); 0 picks
 *              the Eq. 7 optimum.
 */
EnergyBreakdown raceAnalyticEnergy(const CellLibrary &lib, size_t n,
                                   RaceCase which,
                                   ClockMode mode = ClockMode::Ungated,
                                   size_t m = 0);

/**
 * Eq. 7: the energy-optimal gating granularity
 * m* = cbrt(C_gate * (2N - 2) / C_clk-per-cell), clamped to [1, N].
 */
double optimalGatingGranularity(const CellLibrary &lib, size_t n);

/** Integer argmin of Eq. 6 by direct search (test oracle for Eq. 7). */
size_t numericOptimalGranularity(const CellLibrary &lib, size_t n,
                                 RaceCase which = RaceCase::Worst);

/**
 * Price simulated gate-level activity (race fabric).
 *
 * Accepts activity from either simulator kernel.  The compiled
 * bit-parallel kernel (rl/circuit/compiled_sim.h) reports
 * lane-summed aggregates, so the result is then the Eq. 3 energy of
 * the whole packed batch; divide by the lane count for the
 * per-comparison average.
 */
double energyFromActivityJ(const CellLibrary &lib,
                           const circuit::Activity &activity);

/** Price a cycle-accurate systolic run. */
EnergyBreakdown systolicEnergyFromResult(
    const CellLibrary &lib, const systolic::SystolicResult &result,
    const bio::Alphabet &alphabet);

/**
 * Analytic systolic energy when no simulation is at hand: every PE
 * clocked every cycle, streams toggling at the measured-typical
 * rate.  Benches prefer systolicEnergyFromResult.
 */
EnergyBreakdown systolicAnalyticEnergy(const CellLibrary &lib,
                                       const bio::Alphabet &alphabet,
                                       size_t n, size_t m);

} // namespace racelogic::tech

#endif // RACELOGIC_TECH_ENERGY_MODEL_H
