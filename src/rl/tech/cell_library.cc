#include "rl/tech/cell_library.h"

namespace racelogic::tech {

namespace {

using circuit::GateType;

std::array<double, circuit::kGateTypeCount>
scaleAreas(double factor)
{
    std::array<double, circuit::kGateTypeCount> areas{};
    auto set = [&](GateType t, double um2) {
        areas[static_cast<size_t>(t)] = um2 * factor;
    };
    set(GateType::Const0, 0.0);
    set(GateType::Const1, 0.0);
    set(GateType::Input, 0.0);
    set(GateType::Buf, 140.0);
    set(GateType::Not, 120.0);
    set(GateType::And, 220.0);
    set(GateType::Or, 220.0);
    set(GateType::Nand, 180.0);
    set(GateType::Nor, 180.0);
    set(GateType::Xor, 340.0);
    set(GateType::Xnor, 340.0);
    set(GateType::Mux, 380.0);
    set(GateType::Dff, 900.0);
    return areas;
}

CellLibrary
makeAmis()
{
    CellLibrary lib;
    lib.name = "AMIS";
    lib.vdd = 5.0;
    lib.gateAreaUm2 = scaleAreas(1.0);
    // Calibrated so the fitted worst-case race energy reproduces the
    // paper's Eq. 5a N^3 coefficient: 3 DFFs/cell clocked 2N cycles
    // over N^2 cells -> 6 N^3 clock events; 6 * C * Vdd^2 = 2.65 pJ.
    lib.dffClockCapF = 17.67e-15;
    lib.netCapF = 40.0e-15;
    lib.gatingCellCapF = 30.0e-15;
    lib.racePeriodNs = 3.0;
    lib.systolicPeriodNs = 8.0;
    lib.streamCapF = 2.8e-12;
    return lib;
}

CellLibrary
makeOsu()
{
    CellLibrary lib;
    lib.name = "OSU";
    lib.vdd = 5.0;
    lib.gateAreaUm2 = scaleAreas(1.12);
    // Eq. 5b's N^3 coefficient is exactly twice AMIS's: the OSU
    // flip-flop presents twice the clock-pin load.
    lib.dffClockCapF = 35.33e-15;
    lib.netCapF = 40.0e-15;
    lib.gatingCellCapF = 30.0e-15;
    lib.racePeriodNs = 3.3;
    lib.systolicPeriodNs = 8.8;
    lib.streamCapF = 2.8e-12;
    return lib;
}

} // namespace

const CellLibrary &
CellLibrary::amis()
{
    static const CellLibrary lib = makeAmis();
    return lib;
}

const CellLibrary &
CellLibrary::osu()
{
    static const CellLibrary lib = makeOsu();
    return lib;
}

const std::array<const CellLibrary *, 2> &
CellLibrary::all()
{
    static const std::array<const CellLibrary *, 2> libs{&amis(), &osu()};
    return libs;
}

double
CellLibrary::areaOfInventory(
    const std::array<size_t, circuit::kGateTypeCount> &counts) const
{
    double total = 0.0;
    for (size_t t = 0; t < circuit::kGateTypeCount; ++t)
        total += gateAreaUm2[t] * static_cast<double>(counts[t]);
    return total;
}

} // namespace racelogic::tech
