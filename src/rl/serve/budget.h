/**
 * @file
 * MemoryBudget: the daemon's latching brownout watermark.
 *
 * The serving stack's resident memory is dominated by two pools the
 * kernels grow on demand and never give back on their own: shard plan
 * caches (api::RaceEngine) and the per-thread kernel scratch arenas
 * (core::ScratchRegistry).  The budget turns their combined byte
 * count into a deterministic circuit breaker:
 *
 *     usage >= high  ->  brownout ENTERED  (latched)
 *     usage <= low   ->  brownout EXITED
 *
 * The gap between the watermarks is deliberate hysteresis: without
 * it, usage oscillating around one threshold would flap the daemon in
 * and out of brownout every janitor tick.  While latched, the server
 * halves admission depth, sheds batch-class work at admission with a
 * typed ResourceExhausted, and reclaims (scratch shrink-to-fit, LRU
 * plan eviction) until usage is back under `low` -- a graceful
 * degradation the load balancer can observe via Health and the
 * rl_serve_brownout gauge, instead of an OOM kill it cannot.
 *
 * observe() is called from one thread (the janitor); browned() is
 * readable from any (Health answers inline on connection threads).
 */

#ifndef RACELOGIC_SERVE_BUDGET_H
#define RACELOGIC_SERVE_BUDGET_H

#include <atomic>
#include <cstddef>

namespace racelogic::serve {

/** Latching high/low-watermark state machine over a byte budget. */
class MemoryBudget
{
  public:
    /** What one usage sample did to the latch. */
    enum class Transition {
        None,    ///< state unchanged
        Entered, ///< crossed the high watermark; brownout latched
        Exited,  ///< dropped to the low watermark; latch released
    };

    /**
     * @param highBytes  Brownout trips at this usage; 0 disables the
     *                   budget entirely (observe() never latches).
     * @param lowBytes   The latch releases at this usage; clamped to
     *                   highBytes.  0 picks 3/4 of highBytes.
     */
    explicit MemoryBudget(size_t highBytes, size_t lowBytes = 0);

    /** True when no budget was configured. */
    bool unlimited() const { return highWatermark == 0; }

    /** Feed one usage sample through the latch (janitor thread). */
    Transition observe(size_t usageBytes);

    /** Current latch state (safe from any thread). */
    bool browned() const
    {
        return latched.load(std::memory_order_acquire);
    }

    size_t high() const { return highWatermark; }
    size_t low() const { return lowWatermark; }

  private:
    const size_t highWatermark;
    const size_t lowWatermark;
    std::atomic<bool> latched{false};
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_BUDGET_H
