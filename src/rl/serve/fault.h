/**
 * @file
 * Deterministic fault injection for the serve socket layer.
 *
 * A FaultInjector, once installed, sits underneath the socket helpers
 * in rl/serve/socket.h: every readExact/writeAll syscall consults it
 * and may be capped to a short transfer, delayed, or severed outright
 * (the fd is shutdown() at a per-connection byte offset drawn from
 * the injector's seeded generator).  All randomness comes from one
 * mt19937_64 seeded by FaultConfig::seed, so a chaos schedule replays
 * bit-identically: same seed, same faults.
 *
 * The injector is for tests and tools ONLY.  Production servers never
 * install one; when none is installed the socket helpers pay a single
 * relaxed atomic load per syscall.  Install/uninstall must not race
 * in-flight I/O -- install before spinning up traffic, uninstall
 * after joining it.
 */

#ifndef RACELOGIC_SERVE_FAULT_H
#define RACELOGIC_SERVE_FAULT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <random>
#include <unordered_map>

namespace racelogic::serve {

/** Knobs for one deterministic fault schedule. */
struct FaultConfig {
    /** Seeds every draw the injector makes. */
    uint64_t seed = 1;

    /**
     * Probability that one syscall is capped to a 1..8 byte transfer
     * (exercises the reassembly loops in readExact/writeAll).
     */
    double shortIoProbability = 0.0;

    /** Probability that one syscall is preceded by an injected delay. */
    double delayProbability = 0.0;

    /** Upper bound on the injected delay (microseconds). */
    uint32_t delayMaxMicros = 0;

    /**
     * Probability, drawn once per fd at first touch, that the
     * connection is severed (shutdown(SHUT_RDWR)) once its cumulative
     * byte count reaches an offset drawn from
     * [dropMinBytes, dropMaxBytes].
     */
    double dropProbability = 0.0;
    uint64_t dropMinBytes = 0;
    uint64_t dropMaxBytes = 4096;
};

/** What the socket helper must do for the syscall it is about to make. */
struct FaultAction {
    /** Cap the transfer to this many bytes (0 = no cap). */
    size_t chunkCap = 0;

    /** The fd was just severed; the syscall will see EOF/ECONNRESET. */
    bool dropped = false;
};

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Consulted by the socket helpers before each recv/send of up to
     * `want` bytes on `fd`.  May sleep (injected delay) and may sever
     * the fd.  Thread-safe.
     */
    FaultAction beforeIo(int fd, size_t want, bool isWrite);

    /** Byte accounting after a successful transfer. */
    void afterIo(int fd, size_t transferred);

    /**
     * Drop per-fd state when a descriptor is closed, so a recycled fd
     * number starts a fresh byte count (ScopedFd calls this).
     */
    void forgetFd(int fd);

    /** Injection counters, for asserting a schedule actually bit. */
    struct Stats {
        uint64_t shortIos = 0;
        uint64_t delays = 0;
        uint64_t drops = 0;
    };
    Stats stats() const;

    /**
     * Install (or, with nullptr, uninstall) the process-global
     * injector the socket helpers consult.  The caller keeps the
     * injector alive until after uninstalling it and joining all
     * threads doing I/O.
     */
    static void install(FaultInjector *injector) noexcept;

    /** The currently installed injector (nullptr when inert). */
    static FaultInjector *installed() noexcept;

  private:
    struct FdState {
        uint64_t bytes = 0;
        uint64_t dropAt = UINT64_MAX; ///< UINT64_MAX: never sever
        bool severed = false;
    };

    FdState &touch(int fd);

    mutable std::mutex mutex;
    FaultConfig cfg;
    std::mt19937_64 rng;
    std::unordered_map<int, FdState> perFd;
    Stats counters;
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_FAULT_H
