#include "rl/serve/socket.h"

#include <cerrno>
#include <climits>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "rl/serve/fault.h"

namespace racelogic::serve {

void
ScopedFd::reset(int fd)
{
    if (fd_ >= 0) {
        // A recycled fd number must not inherit the old connection's
        // injected-fault byte count.
        if (FaultInjector *injector = FaultInjector::installed())
            injector->forgetFd(fd_);
        ::close(fd_);
    }
    fd_ = fd;
}

IoDeadline
deadlineAfterMs(int64_t timeoutMs)
{
    if (timeoutMs < 0)
        return kNoDeadline;
    return IoClock::now() + std::chrono::milliseconds(timeoutMs);
}

const char *
ioStatusName(IoStatus status)
{
    switch (status) {
    case IoStatus::Ok:
        return "ok";
    case IoStatus::Eof:
        return "eof";
    case IoStatus::Timeout:
        return "timeout";
    case IoStatus::Error:
        return "error";
    }
    return "unknown";
}

namespace {

/**
 * Milliseconds left until `deadline` as a poll() timeout: -1 for
 * kNoDeadline, 0 when already expired, rounded up so poll never
 * returns early and spins.
 */
int
pollTimeout(IoDeadline deadline)
{
    if (deadline == kNoDeadline)
        return -1;
    const IoClock::time_point now = IoClock::now();
    if (now >= deadline)
        return 0;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now)
                          .count() +
                      1;
    return left > INT_MAX ? INT_MAX : static_cast<int>(left);
}

/**
 * Wait for `events` on `fd` until `deadline`.  Ok: ready (including
 * POLLERR/POLLHUP -- the following syscall surfaces the condition);
 * Timeout: deadline hit first; Error: poll itself failed.
 */
IoStatus
waitReady(int fd, short events, IoDeadline deadline)
{
    for (;;) {
        const int timeout = pollTimeout(deadline);
        if (timeout == 0)
            return IoStatus::Timeout;
        pollfd entry{};
        entry.fd = fd;
        entry.events = events;
        const int rc = ::poll(&entry, 1, timeout);
        if (rc > 0)
            return IoStatus::Ok;
        if (rc == 0)
            return IoStatus::Timeout;
        if (errno != EINTR)
            return IoStatus::Error;
    }
}

} // namespace

ScopedFd
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return ScopedFd();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return ScopedFd();
    // A stale socket file from a crashed daemon would make bind()
    // fail with EADDRINUSE even though nobody is listening.
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return ScopedFd();
    if (::listen(fd.get(), SOMAXCONN) != 0)
        return ScopedFd();
    return fd;
}

ScopedFd
listenTcp(uint16_t port, uint16_t &boundPort)
{
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return ScopedFd();
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return ScopedFd();
    if (::listen(fd.get(), SOMAXCONN) != 0)
        return ScopedFd();

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        return ScopedFd();
    boundPort = ntohs(bound.sin_port);
    return fd;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

namespace {

/**
 * Finish a deadline-bounded connect: start it non-blocking, wait for
 * writability, then collect the outcome from SO_ERROR (the
 * non-blocking connect protocol -- the connect() return itself only
 * says "in progress").  The fd stays non-blocking on success.
 */
ScopedFd
connectWithDeadline(ScopedFd fd, const sockaddr *addr, socklen_t addrLen,
                    int64_t timeoutMs)
{
    if (!setNonBlocking(fd.get()))
        return ScopedFd();
    const int rc = ::connect(fd.get(), addr, addrLen);
    if (rc == 0)
        return fd;
    if (errno != EINPROGRESS && errno != EINTR && errno != EAGAIN)
        return ScopedFd();

    const IoDeadline deadline = deadlineAfterMs(timeoutMs);
    const IoStatus ready = waitReady(fd.get(), POLLOUT, deadline);
    if (ready != IoStatus::Ok) {
        if (ready == IoStatus::Timeout)
            errno = ETIMEDOUT;
        return ScopedFd();
    }

    int err = 0;
    socklen_t errLen = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &errLen) != 0)
        return ScopedFd();
    if (err != 0) {
        errno = err;
        return ScopedFd();
    }
    return fd;
}

} // namespace

ScopedFd
connectUnix(const std::string &path, int64_t timeoutMs)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return ScopedFd();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return ScopedFd();
    return connectWithDeadline(std::move(fd),
                               reinterpret_cast<const sockaddr *>(&addr),
                               sizeof(addr), timeoutMs);
}

ScopedFd
connectTcp(uint16_t port, int64_t timeoutMs)
{
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return ScopedFd();

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return connectWithDeadline(std::move(fd),
                               reinterpret_cast<const sockaddr *>(&addr),
                               sizeof(addr), timeoutMs);
}

IoStatus
readExact(int fd, void *buffer, size_t n, IoDeadline deadline)
{
    uint8_t *out = static_cast<uint8_t *>(buffer);
    size_t got = 0;
    while (got < n) {
        const IoStatus ready = waitReady(fd, POLLIN, deadline);
        if (ready != IoStatus::Ok)
            return ready;

        size_t want = n - got;
        if (FaultInjector *injector = FaultInjector::installed()) {
            const FaultAction act = injector->beforeIo(fd, want, false);
            if (act.chunkCap > 0 && act.chunkCap < want)
                want = act.chunkCap;
        }

        // MSG_DONTWAIT: poll said readable, but never risk blocking
        // (works uniformly for blocking and non-blocking fds).
        const ssize_t rc = ::recv(fd, out + got, want, MSG_DONTWAIT);
        if (rc > 0) {
            got += static_cast<size_t>(rc);
            if (FaultInjector *injector = FaultInjector::installed())
                injector->afterIo(fd, static_cast<size_t>(rc));
            continue;
        }
        if (rc == 0)
            return IoStatus::Eof;
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        return IoStatus::Error;
    }
    return IoStatus::Ok;
}

IoStatus
writeAll(int fd, const void *buffer, size_t n, IoDeadline deadline)
{
    const uint8_t *in = static_cast<const uint8_t *>(buffer);
    size_t sent = 0;
    while (sent < n) {
        const IoStatus ready = waitReady(fd, POLLOUT, deadline);
        if (ready != IoStatus::Ok)
            return ready;

        size_t want = n - sent;
        if (FaultInjector *injector = FaultInjector::installed()) {
            const FaultAction act = injector->beforeIo(fd, want, true);
            if (act.chunkCap > 0 && act.chunkCap < want)
                want = act.chunkCap;
        }

        const ssize_t rc =
            ::send(fd, in + sent, want, MSG_NOSIGNAL | MSG_DONTWAIT);
        if (rc > 0) {
            sent += static_cast<size_t>(rc);
            if (FaultInjector *injector = FaultInjector::installed())
                injector->afterIo(fd, static_cast<size_t>(rc));
            continue;
        }
        if (rc < 0 &&
            (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
            continue;
        return IoStatus::Error;
    }
    return IoStatus::Ok;
}

bool
readExact(int fd, void *buffer, size_t n)
{
    return readExact(fd, buffer, n, kNoDeadline) == IoStatus::Ok;
}

bool
writeAll(int fd, const void *buffer, size_t n)
{
    return writeAll(fd, buffer, n, kNoDeadline) == IoStatus::Ok;
}

} // namespace racelogic::serve
