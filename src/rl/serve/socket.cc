#include "rl/serve/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace racelogic::serve {

void
ScopedFd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

ScopedFd
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return ScopedFd();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return ScopedFd();
    // A stale socket file from a crashed daemon would make bind()
    // fail with EADDRINUSE even though nobody is listening.
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return ScopedFd();
    if (::listen(fd.get(), SOMAXCONN) != 0)
        return ScopedFd();
    return fd;
}

ScopedFd
listenTcp(uint16_t port, uint16_t &boundPort)
{
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return ScopedFd();
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return ScopedFd();
    if (::listen(fd.get(), SOMAXCONN) != 0)
        return ScopedFd();

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        return ScopedFd();
    boundPort = ntohs(bound.sin_port);
    return fd;
}

ScopedFd
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return ScopedFd();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return ScopedFd();
    int rc;
    do {
        rc = ::connect(fd.get(),
                       reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        return ScopedFd();
    return fd;
}

ScopedFd
connectTcp(uint16_t port)
{
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return ScopedFd();

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc;
    do {
        rc = ::connect(fd.get(),
                       reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        return ScopedFd();
    return fd;
}

bool
readExact(int fd, void *buffer, size_t n)
{
    uint8_t *out = static_cast<uint8_t *>(buffer);
    size_t got = 0;
    while (got < n) {
        ssize_t rc = ::recv(fd, out + got, n - got, 0);
        if (rc > 0) {
            got += static_cast<size_t>(rc);
            continue;
        }
        if (rc < 0 && errno == EINTR)
            continue;
        return false; // EOF or hard error: the conversation is over
    }
    return true;
}

bool
writeAll(int fd, const void *buffer, size_t n)
{
    const uint8_t *in = static_cast<const uint8_t *>(buffer);
    size_t sent = 0;
    while (sent < n) {
        ssize_t rc = ::send(fd, in + sent, n - sent, MSG_NOSIGNAL);
        if (rc > 0) {
            sent += static_cast<size_t>(rc);
            continue;
        }
        if (rc < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace racelogic::serve
