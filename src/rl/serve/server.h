/**
 * @file
 * AlignServer: the racelogic::serve daemon core.
 *
 * A long-lived alignment service around api::RaceEngine: connection
 * threads decode length-prefixed frames (rl/serve/wire.h), admission
 * control bounces anything oversized, undecodable, or beyond the
 * bounded queue's depth with a typed status, and a dispatcher drains
 * admitted jobs onto a util::ThreadPool, grouped by engine shard so
 * every plan-cache hit stays shard-local (rl/serve/shard.h).
 *
 * Stats and Ping requests are answered inline on the connection
 * thread -- the metrics endpoint must work *because* the daemon is
 * saturated, not when the queue gets around to it.
 *
 * Shutdown is a drain, not an abort: stop() parts with the listeners,
 * lets every admitted request finish, flushes its response, and only
 * then joins the pool.  tools/raceserved.cc wires this to SIGTERM.
 */

#ifndef RACELOGIC_SERVE_SERVER_H
#define RACELOGIC_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rl/api/api.h"
#include "rl/core/kernel_counters.h"
#include "rl/pangraph/variation_graph.h"
#include "rl/serve/budget.h"
#include "rl/serve/queue.h"
#include "rl/serve/shard.h"
#include "rl/serve/socket.h"
#include "rl/serve/wire.h"
#include "rl/telemetry/registry.h"
#include "rl/telemetry/trace.h"
#include "rl/util/thread_pool.h"

namespace racelogic::serve {

/** Everything an AlignServer needs to start. */
struct ServerConfig {
    /** Unix-domain socket path; empty disables the Unix listener. */
    std::string unixPath;

    /**
     * Loopback TCP port; 0 asks the kernel for an ephemeral port
     * (query it with AlignServer::port()).  Negative disables the
     * TCP listener.
     */
    int tcpPort = -1;

    /** Worker threads == engine shards. */
    size_t workers = 4;

    /** Admission bound on outstanding (queued + inflight) requests. */
    size_t queueDepth = 64;

    /** Admission bound while browned out (0 = half of queueDepth). */
    size_t brownoutDepth = 0;

    /**
     * Daemon-wide memory budget in bytes over plan caches + kernel
     * scratch arenas (0 = unlimited).  Crossing it latches brownout:
     * admission depth drops to brownoutDepth, batch-class work sheds
     * with typed ResourceExhausted, and the janitor reclaims (scratch
     * shrink-to-fit, LRU plan eviction) until usage is back under the
     * low watermark (3/4 of the budget).
     */
    size_t memBudgetBytes = 0;

    /** Janitor tick: budget evaluation + idle scratch shrink (ms). */
    int64_t janitorIntervalMs = 50;

    /**
     * A worker's thread-local scratch arenas are shrunk after this
     * much idle time (ms; 0 disables the idle shrink -- brownout
     * reclaim still shrinks them).
     */
    int64_t scratchIdleMs = 2000;

    /** Max jobs the dispatcher moves onto the pool per drain. */
    size_t drainBatchMax = 16;

    /** Frame payload ceiling (wire-level admission). */
    uint32_t maxFrameBytes = kDefaultMaxFrameBytes;

    /** Grid-cell ceiling per solve ((|a|+1)*(|b|+1); Dtw likewise). */
    uint64_t maxGridCells = 1ull << 22;

    /** Reads admitted per MapReads batch. */
    size_t maxBatchReads = 256;

    /**
     * Idle timeout waiting for the *next* request header on an open
     * connection (ms; 0 = wait forever).  An idle peer is hung up on;
     * a well-behaved client simply reconnects.
     */
    int64_t idleTimeoutMs = 0;

    /**
     * Mid-frame timeout (ms; 0 = wait forever): bounds reading the
     * rest of a frame whose header already arrived (slow-loris) and
     * writing a response to a peer that stopped reading (stalled
     * receive window).  Tripping it severs the connection -- framing
     * is gone either way -- so one bad peer costs at most ioTimeoutMs
     * of one thread's time, never a pinned reader or dispatcher.
     */
    int64_t ioTimeoutMs = 10000;

    /**
     * Test hook: SO_SNDBUF on accepted connections (0 = kernel
     * default).  A small buffer makes a stopped-reader peer hit the
     * write timeout with small responses, which is what the
     * slow-peer regression tests need.
     */
    int sndbufBytes = 0;

    /**
     * Preloaded pangenome for GraphAlign/MapReads (null rejects those
     * tags with BadRequest) and the matrix reads race against it.
     */
    std::shared_ptr<const pangraph::VariationGraph> graph;
    std::optional<bio::ScoreMatrix> graphMatrix;

    /** Engine configuration cloned into every shard. */
    api::EngineConfig engine;

    /**
     * Register and record telemetry (request counters, per-stage
     * latency histograms, kernel profiling counters).  Off skips
     * registration entirely -- every record site is a null-pointer
     * check -- which is what the BM_ServeSaturation telemetry-overhead
     * comparison measures.  The Metrics request still answers (with
     * only the synthetic queue/shard series) so scrapes never 404.
     */
    bool telemetry = true;

    /**
     * Slow-request log threshold in milliseconds (0 disables): any
     * request whose end-to-end latency reaches it earns one
     * structured warn line with its per-stage breakdown.
     */
    int64_t slowMs = 0;

    /**
     * Test hook: called with every finalized RequestTrace (inline
     * answers included), after the response was written, on the
     * thread that served the request.  Must be thread-safe.
     */
    std::function<void(const telemetry::RequestTrace &)> traceHook;
};

/**
 * The serving daemon.  start() spawns the accept/dispatch machinery
 * and returns; stop() drains and joins everything.  One start/stop
 * cycle per instance.
 */
class AlignServer
{
  public:
    explicit AlignServer(ServerConfig config);
    ~AlignServer();

    AlignServer(const AlignServer &) = delete;
    AlignServer &operator=(const AlignServer &) = delete;

    /** Bind listeners and spawn threads; false if no listener bound. */
    bool start();

    /** Drain admitted work, flush responses, join all threads. */
    void stop();

    /** The bound TCP port (0 when the TCP listener is disabled). */
    uint16_t port() const { return boundPort; }

    /** Coherent admission counters (safe from any thread). */
    QueueStats queueStats() const { return queue.stats(); }

    /** Current brownout latch state (safe from any thread). */
    bool brownedOut() const { return budget.browned(); }

    /** The graph registry's current version (0 = none loaded). */
    uint64_t graphVersion() const { return shards.graphVersion(); }

    /**
     * Hot-swap the preloaded pangenome without dropping a request --
     * the SIGHUP reload path (tools/raceserved.cc re-parses its --gfa
     * file and calls this; tests call it directly).
     *
     * The new graph is validated and compiled on the *calling*
     * thread (never the dispatcher), then swapped into the versioned
     * registry under the build mutex.  In-flight and queued solves
     * keep racing the snapshot they admitted with -- pinned by
     * shared_ptr, bit-identical results -- while new admissions see
     * the new version.  Graph-keyed plans of the old graph are
     * evicted; grid-family plans survive.
     *
     * Any failure (null graph, alphabet mismatch with the serving
     * alphabet, uncompilable graph/matrix) leaves the old graph
     * serving and returns the typed reason.
     */
    racelogic::Status
    reloadGraph(std::shared_ptr<const pangraph::VariationGraph> graph,
                std::optional<bio::ScoreMatrix> matrix = std::nullopt);

    /** Coherent per-shard counters (safe from any thread). */
    std::vector<ShardStatsWire> shardStats() const
    {
        return shards.statsSnapshot();
    }

    /**
     * Full telemetry snapshot: every registered series plus synthetic
     * rl_queue_* / rl_shard<i>_* series derived from the same
     * QueueStats and shard counters Stats reports, so the two
     * endpoints can never disagree.  This is the Metrics request's
     * body and the --metrics-dump exposition source.
     */
    telemetry::Snapshot metricsSnapshot() const;

  private:
    /** One accepted connection: fd plus a reply-serializing mutex
     *  shared between its reader thread and the worker pool. */
    struct Connection {
        ScopedFd fd;
        std::mutex writeMutex;
    };

    /**
     * Handles to every registered telemetry series; all null when
     * cfg.telemetry is off, so each record site is one branch.
     */
    struct MetricSet {
        telemetry::Counter *requests = nullptr; ///< every decoded frame
        telemetry::Counter *solvedOk = nullptr; ///< raced, replied Ok
        telemetry::Counter *rejected = nullptr; ///< typed bounces
        telemetry::Counter *shed = nullptr;     ///< shed while queued
        telemetry::Counter *inlineAnswers = nullptr; ///< stats/ping/metrics
        telemetry::Counter *slow = nullptr;     ///< over cfg.slowMs
        telemetry::Counter *kernelEvents = nullptr;
        telemetry::Counter *kernelBuckets = nullptr;
        telemetry::Counter *kernelLanes = nullptr;
        telemetry::Counter *kernelCancels = nullptr;
        telemetry::Counter *kernelHorizonAborts = nullptr;
        telemetry::Gauge *scratchHighWater = nullptr;
        telemetry::Histogram *stageRead = nullptr;
        telemetry::Histogram *stageDecode = nullptr;
        telemetry::Histogram *stageAdmit = nullptr;
        telemetry::Histogram *stageQueueWait = nullptr;
        telemetry::Histogram *stageDispatch = nullptr;
        telemetry::Histogram *stageSolve = nullptr;
        telemetry::Histogram *stageEncode = nullptr;
        telemetry::Histogram *stageWrite = nullptr;
        telemetry::Histogram *request = nullptr; ///< raced e2e latency
    };

    void acceptLoop(int listenFd);
    void connectionLoop(std::shared_ptr<Connection> conn);
    void dispatchLoop();

    /**
     * Periodic housekeeping off the dispatcher thread: samples plan
     * cache + scratch arena bytes into the memory budget, drives the
     * brownout latch (admission depth, batch shedding, reclaim), and
     * shrinks idle workers' scratch arenas.
     */
    void janitorLoop();

    /** One budget evaluation + reclaim pass (janitor tick body). */
    void evaluateBudget();

    /**
     * Serialize + frame + write one response under the write lock.
     * A non-null `trace` gets its encodeDone / writeDone stamps.
     */
    void reply(Connection &conn, const Response &response,
               telemetry::RequestTrace *trace = nullptr);

    /**
     * Handle one decoded request (admit, inline-answer, or bounce).
     * `arrival` is the frame's receipt instant -- the anchor the
     * request's relative deadlineMs counts from.  `trace` carries the
     * read/decode stamps the connection loop already took.
     */
    void handleRequest(const std::shared_ptr<Connection> &conn,
                       Request request,
                       std::chrono::steady_clock::time_point arrival,
                       telemetry::RequestTrace trace);

    /** Register every series (constructor, cfg.telemetry only). */
    void registerMetrics();

    /**
     * Finalize `trace`, feed the stage histograms (raced requests
     * only -- their count stays coherent with the queue's completed
     * ledger), emit the slow-request line, and call the trace hook.
     */
    void recordTrace(telemetry::RequestTrace &trace, size_t lane,
                     bool raced);

    /** Fold one job's kernel counters into the rl_kernel_* series. */
    void drainKernelCounters(const core::KernelCounters &kernel,
                             size_t lane);

    const ServerConfig cfg;

    EngineShards shards;
    RequestQueue queue;
    util::ThreadPool pool;
    MemoryBudget budget;

    /** Alphabet requests decode against; fixed across reloads. */
    const bio::Alphabet serveAlphabet;

    std::chrono::steady_clock::time_point startTime{};

    telemetry::Registry registry;
    MetricSet metrics;

    ScopedFd unixListener;
    ScopedFd tcpListener;
    uint16_t boundPort = 0;

    std::atomic<bool> stopping{false};
    std::vector<std::thread> acceptThreads;
    std::thread dispatcher;

    std::thread janitor;
    std::mutex janitorMutex;
    std::condition_variable janitorCv;

    std::mutex connectionsMutex;
    std::vector<std::shared_ptr<Connection>> connections;
    std::vector<std::thread> connectionThreads;

    bool started = false;
    bool stopped = false;
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_SERVER_H
