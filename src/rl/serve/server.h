/**
 * @file
 * AlignServer: the racelogic::serve daemon core.
 *
 * A long-lived alignment service around api::RaceEngine: connection
 * threads decode length-prefixed frames (rl/serve/wire.h), admission
 * control bounces anything oversized, undecodable, or beyond the
 * bounded queue's depth with a typed status, and a dispatcher drains
 * admitted jobs onto a util::ThreadPool, grouped by engine shard so
 * every plan-cache hit stays shard-local (rl/serve/shard.h).
 *
 * Stats and Ping requests are answered inline on the connection
 * thread -- the metrics endpoint must work *because* the daemon is
 * saturated, not when the queue gets around to it.
 *
 * Shutdown is a drain, not an abort: stop() parts with the listeners,
 * lets every admitted request finish, flushes its response, and only
 * then joins the pool.  tools/raceserved.cc wires this to SIGTERM.
 */

#ifndef RACELOGIC_SERVE_SERVER_H
#define RACELOGIC_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rl/api/api.h"
#include "rl/pangraph/variation_graph.h"
#include "rl/serve/queue.h"
#include "rl/serve/shard.h"
#include "rl/serve/socket.h"
#include "rl/serve/wire.h"
#include "rl/util/thread_pool.h"

namespace racelogic::serve {

/** Everything an AlignServer needs to start. */
struct ServerConfig {
    /** Unix-domain socket path; empty disables the Unix listener. */
    std::string unixPath;

    /**
     * Loopback TCP port; 0 asks the kernel for an ephemeral port
     * (query it with AlignServer::port()).  Negative disables the
     * TCP listener.
     */
    int tcpPort = -1;

    /** Worker threads == engine shards. */
    size_t workers = 4;

    /** Admission bound on outstanding (queued + inflight) requests. */
    size_t queueDepth = 64;

    /** Max jobs the dispatcher moves onto the pool per drain. */
    size_t drainBatchMax = 16;

    /** Frame payload ceiling (wire-level admission). */
    uint32_t maxFrameBytes = kDefaultMaxFrameBytes;

    /** Grid-cell ceiling per solve ((|a|+1)*(|b|+1); Dtw likewise). */
    uint64_t maxGridCells = 1ull << 22;

    /** Reads admitted per MapReads batch. */
    size_t maxBatchReads = 256;

    /**
     * Idle timeout waiting for the *next* request header on an open
     * connection (ms; 0 = wait forever).  An idle peer is hung up on;
     * a well-behaved client simply reconnects.
     */
    int64_t idleTimeoutMs = 0;

    /**
     * Mid-frame timeout (ms; 0 = wait forever): bounds reading the
     * rest of a frame whose header already arrived (slow-loris) and
     * writing a response to a peer that stopped reading (stalled
     * receive window).  Tripping it severs the connection -- framing
     * is gone either way -- so one bad peer costs at most ioTimeoutMs
     * of one thread's time, never a pinned reader or dispatcher.
     */
    int64_t ioTimeoutMs = 10000;

    /**
     * Test hook: SO_SNDBUF on accepted connections (0 = kernel
     * default).  A small buffer makes a stopped-reader peer hit the
     * write timeout with small responses, which is what the
     * slow-peer regression tests need.
     */
    int sndbufBytes = 0;

    /**
     * Preloaded pangenome for GraphAlign/MapReads (null rejects those
     * tags with BadRequest) and the matrix reads race against it.
     */
    std::shared_ptr<const pangraph::VariationGraph> graph;
    std::optional<bio::ScoreMatrix> graphMatrix;

    /** Engine configuration cloned into every shard. */
    api::EngineConfig engine;
};

/**
 * The serving daemon.  start() spawns the accept/dispatch machinery
 * and returns; stop() drains and joins everything.  One start/stop
 * cycle per instance.
 */
class AlignServer
{
  public:
    explicit AlignServer(ServerConfig config);
    ~AlignServer();

    AlignServer(const AlignServer &) = delete;
    AlignServer &operator=(const AlignServer &) = delete;

    /** Bind listeners and spawn threads; false if no listener bound. */
    bool start();

    /** Drain admitted work, flush responses, join all threads. */
    void stop();

    /** The bound TCP port (0 when the TCP listener is disabled). */
    uint16_t port() const { return boundPort; }

    /** Coherent admission counters (safe from any thread). */
    QueueStats queueStats() const { return queue.stats(); }

    /** Coherent per-shard counters (safe from any thread). */
    std::vector<ShardStatsWire> shardStats() const
    {
        return shards.statsSnapshot();
    }

  private:
    /** One accepted connection: fd plus a reply-serializing mutex
     *  shared between its reader thread and the worker pool. */
    struct Connection {
        ScopedFd fd;
        std::mutex writeMutex;
    };

    void acceptLoop(int listenFd);
    void connectionLoop(std::shared_ptr<Connection> conn);
    void dispatchLoop();

    /** Serialize + frame + write one response under the write lock. */
    void reply(Connection &conn, const Response &response);

    /**
     * Handle one decoded request (admit, inline-answer, or bounce).
     * `arrival` is the frame's receipt instant -- the anchor the
     * request's relative deadlineMs counts from.
     */
    void handleRequest(const std::shared_ptr<Connection> &conn,
                       Request request,
                       std::chrono::steady_clock::time_point arrival);

    const ServerConfig cfg;

    EngineShards shards;
    RequestQueue queue;
    util::ThreadPool pool;

    ScopedFd unixListener;
    ScopedFd tcpListener;
    uint16_t boundPort = 0;

    std::atomic<bool> stopping{false};
    std::vector<std::thread> acceptThreads;
    std::thread dispatcher;

    std::mutex connectionsMutex;
    std::vector<std::shared_ptr<Connection>> connections;
    std::vector<std::thread> connectionThreads;

    bool started = false;
    bool stopped = false;
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_SERVER_H
