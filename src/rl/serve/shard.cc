#include "rl/serve/shard.h"

#include <functional>
#include <string>

#include "rl/util/logging.h"

namespace racelogic::serve {

namespace {

/** Kinds with a reusable cached plan (grid family + GraphAlign). */
bool
planFamilyKind(api::ProblemKind kind)
{
    return kind == api::ProblemKind::PairwiseAlignment ||
           kind == api::ProblemKind::GeneralizedAlignment ||
           kind == api::ProblemKind::ThresholdScreen ||
           kind == api::ProblemKind::GraphAlign;
}

} // namespace

EngineShards::EngineShards(size_t shardCount,
                           const api::EngineConfig &config)
{
    rl_assert(shardCount > 0, "at least one engine shard is required");
    api::EngineConfig shardConfig = config;
    // Each shard solves serially on its dispatcher-assigned pool
    // thread; parallelism comes from sharding, and a nested per-shard
    // pool would oversubscribe the host.
    shardConfig.workerThreads = 1;
    shards.reserve(shardCount);
    for (size_t i = 0; i < shardCount; ++i)
        shards.push_back(std::make_unique<Shard>(shardConfig));
}

size_t
EngineShards::shardFor(const api::RaceProblem &problem) const
{
    // Route by plan key: same fabric shape -> same shard, so a warm
    // shape is always a shard-local hit.  Per-instance kinds spread
    // by their content hash, which is as good as round-robin.
    return std::hash<std::string>{}(problem.shapeKey()) % shards.size();
}

api::RaceResult
EngineShards::solveOn(size_t shard, const api::RaceProblem &problem)
{
    rl_assert(shard < shards.size(), "shard index out of range");
    Shard &s = *shards[shard];
    // Uncontended on the hot path (the dispatcher serializes
    // same-shard jobs); keeps reload eviction and brownout reclaim
    // off a live solve's plan cache.
    std::lock_guard<std::mutex> engineLock(s.engineMutex);

    if (planFamilyKind(problem.kind)) {
        if (s.engine.hasPlanFor(problem)) {
            // The hot path: shard-local plan hit.  No shared state
            // is touched between here and the race.
            std::lock_guard<std::mutex> lock(s.countersMutex);
            ++s.counters.shardHits;
        } else {
            // Miss: synthesize under the daemon-wide build lock so
            // concurrent shards never run expensive plan builds at
            // the same time.  The lock covers planning only -- the
            // race below runs unlocked.
            std::lock_guard<std::mutex> build(buildMutex);
            {
                std::lock_guard<std::mutex> lock(s.countersMutex);
                ++s.counters.buildLocks;
            }
            s.engine.prepare(problem);
        }
    }
    // Per-instance kinds (DTW / affine / DAG path) bake the problem
    // into their lattice inside solve(); they have no shared cache to
    // protect, so they take neither counter nor lock.
    return s.engine.solve(problem);
}

Expected<api::RaceResult>
EngineShards::trySolveOn(size_t shard, const api::RaceProblem &problem)
{
    rl_assert(shard < shards.size(), "shard index out of range");
    Shard &s = *shards[shard];
    std::lock_guard<std::mutex> engineLock(s.engineMutex);

    if (planFamilyKind(problem.kind)) {
        if (s.engine.hasPlanFor(problem)) {
            // Hot path: the cached plan vetted the deep half, so
            // validate() runs only budgets + runtime inputs here.
            if (racelogic::Status v = s.engine.validate(problem); !v.ok())
                return v;
            std::lock_guard<std::mutex> lock(s.countersMutex);
            ++s.counters.shardHits;
        } else {
            // Validate *before* prepare, under the build lock: a
            // rejected problem must never reach plan synthesis (the
            // expensive, fatal-on-bad-input step).
            std::lock_guard<std::mutex> build(buildMutex);
            if (racelogic::Status v = s.engine.validate(problem); !v.ok())
                return v;
            {
                std::lock_guard<std::mutex> lock(s.countersMutex);
                ++s.counters.buildLocks;
            }
            s.engine.prepare(problem);
        }
    } else {
        if (racelogic::Status v = s.engine.validate(problem); !v.ok())
            return v;
    }
    return s.engine.solve(problem);
}

uint64_t
EngineShards::setGraph(
    std::shared_ptr<const pangraph::VariationGraph> graph,
    std::shared_ptr<const bio::ScoreMatrix> matrix,
    std::shared_ptr<pangraph::GraphAligner> precompiled)
{
    rl_assert(graph != nullptr, "setGraph() needs a graph");
    rl_assert(matrix != nullptr, "a pangenome needs its score matrix");
    // The shape every request against the new graph will carry; built
    // before the pointers move into the registry.  Routes the warm
    // seed to the same shard those requests will hash to.
    std::optional<api::RaceProblem> seed;
    size_t seedShard = 0;
    if (precompiled) {
        rl_assert(precompiled->graphPtr() == graph,
                  "the precompiled aligner must plan the graph being "
                  "installed");
        seed = api::RaceProblem::graphAlign(
            *matrix, bio::Sequence(graph->alphabet(), ""), graph);
        seedShard = shardFor(*seed);
    }
    uint64_t version;
    {
        std::lock_guard<std::mutex> lock(registryMutex);
        registry.graph = std::move(graph);
        registry.matrix = std::move(matrix);
        version = ++registry.version;
    }
    // The old graph's plans are unreachable now (their keys embed the
    // old fingerprint); drop them instead of waiting for LRU churn.
    // Grid-family plans survive untouched.
    //
    // Deliberately NOT under buildMutex: the solve paths lock
    // engineMutex then buildMutex on a plan miss, so holding
    // buildMutex while acquiring engineMutex here would be the ABBA
    // half of a deadlock against any concurrent miss.  Per-shard
    // engineMutex alone is enough -- it excludes that shard's builds.
    // A solve that snapshotted the old graph and builds concurrently
    // can at worst re-insert one old-fingerprint plan after its
    // shard's eviction ran; new requests can never hit it (their keys
    // embed the new fingerprint) and LRU/brownout churn reclaims it.
    for (size_t i = 0; i < shards.size(); ++i) {
        Shard &s = *shards[i];
        std::lock_guard<std::mutex> engineLock(s.engineMutex);
        s.engine.evictGraphPlans();
        if (seed && i == seedShard)
            s.engine.adoptGraphPlan(*seed, precompiled);
    }
    return version;
}

GraphSnapshot
EngineShards::graphSnapshot() const
{
    std::lock_guard<std::mutex> lock(registryMutex);
    return registry;
}

uint64_t
EngineShards::graphVersion() const
{
    std::lock_guard<std::mutex> lock(registryMutex);
    return registry.version;
}

size_t
EngineShards::planCacheBytesTotal() const
{
    size_t total = 0;
    for (const auto &shardPtr : shards)
        total += shardPtr->engine.planCacheBytes();
    return total;
}

size_t
EngineShards::evictPlans(size_t bytesToReclaim)
{
    size_t freed = 0;
    bool progress = true;
    while (freed < bytesToReclaim && progress) {
        progress = false;
        for (auto &shardPtr : shards) {
            std::lock_guard<std::mutex> engineLock(shardPtr->engineMutex);
            const size_t got = shardPtr->engine.evictLruPlan();
            if (got > 0)
                progress = true;
            freed += got;
            if (freed >= bytesToReclaim)
                break;
        }
    }
    return freed;
}

std::vector<ShardStatsWire>
EngineShards::statsSnapshot() const
{
    std::vector<ShardStatsWire> out;
    out.reserve(shards.size());
    for (const auto &shardPtr : shards) {
        const Shard &s = *shardPtr;
        ShardStatsWire w;
        const api::EngineStats engine = s.engine.stats();
        w.solves = engine.solves;
        w.plansBuilt = engine.plansBuilt;
        w.planCacheHits = engine.planCacheHits;
        {
            std::lock_guard<std::mutex> lock(s.countersMutex);
            w.shardHits = s.counters.shardHits;
            w.buildLocks = s.counters.buildLocks;
        }
        out.push_back(w);
    }
    return out;
}

} // namespace racelogic::serve
