/**
 * @file
 * The racelogic::serve wire protocol: length-prefixed binary frames.
 *
 * A frame is a 4-byte little-endian payload length followed by the
 * payload.  Request payloads open with a 4-byte request id, a 1-byte
 * kind tag, a 4-byte relative deadline in milliseconds (0 = none),
 * and a 1-byte traffic class (0=batch, 1=normal, 2=interactive);
 * response payloads echo the id and carry a 1-byte status.  Everything is explicit fixed-width little-endian -- no
 * struct punning -- so the format is host-independent and a hostile
 * peer can at worst earn itself a typed error.
 *
 * Decoding is *total*: any byte string maps to either a validated,
 * race-ready request or a WireError (Truncated / Oversized /
 * UnknownKind / BadRequest).  The daemon never calls fatal()/panic()
 * on wire input; every validation the engine's factories would
 * enforce with a process-killing assert is pre-checked here and
 * reported as BadRequest instead (see docs/serve.md for the limits).
 *
 * The protocol deliberately carries only race-ready Cost-kind
 * matrices: Section 5 similarity conversion is a client-side
 * planning concern, and restricting the daemon to shortest-path form
 * keeps every admission check local to the frame.
 */

#ifndef RACELOGIC_SERVE_WIRE_H
#define RACELOGIC_SERVE_WIRE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rl/apps/dtw.h"
#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/telemetry/registry.h"
#include "rl/util/status.h"

namespace racelogic::serve {

/** @name Frame limits (admission control at the byte layer) @{ */

/** Default ceiling on one frame's payload bytes. */
constexpr uint32_t kDefaultMaxFrameBytes = 8u << 20;

/** Largest edit weight the protocol admits (Dial calendar bound). */
constexpr int64_t kMaxWireWeight = 4096;

/** Largest sequence length the protocol admits. */
constexpr uint32_t kMaxWireSequence = 1u << 16;

/** Largest DTW signal length the protocol admits. */
constexpr uint32_t kMaxWireSamples = 4096;

/** Largest DTW sample magnitude the protocol admits. */
constexpr int64_t kMaxWireSample = 4096;

/** Largest alphabet the protocol admits (protein is 20). */
constexpr uint32_t kMaxWireAlphabet = 64;

/** @} */

/** Typed outcome of decoding one payload. */
enum class WireError : uint8_t {
    None = 0,    ///< decoded and validated
    Truncated,   ///< payload ended before a declared field
    Oversized,   ///< frame or problem exceeds the admission limits
    UnknownKind, ///< request tag this daemon does not speak
    BadRequest,  ///< well-formed bytes describing an invalid problem
};

/** Human-readable WireError name. */
const char *wireErrorName(WireError error);

/** Response status byte (the admission-control verdicts). */
enum class Status : uint8_t {
    Ok = 0,
    QueueFull = 1,    ///< bounded queue rejected the request
    Oversized = 2,    ///< frame/problem over the admission limits
    BadRequest = 3,   ///< undecodable or invalid problem
    ShuttingDown = 4, ///< daemon is draining; resubmit elsewhere
    DeadlineExceeded = 5, ///< the request's own deadline expired first
    ResourceExhausted = 6, ///< compute budget (product states) exceeded
};

/** Human-readable Status name. */
const char *statusName(Status status);

/**
 * Traffic class carried in every request header.  Admission is
 * priority-aware: when outstanding work hits the bound the queue
 * sheds lowest-class-first, so interactive latency stays bounded
 * while batch traffic absorbs the typed QueueFulls; brownout sheds
 * batch-class work outright with ResourceExhausted.
 */
enum class Priority : uint8_t {
    Batch = 0,       ///< bulk/offline work, first to shed
    Normal = 1,      ///< the default
    Interactive = 2, ///< latency-sensitive, last to shed
};

/** Number of traffic classes (array size for per-class ledgers). */
constexpr size_t kPriorityClasses = 3;

/** Human-readable Priority name. */
const char *priorityName(Priority priority);

/**
 * @name Library-to-wire error mapping (the one source of truth)
 *
 * Every library ErrorCode maps to exactly one wire Status and one
 * WireError -- mechanically, with no per-call-site judgment, so the
 * serve layer can return whatever rl::Status the library's own
 * validation produced and the verdict a client sees is deterministic.
 * Parse/admission caps (ErrorCode::Oversized) surface as Oversized;
 * compute budgets (ErrorCode::ResourceExhausted) as
 * ResourceExhausted; every other input fault as BadRequest.  The
 * anti-drift suite asserts the mapping is total.
 * @{ */

/** The wire response Status one library ErrorCode maps to. */
Status statusForCode(ErrorCode code);

/** The decode-layer WireError one library ErrorCode maps to. */
WireError wireErrorForCode(ErrorCode code);

/** @} */

/** Request kind tags on the wire. */
enum class RequestTag : uint8_t {
    Pairwise = 1,   ///< global alignment, inline cost matrix
    Affine = 2,     ///< Gotoh affine-gap alignment, inline matrix
    Dtw = 3,        ///< dynamic time warping of two signals
    Screen = 4,     ///< Section 6 threshold screen, inline matrix
    GraphAlign = 5, ///< one read vs. the preloaded pangenome
    MapReads = 6,   ///< FASTA batch vs. the preloaded pangenome
    Stats = 7,      ///< admission/shard counter snapshot
    Ping = 8,       ///< liveness probe
    Metrics = 9,    ///< full telemetry snapshot (named series)
    Health = 10,    ///< ready/draining/brownout probe (load balancers)
};

/** Human-readable tag name. */
const char *requestTagName(RequestTag tag);

/**
 * One decoded, validated request.  Which fields are populated depends
 * on `tag`; sequences are already alphabet-checked and encoded, so
 * the server can hand them to the engine factories without tripping a
 * fatal().
 */
struct Request {
    RequestTag tag = RequestTag::Ping;
    uint32_t id = 0;

    /**
     * Caller's deadline in milliseconds, relative to frame arrival
     * (0 = none).  Relative on the wire because client and daemon
     * clocks need not agree; the server stamps arrival and races
     * against its own steady clock.  A request whose deadline expires
     * while queued is shed with Status::DeadlineExceeded; one that
     * expires mid-race is cancelled cooperatively.
     */
    uint32_t deadlineMs = 0;

    /**
     * Traffic class (header byte after the deadline).  Values above
     * Interactive are BadRequest at decode, so the server's per-class
     * ledger indexing is always in range.
     */
    Priority priority = Priority::Normal;

    /** Pairwise / Affine / Screen: the inline cost matrix. */
    std::optional<bio::ScoreMatrix> matrix;

    /** Pairwise / Affine / Screen sequences (a = query). */
    std::optional<bio::Sequence> a, b;

    /** Screen / GraphAlign / MapReads threshold (kScoreInfinity = none). */
    bio::Score threshold = bio::kScoreInfinity;

    /** Affine gap costs. */
    bio::Score open = 2, extend = 1;

    /** Dtw signals. */
    std::vector<apps::Sample> x, y;

    /** GraphAlign read / MapReads parsed records. */
    std::optional<bio::Sequence> read;
    std::vector<bio::Sequence> reads;
};

/** Per-shard counters carried by a Stats response. */
struct ShardStatsWire {
    uint64_t solves = 0;        ///< engine solves on this shard
    uint64_t plansBuilt = 0;    ///< engine plan-cache misses
    uint64_t planCacheHits = 0; ///< engine plan-cache hits
    uint64_t shardHits = 0;     ///< serve-level shard-local plan hits
    uint64_t buildLocks = 0;    ///< shared build-lock acquisitions
};

/** One traffic class's slice of the admission ledger. */
struct ClassStatsWire {
    uint64_t enqueued = 0;
    uint64_t completed = 0;
    uint64_t rejectedQueueFull = 0; ///< bounced at the bound
    uint64_t rejectedResource = 0;  ///< brownout sheds at admission
    uint64_t shedDeadline = 0;
    uint64_t shedEvicted = 0; ///< admitted, then evicted by a higher class
    uint64_t queued = 0;
};

/** Admission/queue counters carried by a Stats response. */
struct QueueStatsWire {
    uint64_t enqueued = 0;
    uint64_t completed = 0;
    uint64_t rejectedQueueFull = 0;
    uint64_t rejectedOversized = 0;
    uint64_t rejectedBadRequest = 0;
    uint64_t rejectedResource = 0; ///< compute-budget rejections
    uint64_t rejectedShutdown = 0;
    uint64_t shedDeadline = 0; ///< queued requests shed at drain time
    uint64_t shedEvicted = 0;  ///< queued requests evicted at the bound
    uint64_t inflight = 0;
    uint64_t queued = 0;
    uint64_t highWater = 0;

    /** Per-class slices, indexed by Priority (batch/normal/interactive). */
    ClassStatsWire classes[kPriorityClasses];
};

/** The raced result of one problem, as it travels back. */
struct SolveReply {
    int64_t score = 0;
    int64_t racedCost = 0;
    uint64_t latencyCycles = 0;
    uint64_t cyclesUsed = 0;
    uint64_t events = 0;
    uint64_t nodes = 0;
    uint64_t cellsFired = 0;
    bool completed = false;
    bool accepted = false;
};

/** One read's verdict inside a MapReads batch response. */
struct ReadReply {
    int64_t score = 0;
    uint64_t cyclesUsed = 0;
    bool accepted = false;
};

/** Daemon lifecycle state carried by a Health response. */
enum class HealthState : uint8_t {
    Ready = 0,    ///< serving normally
    Draining = 1, ///< stop() in progress; resubmit elsewhere
    Brownout = 2, ///< memory high-watermark crossed; batch is shedding
};

/** Human-readable HealthState name. */
const char *healthStateName(HealthState state);

/** Body of a Health response (answered inline, even while saturated). */
struct HealthReply {
    HealthState state = HealthState::Ready;
    uint64_t uptimeMs = 0;     ///< since AlignServer::start()
    uint64_t graphVersion = 0; ///< bumps on every successful reload
};

/** One decoded response frame. */
struct Response {
    uint32_t id = 0;
    Status status = Status::Ok;
    RequestTag tag = RequestTag::Ping;
    std::string message; ///< error detail (non-Ok only)

    std::optional<SolveReply> solve;   ///< solve kinds
    std::vector<ReadReply> reads;      ///< MapReads
    std::optional<QueueStatsWire> queueStats; ///< Stats
    std::vector<ShardStatsWire> shardStats;   ///< Stats
    std::optional<telemetry::Snapshot> metrics; ///< Metrics
    std::optional<HealthReply> health; ///< Health
};

/** @name Metrics response body caps (admission control) @{ */

/** Most counter or gauge series one Metrics response may carry. */
constexpr uint32_t kMaxWireMetricSeries = 4096;

/** Most histogram series one Metrics response may carry. */
constexpr uint32_t kMaxWireMetricHistograms = 1024;

/** Longest metric name the protocol admits. */
constexpr uint32_t kMaxWireMetricName = 256;

/** Most histogram buckets one wire series may carry. */
constexpr uint32_t kMaxWireMetricBuckets = 64;

/** @} */

/** @name Request encoding (client side)
 * `deadlineMs` is the caller's per-request deadline in milliseconds
 * relative to arrival (0 = none); see Request::deadlineMs.
 * `priority` is the traffic class (see Priority).
 * @{ */

std::vector<uint8_t> encodePairwise(uint32_t id,
                                    const bio::ScoreMatrix &costs,
                                    const std::string &a,
                                    const std::string &b,
                                    uint32_t deadlineMs = 0,
                                    Priority priority = Priority::Normal);
std::vector<uint8_t> encodeScreen(uint32_t id,
                                  const bio::ScoreMatrix &costs,
                                  bio::Score threshold,
                                  const std::string &a,
                                  const std::string &b,
                                  uint32_t deadlineMs = 0,
                                  Priority priority = Priority::Normal);
std::vector<uint8_t> encodeAffine(uint32_t id,
                                  const bio::ScoreMatrix &costs,
                                  bio::Score open, bio::Score extend,
                                  const std::string &a,
                                  const std::string &b,
                                  uint32_t deadlineMs = 0,
                                  Priority priority = Priority::Normal);
std::vector<uint8_t> encodeDtw(uint32_t id,
                               const std::vector<apps::Sample> &x,
                               const std::vector<apps::Sample> &y,
                               uint32_t deadlineMs = 0,
                               Priority priority = Priority::Normal);
std::vector<uint8_t> encodeGraphAlign(uint32_t id, const std::string &read,
                                      bio::Score threshold,
                                      uint32_t deadlineMs = 0,
                                      Priority priority = Priority::Normal);
std::vector<uint8_t> encodeMapReads(uint32_t id, const std::string &fasta,
                                    bio::Score threshold,
                                    uint32_t deadlineMs = 0,
                                    Priority priority = Priority::Normal);
std::vector<uint8_t> encodeStatsRequest(uint32_t id);
std::vector<uint8_t> encodePing(uint32_t id);
std::vector<uint8_t> encodeMetricsRequest(uint32_t id);
std::vector<uint8_t> encodeHealthRequest(uint32_t id);

/** @} */

/**
 * Decode and validate one request payload.  `graphAlphabet` checks
 * GraphAlign/MapReads letters (the preloaded pangenome's alphabet).
 * On any error the returned Request carries whatever id could be
 * read (0 if none) so the server can still address its reply.
 */
WireError decodeRequest(const std::vector<uint8_t> &payload,
                        const bio::Alphabet &graphAlphabet,
                        Request &out);

/** Encode a response payload. */
std::vector<uint8_t> encodeResponse(const Response &response);

/** Decode a response payload (client side). */
WireError decodeResponse(const std::vector<uint8_t> &payload,
                         Response &out);

/** Wrap a payload in its 4-byte little-endian length prefix. */
std::vector<uint8_t> frame(const std::vector<uint8_t> &payload);

/**
 * Parse a 4-byte length prefix against `maxFrameBytes`.  Returns
 * WireError::Oversized for hostile lengths; Truncated if fewer than
 * 4 bytes are supplied.
 */
WireError parseFrameHeader(const uint8_t *bytes, size_t available,
                           uint32_t maxFrameBytes, uint32_t &length);

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_WIRE_H
