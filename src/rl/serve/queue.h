/**
 * @file
 * The daemon's bounded request queue with admission control.
 *
 * Connection threads push decoded requests; the dispatcher drains
 * them in FIFO order onto the worker pool.  Admission is bounded on
 * *outstanding* work -- queued plus inflight -- so a saturated
 * daemon rejects new requests with a typed QueueFull verdict instead
 * of buffering without limit (the client can back off or resubmit
 * elsewhere).  All counters are kept under one mutex and snapshot as
 * a unit, so the metrics endpoint never reads a torn view: enqueued
 * always equals completed + queued + inflight + shedDeadline (and
 * every bounced frame lands in exactly one rejected* counter).
 *
 * On a 1-CPU host the queue *is* the scaling story: saturation shows
 * up as high-water marks and QueueFull rejections, not wall clock --
 * see docs/performance.md.
 */

#ifndef RACELOGIC_SERVE_QUEUE_H
#define RACELOGIC_SERVE_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "rl/serve/wire.h"

namespace racelogic::serve {

/** One admitted request, bound to its shard and ready to run. */
struct QueuedJob {
    /** Engine shard that must execute this job (plan locality). */
    size_t shard = 0;

    /** Solve + respond closure; runs on a worker-pool thread. */
    std::function<void()> run;

    /**
     * Absolute expiry instant (max() = none).  A job whose deadline
     * has passed when the dispatcher drains it is shed -- onShed runs
     * instead of run -- so a backed-up queue never wastes a worker on
     * an answer nobody is waiting for.
     */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();

    /**
     * Shed notification (sends the DeadlineExceeded reply); runs off
     * the queue lock.  May be empty.
     */
    std::function<void()> onShed;
};

/** Coherent snapshot of the queue's admission counters. */
struct QueueStats {
    uint64_t enqueued = 0;           ///< admitted requests
    uint64_t completed = 0;          ///< admitted requests fully served
    uint64_t rejectedQueueFull = 0;  ///< bounced: queue at depth
    uint64_t rejectedOversized = 0;  ///< bounced: frame/problem too big
    uint64_t rejectedBadRequest = 0; ///< bounced: undecodable/invalid
    uint64_t rejectedResource = 0;   ///< bounced: compute budget
    uint64_t rejectedShutdown = 0;   ///< bounced: daemon draining
    uint64_t shedDeadline = 0;       ///< admitted, expired while queued
    uint64_t queued = 0;             ///< admitted, not yet drained
    uint64_t inflight = 0;           ///< drained, not yet completed
    uint64_t highWater = 0;          ///< max outstanding ever observed

    uint64_t
    rejected() const
    {
        return rejectedQueueFull + rejectedOversized +
               rejectedBadRequest + rejectedResource + rejectedShutdown;
    }

    /** The wire-protocol view of this snapshot. */
    QueueStatsWire wire() const;
};

/**
 * Bounded MPSC-ish job queue (any number of producers, one
 * dispatcher draining).  Depth bounds queued + inflight: a request
 * is outstanding until markDone(), so admission reflects work the
 * daemon has actually committed to, not just buffer occupancy.
 */
class RequestQueue
{
  public:
    /** Admission verdict for one push. */
    enum class Admit {
        Accepted,
        QueueFull,
        ShuttingDown,
    };

    explicit RequestQueue(size_t depth);

    /** Admit or bounce one job; never blocks. */
    Admit tryPush(QueuedJob job);

    /**
     * Count a request that was bounced before it ever became a job
     * (Oversized at the frame layer, BadRequest at decode) so the
     * admission ledger covers every arriving frame.
     */
    void noteRejected(Status status);

    /**
     * Block until at least one job is queued (or shutdown), then
     * move out up to `max` jobs in FIFO order.  The moved jobs are
     * accounted inflight until markDone().  Returns an empty vector
     * only when shutting down with nothing left.
     *
     * When `shed` is non-null, jobs whose deadline has already passed
     * are moved into it instead of the batch (counted shedDeadline,
     * never inflight); the dispatcher runs their onShed closures off
     * the queue lock.  Shed jobs do not count against `max`.  With
     * `shed` null (the default) expired jobs drain normally.
     */
    std::vector<QueuedJob> drain(size_t max,
                                 std::vector<QueuedJob> *shed = nullptr);

    /** Retire `n` drained jobs (dispatcher, after the pool returns). */
    void markDone(size_t n);

    /** Reject new pushes from now on; drain() keeps emptying. */
    void beginShutdown();

    /** Block until queued == 0 and inflight == 0. */
    void waitDrained();

    /** Coherent counter snapshot (single mutex acquisition). */
    QueueStats stats() const;

    size_t depth() const { return capacity; }

  private:
    const size_t capacity;

    mutable std::mutex mutex;
    std::condition_variable readable; ///< jobs available / shutdown
    std::condition_variable drained;  ///< everything retired
    std::deque<QueuedJob> jobs;
    QueueStats counters;
    bool shuttingDown = false;
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_QUEUE_H
