/**
 * @file
 * The daemon's bounded request queue with priority-aware admission.
 *
 * Connection threads push decoded requests; the dispatcher drains
 * them onto the worker pool.  Admission is bounded on *outstanding*
 * work -- queued plus inflight -- so a saturated daemon rejects new
 * requests with a typed QueueFull verdict instead of buffering
 * without limit (the client can back off or resubmit elsewhere).
 *
 * Every request carries a traffic class (Priority: batch / normal /
 * interactive) and the queue keeps one ledger slice per class:
 *
 *  - **drain order** is a weighted round-robin (interactive 4 :
 *    normal 2 : batch 1) -- interactive work drains first but every
 *    non-empty class advances each round, so batch is starvation-free;
 *  - **at the bound**, a higher-class arrival evicts the newest
 *    queued job of the lowest class below it (shed-lowest-first); the
 *    victim is handed back to the caller, who sends it a typed
 *    QueueFull reply off the queue lock.  Same-or-lower-class
 *    arrivals bounce with QueueFull as before;
 *  - **in brownout** (memory high-watermark crossed), the effective
 *    depth is halved and batch-class arrivals are shed outright with
 *    a typed ResourceExhausted -- interactive latency is protected by
 *    shedding the work that can wait.
 *
 * All counters are kept under one mutex and snapshot as a unit, so
 * the metrics endpoint never reads a torn view: enqueued always
 * equals completed + queued + inflight + shedDeadline + shedEvicted
 * (and every bounced frame lands in exactly one rejected* counter).
 *
 * On a 1-CPU host the queue *is* the scaling story: saturation shows
 * up as high-water marks and QueueFull rejections, not wall clock --
 * see docs/performance.md.
 */

#ifndef RACELOGIC_SERVE_QUEUE_H
#define RACELOGIC_SERVE_QUEUE_H

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "rl/serve/wire.h"

namespace racelogic::serve {

/** One admitted request, bound to its shard and ready to run. */
struct QueuedJob {
    /** Engine shard that must execute this job (plan locality). */
    size_t shard = 0;

    /** Solve + respond closure; runs on a worker-pool thread. */
    std::function<void()> run;

    /**
     * Absolute expiry instant (max() = none).  A job whose deadline
     * has passed when the dispatcher drains it is shed -- onShed runs
     * instead of run -- so a backed-up queue never wastes a worker on
     * an answer nobody is waiting for.
     */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();

    /**
     * Shed notification; sends the typed reply for the verdict the
     * queue shed this job with (DeadlineExceeded at drain time,
     * QueueFull when evicted by a higher class).  Runs off the queue
     * lock.  May be empty.
     */
    std::function<void(Status)> onShed;

    /** Traffic class (selects the per-class ledger slice). */
    Priority priority = Priority::Normal;
};

/** One traffic class's slice of the admission ledger. */
struct ClassStats {
    uint64_t enqueued = 0;          ///< admitted into this class
    uint64_t completed = 0;         ///< fully served
    uint64_t rejectedQueueFull = 0; ///< bounced at the bound
    uint64_t rejectedResource = 0;  ///< brownout sheds at admission
    uint64_t shedDeadline = 0;      ///< admitted, expired while queued
    uint64_t shedEvicted = 0;       ///< admitted, evicted by a higher class
    uint64_t queued = 0;            ///< admitted, not yet drained
};

/** Coherent snapshot of the queue's admission counters. */
struct QueueStats {
    uint64_t enqueued = 0;           ///< admitted requests
    uint64_t completed = 0;          ///< admitted requests fully served
    uint64_t rejectedQueueFull = 0;  ///< bounced: queue at depth
    uint64_t rejectedOversized = 0;  ///< bounced: frame/problem too big
    uint64_t rejectedBadRequest = 0; ///< bounced: undecodable/invalid
    uint64_t rejectedResource = 0;   ///< bounced: compute budget/brownout
    uint64_t rejectedShutdown = 0;   ///< bounced: daemon draining
    uint64_t shedDeadline = 0;       ///< admitted, expired while queued
    uint64_t shedEvicted = 0;        ///< admitted, evicted at the bound
    uint64_t queued = 0;             ///< admitted, not yet drained
    uint64_t inflight = 0;           ///< drained, not yet completed
    uint64_t highWater = 0;          ///< max outstanding ever observed

    /** Per-class slices, indexed by Priority. */
    std::array<ClassStats, kPriorityClasses> classes;

    uint64_t
    rejected() const
    {
        return rejectedQueueFull + rejectedOversized +
               rejectedBadRequest + rejectedResource + rejectedShutdown;
    }

    /** The wire-protocol view of this snapshot. */
    QueueStatsWire wire() const;
};

/**
 * Bounded MPSC-ish job queue (any number of producers, one
 * dispatcher draining).  Depth bounds queued + inflight: a request
 * is outstanding until markDone(), so admission reflects work the
 * daemon has actually committed to, not just buffer occupancy.
 */
class RequestQueue
{
  public:
    /** Admission verdict for one push. */
    enum class Admit {
        Accepted,
        QueueFull,
        ShuttingDown,
        Brownout, ///< batch-class shed at admission (ResourceExhausted)
    };

    /**
     * @param depth          Admission bound on outstanding work.
     * @param brownoutDepth  Bound while the brownout latch is set;
     *                       0 picks half of `depth` (min 1), and any
     *                       explicit value is clamped to [1, depth].
     */
    explicit RequestQueue(size_t depth, size_t brownoutDepth = 0);

    /**
     * Admit or bounce one job; never blocks.  When the bound is hit
     * and `evicted` is non-null, a job of a strictly higher class may
     * still be admitted by evicting the newest queued job of the
     * lowest occupied class below it: the victim is moved into
     * `*evicted` and the caller must run `evicted->onShed(QueueFull)`
     * off the queue lock.  With `evicted` null no eviction happens.
     */
    Admit tryPush(QueuedJob job, QueuedJob *evicted = nullptr);

    /**
     * Count a request that was bounced before it ever became a job
     * (Oversized at the frame layer, BadRequest at decode) so the
     * admission ledger covers every arriving frame.  `priority`
     * attributes class-scoped verdicts (QueueFull, brownout
     * ResourceExhausted) to the request's ledger slice.
     */
    void noteRejected(Status status, Priority priority = Priority::Normal);

    /**
     * Block until at least one job is queued (or shutdown), then
     * move out up to `max` jobs in weighted round-robin order
     * (interactive 4 : normal 2 : batch 1; FIFO within a class).
     * The moved jobs are accounted inflight until markDone().
     * Returns an empty vector only when shutting down with nothing
     * left.
     *
     * When `shed` is non-null, jobs whose deadline has already passed
     * are moved into it instead of the batch (counted shedDeadline,
     * never inflight); the dispatcher runs their onShed closures off
     * the queue lock.  Shed jobs do not count against `max`.  With
     * `shed` null (the default) expired jobs drain normally.
     */
    std::vector<QueuedJob> drain(size_t max,
                                 std::vector<QueuedJob> *shed = nullptr);

    /**
     * Retire `n` drained jobs (dispatcher, after the pool returns).
     * The overload with per-class counts also advances the class
     * ledgers' completed columns.
     */
    void markDone(size_t n);
    void markDone(const std::array<uint64_t, kPriorityClasses> &byClass);

    /**
     * Flip the brownout latch.  While active, the effective admission
     * depth drops to the brownout depth and batch-class pushes are
     * shed with Admit::Brownout; flipping it off restores full depth.
     */
    void setBrownout(bool active);

    /** Whether the brownout latch is currently set. */
    bool brownout() const;

    /** Reject new pushes from now on; drain() keeps emptying. */
    void beginShutdown();

    /** Block until queued == 0 and inflight == 0. */
    void waitDrained();

    /** Coherent counter snapshot (single mutex acquisition). */
    QueueStats stats() const;

    size_t depth() const { return capacity; }

  private:
    /** Admission bound under the current brownout state (locked). */
    size_t effectiveDepth() const;

    const size_t capacity;
    const size_t brownoutCapacity;

    mutable std::mutex mutex;
    std::condition_variable readable; ///< jobs available / shutdown
    std::condition_variable drained;  ///< everything retired
    std::array<std::deque<QueuedJob>, kPriorityClasses> jobs;
    QueueStats counters;
    bool shuttingDown = false;
    bool brownoutActive = false;
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_QUEUE_H
