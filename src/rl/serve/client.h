/**
 * @file
 * ServeClient: a small synchronous client for the serve protocol.
 *
 * Wraps one connection to a racelogic::serve daemon: submit*() sends
 * an encoded request frame, receive() blocks for the next response
 * frame.  Requests and responses are correlated by the caller-chosen
 * request id, so a client may pipeline: submit many requests back to
 * back, then collect the responses (the daemon replies in completion
 * order, not submission order).
 *
 * Connections are deadline-aware end to end: overUnix/overTcp bound
 * the connect itself (a dead address fails with ETIMEDOUT instead of
 * blocking forever), receive() can carry a deadline that
 * distinguishes a slow daemon from a dead one, and call() wraps one
 * whole request/response exchange in per-attempt timeouts with
 * exponential backoff + seeded jitter, reconnecting whenever a
 * timeout leaves the stream's framing ambiguous.
 *
 * Used by tools/raceload.cc (the load generator), the end-to-end
 * tests, and examples/serve_roundtrip.cpp.
 */

#ifndef RACELOGIC_SERVE_CLIENT_H
#define RACELOGIC_SERVE_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "rl/serve/socket.h"
#include "rl/serve/wire.h"

namespace racelogic::serve {

/**
 * Retry/backoff knobs for ServeClient::call().  Timeouts are
 * per-attempt; backoff between attempts doubles from backoffBaseMs
 * up to backoffMaxMs, plus a uniformly drawn jitter of up to the
 * current backoff (seeded, so a test's retry schedule replays
 * exactly).
 */
struct RetryPolicy {
    int maxAttempts = 3;
    int64_t timeoutMs = 1000;   ///< per-attempt send+receive budget
    int64_t backoffBaseMs = 10;
    int64_t backoffMaxMs = 500;
    uint64_t jitterSeed = 1;
};

/** One synchronous (optionally pipelined) protocol conversation. */
class ServeClient
{
  public:
    /**
     * Connect over a Unix-domain socket; ok() reports success.
     * `connectTimeoutMs` bounds the connect itself (negative: wait
     * forever).
     */
    static ServeClient overUnix(const std::string &path,
                                int64_t connectTimeoutMs = -1);

    /** Connect over loopback TCP; same deadline semantics. */
    static ServeClient overTcp(uint16_t port,
                               int64_t connectTimeoutMs = -1);

    /** True while the connection is usable. */
    bool ok() const { return fd.valid(); }

    /**
     * Drop the current connection (if any) and re-establish one to
     * the endpoint this client was created for.  The one recovery
     * move after a timeout: a deadline that fired mid-frame leaves
     * the stream unparseable, so the connection must be replaced,
     * not reused.
     */
    bool reconnect(int64_t connectTimeoutMs = -1);

    /** @name Typed submitters (encode + frame + send)
     * `deadlineMs` rides the request header: the daemon sheds the
     * request if it is still queued when the deadline expires and
     * cancels the race cooperatively if it trips mid-solve (0 =
     * none).  `priority` picks the admission class: interactive work
     * drains ahead of normal ahead of batch, and batch is the first
     * to be shed under saturation or brownout.
     * @{ */
    bool submitPairwise(uint32_t id, const bio::ScoreMatrix &costs,
                        const std::string &a, const std::string &b,
                        uint32_t deadlineMs = 0,
                        Priority priority = Priority::Normal);
    bool submitAffine(uint32_t id, const bio::ScoreMatrix &costs,
                      bio::Score open, bio::Score extend,
                      const std::string &a, const std::string &b,
                      uint32_t deadlineMs = 0,
                      Priority priority = Priority::Normal);
    bool submitScreen(uint32_t id, const bio::ScoreMatrix &costs,
                      bio::Score threshold, const std::string &a,
                      const std::string &b, uint32_t deadlineMs = 0,
                      Priority priority = Priority::Normal);
    bool submitDtw(uint32_t id, const std::vector<apps::Sample> &x,
                   const std::vector<apps::Sample> &y,
                   uint32_t deadlineMs = 0,
                   Priority priority = Priority::Normal);
    bool submitGraphAlign(uint32_t id, const std::string &read,
                          bio::Score threshold, uint32_t deadlineMs = 0,
                          Priority priority = Priority::Normal);
    bool submitMapReads(uint32_t id, const std::string &fasta,
                        bio::Score threshold, uint32_t deadlineMs = 0,
                        Priority priority = Priority::Normal);
    bool submitStats(uint32_t id);
    bool submitPing(uint32_t id);
    bool submitMetrics(uint32_t id);
    /** Body-less liveness probe, answered inline even while
     * saturated: ready/draining/brownout plus uptime and the served
     * graph version. */
    bool submitHealth(uint32_t id);
    /** @} */

    /** Send a pre-encoded payload (tests use this to send garbage). */
    bool submitRaw(const std::vector<uint8_t> &payload);

    /** Send arbitrary bytes verbatim -- no framing added (tests). */
    bool sendBytes(const std::vector<uint8_t> &bytes);

    /**
     * Block for the next response frame.  False on disconnect or an
     * undecodable/oversized response.
     */
    bool receive(Response &out,
                 uint32_t maxFrameBytes = kDefaultMaxFrameBytes);

    /**
     * Deadline-bounded receive.  Timeout means the daemon did not
     * answer in time -- the connection may hold a half-read frame, so
     * the caller must reconnect() before reusing it.  Error covers
     * undecodable responses as well as socket failures.
     */
    IoStatus receive(Response &out, IoDeadline deadline,
                     uint32_t maxFrameBytes = kDefaultMaxFrameBytes);

    /**
     * One whole request/response exchange with retries: send
     * `payload`, wait for the response, and on a transient failure
     * (connect refused, send/receive timeout, disconnect, or a
     * QueueFull verdict) back off and try again up to
     * policy.maxAttempts.  Timeouts reconnect before retrying;
     * QueueFull retries on the same connection.
     *
     * Returns true when a response was decoded -- including a final
     * QueueFull after exhausting retries (the caller sees the
     * verdict in `out.status`).  False means no attempt produced a
     * response.
     *
     * Only for unpipelined use: call() assumes the next frame on the
     * wire answers this request.
     */
    bool call(const std::vector<uint8_t> &payload, Response &out,
              const RetryPolicy &policy);

    /** Close the connection (receive()/submit*() fail afterwards). */
    void close() { fd.reset(); }

  private:
    ScopedFd fd;

    /** @name Endpoint, remembered for reconnect() @{ */
    bool viaUnix = false;
    std::string unixPath;
    uint16_t tcpPort = 0;
    /** @} */
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_CLIENT_H
