/**
 * @file
 * ServeClient: a small synchronous client for the serve protocol.
 *
 * Wraps one connection to a racelogic::serve daemon: submit*() sends
 * an encoded request frame, receive() blocks for the next response
 * frame.  Requests and responses are correlated by the caller-chosen
 * request id, so a client may pipeline: submit many requests back to
 * back, then collect the responses (the daemon replies in completion
 * order, not submission order).
 *
 * Used by tools/raceload.cc (the load generator), the end-to-end
 * tests, and examples/serve_roundtrip.cpp.
 */

#ifndef RACELOGIC_SERVE_CLIENT_H
#define RACELOGIC_SERVE_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "rl/serve/socket.h"
#include "rl/serve/wire.h"

namespace racelogic::serve {

/** One synchronous (optionally pipelined) protocol conversation. */
class ServeClient
{
  public:
    /** Connect over a Unix-domain socket; ok() reports success. */
    static ServeClient overUnix(const std::string &path);

    /** Connect over loopback TCP; ok() reports success. */
    static ServeClient overTcp(uint16_t port);

    /** True while the connection is usable. */
    bool ok() const { return fd.valid(); }

    /** @name Typed submitters (encode + frame + send) @{ */
    bool submitPairwise(uint32_t id, const bio::ScoreMatrix &costs,
                        const std::string &a, const std::string &b);
    bool submitAffine(uint32_t id, const bio::ScoreMatrix &costs,
                      bio::Score open, bio::Score extend,
                      const std::string &a, const std::string &b);
    bool submitScreen(uint32_t id, const bio::ScoreMatrix &costs,
                      bio::Score threshold, const std::string &a,
                      const std::string &b);
    bool submitDtw(uint32_t id, const std::vector<apps::Sample> &x,
                   const std::vector<apps::Sample> &y);
    bool submitGraphAlign(uint32_t id, const std::string &read,
                          bio::Score threshold);
    bool submitMapReads(uint32_t id, const std::string &fasta,
                        bio::Score threshold);
    bool submitStats(uint32_t id);
    bool submitPing(uint32_t id);
    /** @} */

    /** Send a pre-encoded payload (tests use this to send garbage). */
    bool submitRaw(const std::vector<uint8_t> &payload);

    /** Send arbitrary bytes verbatim -- no framing added (tests). */
    bool sendBytes(const std::vector<uint8_t> &bytes);

    /**
     * Block for the next response frame.  False on disconnect or an
     * undecodable/oversized response.
     */
    bool receive(Response &out,
                 uint32_t maxFrameBytes = kDefaultMaxFrameBytes);

    /** Close the connection (receive()/submit*() fail afterwards). */
    void close() { fd.reset(); }

  private:
    ScopedFd fd;
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_CLIENT_H
