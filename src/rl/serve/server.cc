#include "rl/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "rl/core/cancel.h"
#include "rl/core/scratch_registry.h"
#include "rl/pangraph/graph_aligner.h"
#include "rl/util/logging.h"

namespace racelogic::serve {

namespace {

Response
errorResponse(uint32_t id, RequestTag tag, Status status,
              std::string message)
{
    Response r;
    r.id = id;
    r.tag = tag;
    r.status = status;
    r.message = std::move(message);
    return r;
}

SolveReply
toSolveReply(const api::RaceResult &result)
{
    SolveReply s;
    s.score = result.score;
    s.racedCost = result.racedCost;
    s.latencyCycles = result.latencyCycles;
    s.cyclesUsed = result.cyclesUsed;
    s.events = result.events;
    s.nodes = result.nodes;
    s.cellsFired = result.cellsFired;
    s.completed = result.completed;
    s.accepted = result.accepted;
    return s;
}

} // namespace

AlignServer::AlignServer(ServerConfig config)
    : cfg(std::move(config)),
      shards(cfg.workers == 0 ? 1 : cfg.workers, cfg.engine),
      queue(cfg.queueDepth, cfg.brownoutDepth),
      pool(cfg.workers == 0 ? 1 : cfg.workers),
      budget(cfg.memBudgetBytes),
      serveAlphabet(cfg.graph ? cfg.graph->alphabet()
                              : bio::Alphabet("ACGT"))
{
    if (cfg.graph) {
        rl_assert(cfg.graphMatrix.has_value(),
                  "a preloaded pangenome needs its score matrix");
        shards.setGraph(cfg.graph, std::make_shared<bio::ScoreMatrix>(
                                       *cfg.graphMatrix));
    }
    if (cfg.telemetry)
        registerMetrics();
}

racelogic::Status
AlignServer::reloadGraph(
    std::shared_ptr<const pangraph::VariationGraph> graph,
    std::optional<bio::ScoreMatrix> matrix)
{
    if (!graph)
        return racelogic::Status::error(
            racelogic::ErrorCode::InvalidArgument,
            "reload needs a graph; the old graph keeps serving");
    // Connections snapshot their decode alphabet once; a reload that
    // changed it would silently re-interpret reads mid-stream.
    if (!(graph->alphabet() == serveAlphabet))
        return racelogic::Status::error(
            racelogic::ErrorCode::InvalidArgument,
            "reloaded graph changes the serving alphabet; rejected");
    GraphSnapshot current = shards.graphSnapshot();
    if (!matrix.has_value() && current.matrix)
        matrix = *current.matrix;
    if (!matrix.has_value())
        return racelogic::Status::error(
            racelogic::ErrorCode::InvalidArgument,
            "reload needs a score matrix (none currently loaded)");
    // Compile-check on the calling thread -- the same validation a
    // GraphAlign plan build runs -- so an uncompilable graph/matrix
    // pair is a typed failure here, never a worker fatal later.  The
    // validation compile IS the plan: hand it to the shards so the
    // first post-swap GraphAlign hits a warm cache instead of paying
    // a second synthesis under the daemon-wide build lock.
    Expected<pangraph::GraphAligner> compiled =
        pangraph::GraphAligner::tryMake(graph, *matrix);
    if (!compiled.ok())
        return compiled.status();
    const uint64_t version = shards.setGraph(
        std::move(graph),
        std::make_shared<bio::ScoreMatrix>(std::move(*matrix)),
        std::make_shared<pangraph::GraphAligner>(
            std::move(compiled.value())));
    rl_inform("serve: graph reloaded, version=", version);
    return racelogic::Status{};
}

void
AlignServer::registerMetrics()
{
    // Names are compile-time literals registered exactly once, so a
    // collision here is a programming error, not a runtime condition.
    auto counter = [this](const char *name) {
        return registry.addCounter(name).valueOrFatal();
    };
    auto histogram = [this](const char *name) {
        return registry.addHistogram(name).valueOrFatal();
    };
    metrics.requests = counter("rl_serve_requests_total");
    metrics.solvedOk = counter("rl_serve_solved_ok_total");
    metrics.rejected = counter("rl_serve_rejected_total");
    metrics.shed = counter("rl_serve_shed_total");
    metrics.inlineAnswers = counter("rl_serve_inline_total");
    metrics.slow = counter("rl_serve_slow_total");
    metrics.kernelEvents = counter("rl_kernel_events_total");
    metrics.kernelBuckets = counter("rl_kernel_buckets_drained_total");
    metrics.kernelLanes = counter("rl_kernel_lanes_occupied_total");
    metrics.kernelCancels = counter("rl_kernel_cancels_total");
    metrics.kernelHorizonAborts =
        counter("rl_kernel_horizon_aborts_total");
    metrics.scratchHighWater =
        registry.addGauge("rl_kernel_scratch_high_water").valueOrFatal();
    metrics.stageRead = histogram("rl_serve_stage_read_us");
    metrics.stageDecode = histogram("rl_serve_stage_decode_us");
    metrics.stageAdmit = histogram("rl_serve_stage_admit_us");
    metrics.stageQueueWait = histogram("rl_serve_stage_queue_wait_us");
    metrics.stageDispatch = histogram("rl_serve_stage_dispatch_us");
    metrics.stageSolve = histogram("rl_serve_stage_solve_us");
    metrics.stageEncode = histogram("rl_serve_stage_encode_us");
    metrics.stageWrite = histogram("rl_serve_stage_write_us");
    metrics.request = histogram("rl_serve_request_us");
}

telemetry::Snapshot
AlignServer::metricsSnapshot() const
{
    telemetry::Snapshot snap = registry.snapshot();
    auto counter = [&snap](std::string name, uint64_t v) {
        snap.counters.push_back({std::move(name), v});
    };
    auto gauge = [&snap](std::string name, int64_t v) {
        snap.gauges.push_back({std::move(name), v});
    };

    // Synthetic series, derived from the exact snapshots the Stats
    // response carries -- one source of truth, two expositions.
    const QueueStatsWire q = queue.stats().wire();
    counter("rl_queue_enqueued_total", q.enqueued);
    counter("rl_queue_completed_total", q.completed);
    counter("rl_queue_rejected_queue_full_total", q.rejectedQueueFull);
    counter("rl_queue_rejected_oversized_total", q.rejectedOversized);
    counter("rl_queue_rejected_bad_request_total", q.rejectedBadRequest);
    counter("rl_queue_rejected_resource_total", q.rejectedResource);
    counter("rl_queue_rejected_shutdown_total", q.rejectedShutdown);
    counter("rl_queue_shed_deadline_total", q.shedDeadline);
    counter("rl_queue_shed_evicted_total", q.shedEvicted);
    gauge("rl_queue_queued", static_cast<int64_t>(q.queued));
    gauge("rl_queue_inflight", static_cast<int64_t>(q.inflight));
    gauge("rl_queue_high_water", static_cast<int64_t>(q.highWater));

    static const char *const kClassName[kPriorityClasses] = {
        "batch", "normal", "interactive"};
    for (size_t c = 0; c < kPriorityClasses; ++c) {
        const ClassStatsWire &cls = q.classes[c];
        const std::string prefix =
            std::string("rl_queue_") + kClassName[c] + "_";
        counter(prefix + "enqueued_total", cls.enqueued);
        counter(prefix + "completed_total", cls.completed);
        counter(prefix + "rejected_queue_full_total",
                cls.rejectedQueueFull);
        counter(prefix + "rejected_resource_total", cls.rejectedResource);
        counter(prefix + "shed_deadline_total", cls.shedDeadline);
        counter(prefix + "shed_evicted_total", cls.shedEvicted);
        gauge(prefix + "queued", static_cast<int64_t>(cls.queued));
    }

    // Brownout observability: the gauge mirrors exactly what Health
    // reports, and the rl_mem_* gauges expose the same usage the
    // janitor feeds into the budget latch.
    gauge("rl_serve_brownout", budget.browned() ? 1 : 0);
    gauge("rl_mem_plan_cache_bytes",
          static_cast<int64_t>(shards.planCacheBytesTotal()));
    gauge("rl_mem_scratch_bytes",
          static_cast<int64_t>(
              core::ScratchRegistry::instance().totalResidentBytes()));
    gauge("rl_mem_budget_bytes", static_cast<int64_t>(budget.high()));

    uint64_t solves = 0, built = 0, hits = 0, shardHits = 0, locks = 0;
    const std::vector<ShardStatsWire> perShard = shards.statsSnapshot();
    for (size_t i = 0; i < perShard.size(); ++i) {
        const ShardStatsWire &s = perShard[i];
        const std::string prefix = "rl_shard" + std::to_string(i) + "_";
        counter(prefix + "solves_total", s.solves);
        counter(prefix + "plans_built_total", s.plansBuilt);
        counter(prefix + "plan_cache_hits_total", s.planCacheHits);
        counter(prefix + "shard_hits_total", s.shardHits);
        counter(prefix + "build_locks_total", s.buildLocks);
        solves += s.solves;
        built += s.plansBuilt;
        hits += s.planCacheHits;
        shardHits += s.shardHits;
        locks += s.buildLocks;
    }
    counter("rl_solves_total", solves);
    counter("rl_plans_built_total", built);
    counter("rl_plan_cache_hits_total", hits);
    counter("rl_shard_hits_total", shardHits);
    counter("rl_build_locks_total", locks);
    return snap;
}

void
AlignServer::recordTrace(telemetry::RequestTrace &trace, size_t lane,
                         bool raced)
{
    trace.finalize();
    if (raced && metrics.request) {
        metrics.stageRead->record(trace.readUs(), lane);
        metrics.stageDecode->record(trace.decodeUs(), lane);
        metrics.stageAdmit->record(trace.admitUs(), lane);
        metrics.stageQueueWait->record(trace.queueWaitUs(), lane);
        metrics.stageDispatch->record(trace.dispatchUs(), lane);
        metrics.stageSolve->record(trace.solveUs(), lane);
        metrics.stageEncode->record(trace.encodeUs(), lane);
        metrics.stageWrite->record(trace.writeUs(), lane);
        metrics.request->record(trace.totalUs(), lane);
        if (trace.status == static_cast<uint8_t>(Status::Ok))
            metrics.solvedOk->add(1, lane);
    }
    if (cfg.slowMs > 0 &&
        trace.totalUs() >= static_cast<uint64_t>(cfg.slowMs) * 1000) {
        if (metrics.slow)
            metrics.slow->add(1, lane);
        rl_warn("serve: slow request id=", trace.id, " tag=",
                requestTagName(static_cast<RequestTag>(trace.tag)),
                " status=",
                statusName(static_cast<Status>(trace.status)),
                " total_us=", trace.totalUs(),
                " read_us=", trace.readUs(),
                " decode_us=", trace.decodeUs(),
                " admit_us=", trace.admitUs(),
                " queue_wait_us=", trace.queueWaitUs(),
                " dispatch_us=", trace.dispatchUs(),
                " solve_us=", trace.solveUs(),
                " encode_us=", trace.encodeUs(),
                " write_us=", trace.writeUs());
    }
    if (cfg.traceHook)
        cfg.traceHook(trace);
}

void
AlignServer::drainKernelCounters(const core::KernelCounters &kernel,
                                 size_t lane)
{
    if (!metrics.kernelEvents)
        return;
    metrics.kernelEvents->add(kernel.events, lane);
    metrics.kernelBuckets->add(kernel.bucketsDrained, lane);
    metrics.kernelLanes->add(kernel.lanesOccupied, lane);
    metrics.kernelCancels->add(kernel.cancels, lane);
    metrics.kernelHorizonAborts->add(kernel.horizonAborts, lane);
    metrics.scratchHighWater->max(
        static_cast<int64_t>(kernel.scratchHighWater));
}

AlignServer::~AlignServer()
{
    if (started && !stopped)
        stop();
}

bool
AlignServer::start()
{
    rl_assert(!started, "AlignServer::start() called twice");
    started = true;

    if (!cfg.unixPath.empty()) {
        unixListener = listenUnix(cfg.unixPath);
        if (!unixListener.valid())
            return false;
    }
    if (cfg.tcpPort >= 0) {
        tcpListener =
            listenTcp(static_cast<uint16_t>(cfg.tcpPort), boundPort);
        if (!tcpListener.valid())
            return false;
    }
    if (!unixListener.valid() && !tcpListener.valid())
        return false;

    startTime = std::chrono::steady_clock::now();
    dispatcher = std::thread([this] { dispatchLoop(); });
    janitor = std::thread([this] { janitorLoop(); });
    if (unixListener.valid())
        acceptThreads.emplace_back(
            [this, fd = unixListener.get()] { acceptLoop(fd); });
    if (tcpListener.valid())
        acceptThreads.emplace_back(
            [this, fd = tcpListener.get()] { acceptLoop(fd); });
    return true;
}

void
AlignServer::stop()
{
    if (!started || stopped)
        return;
    stopped = true;

    // 1. Stop taking new connections and new frames.  Shutting the
    //    read side of every live connection unblocks its reader
    //    without cutting off responses still flowing the other way.
    stopping.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(janitorMutex);
        janitorCv.notify_all();
    }
    if (janitor.joinable())
        janitor.join();
    if (unixListener.valid())
        ::shutdown(unixListener.get(), SHUT_RDWR);
    if (tcpListener.valid())
        ::shutdown(tcpListener.get(), SHUT_RDWR);
    for (std::thread &t : acceptThreads)
        t.join();
    acceptThreads.clear();

    {
        std::lock_guard<std::mutex> lock(connectionsMutex);
        for (auto &conn : connections)
            if (conn->fd.valid())
                ::shutdown(conn->fd.get(), SHUT_RD);
    }
    {
        std::lock_guard<std::mutex> lock(connectionsMutex);
        for (std::thread &t : connectionThreads)
            t.join();
        connectionThreads.clear();
    }

    // 2. Drain: every admitted job runs and flushes its response.
    queue.beginShutdown();
    if (dispatcher.joinable())
        dispatcher.join();
    queue.waitDrained();

    // 3. Only now is it safe to retire the pool and the sockets.
    pool.shutdownAndJoin();
    {
        std::lock_guard<std::mutex> lock(connectionsMutex);
        connections.clear();
    }
    unixListener.reset();
    tcpListener.reset();
    if (!cfg.unixPath.empty())
        ::unlink(cfg.unixPath.c_str());
}

void
AlignServer::acceptLoop(int listenFd)
{
    while (!stopping.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200);
        if (rc < 0 && errno == EINTR)
            continue;
        if (stopping.load(std::memory_order_acquire))
            return;
        if (rc <= 0)
            continue;
        int client = ::accept(listenFd, nullptr, nullptr);
        if (client < 0) {
            // Descriptor exhaustion is a load condition, not a fatal
            // error: back off briefly (letting in-flight connections
            // retire their fds) and keep serving.  Anything else is a
            // transient accept hiccup; just poll again.
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM) {
                rl_warn("serve: accept failed (", std::strerror(errno),
                        "); backing off");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
            continue;
        }
        if (cfg.sndbufBytes > 0)
            ::setsockopt(client, SOL_SOCKET, SO_SNDBUF,
                         &cfg.sndbufBytes, sizeof(cfg.sndbufBytes));
        auto conn = std::make_shared<Connection>();
        conn->fd.reset(client);
        std::lock_guard<std::mutex> lock(connectionsMutex);
        connections.push_back(conn);
        connectionThreads.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }
}

void
AlignServer::connectionLoop(std::shared_ptr<Connection> conn)
{
    // The decode alphabet is fixed for the daemon's lifetime --
    // reloadGraph() rejects a graph that would change it, so an open
    // connection never re-interprets reads mid-stream.
    const bio::Alphabet &graphAlphabet = serveAlphabet;

    const int64_t idleMs = cfg.idleTimeoutMs > 0 ? cfg.idleTimeoutMs : -1;
    const int64_t ioMs = cfg.ioTimeoutMs > 0 ? cfg.ioTimeoutMs : -1;

    for (;;) {
        uint8_t header[4];
        const IoStatus headerRead = readExact(
            conn->fd.get(), header, sizeof(header),
            deadlineAfterMs(idleMs));
        if (headerRead != IoStatus::Ok) {
            // Clean EOF, disconnect, or an idle peer: hang up.  On
            // timeout the shutdown tells the peer explicitly instead
            // of leaving it half-open.
            if (headerRead == IoStatus::Timeout)
                ::shutdown(conn->fd.get(), SHUT_RDWR);
            return;
        }

        // The trace's clock starts once the header is in hand --
        // idle time waiting for a peer to *send* something is the
        // peer's latency, not this request's.
        telemetry::RequestTrace trace;
        trace.readStart = telemetry::RequestTrace::Clock::now();

        uint32_t length = 0;
        WireError headerError = parseFrameHeader(
            header, sizeof(header), cfg.maxFrameBytes, length);
        if (headerError != WireError::None) {
            // A hostile length prefix poisons the framing itself --
            // reply once (id unknowable) and hang up; without the
            // shutdown the peer would block forever on a connection
            // the daemon has silently stopped reading.
            queue.noteRejected(Status::Oversized);
            if (metrics.rejected)
                metrics.rejected->add();
            trace.status = static_cast<uint8_t>(Status::Oversized);
            reply(*conn, errorResponse(0, RequestTag::Ping,
                                       Status::Oversized,
                                       "frame exceeds maxFrameBytes"),
                  &trace);
            recordTrace(trace, 0, false);
            ::shutdown(conn->fd.get(), SHUT_RDWR);
            return;
        }

        // The header committed the peer to `length` more bytes; a
        // peer that stalls mid-frame (slow-loris) is cut off after
        // ioTimeoutMs instead of pinning this reader forever.
        std::vector<uint8_t> payload(length);
        if (length > 0) {
            const IoStatus bodyRead =
                readExact(conn->fd.get(), payload.data(), length,
                          deadlineAfterMs(ioMs));
            if (bodyRead != IoStatus::Ok) {
                if (bodyRead == IoStatus::Timeout)
                    ::shutdown(conn->fd.get(), SHUT_RDWR);
                return;
            }
        }
        const auto arrival = std::chrono::steady_clock::now();
        trace.readDone = arrival;
        if (metrics.requests)
            metrics.requests->add();

        Request request;
        WireError decodeError =
            decodeRequest(payload, graphAlphabet, request);
        trace.decodeDone = telemetry::RequestTrace::Clock::now();
        trace.id = request.id;
        trace.tag = static_cast<uint8_t>(request.tag);
        if (decodeError != WireError::None) {
            // Frame boundaries are intact, so the conversation can
            // continue -- the *request* is bad, not the stream.
            Status status = decodeError == WireError::Oversized
                                ? Status::Oversized
                                : Status::BadRequest;
            queue.noteRejected(status);
            if (metrics.rejected)
                metrics.rejected->add();
            trace.status = static_cast<uint8_t>(status);
            reply(*conn, errorResponse(request.id, request.tag, status,
                                       wireErrorName(decodeError)),
                  &trace);
            recordTrace(trace, 0, false);
            continue;
        }
        handleRequest(conn, std::move(request), arrival,
                      std::move(trace));
    }
}

void
AlignServer::handleRequest(const std::shared_ptr<Connection> &conn,
                           Request request,
                           std::chrono::steady_clock::time_point arrival,
                           telemetry::RequestTrace trace)
{
    const uint32_t id = request.id;
    const RequestTag tag = request.tag;

    // Stats, Ping, Metrics, and Health bypass the queue: the
    // observability endpoints must answer precisely when the daemon
    // is saturated -- Health doubly so, since the load balancer's
    // probe is what routes traffic *away* from a browned-out daemon.
    if (tag == RequestTag::Ping || tag == RequestTag::Stats ||
        tag == RequestTag::Metrics || tag == RequestTag::Health) {
        Response r;
        r.id = id;
        r.tag = tag;
        if (tag == RequestTag::Stats) {
            r.queueStats = queue.stats().wire();
            r.shardStats = shards.statsSnapshot();
        } else if (tag == RequestTag::Metrics) {
            r.metrics = metricsSnapshot();
        } else if (tag == RequestTag::Health) {
            HealthReply h;
            if (stopping.load(std::memory_order_acquire))
                h.state = HealthState::Draining;
            else if (budget.browned())
                h.state = HealthState::Brownout;
            else
                h.state = HealthState::Ready;
            h.uptimeMs = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - startTime)
                    .count());
            h.graphVersion = shards.graphVersion();
            r.health = h;
        }
        trace.admitDone = telemetry::RequestTrace::Clock::now();
        if (metrics.inlineAnswers)
            metrics.inlineAnswers->add();
        reply(*conn, r, &trace);
        recordTrace(trace, 0, false);
        return;
    }

    // A typed bounce on the connection thread: counted, stamped, and
    // traced exactly once, so the rejected ledger and the trace hook
    // agree on every path out of admission.  tryPush keeps its own
    // ledger, so its verdicts pass note=false.
    auto bounce = [&](Status status, std::string message,
                      bool note = true) {
        if (note)
            queue.noteRejected(status, request.priority);
        if (metrics.rejected)
            metrics.rejected->add();
        trace.status = static_cast<uint8_t>(status);
        trace.admitDone = telemetry::RequestTrace::Clock::now();
        reply(*conn, errorResponse(id, tag, status, std::move(message)),
              &trace);
        recordTrace(trace, 0, false);
    };

    // Build the race problem(s); every wire-level validation already
    // passed, so the remaining admission gate is the library's own
    // budget check below -- one call covers grid cells and graph
    // product states for every kind, instead of a per-tag copy.
    // Graph kinds copy the registry snapshot *here*, at admission:
    // the shared_ptr pins that graph version for this request's whole
    // lifetime, so a reload can swap the registry underneath without
    // perturbing a single queued or in-flight solve.
    const GraphSnapshot graphSnap = shards.graphSnapshot();
    std::vector<api::RaceProblem> problems;
    switch (tag) {
    case RequestTag::Pairwise:
        problems.push_back(api::RaceProblem::pairwiseAlignment(
            *request.matrix, *request.a, *request.b));
        break;
    case RequestTag::Affine:
        problems.push_back(api::RaceProblem::affineAlignment(
            *request.matrix,
            bio::AffineGapCosts{request.open, request.extend},
            *request.a, *request.b));
        break;
    case RequestTag::Screen:
        problems.push_back(api::RaceProblem::thresholdScreen(
            *request.matrix, request.threshold, *request.a,
            *request.b));
        break;
    case RequestTag::Dtw:
        problems.push_back(api::RaceProblem::dtw(std::move(request.x),
                                                 std::move(request.y)));
        break;
    case RequestTag::GraphAlign:
        if (!graphSnap.graph) {
            bounce(Status::BadRequest, "no pangenome loaded");
            return;
        }
        problems.push_back(api::RaceProblem::graphAlign(
            *graphSnap.matrix, *request.read, graphSnap.graph,
            request.threshold));
        break;
    case RequestTag::MapReads: {
        if (!graphSnap.graph) {
            bounce(Status::BadRequest, "no pangenome loaded");
            return;
        }
        if (request.reads.empty()) {
            bounce(Status::BadRequest, "batch carries no reads");
            return;
        }
        if (request.reads.size() > cfg.maxBatchReads) {
            bounce(Status::Oversized, "batch exceeds maxBatchReads");
            return;
        }
        for (bio::Sequence &read : request.reads)
            problems.push_back(api::RaceProblem::graphAlign(
                *graphSnap.matrix, std::move(read), graphSnap.graph,
                request.threshold));
        break;
    }
    case RequestTag::Stats:
    case RequestTag::Ping:
    case RequestTag::Metrics:
    case RequestTag::Health:
        rl_panic("inline tags handled above");
    }

    // One admission gate for all queued kinds: a grid lattice over
    // maxGridCells bounces as Oversized, a graph-align product over
    // maxProductStates (or the kernel's 32-bit id space) as
    // ResourceExhausted.  statusForCode() maps the library verdict
    // mechanically; there is no per-tag judgment left here.
    api::ProblemLimits limits;
    limits.maxGridCells = cfg.maxGridCells;
    limits.maxProductStates = cfg.engine.maxProductStates;
    for (const api::RaceProblem &problem : problems) {
        racelogic::Status budget = api::checkBudgets(problem, limits);
        if (!budget.ok()) {
            bounce(statusForCode(budget.code()), budget.message());
            return;
        }
    }

    // The request's relative deadline, anchored at frame arrival
    // (client and daemon clocks need not agree).
    auto deadline = std::chrono::steady_clock::time_point::max();
    if (request.deadlineMs > 0)
        deadline = arrival + std::chrono::milliseconds(request.deadlineMs);

    // All of a batch's problems share one shape (same graph, same
    // matrix), so the whole batch runs on one shard as one job.
    // admitDone is stamped here so queue-wait (admitDone ->
    // dispatchStart) starts the moment the job is ready to push.
    trace.admitDone = telemetry::RequestTrace::Clock::now();
    const size_t shard = shards.shardFor(problems.front());
    QueuedJob job;
    job.shard = shard;
    job.deadline = deadline;
    job.priority = request.priority;
    job.onShed = [this, conn, id, tag, trace](Status status) mutable {
        // Shed jobs were never inflight, so they stay out of the
        // raced histograms -- the rl_serve_request_us count must keep
        // matching the queue's completed ledger.
        if (metrics.shed)
            metrics.shed->add();
        trace.status = static_cast<uint8_t>(status);
        trace.dispatchStart = telemetry::RequestTrace::Clock::now();
        const char *message =
            status == Status::QueueFull
                ? "evicted by a higher-priority arrival"
                : "deadline expired while queued";
        reply(*conn, errorResponse(id, tag, status, message), &trace);
        recordTrace(trace, 0, false);
    };
    job.run = [this, conn, id, tag, shard, deadline, trace,
               problems = std::move(problems)]() mutable {
        trace.dispatchStart = telemetry::RequestTrace::Clock::now();

        // A live deadline becomes a cooperative cancel token: the
        // bucket-sweep kernels poll it once per simulated cycle and
        // abort with a typed result instead of finishing a race
        // nobody is waiting for.  No deadline, no token -- the solve
        // path stays bit-identical to a direct engine call.
        const bool hasDeadline =
            deadline != std::chrono::steady_clock::time_point::max();
        core::CancelToken token(deadline);
        const core::CancelToken *cancel = hasDeadline ? &token : nullptr;

        // Kernel profiling rides the same null-is-off convention:
        // with telemetry disabled no counter pointer is installed and
        // the kernels never see it.
        core::KernelCounters kernel;
        core::KernelCounters *counters =
            cfg.telemetry ? &kernel : nullptr;

        Response r;
        r.id = id;
        r.tag = tag;
        trace.solveStart = telemetry::RequestTrace::Clock::now();
        // trySolveOn re-validates before any plan build, so even a
        // problem that slipped past admission earns a typed reply
        // here instead of tripping a library fatal on a worker.
        // Every exit assigns `r` and falls through: the job must
        // record exactly one raced trace, because markDone() retires
        // it from the completed ledger no matter how it replied.
        if (tag == RequestTag::MapReads) {
            r.reads.reserve(problems.size());
            for (api::RaceProblem &problem : problems) {
                problem.cancel = cancel;
                problem.counters = counters;
                Expected<api::RaceResult> result =
                    shards.trySolveOn(shard, problem);
                if (!result.ok()) {
                    r = errorResponse(id, tag,
                                      statusForCode(
                                          result.status().code()),
                                      result.status().message());
                    break;
                }
                if (result.value().cancelled) {
                    // The deadline covers the whole batch; once it
                    // trips there is no point racing the rest.
                    r = errorResponse(id, tag, Status::DeadlineExceeded,
                                      "deadline expired mid-batch");
                    break;
                }
                ReadReply rr;
                rr.score = result.value().score;
                rr.cyclesUsed = result.value().cyclesUsed;
                rr.accepted = result.value().accepted;
                r.reads.push_back(rr);
            }
        } else {
            problems.front().cancel = cancel;
            problems.front().counters = counters;
            Expected<api::RaceResult> result =
                shards.trySolveOn(shard, problems.front());
            if (!result.ok()) {
                r = errorResponse(id, tag,
                                  statusForCode(result.status().code()),
                                  result.status().message());
            } else if (result.value().cancelled) {
                r = errorResponse(id, tag, Status::DeadlineExceeded,
                                  "deadline expired mid-race");
            } else {
                r.solve = toSolveReply(result.value());
            }
        }
        trace.solveDone = telemetry::RequestTrace::Clock::now();
        drainKernelCounters(kernel, shard + 1);
        trace.status = static_cast<uint8_t>(r.status);
        reply(*conn, r, &trace);
        recordTrace(trace, shard + 1, true);
    };

    QueuedJob evicted;
    switch (queue.tryPush(std::move(job), &evicted)) {
    case RequestQueue::Admit::Accepted:
        // A higher-class arrival may have claimed a queued lower-class
        // job's slot; the victim's typed QueueFull reply runs here,
        // off the queue lock, on this connection thread.
        if (evicted.onShed)
            evicted.onShed(Status::QueueFull);
        break; // the job itself replies once it has raced
    case RequestQueue::Admit::QueueFull:
        bounce(Status::QueueFull, "admission queue at depth", false);
        break;
    case RequestQueue::Admit::Brownout:
        bounce(Status::ResourceExhausted,
               "brownout: batch-class work shed at admission", false);
        break;
    case RequestQueue::Admit::ShuttingDown:
        bounce(Status::ShuttingDown, "daemon draining", false);
        break;
    }
}

void
AlignServer::dispatchLoop()
{
    for (;;) {
        std::vector<QueuedJob> shed;
        std::vector<QueuedJob> batch = queue.drain(
            cfg.drainBatchMax == 0 ? 1 : cfg.drainBatchMax, &shed);
        if (batch.empty() && shed.empty())
            return; // shutdown with nothing left

        // Group by shard: jobs for different shards run concurrently
        // on the pool, jobs for the same shard run serially within
        // their group (the engines are owner-thread-only).
        std::vector<std::vector<QueuedJob *>> groups;
        std::vector<size_t> groupShard;
        for (QueuedJob &job : batch) {
            size_t g = 0;
            for (; g < groupShard.size(); ++g)
                if (groupShard[g] == job.shard)
                    break;
            if (g == groupShard.size()) {
                groupShard.push_back(job.shard);
                groups.emplace_back();
            }
            groups[g].push_back(&job);
        }

        // Shed replies ride the pool as one extra group: the write
        // (bounded by ioTimeoutMs) must not stall the dispatcher.
        const size_t shedGroup = shed.empty() ? 0 : 1;
        try {
            pool.parallelFor(groups.size() + shedGroup, [&](size_t g) {
                if (g == groups.size()) {
                    for (QueuedJob &job : shed)
                        if (job.onShed)
                            job.onShed(Status::DeadlineExceeded);
                    return;
                }
                for (QueuedJob *job : groups[g])
                    job->run();
            });
        } catch (const std::exception &e) {
            // A throwing job must not take the dispatcher down with
            // it; the affected request simply never gets a reply.
            rl_warn("serve: job raised '", e.what(),
                    "'; dispatcher continues");
        }
        // Shed jobs were never inflight; only the raced batch retires
        // -- per class, so the class ledgers' completed columns stay
        // coherent with the global one.
        if (!batch.empty()) {
            std::array<uint64_t, kPriorityClasses> byClass{};
            for (const QueuedJob &job : batch)
                ++byClass[static_cast<size_t>(job.priority)];
            queue.markDone(byClass);
        }
    }
}

void
AlignServer::evaluateBudget()
{
    const size_t planBytes = shards.planCacheBytesTotal();
    const size_t scratchBytes =
        core::ScratchRegistry::instance().totalResidentBytes();
    const size_t usage = planBytes + scratchBytes;

    switch (budget.observe(usage)) {
    case MemoryBudget::Transition::Entered:
        rl_warn("serve: BROWNOUT entered, usage=", usage,
                " bytes (plans=", planBytes, " scratch=", scratchBytes,
                ") high=", budget.high(), " low=", budget.low());
        queue.setBrownout(true);
        break;
    case MemoryBudget::Transition::Exited:
        rl_inform("serve: brownout exited, usage=", usage,
                  " bytes <= low=", budget.low());
        queue.setBrownout(false);
        break;
    case MemoryBudget::Transition::None:
        break;
    }

    if (budget.browned()) {
        // Reclaim until back under the low watermark: scratch arenas
        // first (cheap to regrow), then LRU plans (expensive to
        // rebuild, so only as much as the overshoot demands).
        core::ScratchRegistry::instance().shrinkAll();
        const size_t afterScratch =
            planBytes +
            core::ScratchRegistry::instance().totalResidentBytes();
        if (afterScratch > budget.low())
            shards.evictPlans(afterScratch - budget.low());
    } else if (cfg.scratchIdleMs > 0) {
        core::ScratchRegistry::instance().shrinkIdle(
            std::chrono::milliseconds(cfg.scratchIdleMs));
    }
}

void
AlignServer::janitorLoop()
{
    const auto tick = std::chrono::milliseconds(
        cfg.janitorIntervalMs > 0 ? cfg.janitorIntervalMs : 50);
    std::unique_lock<std::mutex> lock(janitorMutex);
    while (!stopping.load(std::memory_order_acquire)) {
        janitorCv.wait_for(lock, tick, [this] {
            return stopping.load(std::memory_order_acquire);
        });
        if (stopping.load(std::memory_order_acquire))
            return;
        lock.unlock();
        evaluateBudget();
        lock.lock();
    }
}

void
AlignServer::reply(Connection &conn, const Response &response,
                   telemetry::RequestTrace *trace)
{
    std::vector<uint8_t> framed = frame(encodeResponse(response));
    if (trace)
        trace->encodeDone = telemetry::RequestTrace::Clock::now();
    const IoDeadline deadline =
        deadlineAfterMs(cfg.ioTimeoutMs > 0 ? cfg.ioTimeoutMs : -1);
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    // A vanished peer is its own problem; the daemon just moves on.
    // A peer that stopped *reading* is worse: once the write deadline
    // trips the connection is severed, so a stalled receive window
    // costs at most ioTimeoutMs of one worker's time -- it can never
    // wedge the pool behind one slow socket.
    const IoStatus wrote =
        writeAll(conn.fd.get(), framed.data(), framed.size(), deadline);
    if (wrote == IoStatus::Timeout)
        ::shutdown(conn.fd.get(), SHUT_RDWR);
    if (trace)
        trace->writeDone = telemetry::RequestTrace::Clock::now();
}

} // namespace racelogic::serve
