#include "rl/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "rl/core/cancel.h"
#include "rl/util/logging.h"

namespace racelogic::serve {

namespace {

Response
errorResponse(uint32_t id, RequestTag tag, Status status,
              std::string message)
{
    Response r;
    r.id = id;
    r.tag = tag;
    r.status = status;
    r.message = std::move(message);
    return r;
}

SolveReply
toSolveReply(const api::RaceResult &result)
{
    SolveReply s;
    s.score = result.score;
    s.racedCost = result.racedCost;
    s.latencyCycles = result.latencyCycles;
    s.cyclesUsed = result.cyclesUsed;
    s.events = result.events;
    s.nodes = result.nodes;
    s.cellsFired = result.cellsFired;
    s.completed = result.completed;
    s.accepted = result.accepted;
    return s;
}

} // namespace

AlignServer::AlignServer(ServerConfig config)
    : cfg(std::move(config)),
      shards(cfg.workers == 0 ? 1 : cfg.workers, cfg.engine),
      queue(cfg.queueDepth),
      pool(cfg.workers == 0 ? 1 : cfg.workers)
{
    if (cfg.graph)
        rl_assert(cfg.graphMatrix.has_value(),
                  "a preloaded pangenome needs its score matrix");
}

AlignServer::~AlignServer()
{
    if (started && !stopped)
        stop();
}

bool
AlignServer::start()
{
    rl_assert(!started, "AlignServer::start() called twice");
    started = true;

    if (!cfg.unixPath.empty()) {
        unixListener = listenUnix(cfg.unixPath);
        if (!unixListener.valid())
            return false;
    }
    if (cfg.tcpPort >= 0) {
        tcpListener =
            listenTcp(static_cast<uint16_t>(cfg.tcpPort), boundPort);
        if (!tcpListener.valid())
            return false;
    }
    if (!unixListener.valid() && !tcpListener.valid())
        return false;

    dispatcher = std::thread([this] { dispatchLoop(); });
    if (unixListener.valid())
        acceptThreads.emplace_back(
            [this, fd = unixListener.get()] { acceptLoop(fd); });
    if (tcpListener.valid())
        acceptThreads.emplace_back(
            [this, fd = tcpListener.get()] { acceptLoop(fd); });
    return true;
}

void
AlignServer::stop()
{
    if (!started || stopped)
        return;
    stopped = true;

    // 1. Stop taking new connections and new frames.  Shutting the
    //    read side of every live connection unblocks its reader
    //    without cutting off responses still flowing the other way.
    stopping.store(true, std::memory_order_release);
    if (unixListener.valid())
        ::shutdown(unixListener.get(), SHUT_RDWR);
    if (tcpListener.valid())
        ::shutdown(tcpListener.get(), SHUT_RDWR);
    for (std::thread &t : acceptThreads)
        t.join();
    acceptThreads.clear();

    {
        std::lock_guard<std::mutex> lock(connectionsMutex);
        for (auto &conn : connections)
            if (conn->fd.valid())
                ::shutdown(conn->fd.get(), SHUT_RD);
    }
    {
        std::lock_guard<std::mutex> lock(connectionsMutex);
        for (std::thread &t : connectionThreads)
            t.join();
        connectionThreads.clear();
    }

    // 2. Drain: every admitted job runs and flushes its response.
    queue.beginShutdown();
    if (dispatcher.joinable())
        dispatcher.join();
    queue.waitDrained();

    // 3. Only now is it safe to retire the pool and the sockets.
    pool.shutdownAndJoin();
    {
        std::lock_guard<std::mutex> lock(connectionsMutex);
        connections.clear();
    }
    unixListener.reset();
    tcpListener.reset();
    if (!cfg.unixPath.empty())
        ::unlink(cfg.unixPath.c_str());
}

void
AlignServer::acceptLoop(int listenFd)
{
    while (!stopping.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200);
        if (rc < 0 && errno == EINTR)
            continue;
        if (stopping.load(std::memory_order_acquire))
            return;
        if (rc <= 0)
            continue;
        int client = ::accept(listenFd, nullptr, nullptr);
        if (client < 0) {
            // Descriptor exhaustion is a load condition, not a fatal
            // error: back off briefly (letting in-flight connections
            // retire their fds) and keep serving.  Anything else is a
            // transient accept hiccup; just poll again.
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM) {
                rl_warn("serve: accept failed (", std::strerror(errno),
                        "); backing off");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
            continue;
        }
        if (cfg.sndbufBytes > 0)
            ::setsockopt(client, SOL_SOCKET, SO_SNDBUF,
                         &cfg.sndbufBytes, sizeof(cfg.sndbufBytes));
        auto conn = std::make_shared<Connection>();
        conn->fd.reset(client);
        std::lock_guard<std::mutex> lock(connectionsMutex);
        connections.push_back(conn);
        connectionThreads.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }
}

void
AlignServer::connectionLoop(std::shared_ptr<Connection> conn)
{
    const bio::Alphabet graphAlphabet =
        cfg.graph ? cfg.graph->alphabet() : bio::Alphabet("ACGT");

    const int64_t idleMs = cfg.idleTimeoutMs > 0 ? cfg.idleTimeoutMs : -1;
    const int64_t ioMs = cfg.ioTimeoutMs > 0 ? cfg.ioTimeoutMs : -1;

    for (;;) {
        uint8_t header[4];
        const IoStatus headerRead = readExact(
            conn->fd.get(), header, sizeof(header),
            deadlineAfterMs(idleMs));
        if (headerRead != IoStatus::Ok) {
            // Clean EOF, disconnect, or an idle peer: hang up.  On
            // timeout the shutdown tells the peer explicitly instead
            // of leaving it half-open.
            if (headerRead == IoStatus::Timeout)
                ::shutdown(conn->fd.get(), SHUT_RDWR);
            return;
        }

        uint32_t length = 0;
        WireError headerError = parseFrameHeader(
            header, sizeof(header), cfg.maxFrameBytes, length);
        if (headerError != WireError::None) {
            // A hostile length prefix poisons the framing itself --
            // reply once (id unknowable) and hang up; without the
            // shutdown the peer would block forever on a connection
            // the daemon has silently stopped reading.
            queue.noteRejected(Status::Oversized);
            reply(*conn, errorResponse(0, RequestTag::Ping,
                                       Status::Oversized,
                                       "frame exceeds maxFrameBytes"));
            ::shutdown(conn->fd.get(), SHUT_RDWR);
            return;
        }

        // The header committed the peer to `length` more bytes; a
        // peer that stalls mid-frame (slow-loris) is cut off after
        // ioTimeoutMs instead of pinning this reader forever.
        std::vector<uint8_t> payload(length);
        if (length > 0) {
            const IoStatus bodyRead =
                readExact(conn->fd.get(), payload.data(), length,
                          deadlineAfterMs(ioMs));
            if (bodyRead != IoStatus::Ok) {
                if (bodyRead == IoStatus::Timeout)
                    ::shutdown(conn->fd.get(), SHUT_RDWR);
                return;
            }
        }
        const auto arrival = std::chrono::steady_clock::now();

        Request request;
        WireError decodeError =
            decodeRequest(payload, graphAlphabet, request);
        if (decodeError != WireError::None) {
            // Frame boundaries are intact, so the conversation can
            // continue -- the *request* is bad, not the stream.
            Status status = decodeError == WireError::Oversized
                                ? Status::Oversized
                                : Status::BadRequest;
            queue.noteRejected(status);
            reply(*conn, errorResponse(request.id, request.tag, status,
                                       wireErrorName(decodeError)));
            continue;
        }
        handleRequest(conn, std::move(request), arrival);
    }
}

void
AlignServer::handleRequest(const std::shared_ptr<Connection> &conn,
                           Request request,
                           std::chrono::steady_clock::time_point arrival)
{
    const uint32_t id = request.id;
    const RequestTag tag = request.tag;

    // Stats and Ping bypass the queue: the metrics endpoint must
    // answer precisely when the daemon is saturated.
    if (tag == RequestTag::Ping) {
        Response r;
        r.id = id;
        r.tag = tag;
        reply(*conn, r);
        return;
    }
    if (tag == RequestTag::Stats) {
        Response r;
        r.id = id;
        r.tag = tag;
        r.queueStats = queue.stats().wire();
        r.shardStats = shards.statsSnapshot();
        reply(*conn, r);
        return;
    }

    // Build the race problem(s); every wire-level validation already
    // passed, so the remaining admission gate is the library's own
    // budget check below -- one call covers grid cells and graph
    // product states for every kind, instead of a per-tag copy.
    std::vector<api::RaceProblem> problems;
    switch (tag) {
    case RequestTag::Pairwise:
        problems.push_back(api::RaceProblem::pairwiseAlignment(
            *request.matrix, *request.a, *request.b));
        break;
    case RequestTag::Affine:
        problems.push_back(api::RaceProblem::affineAlignment(
            *request.matrix,
            bio::AffineGapCosts{request.open, request.extend},
            *request.a, *request.b));
        break;
    case RequestTag::Screen:
        problems.push_back(api::RaceProblem::thresholdScreen(
            *request.matrix, request.threshold, *request.a,
            *request.b));
        break;
    case RequestTag::Dtw:
        problems.push_back(api::RaceProblem::dtw(std::move(request.x),
                                                 std::move(request.y)));
        break;
    case RequestTag::GraphAlign:
        if (!cfg.graph) {
            queue.noteRejected(Status::BadRequest);
            reply(*conn, errorResponse(id, tag, Status::BadRequest,
                                       "no pangenome loaded"));
            return;
        }
        problems.push_back(api::RaceProblem::graphAlign(
            *cfg.graphMatrix, *request.read, cfg.graph,
            request.threshold));
        break;
    case RequestTag::MapReads: {
        if (!cfg.graph) {
            queue.noteRejected(Status::BadRequest);
            reply(*conn, errorResponse(id, tag, Status::BadRequest,
                                       "no pangenome loaded"));
            return;
        }
        if (request.reads.empty()) {
            queue.noteRejected(Status::BadRequest);
            reply(*conn, errorResponse(id, tag, Status::BadRequest,
                                       "batch carries no reads"));
            return;
        }
        if (request.reads.size() > cfg.maxBatchReads) {
            queue.noteRejected(Status::Oversized);
            reply(*conn, errorResponse(id, tag, Status::Oversized,
                                       "batch exceeds maxBatchReads"));
            return;
        }
        for (bio::Sequence &read : request.reads)
            problems.push_back(api::RaceProblem::graphAlign(
                *cfg.graphMatrix, std::move(read), cfg.graph,
                request.threshold));
        break;
    }
    case RequestTag::Stats:
    case RequestTag::Ping:
        rl_panic("inline tags handled above");
    }

    // One admission gate for all queued kinds: a grid lattice over
    // maxGridCells bounces as Oversized, a graph-align product over
    // maxProductStates (or the kernel's 32-bit id space) as
    // ResourceExhausted.  statusForCode() maps the library verdict
    // mechanically; there is no per-tag judgment left here.
    api::ProblemLimits limits;
    limits.maxGridCells = cfg.maxGridCells;
    limits.maxProductStates = cfg.engine.maxProductStates;
    for (const api::RaceProblem &problem : problems) {
        racelogic::Status budget = api::checkBudgets(problem, limits);
        if (!budget.ok()) {
            const Status verdict = statusForCode(budget.code());
            queue.noteRejected(verdict);
            reply(*conn,
                  errorResponse(id, tag, verdict, budget.message()));
            return;
        }
    }

    // The request's relative deadline, anchored at frame arrival
    // (client and daemon clocks need not agree).
    auto deadline = std::chrono::steady_clock::time_point::max();
    if (request.deadlineMs > 0)
        deadline = arrival + std::chrono::milliseconds(request.deadlineMs);

    // All of a batch's problems share one shape (same graph, same
    // matrix), so the whole batch runs on one shard as one job.
    const size_t shard = shards.shardFor(problems.front());
    QueuedJob job;
    job.shard = shard;
    job.deadline = deadline;
    job.onShed = [this, conn, id, tag] {
        reply(*conn, errorResponse(id, tag, Status::DeadlineExceeded,
                                   "deadline expired while queued"));
    };
    job.run = [this, conn, id, tag, shard, deadline,
               problems = std::move(problems)]() mutable {
        // A live deadline becomes a cooperative cancel token: the
        // bucket-sweep kernels poll it once per simulated cycle and
        // abort with a typed result instead of finishing a race
        // nobody is waiting for.  No deadline, no token -- the solve
        // path stays bit-identical to a direct engine call.
        const bool hasDeadline =
            deadline != std::chrono::steady_clock::time_point::max();
        core::CancelToken token(deadline);
        const core::CancelToken *cancel = hasDeadline ? &token : nullptr;

        Response r;
        r.id = id;
        r.tag = tag;
        // trySolveOn re-validates before any plan build, so even a
        // problem that slipped past admission earns a typed reply
        // here instead of tripping a library fatal on a worker.
        if (tag == RequestTag::MapReads) {
            r.reads.reserve(problems.size());
            for (api::RaceProblem &problem : problems) {
                problem.cancel = cancel;
                Expected<api::RaceResult> result =
                    shards.trySolveOn(shard, problem);
                if (!result.ok()) {
                    reply(*conn,
                          errorResponse(id, tag,
                                        statusForCode(
                                            result.status().code()),
                                        result.status().message()));
                    return;
                }
                if (result.value().cancelled) {
                    // The deadline covers the whole batch; once it
                    // trips there is no point racing the rest.
                    reply(*conn,
                          errorResponse(id, tag,
                                        Status::DeadlineExceeded,
                                        "deadline expired mid-batch"));
                    return;
                }
                ReadReply rr;
                rr.score = result.value().score;
                rr.cyclesUsed = result.value().cyclesUsed;
                rr.accepted = result.value().accepted;
                r.reads.push_back(rr);
            }
        } else {
            problems.front().cancel = cancel;
            Expected<api::RaceResult> result =
                shards.trySolveOn(shard, problems.front());
            if (!result.ok()) {
                reply(*conn,
                      errorResponse(id, tag,
                                    statusForCode(
                                        result.status().code()),
                                    result.status().message()));
                return;
            }
            if (result.value().cancelled) {
                reply(*conn,
                      errorResponse(id, tag, Status::DeadlineExceeded,
                                    "deadline expired mid-race"));
                return;
            }
            r.solve = toSolveReply(result.value());
        }
        reply(*conn, r);
    };

    switch (queue.tryPush(std::move(job))) {
    case RequestQueue::Admit::Accepted:
        break; // the job itself replies once it has raced
    case RequestQueue::Admit::QueueFull:
        reply(*conn, errorResponse(id, tag, Status::QueueFull,
                                   "admission queue at depth"));
        break;
    case RequestQueue::Admit::ShuttingDown:
        reply(*conn, errorResponse(id, tag, Status::ShuttingDown,
                                   "daemon draining"));
        break;
    }
}

void
AlignServer::dispatchLoop()
{
    for (;;) {
        std::vector<QueuedJob> shed;
        std::vector<QueuedJob> batch = queue.drain(
            cfg.drainBatchMax == 0 ? 1 : cfg.drainBatchMax, &shed);
        if (batch.empty() && shed.empty())
            return; // shutdown with nothing left

        // Group by shard: jobs for different shards run concurrently
        // on the pool, jobs for the same shard run serially within
        // their group (the engines are owner-thread-only).
        std::vector<std::vector<QueuedJob *>> groups;
        std::vector<size_t> groupShard;
        for (QueuedJob &job : batch) {
            size_t g = 0;
            for (; g < groupShard.size(); ++g)
                if (groupShard[g] == job.shard)
                    break;
            if (g == groupShard.size()) {
                groupShard.push_back(job.shard);
                groups.emplace_back();
            }
            groups[g].push_back(&job);
        }

        // Shed replies ride the pool as one extra group: the write
        // (bounded by ioTimeoutMs) must not stall the dispatcher.
        const size_t shedGroup = shed.empty() ? 0 : 1;
        try {
            pool.parallelFor(groups.size() + shedGroup, [&](size_t g) {
                if (g == groups.size()) {
                    for (QueuedJob &job : shed)
                        if (job.onShed)
                            job.onShed();
                    return;
                }
                for (QueuedJob *job : groups[g])
                    job->run();
            });
        } catch (const std::exception &e) {
            // A throwing job must not take the dispatcher down with
            // it; the affected request simply never gets a reply.
            rl_warn("serve: job raised '", e.what(),
                    "'; dispatcher continues");
        }
        // Shed jobs were never inflight; only the raced batch retires.
        if (!batch.empty())
            queue.markDone(batch.size());
    }
}

void
AlignServer::reply(Connection &conn, const Response &response)
{
    std::vector<uint8_t> framed = frame(encodeResponse(response));
    const IoDeadline deadline =
        deadlineAfterMs(cfg.ioTimeoutMs > 0 ? cfg.ioTimeoutMs : -1);
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    // A vanished peer is its own problem; the daemon just moves on.
    // A peer that stopped *reading* is worse: once the write deadline
    // trips the connection is severed, so a stalled receive window
    // costs at most ioTimeoutMs of one worker's time -- it can never
    // wedge the pool behind one slow socket.
    const IoStatus wrote =
        writeAll(conn.fd.get(), framed.data(), framed.size(), deadline);
    if (wrote == IoStatus::Timeout)
        ::shutdown(conn.fd.get(), SHUT_RDWR);
}

} // namespace racelogic::serve
