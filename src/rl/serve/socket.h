/**
 * @file
 * Thin POSIX socket helpers for the serve daemon and its clients.
 *
 * Everything here is deliberately boring: RAII fd ownership, listen/
 * connect over Unix-domain or TCP-loopback sockets, and exact-length
 * read/write loops that retry EINTR and report peer disconnects as a
 * clean false instead of a signal or an exception.  The wire protocol
 * (rl/serve/wire.h) sits entirely above this layer.
 *
 * Every transfer loop is poll()-based and can carry an absolute
 * deadline (IoDeadline): a peer that stops sending or stops reading
 * turns into a typed IoStatus::Timeout instead of a thread pinned in
 * recv()/send() forever.  kNoDeadline recovers the old blocking
 * behaviour.  The loops also consult the process-global
 * serve::FaultInjector (rl/serve/fault.h) when one is installed --
 * tests and tools only; an uninstalled injector costs one relaxed
 * atomic load per syscall.
 */

#ifndef RACELOGIC_SERVE_SOCKET_H
#define RACELOGIC_SERVE_SOCKET_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace racelogic::serve {

/** Owns one file descriptor; closes it on destruction. */
class ScopedFd
{
  public:
    ScopedFd() = default;
    explicit ScopedFd(int fd) : fd_(fd) {}
    ~ScopedFd() { reset(); }

    ScopedFd(ScopedFd &&other) noexcept : fd_(other.release()) {}
    ScopedFd &
    operator=(ScopedFd &&other) noexcept
    {
        if (this != &other)
            reset(other.release());
        return *this;
    }

    ScopedFd(const ScopedFd &) = delete;
    ScopedFd &operator=(const ScopedFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /** Close the current fd (if any) and adopt a new one. */
    void reset(int fd = -1);

  private:
    int fd_ = -1;
};

/** @name Deadlines
 * I/O deadlines are absolute steady-clock instants, so one deadline
 * naturally spans a multi-syscall loop (and a multi-frame exchange)
 * without re-arming per call.
 * @{ */
using IoClock = std::chrono::steady_clock;
using IoDeadline = IoClock::time_point;

/** "Wait forever": the old blocking behaviour. */
inline constexpr IoDeadline kNoDeadline = IoDeadline::max();

/**
 * The instant `timeoutMs` milliseconds from now; negative means
 * kNoDeadline.
 */
IoDeadline deadlineAfterMs(int64_t timeoutMs);
/** @} */

/** Outcome of one exact-length transfer. */
enum class IoStatus : uint8_t {
    Ok,      ///< all n bytes moved
    Eof,     ///< orderly peer close mid-transfer (reads only)
    Timeout, ///< the deadline expired first
    Error,   ///< hard socket error (ECONNRESET, EPIPE, ...)
};

/** Human-readable IoStatus name ("ok", "eof", ...). */
const char *ioStatusName(IoStatus status);

/**
 * Bind + listen on a Unix-domain socket at `path`, unlinking any
 * stale socket file first.  Returns an invalid fd on failure (errno
 * preserved for the caller's error report).
 */
ScopedFd listenUnix(const std::string &path);

/**
 * Bind + listen on loopback TCP.  `port` 0 asks the kernel for an
 * ephemeral port; `boundPort` reports the actual port either way.
 */
ScopedFd listenTcp(uint16_t port, uint16_t &boundPort);

/**
 * Connect to a Unix-domain socket; invalid fd on failure.  The
 * connect itself is bounded by `timeoutMs` (negative: wait forever)
 * via a non-blocking connect + poll, so a dead or unresponsive
 * address fails with ETIMEDOUT instead of blocking the caller
 * indefinitely.  The returned fd is left non-blocking -- the
 * poll-based transfer loops below handle that transparently.
 */
ScopedFd connectUnix(const std::string &path, int64_t timeoutMs = -1);

/** Connect to loopback TCP; same deadline semantics as connectUnix. */
ScopedFd connectTcp(uint16_t port, int64_t timeoutMs = -1);

/** Put `fd` in non-blocking mode; false on fcntl failure. */
bool setNonBlocking(int fd);

/**
 * Read exactly `n` bytes by `deadline`, retrying EINTR, EAGAIN, and
 * short reads via poll().  Works on blocking and non-blocking fds
 * alike.  A timeout may leave a partial frame consumed -- the
 * connection's framing is gone; callers must close, not retry.
 */
IoStatus readExact(int fd, void *buffer, size_t n, IoDeadline deadline);

/**
 * Write all `n` bytes by `deadline`, retrying EINTR, EAGAIN, and
 * short writes via poll(), with SIGPIPE suppressed (MSG_NOSIGNAL) so
 * a vanished peer is a status return, not a process-killing signal.
 * A timeout may leave a partial frame sent; callers must close.
 */
IoStatus writeAll(int fd, const void *buffer, size_t n,
                  IoDeadline deadline);

/**
 * Read exactly `n` bytes with no deadline.  Returns false on EOF or
 * error -- for a framed protocol both simply mean "this conversation
 * is over".
 */
bool readExact(int fd, void *buffer, size_t n);

/** Write all `n` bytes with no deadline; false on error. */
bool writeAll(int fd, const void *buffer, size_t n);

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_SOCKET_H
