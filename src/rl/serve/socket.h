/**
 * @file
 * Thin POSIX socket helpers for the serve daemon and its clients.
 *
 * Everything here is deliberately boring: RAII fd ownership, listen/
 * connect over Unix-domain or TCP-loopback sockets, and exact-length
 * read/write loops that retry EINTR and report peer disconnects as a
 * clean false instead of a signal or an exception.  The wire protocol
 * (rl/serve/wire.h) sits entirely above this layer.
 */

#ifndef RACELOGIC_SERVE_SOCKET_H
#define RACELOGIC_SERVE_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace racelogic::serve {

/** Owns one file descriptor; closes it on destruction. */
class ScopedFd
{
  public:
    ScopedFd() = default;
    explicit ScopedFd(int fd) : fd_(fd) {}
    ~ScopedFd() { reset(); }

    ScopedFd(ScopedFd &&other) noexcept : fd_(other.release()) {}
    ScopedFd &
    operator=(ScopedFd &&other) noexcept
    {
        if (this != &other)
            reset(other.release());
        return *this;
    }

    ScopedFd(const ScopedFd &) = delete;
    ScopedFd &operator=(const ScopedFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /** Close the current fd (if any) and adopt a new one. */
    void reset(int fd = -1);

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on a Unix-domain socket at `path`, unlinking any
 * stale socket file first.  Returns an invalid fd on failure (errno
 * preserved for the caller's error report).
 */
ScopedFd listenUnix(const std::string &path);

/**
 * Bind + listen on loopback TCP.  `port` 0 asks the kernel for an
 * ephemeral port; `boundPort` reports the actual port either way.
 */
ScopedFd listenTcp(uint16_t port, uint16_t &boundPort);

/** Connect to a Unix-domain socket; invalid fd on failure. */
ScopedFd connectUnix(const std::string &path);

/** Connect to loopback TCP; invalid fd on failure. */
ScopedFd connectTcp(uint16_t port);

/**
 * Read exactly `n` bytes, retrying EINTR and short reads.  Returns
 * false on EOF or error -- for a framed protocol both simply mean
 * "this conversation is over".
 */
bool readExact(int fd, void *buffer, size_t n);

/**
 * Write all `n` bytes, retrying EINTR and short writes, with SIGPIPE
 * suppressed (MSG_NOSIGNAL) so a vanished peer is a false return, not
 * a process-killing signal.
 */
bool writeAll(int fd, const void *buffer, size_t n);

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_SOCKET_H
