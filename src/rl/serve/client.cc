#include "rl/serve/client.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

namespace racelogic::serve {

ServeClient
ServeClient::overUnix(const std::string &path, int64_t connectTimeoutMs)
{
    ServeClient client;
    client.viaUnix = true;
    client.unixPath = path;
    client.fd = connectUnix(path, connectTimeoutMs);
    return client;
}

ServeClient
ServeClient::overTcp(uint16_t port, int64_t connectTimeoutMs)
{
    ServeClient client;
    client.viaUnix = false;
    client.tcpPort = port;
    client.fd = connectTcp(port, connectTimeoutMs);
    return client;
}

bool
ServeClient::reconnect(int64_t connectTimeoutMs)
{
    fd.reset();
    if (viaUnix) {
        if (unixPath.empty())
            return false;
        fd = connectUnix(unixPath, connectTimeoutMs);
    } else {
        fd = connectTcp(tcpPort, connectTimeoutMs);
    }
    return fd.valid();
}

bool
ServeClient::submitPairwise(uint32_t id, const bio::ScoreMatrix &costs,
                            const std::string &a, const std::string &b,
                            uint32_t deadlineMs, Priority priority)
{
    return submitRaw(encodePairwise(id, costs, a, b, deadlineMs,
                                    priority));
}

bool
ServeClient::submitAffine(uint32_t id, const bio::ScoreMatrix &costs,
                          bio::Score open, bio::Score extend,
                          const std::string &a, const std::string &b,
                          uint32_t deadlineMs, Priority priority)
{
    return submitRaw(encodeAffine(id, costs, open, extend, a, b,
                                  deadlineMs, priority));
}

bool
ServeClient::submitScreen(uint32_t id, const bio::ScoreMatrix &costs,
                          bio::Score threshold, const std::string &a,
                          const std::string &b, uint32_t deadlineMs,
                          Priority priority)
{
    return submitRaw(encodeScreen(id, costs, threshold, a, b, deadlineMs,
                                  priority));
}

bool
ServeClient::submitDtw(uint32_t id, const std::vector<apps::Sample> &x,
                       const std::vector<apps::Sample> &y,
                       uint32_t deadlineMs, Priority priority)
{
    return submitRaw(encodeDtw(id, x, y, deadlineMs, priority));
}

bool
ServeClient::submitGraphAlign(uint32_t id, const std::string &read,
                              bio::Score threshold, uint32_t deadlineMs,
                              Priority priority)
{
    return submitRaw(encodeGraphAlign(id, read, threshold, deadlineMs,
                                      priority));
}

bool
ServeClient::submitMapReads(uint32_t id, const std::string &fasta,
                            bio::Score threshold, uint32_t deadlineMs,
                            Priority priority)
{
    return submitRaw(encodeMapReads(id, fasta, threshold, deadlineMs,
                                    priority));
}

bool
ServeClient::submitStats(uint32_t id)
{
    return submitRaw(encodeStatsRequest(id));
}

bool
ServeClient::submitPing(uint32_t id)
{
    return submitRaw(encodePing(id));
}

bool
ServeClient::submitMetrics(uint32_t id)
{
    return submitRaw(encodeMetricsRequest(id));
}

bool
ServeClient::submitHealth(uint32_t id)
{
    return submitRaw(encodeHealthRequest(id));
}

bool
ServeClient::submitRaw(const std::vector<uint8_t> &payload)
{
    return sendBytes(frame(payload));
}

bool
ServeClient::sendBytes(const std::vector<uint8_t> &bytes)
{
    if (!fd.valid())
        return false;
    return writeAll(fd.get(), bytes.data(), bytes.size());
}

bool
ServeClient::receive(Response &out, uint32_t maxFrameBytes)
{
    return receive(out, kNoDeadline, maxFrameBytes) == IoStatus::Ok;
}

IoStatus
ServeClient::receive(Response &out, IoDeadline deadline,
                     uint32_t maxFrameBytes)
{
    if (!fd.valid())
        return IoStatus::Error;
    uint8_t header[4];
    IoStatus status =
        readExact(fd.get(), header, sizeof(header), deadline);
    if (status != IoStatus::Ok)
        return status;
    uint32_t length = 0;
    if (parseFrameHeader(header, sizeof(header), maxFrameBytes,
                         length) != WireError::None)
        return IoStatus::Error;
    std::vector<uint8_t> payload(length);
    if (length > 0) {
        status = readExact(fd.get(), payload.data(), length, deadline);
        if (status != IoStatus::Ok)
            return status;
    }
    return decodeResponse(payload, out) == WireError::None
               ? IoStatus::Ok
               : IoStatus::Error;
}

bool
ServeClient::call(const std::vector<uint8_t> &payload, Response &out,
                  const RetryPolicy &policy)
{
    const std::vector<uint8_t> framed = frame(payload);
    std::mt19937_64 rng(policy.jitterSeed);
    int64_t backoff = std::max<int64_t>(policy.backoffBaseMs, 1);
    bool sawQueueFull = false;

    for (int attempt = 0; attempt < policy.maxAttempts; ++attempt) {
        if (attempt > 0) {
            std::uniform_int_distribution<int64_t> jitter(0, backoff);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff + jitter(rng)));
            backoff = std::min(backoff * 2, policy.backoffMaxMs);
        }

        if (!fd.valid() && !reconnect(policy.timeoutMs))
            continue; // daemon not reachable yet; back off and retry

        const IoDeadline deadline = deadlineAfterMs(policy.timeoutMs);
        if (writeAll(fd.get(), framed.data(), framed.size(), deadline) !=
            IoStatus::Ok) {
            fd.reset();
            continue;
        }
        const IoStatus status = receive(out, deadline);
        if (status != IoStatus::Ok) {
            // Timeout or disconnect mid-frame: the stream's framing
            // is ambiguous, so the connection cannot be reused.
            fd.reset();
            continue;
        }
        if (out.status == Status::QueueFull) {
            // The one transient verdict: the daemon is alive but
            // saturated.  The connection is fine; just back off.
            sawQueueFull = true;
            continue;
        }
        return true;
    }
    // Exhausted.  If the last decoded response was QueueFull, `out`
    // still holds it -- let the caller see the verdict.
    return sawQueueFull;
}

} // namespace racelogic::serve
