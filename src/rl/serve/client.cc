#include "rl/serve/client.h"

namespace racelogic::serve {

ServeClient
ServeClient::overUnix(const std::string &path)
{
    ServeClient client;
    client.fd = connectUnix(path);
    return client;
}

ServeClient
ServeClient::overTcp(uint16_t port)
{
    ServeClient client;
    client.fd = connectTcp(port);
    return client;
}

bool
ServeClient::submitPairwise(uint32_t id, const bio::ScoreMatrix &costs,
                            const std::string &a, const std::string &b)
{
    return submitRaw(encodePairwise(id, costs, a, b));
}

bool
ServeClient::submitAffine(uint32_t id, const bio::ScoreMatrix &costs,
                          bio::Score open, bio::Score extend,
                          const std::string &a, const std::string &b)
{
    return submitRaw(encodeAffine(id, costs, open, extend, a, b));
}

bool
ServeClient::submitScreen(uint32_t id, const bio::ScoreMatrix &costs,
                          bio::Score threshold, const std::string &a,
                          const std::string &b)
{
    return submitRaw(encodeScreen(id, costs, threshold, a, b));
}

bool
ServeClient::submitDtw(uint32_t id, const std::vector<apps::Sample> &x,
                       const std::vector<apps::Sample> &y)
{
    return submitRaw(encodeDtw(id, x, y));
}

bool
ServeClient::submitGraphAlign(uint32_t id, const std::string &read,
                              bio::Score threshold)
{
    return submitRaw(encodeGraphAlign(id, read, threshold));
}

bool
ServeClient::submitMapReads(uint32_t id, const std::string &fasta,
                            bio::Score threshold)
{
    return submitRaw(encodeMapReads(id, fasta, threshold));
}

bool
ServeClient::submitStats(uint32_t id)
{
    return submitRaw(encodeStatsRequest(id));
}

bool
ServeClient::submitPing(uint32_t id)
{
    return submitRaw(encodePing(id));
}

bool
ServeClient::submitRaw(const std::vector<uint8_t> &payload)
{
    return sendBytes(frame(payload));
}

bool
ServeClient::sendBytes(const std::vector<uint8_t> &bytes)
{
    if (!fd.valid())
        return false;
    return writeAll(fd.get(), bytes.data(), bytes.size());
}

bool
ServeClient::receive(Response &out, uint32_t maxFrameBytes)
{
    if (!fd.valid())
        return false;
    uint8_t header[4];
    if (!readExact(fd.get(), header, sizeof(header)))
        return false;
    uint32_t length = 0;
    if (parseFrameHeader(header, sizeof(header), maxFrameBytes,
                         length) != WireError::None)
        return false;
    std::vector<uint8_t> payload(length);
    if (length > 0 && !readExact(fd.get(), payload.data(), length))
        return false;
    return decodeResponse(payload, out) == WireError::None;
}

} // namespace racelogic::serve
