#include "rl/serve/fault.h"

#include <chrono>
#include <thread>

#include <sys/socket.h>

namespace racelogic::serve {

namespace {

std::atomic<FaultInjector *> globalInjector{nullptr};

} // namespace

FaultInjector::FaultInjector(const FaultConfig &config)
    : cfg(config), rng(config.seed)
{
}

FaultInjector::FdState &
FaultInjector::touch(int fd)
{
    auto [it, fresh] = perFd.try_emplace(fd);
    if (fresh && cfg.dropProbability > 0.0) {
        std::bernoulli_distribution doomed(cfg.dropProbability);
        if (doomed(rng)) {
            std::uniform_int_distribution<uint64_t> offset(
                cfg.dropMinBytes, cfg.dropMaxBytes);
            it->second.dropAt = offset(rng);
        }
    }
    return it->second;
}

FaultAction
FaultInjector::beforeIo(int fd, size_t want, bool)
{
    uint32_t delayMicros = 0;
    FaultAction action;
    {
        std::lock_guard<std::mutex> lock(mutex);
        FdState &state = touch(fd);

        if (state.bytes >= state.dropAt) {
            if (!state.severed) {
                state.severed = true;
                ++counters.drops;
                ::shutdown(fd, SHUT_RDWR);
            }
            action.dropped = true;
            return action;
        }

        if (cfg.delayProbability > 0.0 && cfg.delayMaxMicros > 0) {
            std::bernoulli_distribution hit(cfg.delayProbability);
            if (hit(rng)) {
                std::uniform_int_distribution<uint32_t> dist(
                    1, cfg.delayMaxMicros);
                delayMicros = dist(rng);
                ++counters.delays;
            }
        }

        if (cfg.shortIoProbability > 0.0 && want > 1) {
            std::bernoulli_distribution hit(cfg.shortIoProbability);
            if (hit(rng)) {
                std::uniform_int_distribution<size_t> dist(1, 8);
                action.chunkCap = dist(rng);
                ++counters.shortIos;
            }
        }

        // Never let a single transfer overshoot the drop offset: the
        // severing must land at the drawn byte, not somewhere past it.
        if (state.dropAt != UINT64_MAX) {
            const uint64_t left = state.dropAt - state.bytes;
            if (action.chunkCap == 0 || action.chunkCap > left)
                action.chunkCap = static_cast<size_t>(
                    left < want ? left : static_cast<uint64_t>(want));
            if (action.chunkCap == 0) // dropAt == bytes handled above
                action.chunkCap = 1;
        }
    }
    if (delayMicros > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(delayMicros));
    return action;
}

void
FaultInjector::afterIo(int fd, size_t transferred)
{
    std::lock_guard<std::mutex> lock(mutex);
    touch(fd).bytes += transferred;
}

void
FaultInjector::forgetFd(int fd)
{
    std::lock_guard<std::mutex> lock(mutex);
    perFd.erase(fd);
}

FaultInjector::Stats
FaultInjector::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

void
FaultInjector::install(FaultInjector *injector) noexcept
{
    globalInjector.store(injector, std::memory_order_release);
}

FaultInjector *
FaultInjector::installed() noexcept
{
    return globalInjector.load(std::memory_order_relaxed);
}

} // namespace racelogic::serve
