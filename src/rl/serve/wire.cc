#include "rl/serve/wire.h"

#include <cstring>

#include "rl/bio/fasta.h"

namespace racelogic::serve {

namespace {

// ------------------------------------------------------------ byte IO

/** Append-only little-endian writer. */
class Writer
{
  public:
    explicit Writer(std::vector<uint8_t> &out) : bytes(out) {}

    void
    u8(uint8_t v)
    {
        bytes.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes.insert(bytes.end(), s.begin(), s.end());
    }

  private:
    std::vector<uint8_t> &bytes;
};

/**
 * Bounds-checked little-endian reader.  Every read reports
 * truncation instead of walking off the payload, so a hostile frame
 * can never index out of bounds.
 */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &in) : bytes(in) {}

    bool
    u8(uint8_t &v)
    {
        if (pos + 1 > bytes.size())
            return false;
        v = bytes[pos++];
        return true;
    }

    bool
    u32(uint32_t &v)
    {
        if (pos + 4 > bytes.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(bytes[pos++]) << (8 * i);
        return true;
    }

    bool
    u64(uint64_t &v)
    {
        if (pos + 8 > bytes.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(bytes[pos++]) << (8 * i);
        return true;
    }

    bool
    i64(int64_t &v)
    {
        uint64_t raw;
        if (!u64(raw))
            return false;
        std::memcpy(&v, &raw, sizeof v);
        return true;
    }

    /** Length-prefixed string, capped so a lying prefix truncates. */
    bool
    str(std::string &s, uint32_t maxLength)
    {
        uint32_t n;
        if (!u32(n))
            return false;
        if (n > maxLength || pos + n > bytes.size())
            return false;
        s.assign(reinterpret_cast<const char *>(bytes.data() + pos), n);
        pos += n;
        return true;
    }

    bool
    done() const
    {
        return pos == bytes.size();
    }

  private:
    const std::vector<uint8_t> &bytes;
    size_t pos = 0;
};

// --------------------------------------------------- matrix round-trip

/** Serialize a cost matrix: alphabet letters + (N+1)^2 weight table. */
void
writeMatrix(Writer &w, const bio::ScoreMatrix &m)
{
    w.str(m.alphabet().letters());
    const size_t n = m.alphabet().size();
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            w.i64(m.pair(static_cast<bio::Symbol>(i),
                         static_cast<bio::Symbol>(j)));
    for (size_t i = 0; i < n; ++i)
        w.i64(m.gap(static_cast<bio::Symbol>(i)));
}

/**
 * Read and validate an inline cost matrix.  `finitePairs` additionally
 * forbids infinite pair weights (the affine lattice bakes pair costs
 * into edges, so they must exist).  Validation is the library's own
 * rule book -- Alphabet::tryMake() for the letters,
 * ScoreMatrix::validateRaceReady() under the wire's weight cap --
 * mapped mechanically onto WireError, so decode and the engine's
 * preconditions cannot drift apart.  Returns None / Truncated /
 * BadRequest.
 */
WireError
readMatrix(Reader &r, bool finitePairs, std::optional<bio::ScoreMatrix> &out)
{
    std::string letters;
    if (!r.str(letters, kMaxWireAlphabet))
        return WireError::Truncated;
    auto alphabet = bio::Alphabet::tryMake(letters);
    if (!alphabet.ok())
        return wireErrorForCode(alphabet.status().code());

    const size_t n = letters.size();
    std::vector<int64_t> pairs(n * n);
    for (int64_t &p : pairs)
        if (!r.i64(p))
            return WireError::Truncated;
    std::vector<int64_t> gaps(n);
    for (int64_t &g : gaps)
        if (!r.i64(g))
            return WireError::Truncated;

    bio::ScoreMatrix m(std::move(alphabet.value()), bio::ScoreKind::Cost);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j)
            m.setPair(static_cast<bio::Symbol>(i),
                      static_cast<bio::Symbol>(j), pairs[i * n + j]);
        m.setGap(static_cast<bio::Symbol>(i), gaps[i]);
    }
    if (racelogic::Status ready = m.validateRaceReady(
            kMaxWireWeight, /*allowForbiddenPairs=*/!finitePairs);
        !ready.ok())
        return wireErrorForCode(ready.code());
    out.emplace(std::move(m));
    return WireError::None;
}

/**
 * Read a sequence string and encode it over `alphabet` via the
 * library's strict Sequence::tryEncode() (exact-match letters: the
 * protocol is strict upper-case; clients fold).
 */
WireError
readSequence(Reader &r, const bio::Alphabet &alphabet, bool allowEmpty,
             std::optional<bio::Sequence> &out)
{
    std::string text;
    if (!r.str(text, kMaxWireSequence))
        return WireError::Truncated;
    if (text.empty() && !allowEmpty)
        return WireError::BadRequest;
    auto encoded = bio::Sequence::tryEncode(alphabet, text);
    if (!encoded.ok())
        return wireErrorForCode(encoded.status().code());
    out.emplace(std::move(encoded.value()));
    return WireError::None;
}

/** Finite threshold in [0, kScoreInfinity), or the sentinel. */
bool
validThreshold(int64_t t, bool sentinelAllowed)
{
    if (t == bio::kScoreInfinity)
        return sentinelAllowed;
    return t >= 0 && t < bio::kScoreInfinity;
}

WireError
readSignal(Reader &r, std::vector<apps::Sample> &out)
{
    uint32_t n;
    if (!r.u32(n))
        return WireError::Truncated;
    if (n == 0 || n > kMaxWireSamples)
        return WireError::BadRequest;
    out.resize(n);
    for (apps::Sample &s : out) {
        if (!r.i64(s))
            return WireError::Truncated;
        if (s < -kMaxWireSample || s > kMaxWireSample)
            return WireError::BadRequest;
    }
    return WireError::None;
}

/**
 * Parse an untrusted MapReads FASTA payload with the ONE shared
 * bio::fasta parser, caps set to the protocol's admission limits.
 * Structural faults (ParseError), foreign letters (InvalidArgument)
 * and over-cap records (Oversized) come back as the library's typed
 * Status and map mechanically onto WireError; an empty batch is a
 * BadRequest of the wire's own (a daemon race of zero reads is a
 * client bug, not a file-format question).
 */
WireError
readFastaBatch(const std::string &text, const bio::Alphabet &alphabet,
               std::vector<bio::Sequence> &out)
{
    bio::FastaLimits limits;
    limits.maxSequenceLength = kMaxWireSequence;
    auto records = bio::tryReadFasta(text, alphabet, limits);
    if (!records.ok())
        return wireErrorForCode(records.status().code());
    if (records.value().empty())
        return WireError::BadRequest;
    out.reserve(records.value().size());
    for (bio::FastaRecord &record : records.value())
        out.push_back(std::move(record.sequence));
    return WireError::None;
}

/** Start a request payload: id + tag + deadline (ms) + priority. */
std::vector<uint8_t>
requestHeader(uint32_t id, RequestTag tag, uint32_t deadlineMs,
              Priority priority = Priority::Normal)
{
    std::vector<uint8_t> payload;
    Writer w(payload);
    w.u32(id);
    w.u8(static_cast<uint8_t>(tag));
    w.u32(deadlineMs);
    w.u8(static_cast<uint8_t>(priority));
    return payload;
}

} // namespace

const char *
wireErrorName(WireError error)
{
    switch (error) {
    case WireError::None: return "none";
    case WireError::Truncated: return "truncated";
    case WireError::Oversized: return "oversized";
    case WireError::UnknownKind: return "unknown-kind";
    case WireError::BadRequest: return "bad-request";
    }
    return "unknown";
}

const char *
statusName(Status status)
{
    switch (status) {
    case Status::Ok: return "ok";
    case Status::QueueFull: return "queue-full";
    case Status::Oversized: return "oversized";
    case Status::BadRequest: return "bad-request";
    case Status::ShuttingDown: return "shutting-down";
    case Status::DeadlineExceeded: return "deadline-exceeded";
    case Status::ResourceExhausted: return "resource-exhausted";
    }
    return "unknown";
}

const char *
priorityName(Priority priority)
{
    switch (priority) {
    case Priority::Batch: return "batch";
    case Priority::Normal: return "normal";
    case Priority::Interactive: return "interactive";
    }
    return "unknown";
}

const char *
healthStateName(HealthState state)
{
    switch (state) {
    case HealthState::Ready: return "ready";
    case HealthState::Draining: return "draining";
    case HealthState::Brownout: return "brownout";
    }
    return "unknown";
}

Status
statusForCode(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Ok: return Status::Ok;
    case ErrorCode::InvalidArgument: return Status::BadRequest;
    case ErrorCode::ParseError: return Status::BadRequest;
    case ErrorCode::Unsupported: return Status::BadRequest;
    case ErrorCode::NotFound: return Status::BadRequest;
    case ErrorCode::Oversized: return Status::Oversized;
    case ErrorCode::ResourceExhausted: return Status::ResourceExhausted;
    }
    return Status::BadRequest;
}

WireError
wireErrorForCode(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Ok: return WireError::None;
    case ErrorCode::InvalidArgument: return WireError::BadRequest;
    case ErrorCode::ParseError: return WireError::BadRequest;
    case ErrorCode::Unsupported: return WireError::BadRequest;
    case ErrorCode::NotFound: return WireError::BadRequest;
    case ErrorCode::Oversized: return WireError::Oversized;
    // Compute budgets are checked after decode, but the mapping is
    // total so call sites never need a judgment call.
    case ErrorCode::ResourceExhausted: return WireError::Oversized;
    }
    return WireError::BadRequest;
}

const char *
requestTagName(RequestTag tag)
{
    switch (tag) {
    case RequestTag::Pairwise: return "pairwise";
    case RequestTag::Affine: return "affine";
    case RequestTag::Dtw: return "dtw";
    case RequestTag::Screen: return "screen";
    case RequestTag::GraphAlign: return "graph-align";
    case RequestTag::MapReads: return "map-reads";
    case RequestTag::Stats: return "stats";
    case RequestTag::Ping: return "ping";
    case RequestTag::Metrics: return "metrics";
    case RequestTag::Health: return "health";
    }
    return "unknown";
}

std::vector<uint8_t>
encodePairwise(uint32_t id, const bio::ScoreMatrix &costs,
               const std::string &a, const std::string &b,
               uint32_t deadlineMs, Priority priority)
{
    auto payload =
        requestHeader(id, RequestTag::Pairwise, deadlineMs, priority);
    Writer w(payload);
    writeMatrix(w, costs);
    w.str(a);
    w.str(b);
    return payload;
}

std::vector<uint8_t>
encodeScreen(uint32_t id, const bio::ScoreMatrix &costs,
             bio::Score threshold, const std::string &a,
             const std::string &b, uint32_t deadlineMs, Priority priority)
{
    auto payload =
        requestHeader(id, RequestTag::Screen, deadlineMs, priority);
    Writer w(payload);
    writeMatrix(w, costs);
    w.i64(threshold);
    w.str(a);
    w.str(b);
    return payload;
}

std::vector<uint8_t>
encodeAffine(uint32_t id, const bio::ScoreMatrix &costs, bio::Score open,
             bio::Score extend, const std::string &a, const std::string &b,
             uint32_t deadlineMs, Priority priority)
{
    auto payload =
        requestHeader(id, RequestTag::Affine, deadlineMs, priority);
    Writer w(payload);
    writeMatrix(w, costs);
    w.i64(open);
    w.i64(extend);
    w.str(a);
    w.str(b);
    return payload;
}

std::vector<uint8_t>
encodeDtw(uint32_t id, const std::vector<apps::Sample> &x,
          const std::vector<apps::Sample> &y, uint32_t deadlineMs,
          Priority priority)
{
    auto payload = requestHeader(id, RequestTag::Dtw, deadlineMs, priority);
    Writer w(payload);
    w.u32(static_cast<uint32_t>(x.size()));
    for (apps::Sample s : x)
        w.i64(s);
    w.u32(static_cast<uint32_t>(y.size()));
    for (apps::Sample s : y)
        w.i64(s);
    return payload;
}

std::vector<uint8_t>
encodeGraphAlign(uint32_t id, const std::string &read,
                 bio::Score threshold, uint32_t deadlineMs,
                 Priority priority)
{
    auto payload =
        requestHeader(id, RequestTag::GraphAlign, deadlineMs, priority);
    Writer w(payload);
    w.i64(threshold);
    w.str(read);
    return payload;
}

std::vector<uint8_t>
encodeMapReads(uint32_t id, const std::string &fasta, bio::Score threshold,
               uint32_t deadlineMs, Priority priority)
{
    auto payload =
        requestHeader(id, RequestTag::MapReads, deadlineMs, priority);
    Writer w(payload);
    w.i64(threshold);
    w.str(fasta);
    return payload;
}

std::vector<uint8_t>
encodeStatsRequest(uint32_t id)
{
    return requestHeader(id, RequestTag::Stats, 0);
}

std::vector<uint8_t>
encodePing(uint32_t id)
{
    return requestHeader(id, RequestTag::Ping, 0);
}

std::vector<uint8_t>
encodeMetricsRequest(uint32_t id)
{
    return requestHeader(id, RequestTag::Metrics, 0);
}

std::vector<uint8_t>
encodeHealthRequest(uint32_t id)
{
    return requestHeader(id, RequestTag::Health, 0);
}

WireError
decodeRequest(const std::vector<uint8_t> &payload,
              const bio::Alphabet &graphAlphabet, Request &out)
{
    out = Request{};
    Reader r(payload);
    if (!r.u32(out.id))
        return WireError::Truncated;
    uint8_t tag;
    if (!r.u8(tag))
        return WireError::Truncated;
    if (tag < static_cast<uint8_t>(RequestTag::Pairwise) ||
        tag > static_cast<uint8_t>(RequestTag::Health))
        return WireError::UnknownKind;
    out.tag = static_cast<RequestTag>(tag);
    if (!r.u32(out.deadlineMs))
        return WireError::Truncated;
    uint8_t priority;
    if (!r.u8(priority))
        return WireError::Truncated;
    if (priority > static_cast<uint8_t>(Priority::Interactive))
        return WireError::BadRequest;
    out.priority = static_cast<Priority>(priority);

    switch (out.tag) {
    case RequestTag::Pairwise:
    case RequestTag::Screen:
    case RequestTag::Affine: {
        const bool affine = out.tag == RequestTag::Affine;
        if (WireError e = readMatrix(r, /*finitePairs=*/affine, out.matrix);
            e != WireError::None)
            return e;
        if (out.tag == RequestTag::Screen) {
            if (!r.i64(out.threshold))
                return WireError::Truncated;
            if (!validThreshold(out.threshold, /*sentinelAllowed=*/false))
                return WireError::BadRequest;
        }
        if (affine) {
            if (!r.i64(out.open) || !r.i64(out.extend))
                return WireError::Truncated;
            if (out.extend < 1 || out.open < out.extend ||
                out.open > kMaxWireWeight)
                return WireError::BadRequest;
        }
        const bio::Alphabet &alphabet = out.matrix->alphabet();
        // Affine lattices index symbols pairwise, so both strings
        // must be non-empty; the grid kernel handles empty sides.
        if (WireError e =
                readSequence(r, alphabet, /*allowEmpty=*/!affine, out.a);
            e != WireError::None)
            return e;
        if (WireError e =
                readSequence(r, alphabet, /*allowEmpty=*/!affine, out.b);
            e != WireError::None)
            return e;
        break;
    }
    case RequestTag::Dtw: {
        if (WireError e = readSignal(r, out.x); e != WireError::None)
            return e;
        if (WireError e = readSignal(r, out.y); e != WireError::None)
            return e;
        break;
    }
    case RequestTag::GraphAlign: {
        if (!r.i64(out.threshold))
            return WireError::Truncated;
        if (!validThreshold(out.threshold, /*sentinelAllowed=*/true))
            return WireError::BadRequest;
        if (WireError e = readSequence(r, graphAlphabet,
                                       /*allowEmpty=*/true, out.read);
            e != WireError::None)
            return e;
        break;
    }
    case RequestTag::MapReads: {
        if (!r.i64(out.threshold))
            return WireError::Truncated;
        if (!validThreshold(out.threshold, /*sentinelAllowed=*/true))
            return WireError::BadRequest;
        std::string fasta;
        if (!r.str(fasta, kDefaultMaxFrameBytes))
            return WireError::Truncated;
        if (WireError e = readFastaBatch(fasta, graphAlphabet, out.reads);
            e != WireError::None)
            return e;
        break;
    }
    case RequestTag::Stats:
    case RequestTag::Ping:
    case RequestTag::Metrics:
    case RequestTag::Health:
        break;
    }

    if (!r.done())
        return WireError::BadRequest; // trailing garbage
    return WireError::None;
}

std::vector<uint8_t>
encodeResponse(const Response &response)
{
    std::vector<uint8_t> payload;
    Writer w(payload);
    w.u32(response.id);
    w.u8(static_cast<uint8_t>(response.status));
    w.u8(static_cast<uint8_t>(response.tag));
    w.str(response.message);

    if (response.status != Status::Ok)
        return payload;

    switch (response.tag) {
    case RequestTag::Pairwise:
    case RequestTag::Affine:
    case RequestTag::Dtw:
    case RequestTag::Screen:
    case RequestTag::GraphAlign: {
        const SolveReply &s = response.solve.value();
        w.i64(s.score);
        w.i64(s.racedCost);
        w.u64(s.latencyCycles);
        w.u64(s.cyclesUsed);
        w.u64(s.events);
        w.u64(s.nodes);
        w.u64(s.cellsFired);
        w.u8(s.completed ? 1 : 0);
        w.u8(s.accepted ? 1 : 0);
        break;
    }
    case RequestTag::MapReads: {
        w.u32(static_cast<uint32_t>(response.reads.size()));
        for (const ReadReply &rr : response.reads) {
            w.i64(rr.score);
            w.u64(rr.cyclesUsed);
            w.u8(rr.accepted ? 1 : 0);
        }
        break;
    }
    case RequestTag::Stats: {
        const QueueStatsWire &q = response.queueStats.value();
        w.u64(q.enqueued);
        w.u64(q.completed);
        w.u64(q.rejectedQueueFull);
        w.u64(q.rejectedOversized);
        w.u64(q.rejectedBadRequest);
        w.u64(q.rejectedResource);
        w.u64(q.rejectedShutdown);
        w.u64(q.shedDeadline);
        w.u64(q.shedEvicted);
        w.u64(q.inflight);
        w.u64(q.queued);
        w.u64(q.highWater);
        for (const ClassStatsWire &c : q.classes) {
            w.u64(c.enqueued);
            w.u64(c.completed);
            w.u64(c.rejectedQueueFull);
            w.u64(c.rejectedResource);
            w.u64(c.shedDeadline);
            w.u64(c.shedEvicted);
            w.u64(c.queued);
        }
        w.u32(static_cast<uint32_t>(response.shardStats.size()));
        for (const ShardStatsWire &s : response.shardStats) {
            w.u64(s.solves);
            w.u64(s.plansBuilt);
            w.u64(s.planCacheHits);
            w.u64(s.shardHits);
            w.u64(s.buildLocks);
        }
        break;
    }
    case RequestTag::Ping:
        break;
    case RequestTag::Health: {
        const HealthReply &h = response.health.value();
        w.u8(static_cast<uint8_t>(h.state));
        w.u64(h.uptimeMs);
        w.u64(h.graphVersion);
        break;
    }
    case RequestTag::Metrics: {
        const telemetry::Snapshot &m = response.metrics.value();
        w.u32(static_cast<uint32_t>(m.counters.size()));
        for (const telemetry::CounterSnapshot &c : m.counters) {
            w.str(c.name);
            w.u64(c.value);
        }
        w.u32(static_cast<uint32_t>(m.gauges.size()));
        for (const telemetry::GaugeSnapshot &g : m.gauges) {
            w.str(g.name);
            w.i64(g.value);
        }
        w.u32(static_cast<uint32_t>(m.histograms.size()));
        for (const telemetry::HistogramSnapshot &h : m.histograms) {
            w.str(h.name);
            w.u32(static_cast<uint32_t>(h.buckets.size()));
            for (uint64_t b : h.buckets)
                w.u64(b);
            w.u64(h.sum);
            w.u64(h.count);
        }
        break;
    }
    }
    return payload;
}

WireError
decodeResponse(const std::vector<uint8_t> &payload, Response &out)
{
    out = Response{};
    Reader r(payload);
    if (!r.u32(out.id))
        return WireError::Truncated;
    uint8_t status, tag;
    if (!r.u8(status) || !r.u8(tag))
        return WireError::Truncated;
    if (status > static_cast<uint8_t>(Status::ResourceExhausted))
        return WireError::BadRequest;
    if (tag < static_cast<uint8_t>(RequestTag::Pairwise) ||
        tag > static_cast<uint8_t>(RequestTag::Health))
        return WireError::UnknownKind;
    out.status = static_cast<Status>(status);
    out.tag = static_cast<RequestTag>(tag);
    if (!r.str(out.message, kDefaultMaxFrameBytes))
        return WireError::Truncated;

    if (out.status != Status::Ok)
        return r.done() ? WireError::None : WireError::BadRequest;

    switch (out.tag) {
    case RequestTag::Pairwise:
    case RequestTag::Affine:
    case RequestTag::Dtw:
    case RequestTag::Screen:
    case RequestTag::GraphAlign: {
        SolveReply s;
        uint8_t completed, accepted;
        if (!r.i64(s.score) || !r.i64(s.racedCost) ||
            !r.u64(s.latencyCycles) || !r.u64(s.cyclesUsed) ||
            !r.u64(s.events) || !r.u64(s.nodes) || !r.u64(s.cellsFired) ||
            !r.u8(completed) || !r.u8(accepted))
            return WireError::Truncated;
        s.completed = completed != 0;
        s.accepted = accepted != 0;
        out.solve = s;
        break;
    }
    case RequestTag::MapReads: {
        uint32_t n;
        if (!r.u32(n))
            return WireError::Truncated;
        if (n > kDefaultMaxFrameBytes / 17)
            return WireError::BadRequest;
        out.reads.resize(n);
        for (ReadReply &rr : out.reads) {
            uint8_t accepted;
            if (!r.i64(rr.score) || !r.u64(rr.cyclesUsed) ||
                !r.u8(accepted))
                return WireError::Truncated;
            rr.accepted = accepted != 0;
        }
        break;
    }
    case RequestTag::Stats: {
        QueueStatsWire q;
        if (!r.u64(q.enqueued) || !r.u64(q.completed) ||
            !r.u64(q.rejectedQueueFull) || !r.u64(q.rejectedOversized) ||
            !r.u64(q.rejectedBadRequest) || !r.u64(q.rejectedResource) ||
            !r.u64(q.rejectedShutdown) || !r.u64(q.shedDeadline) ||
            !r.u64(q.shedEvicted) || !r.u64(q.inflight) ||
            !r.u64(q.queued) || !r.u64(q.highWater))
            return WireError::Truncated;
        for (ClassStatsWire &c : q.classes) {
            if (!r.u64(c.enqueued) || !r.u64(c.completed) ||
                !r.u64(c.rejectedQueueFull) ||
                !r.u64(c.rejectedResource) || !r.u64(c.shedDeadline) ||
                !r.u64(c.shedEvicted) || !r.u64(c.queued))
                return WireError::Truncated;
        }
        uint32_t n;
        if (!r.u32(n))
            return WireError::Truncated;
        if (n > 4096)
            return WireError::BadRequest;
        out.shardStats.resize(n);
        for (ShardStatsWire &s : out.shardStats) {
            if (!r.u64(s.solves) || !r.u64(s.plansBuilt) ||
                !r.u64(s.planCacheHits) || !r.u64(s.shardHits) ||
                !r.u64(s.buildLocks))
                return WireError::Truncated;
        }
        out.queueStats = q;
        break;
    }
    case RequestTag::Ping:
        break;
    case RequestTag::Health: {
        HealthReply h;
        uint8_t state;
        if (!r.u8(state) || !r.u64(h.uptimeMs) || !r.u64(h.graphVersion))
            return WireError::Truncated;
        if (state > static_cast<uint8_t>(HealthState::Brownout))
            return WireError::BadRequest;
        h.state = static_cast<HealthState>(state);
        out.health = h;
        break;
    }
    case RequestTag::Metrics: {
        telemetry::Snapshot m;
        uint32_t nCounters;
        if (!r.u32(nCounters))
            return WireError::Truncated;
        if (nCounters > kMaxWireMetricSeries)
            return WireError::BadRequest;
        m.counters.resize(nCounters);
        for (telemetry::CounterSnapshot &c : m.counters) {
            if (!r.str(c.name, kMaxWireMetricName) || !r.u64(c.value))
                return WireError::Truncated;
        }
        uint32_t nGauges;
        if (!r.u32(nGauges))
            return WireError::Truncated;
        if (nGauges > kMaxWireMetricSeries)
            return WireError::BadRequest;
        m.gauges.resize(nGauges);
        for (telemetry::GaugeSnapshot &g : m.gauges) {
            if (!r.str(g.name, kMaxWireMetricName) || !r.i64(g.value))
                return WireError::Truncated;
        }
        uint32_t nHists;
        if (!r.u32(nHists))
            return WireError::Truncated;
        if (nHists > kMaxWireMetricHistograms)
            return WireError::BadRequest;
        m.histograms.resize(nHists);
        for (telemetry::HistogramSnapshot &h : m.histograms) {
            uint32_t nBuckets;
            if (!r.str(h.name, kMaxWireMetricName) || !r.u32(nBuckets))
                return WireError::Truncated;
            if (nBuckets > kMaxWireMetricBuckets)
                return WireError::BadRequest;
            h.buckets.resize(nBuckets);
            for (uint64_t &b : h.buckets)
                if (!r.u64(b))
                    return WireError::Truncated;
            if (!r.u64(h.sum) || !r.u64(h.count))
                return WireError::Truncated;
        }
        out.metrics = std::move(m);
        break;
    }
    }

    if (!r.done())
        return WireError::BadRequest;
    return WireError::None;
}

std::vector<uint8_t>
frame(const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> framed;
    framed.reserve(payload.size() + 4);
    Writer w(framed);
    w.u32(static_cast<uint32_t>(payload.size()));
    framed.insert(framed.end(), payload.begin(), payload.end());
    return framed;
}

WireError
parseFrameHeader(const uint8_t *bytes, size_t available,
                 uint32_t maxFrameBytes, uint32_t &length)
{
    if (available < 4)
        return WireError::Truncated;
    length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<uint32_t>(bytes[i]) << (8 * i);
    if (length > maxFrameBytes)
        return WireError::Oversized;
    return WireError::None;
}

} // namespace racelogic::serve
