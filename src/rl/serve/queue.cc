#include "rl/serve/queue.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::serve {

QueueStatsWire
QueueStats::wire() const
{
    QueueStatsWire w;
    w.enqueued = enqueued;
    w.completed = completed;
    w.rejectedQueueFull = rejectedQueueFull;
    w.rejectedOversized = rejectedOversized;
    w.rejectedBadRequest = rejectedBadRequest;
    w.rejectedShutdown = rejectedShutdown;
    w.inflight = inflight;
    w.queued = queued;
    w.highWater = highWater;
    return w;
}

RequestQueue::RequestQueue(size_t depth) : capacity(depth)
{
    rl_assert(depth > 0, "a zero-depth queue admits nothing");
}

RequestQueue::Admit
RequestQueue::tryPush(QueuedJob job)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (shuttingDown) {
        ++counters.rejectedShutdown;
        return Admit::ShuttingDown;
    }
    const uint64_t outstanding = counters.queued + counters.inflight;
    if (outstanding >= capacity) {
        ++counters.rejectedQueueFull;
        return Admit::QueueFull;
    }
    jobs.push_back(std::move(job));
    ++counters.enqueued;
    ++counters.queued;
    counters.highWater = std::max(counters.highWater, outstanding + 1);
    readable.notify_one();
    return Admit::Accepted;
}

void
RequestQueue::noteRejected(Status status)
{
    std::lock_guard<std::mutex> lock(mutex);
    switch (status) {
    case Status::Oversized: ++counters.rejectedOversized; break;
    case Status::BadRequest: ++counters.rejectedBadRequest; break;
    case Status::QueueFull: ++counters.rejectedQueueFull; break;
    case Status::ShuttingDown: ++counters.rejectedShutdown; break;
    case Status::Ok:
        rl_panic("noteRejected(Ok) makes no sense");
    }
}

std::vector<QueuedJob>
RequestQueue::drain(size_t max)
{
    rl_assert(max > 0, "drain batch must hold at least one job");
    std::unique_lock<std::mutex> lock(mutex);
    readable.wait(lock, [&] { return !jobs.empty() || shuttingDown; });

    std::vector<QueuedJob> batch;
    const size_t take = std::min(max, jobs.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(jobs.front()));
        jobs.pop_front();
    }
    counters.queued -= take;
    counters.inflight += take;
    return batch;
}

void
RequestQueue::markDone(size_t n)
{
    std::lock_guard<std::mutex> lock(mutex);
    rl_assert(counters.inflight >= n,
              "markDone() retires more jobs than are inflight");
    counters.inflight -= n;
    counters.completed += n;
    if (counters.queued == 0 && counters.inflight == 0)
        drained.notify_all();
}

void
RequestQueue::beginShutdown()
{
    std::lock_guard<std::mutex> lock(mutex);
    shuttingDown = true;
    readable.notify_all();
    if (counters.queued == 0 && counters.inflight == 0)
        drained.notify_all();
}

void
RequestQueue::waitDrained()
{
    std::unique_lock<std::mutex> lock(mutex);
    drained.wait(lock, [&] {
        return counters.queued == 0 && counters.inflight == 0;
    });
}

QueueStats
RequestQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

} // namespace racelogic::serve
