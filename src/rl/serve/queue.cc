#include "rl/serve/queue.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::serve {

namespace {

/**
 * Round-robin drain quota per class, indexed by Priority.  Every
 * non-empty class gets at least one slot per round, so batch can be
 * delayed by interactive bursts but never starved.
 */
constexpr size_t kDrainWeight[kPriorityClasses] = {1, 2, 4};

size_t
classIndex(Priority priority)
{
    return static_cast<size_t>(priority);
}

} // namespace

QueueStatsWire
QueueStats::wire() const
{
    QueueStatsWire w;
    w.enqueued = enqueued;
    w.completed = completed;
    w.rejectedQueueFull = rejectedQueueFull;
    w.rejectedOversized = rejectedOversized;
    w.rejectedBadRequest = rejectedBadRequest;
    w.rejectedResource = rejectedResource;
    w.rejectedShutdown = rejectedShutdown;
    w.shedDeadline = shedDeadline;
    w.shedEvicted = shedEvicted;
    w.inflight = inflight;
    w.queued = queued;
    w.highWater = highWater;
    for (size_t c = 0; c < kPriorityClasses; ++c) {
        const ClassStats &s = classes[c];
        ClassStatsWire &cw = w.classes[c];
        cw.enqueued = s.enqueued;
        cw.completed = s.completed;
        cw.rejectedQueueFull = s.rejectedQueueFull;
        cw.rejectedResource = s.rejectedResource;
        cw.shedDeadline = s.shedDeadline;
        cw.shedEvicted = s.shedEvicted;
        cw.queued = s.queued;
    }
    return w;
}

RequestQueue::RequestQueue(size_t depth, size_t brownoutDepth)
    : capacity(depth),
      brownoutCapacity(brownoutDepth == 0
                           ? std::max<size_t>(1, depth / 2)
                           : std::min(depth,
                                      std::max<size_t>(1, brownoutDepth)))
{
    rl_assert(depth > 0, "a zero-depth queue admits nothing");
}

size_t
RequestQueue::effectiveDepth() const
{
    return brownoutActive ? brownoutCapacity : capacity;
}

RequestQueue::Admit
RequestQueue::tryPush(QueuedJob job, QueuedJob *evicted)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (shuttingDown) {
        ++counters.rejectedShutdown;
        return Admit::ShuttingDown;
    }
    const size_t cls = classIndex(job.priority);
    if (brownoutActive && job.priority == Priority::Batch) {
        ++counters.rejectedResource;
        ++counters.classes[cls].rejectedResource;
        return Admit::Brownout;
    }
    const uint64_t outstanding = counters.queued + counters.inflight;
    if (outstanding >= effectiveDepth()) {
        // Shed-lowest-first: a higher class may claim the slot of the
        // newest queued job in the lowest occupied class below it.
        // The victim still gets a typed QueueFull reply -- the caller
        // runs evicted->onShed off this lock.
        bool tookSlot = false;
        if (evicted != nullptr) {
            for (size_t victim = 0; victim < cls; ++victim) {
                if (jobs[victim].empty())
                    continue;
                *evicted = std::move(jobs[victim].back());
                jobs[victim].pop_back();
                --counters.queued;
                --counters.classes[victim].queued;
                ++counters.shedEvicted;
                ++counters.classes[victim].shedEvicted;
                tookSlot = true;
                break;
            }
        }
        if (!tookSlot) {
            ++counters.rejectedQueueFull;
            ++counters.classes[cls].rejectedQueueFull;
            return Admit::QueueFull;
        }
    }
    jobs[cls].push_back(std::move(job));
    ++counters.enqueued;
    ++counters.queued;
    ++counters.classes[cls].enqueued;
    ++counters.classes[cls].queued;
    counters.highWater =
        std::max(counters.highWater, counters.queued + counters.inflight);
    readable.notify_one();
    return Admit::Accepted;
}

void
RequestQueue::noteRejected(Status status, Priority priority)
{
    std::lock_guard<std::mutex> lock(mutex);
    switch (status) {
    case Status::Oversized: ++counters.rejectedOversized; break;
    case Status::BadRequest: ++counters.rejectedBadRequest; break;
    case Status::ResourceExhausted:
        ++counters.rejectedResource;
        ++counters.classes[classIndex(priority)].rejectedResource;
        break;
    case Status::QueueFull:
        ++counters.rejectedQueueFull;
        ++counters.classes[classIndex(priority)].rejectedQueueFull;
        break;
    case Status::ShuttingDown: ++counters.rejectedShutdown; break;
    case Status::DeadlineExceeded:
        // Shedding is accounted at drain time (shedDeadline), and a
        // deadline that expires mid-race still completes its job.
        rl_panic("DeadlineExceeded is not an admission verdict");
    case Status::Ok:
        rl_panic("noteRejected(Ok) makes no sense");
    }
}

std::vector<QueuedJob>
RequestQueue::drain(size_t max, std::vector<QueuedJob> *shed)
{
    rl_assert(max > 0, "drain batch must hold at least one job");
    std::unique_lock<std::mutex> lock(mutex);
    readable.wait(lock, [&] {
        return counters.queued > 0 || shuttingDown;
    });

    // Shed-at-drain, not shed-at-push: expiry is checked exactly once
    // per job, by the one dispatcher thread, so a shed job can never
    // race its own execution.
    const auto now = std::chrono::steady_clock::now();

    std::vector<QueuedJob> batch;
    batch.reserve(std::min<uint64_t>(max, counters.queued));
    // Weighted round-robin, highest class first.  Deadline sheds do
    // not consume quota or batch slots; within a class jobs leave in
    // FIFO order.
    while (counters.queued > 0 && batch.size() < max) {
        for (size_t c = kPriorityClasses; c-- > 0;) {
            size_t quota = kDrainWeight[c];
            while (quota > 0 && !jobs[c].empty() && batch.size() < max) {
                QueuedJob &front = jobs[c].front();
                if (shed != nullptr && front.deadline <= now) {
                    shed->push_back(std::move(front));
                    jobs[c].pop_front();
                    --counters.queued;
                    --counters.classes[c].queued;
                    ++counters.shedDeadline;
                    ++counters.classes[c].shedDeadline;
                    continue;
                }
                batch.push_back(std::move(front));
                jobs[c].pop_front();
                --counters.queued;
                --counters.classes[c].queued;
                ++counters.inflight;
                --quota;
            }
        }
    }
    // Shedding the whole backlog can finish the drain: wake
    // waitDrained() just as markDone() would have.
    if (counters.queued == 0 && counters.inflight == 0)
        drained.notify_all();
    return batch;
}

void
RequestQueue::markDone(size_t n)
{
    std::lock_guard<std::mutex> lock(mutex);
    rl_assert(counters.inflight >= n,
              "markDone() retires more jobs than are inflight");
    counters.inflight -= n;
    counters.completed += n;
    if (counters.queued == 0 && counters.inflight == 0)
        drained.notify_all();
}

void
RequestQueue::markDone(const std::array<uint64_t, kPriorityClasses> &byClass)
{
    uint64_t n = 0;
    for (uint64_t count : byClass)
        n += count;
    std::lock_guard<std::mutex> lock(mutex);
    rl_assert(counters.inflight >= n,
              "markDone() retires more jobs than are inflight");
    counters.inflight -= n;
    counters.completed += n;
    for (size_t c = 0; c < kPriorityClasses; ++c)
        counters.classes[c].completed += byClass[c];
    if (counters.queued == 0 && counters.inflight == 0)
        drained.notify_all();
}

void
RequestQueue::setBrownout(bool active)
{
    std::lock_guard<std::mutex> lock(mutex);
    brownoutActive = active;
}

bool
RequestQueue::brownout() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return brownoutActive;
}

void
RequestQueue::beginShutdown()
{
    std::lock_guard<std::mutex> lock(mutex);
    shuttingDown = true;
    readable.notify_all();
    if (counters.queued == 0 && counters.inflight == 0)
        drained.notify_all();
}

void
RequestQueue::waitDrained()
{
    std::unique_lock<std::mutex> lock(mutex);
    drained.wait(lock, [&] {
        return counters.queued == 0 && counters.inflight == 0;
    });
}

QueueStats
RequestQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

} // namespace racelogic::serve
