#include "rl/serve/queue.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::serve {

QueueStatsWire
QueueStats::wire() const
{
    QueueStatsWire w;
    w.enqueued = enqueued;
    w.completed = completed;
    w.rejectedQueueFull = rejectedQueueFull;
    w.rejectedOversized = rejectedOversized;
    w.rejectedBadRequest = rejectedBadRequest;
    w.rejectedResource = rejectedResource;
    w.rejectedShutdown = rejectedShutdown;
    w.shedDeadline = shedDeadline;
    w.inflight = inflight;
    w.queued = queued;
    w.highWater = highWater;
    return w;
}

RequestQueue::RequestQueue(size_t depth) : capacity(depth)
{
    rl_assert(depth > 0, "a zero-depth queue admits nothing");
}

RequestQueue::Admit
RequestQueue::tryPush(QueuedJob job)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (shuttingDown) {
        ++counters.rejectedShutdown;
        return Admit::ShuttingDown;
    }
    const uint64_t outstanding = counters.queued + counters.inflight;
    if (outstanding >= capacity) {
        ++counters.rejectedQueueFull;
        return Admit::QueueFull;
    }
    jobs.push_back(std::move(job));
    ++counters.enqueued;
    ++counters.queued;
    counters.highWater = std::max(counters.highWater, outstanding + 1);
    readable.notify_one();
    return Admit::Accepted;
}

void
RequestQueue::noteRejected(Status status)
{
    std::lock_guard<std::mutex> lock(mutex);
    switch (status) {
    case Status::Oversized: ++counters.rejectedOversized; break;
    case Status::BadRequest: ++counters.rejectedBadRequest; break;
    case Status::ResourceExhausted: ++counters.rejectedResource; break;
    case Status::QueueFull: ++counters.rejectedQueueFull; break;
    case Status::ShuttingDown: ++counters.rejectedShutdown; break;
    case Status::DeadlineExceeded:
        // Shedding is accounted at drain time (shedDeadline), and a
        // deadline that expires mid-race still completes its job.
        rl_panic("DeadlineExceeded is not an admission verdict");
    case Status::Ok:
        rl_panic("noteRejected(Ok) makes no sense");
    }
}

std::vector<QueuedJob>
RequestQueue::drain(size_t max, std::vector<QueuedJob> *shed)
{
    rl_assert(max > 0, "drain batch must hold at least one job");
    std::unique_lock<std::mutex> lock(mutex);
    readable.wait(lock, [&] { return !jobs.empty() || shuttingDown; });

    // Shed-at-drain, not shed-at-push: expiry is checked exactly once
    // per job, by the one dispatcher thread, so a shed job can never
    // race its own execution.
    const auto now = std::chrono::steady_clock::now();

    std::vector<QueuedJob> batch;
    batch.reserve(std::min(max, jobs.size()));
    while (!jobs.empty() && batch.size() < max) {
        if (shed != nullptr && jobs.front().deadline <= now) {
            shed->push_back(std::move(jobs.front()));
            jobs.pop_front();
            --counters.queued;
            ++counters.shedDeadline;
            continue;
        }
        batch.push_back(std::move(jobs.front()));
        jobs.pop_front();
        --counters.queued;
        ++counters.inflight;
    }
    // Shedding the whole backlog can finish the drain: wake
    // waitDrained() just as markDone() would have.
    if (counters.queued == 0 && counters.inflight == 0)
        drained.notify_all();
    return batch;
}

void
RequestQueue::markDone(size_t n)
{
    std::lock_guard<std::mutex> lock(mutex);
    rl_assert(counters.inflight >= n,
              "markDone() retires more jobs than are inflight");
    counters.inflight -= n;
    counters.completed += n;
    if (counters.queued == 0 && counters.inflight == 0)
        drained.notify_all();
}

void
RequestQueue::beginShutdown()
{
    std::lock_guard<std::mutex> lock(mutex);
    shuttingDown = true;
    readable.notify_all();
    if (counters.queued == 0 && counters.inflight == 0)
        drained.notify_all();
}

void
RequestQueue::waitDrained()
{
    std::unique_lock<std::mutex> lock(mutex);
    drained.wait(lock, [&] {
        return counters.queued == 0 && counters.inflight == 0;
    });
}

QueueStats
RequestQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

} // namespace racelogic::serve
