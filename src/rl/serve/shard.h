/**
 * @file
 * Sharded plan caches: one RaceEngine per worker shard.
 *
 * The api::RaceEngine's plan cache is deliberately single-threaded --
 * fast, no locks, owner-thread-only.  A serving daemon wants many
 * workers without putting a global lock on plan acquisition, so the
 * serve layer shards: W independent engines, each with its own
 * shape-keyed LRU, and requests routed by hashing the *plan key*
 * (shapeKey), so every request for the same fabric shape lands on
 * the same shard and its plan-cache hit is entirely shard-local --
 * no shared state touched at all on the hot path.
 *
 * Only a plan-cache *miss* (a shape this shard has never planned, or
 * a per-instance kind like DTW/affine that has no reusable plan)
 * falls back to the daemon-wide build lock, which serializes
 * expensive plan synthesis across shards.  Per-shard counters
 * (shardHits / buildLocks) make the claim checkable from the metrics
 * endpoint: after warmup, a steady same-shape workload must advance
 * shardHits only.
 */

#ifndef RACELOGIC_SERVE_SHARD_H
#define RACELOGIC_SERVE_SHARD_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "rl/api/api.h"
#include "rl/pangraph/graph_aligner.h"
#include "rl/pangraph/variation_graph.h"
#include "rl/serve/wire.h"

namespace racelogic::serve {

/** Serve-level counters for one shard (engine stats ride separately). */
struct ShardCounters {
    uint64_t shardHits = 0;  ///< solves that found the plan shard-local
    uint64_t buildLocks = 0; ///< solves that took the shared build lock
};

/**
 * One coherent view of the daemon's preloaded pangenome.
 *
 * Requests copy a snapshot at admission; the shared_ptr pins the
 * graph for as long as any queued or in-flight solve still references
 * it, so a hot reload can swap the registry without ever yanking a
 * graph out from under a race.  `version` increments on every
 * successful swap (Health reports it, so an operator can confirm a
 * reload actually landed).
 */
struct GraphSnapshot {
    std::shared_ptr<const pangraph::VariationGraph> graph;
    std::shared_ptr<const bio::ScoreMatrix> matrix;
    uint64_t version = 0;
};

/**
 * W sharded engines behind one facade.
 *
 * Thread contract: solveOn(shard, ...) may be called concurrently
 * for *different* shards but never concurrently for the same shard
 * (the dispatcher groups a drained batch by shard and runs each
 * group serially).  statsSnapshot() is safe from any thread.
 */
class EngineShards
{
  public:
    EngineShards(size_t shardCount, const api::EngineConfig &config);

    size_t shardCount() const { return shards.size(); }

    /** The shard a problem routes to: hash(shapeKey) mod W. */
    size_t shardFor(const api::RaceProblem &problem) const;

    /**
     * Solve on one shard with hit/miss accounting: a shard-local
     * plan hit races immediately (no shared state); anything else
     * builds under the daemon-wide build lock first.
     */
    api::RaceResult solveOn(size_t shard,
                            const api::RaceProblem &problem);

    /**
     * Fallible solveOn(): the shard engine's validate() runs before
     * any plan is built -- a rejected problem takes neither the
     * build lock's synthesis nor the race, and the typed Status maps
     * mechanically onto the wire (wireErrorForCode /
     * statusForCode).  Same thread contract as solveOn().
     */
    Expected<api::RaceResult> trySolveOn(size_t shard,
                                         const api::RaceProblem &problem);

    /** Coherent per-shard counter snapshot (wire layout). */
    std::vector<ShardStatsWire> statsSnapshot() const;

    /**
     * Install (or hot-swap) the preloaded pangenome: swap the
     * versioned registry, then evict every graph-keyed plan shard by
     * shard under that shard's engine mutex only -- the new
     * fingerprint can never hit them, so they are dead weight the
     * moment the version bumps.  In-flight solves keep racing their
     * admission-time snapshot (the shared_ptr pins it).
     *
     * Lock discipline: the solve paths take engineMutex then
     * buildMutex (on a plan miss), so this method must NEVER reach
     * for an engineMutex while holding buildMutex -- that ABBA order
     * wedged a reload against a plan-miss solve.  It has no need to:
     * each shard's engineMutex already excludes that shard's plan
     * builds.
     *
     * `precompiled` (optional) is the new graph's already-planned
     * aligner -- the reload path's validation compile -- adopted into
     * the shard the new shape routes to, so the first post-swap
     * GraphAlign hits warm instead of re-synthesizing the plan under
     * the daemon-wide build lock.  Returns the new version.
     */
    uint64_t
    setGraph(std::shared_ptr<const pangraph::VariationGraph> graph,
             std::shared_ptr<const bio::ScoreMatrix> matrix,
             std::shared_ptr<pangraph::GraphAligner> precompiled = nullptr);

    /** Copy the current graph snapshot (safe from any thread). */
    GraphSnapshot graphSnapshot() const;

    /** The current graph version (0 = never installed). */
    uint64_t graphVersion() const;

    /**
     * Approximate resident bytes across every shard's plan cache
     * (safe from any thread; feeds the daemon memory budget).
     */
    size_t planCacheBytesTotal() const;

    /**
     * Evict least-recently-used plans round-robin across shards until
     * roughly `bytesToReclaim` bytes are freed or every cache is
     * empty.  Returns bytes actually freed.  Safe from the janitor
     * thread: each eviction holds that shard's engine mutex.
     */
    size_t evictPlans(size_t bytesToReclaim);

  private:
    struct Shard {
        explicit Shard(const api::EngineConfig &config)
            : engine(config)
        {
        }

        api::RaceEngine engine;
        ShardCounters counters;
        mutable std::mutex countersMutex;

        /**
         * Serializes engine access between the dispatcher's solve
         * path and control-plane work (reload eviction, brownout
         * reclaim).  Uncontended on the hot path -- the dispatcher
         * already runs same-shard jobs serially.
         */
        std::mutex engineMutex;
    };

    std::vector<std::unique_ptr<Shard>> shards;

    /** Serializes plan synthesis across shards (misses only). */
    std::mutex buildMutex;

    /** The versioned graph registry (hot reload swaps it). */
    GraphSnapshot registry;
    mutable std::mutex registryMutex;
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_SHARD_H
