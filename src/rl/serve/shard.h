/**
 * @file
 * Sharded plan caches: one RaceEngine per worker shard.
 *
 * The api::RaceEngine's plan cache is deliberately single-threaded --
 * fast, no locks, owner-thread-only.  A serving daemon wants many
 * workers without putting a global lock on plan acquisition, so the
 * serve layer shards: W independent engines, each with its own
 * shape-keyed LRU, and requests routed by hashing the *plan key*
 * (shapeKey), so every request for the same fabric shape lands on
 * the same shard and its plan-cache hit is entirely shard-local --
 * no shared state touched at all on the hot path.
 *
 * Only a plan-cache *miss* (a shape this shard has never planned, or
 * a per-instance kind like DTW/affine that has no reusable plan)
 * falls back to the daemon-wide build lock, which serializes
 * expensive plan synthesis across shards.  Per-shard counters
 * (shardHits / buildLocks) make the claim checkable from the metrics
 * endpoint: after warmup, a steady same-shape workload must advance
 * shardHits only.
 */

#ifndef RACELOGIC_SERVE_SHARD_H
#define RACELOGIC_SERVE_SHARD_H

#include <memory>
#include <mutex>
#include <vector>

#include "rl/api/api.h"
#include "rl/serve/wire.h"

namespace racelogic::serve {

/** Serve-level counters for one shard (engine stats ride separately). */
struct ShardCounters {
    uint64_t shardHits = 0;  ///< solves that found the plan shard-local
    uint64_t buildLocks = 0; ///< solves that took the shared build lock
};

/**
 * W sharded engines behind one facade.
 *
 * Thread contract: solveOn(shard, ...) may be called concurrently
 * for *different* shards but never concurrently for the same shard
 * (the dispatcher groups a drained batch by shard and runs each
 * group serially).  statsSnapshot() is safe from any thread.
 */
class EngineShards
{
  public:
    EngineShards(size_t shardCount, const api::EngineConfig &config);

    size_t shardCount() const { return shards.size(); }

    /** The shard a problem routes to: hash(shapeKey) mod W. */
    size_t shardFor(const api::RaceProblem &problem) const;

    /**
     * Solve on one shard with hit/miss accounting: a shard-local
     * plan hit races immediately (no shared state); anything else
     * builds under the daemon-wide build lock first.
     */
    api::RaceResult solveOn(size_t shard,
                            const api::RaceProblem &problem);

    /**
     * Fallible solveOn(): the shard engine's validate() runs before
     * any plan is built -- a rejected problem takes neither the
     * build lock's synthesis nor the race, and the typed Status maps
     * mechanically onto the wire (wireErrorForCode /
     * statusForCode).  Same thread contract as solveOn().
     */
    Expected<api::RaceResult> trySolveOn(size_t shard,
                                         const api::RaceProblem &problem);

    /** Coherent per-shard counter snapshot (wire layout). */
    std::vector<ShardStatsWire> statsSnapshot() const;

  private:
    struct Shard {
        explicit Shard(const api::EngineConfig &config)
            : engine(config)
        {
        }

        api::RaceEngine engine;
        ShardCounters counters;
        mutable std::mutex countersMutex;
    };

    std::vector<std::unique_ptr<Shard>> shards;

    /** Serializes plan synthesis across shards (misses only). */
    std::mutex buildMutex;
};

} // namespace racelogic::serve

#endif // RACELOGIC_SERVE_SHARD_H
