#include "rl/serve/budget.h"

#include <algorithm>

namespace racelogic::serve {

MemoryBudget::MemoryBudget(size_t highBytes, size_t lowBytes)
    : highWatermark(highBytes),
      lowWatermark(highBytes == 0
                       ? 0
                       : std::min(highBytes, lowBytes == 0
                                                 ? highBytes / 4 * 3
                                                 : lowBytes))
{
}

MemoryBudget::Transition
MemoryBudget::observe(size_t usageBytes)
{
    if (unlimited())
        return Transition::None;
    const bool was = latched.load(std::memory_order_relaxed);
    if (!was && usageBytes >= highWatermark) {
        latched.store(true, std::memory_order_release);
        return Transition::Entered;
    }
    if (was && usageBytes <= lowWatermark) {
        latched.store(false, std::memory_order_release);
        return Transition::Exited;
    }
    return Transition::None;
}

} // namespace racelogic::serve
