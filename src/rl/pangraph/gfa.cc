#include "rl/pangraph/gfa.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::pangraph {

Expected<VariationGraph>
tryReadGfa(std::istream &in, const bio::Alphabet &alphabet)
{
    VariationGraph graph(alphabet);

    // Links may reference segments declared later, so they are
    // buffered and resolved after the whole stream is read.
    struct PendingLink {
        std::string from, to;
        size_t line_no;
    };
    std::vector<PendingLink> pending;

    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string trimmed = util::trim(line); // tolerates CRLF
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        std::vector<std::string> fields = util::split(trimmed, '\t');
        const std::string &type = fields[0];
        if (type == "H" || type == "P" || type == "W" || type == "C")
            continue; // headers, paths, and containments: metadata
        if (type == "S") {
            if (fields.size() < 3)
                return Status::error(ErrorCode::ParseError, "GFA line ",
                                     line_no, ": S record needs a name "
                                     "and a sequence");
            if (fields[2] == "*")
                return Status::error(ErrorCode::Unsupported, "GFA line ",
                                     line_no, ": segment '", fields[1],
                                     "' has no sequence ('*'); the race "
                                     "needs the bases");
            auto label = bio::Sequence::tryEncodeFolded(
                alphabet, fields[2],
                "GFA line " + std::to_string(line_no));
            if (!label.ok())
                return label.status();
            auto id = graph.tryAddSegment(
                fields[1],
                bio::Sequence(alphabet, std::move(label.value())));
            if (!id.ok())
                return id.status();
            continue;
        }
        if (type == "L") {
            if (fields.size() < 5)
                return Status::error(ErrorCode::ParseError, "GFA line ",
                                     line_no, ": L record needs "
                                     "from/orient/to/orient");
            if (fields[2] != "+" || fields[4] != "+")
                return Status::error(ErrorCode::Unsupported, "GFA line ",
                                     line_no, ": reverse-strand link (",
                                     fields[2], "/", fields[4],
                                     "); the DAG race substrate "
                                     "supports forward-strand (+/+) "
                                     "links only");
            if (fields.size() >= 6 && fields[5] != "0M" &&
                fields[5] != "*")
                return Status::error(ErrorCode::Unsupported, "GFA line ",
                                     line_no, ": overlap '", fields[5],
                                     "' unsupported; only blunt-ended "
                                     "links (0M or *) are");
            pending.push_back({fields[1], fields[3], line_no});
            continue;
        }
        return Status::error(ErrorCode::Unsupported, "GFA line ",
                             line_no, ": unsupported record type '",
                             type, "'");
    }

    for (const PendingLink &link : pending) {
        SegmentId from = graph.findSegment(link.from);
        SegmentId to = graph.findSegment(link.to);
        if (from == kNoSegment || to == kNoSegment)
            return Status::error(ErrorCode::NotFound, "GFA line ",
                                 link.line_no, ": link references "
                                 "undeclared segment '",
                                 from == kNoSegment ? link.from : link.to,
                                 "'");
        graph.addLink(from, to);
    }

    if (Status valid = graph.checkValid(); !valid.ok())
        return valid; // the cyclic-GFA rejection path
    return graph;
}

Expected<VariationGraph>
tryReadGfaFile(const std::string &path, const bio::Alphabet &alphabet)
{
    std::ifstream in(path);
    if (!in)
        return Status::error(ErrorCode::NotFound,
                             "cannot open GFA file: ", path);
    return tryReadGfa(in, alphabet);
}

VariationGraph
readGfa(std::istream &in, const bio::Alphabet &alphabet)
{
    return tryReadGfa(in, alphabet).valueOrFatal();
}

VariationGraph
readGfaFile(const std::string &path, const bio::Alphabet &alphabet)
{
    return tryReadGfaFile(path, alphabet).valueOrFatal();
}

void
writeGfa(std::ostream &out, const VariationGraph &graph)
{
    out << "H\tVN:Z:1.0\n";
    for (SegmentId id = 0; id < graph.segmentCount(); ++id) {
        const Segment &s = graph.segment(id);
        out << "S\t" << s.name << '\t' << s.label.str() << '\n';
    }
    for (SegmentId id = 0; id < graph.segmentCount(); ++id)
        for (SegmentId to : graph.outLinks(id))
            out << "L\t" << graph.segment(id).name << "\t+\t"
                << graph.segment(to).name << "\t+\t0M\n";
}

} // namespace racelogic::pangraph
