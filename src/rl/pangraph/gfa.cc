#include "rl/pangraph/gfa.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::pangraph {

namespace {

/** Encode a GFA sequence field, folding case, over `alphabet`. */
bio::Sequence
encodeLabel(const std::string &text, const bio::Alphabet &alphabet,
            size_t line_no)
{
    return bio::Sequence(
        alphabet,
        bio::Sequence::encodeFolded(
            alphabet, text, "GFA line " + std::to_string(line_no)));
}

/** Resolve a link endpoint name, with a clear diagnostic. */
SegmentId
resolveSegment(const VariationGraph &graph, const std::string &name,
               size_t line_no)
{
    SegmentId id = graph.findSegment(name);
    if (id == kNoSegment)
        rl_fatal("GFA line ", line_no, ": link references undeclared "
                 "segment '", name, "'");
    return id;
}

} // namespace

VariationGraph
readGfa(std::istream &in, const bio::Alphabet &alphabet)
{
    VariationGraph graph(alphabet);

    // Links may reference segments declared later, so they are
    // buffered and resolved after the whole stream is read.
    struct PendingLink {
        std::string from, to;
        size_t line_no;
    };
    std::vector<PendingLink> pending;

    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string trimmed = util::trim(line); // tolerates CRLF
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        std::vector<std::string> fields = util::split(trimmed, '\t');
        const std::string &type = fields[0];
        if (type == "H" || type == "P" || type == "W" || type == "C")
            continue; // headers, paths, and containments: metadata
        if (type == "S") {
            if (fields.size() < 3)
                rl_fatal("GFA line ", line_no,
                         ": S record needs a name and a sequence");
            if (fields[2] == "*")
                rl_fatal("GFA line ", line_no, ": segment '", fields[1],
                         "' has no sequence ('*'); the race needs the "
                         "bases");
            graph.addSegment(fields[1],
                             encodeLabel(fields[2], alphabet, line_no));
            continue;
        }
        if (type == "L") {
            if (fields.size() < 5)
                rl_fatal("GFA line ", line_no,
                         ": L record needs from/orient/to/orient");
            if (fields[2] != "+" || fields[4] != "+")
                rl_fatal("GFA line ", line_no, ": reverse-strand link (",
                         fields[2], "/", fields[4], "); the DAG race "
                         "substrate supports forward-strand (+/+) "
                         "links only");
            if (fields.size() >= 6 && fields[5] != "0M" &&
                fields[5] != "*")
                rl_fatal("GFA line ", line_no, ": overlap '", fields[5],
                         "' unsupported; only blunt-ended links (0M "
                         "or *) are");
            pending.push_back({fields[1], fields[3], line_no});
            continue;
        }
        rl_fatal("GFA line ", line_no, ": unsupported record type '",
                 type, "'");
    }

    for (const PendingLink &link : pending)
        graph.addLink(resolveSegment(graph, link.from, link.line_no),
                      resolveSegment(graph, link.to, link.line_no));

    graph.validate(); // the cyclic-GFA rejection path
    return graph;
}

VariationGraph
readGfaFile(const std::string &path, const bio::Alphabet &alphabet)
{
    std::ifstream in(path);
    if (!in)
        rl_fatal("cannot open GFA file: ", path);
    return readGfa(in, alphabet);
}

void
writeGfa(std::ostream &out, const VariationGraph &graph)
{
    out << "H\tVN:Z:1.0\n";
    for (SegmentId id = 0; id < graph.segmentCount(); ++id) {
        const Segment &s = graph.segment(id);
        out << "S\t" << s.name << '\t' << s.label.str() << '\n';
    }
    for (SegmentId id = 0; id < graph.segmentCount(); ++id)
        for (SegmentId to : graph.outLinks(id))
            out << "L\t" << graph.segment(id).name << "\t+\t"
                << graph.segment(to).name << "\t+\t0M\n";
}

} // namespace racelogic::pangraph
