#include "rl/pangraph/graph_align_dp.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::pangraph {

GraphDpResult
graphAlignDp(const VariationGraph &graph, const bio::Sequence &read,
             const bio::ScoreMatrix &costs)
{
    rl_assert(costs.isCost(), "the graph oracle minimizes a Cost matrix");
    rl_assert(read.alphabet() == costs.alphabet() &&
                  graph.alphabet() == costs.alphabet(),
              "graph, read, and matrix use different alphabets");
    graph.validate();

    const size_t m = read.size();
    const size_t segs = graph.segmentCount();

    // Character numbering: consecutive by segment id, then offset --
    // independently recomputed here, but by construction the same
    // convention as compileGraph(), so tables are comparable.
    std::vector<CharPos> firstChar(segs);
    CharPos next = 1;
    for (SegmentId id = 0; id < segs; ++id) {
        firstChar[id] = next;
        next += static_cast<CharPos>(graph.segment(id).label.size());
    }
    const size_t positions = next;

    GraphDpResult out;
    out.table = util::Grid<bio::Score>(positions, m + 1,
                                       bio::kScoreInfinity);

    auto relax = [](bio::Score base, bio::Score w) -> bio::Score {
        return base == bio::kScoreInfinity || w == bio::kScoreInfinity
                   ? bio::kScoreInfinity
                   : base + w;
    };

    // Row 0: only read insertions before any graph character.
    out.table.at(0, 0) = 0;
    for (size_t j = 1; j <= m; ++j)
        out.table.at(0, j) =
            relax(out.table.at(0, j - 1), costs.gap(read[j - 1]));

    for (SegmentId id : graph.topologicalOrder()) {
        const bio::Sequence &label = graph.segment(id).label;
        for (size_t k = 0; k < label.size(); ++k) {
            const CharPos p = firstChar[id] + static_cast<CharPos>(k);
            const bio::Symbol sym = label[k];
            const bio::Score del = costs.gap(sym);

            // Predecessor rows: the previous character of this
            // segment, or the last character of every predecessor
            // segment (the virtual start for source segments).
            std::vector<CharPos> preds;
            if (k > 0) {
                preds.push_back(p - 1);
            } else if (graph.inLinks(id).empty()) {
                preds.push_back(0);
            } else {
                for (SegmentId q : graph.inLinks(id))
                    preds.push_back(
                        firstChar[q] +
                        static_cast<CharPos>(
                            graph.segment(q).label.size() - 1));
            }

            for (size_t j = 0; j <= m; ++j) {
                bio::Score best = bio::kScoreInfinity;
                for (CharPos q : preds) {
                    // Consume graph char p against a gap.
                    best = std::min(best,
                                    relax(out.table.at(q, j), del));
                    // Substitute/match read[j-1] with graph char p.
                    if (j > 0)
                        best = std::min(
                            best,
                            relax(out.table.at(q, j - 1),
                                  costs.pair(read[j - 1], sym)));
                }
                // Consume read[j-1] against a gap.
                if (j > 0)
                    best = std::min(best,
                                    relax(out.table.at(p, j - 1),
                                          costs.gap(read[j - 1])));
                out.table.at(p, j) = best;
            }
        }
    }

    bio::Score distance = bio::kScoreInfinity;
    for (SegmentId id : graph.sinks()) {
        const CharPos last =
            firstChar[id] +
            static_cast<CharPos>(graph.segment(id).label.size() - 1);
        distance = std::min(distance, out.table.at(last, m));
    }
    rl_assert(distance != bio::kScoreInfinity,
              "no alignment exists; gap weights should guarantee one");
    out.distance = distance;
    return out;
}

} // namespace racelogic::pangraph
