/**
 * @file
 * GraphAligner: one loaded pangenome, many raced reads.
 *
 * The aligner is the planned-fabric object for the GraphAlign
 * workload: construction validates the graph, converts a similarity
 * matrix to race-ready costs (Section 5) when needed, and compiles
 * the character-level view once.  align() then races the read
 * against the compiled CSRs on the fused wavefront kernel
 * (rl/pangraph/graph_align_kernel.h) -- no product DAG is ever
 * materialized on this path -- const and allocation-local, so one
 * aligner serves many reads concurrently (the api engine races read
 * batches on its thread pool against a single cached aligner, one
 * scratch per thread).  The align(AlignmentGraph) overload races a
 * materialized product on core::WavefrontRaceKernel instead; it is
 * the bit-identical reference and the gate-level synthesis input.
 *
 * Section 5 caveat: the similarity-to-cost conversion is affine in
 * the *walk length*, so it preserves the optimum across walks only
 * when every source-to-sink walk spells the same number of
 * characters (a rank-balanced graph, e.g. SNP-only bubbles).
 * Construction enforces that; graphs with indel branches must race a
 * Cost-kind matrix directly (see docs/pangraph.md).
 */

#ifndef RACELOGIC_PANGRAPH_GRAPH_ALIGNER_H
#define RACELOGIC_PANGRAPH_GRAPH_ALIGNER_H

#include <memory>
#include <optional>
#include <vector>

#include "rl/bio/score_convert.h"
#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/core/temporal.h"
#include "rl/pangraph/alignment_graph.h"
#include "rl/pangraph/graph_align_kernel.h"
#include "rl/pangraph/mapping.h"
#include "rl/pangraph/variation_graph.h"
#include "rl/sim/event_queue.h"

namespace racelogic::pangraph {

class GraphAligner
{
  public:
    /**
     * Plan a pangenome for racing.
     *
     * @param graph   Validated on entry; held by shared_ptr so one
     *                loaded graph serves many aligners and problems.
     * @param matrix  Cost matrices race directly; Similarity
     *                matrices are converted (fatal if the graph is
     *                not rank-balanced).
     * @param lambda  Section 5 scale for similarity conversion.
     */
    GraphAligner(std::shared_ptr<const VariationGraph> graph,
                 bio::ScoreMatrix matrix, bio::Score lambda = 1);

    /**
     * Fallible planning for untrusted (graph, matrix, lambda)
     * combinations: every precondition the fatal constructor
     * enforces, returned as a typed Status instead -- InvalidArgument
     * on a missing graph, alphabet mismatch, or misused lambda;
     * Unsupported on a non-rank-balanced graph under a similarity
     * matrix; plus everything checkCompilable() rejects.  The fatal
     * constructor is a valueOrFatal() wrapper over this.
     */
    static Expected<GraphAligner>
    tryMake(std::shared_ptr<const VariationGraph> graph,
            bio::ScoreMatrix matrix, bio::Score lambda = 1);

    /**
     * Race `read` against the graph on the fused kernel (no product
     * DAG); const and thread-safe.
     *
     * @param horizon  Section 6 early termination in race cycles:
     *                 if the sink has not fired by `horizon`, the
     *                 result comes back completed = false with score
     *                 kScoreInfinity.
     */
    GraphRaceResult align(const bio::Sequence &read,
                          sim::Tick horizon = sim::kTickInfinity,
                          const core::CancelToken *cancel = nullptr,
                          core::KernelCounters *counters = nullptr) const;

    /**
     * Scratch-reuse overload for tight read-mapping loops: the fused
     * kernel's calendar and hoisted weight rows live in the caller's
     * scratch (one per thread), so repeated aligns stop allocating
     * kernel storage.  `cancel` (nullptr = never) aborts the sweep
     * cooperatively at clock-cycle granularity (see
     * raceAlignmentGrid).  `counters` (nullptr = off) accumulates the
     * kernel's profiling counts without changing the raced result.
     */
    GraphRaceResult align(const bio::Sequence &read, sim::Tick horizon,
                          GraphAlignScratch &scratch,
                          const core::CancelToken *cancel = nullptr,
                          core::KernelCounters *counters = nullptr) const;

    /**
     * Race an already-built product DAG (from buildAlignmentGraph
     * over this aligner's compiled graph and costs) on the general
     * CSR kernel.  This is the fused kernel's bit-identical
     * reference, and the GateLevel engine path builds the product
     * once and shares it between this race and fabric synthesis.
     */
    GraphRaceResult align(const AlignmentGraph &product,
                          sim::Tick horizon = sim::kTickInfinity) const;

    /**
     * Race and trace back: the optimal (walk, CIGAR) mapping
     * recovered from the arrival times (rl/pangraph/mapping.h).
     */
    GraphMapping map(const bio::Sequence &read) const;

    const VariationGraph &graph() const { return *source; }
    std::shared_ptr<const VariationGraph> graphPtr() const
    {
        return source;
    }

    /** The race-ready cost matrix (converted when input was
     *  similarity). */
    const bio::ScoreMatrix &costs() const;

    /** The matrix the caller supplied. */
    const bio::ScoreMatrix &inputMatrix() const { return input; }

    /** Section 5 conversion metadata (similarity inputs only). */
    const std::optional<bio::ShortestPathForm> &conversion() const
    {
        return converted;
    }

    const CompiledGraph &compiled() const { return compiledGraph; }

    /** Map a raced cost back to the caller's units. */
    bio::Score recoverScore(bio::Score racedCost, size_t readLength) const;

  private:
    /** All-fields constructor used by tryMake() after validation. */
    GraphAligner(std::shared_ptr<const VariationGraph> graph,
                 bio::ScoreMatrix matrix,
                 std::optional<bio::ShortestPathForm> conversion,
                 CompiledGraph compiled, size_t spelled)
        : source(std::move(graph)), input(std::move(matrix)),
          converted(std::move(conversion)),
          compiledGraph(std::move(compiled)), spelledLength(spelled)
    {}

    std::shared_ptr<const VariationGraph> source;
    bio::ScoreMatrix input;
    std::optional<bio::ShortestPathForm> converted;
    CompiledGraph compiledGraph;
    size_t spelledLength = 0; ///< walk length (rank-balanced plans)
};

} // namespace racelogic::pangraph

#endif // RACELOGIC_PANGRAPH_GRAPH_ALIGNER_H
