/**
 * @file
 * Fused sequence-to-graph wavefront kernel: race a read against the
 * pangenome without materializing the (read x graph) product DAG.
 *
 * The paper's whole point is that the edit recurrence races as a
 * wavefront whose cost is the work actually done -- yet the
 * materialized path spends more time *building* the product
 * graph::Dag per read than racing it.  This kernel is the graph
 * analogue of core::raceEditGrid(): a Dial's-algorithm bucket sweep
 * over product states (j, p) -- j read characters consumed, graph
 * character p consumed last -- that generates each state's three
 * edge families on the fly from CompiledGraph's successor CSR and
 * the cost matrix:
 *
 *  - graph gap (deletion):      (j, p) -> (j, q)    gapWeight[q]
 *  - substitute / match:        (j, p) -> (j+1, q)  pair(read[j], sym(q))
 *  - read gap (insertion):      (j, p) -> (j+1, p)  gap(read[j])
 *
 * for each compiled successor q of p.  Terminal states (m, p) feed
 * the super-sink OR through zero-weight wires; the kernel folds those
 * into the sink arrival directly (a zero-weight push would violate
 * the calendar's chain-detach w >= 1 invariant), counting one event
 * per wire exactly as the DAG kernel drains them.
 *
 * The outcome is bit-identical -- arrival vector (AlignmentGraph::
 * node() layout, super-sink included), event count, sink score, and
 * Section 6 horizon aborts -- to building the product with
 * buildAlignmentGraph() and racing it on core::WavefrontRaceKernel;
 * tests/pangraph_test.cc asserts the equivalence on randomized
 * graphs.  The materialized path stays as the tested reference and as
 * the gate-level synthesis input.
 *
 * Work is O(states) flat arrays plus the reusable GraphAlignScratch
 * arena (the twin of core::RaceGridScratch), so steady-state read
 * mapping -- one scratch per thread in the api batch body --
 * allocates nothing per comparison beyond the arrival vector it
 * returns.
 */

#ifndef RACELOGIC_PANGRAPH_GRAPH_ALIGN_KERNEL_H
#define RACELOGIC_PANGRAPH_GRAPH_ALIGN_KERNEL_H

#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/core/temporal.h"
#include "rl/core/wavefront.h"
#include "rl/pangraph/alignment_graph.h"

namespace racelogic::pangraph {

/** Outcome of racing one read against the graph. */
struct GraphRaceResult {
    /** Alignment score in the caller's matrix units (similarity
     *  recovered via Section 5 on converted plans; the raw raced
     *  cost until GraphAligner applies the recovery);
     *  kScoreInfinity when the race aborted at its horizon. */
    bio::Score score = 0;

    /** The raw race outcome: sink arrival cycle (converted cost). */
    bio::Score racedCost = 0;

    /** True iff the sink fired (false under a horizon or cancel). */
    bool completed = true;

    /** True iff a CancelToken stopped the sweep before the sink. */
    bool cancelled = false;

    /** Race duration in cycles (the horizon cycle when aborted). */
    sim::Tick latencyCycles = 0;

    /** Events processed by the wavefront kernel. */
    uint64_t events = 0;

    /** Product-DAG nodes, and how many fired. */
    size_t nodes = 0;
    size_t cellsFired = 0;

    /** Per-node firing times, AlignmentGraph::node() layout. */
    std::vector<core::TemporalValue> arrival;
};

/**
 * Reusable scratch state for raceAlignmentGrid: the shared bucket
 * calendar plus the per-read weight rows hoisted out of the sweep.
 */
struct GraphAlignScratch {
    core::BucketCalendar calendar;

    /** Insertion-edge weight per read offset: gap(read[j]). */
    std::vector<bio::Score> gapRead;

    /**
     * Substitution-edge weights as one flat row per read offset,
     * indexed by graph symbol: pairRow[j * |alphabet| + sym] =
     * pair(read[j], sym).  kScoreInfinity marks a forbidden pair
     * (missing edge).
     */
    std::vector<bio::Score> pairRow;

    /** Release all retained capacity (see core::BucketCalendar). */
    void
    shrinkToFit()
    {
        calendar.shrinkToFit();
        gapRead.clear();
        gapRead.shrink_to_fit();
        pairRow.clear();
        pairRow.shrink_to_fit();
    }

    /** Heap bytes currently retained across calendar and rows. */
    size_t
    residentBytes() const
    {
        return calendar.residentBytes() +
               (gapRead.capacity() + pairRow.capacity()) *
                   sizeof(bio::Score);
    }
};

/**
 * Bucket-wavefront OR-type race of `read` against a compiled graph
 * under the race-ready cost matrix it was compiled with, without
 * materializing the product DAG.
 *
 * Semantically identical to racing buildAlignmentGraph(compiled,
 * read, costs) on core::WavefrontRaceKernel with the same horizon:
 * same arrival vector, same event count, same sink score.  Section 6
 * horizon aborts behave identically too (completed = false, score
 * kScoreInfinity, latencyCycles = horizon).
 *
 * `costs` must be the matrix `compiled` was bound to (GraphAligner
 * guarantees this); requires Cost kind with all finite weights >= 1
 * (checked at plan time).  GraphRaceResult::score is left at the
 * raced cost -- the aligner applies the Section 5 recovery.
 */
GraphRaceResult raceAlignmentGrid(const CompiledGraph &compiled,
                                  const bio::Sequence &read,
                                  const bio::ScoreMatrix &costs,
                                  sim::Tick horizon = sim::kTickInfinity);

/**
 * Scratch-reuse overload: identical outcome, but the calendar and
 * hoisted weight rows live in (and keep the capacity of) the
 * caller's scratch.
 *
 * `cancel` (nullptr = never) is polled once per simulated clock
 * cycle; a cancelled race comes back completed = false with
 * cancelled = true, score kScoreInfinity, and latencyCycles the last
 * cycle swept -- the same typed-abort shape as a horizon trip.
 *
 * `counters` (nullptr = off) accumulates the kernel's profiling
 * counts -- events drained, buckets swept, arena high-water, states
 * fired, cancel/horizon aborts.  It is touched only after the drain,
 * so the raced result is bit-identical either way.
 */
GraphRaceResult raceAlignmentGrid(const CompiledGraph &compiled,
                                  const bio::Sequence &read,
                                  const bio::ScoreMatrix &costs,
                                  sim::Tick horizon,
                                  GraphAlignScratch &scratch,
                                  const core::CancelToken *cancel = nullptr,
                                  core::KernelCounters *counters = nullptr);

} // namespace racelogic::pangraph

#endif // RACELOGIC_PANGRAPH_GRAPH_ALIGN_KERNEL_H
