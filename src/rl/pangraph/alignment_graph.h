/**
 * @file
 * The (read x graph) product edit DAG.
 *
 * Sequence-to-graph alignment is the paper's recurrence with one
 * axis generalized: instead of the j-th character of a second string,
 * a DP state consumes the next character along *some walk* of the
 * variation graph.  Expanding every segment label into its character
 * positions yields a character-level DAG; the product of (read
 * prefix 0..m) x (character positions) is an edit DAG whose
 * shortest source-to-sink path is exactly the graph alignment
 * distance -- so it races on the same OR-gate/delay-chain fabric as
 * the pairwise edit graph (Section 3), and the bucketed wavefront
 * kernel (rl/core/wavefront.h) sweeps it through graph::Dag's CSR
 * view.
 *
 * Two layers are split deliberately:
 *
 *  - CompiledGraph is the read-independent half: character symbols,
 *    the successor/predecessor CSR over positions, terminal flags,
 *    and the per-position gap weights of the race-ready cost matrix,
 *    all as flat arrays.  One compile serves every read, which is
 *    what the api plan cache stores per pangenome.
 *  - buildAlignmentGraph() stamps a read onto the compiled graph,
 *    producing the product graph::Dag plus its node layout.  The
 *    fused kernel (rl/pangraph/graph_align_kernel.h) races the same
 *    product straight from the compiled arrays instead.
 */

#ifndef RACELOGIC_PANGRAPH_ALIGNMENT_GRAPH_H
#define RACELOGIC_PANGRAPH_ALIGNMENT_GRAPH_H

#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/graph/dag.h"
#include "rl/pangraph/variation_graph.h"

namespace racelogic::pangraph {

/** The read-independent character-level view of a variation graph. */
struct CompiledGraph {
    /** Symbol at each character position (index 0 unused). */
    std::vector<bio::Symbol> symbol;

    /** Owning segment of each character position (index 0 unused). */
    std::vector<SegmentId> segmentOf;

    /** First character position of each segment. */
    std::vector<CharPos> firstChar;

    /** Last character position of each segment. */
    std::vector<CharPos> lastChar;

    /**
     * Successor CSR over positions 0..K: succ(0) is the first
     * character of every source segment; succ(c) is the next
     * character in the same segment, or the first character of every
     * successor segment when c ends its label.
     */
    std::vector<uint32_t> succOffsets;
    std::vector<CharPos> succ;

    /** Predecessor CSR over positions 0..K (traceback walks this). */
    std::vector<uint32_t> predOffsets;
    std::vector<CharPos> pred;

    /**
     * 1 iff the position ends a sink segment (alignment may end).
     * Deliberately uint8_t, not vector<bool>: the fused kernel reads
     * this flag per fired (m, p) state, and a packed bit-walk in that
     * loop costs more than the byte it saves.
     */
    std::vector<uint8_t> terminal;

    /**
     * Gap (indel) weight of each position's symbol under the race
     * cost matrix the graph was compiled with (index 0 unused).
     * Hoisted here so the deletion-edge family reads one flat array
     * instead of re-deriving symbol -> matrix lookups per edge.
     */
    std::vector<bio::Score> gapWeight;

    /**
     * bio::ScoreMatrix::fingerprint() of the matrix the hoisted
     * weights were bound to.  Both product builders assert the
     * matrix they are handed matches: mixing a compiled view with a
     * different matrix would blend weight tables -- and could hand
     * the fused kernel a weight beyond its calendar ring.
     */
    uint64_t matrixFingerprint = 0;

    /** Character count K (positions are 0..K). */
    size_t charCount = 0;

    size_t positionCount() const { return charCount + 1; }
};

/**
 * Compilability verdict for a (graph, race matrix) pair: the graph
 * must be raceable (VariationGraph::checkValid), the alphabets must
 * match, and the matrix must be race-ready under the wavefront
 * kernel's calendar cap (Cost kind, finite weights in [1, cap],
 * finite gaps).  The single rule book shared by compileGraph(),
 * GraphAligner construction, and api::RaceEngine plan validation.
 */
Status checkCompilable(const VariationGraph &graph,
                       const bio::ScoreMatrix &race);

/**
 * Expand a validated variation graph into its character-level view
 * under `race`, the race-ready cost matrix the products will be
 * swept with (it supplies the hoisted per-position gap weights, so a
 * compiled view is bound to one matrix exactly as the api plan is).
 * fatal() wrapper over tryCompileGraph() for direct callers.
 */
CompiledGraph compileGraph(const VariationGraph &graph,
                           const bio::ScoreMatrix &race);

/** Fallible compile: checkCompilable(), then the expansion. */
Expected<CompiledGraph> tryCompileGraph(const VariationGraph &graph,
                                        const bio::ScoreMatrix &race);

/**
 * The product edit DAG of one read against a compiled graph, ready
 * to race.
 *
 * Node layout (the traceback in rl/pangraph/mapping.h relies on it):
 * state (j, p) -- j read characters consumed, graph character p the
 * last consumed (p = 0: none yet) -- is node j * positionCount + p;
 * one extra super-sink node follows, fed by zero-weight edges from
 * every terminal state (m, p), so the race's sink arrival is the
 * minimum over all walk endings exactly as an OR gate would take it.
 */
struct AlignmentGraph {
    graph::Dag dag;
    graph::NodeId source = 0;
    graph::NodeId sink = 0;
    size_t readLength = 0;
    size_t positionCount = 0;

    graph::NodeId
    node(size_t j, CharPos p) const
    {
        return static_cast<graph::NodeId>(j * positionCount + p);
    }
};

/**
 * Stamp `read` onto the compiled graph under a race-ready cost
 * matrix (Cost kind, all finite weights >= 1; forbidden pairs become
 * missing substitution edges).
 *
 * Edges of state (j, p), for each graph successor q of p:
 *  - consume graph char q against a gap:   (j, p) -> (j, q),   gap(q)
 *  - substitute/match read[j] with q:      (j, p) -> (j+1, q), pair
 *  - consume read[j] against a gap:        (j, p) -> (j+1, p), gap
 */
AlignmentGraph buildAlignmentGraph(const CompiledGraph &compiled,
                                   const bio::Sequence &read,
                                   const bio::ScoreMatrix &costs);

/**
 * Product DAGs materialized since process start (monotone, relaxed).
 * Test instrumentation: the Behavioral read-mapping path races fused
 * and must not build one per read; the equivalence suites assert the
 * counter stays flat across batches.
 */
uint64_t alignmentGraphBuildCount();

} // namespace racelogic::pangraph

#endif // RACELOGIC_PANGRAPH_ALIGNMENT_GRAPH_H
