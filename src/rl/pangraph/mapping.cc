#include "rl/pangraph/mapping.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::pangraph {

namespace {

/** Run-length encode an op sequence into a CIGAR string. */
std::string
encodeCigar(const std::vector<char> &ops)
{
    std::string out;
    size_t i = 0;
    while (i < ops.size()) {
        size_t run = 1;
        while (i + run < ops.size() && ops[i + run] == ops[i])
            ++run;
        out += std::to_string(run);
        out += ops[i];
        i += run;
    }
    return out;
}

} // namespace

GraphMapping
mappingFromArrival(const CompiledGraph &compiled,
                   const bio::Sequence &read,
                   const bio::ScoreMatrix &costs,
                   const std::vector<core::TemporalValue> &arrival)
{
    const size_t m = read.size();
    const size_t positions = compiled.positionCount();
    rl_assert(arrival.size() == (m + 1) * positions + 1,
              "arrival map does not match the read and graph (",
              arrival.size(), " nodes for ", m, " x ", positions, ")");

    auto at = [&](size_t j, CharPos p) -> const core::TemporalValue & {
        return arrival[j * positions + p];
    };

    const core::TemporalValue &sinkArrival = arrival.back();
    rl_assert(sinkArrival.fired(),
              "traceback from a race whose sink never fired");
    const sim::Tick distance = sinkArrival.time();

    // The alignment ends at a terminal state whose arrival is tight
    // through the zero-weight sink wire; lowest position on a tie.
    CharPos p = 0;
    for (CharPos c = 1; c < positions; ++c) {
        if (compiled.terminal[c] && at(m, c).fired() &&
            at(m, c).time() == distance) {
            p = c;
            break;
        }
    }
    rl_assert(p != 0, "no terminal state is tight with the sink");

    GraphMapping out;
    out.distance = static_cast<bio::Score>(distance);

    size_t j = m;
    std::vector<char> ops;            // built back-to-front
    std::vector<SegmentId> consumed;  // owning segment per graph char
    while (j > 0 || p > 0) {
        const sim::Tick here = at(j, p).time();
        bool stepped = false;
        // Prefer substitution/match, then graph-char deletion, then
        // read insertion; predecessor lists are ascending by
        // construction, so the walk is deterministic.
        if (p > 0 && j > 0) {
            const bio::Score w = costs.pair(read[j - 1],
                                            compiled.symbol[p]);
            if (w != bio::kScoreInfinity) {
                for (uint32_t e = compiled.predOffsets[p];
                     e < compiled.predOffsets[p + 1]; ++e) {
                    const CharPos q = compiled.pred[e];
                    if (at(j - 1, q).fired() &&
                        at(j - 1, q).time() +
                                static_cast<sim::Tick>(w) ==
                            here) {
                        ops.push_back(read[j - 1] == compiled.symbol[p]
                                          ? '='
                                          : 'X');
                        consumed.push_back(compiled.segmentOf[p]);
                        --j;
                        p = q;
                        stepped = true;
                        break;
                    }
                }
            }
        }
        if (!stepped && p > 0) {
            const bio::Score w = costs.gap(compiled.symbol[p]);
            for (uint32_t e = compiled.predOffsets[p];
                 e < compiled.predOffsets[p + 1]; ++e) {
                const CharPos q = compiled.pred[e];
                if (at(j, q).fired() &&
                    at(j, q).time() + static_cast<sim::Tick>(w) ==
                        here) {
                    ops.push_back('D');
                    consumed.push_back(compiled.segmentOf[p]);
                    p = q;
                    stepped = true;
                    break;
                }
            }
        }
        if (!stepped && j > 0 && at(j - 1, p).fired() &&
            at(j - 1, p).time() +
                    static_cast<sim::Tick>(costs.gap(read[j - 1])) ==
                here) {
            ops.push_back('I');
            --j;
            stepped = true;
        }
        rl_assert(stepped, "no tight predecessor at read offset ", j,
                  ", graph position ", p,
                  ": arrival map inconsistent with the matrix");
    }

    std::reverse(ops.begin(), ops.end());
    std::reverse(consumed.begin(), consumed.end());
    for (SegmentId id : consumed)
        if (out.path.empty() || out.path.back() != id)
            out.path.push_back(id);
    out.cigar = encodeCigar(ops);
    for (char op : ops) {
        if (op != 'D')
            ++out.readConsumed;
        if (op != 'I')
            ++out.graphConsumed;
    }
    rl_assert(out.readConsumed == m,
              "traceback consumed ", out.readConsumed, " of ", m,
              " read characters");
    return out;
}

bio::Score
rescoreMapping(const VariationGraph &graph, const bio::Sequence &read,
               const bio::ScoreMatrix &costs, const GraphMapping &mapping)
{
    if (mapping.path.empty())
        rl_fatal("mapping has an empty walk");
    if (!graph.inLinks(mapping.path.front()).empty())
        rl_fatal("mapping walk does not start at a source segment");
    if (!graph.outLinks(mapping.path.back()).empty())
        rl_fatal("mapping walk does not end at a sink segment");

    // Spell the walk, validating every hop.
    std::vector<bio::Symbol> walk;
    for (size_t i = 0; i < mapping.path.size(); ++i) {
        const SegmentId id = mapping.path[i];
        if (i > 0) {
            const auto &links = graph.outLinks(mapping.path[i - 1]);
            if (std::find(links.begin(), links.end(), id) ==
                links.end())
                rl_fatal("mapping walk hop ",
                         graph.segment(mapping.path[i - 1]).name,
                         " -> ", graph.segment(id).name,
                         " is not a link in the graph");
        }
        for (bio::Symbol s : graph.segment(id).label.symbols())
            walk.push_back(s);
    }

    // Replay the CIGAR.
    bio::Score cost = 0;
    size_t i = 0, g = 0, pos = 0;
    const std::string &cigar = mapping.cigar;
    while (pos < cigar.size()) {
        size_t runEnd = pos;
        while (runEnd < cigar.size() &&
               std::isdigit(static_cast<unsigned char>(cigar[runEnd])))
            ++runEnd;
        if (runEnd == pos || runEnd == cigar.size())
            rl_fatal("malformed CIGAR '", cigar, "'");
        const size_t run = std::stoul(cigar.substr(pos, runEnd - pos));
        const char op = cigar[runEnd];
        pos = runEnd + 1;
        for (size_t k = 0; k < run; ++k) {
            switch (op) {
            case '=':
            case 'X': {
                if (i >= read.size() || g >= walk.size())
                    rl_fatal("CIGAR overruns the read or the walk");
                const bool equal = read[i] == walk[g];
                if (equal != (op == '='))
                    rl_fatal("CIGAR op '", op, "' contradicts symbols "
                             "at read offset ", i);
                const bio::Score w = costs.pair(read[i], walk[g]);
                if (w == bio::kScoreInfinity)
                    rl_fatal("CIGAR substitutes a forbidden pair at "
                             "read offset ", i);
                cost += w;
                ++i;
                ++g;
                break;
            }
            case 'I':
                if (i >= read.size())
                    rl_fatal("CIGAR overruns the read");
                cost += costs.gap(read[i]);
                ++i;
                break;
            case 'D':
                if (g >= walk.size())
                    rl_fatal("CIGAR overruns the walk");
                cost += costs.gap(walk[g]);
                ++g;
                break;
            default:
                rl_fatal("unknown CIGAR op '", op, "'");
            }
        }
    }
    if (i != read.size() || g != walk.size())
        rl_fatal("CIGAR consumed ", i, "/", read.size(), " read and ",
                 g, "/", walk.size(), " walk characters");
    return cost;
}

} // namespace racelogic::pangraph
