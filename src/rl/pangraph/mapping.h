/**
 * @file
 * Read-to-graph mappings: traceback from race arrival times to a
 * (walk, CIGAR) pair.
 *
 * The per-node firing times of a completed product-DAG race form a
 * valid DP table (rl/core/traceback.h makes the same observation for
 * the pairwise grid), so walking tight edges backwards -- predecessor
 * arrival + edge weight == own arrival -- recovers an optimal
 * alignment without re-running any DP.  The result is reported in
 * the conventional mapping vocabulary: the walk as a list of segment
 * ids and the per-base operations as a CIGAR string over {=, X, I,
 * D} (match, substitution, read insertion, graph-character
 * deletion).
 */

#ifndef RACELOGIC_PANGRAPH_MAPPING_H
#define RACELOGIC_PANGRAPH_MAPPING_H

#include <string>
#include <vector>

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/core/temporal.h"
#include "rl/pangraph/alignment_graph.h"

namespace racelogic::pangraph {

/** One read mapped onto one walk of the variation graph. */
struct GraphMapping {
    /** The walk, as segment ids in source-to-sink order. */
    std::vector<SegmentId> path;

    /**
     * Run-length CIGAR over {=, X, I, D}: '=' match, 'X'
     * substitution, 'I' read character against a gap, 'D' graph
     * character against a gap.
     */
    std::string cigar;

    /** Alignment cost in the raced (cost-matrix) units. */
    bio::Score distance = 0;

    /** Total = + X + I (must equal the read length). */
    size_t readConsumed = 0;

    /** Total = + X + D (the walk's spelled length). */
    size_t graphConsumed = 0;
};

/**
 * Recover an optimal mapping from a completed product-DAG race.
 *
 * @param compiled  The character-level graph the product was built on.
 * @param read      The read that was raced.
 * @param costs     The race-ready cost matrix.
 * @param arrival   Per-node firing times of the product DAG, laid out
 *                  as AlignmentGraph::node() (what GraphAligner's
 *                  align() returns in GraphRaceResult::arrival).
 *
 * Tie-breaking prefers substitution/match, then graph-character
 * deletion, then read insertion, and among graph predecessors the
 * lowest character position -- deterministic, so tests can compare
 * mappings structurally.
 */
GraphMapping mappingFromArrival(
    const CompiledGraph &compiled, const bio::Sequence &read,
    const bio::ScoreMatrix &costs,
    const std::vector<core::TemporalValue> &arrival);

/**
 * Re-score a mapping from scratch: spell the walk (validating that
 * consecutive path segments are actually linked in `graph`), replay
 * the CIGAR against read and walk, and return the recomputed cost.
 * fatal() on any inconsistency ('=' over unequal symbols, lengths
 * that do not add up, a forbidden substitution, a broken walk).
 * Tests assert the result equals GraphMapping::distance.
 */
bio::Score rescoreMapping(const VariationGraph &graph,
                          const bio::Sequence &read,
                          const bio::ScoreMatrix &costs,
                          const GraphMapping &mapping);

} // namespace racelogic::pangraph

#endif // RACELOGIC_PANGRAPH_MAPPING_H
