/**
 * @file
 * GFA v1 input/output for variation graphs.
 *
 * Pangenomes in the wild travel as Graphical Fragment Assembly files;
 * this module reads the blunt-ended, forward-strand, acyclic subset
 * the race substrate can realize (see docs/pangraph.md):
 *
 *  - `H` header lines and `#` comments are ignored;
 *  - `S <name> <seq>` declares a labeled segment (a sequence-less
 *    `*` placeholder is rejected -- the race needs the bases);
 *  - `L <from> + <to> + <overlap>` declares a link; both orientations
 *    must be `+` (reverse-strand walks have no DAG realization) and
 *    the overlap must be `0M` or `*` (blunt ends only);
 *  - `P`/`W` path lines and containments are skipped.
 *
 * Sequence letters are case-folded to upper; CRLF endings and blank
 * lines are tolerated.  After parsing, the graph is validate()d, so
 * cyclic GFAs are rejected with a diagnostic rather than racing
 * forever.
 */

#ifndef RACELOGIC_PANGRAPH_GFA_H
#define RACELOGIC_PANGRAPH_GFA_H

#include <iosfwd>
#include <string>

#include "rl/pangraph/variation_graph.h"

namespace racelogic::pangraph {

/**
 * Parse a GFA v1 stream over the given alphabet.
 *
 * fatal() on malformed records, letters outside the alphabet,
 * reverse-strand links, non-blunt overlaps, links to undeclared
 * segments, and cyclic graphs.
 */
VariationGraph readGfa(std::istream &in, const bio::Alphabet &alphabet);

/** Parse a GFA file by path (fatal if unreadable). */
VariationGraph readGfaFile(const std::string &path,
                           const bio::Alphabet &alphabet);

/** Write the graph back out as blunt-ended forward-strand GFA v1. */
void writeGfa(std::ostream &out, const VariationGraph &graph);

} // namespace racelogic::pangraph

#endif // RACELOGIC_PANGRAPH_GFA_H
