/**
 * @file
 * GFA v1 input/output for variation graphs.
 *
 * Pangenomes in the wild travel as Graphical Fragment Assembly files;
 * this module reads the blunt-ended, forward-strand, acyclic subset
 * the race substrate can realize (see docs/pangraph.md):
 *
 *  - `H` header lines and `#` comments are ignored;
 *  - `S <name> <seq>` declares a labeled segment (a sequence-less
 *    `*` placeholder is rejected -- the race needs the bases);
 *  - `L <from> + <to> + <overlap>` declares a link; both orientations
 *    must be `+` (reverse-strand walks have no DAG realization) and
 *    the overlap must be `0M` or `*` (blunt ends only);
 *  - `P`/`W` path lines and containments are skipped.
 *
 * Sequence letters are case-folded to upper; CRLF endings and blank
 * lines are tolerated.  After parsing, the graph is checkValid()ed,
 * so cyclic GFAs are rejected with a diagnostic rather than racing
 * forever.
 *
 * tryReadGfa() is the fallible core (typed ParseError / Unsupported /
 * NotFound / InvalidArgument statuses); the fatal readers are
 * valueOrFatal() wrappers kept for CLI tools and examples.
 */

#ifndef RACELOGIC_PANGRAPH_GFA_H
#define RACELOGIC_PANGRAPH_GFA_H

#include <iosfwd>
#include <string>

#include "rl/pangraph/variation_graph.h"
#include "rl/util/status.h"

namespace racelogic::pangraph {

/**
 * Parse a GFA v1 stream over the given alphabet.
 *
 * Typed errors: ParseError on malformed records, InvalidArgument on
 * letters outside the alphabet or duplicate segments, Unsupported on
 * reverse-strand links, non-blunt overlaps, sequence-less segments,
 * unknown record types, and cyclic graphs; NotFound on links to
 * undeclared segments.
 */
Expected<VariationGraph> tryReadGfa(std::istream &in,
                                    const bio::Alphabet &alphabet);

/** Parse a GFA file by path; NotFound if unreadable. */
Expected<VariationGraph> tryReadGfaFile(const std::string &path,
                                        const bio::Alphabet &alphabet);

/** @name Fatal wrappers for CLI tools and examples
 * valueOrFatal() over the try* parsers: same messages, exit(1).
 * @{ */
VariationGraph readGfa(std::istream &in, const bio::Alphabet &alphabet);
VariationGraph readGfaFile(const std::string &path,
                           const bio::Alphabet &alphabet);
/** @} */

/** Write the graph back out as blunt-ended forward-strand GFA v1. */
void writeGfa(std::ostream &out, const VariationGraph &graph);

} // namespace racelogic::pangraph

#endif // RACELOGIC_PANGRAPH_GFA_H
