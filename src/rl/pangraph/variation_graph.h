/**
 * @file
 * Node-labeled variation graphs: the pangenome substrate.
 *
 * A variation graph is a directed graph whose nodes (segments) carry
 * sequence labels; every source-to-sink walk spells one haplotype.
 * Aligning a read against the graph generalizes the paper's edit-graph
 * recurrence -- the DP is still a shortest-path query on a DAG, so it
 * races on exactly the same OR/delay substrate (rl/pangraph/
 * alignment_graph.h builds that product DAG; rl/pangraph/
 * graph_aligner.h races it).
 *
 * The race realization admits only acyclic graphs (a cycle would race
 * forever), so this module enforces the DAG restriction: isAcyclic()
 * / validate() reject cyclic inputs and topologicalOrder() drives
 * every downstream sweep.  Cyclic pangenomes must be DAG-ified
 * upstream (the standard "unrolled" form).
 */

#ifndef RACELOGIC_PANGRAPH_VARIATION_GRAPH_H
#define RACELOGIC_PANGRAPH_VARIATION_GRAPH_H

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rl/bio/sequence.h"
#include "rl/util/status.h"

namespace racelogic::pangraph {

/** Dense segment identifier (index into the graph's arrays). */
using SegmentId = uint32_t;

/** Sentinel for "no segment". */
constexpr SegmentId kNoSegment = ~SegmentId(0);

/**
 * Character position in the expanded (character-level) graph: 0 is
 * the virtual start before any base; characters are numbered 1..K
 * consecutively by segment id, then offset within the label.  Both
 * the product-DAG compiler (rl/pangraph/alignment_graph.h) and the
 * DP oracle (rl/pangraph/graph_align_dp.h) use this numbering, so
 * their per-state tables are directly comparable.
 */
using CharPos = uint32_t;

/** One labeled node of the variation graph. */
struct Segment {
    std::string name;   ///< GFA segment name (unique, non-empty)
    bio::Sequence label; ///< spelled bases (non-empty)
};

/**
 * A directed, node-labeled sequence graph intended to be acyclic.
 *
 * Segments are created densely; links may be added in any order and
 * exact duplicates are ignored (GFA files commonly repeat them).
 * Acyclicity is validated on demand -- validate() before racing.
 */
class VariationGraph
{
  public:
    explicit VariationGraph(bio::Alphabet alphabet);

    /** @name Value semantics
     *  Hand-written only because the memoized fingerprint is a
     *  std::atomic (thread-safe lazy init), which deletes the
     *  implicit copies; the cached value transfers with the graph.
     * @{ */
    VariationGraph(const VariationGraph &other)
        : alphabet_(other.alphabet_), segments_(other.segments_),
          outAdjacency(other.outAdjacency),
          inAdjacency(other.inAdjacency), byName(other.byName),
          links_(other.links_),
          cachedFingerprint(other.cachedFingerprint.load(
              std::memory_order_relaxed))
    {}

    VariationGraph(VariationGraph &&other) noexcept
        : alphabet_(std::move(other.alphabet_)),
          segments_(std::move(other.segments_)),
          outAdjacency(std::move(other.outAdjacency)),
          inAdjacency(std::move(other.inAdjacency)),
          byName(std::move(other.byName)), links_(other.links_),
          cachedFingerprint(other.cachedFingerprint.load(
              std::memory_order_relaxed))
    {}

    VariationGraph &
    operator=(VariationGraph other)
    {
        alphabet_ = std::move(other.alphabet_);
        segments_ = std::move(other.segments_);
        outAdjacency = std::move(other.outAdjacency);
        inAdjacency = std::move(other.inAdjacency);
        byName = std::move(other.byName);
        links_ = other.links_;
        cachedFingerprint.store(other.cachedFingerprint.load(
                                    std::memory_order_relaxed),
                                std::memory_order_relaxed);
        return *this;
    }
    /** @} */

    /**
     * Add a segment; returns its id.  fatal() on an empty name, a
     * duplicate name, an empty label, or a label over a different
     * alphabet.
     */
    SegmentId addSegment(std::string name, bio::Sequence label);

    /**
     * Fallible twin of addSegment() for untrusted (GFA) input; the
     * fatal variant is a valueOrFatal() wrapper over this one.
     */
    Expected<SegmentId> tryAddSegment(std::string name,
                                      bio::Sequence label);

    /** Add a directed link; duplicate links are ignored. */
    void addLink(SegmentId from, SegmentId to);

    size_t segmentCount() const { return segments_.size(); }
    size_t linkCount() const { return links_; }

    const Segment &segment(SegmentId id) const;

    /** Segment id for a name, or kNoSegment if absent. */
    SegmentId findSegment(const std::string &name) const;

    /** Successor segment ids of `id`, in insertion order. */
    const std::vector<SegmentId> &outLinks(SegmentId id) const;

    /** Predecessor segment ids of `id`, in insertion order. */
    const std::vector<SegmentId> &inLinks(SegmentId id) const;

    /** Segments with no incoming links, in id order. */
    std::vector<SegmentId> sources() const;

    /** Segments with no outgoing links, in id order. */
    std::vector<SegmentId> sinks() const;

    const bio::Alphabet &alphabet() const { return alphabet_; }

    /** Total label length over all segments (the char count K). */
    size_t totalLabelLength() const;

    /** True iff the graph currently contains no directed cycle. */
    bool isAcyclic() const;

    /**
     * fatal() unless the graph is raceable: at least one segment,
     * acyclic (the DAG-only restriction), with at least one source
     * and one sink.  orFatal() over checkValid().
     */
    void validate() const;

    /**
     * Typed raceability verdict: InvalidArgument on an empty graph or
     * one with no source/sink, Unsupported on a cycle (the DAG-only
     * restriction of the race substrate).
     */
    Status checkValid() const;

    /**
     * Deterministic topological order of the segments (Kahn's
     * algorithm, smallest id first among ready segments).  fatal() on
     * a cycle.
     */
    std::vector<SegmentId> topologicalOrder() const;

    /**
     * {shortest, longest} spelled length over all source-to-sink
     * walks.  Equal min and max means the graph is *rank-balanced*:
     * every walk spells the same number of characters, which is the
     * condition under which the Section 5 similarity conversion stays
     * score-preserving across walks (see docs/pangraph.md).
     */
    std::pair<size_t, size_t> spelledLengthRange() const;

    /**
     * Content hash of the fabric identity: alphabet, labels, and
     * links (segment names are display metadata and excluded).  Used
     * by the api plan cache to key GraphAlign plans by topology.
     * Memoized -- plan-cache keys are built per solve, and rehashing
     * a large pangenome each time would sit on the serial
     * plan-acquisition path of parallel read batches.
     */
    uint64_t fingerprint() const;

  private:
    void checkSegment(SegmentId id) const;

    bio::Alphabet alphabet_;
    std::vector<Segment> segments_;
    std::vector<std::vector<SegmentId>> outAdjacency;
    std::vector<std::vector<SegmentId>> inAdjacency;
    std::unordered_map<std::string, SegmentId> byName;
    size_t links_ = 0;

    /**
     * Memoized fingerprint; 0 = not yet computed (mutations reset).
     * Atomic with relaxed ordering: const graphs are shared across
     * engine threads via shared_ptr, and the computed value is
     * deterministic, so racing recomputations are benign.
     */
    mutable std::atomic<uint64_t> cachedFingerprint{0};
};

/**
 * True iff the two graphs are interchangeable as race fabrics: same
 * alphabet, same labels in the same order, same links.  Segment names
 * are ignored (they never reach the hardware).
 */
bool sameTopology(const VariationGraph &lhs, const VariationGraph &rhs);

} // namespace racelogic::pangraph

#endif // RACELOGIC_PANGRAPH_VARIATION_GRAPH_H
