#include "rl/pangraph/graph_aligner.h"

#include <algorithm>
#include <utility>

#include "rl/core/wavefront.h"
#include "rl/util/logging.h"

namespace racelogic::pangraph {

GraphAligner::GraphAligner(std::shared_ptr<const VariationGraph> graph,
                           bio::ScoreMatrix matrix, bio::Score lambda)
    : source(std::move(graph)), input(std::move(matrix))
{
    rl_assert(source != nullptr, "GraphAligner needs a graph");
    source->validate();
    rl_assert(source->alphabet() == input.alphabet(),
              "graph and matrix use different alphabets");

    if (!input.isCost()) {
        auto range = source->spelledLengthRange();
        if (range.first != range.second)
            rl_fatal("similarity matrices need a rank-balanced graph "
                     "(every source-to-sink walk the same length; got ",
                     range.first, "..", range.second,
                     "): the Section 5 conversion is affine in the "
                     "walk length.  Race a Cost-kind matrix instead");
        spelledLength = range.first;
        converted = bio::toShortestPathForm(input, lambda);
    } else {
        rl_assert(lambda == 1,
                  "lambda scales similarity conversion only");
        rl_assert(input.minFinite() >= 1,
                  "graph alignment requires all finite cost weights "
                  ">= 1 (got ", input.minFinite(), ")");
    }

    // Plan-time validation of the race-ready weights, so bad
    // matrices fail here with a diagnostic instead of deep inside
    // the wavefront kernel.  Gap weights must be finite (every
    // character must be insertable/deletable or no walk connects the
    // corners) and no weight may exceed the kernel's bucket-calendar
    // cap.
    const bio::ScoreMatrix &race = costs();
    for (size_t s = 0; s < race.alphabet().size(); ++s)
        if (race.gap(static_cast<bio::Symbol>(s)) ==
            bio::kScoreInfinity)
            rl_fatal("gap weight for '",
                     race.alphabet().letter(
                         static_cast<bio::Symbol>(s)),
                     "' is infinite; graph alignment needs finite "
                     "indel weights");
    if (race.maxFinite() > core::kMaxWavefrontWeight)
        rl_fatal("largest race weight ", race.maxFinite(),
                 " exceeds the wavefront kernel's calendar cap ",
                 core::kMaxWavefrontWeight,
                 "; rescale the matrix (or lower lambda)");

    compiledGraph = compileGraph(*source);
}

const bio::ScoreMatrix &
GraphAligner::costs() const
{
    return converted ? converted->costs : input;
}

bio::Score
GraphAligner::recoverScore(bio::Score racedCost, size_t readLength) const
{
    if (!converted)
        return racedCost;
    return converted->recoverScore(racedCost, spelledLength, readLength);
}

GraphRaceResult
GraphAligner::align(const bio::Sequence &read, sim::Tick horizon) const
{
    rl_assert(read.alphabet() == source->alphabet(),
              "read and graph use different alphabets");
    return align(buildAlignmentGraph(compiledGraph, read, costs()),
                 horizon);
}

GraphRaceResult
GraphAligner::align(const AlignmentGraph &product, sim::Tick horizon) const
{
    // The product DAG is acyclic by construction and its weights are
    // cost-matrix entries, so the bucketed wavefront kernel applies
    // directly (no raceDag() revalidation sweep per read).
    core::WavefrontRaceKernel kernel(product.dag);
    core::RaceOutcome outcome =
        kernel.race({product.source}, core::RaceType::Or, horizon);

    GraphRaceResult result;
    result.nodes = product.dag.nodeCount();
    result.events = outcome.events;
    const core::TemporalValue sinkArrival = outcome.at(product.sink);
    result.completed = sinkArrival.fired();
    if (result.completed) {
        result.racedCost = static_cast<bio::Score>(sinkArrival.time());
        result.latencyCycles = sinkArrival.time();
        result.score =
            recoverScore(result.racedCost, product.readLength);
    } else {
        rl_assert(horizon != sim::kTickInfinity,
                  "sink never fired; gap weights should guarantee a "
                  "walk");
        result.racedCost = bio::kScoreInfinity;
        result.score = bio::kScoreInfinity;
        result.latencyCycles = horizon;
    }
    result.cellsFired = static_cast<size_t>(std::count_if(
        outcome.firing.begin(), outcome.firing.end(),
        [](const core::TemporalValue &v) { return v.fired(); }));
    result.arrival = std::move(outcome.firing);
    return result;
}

GraphMapping
GraphAligner::map(const bio::Sequence &read) const
{
    GraphRaceResult raced = align(read);
    rl_assert(raced.completed, "mapping an aborted race");
    return mappingFromArrival(compiledGraph, read, costs(),
                              raced.arrival);
}

} // namespace racelogic::pangraph
