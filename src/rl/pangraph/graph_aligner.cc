#include "rl/pangraph/graph_aligner.h"

#include <algorithm>
#include <utility>

#include "rl/core/scratch_registry.h"
#include "rl/core/wavefront.h"
#include "rl/util/logging.h"

namespace racelogic::pangraph {

GraphAligner::GraphAligner(std::shared_ptr<const VariationGraph> graph,
                           bio::ScoreMatrix matrix, bio::Score lambda)
    : GraphAligner(
          tryMake(std::move(graph), std::move(matrix), lambda)
              .valueOrFatal())
{}

Expected<GraphAligner>
GraphAligner::tryMake(std::shared_ptr<const VariationGraph> graph,
                      bio::ScoreMatrix matrix, bio::Score lambda)
{
    if (graph == nullptr)
        return Status::error(ErrorCode::InvalidArgument,
                             "GraphAligner needs a graph");
    if (Status valid = graph->checkValid(); !valid.ok())
        return valid;
    if (!(graph->alphabet() == matrix.alphabet()))
        return Status::error(ErrorCode::InvalidArgument,
                             "graph uses alphabet ",
                             graph->alphabet().letters(),
                             ", matrix uses ",
                             matrix.alphabet().letters());

    std::optional<bio::ShortestPathForm> conversion;
    size_t spelled = 0;
    if (!matrix.isCost()) {
        if (lambda < 1)
            return Status::error(ErrorCode::InvalidArgument,
                                 "lambda must be a positive integer "
                                 "scale (got ", lambda, ")");
        auto range = graph->spelledLengthRange();
        if (range.first != range.second)
            return Status::error(
                ErrorCode::Unsupported,
                "similarity matrices need a rank-balanced graph "
                "(every source-to-sink walk the same length; got ",
                range.first, "..", range.second,
                "): the Section 5 conversion is affine in the "
                "walk length.  Race a Cost-kind matrix instead");
        spelled = range.first;
        conversion = bio::toShortestPathForm(matrix, lambda);
    } else if (lambda != 1) {
        return Status::error(ErrorCode::InvalidArgument,
                             "lambda scales similarity conversion "
                             "only");
    }

    // Plan-time validation of the race-ready weights -- finite gaps,
    // everything >= 1 and under the kernel's bucket-calendar cap --
    // lives in checkCompilable(), the one place every racing path
    // passes through, so bad matrices fail here with a diagnostic
    // instead of deep inside the wavefront kernel.  (For similarity
    // inputs that overflow the cap, lowering lambda shrinks the
    // converted weights.)
    const bio::ScoreMatrix &race =
        conversion ? conversion->costs : matrix;
    auto compiled = tryCompileGraph(*graph, race);
    if (!compiled.ok())
        return compiled.status();

    return GraphAligner(std::move(graph), std::move(matrix),
                        std::move(conversion),
                        std::move(compiled.value()), spelled);
}

const bio::ScoreMatrix &
GraphAligner::costs() const
{
    return converted ? converted->costs : input;
}

bio::Score
GraphAligner::recoverScore(bio::Score racedCost, size_t readLength) const
{
    if (!converted)
        return racedCost;
    return converted->recoverScore(racedCost, spelledLength, readLength);
}

GraphRaceResult
GraphAligner::align(const bio::Sequence &read, sim::Tick horizon,
                    const core::CancelToken *cancel,
                    core::KernelCounters *counters) const
{
    // One kernel scratch per thread: align() stays const and
    // thread-safe (the scratch is live only within this call), and
    // repeated aligns stop re-allocating the calendar arena.  The
    // registry entry publishes resident bytes for the serving memory
    // budget and lets its janitor shrink an idle worker's arena; the
    // lease keeps shrinkers off a live solve.
    static thread_local GraphAlignScratch scratch;
    static thread_local core::ScratchRegistration scratchReg(
        [s = &scratch](bool shrink) {
            if (shrink)
                s->shrinkToFit();
            return s->residentBytes();
        });
    core::ScratchLease lease(scratchReg.entry());
    return align(read, horizon, scratch, cancel, counters);
}

GraphRaceResult
GraphAligner::align(const bio::Sequence &read, sim::Tick horizon,
                    GraphAlignScratch &scratch,
                    const core::CancelToken *cancel,
                    core::KernelCounters *counters) const
{
    rl_assert(read.alphabet() == source->alphabet(),
              "read and graph use different alphabets");
    GraphRaceResult result = raceAlignmentGrid(compiledGraph, read,
                                               costs(), horizon, scratch,
                                               cancel, counters);
    if (result.completed)
        result.score = recoverScore(result.racedCost, read.size());
    return result;
}

GraphRaceResult
GraphAligner::align(const AlignmentGraph &product, sim::Tick horizon) const
{
    // The product DAG is acyclic by construction and its weights are
    // cost-matrix entries, so the bucketed wavefront kernel applies
    // directly (no raceDag() revalidation sweep per read).
    core::WavefrontRaceKernel kernel(product.dag);
    core::RaceOutcome outcome =
        kernel.race({product.source}, core::RaceType::Or, horizon);

    GraphRaceResult result;
    result.nodes = product.dag.nodeCount();
    result.events = outcome.events;
    const core::TemporalValue sinkArrival = outcome.at(product.sink);
    result.completed = sinkArrival.fired();
    if (result.completed) {
        result.racedCost = static_cast<bio::Score>(sinkArrival.time());
        result.latencyCycles = sinkArrival.time();
        result.score =
            recoverScore(result.racedCost, product.readLength);
    } else {
        rl_assert(horizon != sim::kTickInfinity,
                  "sink never fired; gap weights should guarantee a "
                  "walk");
        result.racedCost = bio::kScoreInfinity;
        result.score = bio::kScoreInfinity;
        result.latencyCycles = horizon;
    }
    result.cellsFired = static_cast<size_t>(std::count_if(
        outcome.firing.begin(), outcome.firing.end(),
        [](const core::TemporalValue &v) { return v.fired(); }));
    result.arrival = std::move(outcome.firing);
    return result;
}

GraphMapping
GraphAligner::map(const bio::Sequence &read) const
{
    GraphRaceResult raced = align(read);
    rl_assert(raced.completed, "mapping an aborted race");
    return mappingFromArrival(compiledGraph, read, costs(),
                              raced.arrival);
}

} // namespace racelogic::pangraph
