#include "rl/pangraph/graph_align_kernel.h"

#include <algorithm>

#include "rl/graph/dag.h"
#include "rl/util/logging.h"

namespace racelogic::pangraph {

GraphRaceResult
raceAlignmentGrid(const CompiledGraph &compiled, const bio::Sequence &read,
                  const bio::ScoreMatrix &costs, sim::Tick horizon)
{
    GraphAlignScratch scratch;
    return raceAlignmentGrid(compiled, read, costs, horizon, scratch);
}

GraphRaceResult
raceAlignmentGrid(const CompiledGraph &compiled, const bio::Sequence &read,
                  const bio::ScoreMatrix &costs, sim::Tick horizon,
                  GraphAlignScratch &scratch,
                  const core::CancelToken *cancel,
                  core::KernelCounters *counters)
{
    rl_assert(costs.isCost(), "graph alignment races a Cost-kind matrix");
    rl_assert(read.alphabet() == costs.alphabet(),
              "read and matrix use different alphabets");
    // The hoisted gapWeight array and the ring sizing below must come
    // from the same matrix: a foreign `costs` could size the ring
    // smaller than a hoisted weight, breaking pushAhead's w < ring
    // precondition (an out-of-bounds write, not just a wrong score).
    // The equality also carries compileGraph's plan-time weight
    // validation over: all finite weights >= 1, which is what lets
    // the chain-detaching drain run (zero-weight super-sink wires
    // are folded into the sink arrival instead of entering the
    // calendar); the debug build re-derives that directly.
    rl_assert(costs.fingerprint() == compiled.matrixFingerprint,
              "matrix does not match the one the graph was compiled "
              "with; the hoisted gap weights would mix tables");
    rl_dassert(costs.minFinite() >= 1,
               "raceAlignmentGrid requires all finite weights >= 1");

    const size_t m = read.size();
    const size_t positions = compiled.positionCount();

    // Same guard as buildAlignmentGraph() -- plus one for the
    // calendar: cells *and* arena offsets are 32-bit, and a full
    // drain schedules up to one arrival per product edge (each state
    // fires at most once and pushes one insertion plus two arrivals
    // per compiled successor), so both bounds must fit or the sweep
    // fails here with a diagnostic instead of wrapping indices.
    const size_t states = (m + 1) * positions + 1;
    const size_t arrivalBound =
        m * positions + (2 * m + 1) * compiled.succ.size();
    if (states >= static_cast<size_t>(graph::kNoNode) ||
        arrivalBound >= static_cast<size_t>(core::BucketCalendar::kNil))
        rl_fatal("product of a ", m, " bp read x ", positions,
                 " graph positions has ", states, " states and up to ",
                 arrivalBound,
                 " scheduled arrivals, exceeding the 32-bit id space; "
                 "split the pangenome or map shorter reads");

    // Per-read weight rows, hoisted out of the sweep: the insertion
    // weight per read offset and one flat substitution row per read
    // offset indexed by graph symbol.
    const size_t alpha = costs.alphabet().size();
    scratch.gapRead.resize(m);
    scratch.pairRow.resize(m * alpha);
    for (size_t j = 0; j < m; ++j) {
        scratch.gapRead[j] = costs.gap(read[j]);
        bio::Score *row = scratch.pairRow.data() + j * alpha;
        for (size_t s = 0; s < alpha; ++s)
            row[s] = costs.pair(read[j], static_cast<bio::Symbol>(s));
    }

    GraphRaceResult result;
    result.nodes = states;
    result.arrival.assign(states, core::TemporalValue::never());

    const size_t ring = static_cast<size_t>(costs.maxFinite()) + 1;
    core::BucketCalendar &calendar = scratch.calendar;
    calendar.reset(ring);

    const uint32_t sink = static_cast<uint32_t>((m + 1) * positions);
    const uint32_t stride = static_cast<uint32_t>(positions);

    // fire() generates the state's edge families straight from the
    // compiled CSR and the hoisted weight rows -- the product DAG is
    // never materialized.  `slot` is t % ring, tracked by the
    // calendar's drain; pushAhead addresses the ring as slot + w
    // with one conditional wrap (w <= maxFinite < ring), so the
    // sweep performs no division per scheduled arrival.
    auto fire = [&](uint32_t cell, sim::Tick t, size_t slot) {
        result.arrival[cell] = core::TemporalValue::at(t);
        ++result.cellsFired;
        const size_t j = cell / positions;
        const CharPos p = static_cast<CharPos>(cell % positions);
        auto push = [&](uint32_t to, bio::Score w) {
            if (t + static_cast<sim::Tick>(w) > horizon)
                return; // Section 6: the abort counter trips first.
            calendar.pushAhead(to, slot, static_cast<size_t>(w), ring);
        };
        const uint32_t begin = compiled.succOffsets[p];
        const uint32_t end = compiled.succOffsets[p + 1];
        if (j < m) {
            // Consume read[j] against a gap (insertion).
            push(cell + stride, scratch.gapRead[j]);
            const bio::Score *row = scratch.pairRow.data() + j * alpha;
            for (uint32_t e = begin; e < end; ++e) {
                const CharPos q = compiled.succ[e];
                // State (j, q) is cell - p + q; (j+1, q) one row on.
                const uint32_t across = cell - p + q;
                // Consume graph char q against a gap (deletion).
                push(across, compiled.gapWeight[q]);
                const bio::Score w = row[compiled.symbol[q]];
                if (w != bio::kScoreInfinity) // forbidden: no edge
                    push(across + stride, w); // substitute/match
            }
        } else {
            for (uint32_t e = begin; e < end; ++e) {
                const CharPos q = compiled.succ[e];
                push(cell - p + q, compiled.gapWeight[q]);
            }
            if (p > 0 && compiled.terminal[p]) {
                // The zero-weight super-sink wire.  The DAG kernel
                // would schedule it into the bucket being drained and
                // count it on the same tick; fold that in directly --
                // one event per wire, first terminal firing fires the
                // sink OR.
                ++result.events;
                if (!result.arrival[sink].fired()) {
                    result.arrival[sink] = core::TemporalValue::at(t);
                    ++result.cellsFired;
                }
            }
        }
    };

    fire(0, 0, 0); // source (0, 0) injected at tick 0 (<= horizon)

    sim::Tick lastSwept = 0;
    const bool drained = calendar.drain(
        ring,
        [&](uint32_t cell, sim::Tick t, size_t slot) {
            ++result.events;
            lastSwept = t;
            if (!result.arrival[cell].fired())
                fire(cell, t, slot); // else: OR state already high
        },
        cancel);

    // Profiling export: everything below was tracked by the sweep
    // anyway (or is a container size), so a null `counters` costs
    // nothing and a non-null one cannot change the result.
    if (counters) {
        counters->events += result.events;
        counters->bucketsDrained += static_cast<uint64_t>(lastSwept) + 1;
        counters->scratchHighWater =
            std::max(counters->scratchHighWater,
                     static_cast<uint64_t>(calendar.arena.size()));
        counters->lanesOccupied += result.cellsFired;
    }

    const core::TemporalValue sinkArrival = result.arrival[sink];
    result.completed = sinkArrival.fired();
    if (result.completed) {
        result.racedCost = static_cast<bio::Score>(sinkArrival.time());
        result.score = result.racedCost;
        result.latencyCycles = sinkArrival.time();
    } else if (!drained) {
        // Cancelled before the sink fired: the same typed-abort shape
        // as a horizon trip, stamped with the last cycle swept.
        result.cancelled = true;
        result.racedCost = bio::kScoreInfinity;
        result.score = bio::kScoreInfinity;
        result.latencyCycles = lastSwept;
        if (counters)
            ++counters->cancels;
    } else {
        rl_assert(horizon != sim::kTickInfinity,
                  "sink never fired; gap weights should guarantee a "
                  "walk");
        result.racedCost = bio::kScoreInfinity;
        result.score = bio::kScoreInfinity;
        result.latencyCycles = horizon;
        if (counters)
            ++counters->horizonAborts;
    }
    return result;
}

} // namespace racelogic::pangraph
