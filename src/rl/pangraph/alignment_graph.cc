#include "rl/pangraph/alignment_graph.h"

#include <atomic>

#include "rl/core/wavefront.h"
#include "rl/util/logging.h"

namespace racelogic::pangraph {

namespace {

/** Products materialized so far (test instrumentation, relaxed). */
std::atomic<uint64_t> materializedProducts{0};

} // namespace

uint64_t
alignmentGraphBuildCount()
{
    return materializedProducts.load(std::memory_order_relaxed);
}

Status
checkCompilable(const VariationGraph &graph, const bio::ScoreMatrix &race)
{
    if (Status valid = graph.checkValid(); !valid.ok())
        return valid;
    if (!(graph.alphabet() == race.alphabet()))
        return Status::error(ErrorCode::InvalidArgument,
                             "graph uses alphabet ",
                             graph.alphabet().letters(),
                             ", race matrix uses ",
                             race.alphabet().letters());
    // Plan-time weight validation the fused kernel relies on (its
    // per-read check is the cheap fingerprint equality): the
    // chain-detaching calendar drain needs every finite weight >= 1,
    // gap weights must be finite (every character insertable or no
    // walk connects the corners -- and an infinite gap would size
    // the kernel's ring from kScoreInfinity), and no weight may
    // exceed the bucket-calendar cap.
    return race.validateRaceReady(core::kMaxWavefrontWeight,
                                  /*allowForbiddenPairs=*/true);
}

namespace {

CompiledGraph
compileValidated(const VariationGraph &graph, const bio::ScoreMatrix &race)
{
    CompiledGraph out;
    const size_t segs = graph.segmentCount();
    out.charCount = graph.totalLabelLength();
    const size_t positions = out.positionCount();

    out.symbol.assign(positions, 0);
    out.segmentOf.assign(positions, kNoSegment);
    out.terminal.assign(positions, 0);
    out.firstChar.resize(segs);
    out.lastChar.resize(segs);

    // Characters numbered consecutively by segment id, then offset.
    CharPos next = 1;
    for (SegmentId id = 0; id < segs; ++id) {
        const bio::Sequence &label = graph.segment(id).label;
        out.firstChar[id] = next;
        for (size_t k = 0; k < label.size(); ++k, ++next) {
            out.symbol[next] = label[k];
            out.segmentOf[next] = id;
        }
        out.lastChar[id] = next - 1;
        if (graph.outLinks(id).empty())
            out.terminal[out.lastChar[id]] = 1;
    }
    rl_assert(next == positions, "character numbering drifted");

    // Per-position gap weights, hoisted so the deletion-edge family
    // of both product builders reads a flat array; the fingerprint
    // pins the matrix they came from.
    out.gapWeight.assign(positions, 0);
    for (size_t p = 1; p < positions; ++p)
        out.gapWeight[p] = race.gap(out.symbol[p]);
    out.matrixFingerprint = race.fingerprint();

    // Successor counts, then a prefix-sum fill (CSR construction).
    std::vector<uint32_t> degree(positions, 0);
    auto eachSuccessor = [&](auto &&emit) {
        for (SegmentId id : graph.sources())
            emit(CharPos(0), out.firstChar[id]);
        for (SegmentId id = 0; id < segs; ++id) {
            for (CharPos c = out.firstChar[id]; c < out.lastChar[id];
                 ++c)
                emit(c, c + 1);
            for (SegmentId to : graph.outLinks(id))
                emit(out.lastChar[id], out.firstChar[to]);
        }
    };
    eachSuccessor([&](CharPos from, CharPos) { ++degree[from]; });
    out.succOffsets.assign(positions + 1, 0);
    for (size_t p = 0; p < positions; ++p)
        out.succOffsets[p + 1] = out.succOffsets[p] + degree[p];
    out.succ.resize(out.succOffsets.back());
    std::vector<uint32_t> cursor(out.succOffsets.begin(),
                                 out.succOffsets.end() - 1);
    eachSuccessor([&](CharPos from, CharPos to) {
        out.succ[cursor[from]++] = to;
    });

    // Predecessor CSR, mirrored from the successor list.
    std::vector<uint32_t> inDegree(positions, 0);
    for (CharPos to : out.succ)
        ++inDegree[to];
    out.predOffsets.assign(positions + 1, 0);
    for (size_t p = 0; p < positions; ++p)
        out.predOffsets[p + 1] = out.predOffsets[p] + inDegree[p];
    out.pred.resize(out.predOffsets.back());
    cursor.assign(out.predOffsets.begin(), out.predOffsets.end() - 1);
    for (size_t p = 0; p < positions; ++p)
        for (uint32_t e = out.succOffsets[p]; e < out.succOffsets[p + 1];
             ++e)
            out.pred[cursor[out.succ[e]]++] =
                static_cast<CharPos>(p);

    return out;
}

} // namespace

CompiledGraph
compileGraph(const VariationGraph &graph, const bio::ScoreMatrix &race)
{
    checkCompilable(graph, race).orFatal();
    return compileValidated(graph, race);
}

Expected<CompiledGraph>
tryCompileGraph(const VariationGraph &graph, const bio::ScoreMatrix &race)
{
    if (Status s = checkCompilable(graph, race); !s.ok())
        return s;
    return compileValidated(graph, race);
}

AlignmentGraph
buildAlignmentGraph(const CompiledGraph &compiled,
                    const bio::Sequence &read,
                    const bio::ScoreMatrix &costs)
{
    rl_assert(costs.isCost(), "graph alignment races a Cost-kind matrix");
    rl_assert(read.alphabet() == costs.alphabet(),
              "read and matrix use different alphabets");
    rl_assert(costs.fingerprint() == compiled.matrixFingerprint,
              "matrix does not match the one the graph was compiled "
              "with; the hoisted gap weights would mix tables");
    materializedProducts.fetch_add(1, std::memory_order_relaxed);

    const size_t m = read.size();
    const size_t positions = compiled.positionCount();

    // The same fail-at-plan-time courtesy GraphAligner extends to
    // weights: reject products that overflow the 32-bit node-id
    // space instead of silently wrapping ids deep in the kernel.
    const size_t states = (m + 1) * positions + 1;
    if (states >= static_cast<size_t>(graph::kNoNode))
        rl_fatal("product DAG of a ", m, " bp read x ", positions,
                 " graph positions has ", states,
                 " states, exceeding the 32-bit node-id space; split "
                 "the pangenome or map shorter reads");

    AlignmentGraph out;
    out.readLength = m;
    out.positionCount = positions;
    out.dag.addNodes(states);
    out.source = out.node(0, 0);
    out.sink = static_cast<graph::NodeId>((m + 1) * positions);

    // Per-read-symbol gap weights, hoisted out of the product sweep.
    std::vector<bio::Score> gapRead(m);
    for (size_t j = 0; j < m; ++j)
        gapRead[j] = costs.gap(read[j]);

    for (size_t j = 0; j <= m; ++j) {
        for (CharPos p = 0; p < positions; ++p) {
            const graph::NodeId here = out.node(j, p);
            if (j < m) // consume read[j] against a gap (insertion)
                out.dag.addEdge(here, out.node(j + 1, p), gapRead[j]);
            for (uint32_t e = compiled.succOffsets[p];
                 e < compiled.succOffsets[p + 1]; ++e) {
                const CharPos q = compiled.succ[e];
                const bio::Symbol sym = compiled.symbol[q];
                // Consume graph char q against a gap (deletion);
                // weight hoisted into the compiled view.
                out.dag.addEdge(here, out.node(j, q),
                                compiled.gapWeight[q]);
                if (j < m) {
                    bio::Score w = costs.pair(read[j], sym);
                    if (w != bio::kScoreInfinity)
                        out.dag.addEdge(here, out.node(j + 1, q), w);
                }
            }
            // A terminal character with the read fully consumed ends
            // the alignment: a zero-weight wire into the sink OR gate.
            if (j == m && p > 0 && compiled.terminal[p])
                out.dag.addEdge(here, out.sink, 0);
        }
    }
    return out;
}

} // namespace racelogic::pangraph
