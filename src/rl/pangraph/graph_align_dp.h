/**
 * @file
 * Graph-Needleman-Wunsch: the software oracle for graph alignment.
 *
 * An independent dynamic program over (variation graph x read),
 * evaluated segment-by-segment in topological order -- the classic
 * sequence-to-DAG recurrence (Navarro's generalization of edit
 * distance to graphs).  It never touches the product DAG or the race
 * kernels, so it is the correctness oracle the raced alignment is
 * checked against, exactly as rl/bio/align_dp.h anchors the pairwise
 * fabric.
 *
 * State D[p][j]: minimum cost of aligning the first j read characters
 * against some walk from a source whose last consumed character is
 * graph position p (p = 0: no graph character consumed yet).  The
 * graph alignment distance is min over sink-segment-ending positions
 * p of D[p][m] -- the same value the race reads off its super-sink
 * OR gate.
 */

#ifndef RACELOGIC_PANGRAPH_GRAPH_ALIGN_DP_H
#define RACELOGIC_PANGRAPH_GRAPH_ALIGN_DP_H

#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/pangraph/variation_graph.h"
#include "rl/util/grid.h"

namespace racelogic::pangraph {

/** Full oracle DP over (positions 0..K) x (read prefixes 0..m). */
struct GraphDpResult {
    /** Optimal graph alignment cost. */
    bio::Score distance = 0;

    /**
     * (K+1) x (m+1) score table; row p is graph character position p
     * in the compileGraph() numbering (row 0 = virtual start),
     * kScoreInfinity where a state is unreachable.  Cell (p, j)
     * equals the race's arrival cycle at product node (j, p), which
     * the equivalence tests assert cell by cell.
     */
    util::Grid<bio::Score> table;
};

/**
 * Run the oracle DP of `read` against `graph` under a race-ready
 * cost matrix (Cost kind; forbidden pairs respected).
 */
GraphDpResult graphAlignDp(const VariationGraph &graph,
                           const bio::Sequence &read,
                           const bio::ScoreMatrix &costs);

} // namespace racelogic::pangraph

#endif // RACELOGIC_PANGRAPH_GRAPH_ALIGN_DP_H
