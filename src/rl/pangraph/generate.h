/**
 * @file
 * Random variation-graph workloads.
 *
 * Property tests check the raced graph alignment against the
 * graph-NW oracle on many shapes; this generator produces the shapes
 * real pangenomes exhibit: a linear backbone of 1..64 nt segments
 * decorated with SNP bubbles (two single-base branches), insertion
 * branches (an optional extra segment), and deletion edges (a link
 * skipping a backbone segment).  tools/make_gfa.py is the standalone
 * CLI twin of this generator for producing .gfa files.
 */

#ifndef RACELOGIC_PANGRAPH_GENERATE_H
#define RACELOGIC_PANGRAPH_GENERATE_H

#include <memory>

#include "rl/pangraph/variation_graph.h"
#include "rl/util/random.h"

namespace racelogic::pangraph {

/** Knobs for randomVariationGraph(). */
struct VariationGraphParams {
    size_t backboneSegments = 8;  ///< segments on the linear spine
    size_t minLabel = 1;          ///< shortest segment label (>= 1)
    size_t maxLabel = 8;          ///< longest segment label (<= 64 say)
    double snpDensity = 0.3;      ///< P(SNP bubble after a segment)
    double insertDensity = 0.15;  ///< P(insertion branch after one)
    double deleteDensity = 0.15;  ///< P(deletion edge skipping one)

    /** SNP-bubbles-only graphs stay rank-balanced (similarity-safe). */
    static VariationGraphParams
    balanced(size_t segments = 8)
    {
        VariationGraphParams p;
        p.backboneSegments = segments;
        p.insertDensity = 0.0;
        p.deleteDensity = 0.0;
        return p;
    }
};

/** Generate a random acyclic variation graph over `alphabet`. */
VariationGraph randomVariationGraph(util::Rng &rng,
                                    const bio::Alphabet &alphabet,
                                    const VariationGraphParams &params);

/**
 * Sample a read from the graph: spell a uniformly random
 * source-to-sink walk, then apply the mutation model (the Section 6
 * screening regimes, lifted to graphs).
 */
bio::Sequence sampleRead(util::Rng &rng, const VariationGraph &graph,
                         const bio::MutationModel &noise);

} // namespace racelogic::pangraph

#endif // RACELOGIC_PANGRAPH_GENERATE_H
