#include "rl/pangraph/variation_graph.h"

#include <algorithm>

#include "rl/util/fnv.h"
#include "rl/util/logging.h"

namespace racelogic::pangraph {

VariationGraph::VariationGraph(bio::Alphabet alphabet)
    : alphabet_(std::move(alphabet))
{}

void
VariationGraph::checkSegment(SegmentId id) const
{
    rl_assert(id < segments_.size(), "segment id ", id, " out of range (",
              segments_.size(), " segments)");
}

SegmentId
VariationGraph::addSegment(std::string name, bio::Sequence label)
{
    return tryAddSegment(std::move(name), std::move(label))
        .valueOrFatal();
}

Expected<SegmentId>
VariationGraph::tryAddSegment(std::string name, bio::Sequence label)
{
    if (name.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "variation-graph segment needs a "
                             "non-empty name");
    if (byName.count(name))
        return Status::error(ErrorCode::InvalidArgument,
                             "duplicate segment name '", name, "'");
    if (label.empty())
        return Status::error(ErrorCode::InvalidArgument, "segment '",
                             name, "' has an empty label; the race "
                             "substrate has no epsilon nodes");
    if (!(label.alphabet() == alphabet_))
        return Status::error(ErrorCode::InvalidArgument, "segment '",
                             name, "' label uses alphabet ",
                             label.alphabet().letters(), ", graph uses ",
                             alphabet_.letters());
    SegmentId id = static_cast<SegmentId>(segments_.size());
    byName.emplace(name, id);
    segments_.push_back(Segment{std::move(name), std::move(label)});
    outAdjacency.emplace_back();
    inAdjacency.emplace_back();
    cachedFingerprint.store(0, std::memory_order_relaxed);
    return id;
}

void
VariationGraph::addLink(SegmentId from, SegmentId to)
{
    checkSegment(from);
    checkSegment(to);
    std::vector<SegmentId> &out = outAdjacency[from];
    if (std::find(out.begin(), out.end(), to) != out.end())
        return; // GFA files commonly list a link twice
    out.push_back(to);
    inAdjacency[to].push_back(from);
    ++links_;
    cachedFingerprint.store(0, std::memory_order_relaxed);
}

const Segment &
VariationGraph::segment(SegmentId id) const
{
    checkSegment(id);
    return segments_[id];
}

SegmentId
VariationGraph::findSegment(const std::string &name) const
{
    auto found = byName.find(name);
    return found == byName.end() ? kNoSegment : found->second;
}

const std::vector<SegmentId> &
VariationGraph::outLinks(SegmentId id) const
{
    checkSegment(id);
    return outAdjacency[id];
}

const std::vector<SegmentId> &
VariationGraph::inLinks(SegmentId id) const
{
    checkSegment(id);
    return inAdjacency[id];
}

std::vector<SegmentId>
VariationGraph::sources() const
{
    std::vector<SegmentId> out;
    for (SegmentId id = 0; id < segments_.size(); ++id)
        if (inAdjacency[id].empty())
            out.push_back(id);
    return out;
}

std::vector<SegmentId>
VariationGraph::sinks() const
{
    std::vector<SegmentId> out;
    for (SegmentId id = 0; id < segments_.size(); ++id)
        if (outAdjacency[id].empty())
            out.push_back(id);
    return out;
}

size_t
VariationGraph::totalLabelLength() const
{
    size_t total = 0;
    for (const Segment &s : segments_)
        total += s.label.size();
    return total;
}

bool
VariationGraph::isAcyclic() const
{
    // Kahn's algorithm: the graph is acyclic iff every segment drains.
    std::vector<size_t> remaining(segments_.size());
    std::vector<SegmentId> ready;
    for (SegmentId id = 0; id < segments_.size(); ++id) {
        remaining[id] = inAdjacency[id].size();
        if (remaining[id] == 0)
            ready.push_back(id);
    }
    size_t drained = 0;
    while (!ready.empty()) {
        SegmentId id = ready.back();
        ready.pop_back();
        ++drained;
        for (SegmentId next : outAdjacency[id])
            if (--remaining[next] == 0)
                ready.push_back(next);
    }
    return drained == segments_.size();
}

void
VariationGraph::validate() const
{
    checkValid().orFatal();
}

Status
VariationGraph::checkValid() const
{
    if (segments_.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "variation graph has no segments");
    if (!isAcyclic())
        return Status::error(ErrorCode::Unsupported,
                             "variation graph contains a cycle; Race "
                             "Logic races DAGs only (a cycle would "
                             "race forever) -- DAG-ify the pangenome "
                             "upstream");
    if (sources().empty() || sinks().empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "variation graph needs at least one "
                             "source and one sink segment");
    return Status();
}

std::vector<SegmentId>
VariationGraph::topologicalOrder() const
{
    const size_t n = segments_.size();
    std::vector<size_t> remaining(n);
    // Binary min-heap over ready ids: smallest-id-first makes the
    // order deterministic in O((V + E) log V).
    std::vector<SegmentId> heap;
    auto cmp = [](SegmentId a, SegmentId b) { return a > b; };
    for (SegmentId id = 0; id < n; ++id) {
        remaining[id] = inAdjacency[id].size();
        if (remaining[id] == 0)
            heap.push_back(id);
    }
    std::make_heap(heap.begin(), heap.end(), cmp);
    std::vector<SegmentId> order;
    order.reserve(n);
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        SegmentId id = heap.back();
        heap.pop_back();
        order.push_back(id);
        for (SegmentId next : outAdjacency[id]) {
            if (--remaining[next] == 0) {
                heap.push_back(next);
                std::push_heap(heap.begin(), heap.end(), cmp);
            }
        }
    }
    rl_assert(order.size() == n,
              "topologicalOrder on a cyclic graph; call validate() "
              "first");
    return order;
}

std::pair<size_t, size_t>
VariationGraph::spelledLengthRange() const
{
    constexpr size_t kUnset = ~size_t(0);
    const std::vector<SegmentId> order = topologicalOrder();
    std::vector<size_t> shortest(segments_.size(), kUnset);
    std::vector<size_t> longest(segments_.size(), kUnset);
    for (SegmentId id : order) {
        size_t lo = kUnset, hi = kUnset;
        if (inAdjacency[id].empty()) {
            lo = hi = 0;
        } else {
            for (SegmentId pred : inAdjacency[id]) {
                if (shortest[pred] == kUnset)
                    continue;
                lo = std::min(lo == kUnset ? ~size_t(0) : lo,
                              shortest[pred]);
                hi = hi == kUnset ? longest[pred]
                                  : std::max(hi, longest[pred]);
            }
        }
        if (lo == kUnset)
            continue; // unreachable from any source
        shortest[id] = lo + segments_[id].label.size();
        longest[id] = hi + segments_[id].label.size();
    }
    size_t lo = kUnset, hi = 0;
    for (SegmentId id : sinks()) {
        if (shortest[id] == kUnset)
            continue;
        lo = std::min(lo, shortest[id]);
        hi = std::max(hi, longest[id]);
    }
    rl_assert(lo != kUnset, "no source-to-sink walk exists");
    return {lo, hi};
}

uint64_t
VariationGraph::fingerprint() const
{
    uint64_t cached =
        cachedFingerprint.load(std::memory_order_relaxed);
    if (cached != 0)
        return cached;
    util::Fnv f;
    for (char c : alphabet_.letters())
        f.mix(static_cast<uint64_t>(c));
    f.mix(segments_.size());
    for (const Segment &s : segments_) {
        f.mix(s.label.size());
        for (bio::Symbol sym : s.label.symbols())
            f.mix(sym);
    }
    f.mix(links_);
    for (SegmentId id = 0; id < segments_.size(); ++id)
        for (SegmentId to : outAdjacency[id]) {
            f.mix(id);
            f.mix(to);
        }
    // FNV-1a never yields 0 on these inputs in practice, but stay
    // correct if it does: fold to a nonzero sentinel-safe value.
    const uint64_t value = f.h == 0 ? 1 : f.h;
    cachedFingerprint.store(value, std::memory_order_relaxed);
    return value;
}

bool
sameTopology(const VariationGraph &lhs, const VariationGraph &rhs)
{
    if (!(lhs.alphabet() == rhs.alphabet()) ||
        lhs.segmentCount() != rhs.segmentCount() ||
        lhs.linkCount() != rhs.linkCount())
        return false;
    for (SegmentId id = 0; id < lhs.segmentCount(); ++id) {
        if (!(lhs.segment(id).label == rhs.segment(id).label))
            return false;
        if (lhs.outLinks(id) != rhs.outLinks(id))
            return false;
    }
    return true;
}

} // namespace racelogic::pangraph
