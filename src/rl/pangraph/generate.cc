#include "rl/pangraph/generate.h"

#include <string>

#include "rl/util/logging.h"

namespace racelogic::pangraph {

namespace {

bio::Sequence
randomLabel(util::Rng &rng, const bio::Alphabet &alphabet, size_t lo,
            size_t hi)
{
    return bio::Sequence::random(
        rng, alphabet,
        static_cast<size_t>(rng.uniformInt(static_cast<int64_t>(lo),
                                           static_cast<int64_t>(hi))));
}

} // namespace

VariationGraph
randomVariationGraph(util::Rng &rng, const bio::Alphabet &alphabet,
                     const VariationGraphParams &params)
{
    rl_assert(params.backboneSegments >= 1,
              "need at least one backbone segment");
    rl_assert(params.minLabel >= 1 && params.minLabel <= params.maxLabel,
              "label length range must satisfy 1 <= min <= max");

    VariationGraph graph(alphabet);
    size_t named = 0;
    auto name = [&] { return "s" + std::to_string(++named); };

    std::vector<SegmentId> backbone;
    backbone.reserve(params.backboneSegments);
    for (size_t i = 0; i < params.backboneSegments; ++i)
        backbone.push_back(graph.addSegment(
            name(), randomLabel(rng, alphabet, params.minLabel,
                                params.maxLabel)));

    for (size_t i = 0; i + 1 < backbone.size(); ++i) {
        const SegmentId from = backbone[i];
        const SegmentId to = backbone[i + 1];
        if (rng.bernoulli(params.snpDensity)) {
            // SNP bubble: two distinct single-base branches.
            bio::Symbol ref = static_cast<bio::Symbol>(
                rng.index(alphabet.size()));
            bio::Symbol alt = static_cast<bio::Symbol>(
                (ref + 1 + rng.index(alphabet.size() - 1)) %
                alphabet.size());
            SegmentId a = graph.addSegment(
                name(),
                bio::Sequence(alphabet, std::vector<bio::Symbol>{ref}));
            SegmentId b = graph.addSegment(
                name(),
                bio::Sequence(alphabet, std::vector<bio::Symbol>{alt}));
            graph.addLink(from, a);
            graph.addLink(from, b);
            graph.addLink(a, to);
            graph.addLink(b, to);
        } else if (rng.bernoulli(params.insertDensity)) {
            // Insertion branch: the extra segment is optional.
            SegmentId ins = graph.addSegment(
                name(), randomLabel(rng, alphabet, params.minLabel,
                                    params.maxLabel));
            graph.addLink(from, ins);
            graph.addLink(ins, to);
            graph.addLink(from, to);
        } else {
            graph.addLink(from, to);
        }
        // Deletion edge: skip the next backbone segment entirely.
        if (i + 2 < backbone.size() &&
            rng.bernoulli(params.deleteDensity))
            graph.addLink(from, backbone[i + 2]);
    }
    return graph;
}

bio::Sequence
sampleRead(util::Rng &rng, const VariationGraph &graph,
           const bio::MutationModel &noise)
{
    graph.validate();
    std::vector<SegmentId> sources = graph.sources();
    SegmentId at = sources[rng.index(sources.size())];
    std::vector<bio::Symbol> spelled;
    while (true) {
        for (bio::Symbol s : graph.segment(at).label.symbols())
            spelled.push_back(s);
        const std::vector<SegmentId> &out = graph.outLinks(at);
        if (out.empty())
            break;
        at = out[rng.index(out.size())];
    }
    return bio::mutate(
        rng, bio::Sequence(graph.alphabet(), std::move(spelled)),
        noise);
}

} // namespace racelogic::pangraph
