/**
 * @file
 * Structural macro builders.
 *
 * The paper's cells are described as compositions of a few recurring
 * structures: DFF shift chains for small fixed weights, binary
 * saturating up-counters with per-weight taps for large dynamic
 * ranges (Fig. 8), set-on-arrival latches that turn tap pulses into
 * held levels, XNOR match comparators (Eq. 2), and weight-select
 * multiplexers driven by the encoded alphabet.  These helpers build
 * each structure gate-by-gate so the resulting netlists carry real
 * gate inventories for the area/energy models.
 */

#ifndef RACELOGIC_CIRCUIT_BUILDERS_H
#define RACELOGIC_CIRCUIT_BUILDERS_H

#include <cstdint>
#include <vector>

#include "rl/circuit/netlist.h"

namespace racelogic::circuit {

/** A multi-bit value as nets, least-significant bit first. */
using Bus = std::vector<NetId>;

/**
 * `cycles` DFFs in series ("shift-chained DFFs ... for the cases
 * where the edge weight is a small number").  cycles == 0 returns
 * the input net unchanged (a wire).
 */
NetId buildDelayChain(Netlist &netlist, NetId in, size_t cycles);

/** Tap every stage of a delay chain: result[k] = in delayed k cycles. */
Bus buildTappedDelayChain(Netlist &netlist, NetId in, size_t cycles);

/** Combinational (bus == value): XNOR/NOT reduction into an AND. */
NetId buildEqualsConst(Netlist &netlist, const Bus &bus, uint64_t value);

/**
 * Binary saturating up-counter (Fig. 8): counts one per cycle while
 * `enable` is high, and freezes at all-ones instead of wrapping
 * ("making sure that the counter doesn't overflow and restart").
 *
 * @return The count bus (`bits` nets, LSB first).
 */
Bus buildSaturatingCounter(Netlist &netlist, NetId enable, unsigned bits);

/**
 * Set-on-arrival circuit (Fig. 8, dotted box): output rises the same
 * cycle `set` first pulses and stays high until the simulator-level
 * reset ("reset at the end of each computation").
 */
NetId buildSetOnArrival(Netlist &netlist, NetId set);

/**
 * Multiplexer tree over `select` (LSB first) choosing among
 * `data[index]`.  Missing data slots (index >= data.size()) read as
 * constant 0.
 */
NetId buildMuxTree(Netlist &netlist, const Bus &select,
                   const std::vector<NetId> &data);

/** Constant bus of `bits` nets encoding `value` (LSB first). */
Bus buildConstBus(Netlist &netlist, uint64_t value, unsigned bits);

/** Primary-input bus named `prefix`0..`prefix`(bits-1). */
Bus buildInputBus(Netlist &netlist, const std::string &prefix,
                  unsigned bits);

/**
 * Symbol match comparator (Eq. 2): AND of bitwise XNORs, high iff
 * the two symbol buses carry the same code.
 */
NetId buildMatchComparator(Netlist &netlist, const Bus &a, const Bus &b);

/** Drive a bus of primary inputs with an integer value. */
class SyncSim;

} // namespace racelogic::circuit

#endif // RACELOGIC_CIRCUIT_BUILDERS_H
