/**
 * @file
 * Structural Verilog export.
 *
 * The paper's claim is a *synthesizable* design ("a parameterized
 * and scalable Verilog code is synthesized using Synopsys Design
 * Vision").  This module closes the loop for downstream users: any
 * Netlist in this library -- the Fig. 4 race grid, the generalized
 * Fig. 8 fabric, a compiled DAG race -- can be emitted as plain
 * structural Verilog-2001 (primitive gates + always-block DFFs with
 * synchronous enable), ready for an ASIC or FPGA flow.
 */

#ifndef RACELOGIC_CIRCUIT_VERILOG_H
#define RACELOGIC_CIRCUIT_VERILOG_H

#include <iosfwd>
#include <string>
#include <vector>

#include "rl/circuit/netlist.h"

namespace racelogic::circuit {

/** A named output port to expose from the module. */
struct VerilogPort {
    std::string name; ///< legal Verilog identifier
    NetId net;        ///< driver inside the netlist
};

/**
 * Emit `netlist` as a structural Verilog module.
 *
 * Primary inputs become module inputs (their creation names must be
 * legal identifiers); `outputs` become module outputs; every DFF
 * becomes a posedge-clocked register with an optional enable and a
 * synchronous active-high reset to its init value.  The module gains
 * `clk` and `rst` ports.
 *
 * @param os       Destination stream.
 * @param netlist  Validated netlist.
 * @param module_name Verilog module name.
 * @param outputs  Nets to expose as outputs (at least one).
 */
void writeVerilog(std::ostream &os, const Netlist &netlist,
                  const std::string &module_name,
                  const std::vector<VerilogPort> &outputs);

} // namespace racelogic::circuit

#endif // RACELOGIC_CIRCUIT_VERILOG_H
