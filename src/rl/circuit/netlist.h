/**
 * @file
 * Gate-level netlist.
 *
 * Every gate drives exactly one net, so gate ids double as net ids.
 * The netlist is the common representation consumed by the
 * synchronous simulator (rl/circuit/sim_sync.h) and by the
 * technology models (rl/tech), which derive area and capacitance
 * from the per-type gate inventory -- the same role synthesis
 * reports played in the paper's methodology.
 */

#ifndef RACELOGIC_CIRCUIT_NETLIST_H
#define RACELOGIC_CIRCUIT_NETLIST_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "rl/circuit/gates.h"

namespace racelogic::circuit {

/** Id of a gate and of the net it drives. */
using NetId = uint32_t;

/** Sentinel for "no net". */
constexpr NetId kNoNet = ~NetId(0);

/** One gate instance. */
struct Gate {
    GateType type;
    /** Driver nets, ordered; semantics depend on type (see gates.h). */
    std::vector<NetId> inputs;
    /** Initial/reset output value (meaningful for Dff; 0 otherwise). */
    bool init = false;
};

/**
 * A flat, single-clock-domain netlist.
 *
 * Build with the typed helpers; validate() checks structural
 * well-formedness (arities, no combinational cycles).
 */
class Netlist
{
  public:
    Netlist() = default;

    /** @name Construction helpers
     * @{ */
    NetId constant(bool value);
    NetId input(const std::string &name);
    NetId bufGate(NetId a);
    NetId notGate(NetId a);
    NetId andGate(std::vector<NetId> inputs);
    NetId orGate(std::vector<NetId> inputs);
    NetId nandGate(std::vector<NetId> inputs);
    NetId norGate(std::vector<NetId> inputs);
    NetId xorGate(NetId a, NetId b);
    NetId xnorGate(NetId a, NetId b);
    /** sel ? in1 : in0. */
    NetId mux(NetId sel, NetId in0, NetId in1);
    /** D flip-flop; optional active-high clock-enable net. */
    NetId dff(NetId d, bool init = false, NetId enable = kNoNet);

    /**
     * D flip-flop whose D input is bound later with bindDff().
     *
     * Sequential feedback (counters, set-on-arrival latches) needs
     * the register to exist before the logic cone that feeds it;
     * deferred binding closes the loop without allowing
     * combinational cycles (the D pin is read only at clock edges).
     */
    NetId dffDeferred(bool init = false, NetId enable = kNoNet);

    /** Bind the D input of a dffDeferred() register. */
    void bindDff(NetId dff_id, NetId d);

    /**
     * Attach a clock-enable to an existing enable-less DFF.
     *
     * Like the D pin, the enable is sampled only at clock edges, so
     * late binding cannot create combinational cycles; it exists so
     * clock-gating networks (whose enables depend on downstream
     * logic) can be wired after the datapath is built.
     */
    void bindDffEnable(NetId dff_id, NetId enable);
    /** @} */

    size_t gateCount() const { return gates_.size(); }
    const Gate &gate(NetId id) const;
    const std::vector<Gate> &gates() const { return gates_; }

    /** Primary inputs in creation order. */
    const std::vector<NetId> &inputs() const { return inputIds; }

    /** Name of a primary input. */
    const std::string &inputName(NetId id) const;

    /** Look up a primary input by name (fatal if absent). */
    NetId findInput(const std::string &name) const;

    /** Number of gates of each type (area/energy model input). */
    std::array<size_t, kGateTypeCount> typeCounts() const;

    /** Count of sequential elements. */
    size_t dffCount() const;

    /**
     * Topological order of combinational evaluation: source gates and
     * DFF outputs are level 0.  fatal() on a combinational cycle.
     * Cached; invalidated by structural edits.
     */
    const std::vector<NetId> &combOrder() const;

    /** Check arities and acyclicity; fatal() on violations. */
    void validate() const;

  private:
    NetId add(GateType type, std::vector<NetId> inputs, bool init = false);
    void checkNet(NetId id) const;

    std::vector<Gate> gates_;
    std::vector<NetId> inputIds;
    std::vector<std::string> inputNames;
    mutable std::vector<NetId> cachedOrder;
    mutable bool orderValid = false;
};

} // namespace racelogic::circuit

#endif // RACELOGIC_CIRCUIT_NETLIST_H
