/**
 * @file
 * Cycle-accurate synchronous netlist simulator with activity capture.
 *
 * This is the library's stand-in for the paper's ModelSim +
 * PrimeTime methodology: the design is simulated cycle by cycle with
 * representative input vectors while per-net toggle counts and
 * per-DFF clock deliveries are recorded; the technology model then
 * converts activity x capacitance into energy (Eq. 3).
 *
 * Timing convention: "the value at cycle k" is the settled
 * combinational value after k clock edges.  A primary input raised
 * before the first edge is visible at cycle 0; a DFF's output at
 * cycle k equals its D input at cycle k-1.  This makes a race
 * signal's arrival cycle at a net exactly equal to the path score it
 * represents.
 */

#ifndef RACELOGIC_CIRCUIT_SIM_SYNC_H
#define RACELOGIC_CIRCUIT_SIM_SYNC_H

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "rl/circuit/netlist.h"

namespace racelogic::circuit {

/**
 * Switching-activity aggregates accumulated by the gate-level
 * simulators (SyncSim here; CompiledSim in rl/circuit/compiled_sim.h
 * fills the same struct, lane-summed).  perNet is pre-sized to the
 * netlist's gate count at simulator construction and kept sized by
 * clearActivity(), so the hot counting loops never grow it.
 */
struct Activity {
    /** Clock edges simulated. */
    uint64_t cycles = 0;

    /** Total 0<->1 transitions across all nets. */
    uint64_t netToggles = 0;

    /** Net toggles broken down by driving gate type. */
    std::array<uint64_t, kGateTypeCount> togglesByType{};

    /**
     * DFF-cycles in which the clock was delivered (enable true, or
     * un-gated).  This is the C_clk activity term of Eq. 3: an
     * un-gated design accrues dffCount() per cycle regardless of
     * data.
     */
    uint64_t clockedDffCycles = 0;

    /** Per-net toggle counts (index = NetId). */
    std::vector<uint64_t> perNet;
};

/** Cycle-accurate two-phase (settle, clock) netlist simulator. */
class SyncSim
{
  public:
    /** Bind to a netlist (validated on construction). */
    explicit SyncSim(const Netlist &netlist);

    /** Drive a primary input (takes effect at the current cycle). */
    void setInput(NetId input, bool value);

    /** Drive a primary input by name. */
    void setInput(const std::string &name, bool value);

    /** Settled value of any net at the current cycle. */
    bool value(NetId net);

    /** Current cycle (number of clock edges since reset). */
    uint64_t cycle() const { return currentCycle; }

    /** Advance one clock edge (settle, capture DFFs, count activity). */
    void tick();

    /** Advance n clock edges. */
    void tickMany(uint64_t n);

    /**
     * Run until `net` settles to `expected`, at most `max_cycles`
     * edges past the current cycle.
     *
     * @return The cycle index at which the condition first held, or
     *         nullopt if it never did within the budget.
     */
    std::optional<uint64_t> runUntil(NetId net, bool expected,
                                     uint64_t max_cycles);

    /**
     * Restore all DFFs to their init values and drive all primary
     * inputs low; cycle returns to 0.  Activity is preserved so that
     * energy can accumulate across computations; see clearActivity().
     */
    void reset();

    /** Zero the activity aggregates. */
    void clearActivity();

    /** Accumulated switching activity. */
    const Activity &activity() const { return stats; }

  private:
    void settle();

    const Netlist &netlist;
    std::vector<uint8_t> values;   ///< settled net values
    std::vector<uint8_t> state;    ///< DFF outputs (post last edge)
    std::vector<NetId> dffs;       ///< ids of sequential gates
    bool dirty = true;             ///< values[] out of date
    bool counting = true;          ///< record activity during settle
    uint64_t currentCycle = 0;
    Activity stats;
};

} // namespace racelogic::circuit

#endif // RACELOGIC_CIRCUIT_SIM_SYNC_H
