#include "rl/circuit/builders.h"

#include "rl/util/bitops.h"
#include "rl/util/logging.h"
#include "rl/util/strings.h"

namespace racelogic::circuit {

NetId
buildDelayChain(Netlist &netlist, NetId in, size_t cycles)
{
    NetId net = in;
    for (size_t i = 0; i < cycles; ++i)
        net = netlist.dff(net);
    return net;
}

Bus
buildTappedDelayChain(Netlist &netlist, NetId in, size_t cycles)
{
    Bus taps;
    taps.reserve(cycles + 1);
    NetId net = in;
    taps.push_back(net);
    for (size_t i = 0; i < cycles; ++i) {
        net = netlist.dff(net);
        taps.push_back(net);
    }
    return taps;
}

NetId
buildEqualsConst(Netlist &netlist, const Bus &bus, uint64_t value)
{
    rl_assert(!bus.empty(), "empty bus");
    rl_assert(bus.size() >= 64 || value < (uint64_t(1) << bus.size()),
              "constant ", value, " does not fit in ", bus.size(),
              " bits");
    std::vector<NetId> terms;
    terms.reserve(bus.size());
    for (size_t b = 0; b < bus.size(); ++b) {
        bool bit = (value >> b) & 1;
        terms.push_back(bit ? bus[b] : netlist.notGate(bus[b]));
    }
    if (terms.size() == 1)
        return terms[0];
    return netlist.andGate(std::move(terms));
}

Bus
buildSaturatingCounter(Netlist &netlist, NetId enable, unsigned bits)
{
    rl_assert(bits >= 1 && bits <= 62, "counter width out of range");

    // State registers first (deferred D), so the increment cone can
    // reference their outputs.
    Bus count(bits);
    for (unsigned b = 0; b < bits; ++b)
        count[b] = netlist.dffDeferred(/*init=*/false);

    // Saturation detect: all ones -> freeze.
    NetId at_max = bits == 1 ? count[0]
                             : netlist.andGate(Bus(count));

    // Count while enabled and not saturated; the gated enable models
    // exactly the "enables the saturating counter" behaviour of
    // Fig. 8 and doubles as clock gating on the counter's DFFs.
    NetId advance = netlist.andGate({enable, netlist.notGate(at_max)});

    // Ripple incrementer: next = count + 1.
    NetId carry = kNoNet;
    for (unsigned b = 0; b < bits; ++b) {
        NetId next_bit;
        if (b == 0) {
            next_bit = netlist.notGate(count[0]);
            carry = count[0];
        } else {
            next_bit = netlist.xorGate(count[b], carry);
            carry = netlist.andGate({count[b], carry});
        }
        // Hold when not advancing.
        NetId d = netlist.mux(advance, count[b], next_bit);
        netlist.bindDff(count[b], d);
    }
    return count;
}

NetId
buildSetOnArrival(Netlist &netlist, NetId set)
{
    // q(t+1) = q(t) | set(t); output = q | set fires the same cycle
    // the tap pulses and holds thereafter.
    NetId q = netlist.dffDeferred(/*init=*/false);
    NetId out = netlist.orGate({q, set});
    netlist.bindDff(q, out);
    return out;
}

NetId
buildMuxTree(Netlist &netlist, const Bus &select,
             const std::vector<NetId> &data)
{
    rl_assert(!select.empty(), "empty select bus");
    size_t slots = size_t(1) << select.size();
    rl_assert(data.size() <= slots, "too many data inputs for select");

    NetId zero = kNoNet;
    auto pad = [&](size_t index) -> NetId {
        if (index < data.size())
            return data[index];
        if (zero == kNoNet)
            zero = netlist.constant(false);
        return zero;
    };

    std::vector<NetId> layer(slots);
    for (size_t i = 0; i < slots; ++i)
        layer[i] = pad(i);
    for (size_t level = 0; level < select.size(); ++level) {
        std::vector<NetId> next(layer.size() / 2);
        for (size_t i = 0; i < next.size(); ++i)
            next[i] = netlist.mux(select[level], layer[2 * i],
                                  layer[2 * i + 1]);
        layer = std::move(next);
    }
    return layer[0];
}

Bus
buildConstBus(Netlist &netlist, uint64_t value, unsigned bits)
{
    Bus bus(bits);
    for (unsigned b = 0; b < bits; ++b)
        bus[b] = netlist.constant((value >> b) & 1);
    return bus;
}

Bus
buildInputBus(Netlist &netlist, const std::string &prefix, unsigned bits)
{
    Bus bus(bits);
    for (unsigned b = 0; b < bits; ++b)
        bus[b] = netlist.input(util::format("%s%u", prefix.c_str(), b));
    return bus;
}

NetId
buildMatchComparator(Netlist &netlist, const Bus &a, const Bus &b)
{
    rl_assert(a.size() == b.size() && !a.empty(),
              "mismatched symbol buses");
    std::vector<NetId> eq;
    eq.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        eq.push_back(netlist.xnorGate(a[i], b[i]));
    if (eq.size() == 1)
        return eq[0];
    return netlist.andGate(std::move(eq));
}

} // namespace racelogic::circuit
