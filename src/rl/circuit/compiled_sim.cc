#include "rl/circuit/compiled_sim.h"

#include <algorithm>
#include <bit>

#include "rl/core/kernel_counters.h"
#include "rl/util/logging.h"

namespace racelogic::circuit {

namespace {

/** True for gates evaluated in the combinational settle. */
bool
isCombinational(GateType type)
{
    return !isSourceGate(type) && !isSequential(type);
}

} // namespace

CompiledNetlist::CompiledNetlist(const Netlist &netlist) : src(&netlist)
{
    netlist.validate();
    const size_t n = netlist.gateCount();
    types.resize(n);
    level.assign(n, 0);
    inOff.assign(n + 1, 0);

    size_t total_inputs = 0;
    for (NetId id = 0; id < n; ++id) {
        const Gate &g = netlist.gate(id);
        types[id] = static_cast<uint8_t>(g.type);
        total_inputs += g.inputs.size();
    }
    inIds.reserve(total_inputs);
    for (NetId id = 0; id < n; ++id) {
        inOff[id] = static_cast<uint32_t>(inIds.size());
        for (NetId in : netlist.gate(id).inputs)
            inIds.push_back(in);
    }
    inOff[n] = static_cast<uint32_t>(inIds.size());

    // Levelize along the (validated, acyclic) combinational order.
    for (NetId id : netlist.combOrder()) {
        const Gate &g = netlist.gate(id);
        if (!isCombinational(g.type))
            continue;
        uint32_t lvl = 1;
        for (NetId in : g.inputs)
            lvl = std::max(lvl, level[in] + 1);
        level[id] = lvl;
        levels = std::max(levels, static_cast<size_t>(lvl) + 1);
    }

    // CSR fanout: net -> combinational consumers.
    std::vector<uint32_t> counts(n, 0);
    for (NetId id = 0; id < n; ++id)
        if (isCombinational(netlist.gate(id).type))
            for (NetId in : netlist.gate(id).inputs)
                ++counts[in];
    fanOff.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i)
        fanOff[i + 1] = fanOff[i] + counts[i];
    fanIds.resize(fanOff[n]);
    std::vector<uint32_t> cursor(fanOff.begin(), fanOff.end() - 1);
    for (NetId id = 0; id < n; ++id)
        if (isCombinational(netlist.gate(id).type))
            for (NetId in : netlist.gate(id).inputs)
                fanIds[cursor[in]++] = id;

    // DFFs partitioned out, with net -> dff-consumer CSRs for the D
    // and enable taps (the event-driven capture worklist feeds).
    std::vector<uint32_t> d_counts(n, 0), en_counts(n, 0);
    for (NetId id = 0; id < n; ++id) {
        const Gate &g = netlist.gate(id);
        if (g.type != GateType::Dff)
            continue;
        dffIds.push_back(id);
        dffD.push_back(g.inputs[0]);
        uint32_t en = g.inputs.size() > 1 ? g.inputs[1] : kNoNet;
        dffEn.push_back(en);
        dffInit.push_back(g.init);
        ++d_counts[g.inputs[0]];
        if (en != kNoNet)
            ++en_counts[en];
    }
    dffDFanOff.assign(n + 1, 0);
    dffEnFanOff.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
        dffDFanOff[i + 1] = dffDFanOff[i] + d_counts[i];
        dffEnFanOff[i + 1] = dffEnFanOff[i] + en_counts[i];
    }
    dffDFanIdx.resize(dffDFanOff[n]);
    dffEnFanIdx.resize(dffEnFanOff[n]);
    std::vector<uint32_t> d_cur(dffDFanOff.begin(), dffDFanOff.end() - 1);
    std::vector<uint32_t> en_cur(dffEnFanOff.begin(),
                                 dffEnFanOff.end() - 1);
    for (uint32_t i = 0; i < dffIds.size(); ++i) {
        dffDFanIdx[d_cur[dffD[i]]++] = i;
        if (dffEn[i] != kNoNet)
            dffEnFanIdx[en_cur[dffEn[i]]++] = i;
    }
}

CompiledSim::CompiledSim(const CompiledNetlist &compiled, unsigned lanes)
    : code(&compiled), laneCount(lanes)
{
    rl_assert(lanes >= 1 && lanes <= 64,
              "CompiledSim packs 1..64 lanes per word (got ", lanes, ")");
    mask = lanes == 64 ? ~uint64_t(0) : (uint64_t(1) << lanes) - 1;

    const size_t n = code->netCount();
    values.assign(n, 0);
    queued.assign(n, 0);
    frontier.resize(code->levels);
    stats.perNet.assign(n, 0);

    const size_t dffs = code->dffCount();
    state.resize(dffs);
    dffQueued.assign(dffs, 0);
    for (size_t i = 0; i < dffs; ++i) {
        state[i] = code->dffInit[i] ? mask : 0;
        if (code->dffEn[i] == kNoNet)
            enabledLanes += laneCount; // un-gated: clocked every edge
    }

    // Initial silent settle: every combinational gate is evaluated
    // once (values start all-zero, which is not the fixed point --
    // inverting gates output 1s), constants and DFF outputs are
    // reflected, and enable-net commits establish enabledLanes.
    counting = false;
    for (NetId id = 0; id < n; ++id)
        if (static_cast<GateType>(code->types[id]) == GateType::Const1)
            commit(id, mask);
    for (size_t i = 0; i < dffs; ++i)
        commit(code->dffIds[i], state[i]);
    seedAllGates();
    settle();
    counting = true;
    markAllDffs();
}

CompiledSim::CompiledSim(std::unique_ptr<CompiledNetlist> compiled,
                         unsigned lanes)
    : CompiledSim(*compiled, lanes)
{
    owned = std::move(compiled);
}

CompiledSim::CompiledSim(const Netlist &netlist, unsigned lanes)
    : CompiledSim(std::make_unique<CompiledNetlist>(netlist), lanes)
{}

void
CompiledSim::seedAllGates()
{
    for (uint32_t id = 0; id < code->netCount(); ++id) {
        if (!isCombinational(static_cast<GateType>(code->types[id])))
            continue;
        if (!queued[id]) {
            queued[id] = 1;
            frontier[code->level[id]].push_back(id);
        }
    }
    dirty = true;
}

uint64_t
CompiledSim::evalGate(uint32_t gate) const
{
    const uint32_t begin = code->inOff[gate];
    const uint32_t end = code->inOff[gate + 1];
    const uint32_t *in = code->inIds.data();
    switch (static_cast<GateType>(code->types[gate])) {
      case GateType::Buf:
        return values[in[begin]];
      case GateType::Not:
        return ~values[in[begin]] & mask;
      case GateType::And: {
        uint64_t acc = mask;
        for (uint32_t e = begin; e < end; ++e)
            acc &= values[in[e]];
        return acc;
      }
      case GateType::Or: {
        uint64_t acc = 0;
        for (uint32_t e = begin; e < end; ++e)
            acc |= values[in[e]];
        return acc;
      }
      case GateType::Nand: {
        uint64_t acc = mask;
        for (uint32_t e = begin; e < end; ++e)
            acc &= values[in[e]];
        return ~acc & mask;
      }
      case GateType::Nor: {
        uint64_t acc = 0;
        for (uint32_t e = begin; e < end; ++e)
            acc |= values[in[e]];
        return ~acc & mask;
      }
      case GateType::Xor:
        return values[in[begin]] ^ values[in[begin + 1]];
      case GateType::Xnor:
        return ~(values[in[begin]] ^ values[in[begin + 1]]) & mask;
      case GateType::Mux: {
        uint64_t sel = values[in[begin]];
        return (sel & values[in[begin + 2]]) |
               (~sel & values[in[begin + 1]]);
      }
      default:
        rl_panic("non-combinational gate on the settle frontier");
    }
    return 0;
}

void
CompiledSim::markDff(uint32_t dff_index)
{
    if (!dffQueued[dff_index]) {
        dffQueued[dff_index] = 1;
        markedDffs.push_back(dff_index);
    }
}

void
CompiledSim::markAllDffs()
{
    for (uint32_t i = 0; i < code->dffCount(); ++i)
        markDff(i);
}

void
CompiledSim::commit(uint32_t net, uint64_t word)
{
    const uint64_t old = values[net];
    const uint64_t diff = old ^ word;
    if (!diff)
        return;
    if (counting) {
        const auto toggles =
            static_cast<uint64_t>(std::popcount(diff));
        stats.netToggles += toggles;
        stats.togglesByType[code->types[net]] += toggles;
        rl_dassert(net < stats.perNet.size(),
                   "perNet not pre-sized for net ", net);
        stats.perNet[net] += toggles;
    }
    values[net] = word;

    for (uint32_t e = code->fanOff[net]; e < code->fanOff[net + 1];
         ++e) {
        const uint32_t consumer = code->fanIds[e];
        if (!queued[consumer]) {
            queued[consumer] = 1;
            frontier[code->level[consumer]].push_back(consumer);
            dirty = true;
        }
    }
    for (uint32_t e = code->dffDFanOff[net];
         e < code->dffDFanOff[net + 1]; ++e)
        markDff(code->dffDFanIdx[e]);
    for (uint32_t e = code->dffEnFanOff[net];
         e < code->dffEnFanOff[net + 1]; ++e) {
        enabledLanes += static_cast<uint64_t>(std::popcount(word)) -
                        static_cast<uint64_t>(std::popcount(old));
        markDff(code->dffEnFanIdx[e]);
    }
}

void
CompiledSim::settle()
{
    // Levels ascend and a gate's consumers sit strictly higher, so
    // each frontier gate is evaluated exactly once per settle.
    for (size_t lvl = 1; lvl < frontier.size(); ++lvl) {
        std::vector<uint32_t> &queue = frontier[lvl];
        for (size_t i = 0; i < queue.size(); ++i) {
            const uint32_t gate = queue[i];
            queued[gate] = 0;
            commit(gate, evalGate(gate));
        }
        queue.clear();
    }
    dirty = false;
}

void
CompiledSim::setInput(NetId input, bool value_in)
{
    setInputWord(input, value_in ? mask : 0);
}

void
CompiledSim::setInputLane(NetId input, unsigned lane, bool value_in)
{
    rl_assert(lane < laneCount, "lane ", lane, " outside the ",
              laneCount, " active lanes");
    const uint64_t bit = uint64_t(1) << lane;
    setInputWord(input,
                 value_in ? values[input] | bit : values[input] & ~bit);
}

void
CompiledSim::setInputWord(NetId input, uint64_t word)
{
    rl_assert(static_cast<GateType>(code->types[input]) ==
                  GateType::Input,
              "net ", input, " is not a primary input");
    commit(input, word & mask);
}

bool
CompiledSim::value(NetId net)
{
    return word(net) & 1;
}

uint64_t
CompiledSim::word(NetId net)
{
    rl_assert(net < values.size(), "net out of range");
    if (dirty)
        settle();
    return values[net];
}

void
CompiledSim::tick()
{
    if (dirty)
        settle();

    // Clock edge.  Every enabled DFF lane is charged (Eq. 3's C_clk
    // term) in O(1) via the incrementally maintained total; only
    // DFFs whose D or enable moved since their last capture do work.
    stats.clockedDffCycles += enabledLanes;

    // Ping-pong with the spare buffer: marks made during the capture
    // (phase-2 commits re-mark downstream DFFs every cycle while the
    // wavefront moves) land in the other vector, and both keep their
    // capacity -- steady state allocates nothing.
    std::swap(captureList, markedDffs);
    // Phase 1: capture from the settled pre-edge values only.
    for (uint32_t idx : captureList) {
        dffQueued[idx] = 0;
        const uint32_t en = code->dffEn[idx];
        const uint64_t e = en == kNoNet ? mask : values[en];
        state[idx] =
            (state[idx] & ~e) | (values[code->dffD[idx]] & e);
    }
    // Phase 2: reflect the new state into the value view.
    for (uint32_t idx : captureList)
        commit(code->dffIds[idx], state[idx]);
    captureList.clear();

    ++currentCycle;
    stats.cycles += laneCount;
    if (dirty)
        settle();
}

void
CompiledSim::tickMany(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

std::optional<uint64_t>
CompiledSim::runUntil(NetId net, bool expected, uint64_t max_cycles)
{
    if (value(net) == expected)
        return currentCycle;
    for (uint64_t i = 0; i < max_cycles; ++i) {
        tick();
        if (value(net) == expected)
            return currentCycle;
    }
    return std::nullopt;
}

uint64_t
CompiledSim::raceLanes(NetId net, uint64_t max_cycles,
                       std::array<uint64_t, 64> &arrival,
                       core::KernelCounters *counters)
{
    const uint64_t togglesBefore = stats.netToggles;
    const uint64_t cycleBefore = currentCycle;
    arrival.fill(kLaneNever);
    uint64_t fired = word(net) & mask;
    for (uint64_t bits = fired; bits;) {
        const int lane = std::countr_zero(bits);
        arrival[lane] = currentCycle;
        bits &= bits - 1;
    }
    for (uint64_t i = 0; i < max_cycles && fired != mask; ++i) {
        tick();
        uint64_t newly = (word(net) & mask) & ~fired;
        fired |= newly;
        while (newly) {
            const int lane = std::countr_zero(newly);
            arrival[lane] = currentCycle;
            newly &= newly - 1;
        }
    }
    // Profiling export, derived from the Activity aggregates the run
    // tracks anyway: a null `counters` costs nothing and a non-null
    // one cannot change the simulated values.
    if (counters) {
        counters->events += stats.netToggles - togglesBefore;
        counters->bucketsDrained += currentCycle - cycleBefore;
        counters->scratchHighWater =
            std::max(counters->scratchHighWater,
                     static_cast<uint64_t>(code->netCount()));
        counters->lanesOccupied +=
            static_cast<uint64_t>(std::popcount(fired));
        if (fired != mask)
            ++counters->horizonAborts;
    }
    return fired;
}

void
CompiledSim::reset()
{
    // Like SyncSim::reset: silent (reset energy is amortized outside
    // the measured loop), activity preserved.
    counting = false;
    const Netlist &netlist = code->source();
    for (NetId in : netlist.inputs())
        commit(in, 0);
    for (size_t i = 0; i < code->dffCount(); ++i) {
        state[i] = code->dffInit[i] ? mask : 0;
        commit(code->dffIds[i], state[i]);
    }
    if (dirty)
        settle();
    counting = true;
    currentCycle = 0;
    markAllDffs();
}

void
CompiledSim::clearActivity()
{
    stats = Activity{};
    stats.perNet.assign(values.size(), 0);
}

} // namespace racelogic::circuit
