/**
 * @file
 * Compiled gate-level simulation kernel: levelized, event-driven,
 * 64-lane bit-parallel.
 *
 * SyncSim (rl/circuit/sim_sync.h) interprets the netlist: every
 * settle walks every gate through virtual-ish dispatch on a
 * std::vector<Gate> of heap-allocated input lists -- O(gates x
 * cycles) no matter how little actually switches.  Race-logic
 * fabrics are the worst possible customer for that loop: a thin
 * wavefront of activity crosses an otherwise frozen grid, so almost
 * every gate evaluation recomputes a value that cannot have changed.
 *
 * This kernel splits simulation into a one-time *compile* and a
 * cheap *run*:
 *
 *  - CompiledNetlist levelizes the combinational logic (level =
 *    1 + max input level; sources and DFF outputs are level 0) and
 *    lowers the netlist to struct-of-arrays form: flat gate-type and
 *    input-id arrays (CSR), a CSR fanout map from each net to its
 *    combinational consumers, and the DFFs partitioned out with
 *    their D / enable taps resolved.
 *
 *  - CompiledSim settles event-driven: only gates on the dirty
 *    frontier (fanout of nets whose value actually changed) are
 *    re-evaluated, in level order, so each settle costs
 *    O(frontier), not O(gates).  DFF clock accounting is incremental
 *    too: the number of currently-enabled DFF lanes is maintained as
 *    enable nets change, so a tick charges clockedDffCycles in O(1)
 *    plus O(DFFs whose inputs moved).
 *
 *  - Every net holds a uint64_t word: 64 independent simulations
 *    (batch comparisons, Monte-Carlo activity vectors) advance per
 *    gate evaluation.  Lane 0 reproduces SyncSim exactly; activity
 *    is captured per-word via popcount on XOR of old/new values, so
 *    the Activity aggregates of an L-lane run equal the *sum* of L
 *    independent SyncSim runs ticked in lock-step (Activity::cycles
 *    advances by L per tick) -- the Eq. 3 inputs for the whole
 *    packed batch.
 *
 * SyncSim remains the tested reference and the debug/inspection
 * path; tests/circuit_compiled_sim_test.cc checks the two
 * bit-identical (values per cycle, arrivals, every Activity field)
 * on random netlists and on the race fabrics, 1-lane and 64-lane.
 */

#ifndef RACELOGIC_CIRCUIT_COMPILED_SIM_H
#define RACELOGIC_CIRCUIT_COMPILED_SIM_H

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rl/circuit/netlist.h"
#include "rl/circuit/sim_sync.h"

namespace racelogic::core {
struct KernelCounters; // rl/core/kernel_counters.h
}

namespace racelogic::circuit {

/**
 * The one-time compile pass: a Netlist lowered to flat arrays.
 *
 * Immutable after construction and referenced (not copied) by any
 * number of CompiledSim instances, so one synthesized fabric can be
 * raced concurrently from many threads, each with its own sim state
 * -- compile once, simulate many.  Keeps a pointer to the source
 * netlist, which must outlive it.
 */
class CompiledNetlist
{
  public:
    explicit CompiledNetlist(const Netlist &netlist);

    const Netlist &source() const { return *src; }
    size_t netCount() const { return types.size(); }
    size_t dffCount() const { return dffIds.size(); }

    /** Combinational depth (levels; level 0 = sources/DFF outputs). */
    size_t levelCount() const { return levels; }

  private:
    friend class CompiledSim;

    const Netlist *src;

    /** @name Per-net arrays (index = NetId) @{ */
    std::vector<uint8_t> types;    ///< GateType
    std::vector<uint32_t> level;   ///< comb gates >= 1; others 0
    std::vector<uint32_t> inOff;   ///< CSR offsets into inIds
    std::vector<uint32_t> inIds;   ///< flattened gate input nets
    std::vector<uint32_t> fanOff;  ///< CSR offsets into fanIds
    std::vector<uint32_t> fanIds;  ///< combinational consumer gates
    /** @} */

    /** @name DFFs partitioned out (index = dense dff index) @{ */
    std::vector<uint32_t> dffIds;  ///< net id of each DFF
    std::vector<uint32_t> dffD;    ///< D input net
    std::vector<uint32_t> dffEn;   ///< enable net or kNoNet
    std::vector<uint8_t> dffInit;  ///< reset value
    std::vector<uint32_t> dffDFanOff, dffDFanIdx; ///< net -> dffs via D
    std::vector<uint32_t> dffEnFanOff, dffEnFanIdx; ///< net -> dffs via en
    /** @} */

    size_t levels = 1;
};

/** Per-lane arrival sentinel for CompiledSim::raceLanes. */
constexpr uint64_t kLaneNever = ~uint64_t(0);

/**
 * Event-driven bit-parallel simulator over a CompiledNetlist.
 *
 * API-compatible with SyncSim for the 1-lane case (setInput / value /
 * tick / runUntil / reset / clearActivity / activity), plus the
 * lane-parallel surface: construct with `lanes` in [1, 64], drive
 * per-lane inputs with setInputLane()/setInputWord(), and race all
 * lanes to a sink with raceLanes().
 */
class CompiledSim
{
  public:
    /** Share a prebuilt compile (the fabric-reuse hot path). */
    explicit CompiledSim(const CompiledNetlist &compiled,
                         unsigned lanes = 1);

    /** Convenience: compile privately and simulate. */
    explicit CompiledSim(const Netlist &netlist, unsigned lanes = 1);

    unsigned lanes() const { return laneCount; }

    /** Low `lanes()` bits set; all stored words stay inside it. */
    uint64_t laneMask() const { return mask; }

    /** Drive a primary input across every active lane. */
    void setInput(NetId input, bool value);

    /** Drive one lane of a primary input. */
    void setInputLane(NetId input, unsigned lane, bool value);

    /** Drive a primary input with an explicit lane word. */
    void setInputWord(NetId input, uint64_t word);

    /** Settled lane-0 value of any net at the current cycle. */
    bool value(NetId net);

    /** Settled lane word of any net at the current cycle. */
    uint64_t word(NetId net);

    /** Current cycle (number of clock edges since reset). */
    uint64_t cycle() const { return currentCycle; }

    /** Advance one clock edge (settle, capture DFFs, count). */
    void tick();

    /** Advance n clock edges. */
    void tickMany(uint64_t n);

    /**
     * Lane-0 twin of SyncSim::runUntil: run until `net` settles to
     * `expected` in lane 0, at most `max_cycles` edges past now.
     */
    std::optional<uint64_t> runUntil(NetId net, bool expected,
                                     uint64_t max_cycles);

    /**
     * Race every active lane to `net` going high: tick until all
     * lanes have fired or `max_cycles` edges pass, recording each
     * lane's first-high cycle in `arrival` (kLaneNever where the
     * lane never fired).
     *
     * `counters` (nullptr = off) accumulates this race's profiling
     * counts -- net toggles as events, clock edges as buckets, net
     * words as the scratch footprint, fired lanes, and one horizon
     * abort when any lane never fired.  It is derived from the
     * Activity aggregates after the race, so the simulated values
     * are bit-identical either way.
     *
     * @return Mask of lanes that fired.
     */
    uint64_t raceLanes(NetId net, uint64_t max_cycles,
                       std::array<uint64_t, 64> &arrival,
                       core::KernelCounters *counters = nullptr);

    /** Restore DFF init values, drive inputs low, cycle back to 0.
     *  Activity is preserved (see clearActivity), as in SyncSim. */
    void reset();

    /** Zero the activity aggregates (perNet stays pre-sized). */
    void clearActivity();

    /**
     * Accumulated switching activity, lane-summed: equals the sum of
     * the per-lane activities of `lanes()` lock-step SyncSim runs.
     */
    const Activity &activity() const { return stats; }

  private:
    /** Delegation target for the owning-Netlist constructor. */
    CompiledSim(std::unique_ptr<CompiledNetlist> compiled,
                unsigned lanes);

    void seedAllGates(); ///< queue every comb gate (initial settle)
    void settle();
    void commit(uint32_t net, uint64_t word); ///< value change + fanout
    uint64_t evalGate(uint32_t gate) const;
    void markDff(uint32_t dff_index);
    void markAllDffs();

    const CompiledNetlist *code;
    std::unique_ptr<CompiledNetlist> owned; ///< for the Netlist ctor

    unsigned laneCount;
    uint64_t mask;

    std::vector<uint64_t> values; ///< settled words (index = NetId)
    std::vector<uint64_t> state;  ///< DFF words (index = dff index)

    /** @name Dirty frontier @{ */
    std::vector<std::vector<uint32_t>> frontier; ///< per level
    std::vector<uint8_t> queued;                 ///< per net
    std::vector<uint32_t> markedDffs;            ///< capture worklist
    std::vector<uint32_t> captureList;           ///< tick() ping-pong
    std::vector<uint8_t> dffQueued;              ///< per dff index
    bool dirty = true;
    /** @} */

    /** Sum over DFFs of popcount(current enable word), maintained
     *  incrementally; a tick charges it to clockedDffCycles in O(1). */
    uint64_t enabledLanes = 0;

    bool counting = true;
    uint64_t currentCycle = 0;
    Activity stats;
};

} // namespace racelogic::circuit

#endif // RACELOGIC_CIRCUIT_COMPILED_SIM_H
