#include "rl/circuit/netlist.h"

#include <algorithm>

#include "rl/util/logging.h"

namespace racelogic::circuit {

NetId
Netlist::add(GateType type, std::vector<NetId> inputs, bool init)
{
    for (NetId in : inputs)
        if (in != kNoNet)
            checkNet(in);
    NetId id = static_cast<NetId>(gates_.size());
    gates_.push_back(Gate{type, std::move(inputs), init});
    orderValid = false;
    return id;
}

NetId
Netlist::constant(bool value)
{
    return add(value ? GateType::Const1 : GateType::Const0, {});
}

NetId
Netlist::input(const std::string &name)
{
    NetId id = add(GateType::Input, {});
    inputIds.push_back(id);
    inputNames.push_back(name);
    return id;
}

NetId
Netlist::bufGate(NetId a)
{
    return add(GateType::Buf, {a});
}

NetId
Netlist::notGate(NetId a)
{
    return add(GateType::Not, {a});
}

NetId
Netlist::andGate(std::vector<NetId> inputs)
{
    rl_assert(inputs.size() >= 2, "AND needs >= 2 inputs");
    return add(GateType::And, std::move(inputs));
}

NetId
Netlist::orGate(std::vector<NetId> inputs)
{
    rl_assert(inputs.size() >= 2, "OR needs >= 2 inputs");
    return add(GateType::Or, std::move(inputs));
}

NetId
Netlist::nandGate(std::vector<NetId> inputs)
{
    rl_assert(inputs.size() >= 2, "NAND needs >= 2 inputs");
    return add(GateType::Nand, std::move(inputs));
}

NetId
Netlist::norGate(std::vector<NetId> inputs)
{
    rl_assert(inputs.size() >= 2, "NOR needs >= 2 inputs");
    return add(GateType::Nor, std::move(inputs));
}

NetId
Netlist::xorGate(NetId a, NetId b)
{
    return add(GateType::Xor, {a, b});
}

NetId
Netlist::xnorGate(NetId a, NetId b)
{
    return add(GateType::Xnor, {a, b});
}

NetId
Netlist::mux(NetId sel, NetId in0, NetId in1)
{
    return add(GateType::Mux, {sel, in0, in1});
}

NetId
Netlist::dff(NetId d, bool init, NetId enable)
{
    std::vector<NetId> ins{d};
    if (enable != kNoNet)
        ins.push_back(enable);
    return add(GateType::Dff, std::move(ins), init);
}

NetId
Netlist::dffDeferred(bool init, NetId enable)
{
    NetId id = static_cast<NetId>(gates_.size());
    std::vector<NetId> ins{kNoNet};
    if (enable != kNoNet) {
        checkNet(enable);
        ins.push_back(enable);
    }
    gates_.push_back(Gate{GateType::Dff, std::move(ins), init});
    orderValid = false;
    return id;
}

void
Netlist::bindDff(NetId dff_id, NetId d)
{
    checkNet(dff_id);
    checkNet(d);
    Gate &g = gates_[dff_id];
    rl_assert(g.type == GateType::Dff, "bindDff on non-DFF net ", dff_id);
    rl_assert(g.inputs[0] == kNoNet, "DFF ", dff_id, " already bound");
    g.inputs[0] = d;
}

void
Netlist::bindDffEnable(NetId dff_id, NetId enable)
{
    checkNet(dff_id);
    checkNet(enable);
    Gate &g = gates_[dff_id];
    rl_assert(g.type == GateType::Dff,
              "bindDffEnable on non-DFF net ", dff_id);
    rl_assert(g.inputs.size() == 1,
              "DFF ", dff_id, " already has an enable");
    g.inputs.push_back(enable);
    orderValid = false;
}

const Gate &
Netlist::gate(NetId id) const
{
    checkNet(id);
    return gates_[id];
}

const std::string &
Netlist::inputName(NetId id) const
{
    for (size_t i = 0; i < inputIds.size(); ++i)
        if (inputIds[i] == id)
            return inputNames[i];
    rl_fatal("net ", id, " is not a primary input");
}

NetId
Netlist::findInput(const std::string &name) const
{
    for (size_t i = 0; i < inputIds.size(); ++i)
        if (inputNames[i] == name)
            return inputIds[i];
    rl_fatal("no primary input named '", name, "'");
}

std::array<size_t, kGateTypeCount>
Netlist::typeCounts() const
{
    std::array<size_t, kGateTypeCount> counts{};
    for (const Gate &g : gates_)
        ++counts[static_cast<size_t>(g.type)];
    return counts;
}

size_t
Netlist::dffCount() const
{
    return typeCounts()[static_cast<size_t>(GateType::Dff)];
}

const std::vector<NetId> &
Netlist::combOrder() const
{
    if (orderValid)
        return cachedOrder;

    // Kahn's algorithm over combinational dependencies only: DFF
    // outputs behave as sources (their value is last cycle's state).
    const size_t n = gates_.size();
    std::vector<uint32_t> remaining(n, 0);
    std::vector<std::vector<NetId>> consumers(n);
    for (NetId id = 0; id < n; ++id) {
        const Gate &g = gates_[id];
        if (isSequential(g.type) || isSourceGate(g.type))
            continue;
        for (NetId in : g.inputs) {
            consumers[in].push_back(id);
            ++remaining[id];
        }
    }

    std::vector<NetId> order;
    order.reserve(n);
    std::vector<NetId> ready;
    for (NetId id = 0; id < n; ++id)
        if (remaining[id] == 0)
            ready.push_back(id);
    // `ready` starts sorted; processing back-to-front is deterministic.
    size_t head = 0;
    std::vector<NetId> queue = std::move(ready);
    while (head < queue.size()) {
        NetId id = queue[head++];
        order.push_back(id);
        for (NetId next : consumers[id])
            if (--remaining[next] == 0)
                queue.push_back(next);
    }
    if (order.size() != n)
        rl_fatal("netlist contains a combinational cycle (",
                 n - order.size(), " gates unresolved)");
    cachedOrder = std::move(order);
    orderValid = true;
    return cachedOrder;
}

void
Netlist::validate() const
{
    for (NetId id = 0; id < gates_.size(); ++id) {
        const Gate &g = gates_[id];
        size_t arity = g.inputs.size();
        switch (g.type) {
          case GateType::Const0:
          case GateType::Const1:
          case GateType::Input:
            rl_assert(arity == 0, "source gate ", id, " has inputs");
            break;
          case GateType::Buf:
          case GateType::Not:
            rl_assert(arity == 1, "gate ", id, " needs 1 input");
            break;
          case GateType::Xor:
          case GateType::Xnor:
            rl_assert(arity == 2, "gate ", id, " needs 2 inputs");
            break;
          case GateType::Mux:
            rl_assert(arity == 3, "mux ", id, " needs 3 inputs");
            break;
          case GateType::And:
          case GateType::Or:
          case GateType::Nand:
          case GateType::Nor:
            rl_assert(arity >= 2, "gate ", id, " needs >= 2 inputs");
            break;
          case GateType::Dff:
            rl_assert(arity == 1 || arity == 2,
                      "dff ", id, " needs d [, enable]");
            rl_assert(g.inputs[0] != kNoNet,
                      "dff ", id, " has an unbound D input");
            break;
        }
        for (NetId in : g.inputs)
            checkNet(in);
    }
    combOrder(); // fatal on combinational cycles
}

void
Netlist::checkNet(NetId id) const
{
    rl_assert(id < gates_.size(), "net ", id, " out of range (",
              gates_.size(), " gates)");
}

} // namespace racelogic::circuit
