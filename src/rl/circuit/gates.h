/**
 * @file
 * Primitive gate types of the circuit substrate.
 *
 * The set mirrors what the paper's standard-cell designs instantiate:
 * basic combinational gates (the OR/AND cores of Race Logic and the
 * XNOR match comparators of Eq. 2), multiplexers (weight selection in
 * the generalized cell, Fig. 8), and D flip-flops with an optional
 * enable (delay elements; the enable models gated clocks, Section
 * 4.3).
 */

#ifndef RACELOGIC_CIRCUIT_GATES_H
#define RACELOGIC_CIRCUIT_GATES_H

#include <cstdint>

namespace racelogic::circuit {

/** Primitive cell types. */
enum class GateType : uint8_t {
    Const0, ///< constant 0 (tie-low)
    Const1, ///< constant 1 (tie-high)
    Input,  ///< primary input pin
    Buf,    ///< buffer
    Not,    ///< inverter
    And,    ///< N-input AND
    Or,     ///< N-input OR
    Nand,   ///< N-input NAND
    Nor,    ///< N-input NOR
    Xor,    ///< 2-input XOR
    Xnor,   ///< 2-input XNOR (the match comparator of Eq. 2)
    Mux,    ///< inputs {sel, in0, in1}: sel ? in1 : in0
    Dff,    ///< inputs {d} or {d, enable}; output is registered
};

/** Number of distinct GateType values (for dense per-type tables). */
constexpr size_t kGateTypeCount = static_cast<size_t>(GateType::Dff) + 1;

/** Short mnemonic for reports. */
constexpr const char *
gateTypeName(GateType type)
{
    switch (type) {
      case GateType::Const0: return "const0";
      case GateType::Const1: return "const1";
      case GateType::Input:  return "input";
      case GateType::Buf:    return "buf";
      case GateType::Not:    return "not";
      case GateType::And:    return "and";
      case GateType::Or:     return "or";
      case GateType::Nand:   return "nand";
      case GateType::Nor:    return "nor";
      case GateType::Xor:    return "xor";
      case GateType::Xnor:   return "xnor";
      case GateType::Mux:    return "mux";
      case GateType::Dff:    return "dff";
    }
    return "?";
}

/** True for the sequential element. */
constexpr bool
isSequential(GateType type)
{
    return type == GateType::Dff;
}

/** True for gates with no inputs. */
constexpr bool
isSourceGate(GateType type)
{
    return type == GateType::Const0 || type == GateType::Const1 ||
           type == GateType::Input;
}

} // namespace racelogic::circuit

#endif // RACELOGIC_CIRCUIT_GATES_H
