#include "rl/circuit/sim_sync.h"

#include "rl/util/logging.h"

namespace racelogic::circuit {

SyncSim::SyncSim(const Netlist &netlist_in) : netlist(netlist_in)
{
    netlist.validate();
    const size_t n = netlist.gateCount();
    values.assign(n, 0);
    state.assign(n, 0);
    // perNet is pre-sized here (and kept sized by clearActivity) so
    // the counting hot paths below may index it unchecked; the
    // rl_dassert bounds document and enforce that in debug builds.
    stats.perNet.assign(n, 0);
    for (NetId id = 0; id < n; ++id) {
        const Gate &g = netlist.gate(id);
        if (g.type == GateType::Dff) {
            dffs.push_back(id);
            state[id] = g.init;
        } else if (g.type == GateType::Const1) {
            values[id] = 1;
        }
    }
    // The initial settle establishes baseline values; transitions are
    // counted from here on.
    counting = false;
    settle();
    counting = true;
}

void
SyncSim::setInput(NetId input, bool value_in)
{
    rl_assert(netlist.gate(input).type == GateType::Input,
              "net ", input, " is not a primary input");
    if (values[input] != static_cast<uint8_t>(value_in)) {
        if (counting) {
            // Input pin transitions count as net activity.
            ++stats.netToggles;
            ++stats.togglesByType[static_cast<size_t>(GateType::Input)];
            rl_dassert(input < stats.perNet.size(),
                       "perNet not pre-sized for net ", input);
            ++stats.perNet[input];
        }
        values[input] = value_in;
        dirty = true;
    }
}

void
SyncSim::setInput(const std::string &name, bool value_in)
{
    setInput(netlist.findInput(name), value_in);
}

bool
SyncSim::value(NetId net)
{
    rl_assert(net < values.size(), "net out of range");
    if (dirty)
        settle();
    return values[net];
}

void
SyncSim::settle()
{
    for (NetId id : netlist.combOrder()) {
        const Gate &g = netlist.gate(id);
        uint8_t out;
        switch (g.type) {
          case GateType::Const0:
            out = 0;
            break;
          case GateType::Const1:
            out = 1;
            break;
          case GateType::Input:
            out = values[id]; // driven externally
            break;
          case GateType::Dff:
            out = state[id]; // not in combOrder, defensive
            break;
          case GateType::Buf:
            out = values[g.inputs[0]];
            break;
          case GateType::Not:
            out = !values[g.inputs[0]];
            break;
          case GateType::And: {
            out = 1;
            for (NetId in : g.inputs)
                out &= values[in];
            break;
          }
          case GateType::Or: {
            out = 0;
            for (NetId in : g.inputs)
                out |= values[in];
            break;
          }
          case GateType::Nand: {
            uint8_t acc = 1;
            for (NetId in : g.inputs)
                acc &= values[in];
            out = !acc;
            break;
          }
          case GateType::Nor: {
            uint8_t acc = 0;
            for (NetId in : g.inputs)
                acc |= values[in];
            out = !acc;
            break;
          }
          case GateType::Xor:
            out = values[g.inputs[0]] ^ values[g.inputs[1]];
            break;
          case GateType::Xnor:
            out = !(values[g.inputs[0]] ^ values[g.inputs[1]]);
            break;
          case GateType::Mux:
            out = values[g.inputs[0]] ? values[g.inputs[2]]
                                      : values[g.inputs[1]];
            break;
          default:
            rl_panic("unhandled gate type");
        }
        if (values[id] != out) {
            if (counting) {
                ++stats.netToggles;
                ++stats.togglesByType[static_cast<size_t>(g.type)];
                rl_dassert(id < stats.perNet.size(),
                           "perNet not pre-sized for net ", id);
                ++stats.perNet[id];
            }
            values[id] = out;
        }
    }
    // DFF outputs: reflect registered state into the value view.
    for (NetId id : dffs) {
        if (values[id] != state[id]) {
            if (counting) {
                ++stats.netToggles;
                ++stats.togglesByType[static_cast<size_t>(GateType::Dff)];
                rl_dassert(id < stats.perNet.size(),
                           "perNet not pre-sized for net ", id);
                ++stats.perNet[id];
            }
            values[id] = state[id];
        }
    }
    dirty = false;
}

void
SyncSim::tick()
{
    if (dirty)
        settle();
    // Clock edge: capture D inputs.
    for (NetId id : dffs) {
        const Gate &g = netlist.gate(id);
        bool enabled = g.inputs.size() < 2 || values[g.inputs[1]];
        if (enabled) {
            ++stats.clockedDffCycles;
            state[id] = values[g.inputs[0]];
        }
    }
    ++currentCycle;
    ++stats.cycles;
    dirty = true;
    settle();
}

void
SyncSim::tickMany(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

std::optional<uint64_t>
SyncSim::runUntil(NetId net, bool expected, uint64_t max_cycles)
{
    if (value(net) == expected)
        return currentCycle;
    for (uint64_t i = 0; i < max_cycles; ++i) {
        tick();
        if (value(net) == expected)
            return currentCycle;
    }
    return std::nullopt;
}

void
SyncSim::reset()
{
    for (NetId id : dffs)
        state[id] = netlist.gate(id).init;
    for (NetId in : netlist.inputs())
        values[in] = 0;
    // Do not count reset transitions as switching activity: the paper
    // charges energy per comparison, with reset amortized outside the
    // measured loop.  Rebuild values silently.
    counting = false;
    dirty = true;
    settle();
    counting = true;
    currentCycle = 0;
}

void
SyncSim::clearActivity()
{
    stats = Activity{};
    stats.perNet.assign(values.size(), 0);
}

} // namespace racelogic::circuit
