/**
 * @file
 * Umbrella header for the racelogic::api front door.
 *
 *   #include "rl/api/api.h"
 *
 *   racelogic::api::RaceEngine engine;
 *   auto r = engine.solve(racelogic::api::RaceProblem::dtw(x, y));
 *
 * See rl/api/problem.h for the workload descriptions, rl/api/config.h
 * for backend/technology selection, rl/api/engine.h for the engine and
 * its plan cache, and rl/api/result.h for the unified result shape.
 */

#ifndef RACELOGIC_API_API_H
#define RACELOGIC_API_API_H

#include "rl/api/config.h"
#include "rl/api/engine.h"
#include "rl/api/problem.h"
#include "rl/api/result.h"
#include "rl/api/validate.h"

#endif // RACELOGIC_API_API_H
