/**
 * @file
 * RaceEngine: the library's one front door.
 *
 *   Problem -> Plan -> Engine -> Result
 *
 * Describe any supported dynamic program as a RaceProblem, pick a
 * backend and technology in EngineConfig, and solve():
 *
 *   api::RaceEngine engine;
 *   auto result = engine.solve(api::RaceProblem::pairwiseAlignment(
 *       bio::ScoreMatrix::dnaShortestPathInfMismatch(), q, p));
 *   // result.score, result.latencyCycles, result.arrivalTable(), ...
 *
 * Planning is the expensive part of a race -- converting a similarity
 * matrix (Section 5) and, on the gate-level backend, synthesizing a
 * fabric netlist for the problem's grid shape.  The engine keeps a
 * shape-keyed LRU cache of plans: repeated same-shape queries (the
 * database-screening workload of Section 6) skip synthesis entirely,
 * exactly as deployed hardware would reuse its fabric with new
 * strings on the primary inputs.
 *
 * solveBatch() additionally dispatches screening-shaped batches onto
 * the core::batch fabric pool, reporting makespan and utilization of
 * a multi-fabric deployment.
 */

#ifndef RACELOGIC_API_ENGINE_H
#define RACELOGIC_API_ENGINE_H

#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rl/api/config.h"
#include "rl/api/problem.h"
#include "rl/api/result.h"
#include "rl/core/batch.h"
#include "rl/pangraph/mapping.h"
#include "rl/util/status.h"
#include "rl/util/thread_pool.h"

namespace racelogic::pangraph {
class GraphAligner;
} // namespace racelogic::pangraph

namespace racelogic::api {

/**
 * Counters exposed for tests, benches, and capacity planning.
 *
 * RaceEngine::stats() returns a copy taken under the same mutex the
 * solve paths increment under, so a metrics reader on another thread
 * (the serve daemon's Stats endpoint) always sees a coherent
 * snapshot -- never a torn view where solves has advanced but
 * planCacheHits has not.
 */
struct EngineStats {
    uint64_t solves = 0;        ///< problems solved
    uint64_t plansBuilt = 0;    ///< plans synthesized (cache misses)
    uint64_t planCacheHits = 0; ///< solves that reused a cached plan
    uint64_t batches = 0;       ///< solveBatch calls
    uint64_t parallelBatches = 0; ///< batches raced on the thread pool
};

/** Outcome of one solveBatch call. */
struct BatchOutcome {
    /** Per-problem results, in input order. */
    std::vector<RaceResult> results;

    /**
     * Fabric-pool schedule (makespan, utilization, wall time) from
     * the core::batch dispatcher, fed with the per-result busy
     * cycles.  Present when the batch was screening-shaped: every
     * problem a pairwise alignment or threshold screen over one
     * shared cost matrix and query.
     */
    std::optional<core::BatchReport> schedule;

    /** Problems whose result passed the threshold (or all, if none). */
    size_t acceptedCount() const;

    /** Total fabric-busy cycles (threshold-clamped, Section 6). */
    uint64_t busyCycles() const;

    /**
     * Total cycles had every race run to completion.  Requires
     * EngineConfig::earlyTerminate = false (measurement mode): with
     * early termination on, an aborted race stops at its threshold
     * cycle and the remainder of its full-race latency is unknown --
     * which is the whole point of Section 6 -- so this degenerates to
     * busyCycles().
     */
    uint64_t fullRaceCycles() const;

    /** Early-termination gain: fullRaceCycles / busyCycles. */
    double speedup() const;
};

/**
 * The unified engine over every race-logic workload.
 *
 * One engine instance owns its plan cache and statistics; it is not
 * thread-safe (shard engines per thread, they share nothing).
 */
class RaceEngine
{
  public:
    explicit RaceEngine(EngineConfig config = EngineConfig{});
    ~RaceEngine();

    RaceEngine(const RaceEngine &) = delete;
    RaceEngine &operator=(const RaceEngine &) = delete;

    /** Solve one problem on the configured backend. */
    RaceResult solve(const RaceProblem &problem);

    /**
     * Would solve(problem) succeed?  Shape, resource budgets
     * (EngineConfig::maxProductStates plus the kernels' hard id-space
     * bounds), and runtime-input checks always run; the deep
     * matrix/graph validation (api/validate.h validateProblem()) is
     * skipped when a cached plan for the problem's shape already
     * exists -- that plan's build vetted it.  const and read-only:
     * neither the cache nor the statistics are touched.
     */
    Status validate(const RaceProblem &problem) const;

    /**
     * Fallible solve for untrusted problems: validate(), then
     * solve().  A problem this rejects would have tripped an
     * input-facing rl_fatal/rl_assert inside solve(); the serve
     * layer's one entry point.
     */
    Expected<RaceResult> trySolve(const RaceProblem &problem);

    /**
     * Solve a batch of problems, reusing cached plans across them.
     *
     * On the Behavioral backend, grid-family batches (pairwise /
     * generalized alignment, threshold screens) and graph-align
     * batches (reads against cached pangenome plans) are raced in
     * parallel on the engine's util::ThreadPool
     * (EngineConfig::workerThreads); results come back in input
     * order, bit-identical to a serial run.  Screening-shaped
     * batches are additionally dispatched onto the core::batch
     * fabric pool (fabricCount, resetCycles, threshold from the
     * config) to model a multi-fabric deployment.
     *
     * On the GateLevel backend, grid-family batches are raced
     * behaviorally the same way and then replayed on the synthesized
     * fabric in 64-wide bit-parallel chunks: each cached fabric's
     * compiled netlist hosts up to 64 comparisons per simulation
     * word (lanes grouped per shape, chunks spread across the thread
     * pool), every lane cross-checked against its behavioral result.
     * Estimates on this path price the measured chunk activity:
     * energyJ is the lock-step word's Eq. 3 energy averaged per lane
     * (see docs/api.md).
     */
    BatchOutcome solveBatch(const std::vector<RaceProblem> &problems);

    /**
     * Convenience: screen `database` against `query` over race-ready
     * `costs` with the Section 6 early-termination `threshold`.
     */
    BatchOutcome screen(const bio::ScoreMatrix &costs,
                        bio::Score threshold, const bio::Sequence &query,
                        const std::vector<bio::Sequence> &database);

    /**
     * Convenience: map `reads` against one pangenome over race-ready
     * `costs`.  A finite `threshold` aborts each race at that cycle
     * (Section 6 read-mapping screen); all reads share one cached
     * graph plan and, on the Behavioral backend, race in parallel on
     * the thread pool with results bit-identical to a serial run.
     */
    BatchOutcome mapReads(
        std::shared_ptr<const pangraph::VariationGraph> graph,
        const bio::ScoreMatrix &costs, bio::Score threshold,
        const std::vector<bio::Sequence> &reads);

    /**
     * Reconstruct the (walk, CIGAR) mapping of a completed
     * GraphAlign solve from the arrival times already raced -- no
     * re-race; the traceback walks the cached plan's compiled view
     * (rebuilt transparently if the plan was evicted or caching is
     * disabled).  Plan-cache statistics are not perturbed.
     * `problem` must be the GraphAlign problem that produced
     * `result` (accepted, so its sink fired).
     */
    pangraph::GraphMapping graphMapping(const RaceProblem &problem,
                                        const RaceResult &result);

    const EngineConfig &config() const { return cfg; }

    /**
     * Coherent snapshot of the counters: copied under the solve-path
     * mutex, so it is safe to call from a thread that does not own
     * the engine (every other member is owner-thread-only).
     */
    EngineStats stats() const;

    /**
     * True iff a plan for this problem's shape key is currently
     * cached.  Never mutates the cache or the statistics -- the
     * serve layer uses it to decide whether a solve will hit
     * shard-locally or must fall back to the shared build lock.
     */
    bool hasPlanFor(const RaceProblem &problem) const;

    /**
     * Build (or touch) the cached plan for a plan-family problem
     * (grid family or GraphAlign) without solving it.  A miss counts
     * plansBuilt; a hit counts nothing.  The serve layer calls this
     * under its shared build lock so concurrent shards never
     * synthesize expensive plans at the same time.
     */
    void prepare(const RaceProblem &problem);

    /**
     * Seed the cache with an externally compiled GraphAlign plan for
     * `problem`'s shape, so the first post-reload solve hits instead
     * of re-synthesizing what the reload's validation compile already
     * built.  `aligner` must be the planned form of (problem.vgraph,
     * problem.matrix) -- the serve reload path's tryMake() output.
     * A no-op when the shape is already cached (the resident plan and
     * its LRU position win) or when plan caching is disabled.
     * Counts neither plansBuilt (this engine synthesized nothing) nor
     * planCacheHits; cacheBytes grows as on any insert.
     */
    void adoptGraphPlan(const RaceProblem &problem,
                        std::shared_ptr<pangraph::GraphAligner> aligner);

    /** Plans currently held in the cache. */
    size_t planCacheSize() const { return lru.size(); }

    /**
     * Approximate resident heap bytes of the cached plans, maintained
     * on every insert and evict.  Like stats(), readable from a
     * thread that does not own the engine (same mutex) -- the serve
     * layer's memory budget sums this across shards.
     */
    size_t planCacheBytes() const;

    /**
     * Evict the least-recently-used plan; returns approximate bytes
     * freed (0 when the cache is empty).  The serve layer's brownout
     * reclaim calls this until back under its low watermark.
     */
    size_t evictLruPlan();

    /**
     * Evict every graph-keyed (GraphAlign) plan; returns approximate
     * bytes freed.  A hot graph reload makes the old graph's plans
     * permanently unreachable (the new fingerprint never matches
     * their keys), so the reload path drops them eagerly instead of
     * waiting for LRU churn -- grid-family plans are untouched.
     */
    size_t evictGraphPlans();

    /** Drop every cached plan (statistics are preserved). */
    void clearPlanCache();

  private:
    struct Plan;

    /**
     * Fetch or build the plan for a grid-family or graph problem.
     * `recordHit` = false skips the planCacheHits counter: auxiliary
     * lookups (graphMapping traceback) must not inflate the solve
     * statistics.
     */
    std::shared_ptr<Plan> planFor(const RaceProblem &problem,
                                  bool recordHit = true);
    std::shared_ptr<Plan> buildPlan(const RaceProblem &problem);

    RaceResult solveGridFamily(const RaceProblem &problem);
    RaceResult solveDtw(const RaceProblem &problem);
    RaceResult solveDagPath(const RaceProblem &problem);
    RaceResult solveAffine(const RaceProblem &problem);
    RaceResult solveGraphAlign(const RaceProblem &problem);

    /**
     * The Behavioral race of one grid-family problem on an acquired
     * plan.  const and allocation-local: this is the body the thread
     * pool runs concurrently, and also the first stage of the serial
     * GateLevel solve.
     */
    RaceResult raceGridBehavioral(const RaceProblem &problem,
                                  const Plan &plan) const;

    /**
     * The Behavioral race of one GraphAlign problem on an acquired
     * plan (the cached pangraph::GraphAligner); const and
     * allocation-local for the same parallel-batch reason.
     * `product` shares an already-built product DAG (the GateLevel
     * path builds it once for both the race and synthesis); null
     * races the fused kernel -- no product DAG is materialized on
     * the Behavioral path.
     */
    RaceResult raceGraphBehavioral(
        const RaceProblem &problem, const Plan &plan,
        const pangraph::AlignmentGraph *product = nullptr) const;

    /**
     * Replay an already-raced grid-family batch on the synthesized
     * fabrics, 64 lanes per chunk, cross-checking and (optionally)
     * pricing each result from the measured chunk activity.
     */
    void raceBatchGateLevel(
        const std::vector<RaceProblem> &problems,
        const std::vector<std::shared_ptr<Plan>> &plans,
        std::vector<RaceResult> &results);

    /** Worker threads solveBatch may use (resolves the 0 default). */
    size_t batchWorkerCount() const;

    /** The lazily created batch pool (never on the serial path). */
    util::ThreadPool &threadPool();

    EngineConfig cfg;

    /** Counters + their snapshot mutex (see stats()).  cacheBytes
     *  rides under the same mutex so planCacheBytes() is readable
     *  cross-thread like stats(). */
    EngineStats statistics;
    size_t cacheBytes = 0;
    mutable std::mutex statsMutex;

    std::unique_ptr<util::ThreadPool> pool;

    /** LRU plan cache: most recently used at the front. */
    using LruEntry = std::pair<std::string, std::shared_ptr<Plan>>;
    std::list<LruEntry> lru;
    std::unordered_map<std::string, std::list<LruEntry>::iterator> index;
};

} // namespace racelogic::api

#endif // RACELOGIC_API_ENGINE_H
