#include "rl/api/engine.h"

#include <algorithm>

#include "rl/api/validate.h"

#include "rl/circuit/compiled_sim.h"
#include "rl/circuit/sim_sync.h"
#include "rl/core/generalized.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_network.h"
#include "rl/core/scratch_registry.h"
#include "rl/core/wavefront.h"
#include "rl/pangraph/alignment_graph.h"
#include "rl/pangraph/graph_aligner.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/tech/area_model.h"
#include "rl/tech/energy_model.h"
#include "rl/util/logging.h"

namespace racelogic::api {

/**
 * A planned fabric for one grid shape: the converted matrix, the
 * behavioral racer, and (backend-dependent) the synthesized gate-level
 * fabric or systolic array.  Strings are runtime inputs, so one plan
 * serves every same-shape query.
 */
struct RaceEngine::Plan {
    size_t rows = 0;
    size_t cols = 0;

    /** The matrix the problem supplied (cache-hit exact check). */
    std::optional<bio::ScoreMatrix> input;

    /** Section 5 conversion metadata (similarity inputs only). */
    std::optional<bio::ShortestPathForm> conversion;

    /** Behavioral OR-type racer over the race-ready costs. */
    std::optional<core::RaceGridAligner> behavioral;

    /** Synthesized fabric (GateLevel backend). */
    std::unique_ptr<core::GeneralizedGridCircuit> fabric;

    /** Lipton-Lopresti array (Systolic backend). */
    std::unique_ptr<systolic::LiptonLoprestiArray> array;

    /**
     * Planned pangenome (GraphAlign only): the compiled
     * character-level graph plus the converted matrix.  Reads are
     * runtime inputs, so one aligner serves every read -- and its
     * align() is const, so parallel batches share it safely.
     */
    std::shared_ptr<pangraph::GraphAligner> graphAligner;

    /** Per-cell gate inventory (estimates; measured once per plan). */
    std::array<size_t, circuit::kGateTypeCount> cellInventory{};
    bool hasInventory = false;

    const bio::ScoreMatrix &
    costs() const
    {
        return behavioral->matrix();
    }

    /**
     * Approximate resident heap bytes -- the memory budget's
     * currency.  Counts the dominant allocations (netlist gates,
     * compiled-graph CSRs, score tables); the budget needs honest
     * bookkeeping that tracks reality, not byte-exact totals.
     */
    size_t residentBytes() const;
};

namespace {

/** Approximate heap bytes of one score matrix's tables. */
size_t
scoreMatrixBytes(const bio::ScoreMatrix &matrix)
{
    const size_t n = matrix.alphabet().size();
    return (n * n + n) * sizeof(bio::Score) + sizeof(bio::ScoreMatrix);
}

} // namespace

size_t
RaceEngine::Plan::residentBytes() const
{
    size_t bytes = sizeof(Plan);
    if (input)
        bytes += scoreMatrixBytes(*input);
    if (conversion)
        bytes += scoreMatrixBytes(conversion->costs);
    if (behavioral)
        bytes += scoreMatrixBytes(behavioral->matrix());
    if (fabric) {
        // Gate storage dominates a synthesized fabric; ~64 bytes per
        // gate covers the Gate record plus its input vector.
        bytes += fabric->netlist().gateCount() * 64;
    }
    if (array) {
        // One PE row per diagonal; storage scales with the perimeter.
        bytes += (rows + cols + 2) * 128;
    }
    if (graphAligner) {
        const pangraph::CompiledGraph &cg = graphAligner->compiled();
        bytes += cg.symbol.capacity() * sizeof(bio::Symbol) +
                 cg.segmentOf.capacity() * sizeof(pangraph::SegmentId) +
                 (cg.firstChar.capacity() + cg.lastChar.capacity() +
                  cg.succ.capacity() + cg.pred.capacity()) *
                     sizeof(pangraph::CharPos) +
                 (cg.succOffsets.capacity() + cg.predOffsets.capacity()) *
                     sizeof(uint32_t) +
                 cg.terminal.capacity() +
                 cg.gapWeight.capacity() * sizeof(bio::Score) +
                 scoreMatrixBytes(graphAligner->costs());
    }
    return bytes;
}

namespace {

/** Wall time of `cycles` race clocks under `lib` (ns). */
double
raceWallNs(const tech::CellLibrary &lib, sim::Tick cycles)
{
    return static_cast<double>(cycles) * lib.racePeriodNs;
}

/** True iff the two matrices describe identical edit weights. */
bool
sameMatrix(const bio::ScoreMatrix &lhs, const bio::ScoreMatrix &rhs)
{
    if (lhs.kind() != rhs.kind() ||
        lhs.alphabet().size() != rhs.alphabet().size())
        return false;
    const size_t n = lhs.alphabet().size();
    for (size_t i = 0; i < n; ++i) {
        auto s = static_cast<bio::Symbol>(i);
        if (lhs.gap(s) != rhs.gap(s))
            return false;
        for (size_t j = 0; j < n; ++j)
            if (lhs.pair(s, static_cast<bio::Symbol>(j)) !=
                rhs.pair(s, static_cast<bio::Symbol>(j)))
                return false;
    }
    return true;
}

/** Apply the threshold verdict to a completed-or-not OR-race result. */
void
applyThresholdVerdict(bio::Score threshold, RaceResult &result)
{
    if (!result.completed) {
        result.accepted = false;
        result.cyclesUsed = result.latencyCycles;
        return;
    }
    const bool over = result.racedCost > threshold;
    result.accepted = !over;
    result.cyclesUsed = over ? static_cast<sim::Tick>(threshold)
                             : result.latencyCycles;
}

} // namespace

size_t
BatchOutcome::acceptedCount() const
{
    return static_cast<size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const RaceResult &r) { return r.accepted; }));
}

uint64_t
BatchOutcome::busyCycles() const
{
    uint64_t total = 0;
    for (const RaceResult &r : results)
        total += r.cyclesUsed;
    return total;
}

uint64_t
BatchOutcome::fullRaceCycles() const
{
    uint64_t total = 0;
    for (const RaceResult &r : results)
        total += r.latencyCycles;
    return total;
}

double
BatchOutcome::speedup() const
{
    uint64_t busy = busyCycles();
    return busy == 0 ? 1.0
                     : static_cast<double>(fullRaceCycles()) /
                           static_cast<double>(busy);
}

RaceEngine::RaceEngine(EngineConfig config) : cfg(config)
{
    rl_assert(cfg.library != nullptr,
              "EngineConfig.library must point at a CellLibrary");
}

RaceEngine::~RaceEngine() = default;

void
RaceEngine::clearPlanCache()
{
    lru.clear();
    index.clear();
    std::lock_guard<std::mutex> lock(statsMutex);
    cacheBytes = 0;
}

size_t
RaceEngine::planCacheBytes() const
{
    std::lock_guard<std::mutex> lock(statsMutex);
    return cacheBytes;
}

size_t
RaceEngine::evictLruPlan()
{
    if (lru.empty())
        return 0;
    const size_t freed = lru.back().second->residentBytes();
    index.erase(lru.back().first);
    lru.pop_back();
    std::lock_guard<std::mutex> lock(statsMutex);
    cacheBytes -= std::min(cacheBytes, freed);
    return freed;
}

size_t
RaceEngine::evictGraphPlans()
{
    size_t freed = 0;
    for (auto it = lru.begin(); it != lru.end();) {
        if (it->second->graphAligner == nullptr) {
            ++it;
            continue;
        }
        freed += it->second->residentBytes();
        index.erase(it->first);
        it = lru.erase(it);
    }
    if (freed > 0) {
        std::lock_guard<std::mutex> lock(statsMutex);
        cacheBytes -= std::min(cacheBytes, freed);
    }
    return freed;
}

std::shared_ptr<RaceEngine::Plan>
RaceEngine::buildPlan(const RaceProblem &problem)
{
    if (problem.kind == ProblemKind::GraphAlign) {
        auto plan = std::make_shared<Plan>();
        plan->input = *problem.matrix;
        plan->graphAligner = std::make_shared<pangraph::GraphAligner>(
            problem.vgraph, *problem.matrix, problem.lambda);
        {
            std::lock_guard<std::mutex> lock(statsMutex);
            ++statistics.plansBuilt;
        }
        return plan;
    }

    auto plan = std::make_shared<Plan>();
    plan->rows = problem.a->size();
    plan->cols = problem.b->size();
    plan->input = *problem.matrix;

    const bio::ScoreMatrix &input = *plan->input;
    if (input.isCost()) {
        plan->behavioral.emplace(input);
    } else {
        plan->conversion =
            bio::toShortestPathForm(input, problem.lambda);
        plan->behavioral.emplace(plan->conversion->costs);
    }

    if (cfg.backend == BackendKind::GateLevel)
        plan->fabric = std::make_unique<core::GeneralizedGridCircuit>(
            plan->costs(), plan->rows, plan->cols, cfg.encoding);
    if (cfg.backend == BackendKind::Systolic)
        plan->array = std::make_unique<systolic::LiptonLoprestiArray>(
            plan->costs());
    if (cfg.withEstimates && cfg.backend != BackendKind::Systolic) {
        plan->cellInventory = core::GeneralizedGridCircuit::cellInventory(
            plan->costs(), cfg.encoding);
        plan->hasInventory = true;
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex);
        ++statistics.plansBuilt;
    }
    return plan;
}

std::shared_ptr<RaceEngine::Plan>
RaceEngine::planFor(const RaceProblem &problem, bool recordHit)
{
    if (cfg.planCacheCapacity == 0)
        return buildPlan(problem);

    std::string key = problem.shapeKey();
    auto found = index.find(key);
    if (found != index.end()) {
        // The key carries 64-bit content fingerprints; confirm the
        // match exactly so a hash collision can never hand back the
        // wrong fabric.  A collision falls through to an uncached
        // fresh plan (the slot keeps its original owner).  GraphAlign
        // keys additionally embed the graph topology, re-verified
        // structurally here.
        const Plan &cached = *found->second->second;
        const bool graphKind = problem.kind == ProblemKind::GraphAlign;
        bool match = graphKind == (cached.graphAligner != nullptr) &&
                     sameMatrix(*problem.matrix, *cached.input);
        if (match && graphKind)
            match = problem.vgraph == cached.graphAligner->graphPtr() ||
                    pangraph::sameTopology(*problem.vgraph,
                                           cached.graphAligner->graph());
        if (match) {
            lru.splice(lru.begin(), lru, found->second);
            if (recordHit) {
                std::lock_guard<std::mutex> lock(statsMutex);
                ++statistics.planCacheHits;
            }
            return lru.front().second;
        }
        return buildPlan(problem);
    }

    auto plan = buildPlan(problem);
    lru.emplace_front(key, plan);
    index[key] = lru.begin();
    {
        std::lock_guard<std::mutex> lock(statsMutex);
        cacheBytes += plan->residentBytes();
    }
    while (lru.size() > cfg.planCacheCapacity)
        evictLruPlan();
    return plan;
}

Status
RaceEngine::validate(const RaceProblem &problem) const
{
    ProblemLimits limits;
    limits.maxProductStates = cfg.maxProductStates;
    // checkShape() must pass before shapeKey() (hasPlanFor) is safe
    // to call: the key builder dereferences the kind's optionals.
    if (Status shape = checkShape(problem); !shape.ok())
        return shape;
    // Backend compatibility is this engine's concern, not the
    // problem's: the Lipton-Lopresti array races Fig. 2b pairwise
    // grids only (solve() asserts the same invariant).
    if (cfg.backend == BackendKind::Systolic &&
        problem.kind != ProblemKind::PairwiseAlignment &&
        problem.kind != ProblemKind::ThresholdScreen)
        return Status::error(ErrorCode::Unsupported,
                             "the systolic baseline races pairwise "
                             "grids and threshold screens only");
    if (hasPlanFor(problem)) {
        // The cached plan's build already vetted the expensive
        // matrix/graph half; only the budgets and the per-request
        // runtime inputs (sequences, thresholds) need checking.
        if (Status s = checkBudgets(problem, limits); !s.ok())
            return s;
        return checkRuntimeInputs(problem);
    }
    return validateProblem(problem, limits);
}

Expected<RaceResult>
RaceEngine::trySolve(const RaceProblem &problem)
{
    if (Status s = validate(problem); !s.ok())
        return s;
    return solve(problem);
}

EngineStats
RaceEngine::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex);
    return statistics;
}

RaceResult
RaceEngine::solve(const RaceProblem &problem)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex);
        ++statistics.solves;
    }
    switch (problem.kind) {
    case ProblemKind::PairwiseAlignment:
    case ProblemKind::GeneralizedAlignment:
    case ProblemKind::ThresholdScreen:
        return solveGridFamily(problem);
    case ProblemKind::Dtw:
        return solveDtw(problem);
    case ProblemKind::DagPath:
        return solveDagPath(problem);
    case ProblemKind::AffineAlignment:
        return solveAffine(problem);
    case ProblemKind::GraphAlign:
        return solveGraphAlign(problem);
    }
    rl_assert(false, "unknown problem kind");
    return RaceResult{};
}

RaceResult
RaceEngine::raceGridBehavioral(const RaceProblem &problem,
                               const Plan &plan) const
{
    const bio::Sequence &a = *problem.a;
    const bio::Sequence &b = *problem.b;
    const bool screening = problem.kind == ProblemKind::ThresholdScreen;
    const bio::Score threshold =
        screening ? problem.threshold : cfg.threshold;
    const tech::CellLibrary &lib = *cfg.library;

    RaceResult result;
    result.kind = problem.kind;
    result.backend = cfg.backend;
    result.nodes = (plan.rows + 1) * (plan.cols + 1);

    // Screens race with the threshold as the kernel horizon (the
    // Section 6 abort counter) unless the config asks for full-race
    // measurement.  Engine-wide thresholds on non-screen kinds keep
    // racing to completion: their contract reports the exact score
    // even when rejected.
    const bool bounded = screening && cfg.earlyTerminate &&
                         threshold != bio::kScoreInfinity;
    // One kernel scratch per thread: the batch screening loop (and
    // every serial solve) reuses the bucket-calendar arena instead of
    // allocating it per comparison.  The registry entry publishes the
    // arena's resident bytes so the serving layer's memory budget can
    // see -- and, via shrinkIdle(), reclaim -- capacity pinned inside
    // worker threads; the lease keeps shrinkers off a live solve.
    static thread_local core::RaceGridScratch scratch;
    static thread_local core::ScratchRegistration scratchReg(
        [s = &scratch](bool shrink) {
            if (shrink)
                s->shrinkToFit();
            return s->residentBytes();
        });
    core::ScratchLease lease(scratchReg.entry());
    core::RaceGridResult raced = plan.behavioral->align(
        a, b,
        bounded ? static_cast<sim::Tick>(threshold)
                : sim::kTickInfinity,
        scratch, problem.cancel, problem.counters);
    rl_assert(bounded || raced.cancelled || raced.completed,
              "sink never fired; gap weights should guarantee a path");
    result.completed = raced.completed;
    result.cancelled = raced.cancelled;
    result.racedCost = raced.score;
    result.latencyCycles = raced.latencyCycles;
    result.events = raced.events;
    result.cellsFired = raced.cellsFired;
    result.arrival = std::move(raced.arrival);

    applyThresholdVerdict(threshold, result);
    if (result.cancelled) {
        // A cancelled race reveals nothing about the score at all.
        result.accepted = false;
        result.score = bio::kScoreInfinity;
    } else if (screening && !result.accepted) {
        // Match the Section 6 screening contract: an aborted race
        // reveals only that the score exceeds the threshold.
        result.completed = false;
        result.score = bio::kScoreInfinity;
    } else {
        result.score = plan.conversion
                           ? plan.conversion->recoverScore(
                                 result.racedCost, a.size(), b.size())
                           : result.racedCost;
    }

    if (cfg.withEstimates) {
        HardwareEstimate est;
        est.wallTimeNs = raceWallNs(lib, result.cyclesUsed);
        // On GateLevel the caller overwrites area/energy with figures
        // from the synthesized netlist; skip the analytic model then.
        if (plan.hasInventory &&
            cfg.backend != BackendKind::GateLevel) {
            // Eq. 3 with the actual race duration: clock-pin charging
            // of every fabric DFF per cycle, plus the per-comparison
            // data term.
            const double cells =
                static_cast<double>(plan.rows * plan.cols);
            const double dffPerCell = static_cast<double>(
                plan.cellInventory[static_cast<size_t>(
                    circuit::GateType::Dff)]);
            est.areaUm2 =
                tech::generalizedGridArea(lib, plan.costs(), plan.rows,
                                          plan.cols,
                                          plan.cellInventory)
                    .totalUm2;
            est.energyJ =
                lib.switchEnergyJ(lib.dffClockCapF) * cells * dffPerCell *
                    static_cast<double>(result.cyclesUsed) +
                cells * lib.raceCellTogglesPerComparison *
                    lib.switchEnergyJ(lib.netCapF);
        }
        result.estimate = est;
    }
    return result;
}

RaceResult
RaceEngine::solveGridFamily(const RaceProblem &problem)
{
    const bio::Sequence &a = *problem.a;
    const bio::Sequence &b = *problem.b;
    const bio::Score threshold =
        problem.kind == ProblemKind::ThresholdScreen ? problem.threshold
                                                     : cfg.threshold;

    rl_assert(cfg.backend != BackendKind::Systolic ||
                  problem.kind != ProblemKind::GeneralizedAlignment,
              "the systolic baseline cannot run generalized matrices "
              "(mod-4 score encoding needs the Fig. 2b cost family)");

    std::shared_ptr<Plan> plan = planFor(problem);
    const tech::CellLibrary &lib = *cfg.library;

    if (cfg.backend == BackendKind::Systolic) {
        RaceResult result;
        result.kind = problem.kind;
        result.backend = cfg.backend;
        systolic::SystolicResult raced = plan->array->align(a, b);
        result.racedCost = raced.score;
        result.latencyCycles = raced.cycles;
        result.nodes = raced.peCount;
        // The array cannot abort: it is busy for the full run even
        // when the verdict is negative (the Section 6 contrast).
        result.cyclesUsed = raced.cycles;
        result.accepted = raced.score <= threshold;
        result.score = plan->conversion
                           ? plan->conversion->recoverScore(
                                 result.racedCost, a.size(), b.size())
                           : result.racedCost;
        if (cfg.withEstimates) {
            HardwareEstimate est;
            est.wallTimeNs = static_cast<double>(raced.cycles) *
                             lib.systolicPeriodNs;
            est.areaUm2 = tech::systolicArea(lib, a.alphabet(), a.size(),
                                             b.size())
                              .totalUm2;
            est.energyJ =
                tech::systolicEnergyFromResult(lib, raced, a.alphabet())
                    .totalJ();
            result.estimate = est;
        }
        return result;
    }

    // Behavioral race (also the reference the gate level is checked
    // against).
    RaceResult result = raceGridBehavioral(problem, *plan);

    if (cfg.backend == BackendKind::GateLevel) {
        // Run the same race on the synthesized fabric.  Any finite
        // threshold becomes the cycle budget -- the hardware
        // realization of Section 6's abort -- so the priced switching
        // activity covers exactly the cycles the fabric is busy.
        // Floor at 1: the fabric treats budget 0 as "unlimited",
        // while threshold 0 must reject after a single cycle (all
        // weights are >= 1).
        const bool bounded = threshold < bio::kScoreInfinity;
        uint64_t budget =
            bounded ? std::max<uint64_t>(
                          static_cast<uint64_t>(threshold), 1)
                    : 0;
        plan->fabric->sim().clearActivity();
        core::CircuitRunResult run = plan->fabric->align(a, b, budget);
        if (run.completed && result.completed) {
            rl_assert(run.score == result.racedCost,
                      "gate-level race disagrees with behavioral "
                      "model: ",
                      run.score, " vs ", result.racedCost);
        } else if (run.completed) {
            // The behavioral race aborted at its horizon, so the
            // fabric's sink can only have fired past the threshold
            // (possible only at threshold 0, whose budget floor is 1).
            rl_assert(run.score > threshold,
                      "gate-level race completed under a threshold "
                      "the behavioral model aborted at");
        } else {
            rl_assert(bounded && !result.accepted,
                      "gate-level race did not complete within budget");
        }
        if (cfg.withEstimates && result.estimate) {
            // Priced from the actual synthesized netlist + simulated
            // switching activity (the ModelSim -> PrimeTime stand-in).
            auto counts = plan->fabric->netlist().typeCounts();
            result.estimate->areaUm2 = lib.areaOfInventory(counts);
            result.estimate->energyJ = tech::energyFromActivityJ(
                lib, plan->fabric->sim().activity());
            result.estimate->gateCount =
                plan->fabric->netlist().gateCount();
            result.estimate->dffCount =
                counts[static_cast<size_t>(circuit::GateType::Dff)];
        }
    }
    return result;
}

namespace {

/**
 * Race a DAG problem behaviorally and, on the gate-level backend,
 * compile it to a netlist, replay the race on real gates, and
 * cross-check the sink arrival.  Shared by Dtw / DagPath / Affine.
 */
void
raceDagProblem(const graph::Dag &dag,
               const std::vector<graph::NodeId> &sources,
               graph::NodeId sink, core::RaceType type,
               const EngineConfig &cfg, RaceResult &result)
{
    core::RaceOutcome outcome = core::raceDag(dag, sources, type);
    core::TemporalValue arrival = outcome.at(sink);
    result.events = outcome.events;
    result.nodes = dag.nodeCount();
    result.completed = arrival.fired();
    if (arrival.fired()) {
        result.racedCost = static_cast<bio::Score>(arrival.time());
        result.latencyCycles = arrival.time();
    } else {
        result.racedCost = bio::kScoreInfinity;
        result.latencyCycles = outcome.horizon;
    }
    result.nodeArrival = std::move(outcome.firing);
    result.cellsFired = static_cast<size_t>(std::count_if(
        result.nodeArrival.begin(), result.nodeArrival.end(),
        [](const core::TemporalValue &v) { return v.fired(); }));

    const tech::CellLibrary &lib = *cfg.library;
    if (cfg.withEstimates) {
        HardwareEstimate est;
        est.wallTimeNs = raceWallNs(lib, result.latencyCycles);
        result.estimate = est;
    }

    if (cfg.backend == BackendKind::GateLevel && arrival.fired()) {
        core::RaceCircuit compiled =
            core::compileRaceCircuit(dag, sources, type);
        circuit::CompiledSim sim(compiled.netlist);
        for (circuit::NetId input : compiled.sourceInputs)
            sim.setInput(input, true);
        auto gateArrival =
            sim.runUntil(compiled.nodeNets[sink], true,
                         static_cast<uint64_t>(result.racedCost) + 4);
        rl_assert(gateArrival.has_value() &&
                      static_cast<bio::Score>(*gateArrival) ==
                          result.racedCost,
                  "gate-level race disagrees with the event-driven "
                  "model at the sink");
        if (cfg.withEstimates && result.estimate) {
            auto counts = compiled.netlist.typeCounts();
            result.estimate->areaUm2 = lib.areaOfInventory(counts);
            result.estimate->energyJ =
                tech::energyFromActivityJ(lib, sim.activity());
            result.estimate->gateCount = compiled.netlist.gateCount();
            result.estimate->dffCount =
                counts[static_cast<size_t>(circuit::GateType::Dff)];
        }
    }
}

} // namespace

RaceResult
RaceEngine::solveDtw(const RaceProblem &problem)
{
    rl_assert(cfg.backend != BackendKind::Systolic,
              "the systolic baseline only aligns strings; race DTW on "
              "the behavioral or gate-level backend");

    apps::DtwGraph lattice = apps::makeDtwGraph(problem.x, problem.y);

    RaceResult result;
    result.kind = ProblemKind::Dtw;
    result.backend = cfg.backend;
    raceDagProblem(lattice.dag, {lattice.source}, lattice.sink,
                   core::RaceType::Or, cfg, result);
    rl_assert(result.completed, "DTW race never finished");
    result.score = result.racedCost;
    applyThresholdVerdict(cfg.threshold, result);
    return result;
}

RaceResult
RaceEngine::solveDagPath(const RaceProblem &problem)
{
    rl_assert(cfg.backend != BackendKind::Systolic,
              "the systolic baseline only aligns strings; race DAG "
              "paths on the behavioral or gate-level backend");

    const bool shortest =
        problem.objective == graph::Objective::Shortest;

    RaceResult result;
    result.kind = ProblemKind::DagPath;
    result.backend = cfg.backend;
    raceDagProblem(*problem.dag, problem.sources, problem.sink,
                   shortest ? core::RaceType::Or : core::RaceType::And,
                   cfg, result);
    result.score = result.completed ? result.racedCost
                                    : bio::kScoreInfinity;
    if (shortest) {
        // Early termination is an OR-race property only: a MAX race's
        // answer is not known until the end.
        applyThresholdVerdict(cfg.threshold, result);
    } else {
        result.cyclesUsed = result.latencyCycles;
    }
    return result;
}

RaceResult
RaceEngine::solveAffine(const RaceProblem &problem)
{
    rl_assert(cfg.backend != BackendKind::Systolic,
              "the systolic baseline has no affine-gap mode; race "
              "affine alignments on the behavioral or gate-level "
              "backend");

    bio::AffineEditGraph lattice = bio::makeAffineEditGraph(
        *problem.a, *problem.b, *problem.matrix, problem.gaps);

    RaceResult result;
    result.kind = ProblemKind::AffineAlignment;
    result.backend = cfg.backend;
    raceDagProblem(lattice.dag, {lattice.source}, lattice.sink,
                   core::RaceType::Or, cfg, result);
    rl_assert(result.completed,
              "affine race never finished; finite gaps should always "
              "connect the corners");
    result.score = result.racedCost;
    applyThresholdVerdict(cfg.threshold, result);
    return result;
}

RaceResult
RaceEngine::raceGraphBehavioral(
    const RaceProblem &problem, const Plan &plan,
    const pangraph::AlignmentGraph *product) const
{
    const pangraph::GraphAligner &aligner = *plan.graphAligner;
    // A problem-level threshold marks a read-mapping screen; the
    // engine-wide threshold only gates acceptance after a full race.
    const bool screening = problem.threshold != bio::kScoreInfinity;
    const bio::Score threshold =
        screening ? problem.threshold : cfg.threshold;
    const bool bounded = screening && cfg.earlyTerminate;
    const sim::Tick horizon = bounded
                                  ? static_cast<sim::Tick>(threshold)
                                  : sim::kTickInfinity;

    // The Behavioral path races the fused kernel -- align(read) keeps
    // one scratch per thread, so the read-mapping batch loop (and
    // every serial solve) allocates no kernel storage per read and
    // never materializes a product DAG.  Only the GateLevel caller
    // passes a product in (it is also the synthesis input, so it
    // must not be built twice).
    pangraph::GraphRaceResult raced =
        product ? aligner.align(*product, horizon)
                : aligner.align(*problem.a, horizon, problem.cancel,
                                problem.counters);

    RaceResult result;
    result.kind = ProblemKind::GraphAlign;
    result.backend = cfg.backend;
    result.nodes = raced.nodes;
    result.completed = raced.completed;
    result.cancelled = raced.cancelled;
    result.racedCost = raced.racedCost;
    result.latencyCycles = raced.latencyCycles;
    result.events = raced.events;
    result.cellsFired = raced.cellsFired;
    result.nodeArrival = std::move(raced.arrival);

    applyThresholdVerdict(threshold, result);
    if (result.cancelled) {
        // A cancelled race reveals nothing -- not even the screening
        // verdict -- and carries no mapping detail.
        result.accepted = false;
        result.score = bio::kScoreInfinity;
        result.nodeArrival.clear();
        result.nodeArrival.shrink_to_fit();
    } else if (screening && !result.accepted) {
        // The Section 6 screening contract: an aborted race reveals
        // only that the distance exceeds the threshold.  Rejected
        // reads also carry no mapping detail -- graphMapping() needs
        // a completed race, and retaining the product arrival vector
        // would make screening batches scale as reads x product
        // size.
        result.completed = false;
        result.score = bio::kScoreInfinity;
        result.nodeArrival.clear();
        result.nodeArrival.shrink_to_fit();
    } else {
        result.score = raced.score;
    }

    if (cfg.withEstimates) {
        HardwareEstimate est;
        est.wallTimeNs = raceWallNs(*cfg.library, result.cyclesUsed);
        result.estimate = est;
    }
    return result;
}

RaceResult
RaceEngine::solveGraphAlign(const RaceProblem &problem)
{
    rl_assert(cfg.backend != BackendKind::Systolic,
              "the systolic baseline only aligns linear strings; race "
              "graph alignments on the behavioral or gate-level "
              "backend");

    std::shared_ptr<Plan> plan = planFor(problem);

    if (cfg.backend != BackendKind::GateLevel)
        return raceGraphBehavioral(problem, *plan);

    // Build the product DAG once -- materialization dominates the
    // per-read cost -- and share it between the behavioral race and
    // fabric synthesis: the product raced IS the product synthesized
    // (Fig. 3b, one OR gate per state, DFF chains per edit weight),
    // replayed on the compiled levelized simulator and cross-checked
    // at the sink.
    const pangraph::GraphAligner &aligner = *plan->graphAligner;
    pangraph::AlignmentGraph product = pangraph::buildAlignmentGraph(
        aligner.compiled(), *problem.a, aligner.costs());
    RaceResult result = raceGraphBehavioral(problem, *plan, &product);
    core::RaceCircuit compiled = core::compileRaceCircuit(
        product.dag, {product.source}, core::RaceType::Or);
    circuit::CompiledSim sim(compiled.netlist);
    for (circuit::NetId input : compiled.sourceInputs)
        sim.setInput(input, true);
    const bool screening = problem.threshold != bio::kScoreInfinity;
    const uint64_t budget =
        result.completed
            ? static_cast<uint64_t>(result.racedCost) + 4
            : std::max<uint64_t>(
                  static_cast<uint64_t>(problem.threshold), 1);
    auto gateArrival =
        sim.runUntil(compiled.nodeNets[product.sink], true, budget);
    if (result.completed) {
        rl_assert(gateArrival.has_value() &&
                      static_cast<bio::Score>(*gateArrival) ==
                          result.racedCost,
                  "gate-level graph race disagrees with the "
                  "wavefront kernel at the sink");
    } else {
        // The behavioral race aborted at its horizon; the budget
        // floor of 1 (threshold 0) can still let the sink fire --
        // but only past the threshold.
        rl_assert(screening &&
                      (!gateArrival.has_value() ||
                       static_cast<bio::Score>(*gateArrival) >
                           problem.threshold),
                  "gate-level graph race completed under a "
                  "threshold the behavioral race aborted at");
    }
    if (cfg.withEstimates && result.estimate) {
        const tech::CellLibrary &lib = *cfg.library;
        auto counts = compiled.netlist.typeCounts();
        result.estimate->areaUm2 = lib.areaOfInventory(counts);
        result.estimate->energyJ =
            tech::energyFromActivityJ(lib, sim.activity());
        result.estimate->gateCount = compiled.netlist.gateCount();
        result.estimate->dffCount =
            counts[static_cast<size_t>(circuit::GateType::Dff)];
    }
    return result;
}

namespace {

/**
 * A batch is "screening-shaped" when every problem races one shared
 * fabric against varying runtime inputs: one cost matrix and query
 * over a candidate database, or one pangenome plan over a read set.
 * Exactly the workloads the core::batch fabric pool schedules.
 */
bool
screeningShaped(const std::vector<RaceProblem> &problems)
{
    if (problems.empty())
        return false;
    const RaceProblem &first = problems.front();
    if (first.kind == ProblemKind::GraphAlign) {
        for (const RaceProblem &p : problems) {
            if (p.kind != ProblemKind::GraphAlign)
                return false;
            if (p.vgraph != first.vgraph ||
                !sameMatrix(*p.matrix, *first.matrix))
                return false;
        }
        return true;
    }
    if (!first.matrix || !first.matrix->isCost() || !first.a)
        return false;
    for (const RaceProblem &p : problems) {
        if (p.kind != ProblemKind::PairwiseAlignment &&
            p.kind != ProblemKind::ThresholdScreen)
            return false;
        if (!(*p.a == *first.a) || !sameMatrix(*p.matrix, *first.matrix))
            return false;
    }
    return true;
}

/** Kinds the parallel batch path can race (plan + const align). */
bool
gridFamilyKind(ProblemKind kind)
{
    return kind == ProblemKind::PairwiseAlignment ||
           kind == ProblemKind::GeneralizedAlignment ||
           kind == ProblemKind::ThresholdScreen;
}

/** Kinds whose plan supports the acquire-then-race batch pattern. */
bool
planFamilyKind(ProblemKind kind)
{
    return gridFamilyKind(kind) || kind == ProblemKind::GraphAlign;
}

} // namespace

void
RaceEngine::raceBatchGateLevel(
    const std::vector<RaceProblem> &problems,
    const std::vector<std::shared_ptr<Plan>> &plans,
    std::vector<RaceResult> &results)
{
    // Group problem indices by plan (one synthesized fabric per grid
    // shape) and fill each fabric's 64 bit-parallel lanes.
    struct Chunk {
        const Plan *plan;
        std::vector<size_t> indices;
    };
    std::vector<Chunk> chunks;
    std::unordered_map<const Plan *, size_t> open;
    for (size_t i = 0; i < problems.size(); ++i) {
        const Plan *plan = plans[i].get();
        auto found = open.find(plan);
        if (found != open.end() &&
            chunks[found->second].indices.size() < 64) {
            chunks[found->second].indices.push_back(i);
        } else {
            open[plan] = chunks.size();
            chunks.push_back({plan, {i}});
        }
    }

    const tech::CellLibrary &lib = *cfg.library;
    auto raceChunk = [&](size_t c) {
        const Chunk &chunk = chunks[c];
        const Plan &plan = *chunk.plan;

        // The shared lock-step budget: the largest per-lane threshold
        // (each lane's own Section 6 verdict is checked below), or
        // the fabric's full-race default if any lane is unbounded.
        std::vector<core::LanePair> lanes;
        lanes.reserve(chunk.indices.size());
        uint64_t budget = 0;
        bool unbounded = false;
        for (size_t idx : chunk.indices) {
            const RaceProblem &p = problems[idx];
            lanes.push_back({&*p.a, &*p.b});
            const bio::Score threshold =
                p.kind == ProblemKind::ThresholdScreen ? p.threshold
                                                       : cfg.threshold;
            if (threshold == bio::kScoreInfinity)
                unbounded = true;
            else
                budget = std::max<uint64_t>(
                    budget,
                    std::max<uint64_t>(
                        static_cast<uint64_t>(threshold), 1));
        }
        // alignLanes is const and simulates on a private CompiledSim
        // over the plan's shared compile, so chunks race on the pool
        // without touching the fabric's serial-path simulator.
        // Profiling counters describe the one lock-step sweep the
        // whole chunk shares (like the chunk's Activity), so each
        // requesting problem gets the chunk-level merge.
        core::KernelCounters chunkCounters;
        bool wantCounters = false;
        for (size_t idx : chunk.indices)
            wantCounters = wantCounters ||
                           problems[idx].counters != nullptr;
        core::LaneBatchResult raced = plan.fabric->alignLanes(
            lanes, unbounded ? 0 : budget,
            wantCounters ? &chunkCounters : nullptr);
        if (wantCounters)
            for (size_t idx : chunk.indices)
                if (problems[idx].counters)
                    problems[idx].counters->merge(chunkCounters);

        const double chunkEnergyJ =
            tech::energyFromActivityJ(lib, raced.activity);
        const auto counts = plan.fabric->netlist().typeCounts();
        for (size_t k = 0; k < chunk.indices.size(); ++k) {
            const size_t idx = chunk.indices[k];
            const RaceProblem &p = problems[idx];
            const bio::Score threshold =
                p.kind == ProblemKind::ThresholdScreen ? p.threshold
                                                       : cfg.threshold;
            RaceResult &soft = results[idx];
            const core::CircuitRunResult &run = raced.lanes[k];
            if (run.completed && soft.completed) {
                rl_assert(run.score == soft.racedCost,
                          "gate-level lane race disagrees with "
                          "behavioral model: ",
                          run.score, " vs ", soft.racedCost);
            } else if (run.completed) {
                // The behavioral race aborted at its own horizon; the
                // lock-step word kept clocking to the chunk budget,
                // so the lane's sink may fire -- but only past its
                // own threshold.
                rl_assert(run.score > threshold,
                          "gate-level lane completed under a "
                          "threshold the behavioral model aborted at");
            } else {
                rl_assert(threshold != bio::kScoreInfinity &&
                              !soft.accepted,
                          "gate-level lane race did not complete "
                          "within budget");
            }
            if (soft.estimate) {
                // Priced from the measured chunk activity: the
                // lock-step word's Eq. 3 energy, averaged per lane
                // (lanes share one fabric compile and clock).
                soft.estimate->areaUm2 = lib.areaOfInventory(counts);
                soft.estimate->energyJ =
                    chunkEnergyJ / static_cast<double>(lanes.size());
                soft.estimate->gateCount =
                    plan.fabric->netlist().gateCount();
                soft.estimate->dffCount = counts[static_cast<size_t>(
                    circuit::GateType::Dff)];
            }
        }
    };

    if (batchWorkerCount() > 1 && chunks.size() > 1)
        threadPool().parallelFor(chunks.size(), raceChunk);
    else
        for (size_t c = 0; c < chunks.size(); ++c)
            raceChunk(c);
}

size_t
RaceEngine::batchWorkerCount() const
{
    return cfg.workerThreads == 0 ? util::ThreadPool::defaultThreadCount()
                                  : cfg.workerThreads;
}

util::ThreadPool &
RaceEngine::threadPool()
{
    if (!pool)
        pool = std::make_unique<util::ThreadPool>(batchWorkerCount());
    return *pool;
}

bool
RaceEngine::hasPlanFor(const RaceProblem &problem) const
{
    if (cfg.planCacheCapacity == 0)
        return false;
    return index.find(problem.shapeKey()) != index.end();
}

void
RaceEngine::prepare(const RaceProblem &problem)
{
    rl_assert(planFamilyKind(problem.kind),
              "prepare() plans grid-family and GraphAlign problems; ",
              problemKindName(problem.kind),
              " bakes its instance into the lattice and has no "
              "reusable plan");
    planFor(problem, /*recordHit=*/false);
}

void
RaceEngine::adoptGraphPlan(const RaceProblem &problem,
                           std::shared_ptr<pangraph::GraphAligner> aligner)
{
    rl_assert(problem.kind == ProblemKind::GraphAlign,
              "adoptGraphPlan() seeds GraphAlign shapes only");
    rl_assert(aligner != nullptr, "adoptGraphPlan() needs a plan");
    rl_assert(aligner->graphPtr() == problem.vgraph,
              "the adopted aligner must be planned for the problem's "
              "graph");
    if (cfg.planCacheCapacity == 0)
        return;
    std::string key = problem.shapeKey();
    if (index.find(key) != index.end())
        return;
    auto plan = std::make_shared<Plan>();
    plan->input = *problem.matrix;
    plan->graphAligner = std::move(aligner);
    lru.emplace_front(std::move(key), plan);
    index[lru.front().first] = lru.begin();
    {
        std::lock_guard<std::mutex> lock(statsMutex);
        cacheBytes += plan->residentBytes();
    }
    while (lru.size() > cfg.planCacheCapacity)
        evictLruPlan();
}

BatchOutcome
RaceEngine::solveBatch(const std::vector<RaceProblem> &problems)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex);
        ++statistics.batches;
    }
    BatchOutcome outcome;

    const bool gridFamily =
        !problems.empty() &&
        std::all_of(problems.begin(), problems.end(),
                    [](const RaceProblem &p) {
                        return gridFamilyKind(p.kind);
                    });
    // Grid and graph batches share the acquire-then-race pattern;
    // each problem's plan is cached main-thread state, the race body
    // is const.
    const bool planFamily =
        !problems.empty() &&
        std::all_of(problems.begin(), problems.end(),
                    [](const RaceProblem &p) {
                        return planFamilyKind(p.kind);
                    });
    // GateLevel batches are replayed on the fabric in 64-wide
    // bit-parallel chunks -- worthwhile even on one thread.  (Graph
    // product fabrics are per-read, so they stay on the serial
    // gate-level path below.)
    const bool lanePacked = gridFamily && problems.size() > 1 &&
                            cfg.backend == BackendKind::GateLevel;
    const bool parallel =
        batchWorkerCount() > 1 && problems.size() > 1 && planFamily &&
        (cfg.backend == BackendKind::Behavioral || lanePacked);

    if (parallel || lanePacked) {
        // Acquire every plan serially first -- the plan cache and
        // statistics are main-thread state -- then race on the pool.
        // The race bodies are const and each writes only its own
        // slot, so the results are bit-identical to a serial run
        // regardless of the thread schedule.
        std::vector<std::shared_ptr<Plan>> plans;
        plans.reserve(problems.size());
        for (const RaceProblem &problem : problems)
            plans.push_back(planFor(problem));
        {
            std::lock_guard<std::mutex> lock(statsMutex);
            statistics.solves += problems.size();
        }
        outcome.results.resize(problems.size());
        auto raceOne = [&](size_t i) {
            outcome.results[i] =
                problems[i].kind == ProblemKind::GraphAlign
                    ? raceGraphBehavioral(problems[i], *plans[i])
                    : raceGridBehavioral(problems[i], *plans[i]);
        };
        if (parallel) {
            {
                std::lock_guard<std::mutex> lock(statsMutex);
                ++statistics.parallelBatches;
            }
            threadPool().parallelFor(problems.size(), raceOne);
        } else {
            for (size_t i = 0; i < problems.size(); ++i)
                raceOne(i);
        }
        if (lanePacked)
            raceBatchGateLevel(problems, plans, outcome.results);
    } else {
        outcome.results.reserve(problems.size());
        for (const RaceProblem &problem : problems)
            outcome.results.push_back(solve(problem));
    }

    if (screeningShaped(problems)) {
        // Model the deployment: dispatch the already-raced workload
        // onto the core::batch pool scheduler.  Feeding the
        // per-result busy cycles (each clamped by its own threshold)
        // avoids racing everything a second time and keeps the
        // schedule verdicts identical to the results by construction.
        core::BatchConfig pool;
        pool.fabricCount = cfg.fabricCount;
        pool.resetCycles = cfg.resetCycles;
        std::vector<core::ScreenedComparison> runs;
        runs.reserve(outcome.results.size());
        for (const RaceResult &r : outcome.results)
            runs.push_back({r.accepted,
                            static_cast<uint64_t>(r.cyclesUsed)});
        outcome.schedule = core::scheduleBatch(pool, runs);
    }
    return outcome;
}

BatchOutcome
RaceEngine::screen(const bio::ScoreMatrix &costs, bio::Score threshold,
                   const bio::Sequence &query,
                   const std::vector<bio::Sequence> &database)
{
    std::vector<RaceProblem> problems;
    problems.reserve(database.size());
    for (const bio::Sequence &candidate : database)
        problems.push_back(RaceProblem::thresholdScreen(
            costs, threshold, query, candidate));
    return solveBatch(problems);
}

pangraph::GraphMapping
RaceEngine::graphMapping(const RaceProblem &problem,
                         const RaceResult &result)
{
    rl_assert(problem.kind == ProblemKind::GraphAlign,
              "graphMapping() reconstructs GraphAlign solves only");
    rl_assert(result.completed && !result.nodeArrival.empty(),
              "graphMapping() needs a completed race with arrival "
              "detail (accepted reads only)");
    // An auxiliary lookup, not a solve: cache hits are not counted,
    // and if the plan was evicted (or caching is off) it is rebuilt
    // transparently -- plansBuilt then reports that honestly.
    std::shared_ptr<Plan> plan = planFor(problem, /*recordHit=*/false);
    const pangraph::GraphAligner &aligner = *plan->graphAligner;
    return pangraph::mappingFromArrival(aligner.compiled(), *problem.a,
                                        aligner.costs(),
                                        result.nodeArrival);
}

BatchOutcome
RaceEngine::mapReads(std::shared_ptr<const pangraph::VariationGraph> graph,
                     const bio::ScoreMatrix &costs, bio::Score threshold,
                     const std::vector<bio::Sequence> &reads)
{
    std::vector<RaceProblem> problems;
    problems.reserve(reads.size());
    for (const bio::Sequence &read : reads)
        problems.push_back(
            RaceProblem::graphAlign(costs, read, graph, threshold));
    return solveBatch(problems);
}

} // namespace racelogic::api
