/**
 * @file
 * RaceProblem: one description for every workload the library races.
 *
 * The paper's thesis is that MIN (OR), MAX (AND), ADD-CONSTANT (DFF
 * chain) and INHIBIT over arrival times form a single substrate that
 * many dynamic programs compile onto.  The API layer makes that
 * concrete: every supported workload -- pairwise alignment, affine-gap
 * alignment, dynamic time warping, DAG shortest/longest path,
 * generalized score-matrix DP, threshold screening, and
 * sequence-to-graph (pangenome) alignment -- is expressed
 * as one RaceProblem value and handed to api::RaceEngine.  Problem
 * construction performs no work; planning and execution happen inside
 * the engine, where same-shape problems share a synthesized fabric.
 */

#ifndef RACELOGIC_API_PROBLEM_H
#define RACELOGIC_API_PROBLEM_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rl/apps/dtw.h"
#include "rl/bio/affine.h"
#include "rl/bio/score_matrix.h"
#include "rl/bio/sequence.h"
#include "rl/core/cancel.h"
#include "rl/core/kernel_counters.h"
#include "rl/graph/dag.h"
#include "rl/graph/paths.h"
#include "rl/pangraph/variation_graph.h"

namespace racelogic::api {

/** The dynamic programs the engine knows how to race. */
enum class ProblemKind {
    PairwiseAlignment,     ///< global alignment over any ScoreMatrix
    AffineAlignment,       ///< Gotoh 3-layer lattice (open/extend gaps)
    Dtw,                   ///< dynamic time warping of two signals
    DagPath,               ///< shortest/longest path on an arbitrary DAG
    GeneralizedAlignment,  ///< Section 5 similarity-matrix DP (lambda)
    ThresholdScreen,       ///< Section 6 early-termination screening
    GraphAlign,            ///< read vs. pangenome variation graph
};

/** Human-readable kind name ("pairwise-alignment", ...). */
const char *problemKindName(ProblemKind kind);

/**
 * A declarative description of one race-logic workload.
 *
 * Build instances through the static factories only; which fields are
 * populated depends on the kind.  A RaceProblem is a value -- it owns
 * copies of its inputs and can outlive what it was built from.
 */
struct RaceProblem {
    ProblemKind kind = ProblemKind::PairwiseAlignment;

    /** @name Alignment-family fields
     *  PairwiseAlignment / AffineAlignment / GeneralizedAlignment /
     *  ThresholdScreen.
     * @{ */
    std::optional<bio::ScoreMatrix> matrix; ///< similarity or cost
    std::optional<bio::Sequence> a;         ///< first string (query)
    std::optional<bio::Sequence> b;         ///< second string (candidate)
    bio::AffineGapCosts gaps;               ///< AffineAlignment only
    bio::Score lambda = 1;                  ///< GeneralizedAlignment only
    bio::Score threshold = bio::kScoreInfinity; ///< ThresholdScreen only
    /** @} */

    /** @name Dtw fields @{ */
    std::vector<apps::Sample> x;
    std::vector<apps::Sample> y;
    /** @} */

    /** @name DagPath fields @{ */
    std::optional<graph::Dag> dag;
    std::vector<graph::NodeId> sources;
    graph::NodeId sink = graph::kNoNode;
    graph::Objective objective = graph::Objective::Shortest;
    /** @} */

    /**
     * GraphAlign only: the pangenome, shared so one loaded graph
     * serves many read problems without copying (and so the plan
     * cache can key on its topology, not the read).
     */
    std::shared_ptr<const pangraph::VariationGraph> vgraph;

    /**
     * Optional cooperative-cancellation token, polled by the
     * Behavioral bucket-sweep kernels (grid family and GraphAlign)
     * once per simulated clock cycle.  Non-owning: the caller keeps
     * the token alive across the solve.  A cancelled race returns a
     * typed abort -- completed = false, cancelled = true, score
     * kScoreInfinity -- instead of a wasted full solve.  Kinds that
     * race on other substrates (DagPath, Dtw, Affine lattices) and
     * the GateLevel cross-check path ignore it.  Not part of
     * shapeKey(): cancellation is a run-time property, not a fabric
     * shape.
     */
    const core::CancelToken *cancel = nullptr;

    /**
     * Optional kernel profiling sink, filled by the racing kernels
     * after each sweep (rl/core/kernel_counters.h).  Non-owning: the
     * caller keeps it alive across the solve, and -- like `cancel` --
     * it is a run-time property, not part of shapeKey().  A null
     * pointer costs nothing, and a non-null one cannot change the
     * raced result (counters are exported only after the drain).
     */
    core::KernelCounters *counters = nullptr;

    /**
     * Global alignment of (a, b) over `matrix`.  Cost matrices race
     * directly; similarity matrices (BLOSUM62, ...) are converted via
     * Section 5 and the score mapped back automatically.
     */
    static RaceProblem pairwiseAlignment(bio::ScoreMatrix matrix,
                                         bio::Sequence a, bio::Sequence b);

    /**
     * Affine-gap (Gotoh) alignment of (a, b): `costs` must be a
     * cost-kind substitution matrix (finite pair weights >= 1), gap
     * opening/extension from `gaps` (open >= extend >= 1).
     */
    static RaceProblem affineAlignment(bio::ScoreMatrix costs,
                                       bio::AffineGapCosts gaps,
                                       bio::Sequence a, bio::Sequence b);

    /** Dynamic time warping of two non-empty quantized signals. */
    static RaceProblem dtw(std::vector<apps::Sample> x,
                           std::vector<apps::Sample> y);

    /**
     * Shortest/longest path from `sources` (all at distance 0) to
     * `sink` on a weighted DAG (all weights >= 0).
     */
    static RaceProblem dagPath(graph::Dag dag,
                               std::vector<graph::NodeId> sources,
                               graph::NodeId sink,
                               graph::Objective objective);

    /**
     * Section 5 generalized DP: `similarity` is a Similarity-kind
     * matrix; `lambda` stretches the dynamic range before conversion.
     * The result reports the score in the original similarity units.
     */
    static RaceProblem generalizedAlignment(bio::ScoreMatrix similarity,
                                            bio::Sequence a,
                                            bio::Sequence b,
                                            bio::Score lambda = 1);

    /**
     * Section 6 screening: race `candidate` against `query` over
     * race-ready `costs`, aborting once `threshold` cycles elapse.
     * The verdict is exact (the race cost is monotone in time).
     */
    static RaceProblem thresholdScreen(bio::ScoreMatrix costs,
                                       bio::Score threshold,
                                       bio::Sequence query,
                                       bio::Sequence candidate);

    /**
     * Sequence-to-graph alignment: race `read` against a validated
     * acyclic variation graph.  Cost matrices race directly;
     * Similarity matrices are converted via Section 5 (`lambda`
     * scale) and require a rank-balanced graph.  A finite
     * `threshold` turns the solve into a Section 6 read-mapping
     * screen: the race aborts once `threshold` cycles elapse and the
     * read is rejected.  The engine caches one plan per (graph
     * topology, matrix) -- reads are runtime inputs.
     */
    static RaceProblem graphAlign(
        bio::ScoreMatrix matrix, bio::Sequence read,
        std::shared_ptr<const pangraph::VariationGraph> graph,
        bio::Score threshold = bio::kScoreInfinity,
        bio::Score lambda = 1);

    /**
     * The fabric-shape cache key of this problem: problems with equal
     * keys can share one planned fabric (strings/signals are runtime
     * inputs, not part of the hardware).  Kinds whose hardware bakes
     * in the instance data (Dtw, DagPath, AffineAlignment) get a
     * per-instance key and are never shared.
     */
    std::string shapeKey() const;
};

} // namespace racelogic::api

#endif // RACELOGIC_API_PROBLEM_H
