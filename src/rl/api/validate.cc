#include "rl/api/validate.h"

#include <limits>

#include "rl/bio/score_convert.h"
#include "rl/core/wavefront.h"
#include "rl/pangraph/alignment_graph.h"

namespace racelogic::api {

namespace {

/** a * b, saturating at UINT64_MAX (budget comparisons only). */
uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a != 0 && b > std::numeric_limits<uint64_t>::max() / a)
        return std::numeric_limits<uint64_t>::max();
    return a * b;
}

/** a + b, saturating at UINT64_MAX. */
uint64_t
satAdd(uint64_t a, uint64_t b)
{
    if (b > std::numeric_limits<uint64_t>::max() - a)
        return std::numeric_limits<uint64_t>::max();
    return a + b;
}

bool
gridFamilyKind(ProblemKind kind)
{
    return kind == ProblemKind::PairwiseAlignment ||
           kind == ProblemKind::GeneralizedAlignment ||
           kind == ProblemKind::ThresholdScreen;
}

/**
 * Upper bound on the compiled successor-CSR size of the graph: one
 * edge per source segment from position 0, label-internal chains,
 * and one edge per link.  Exact (mirrors compileValidated's emitter),
 * but computable without compiling.
 */
uint64_t
succEdgeCount(const pangraph::VariationGraph &graph)
{
    uint64_t chain = graph.totalLabelLength() >= graph.segmentCount()
                         ? graph.totalLabelLength() - graph.segmentCount()
                         : 0;
    return satAdd(satAdd(graph.sources().size(), chain),
                  graph.linkCount());
}

Status
checkSequenceAlphabet(const bio::Sequence &sequence,
                      const bio::ScoreMatrix &matrix, const char *which)
{
    if (!(sequence.alphabet() == matrix.alphabet()))
        return Status::error(ErrorCode::InvalidArgument, "sequence ",
                             which, " uses alphabet '",
                             sequence.alphabet().letters(),
                             "', the matrix uses '",
                             matrix.alphabet().letters(), "'");
    return Status();
}

/** Race-readiness of the matrix actually raced (converted when the
 *  input is a similarity matrix), under the wavefront calendar cap. */
Status
checkRaceMatrix(const bio::ScoreMatrix &matrix, bio::Score lambda)
{
    if (matrix.isCost())
        return matrix.validateRaceReady(core::kMaxWavefrontWeight,
                                        /*allowForbiddenPairs=*/true);
    // Section 5 conversion is total for any similarity matrix with
    // lambda >= 1 (the bias lifts every weight to >= 1); only the
    // calendar cap of the *converted* costs can still fail.
    bio::ShortestPathForm converted =
        bio::toShortestPathForm(matrix, lambda);
    return converted.costs.validateRaceReady(
        core::kMaxWavefrontWeight, /*allowForbiddenPairs=*/true);
}

} // namespace

uint64_t
gridCells(const RaceProblem &problem)
{
    switch (problem.kind) {
    case ProblemKind::PairwiseAlignment:
    case ProblemKind::GeneralizedAlignment:
    case ProblemKind::ThresholdScreen:
    case ProblemKind::AffineAlignment:
        return satMul(problem.a->size() + 1, problem.b->size() + 1);
    case ProblemKind::Dtw:
        return satMul(problem.x.size() + 1, problem.y.size() + 1);
    case ProblemKind::DagPath:
        return problem.dag->nodeCount();
    case ProblemKind::GraphAlign:
        return 0;
    }
    return 0;
}

uint64_t
productStates(const RaceProblem &problem)
{
    if (problem.kind != ProblemKind::GraphAlign)
        return 0;
    const uint64_t positions = problem.vgraph->totalLabelLength() + 1;
    return satAdd(satMul(problem.a->size() + 1, positions), 1);
}

Status
checkShape(const RaceProblem &problem)
{
    switch (problem.kind) {
    case ProblemKind::PairwiseAlignment:
    case ProblemKind::GeneralizedAlignment:
    case ProblemKind::ThresholdScreen:
    case ProblemKind::AffineAlignment:
        if (!problem.matrix)
            return Status::error(ErrorCode::InvalidArgument,
                                 problemKindName(problem.kind),
                                 " problem has no matrix");
        if (!problem.a || !problem.b)
            return Status::error(ErrorCode::InvalidArgument,
                                 problemKindName(problem.kind),
                                 " problem needs both sequences");
        return Status();
    case ProblemKind::Dtw:
        return Status();
    case ProblemKind::DagPath:
        if (!problem.dag)
            return Status::error(ErrorCode::InvalidArgument,
                                 "dag-path problem has no DAG");
        return Status();
    case ProblemKind::GraphAlign:
        if (!problem.matrix)
            return Status::error(ErrorCode::InvalidArgument,
                                 "graph-align problem has no matrix");
        if (!problem.a)
            return Status::error(ErrorCode::InvalidArgument,
                                 "graph-align problem has no read");
        if (!problem.vgraph)
            return Status::error(ErrorCode::InvalidArgument,
                                 "graph-align problem has no graph");
        return Status();
    }
    return Status::error(ErrorCode::InvalidArgument,
                         "unknown problem kind");
}

Status
checkBudgets(const RaceProblem &problem, const ProblemLimits &limits)
{
    if (Status shape = checkShape(problem); !shape.ok())
        return shape;

    if (problem.kind == ProblemKind::GraphAlign) {
        const uint64_t states = productStates(problem);
        // Hard kernel bounds, enforced even when the caller set no
        // budget: product states and scheduled arrivals are 32-bit
        // in both the fused kernel and the materialized product DAG.
        const uint64_t m = problem.a->size();
        const uint64_t positions =
            problem.vgraph->totalLabelLength() + 1;
        const uint64_t arrivals =
            satAdd(satMul(m, positions),
                   satMul(2 * m + 1, succEdgeCount(*problem.vgraph)));
        if (states >= static_cast<uint64_t>(graph::kNoNode) ||
            arrivals >= static_cast<uint64_t>(~uint32_t(0)))
            return Status::error(
                ErrorCode::ResourceExhausted, "product of a ", m,
                " bp read x ", positions, " graph positions has ",
                states, " states and up to ", arrivals,
                " scheduled arrivals, exceeding the kernel's 32-bit "
                "id space; split the pangenome or map shorter reads");
        if (limits.maxProductStates != 0 &&
            states > limits.maxProductStates)
            return Status::error(
                ErrorCode::ResourceExhausted, "product of a ", m,
                " bp read x ", positions, " graph positions has ",
                states, " states, over the ", limits.maxProductStates,
                "-state budget");
        return Status();
    }

    if (limits.maxGridCells != 0) {
        const uint64_t cells = gridCells(problem);
        if (cells > limits.maxGridCells)
            return Status::error(ErrorCode::Oversized, "a ",
                                 problemKindName(problem.kind),
                                 " lattice of ", cells,
                                 " cells is over the ",
                                 limits.maxGridCells, "-cell budget");
    }
    return Status();
}

Status
checkRuntimeInputs(const RaceProblem &problem)
{
    if (Status shape = checkShape(problem); !shape.ok())
        return shape;

    if (gridFamilyKind(problem.kind) ||
        problem.kind == ProblemKind::AffineAlignment) {
        if (Status s = checkSequenceAlphabet(*problem.a, *problem.matrix,
                                             "a");
            !s.ok())
            return s;
        if (Status s = checkSequenceAlphabet(*problem.b, *problem.matrix,
                                             "b");
            !s.ok())
            return s;
    }

    switch (problem.kind) {
    case ProblemKind::PairwiseAlignment:
        if (!problem.matrix->isCost() && problem.lambda < 1)
            return Status::error(ErrorCode::InvalidArgument,
                                 "lambda must be a positive integer "
                                 "scale (got ", problem.lambda, ")");
        return Status();
    case ProblemKind::GeneralizedAlignment:
        if (problem.matrix->isCost())
            return Status::error(ErrorCode::InvalidArgument,
                                 "generalized alignment converts a "
                                 "Similarity matrix; race a Cost "
                                 "matrix as a pairwise alignment");
        if (problem.lambda < 1)
            return Status::error(ErrorCode::InvalidArgument,
                                 "lambda must be a positive integer "
                                 "scale (got ", problem.lambda, ")");
        return Status();
    case ProblemKind::ThresholdScreen:
        if (!problem.matrix->isCost())
            return Status::error(ErrorCode::InvalidArgument,
                                 "threshold screening races a "
                                 "Cost-kind matrix");
        if (problem.threshold < 0 ||
            problem.threshold >= bio::kScoreInfinity)
            return Status::error(ErrorCode::InvalidArgument,
                                 "screening needs a finite, "
                                 "non-negative threshold (got ",
                                 problem.threshold, ")");
        return Status();
    case ProblemKind::AffineAlignment:
        if (!problem.matrix->isCost())
            return Status::error(ErrorCode::InvalidArgument,
                                 "affine alignment needs a Cost-kind "
                                 "substitution matrix");
        if (problem.gaps.extend < 1 ||
            problem.gaps.open < problem.gaps.extend)
            return Status::error(ErrorCode::InvalidArgument,
                                 "affine gaps need open >= extend >= 1 "
                                 "(got open ", problem.gaps.open,
                                 ", extend ", problem.gaps.extend, ")");
        return Status();
    case ProblemKind::Dtw:
        if (problem.x.empty() || problem.y.empty())
            return Status::error(ErrorCode::InvalidArgument,
                                 "DTW of an empty signal");
        return Status();
    case ProblemKind::DagPath: {
        const size_t n = problem.dag->nodeCount();
        if (problem.sources.empty())
            return Status::error(ErrorCode::InvalidArgument,
                                 "DAG path needs at least one source");
        for (graph::NodeId s : problem.sources)
            if (s >= n)
                return Status::error(ErrorCode::InvalidArgument,
                                     "DAG path source ", s,
                                     " out of range (", n, " nodes)");
        if (problem.sink >= n)
            return Status::error(ErrorCode::InvalidArgument,
                                 "DAG path sink ", problem.sink,
                                 " out of range (", n, " nodes)");
        return Status();
    }
    case ProblemKind::GraphAlign:
        if (Status s = checkSequenceAlphabet(*problem.a, *problem.matrix,
                                             "read");
            !s.ok())
            return s;
        if (problem.matrix->isCost()) {
            if (problem.lambda != 1)
                return Status::error(ErrorCode::InvalidArgument,
                                     "lambda scales similarity "
                                     "conversion only");
        } else if (problem.lambda < 1) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "lambda must be a positive integer "
                                 "scale (got ", problem.lambda, ")");
        }
        if (problem.threshold != bio::kScoreInfinity &&
            (problem.threshold < 0 || !problem.matrix->isCost()))
            return Status::error(ErrorCode::InvalidArgument,
                                 "graph-align thresholds are "
                                 "race-cycle budgets over Cost-kind "
                                 "matrices");
        return Status();
    }
    return Status::error(ErrorCode::InvalidArgument,
                         "unknown problem kind");
}

Status
validateProblem(const RaceProblem &problem, const ProblemLimits &limits)
{
    if (Status s = checkBudgets(problem, limits); !s.ok())
        return s;
    if (Status s = checkRuntimeInputs(problem); !s.ok())
        return s;

    switch (problem.kind) {
    case ProblemKind::PairwiseAlignment:
    case ProblemKind::GeneralizedAlignment:
    case ProblemKind::ThresholdScreen:
        // The plan's RaceGridAligner races the (possibly converted)
        // matrix on the bucketed wavefront kernel; enforce its weight
        // discipline here instead of asserting inside.
        return checkRaceMatrix(*problem.matrix, problem.lambda);
    case ProblemKind::AffineAlignment: {
        // The 3-layer lattice feeds raceDag(), which tolerates any
        // non-negative weight (oversized graphs fall back to the
        // event kernel) -- but pair weights must be costs: finite
        // entries >= 0, kScoreInfinity meaning "no edge".
        const bio::ScoreMatrix &costs = *problem.matrix;
        const size_t n = costs.alphabet().size();
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < n; ++j) {
                const bio::Score w =
                    costs.pair(static_cast<bio::Symbol>(i),
                               static_cast<bio::Symbol>(j));
                if (w < 0)
                    return Status::error(
                        ErrorCode::InvalidArgument,
                        "affine pair weight '",
                        costs.alphabet().letter(
                            static_cast<bio::Symbol>(i)),
                        "' x '",
                        costs.alphabet().letter(
                            static_cast<bio::Symbol>(j)),
                        "' is negative (", w,
                        "); race costs are delays");
            }
        return Status();
    }
    case ProblemKind::Dtw:
        return Status();
    case ProblemKind::DagPath: {
        for (const graph::Edge &e : problem.dag->edges())
            if (e.weight < 0)
                return Status::error(ErrorCode::InvalidArgument,
                                     "DAG edge ", e.from, "->", e.to,
                                     " has negative weight ", e.weight,
                                     "; race delays are non-negative");
        if (!problem.dag->isAcyclic())
            return Status::error(ErrorCode::Unsupported,
                                 "DAG path graph contains a cycle; "
                                 "the race substrate is acyclic");
        return Status();
    }
    case ProblemKind::GraphAlign: {
        // Mirror pangraph::GraphAligner::tryMake() without compiling:
        // graph validity, rank balance under similarity, and
        // race-readiness of the matrix actually raced.
        if (Status s = problem.vgraph->checkValid(); !s.ok())
            return s;
        if (!(problem.vgraph->alphabet() ==
              problem.matrix->alphabet()))
            return Status::error(ErrorCode::InvalidArgument,
                                 "graph uses alphabet '",
                                 problem.vgraph->alphabet().letters(),
                                 "', matrix uses '",
                                 problem.matrix->alphabet().letters(),
                                 "'");
        if (!problem.matrix->isCost()) {
            auto range = problem.vgraph->spelledLengthRange();
            if (range.first != range.second)
                return Status::error(
                    ErrorCode::Unsupported,
                    "similarity matrices need a rank-balanced graph "
                    "(every source-to-sink walk the same length; "
                    "got ", range.first, "..", range.second,
                    "); race a Cost-kind matrix instead");
        }
        return checkRaceMatrix(*problem.matrix, problem.lambda);
    }
    }
    return Status::error(ErrorCode::InvalidArgument,
                         "unknown problem kind");
}

} // namespace racelogic::api
