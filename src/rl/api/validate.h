/**
 * @file
 * Fallible validation of RaceProblems: the typed rule book behind
 * RaceEngine::trySolve() and the serve layer's admission control.
 *
 * Three tiers, by cost:
 *
 *  - checkShape():   O(1) field presence -- is every field the
 *                    problem's kind dereferences actually populated?
 *                    Nothing else (not even shapeKey()) is safe to
 *                    call before this passes.
 *  - checkBudgets(): O(1) resource admission -- the grid-cell /
 *                    product-state size of the race the problem asks
 *                    for, against caller-supplied ceilings plus the
 *                    kernels' hard 32-bit id-space bounds.  Parse-time
 *                    caps report Oversized; compute/memory budgets
 *                    report ResourceExhausted.
 *  - validateProblem(): the full deep check -- everything the fatal
 *                    solve path asserts, returned as a typed Status
 *                    instead.  Matrix race-readiness under the
 *                    wavefront calendar cap, Section 5 conversion
 *                    preconditions, graph validity and rank balance,
 *                    DAG id ranges and weight signs.  A problem this
 *                    accepts cannot trip an input-facing rl_fatal /
 *                    rl_assert anywhere down the solve path.
 *
 * The serve daemon calls checkBudgets() per decoded problem before
 * queueing (admission control) and RaceEngine::validate() before
 * racing; the anti-drift suite asserts that every wire-decodable
 * request passes validateProblem() -- one source of truth, enforced
 * both ways.
 */

#ifndef RACELOGIC_API_VALIDATE_H
#define RACELOGIC_API_VALIDATE_H

#include <cstdint>

#include "rl/api/problem.h"
#include "rl/util/status.h"

namespace racelogic::api {

/**
 * Resource ceilings for admission control; 0 = unlimited.  The hard
 * 32-bit id-space bounds of the kernels are enforced regardless.
 */
struct ProblemLimits {
    /**
     * Largest (|a|+1) x (|b|+1) lattice a grid-family, affine, or DTW
     * problem may race (DagPath counts its nodes).  Exceeding it is
     * an admission failure: ErrorCode::Oversized.
     */
    uint64_t maxGridCells = 0;

    /**
     * Largest (m+1) x (positions) + 1 product a GraphAlign problem
     * may race.  Exceeding it is a compute-budget failure:
     * ErrorCode::ResourceExhausted.
     */
    uint64_t maxProductStates = 0;
};

/**
 * Cells of the lattice the problem would race: (|a|+1) * (|b|+1) for
 * the grid family and affine (times 3 layers there, reported as base
 * cells), (|x|+1) * (|y|+1) for DTW, node count for DagPath, 0 for
 * GraphAlign (see productStates()).  Saturates at UINT64_MAX.
 * Precondition: checkShape() passed.
 */
uint64_t gridCells(const RaceProblem &problem);

/**
 * States of the (read x graph) product DAG a GraphAlign problem
 * would race: (|read|+1) * positions + 1; 0 for every other kind.
 * Saturates at UINT64_MAX.  Precondition: checkShape() passed.
 */
uint64_t productStates(const RaceProblem &problem);

/**
 * O(1) field-presence check: every optional the kind's solve path
 * (and shapeKey()) dereferences must be populated.  InvalidArgument
 * with the missing field's name otherwise.
 */
Status checkShape(const RaceProblem &problem);

/**
 * O(1) admission control: checkShape(), then the problem's race size
 * against `limits` and the kernels' hard 32-bit id-space bounds
 * (GraphAlign product states and scheduled-arrival count must fit
 * uint32 even when the limits are unlimited).  Grid-cell violations
 * are Oversized; product-state and id-space violations are
 * ResourceExhausted.
 */
Status checkBudgets(const RaceProblem &problem,
                    const ProblemLimits &limits);

/**
 * The full deep check: shape, budgets, then every input-facing
 * precondition of the solve path for the problem's kind, as typed
 * Status.  O(alphabet^2) for matrix validation, O(V+E) for graph /
 * DAG structure -- run it per plan build, not per cached-plan hit
 * (RaceEngine::validate() makes that split automatically).
 */
Status validateProblem(const RaceProblem &problem,
                       const ProblemLimits &limits = ProblemLimits{});

/**
 * The cheap per-request half of validateProblem(): runtime-input
 * checks that must hold even when a cached plan skips the deep half
 * -- sequence alphabets against the matrix, kind/matrix-kind
 * agreement, lambda and threshold rules, signal non-emptiness, DAG
 * id ranges.  Every check here is O(1) or O(alphabet).
 */
Status checkRuntimeInputs(const RaceProblem &problem);

} // namespace racelogic::api

#endif // RACELOGIC_API_VALIDATE_H
