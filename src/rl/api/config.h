/**
 * @file
 * EngineConfig: how the engine realizes and prices a race.
 *
 * One configuration object selects the execution backend (behavioral
 * event simulation, synthesized gate-level fabric, or the systolic
 * baseline), the Section 6 early-termination threshold, the Section 5
 * delay-element encoding, the technology model used for energy/area
 * estimates, and the batch fabric pool.
 */

#ifndef RACELOGIC_API_CONFIG_H
#define RACELOGIC_API_CONFIG_H

#include <cstddef>
#include <cstdint>

#include "rl/bio/score_matrix.h"
#include "rl/core/generalized.h"
#include "rl/tech/cell_library.h"

namespace racelogic::api {

/** Execution strategy for RaceEngine. */
enum class BackendKind {
    /** Event-driven temporal simulation (fast, exact, default). */
    Behavioral,

    /**
     * Additionally synthesize the netlist for the problem's shape and
     * run the race on real gates, cross-checking the behavioral
     * result.  Slower, but exercises the synthesizable artifact; the
     * per-shape fabric is cached and reused across solves.
     */
    GateLevel,

    /**
     * The Lipton-Lopresti linear systolic array -- the paper's
     * baseline.  Only pairwise alignment / threshold screening over
     * the Fig. 2b cost-matrix family is representable (and screening
     * cannot abort early: the array always runs to completion).
     */
    Systolic,
};

/** Human-readable backend name. */
const char *backendKindName(BackendKind backend);

/** Engine-wide configuration; value type with sane defaults. */
struct EngineConfig {
    BackendKind backend = BackendKind::Behavioral;

    /**
     * Engine-wide early-termination threshold (Section 6), applied to
     * every alignment-family solve: races costing more than this are
     * reported with accepted = false and their fabric-busy time
     * clamped to the threshold.  kScoreInfinity (default) disables
     * it.  ThresholdScreen problems carry their own threshold, which
     * takes precedence.
     */
    bio::Score threshold = bio::kScoreInfinity;

    /** Delay-element encoding for synthesized generalized cells. */
    core::DelayEncoding encoding = core::DelayEncoding::Binary;

    /** Technology model pricing results; never null. */
    const tech::CellLibrary *library = &tech::CellLibrary::amis();

    /** Attach energy/area estimates to results (costs a little). */
    bool withEstimates = true;

    /**
     * Race ThresholdScreen solves with the threshold as the kernel's
     * early-termination horizon (Section 6): the behavioral
     * simulation stops at the threshold cycle exactly where the
     * hardware abort counter would, instead of draining the grid and
     * clamping afterwards.  Verdicts, scores, and busy cycles are
     * identical either way (arrival times are monotone), but the
     * simulation detail of a screen is truncated at the horizon:
     * rejected results report latencyCycles == threshold (the full
     * race never ran), and even accepted results' arrival grid /
     * cellsFired / events omit cells that would only have fired past
     * the threshold.  Disable for measurement runs that want fully
     * drained grids or the full-race latency of rejected candidates
     * (BatchOutcome::fullRaceCycles / speedup).
     */
    bool earlyTerminate = true;

    /** @name Batch fabric pool (solveBatch screening dispatch) @{ */

    /** Parallel fabrics instantiated by the batch dispatcher. */
    size_t fabricCount = 4;

    /** Cycles to reset a fabric between comparisons. */
    uint64_t resetCycles = 1;

    /** @} */

    /**
     * Simulation worker threads for solveBatch()/screen() on the
     * Behavioral backend: grid-family batches are raced in parallel
     * on a util::ThreadPool, with results in input order and
     * bit-identical to a serial run (each comparison is independent
     * and the kernel is deterministic).  0 = one per hardware
     * thread; 1 = serial.  Other backends and problem kinds always
     * solve serially.
     */
    size_t workerThreads = 0;

    /**
     * Plans retained in the shape-keyed cache before the least
     * recently used one is evicted.  0 disables caching entirely.
     */
    size_t planCacheCapacity = 64;

    /**
     * Largest (read+1) x (graph positions) + 1 product a GraphAlign
     * problem may race; 0 (default) = unlimited.  validate() /
     * trySolve() reject larger problems with a typed
     * ResourceExhausted instead of attempting an allocation that
     * scales as read x pangenome -- the serve daemon's defense
     * against one request OOM-killing a shard.  The kernels' hard
     * 32-bit id-space bounds are enforced even when unlimited.
     */
    uint64_t maxProductStates = 0;
};

} // namespace racelogic::api

#endif // RACELOGIC_API_CONFIG_H
