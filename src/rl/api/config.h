/**
 * @file
 * EngineConfig: how the engine realizes and prices a race.
 *
 * One configuration object selects the execution backend (behavioral
 * event simulation, synthesized gate-level fabric, or the systolic
 * baseline), the Section 6 early-termination threshold, the Section 5
 * delay-element encoding, the technology model used for energy/area
 * estimates, and the batch fabric pool.
 */

#ifndef RACELOGIC_API_CONFIG_H
#define RACELOGIC_API_CONFIG_H

#include <cstddef>
#include <cstdint>

#include "rl/bio/score_matrix.h"
#include "rl/core/generalized.h"
#include "rl/tech/cell_library.h"

namespace racelogic::api {

/** Execution strategy for RaceEngine. */
enum class BackendKind {
    /** Event-driven temporal simulation (fast, exact, default). */
    Behavioral,

    /**
     * Additionally synthesize the netlist for the problem's shape and
     * run the race on real gates, cross-checking the behavioral
     * result.  Slower, but exercises the synthesizable artifact; the
     * per-shape fabric is cached and reused across solves.
     */
    GateLevel,

    /**
     * The Lipton-Lopresti linear systolic array -- the paper's
     * baseline.  Only pairwise alignment / threshold screening over
     * the Fig. 2b cost-matrix family is representable (and screening
     * cannot abort early: the array always runs to completion).
     */
    Systolic,
};

/** Human-readable backend name. */
const char *backendKindName(BackendKind backend);

/** Engine-wide configuration; value type with sane defaults. */
struct EngineConfig {
    BackendKind backend = BackendKind::Behavioral;

    /**
     * Engine-wide early-termination threshold (Section 6), applied to
     * every alignment-family solve: races costing more than this are
     * reported with accepted = false and their fabric-busy time
     * clamped to the threshold.  kScoreInfinity (default) disables
     * it.  ThresholdScreen problems carry their own threshold, which
     * takes precedence.
     */
    bio::Score threshold = bio::kScoreInfinity;

    /** Delay-element encoding for synthesized generalized cells. */
    core::DelayEncoding encoding = core::DelayEncoding::Binary;

    /** Technology model pricing results; never null. */
    const tech::CellLibrary *library = &tech::CellLibrary::amis();

    /** Attach energy/area estimates to results (costs a little). */
    bool withEstimates = true;

    /** @name Batch fabric pool (solveBatch screening dispatch) @{ */

    /** Parallel fabrics instantiated by the batch dispatcher. */
    size_t fabricCount = 4;

    /** Cycles to reset a fabric between comparisons. */
    uint64_t resetCycles = 1;

    /** @} */

    /**
     * Plans retained in the shape-keyed cache before the least
     * recently used one is evicted.  0 disables caching entirely.
     */
    size_t planCacheCapacity = 64;
};

} // namespace racelogic::api

#endif // RACELOGIC_API_CONFIG_H
