#include "rl/api/problem.h"

#include <sstream>

#include "rl/util/fnv.h"
#include "rl/util/logging.h"

namespace racelogic::api {

const char *
problemKindName(ProblemKind kind)
{
    switch (kind) {
    case ProblemKind::PairwiseAlignment: return "pairwise-alignment";
    case ProblemKind::AffineAlignment: return "affine-alignment";
    case ProblemKind::Dtw: return "dtw";
    case ProblemKind::DagPath: return "dag-path";
    case ProblemKind::GeneralizedAlignment: return "generalized-alignment";
    case ProblemKind::ThresholdScreen: return "threshold-screen";
    case ProblemKind::GraphAlign: return "graph-align";
    }
    return "unknown";
}

namespace {

using util::Fnv;

/** The hardware identity of a score matrix (two fabrics are
 *  interchangeable iff this matches) -- the shared
 *  bio::ScoreMatrix::fingerprint(), kept under its old local name so
 *  the key builders below read unchanged. */
uint64_t
matrixFingerprint(const bio::ScoreMatrix &matrix)
{
    return matrix.fingerprint();
}

/** Content hash of a sequence (symbols are baked into affine plans). */
uint64_t
sequenceFingerprint(const bio::Sequence &sequence)
{
    Fnv f;
    f.mix(sequence.size());
    for (bio::Symbol s : sequence.symbols())
        f.mix(s);
    return f.h;
}

/** Content hash of a signal. */
uint64_t
signalFingerprint(const std::vector<apps::Sample> &signal)
{
    Fnv f;
    f.mix(signal.size());
    for (apps::Sample s : signal)
        f.mix(static_cast<uint64_t>(s));
    return f.h;
}

/** Content hash of a DAG: its full edge list (weights included). */
uint64_t
dagFingerprint(const graph::Dag &dag,
               const std::vector<graph::NodeId> &sources)
{
    Fnv f;
    f.mix(dag.nodeCount());
    for (const graph::Edge &e : dag.edges()) {
        f.mix(e.from);
        f.mix(e.to);
        f.mix(static_cast<uint64_t>(e.weight));
    }
    for (graph::NodeId s : sources)
        f.mix(s);
    return f.h;
}

} // namespace

RaceProblem
RaceProblem::pairwiseAlignment(bio::ScoreMatrix matrix, bio::Sequence a,
                               bio::Sequence b)
{
    RaceProblem p;
    p.kind = ProblemKind::PairwiseAlignment;
    p.matrix = std::move(matrix);
    p.a = std::move(a);
    p.b = std::move(b);
    return p;
}

RaceProblem
RaceProblem::affineAlignment(bio::ScoreMatrix costs,
                             bio::AffineGapCosts gaps, bio::Sequence a,
                             bio::Sequence b)
{
    rl_assert(costs.isCost(),
              "affine alignment needs a Cost-kind substitution matrix");
    RaceProblem p;
    p.kind = ProblemKind::AffineAlignment;
    p.matrix = std::move(costs);
    p.gaps = gaps;
    p.a = std::move(a);
    p.b = std::move(b);
    return p;
}

RaceProblem
RaceProblem::dtw(std::vector<apps::Sample> x, std::vector<apps::Sample> y)
{
    rl_assert(!x.empty() && !y.empty(), "DTW of an empty signal");
    RaceProblem p;
    p.kind = ProblemKind::Dtw;
    p.x = std::move(x);
    p.y = std::move(y);
    return p;
}

RaceProblem
RaceProblem::dagPath(graph::Dag dag, std::vector<graph::NodeId> sources,
                     graph::NodeId sink, graph::Objective objective)
{
    rl_assert(!sources.empty(), "DAG path needs at least one source");
    rl_assert(sink < dag.nodeCount(), "DAG path sink out of range");
    RaceProblem p;
    p.kind = ProblemKind::DagPath;
    p.dag = std::move(dag);
    p.sources = std::move(sources);
    p.sink = sink;
    p.objective = objective;
    return p;
}

RaceProblem
RaceProblem::generalizedAlignment(bio::ScoreMatrix similarity,
                                  bio::Sequence a, bio::Sequence b,
                                  bio::Score lambda)
{
    rl_assert(!similarity.isCost(),
              "generalized alignment converts a Similarity matrix; "
              "race a Cost matrix with pairwiseAlignment()");
    rl_assert(lambda >= 1, "lambda must be a positive integer scale");
    RaceProblem p;
    p.kind = ProblemKind::GeneralizedAlignment;
    p.matrix = std::move(similarity);
    p.lambda = lambda;
    p.a = std::move(a);
    p.b = std::move(b);
    return p;
}

RaceProblem
RaceProblem::thresholdScreen(bio::ScoreMatrix costs, bio::Score threshold,
                             bio::Sequence query, bio::Sequence candidate)
{
    rl_assert(costs.isCost(),
              "threshold screening races a Cost-kind matrix");
    rl_assert(threshold >= 0 && threshold < bio::kScoreInfinity,
              "screening needs a finite, non-negative threshold");
    RaceProblem p;
    p.kind = ProblemKind::ThresholdScreen;
    p.matrix = std::move(costs);
    p.threshold = threshold;
    p.a = std::move(query);
    p.b = std::move(candidate);
    return p;
}

RaceProblem
RaceProblem::graphAlign(bio::ScoreMatrix matrix, bio::Sequence read,
                        std::shared_ptr<const pangraph::VariationGraph> graph,
                        bio::Score threshold, bio::Score lambda)
{
    rl_assert(graph != nullptr, "graph alignment needs a graph");
    rl_assert(threshold == bio::kScoreInfinity ||
                  (threshold >= 0 && matrix.isCost()),
              "graph-align thresholds are race-cycle budgets over "
              "Cost-kind matrices");
    rl_assert(lambda >= 1, "lambda must be a positive integer scale");
    RaceProblem p;
    p.kind = ProblemKind::GraphAlign;
    p.matrix = std::move(matrix);
    p.a = std::move(read);
    p.vgraph = std::move(graph);
    p.threshold = threshold;
    p.lambda = lambda;
    return p;
}

std::string
RaceProblem::shapeKey() const
{
    std::ostringstream key;
    key << problemKindName(kind);
    switch (kind) {
    case ProblemKind::PairwiseAlignment:
    case ProblemKind::GeneralizedAlignment:
    case ProblemKind::ThresholdScreen:
        // The fabric is determined by the matrix and the grid size;
        // the strings are primary inputs and the threshold is a cycle
        // budget, so neither is part of the hardware shape.
        key << '/' << a->size() << 'x' << b->size() << '/'
            << std::hex << matrixFingerprint(*matrix) << std::dec << '/'
            << lambda;
        break;
    case ProblemKind::AffineAlignment:
        // The 3-layer lattice bakes the pair weights of the actual
        // symbols into its edges, so the key covers the symbols too
        // and plans are per-instance.
        key << '/' << a->size() << 'x' << b->size() << '/'
            << std::hex << matrixFingerprint(*matrix) << ':'
            << sequenceFingerprint(*a) << ':' << sequenceFingerprint(*b)
            << std::dec << '/' << gaps.open << ':' << gaps.extend;
        break;
    case ProblemKind::Dtw:
        // Sample values weight the lattice edges: per-instance key.
        key << '/' << x.size() << 'x' << y.size() << '/' << std::hex
            << signalFingerprint(x) << ':' << signalFingerprint(y)
            << std::dec;
        break;
    case ProblemKind::DagPath:
        // Edge weights become the delay chains: per-instance key.
        key << '/' << dag->nodeCount() << 'n' << dag->edgeCount() << 'e'
            << '/' << std::hex << dagFingerprint(*dag, sources)
            << std::dec << '/' << sink << '/'
            << (objective == graph::Objective::Shortest ? "min" : "max");
        break;
    case ProblemKind::GraphAlign:
        // The plan compiles the pangenome's character-level view and
        // the converted matrix; the read is a runtime input and the
        // threshold a cycle budget, so neither is part of the key --
        // one loaded graph serves every read.
        key << '/' << vgraph->segmentCount() << 's'
            << vgraph->linkCount() << 'l' << '/' << std::hex
            << vgraph->fingerprint() << ':' << matrixFingerprint(*matrix)
            << std::dec << '/' << lambda;
        break;
    }
    return key.str();
}

} // namespace racelogic::api
