/**
 * @file
 * RaceResult: the one result shape every workload comes back in.
 *
 * Whatever the problem kind and backend, a solve yields the score in
 * the caller's own semantics, the raw race outcome (delay = converted
 * cost), the hardware latency, the arrival detail (grid or per-node),
 * and -- when the technology model applies -- energy/area/wall-time
 * estimates priced by rl/tech.
 */

#ifndef RACELOGIC_API_RESULT_H
#define RACELOGIC_API_RESULT_H

#include <optional>
#include <string>
#include <vector>

#include "rl/api/config.h"
#include "rl/api/problem.h"
#include "rl/core/race_grid.h"
#include "rl/core/temporal.h"
#include "rl/sim/event_queue.h"
#include "rl/util/grid.h"

namespace racelogic::api {

/** Technology-model estimates for one solve (rl/tech). */
struct HardwareEstimate {
    /** Race wall time under the library's race clock (ns). */
    double wallTimeNs = 0.0;

    /** Fabric area (um^2); 0 when no fabric model applies. */
    double areaUm2 = 0.0;

    /**
     * Eq. 3 energy (J) for the actual race duration: clock-pin
     * charging of the fabric's DFFs over latencyCycles plus the
     * per-comparison data term.  0 when no fabric model applies.
     */
    double energyJ = 0.0;

    /** @name Synthesized-netlist inventory (GateLevel backend only)
     * @{ */
    size_t gateCount = 0; ///< total gates in the raced netlist
    size_t dffCount = 0;  ///< DFF delay elements among them
    /** @} */
};

/** Outcome of one RaceEngine solve. */
struct RaceResult {
    ProblemKind kind = ProblemKind::PairwiseAlignment;
    BackendKind backend = BackendKind::Behavioral;

    /**
     * The answer in the caller's semantics: alignment score in the
     * supplied matrix's units, DTW distance, DAG path weight, ...
     * kScoreInfinity when the race did not complete (screen aborted /
     * sink unreachable).
     */
    bio::Score score = 0;

    /** The raw race outcome: sink arrival cycle (converted cost). */
    bio::Score racedCost = 0;

    /** Race duration in clock cycles. */
    sim::Tick latencyCycles = 0;

    /** Events processed by the behavioral simulation. */
    uint64_t events = 0;

    /** True iff the sink fired (false: aborted screen / unreachable). */
    bool completed = true;

    /**
     * True iff a RaceProblem::cancel token stopped the race before
     * the sink fired (deadline expiry, caller gave up).  A cancelled
     * result is a typed abort: completed = false, accepted = false,
     * score kScoreInfinity, latencyCycles the last cycle swept.
     */
    bool cancelled = false;

    /**
     * Threshold verdict: true unless an early-termination threshold
     * was in force and the race exceeded it.
     */
    bool accepted = true;

    /**
     * Cycles the fabric was actually busy: latencyCycles, clamped to
     * the threshold when one aborted the race (Section 6).
     */
    sim::Tick cyclesUsed = 0;

    /**
     * Grid-problem detail: firing cycle of every edit-graph node
     * (rows+1 x cols+1), kTickInfinity where the signal never
     * arrived.  Empty for non-grid kinds.
     */
    util::Grid<sim::Tick> arrival;

    /**
     * DAG-problem detail (Dtw / DagPath / AffineAlignment /
     * GraphAlign): firing time of every node.  For GraphAlign this
     * is the product DAG in AlignmentGraph::node() layout --
     * RaceEngine::graphMapping() reconstructs the (walk, CIGAR)
     * mapping from it without re-racing; rejected screening reads
     * drop it (no mapping exists, and screening batches must not
     * scale as reads x product size).  Empty for grid kinds.
     */
    std::vector<core::TemporalValue> nodeArrival;

    /** Nodes in the raced structure (grid cells or DAG nodes). */
    size_t nodes = 0;

    /** Nodes that fired during the race (the paper's activity story). */
    size_t cellsFired = 0;

    /** Technology-model pricing (EngineConfig::withEstimates). */
    std::optional<HardwareEstimate> estimate;

    /** Cells whose arrival time equals `cycle` (Fig. 6 wavefront). */
    size_t wavefrontSize(sim::Tick cycle) const;

    /**
     * Render the wavefront at `cycle` like Fig. 6: '#' fired, 'o'
     * firing now, '.' dark.  Empty string for non-grid kinds.
     */
    std::string wavefrontPicture(sim::Tick cycle) const;

    /**
     * Render the grid arrival table like Fig. 4c (one row per line,
     * right-aligned numbers, '.' for never-fired cells).  Empty
     * string for non-grid kinds.
     */
    std::string arrivalTable() const;

    /** One-line human-readable summary of the solve. */
    std::string describe() const;

    /**
     * The legacy core::RaceGridResult view of a grid solve (for
     * callers feeding rl/core analyses such as clock gating).
     */
    core::RaceGridResult gridDetail() const;
};

} // namespace racelogic::api

#endif // RACELOGIC_API_RESULT_H
