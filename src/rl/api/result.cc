#include "rl/api/result.h"

#include <sstream>

#include "rl/core/race_grid.h"

namespace racelogic::api {

const char *
backendKindName(BackendKind backend)
{
    switch (backend) {
    case BackendKind::Behavioral: return "behavioral";
    case BackendKind::GateLevel: return "gate-level";
    case BackendKind::Systolic: return "systolic";
    }
    return "unknown";
}

core::RaceGridResult
RaceResult::gridDetail() const
{
    core::RaceGridResult view;
    view.score = racedCost;
    view.latencyCycles = latencyCycles;
    view.arrival = arrival;
    view.cellsFired = cellsFired;
    view.events = events;
    return view;
}

size_t
RaceResult::wavefrontSize(sim::Tick cycle) const
{
    return core::wavefrontSizeOf(arrival, cycle);
}

std::string
RaceResult::arrivalTable() const
{
    if (arrival.rows() == 0)
        return "";
    return core::renderArrivalTable(arrival);
}

std::string
RaceResult::wavefrontPicture(sim::Tick cycle) const
{
    if (arrival.rows() == 0)
        return "";
    return core::renderWavefrontPicture(arrival, cycle);
}

std::string
RaceResult::describe() const
{
    std::ostringstream out;
    out << problemKindName(kind) << " [" << backendKindName(backend)
        << "]: ";
    if (!completed) {
        out << "aborted after " << cyclesUsed << " cycles (score > "
            << "threshold)";
    } else {
        out << "score " << score << " in " << latencyCycles
            << " cycles";
        if (!accepted)
            out << " (rejected by threshold)";
    }
    if (estimate && estimate->wallTimeNs > 0.0) {
        out << ", " << estimate->wallTimeNs << " ns";
        if (estimate->energyJ > 0.0)
            out << ", " << estimate->energyJ * 1e12 << " pJ";
    }
    return out.str();
}

} // namespace racelogic::api
