/**
 * @file
 * Unit tests for rl/bio alphabets, sequences, and the mutation /
 * screening workload generators.
 */

#include <gtest/gtest.h>

#include "rl/bio/alphabet.h"
#include "rl/bio/sequence.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::Sequence;

// ----------------------------------------------------------- alphabet

TEST(Alphabet, DnaBasics)
{
    const Alphabet &dna = Alphabet::dna();
    EXPECT_EQ(dna.size(), 4u);
    EXPECT_EQ(dna.bitsPerSymbol(), 2u);
    EXPECT_EQ(dna.letter(dna.encode('G')), 'G');
    EXPECT_TRUE(dna.contains('T'));
    EXPECT_FALSE(dna.contains('U'));
}

TEST(Alphabet, ProteinBasics)
{
    const Alphabet &aa = Alphabet::protein();
    EXPECT_EQ(aa.size(), 20u);
    EXPECT_EQ(aa.bitsPerSymbol(), 5u);
    EXPECT_EQ(aa.letters(), "ARNDCQEGHILKMFPSTWYV");
}

TEST(Alphabet, RoundTripEncoding)
{
    const Alphabet &dna = Alphabet::dna();
    std::string text = "GATTACA";
    EXPECT_EQ(dna.decodeString(dna.encodeString(text)), text);
}

TEST(Alphabet, BinaryAlphabetSingleBit)
{
    EXPECT_EQ(Alphabet::binary().bitsPerSymbol(), 1u);
}

TEST(AlphabetDeath, UnknownLetter)
{
    EXPECT_EXIT(Alphabet::dna().encode('Z'),
                ::testing::ExitedWithCode(1), "not in alphabet");
}

TEST(AlphabetDeath, DuplicateLetters)
{
    EXPECT_EXIT(Alphabet("AAB"), ::testing::ExitedWithCode(1),
                "duplicate");
}

TEST(Alphabet, TryMakeRejectsDuplicateLettersTyped)
{
    auto alphabet = Alphabet::tryMake("AAB");
    ASSERT_FALSE(alphabet.ok());
    EXPECT_EQ(alphabet.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(alphabet.status().message().find("duplicate"),
              std::string::npos);
}

TEST(Sequence, TryEncodeRejectsForeignLettersTyped)
{
    auto seq = Sequence::tryEncode(Alphabet::dna(), "ACGU");
    ASSERT_FALSE(seq.ok());
    EXPECT_EQ(seq.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(seq.status().message().find("not in alphabet"),
              std::string::npos);
}

// ----------------------------------------------------------- sequence

TEST(Sequence, FromString)
{
    Sequence s(Alphabet::dna(), "ACTGAGA");
    EXPECT_EQ(s.size(), 7u);
    EXPECT_EQ(s.str(), "ACTGAGA");
    EXPECT_EQ(s[0], Alphabet::dna().encode('A'));
}

TEST(Sequence, Slice)
{
    Sequence s(Alphabet::dna(), "ACTGAGA");
    EXPECT_EQ(s.slice(2, 3).str(), "TGA");
    EXPECT_EQ(s.slice(0, 0).str(), "");
}

TEST(Sequence, RandomHasRequestedLengthAndValidSymbols)
{
    util::Rng rng(1);
    Sequence s = Sequence::random(rng, Alphabet::protein(), 300);
    EXPECT_EQ(s.size(), 300u);
    for (size_t i = 0; i < s.size(); ++i)
        EXPECT_LT(s[i], 20);
}

TEST(Sequence, RandomIsSeedDeterministic)
{
    util::Rng a(9), b(9);
    EXPECT_EQ(Sequence::random(a, Alphabet::dna(), 64),
              Sequence::random(b, Alphabet::dna(), 64));
}

// ----------------------------------------------------------- mutation

TEST(Mutate, ZeroRatesIsIdentity)
{
    util::Rng rng(2);
    Sequence s = Sequence::random(rng, Alphabet::dna(), 50);
    EXPECT_EQ(mutate(rng, s, bio::MutationModel{}), s);
}

TEST(Mutate, PureDeletionShortens)
{
    util::Rng rng(3);
    Sequence s = Sequence::random(rng, Alphabet::dna(), 200);
    bio::MutationModel model;
    model.deletion = 0.5;
    Sequence m = mutate(rng, s, model);
    EXPECT_LT(m.size(), s.size());
}

TEST(Mutate, PureInsertionLengthens)
{
    util::Rng rng(4);
    Sequence s = Sequence::random(rng, Alphabet::dna(), 200);
    bio::MutationModel model;
    model.insertion = 0.5;
    Sequence m = mutate(rng, s, model);
    EXPECT_GT(m.size(), s.size());
}

TEST(Mutate, PureSubstitutionKeepsLengthChangesContent)
{
    util::Rng rng(5);
    Sequence s = Sequence::random(rng, Alphabet::dna(), 200);
    bio::MutationModel model;
    model.substitution = 1.0;
    Sequence m = mutate(rng, s, model);
    ASSERT_EQ(m.size(), s.size());
    for (size_t i = 0; i < s.size(); ++i)
        EXPECT_NE(m[i], s[i]) << "position " << i;
}

TEST(CompleteMismatch, SharesNoSymbolsWithOriginal)
{
    util::Rng rng(6);
    for (int trial = 0; trial < 10; ++trial) {
        // Restrict the original to {A, C} so a disjoint partner
        // exists.
        Sequence s(Alphabet::dna());
        for (int i = 0; i < 40; ++i)
            s.push_back(static_cast<bio::Symbol>(rng.index(2)));
        Sequence w = completeMismatch(rng, s);
        ASSERT_EQ(w.size(), s.size());
        for (size_t i = 0; i < w.size(); ++i)
            for (size_t j = 0; j < s.size(); ++j)
                ASSERT_NE(w[i], s[j]);
    }
}

TEST(CompleteMismatch, BinaryZeroesBecomeOnes)
{
    util::Rng rng(7);
    Sequence s(Alphabet::binary(), "000000");
    Sequence w = completeMismatch(rng, s);
    EXPECT_EQ(w.str(), "111111");
}

TEST(CompleteMismatchDeath, FullAlphabetRejected)
{
    util::Rng rng(7);
    Sequence s(Alphabet::dna(), "ACGT");
    EXPECT_EXIT(completeMismatch(rng, s), ::testing::ExitedWithCode(1),
                "worstCasePair");
}

TEST(WorstCasePair, NoSharedSymbols)
{
    util::Rng rng(8);
    for (int trial = 0; trial < 10; ++trial) {
        auto [a, b] = bio::worstCasePair(rng, Alphabet::dna(), 30);
        ASSERT_EQ(a.size(), 30u);
        ASSERT_EQ(b.size(), 30u);
        for (size_t i = 0; i < a.size(); ++i)
            for (size_t j = 0; j < b.size(); ++j)
                ASSERT_NE(a[i], b[j]);
    }
}

TEST(WorstCasePair, WorksOnProteinAlphabet)
{
    util::Rng rng(9);
    auto [a, b] = bio::worstCasePair(rng, Alphabet::protein(), 12);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(a[i], 10);
    for (size_t j = 0; j < b.size(); ++j)
        EXPECT_GE(b[j], 10);
}

// ---------------------------------------------------------- workloads

TEST(ScreeningWorkload, ShapeAndGroundTruth)
{
    util::Rng rng(8);
    auto wl = bio::makeScreeningWorkload(rng, Alphabet::dna(), 32, 200,
                                         0.25,
                                         bio::MutationModel::uniform(0.1));
    EXPECT_EQ(wl.query.size(), 32u);
    EXPECT_EQ(wl.database.size(), 200u);
    EXPECT_EQ(wl.related.size(), 200u);
    size_t related = 0;
    for (bool r : wl.related)
        related += r;
    EXPECT_GT(related, 20u);
    EXPECT_LT(related, 90u);
}

TEST(ScreeningWorkload, RelatedEntriesAreCloserThanUnrelated)
{
    util::Rng rng(9);
    auto wl = bio::makeScreeningWorkload(rng, Alphabet::dna(), 64, 100,
                                         0.5,
                                         bio::MutationModel::uniform(0.05));
    // Count exact-prefix agreement as a crude similarity proxy.
    double related_agree = 0, unrelated_agree = 0;
    size_t related_n = 0, unrelated_n = 0;
    for (size_t k = 0; k < wl.database.size(); ++k) {
        const Sequence &c = wl.database[k];
        size_t agree = 0;
        size_t upto = std::min(c.size(), wl.query.size());
        for (size_t i = 0; i < upto; ++i)
            agree += c[i] == wl.query[i];
        double frac = double(agree) / double(upto);
        if (wl.related[k]) {
            related_agree += frac;
            ++related_n;
        } else {
            unrelated_agree += frac;
            ++unrelated_n;
        }
    }
    ASSERT_GT(related_n, 10u);
    ASSERT_GT(unrelated_n, 10u);
    EXPECT_GT(related_agree / related_n,
              unrelated_agree / unrelated_n + 0.2);
}

} // namespace
