/**
 * @file
 * Tests for ProblemKind::GraphAlign through api::RaceEngine: solve
 * against the graph-NW oracle, read-mapping batches (1000+ reads on
 * one cached graph plan, parallel bit-identical to serial),
 * threshold early-termination verdicts, and the GateLevel
 * cross-check on small graphs.
 */

#include <gtest/gtest.h>

#include <csignal>

#include "rl/api/api.h"
#include "rl/pangraph/generate.h"
#include "rl/pangraph/graph_align_dp.h"
#include "rl/pangraph/graph_aligner.h"
#include "rl/pangraph/mapping.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using api::BackendKind;
using api::EngineConfig;
using api::RaceEngine;
using api::RaceProblem;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using pangraph::VariationGraph;

std::shared_ptr<const VariationGraph>
demoGraph(uint64_t seed = 42, size_t backbone = 5)
{
    util::Rng rng(seed);
    pangraph::VariationGraphParams params;
    params.backboneSegments = backbone;
    params.maxLabel = 6;
    params.snpDensity = 0.4;
    params.insertDensity = 0.2;
    params.deleteDensity = 0.2;
    return std::make_shared<VariationGraph>(
        pangraph::randomVariationGraph(rng, Alphabet::dna(), params));
}

std::vector<Sequence>
sampleReads(const VariationGraph &graph, size_t count, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<Sequence> reads;
    reads.reserve(count);
    for (size_t i = 0; i < count; ++i)
        reads.push_back(pangraph::sampleRead(
            rng, graph, bio::MutationModel::uniform(0.25)));
    return reads;
}

TEST(ApiGraphAlign, SolveMatchesOracle)
{
    auto graph = demoGraph();
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    RaceEngine engine;
    for (const Sequence &read : sampleReads(*graph, 8, 7)) {
        auto result = engine.solve(
            RaceProblem::graphAlign(costs, read, graph));
        EXPECT_EQ(result.kind, api::ProblemKind::GraphAlign);
        EXPECT_TRUE(result.completed);
        EXPECT_EQ(result.score,
                  pangraph::graphAlignDp(*graph, read, costs).distance);
        EXPECT_EQ(result.latencyCycles,
                  static_cast<sim::Tick>(result.score));
        EXPECT_FALSE(result.nodeArrival.empty());
        ASSERT_TRUE(result.estimate.has_value());
        EXPECT_GT(result.estimate->wallTimeNs, 0.0);
    }
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    EXPECT_EQ(engine.stats().planCacheHits, 7u);
}

TEST(ApiGraphAlign, ThousandReadBatchParallelBitIdenticalToSerial)
{
    // The acceptance workload: >= 1000 reads against one cached
    // graph plan, raced on the thread pool, with results
    // field-by-field identical to a serial run.
    auto graph = demoGraph(3, 4);
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    const std::vector<Sequence> reads = sampleReads(*graph, 1000, 99);
    // Near the median raced distance for this workload, so the
    // verdict mix exercises both the accept and the abort paths.
    const bio::Score threshold = 21;

    EngineConfig serialCfg;
    serialCfg.workerThreads = 1;
    RaceEngine serial(serialCfg);
    auto serialOut = serial.mapReads(graph, costs, threshold, reads);
    EXPECT_EQ(serial.stats().parallelBatches, 0u);
    EXPECT_EQ(serial.stats().plansBuilt, 1u);
    EXPECT_EQ(serial.stats().planCacheHits, reads.size() - 1);

    EngineConfig parallelCfg;
    parallelCfg.workerThreads = 4;
    RaceEngine parallel(parallelCfg);
    auto parallelOut =
        parallel.mapReads(graph, costs, threshold, reads);
    EXPECT_EQ(parallel.stats().parallelBatches, 1u);
    EXPECT_EQ(parallel.stats().plansBuilt, 1u);

    ASSERT_EQ(parallelOut.results.size(), serialOut.results.size());
    size_t accepted = 0;
    for (size_t i = 0; i < reads.size(); ++i) {
        const api::RaceResult &s = serialOut.results[i];
        const api::RaceResult &p = parallelOut.results[i];
        EXPECT_EQ(p.score, s.score);
        EXPECT_EQ(p.racedCost, s.racedCost);
        EXPECT_EQ(p.completed, s.completed);
        EXPECT_EQ(p.accepted, s.accepted);
        EXPECT_EQ(p.latencyCycles, s.latencyCycles);
        EXPECT_EQ(p.cyclesUsed, s.cyclesUsed);
        EXPECT_EQ(p.events, s.events);
        EXPECT_EQ(p.cellsFired, s.cellsFired);
        ASSERT_EQ(p.nodeArrival.size(), s.nodeArrival.size());
        for (size_t n = 0; n < p.nodeArrival.size(); ++n)
            EXPECT_EQ(p.nodeArrival[n].rawTime(),
                      s.nodeArrival[n].rawTime());
        // Verdicts are exact: accepted iff the oracle distance fits.
        const bio::Score oracle =
            pangraph::graphAlignDp(*graph, reads[i], costs).distance;
        EXPECT_EQ(s.accepted, oracle <= threshold);
        if (s.accepted) {
            EXPECT_EQ(s.score, oracle);
            ++accepted;
        } else {
            EXPECT_EQ(s.score, bio::kScoreInfinity);
            EXPECT_EQ(s.cyclesUsed,
                      static_cast<sim::Tick>(threshold));
            // Rejected reads drop their arrival detail: no mapping
            // exists, and batches must not retain reads x product
            // size memory.
            EXPECT_TRUE(s.nodeArrival.empty());
        }
    }
    EXPECT_EQ(serialOut.acceptedCount(), accepted);
    // The mutation noise should produce a mix of verdicts.
    EXPECT_GT(accepted, 0u);
    EXPECT_LT(accepted, reads.size());

    // Read-mapping batches are screening-shaped (one shared graph
    // plan), so the fabric-pool deployment schedule applies.
    ASSERT_TRUE(serialOut.schedule.has_value());
    EXPECT_GT(serialOut.schedule->utilization, 0.0);
}

TEST(ApiGraphAlign, GraphMappingTracesBackWithoutReracing)
{
    // The engine reconstructs (walk, CIGAR) mappings from a solve's
    // own arrival times via the cached plan -- solves stay flat and
    // only plan-cache hits accrue.
    auto graph = demoGraph(14, 4);
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    RaceEngine engine;
    for (const Sequence &read : sampleReads(*graph, 5, 31)) {
        auto problem = RaceProblem::graphAlign(costs, read, graph);
        auto result = engine.solve(problem);
        const uint64_t solvesBefore = engine.stats().solves;
        pangraph::GraphMapping mapping =
            engine.graphMapping(problem, result);
        EXPECT_EQ(engine.stats().solves, solvesBefore);
        EXPECT_EQ(mapping.distance, result.score);
        EXPECT_EQ(mapping.readConsumed, read.size());
        EXPECT_EQ(
            pangraph::rescoreMapping(*graph, read, costs, mapping),
            mapping.distance);
    }
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
}

TEST(ApiGraphAlign, EarlyTerminateToggleKeepsVerdicts)
{
    auto graph = demoGraph(8, 4);
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    auto reads = sampleReads(*graph, 32, 5);
    const bio::Score threshold = 12;

    RaceEngine racing;
    auto raced = racing.mapReads(graph, costs, threshold, reads);

    EngineConfig measureCfg;
    measureCfg.earlyTerminate = false;
    RaceEngine measuring(measureCfg);
    auto measured = measuring.mapReads(graph, costs, threshold, reads);

    for (size_t i = 0; i < reads.size(); ++i) {
        EXPECT_EQ(raced.results[i].accepted,
                  measured.results[i].accepted);
        EXPECT_EQ(raced.results[i].cyclesUsed,
                  measured.results[i].cyclesUsed);
    }
    // Measurement mode knows the full-race latency of rejected reads.
    EXPECT_GE(measured.fullRaceCycles(), measured.busyCycles());
    EXPECT_GE(measured.speedup(), 1.0);
}

TEST(ApiGraphAlign, GateLevelCrossCheckAgreesOnSmallGraph)
{
    // The GateLevel backend synthesizes the product DAG as a race
    // fabric and asserts agreement internally; a clean run with
    // matching scores IS the cross-check.
    auto graph = demoGraph(21, 3);
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();

    EngineConfig gateCfg;
    gateCfg.backend = BackendKind::GateLevel;
    RaceEngine gate(gateCfg);
    RaceEngine soft;

    for (const Sequence &read : sampleReads(*graph, 3, 2)) {
        auto hard = gate.solve(
            RaceProblem::graphAlign(costs, read, graph));
        auto behavioral = soft.solve(
            RaceProblem::graphAlign(costs, read, graph));
        EXPECT_EQ(hard.score, behavioral.score);
        ASSERT_TRUE(hard.estimate.has_value());
        EXPECT_GT(hard.estimate->gateCount, 0u);
        EXPECT_GT(hard.estimate->energyJ, 0.0);
        EXPECT_GT(hard.estimate->areaUm2, 0.0);
    }

    // An aborted screen cross-checks too: the fabric must not fire
    // within the threshold budget.
    Sequence far(Alphabet::dna(), "TTTTTTTTTTTTTTTTTTTT");
    auto aborted = gate.solve(
        RaceProblem::graphAlign(costs, far, graph, /*threshold=*/2));
    EXPECT_FALSE(aborted.accepted);
    EXPECT_FALSE(aborted.completed);
}

TEST(ApiGraphAlign, MapReadsRacesFusedWithoutProductDagsBitIdentically)
{
    // The Behavioral read-mapping path must never materialize a
    // (read x graph) product DAG -- it races the fused kernel -- and
    // its batch results must be bit-identical to racing each read's
    // materialized product on the reference kernel by hand.
    auto graph = demoGraph(6, 4);
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    const std::vector<Sequence> reads = sampleReads(*graph, 64, 13);
    const bio::Score threshold = 15;

    EngineConfig cfg;
    cfg.workerThreads = 2;
    RaceEngine engine(cfg);
    const uint64_t builds = pangraph::alignmentGraphBuildCount();
    auto outcome = engine.mapReads(graph, costs, threshold, reads);
    EXPECT_EQ(pangraph::alignmentGraphBuildCount(), builds)
        << "Behavioral mapReads materialized a product DAG";

    // Reference: materialize + race each product under the same
    // Section 6 horizon the engine uses (earlyTerminate defaults on).
    pangraph::GraphAligner aligner(graph, costs);
    ASSERT_EQ(outcome.results.size(), reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        pangraph::GraphRaceResult reference = aligner.align(
            pangraph::buildAlignmentGraph(aligner.compiled(), reads[i],
                                          aligner.costs()),
            static_cast<sim::Tick>(threshold));
        const api::RaceResult &got = outcome.results[i];
        EXPECT_EQ(got.completed, reference.completed);
        EXPECT_EQ(got.events, reference.events);
        EXPECT_EQ(got.cellsFired, reference.cellsFired);
        if (reference.completed) {
            EXPECT_EQ(got.racedCost, reference.racedCost);
            EXPECT_EQ(got.score, reference.score);
            ASSERT_EQ(got.nodeArrival.size(),
                      reference.arrival.size());
            for (size_t n = 0; n < got.nodeArrival.size(); ++n)
                EXPECT_EQ(got.nodeArrival[n].rawTime(),
                          reference.arrival[n].rawTime());
        } else {
            // Rejected screens reveal only the verdict and drop
            // their arrival detail.
            EXPECT_FALSE(got.accepted);
            EXPECT_EQ(got.score, bio::kScoreInfinity);
            EXPECT_TRUE(got.nodeArrival.empty());
        }
    }
}

TEST(ApiGraphAlign, SystolicBackendRefusesGraphs)
{
    auto graph = demoGraph(4, 3);
    EngineConfig cfg;
    cfg.backend = BackendKind::Systolic;
    RaceEngine engine(cfg);
    EXPECT_EXIT(engine.solve(RaceProblem::graphAlign(
                    ScoreMatrix::dnaShortestPath(),
                    Sequence(Alphabet::dna(), "ACGT"), graph)),
                ::testing::KilledBySignal(SIGABRT), "systolic");
}

TEST(ApiGraphAlign, SystolicBackendRefusesGraphsTyped)
{
    // trySolve() must turn the same invariant into a recoverable
    // Unsupported verdict before the dispatch assert can fire.
    auto graph = demoGraph(4, 3);
    EngineConfig cfg;
    cfg.backend = BackendKind::Systolic;
    RaceEngine engine(cfg);
    auto result = engine.trySolve(RaceProblem::graphAlign(
        ScoreMatrix::dnaShortestPath(),
        Sequence(Alphabet::dna(), "ACGT"), graph));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::Unsupported);
    EXPECT_NE(result.status().message().find("systolic"),
              std::string::npos);
}

} // namespace
