/**
 * @file
 * Tests for the unified racelogic::api facade: every problem kind
 * solved through one RaceEngine matches the legacy entry points and
 * the DP oracles, and the Behavioral / GateLevel backends agree
 * through the one API.
 */

#include <gtest/gtest.h>

#include "rl/api/api.h"
#include "rl/bio/affine.h"
#include "rl/bio/align_dp.h"
#include "rl/core/affine_race.h"
#include "rl/core/generalized.h"
#include "rl/core/race_aligner.h"
#include "rl/core/threshold.h"
#include "rl/graph/generate.h"
#include "rl/graph/paths.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using api::BackendKind;
using api::EngineConfig;
using api::ProblemKind;
using api::RaceEngine;
using api::RaceProblem;
using api::RaceResult;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

Sequence
dna(const std::string &text)
{
    return Sequence(Alphabet::dna(), text);
}

Sequence
protein(const std::string &text)
{
    return Sequence(Alphabet::protein(), text);
}

EngineConfig
configFor(BackendKind backend)
{
    EngineConfig config;
    config.backend = backend;
    return config;
}

// ------------------------------------------------ legacy equivalence

TEST(ApiEngine, PairwiseMatchesLegacyRaceAlignerOnCosts)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    core::RaceAligner legacy(costs);
    RaceEngine engine;

    util::Rng rng(11);
    for (int round = 0; round < 6; ++round) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 9);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 12);
        core::AlignOutcome want = legacy.align(a, b);
        RaceResult got = engine.solve(
            RaceProblem::pairwiseAlignment(costs, a, b));
        EXPECT_EQ(got.score, want.score);
        EXPECT_EQ(got.racedCost, want.racedCost);
        EXPECT_EQ(got.latencyCycles, want.latencyCycles);
        EXPECT_EQ(got.cellsFired, want.detail.cellsFired);
        EXPECT_EQ(got.arrival.flat(), want.detail.arrival.flat());
    }
}

TEST(ApiEngine, PairwiseSimilarityAutoConvertsLikeLegacy)
{
    ScoreMatrix blosum = ScoreMatrix::blosum62();
    core::RaceAligner legacy(blosum);
    RaceEngine engine;

    Sequence a = protein("HEAGAWGHEE");
    Sequence b = protein("PAWHEAE");
    core::AlignOutcome want = legacy.align(a, b);
    RaceResult got =
        engine.solve(RaceProblem::pairwiseAlignment(blosum, a, b));
    EXPECT_EQ(got.score, want.score);
    EXPECT_EQ(got.racedCost, want.racedCost);

    // And the DP oracle agrees in the original similarity semantics.
    bio::Alignment dp = bio::globalAlign(a, b, blosum);
    EXPECT_EQ(got.score, dp.score);
}

TEST(ApiEngine, DtwMatchesReferenceDp)
{
    util::Rng rng(5);
    auto x = apps::quantizedSine(rng, 24, 2.0, 20.0, 0.0, 2.0);
    auto y = apps::quantizedSine(rng, 30, 2.0, 20.0, 0.4, 2.0);

    RaceEngine engine;
    RaceResult got = engine.solve(RaceProblem::dtw(x, y));
    EXPECT_EQ(got.score, apps::dtwDistance(x, y));
    EXPECT_EQ(got.latencyCycles,
              static_cast<sim::Tick>(got.score));
    EXPECT_FALSE(got.nodeArrival.empty());
}

TEST(ApiEngine, DagPathMatchesLegacySolveDag)
{
    util::Rng rng(7);
    graph::Dag dag = graph::randomDag(rng, 40, 0.15, {1, 6});
    auto [source, sink] = graph::addSuperEndpoints(dag, 1);

    RaceEngine engine;
    for (graph::Objective objective :
         {graph::Objective::Shortest, graph::Objective::Longest}) {
        auto dp = graph::solveDag(dag, {source}, objective);
        RaceResult got = engine.solve(
            RaceProblem::dagPath(dag, {source}, sink, objective));
        ASSERT_TRUE(got.completed);
        EXPECT_EQ(got.score, dp.distance[sink]);
    }
}

TEST(ApiEngine, AffineMatchesLegacyRaceAffineAndGotohDp)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    bio::AffineGapCosts gaps{3, 1};
    Sequence a = dna("ACTGAGA");
    Sequence b = dna("AGA");

    core::AffineRaceResult legacy = core::raceAffine(a, b, costs, gaps);
    RaceEngine engine;
    RaceResult got = engine.solve(
        RaceProblem::affineAlignment(costs, gaps, a, b));
    EXPECT_EQ(got.score, legacy.score);
    EXPECT_EQ(got.latencyCycles, legacy.latencyCycles);
    EXPECT_EQ(got.nodes, legacy.nodes);
    EXPECT_EQ(got.score, bio::affineGlobalScore(a, b, costs, gaps));
}

TEST(ApiEngine, GeneralizedMatchesLegacyGeneralizedAligner)
{
    ScoreMatrix pam = ScoreMatrix::pam250();
    core::GeneralizedAligner legacy(pam, 2);
    RaceEngine engine;

    Sequence a = protein("MKVLA");
    Sequence b = protein("MKPLA");
    auto want = legacy.align(a, b);
    RaceResult got = engine.solve(
        RaceProblem::generalizedAlignment(pam, a, b, 2));
    EXPECT_EQ(got.score, want.similarityScore);
    EXPECT_EQ(got.racedCost, want.racedCost);
    EXPECT_EQ(got.latencyCycles, want.latencyCycles);
}

TEST(ApiEngine, ThresholdScreenMatchesLegacyScreener)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    util::Rng rng(2014);
    auto workload = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), 24, 40, 0.25,
        bio::MutationModel{0.05, 0.02, 0.02});
    bio::Score threshold = 32;

    core::ThresholdScreener screener(costs, threshold);
    RaceEngine engine;
    for (const Sequence &candidate : workload.database) {
        core::ScreenOutcome want =
            screener.screen(workload.query, candidate);
        RaceResult got = engine.solve(RaceProblem::thresholdScreen(
            costs, threshold, workload.query, candidate));
        EXPECT_EQ(got.accepted, want.similar);
        EXPECT_EQ(got.score, want.score);
        EXPECT_EQ(got.cyclesUsed, want.cyclesUsed);
        EXPECT_EQ(got.completed, want.similar);
    }
}

// --------------------------------------- backend agreement (6 kinds)

TEST(ApiEngine, BehavioralAndGateLevelAgreeOnPairwise)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    RaceEngine behavioral(configFor(BackendKind::Behavioral));
    RaceEngine gates(configFor(BackendKind::GateLevel));

    util::Rng rng(3);
    for (int round = 0; round < 3; ++round) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 5);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 6);
        RaceProblem p = RaceProblem::pairwiseAlignment(costs, a, b);
        RaceResult soft = behavioral.solve(p);
        RaceResult hard = gates.solve(p);
        EXPECT_EQ(soft.score, hard.score);
        EXPECT_EQ(soft.latencyCycles, hard.latencyCycles);
    }
}

TEST(ApiEngine, BehavioralAndGateLevelAgreeOnGeneralized)
{
    ScoreMatrix blosum = ScoreMatrix::blosum62();
    Sequence a = protein("HEAG");
    Sequence b = protein("PAW");
    RaceProblem p = RaceProblem::generalizedAlignment(blosum, a, b);

    RaceEngine behavioral(configFor(BackendKind::Behavioral));
    RaceEngine gates(configFor(BackendKind::GateLevel));
    RaceResult soft = behavioral.solve(p);
    RaceResult hard = gates.solve(p);
    EXPECT_EQ(soft.score, hard.score);
    EXPECT_EQ(soft.racedCost, hard.racedCost);
}

TEST(ApiEngine, BehavioralAndGateLevelAgreeOnThresholdScreen)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    Sequence query = dna("ACTGAGA");
    RaceEngine behavioral(configFor(BackendKind::Behavioral));
    RaceEngine gates(configFor(BackendKind::GateLevel));

    // One candidate under the threshold, one far over it.
    for (const auto &candidate : {dna("ACTGAGA"), dna("TTTTTTT")}) {
        RaceProblem p = RaceProblem::thresholdScreen(costs, 9, query,
                                                     candidate);
        RaceResult soft = behavioral.solve(p);
        RaceResult hard = gates.solve(p);
        EXPECT_EQ(soft.accepted, hard.accepted);
        EXPECT_EQ(soft.score, hard.score);
        EXPECT_EQ(soft.cyclesUsed, hard.cyclesUsed);
    }
}

TEST(ApiEngine, BehavioralAndGateLevelAgreeOnDtw)
{
    std::vector<apps::Sample> x{3, 5, 8, 6, 2};
    std::vector<apps::Sample> y{3, 6, 7, 2};
    RaceProblem p = RaceProblem::dtw(x, y);

    RaceEngine behavioral(configFor(BackendKind::Behavioral));
    RaceEngine gates(configFor(BackendKind::GateLevel));
    RaceResult soft = behavioral.solve(p);
    RaceResult hard = gates.solve(p);
    EXPECT_EQ(soft.score, hard.score);
}

TEST(ApiEngine, BehavioralAndGateLevelAgreeOnDagPath)
{
    graph::Dag fig3 = graph::makeFig3ExampleDag();
    RaceEngine behavioral(configFor(BackendKind::Behavioral));
    RaceEngine gates(configFor(BackendKind::GateLevel));

    for (graph::Objective objective :
         {graph::Objective::Shortest, graph::Objective::Longest}) {
        RaceProblem p =
            RaceProblem::dagPath(fig3, {0, 1}, 4, objective);
        RaceResult soft = behavioral.solve(p);
        RaceResult hard = gates.solve(p);
        EXPECT_EQ(soft.score, hard.score);
    }
    // Fig. 3 reconstruction: shortest 2 (longest is 4; both the DP
    // and the AND race agree -- see makeFig3ExampleDag()).
    RaceResult shortest = behavioral.solve(RaceProblem::dagPath(
        fig3, {0, 1}, 4, graph::Objective::Shortest));
    EXPECT_EQ(shortest.score, 2);
}

TEST(ApiEngine, BehavioralAndGateLevelAgreeOnAffine)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    bio::AffineGapCosts gaps{2, 1};
    RaceProblem p = RaceProblem::affineAlignment(
        costs, gaps, dna("ACTG"), dna("AG"));

    RaceEngine behavioral(configFor(BackendKind::Behavioral));
    RaceEngine gates(configFor(BackendKind::GateLevel));
    RaceResult soft = behavioral.solve(p);
    RaceResult hard = gates.solve(p);
    EXPECT_EQ(soft.score, hard.score);
}

// ------------------------------------------------- systolic backend

TEST(ApiEngine, SystolicBackendMatchesBehavioralScore)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceEngine behavioral(configFor(BackendKind::Behavioral));
    RaceEngine systolic(configFor(BackendKind::Systolic));

    util::Rng rng(21);
    for (int round = 0; round < 4; ++round) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 8);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 8);
        RaceProblem p = RaceProblem::pairwiseAlignment(costs, a, b);
        EXPECT_EQ(systolic.solve(p).score, behavioral.solve(p).score);
    }
}

TEST(ApiEngine, SystolicScreeningCannotAbort)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    Sequence query = dna("ACTGAGA");
    Sequence distant = dna("TTTTTTT");
    RaceProblem p =
        RaceProblem::thresholdScreen(costs, 9, query, distant);

    RaceEngine behavioral(configFor(BackendKind::Behavioral));
    RaceEngine systolic(configFor(BackendKind::Systolic));
    RaceResult soft = behavioral.solve(p);
    RaceResult hard = systolic.solve(p);
    EXPECT_FALSE(soft.accepted);
    EXPECT_FALSE(hard.accepted);
    // The race aborts at the threshold; the array runs to completion.
    EXPECT_EQ(soft.cyclesUsed, 9u);
    EXPECT_GT(hard.cyclesUsed, soft.cyclesUsed);
}

// ----------------------------------------------- batch + estimates

TEST(ApiEngine, SolveBatchDispatchesOntoFabricPool)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    util::Rng rng(99);
    auto workload = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), 16, 24, 0.25,
        bio::MutationModel{0.05, 0.02, 0.02});
    bio::Score threshold = 22;

    RaceEngine engine;
    api::BatchOutcome batch = engine.screen(
        costs, threshold, workload.query, workload.database);
    ASSERT_EQ(batch.results.size(), workload.database.size());
    ASSERT_TRUE(batch.schedule.has_value());
    EXPECT_EQ(batch.schedule->comparisons, workload.database.size());
    EXPECT_EQ(batch.schedule->acceptedCount, batch.acceptedCount());
    EXPECT_GT(batch.schedule->utilization, 0.0);

    // Verdicts from the pool dispatcher and the engine agree.
    for (size_t i = 0; i < batch.results.size(); ++i)
        EXPECT_EQ(batch.results[i].accepted, batch.schedule->accepted[i]);
}

TEST(ApiEngine, MixedThresholdBatchScheduleMatchesResults)
{
    // Each screen carries its own threshold; the pool schedule is
    // built from the per-result busy cycles, so verdicts and cycle
    // accounting stay consistent across a mixed-threshold batch.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    Sequence query = dna("ACTGAGA");
    Sequence distant = dna("TTTTTTT"); // cost 13 (one T-T match)
    RaceEngine engine;
    std::vector<RaceProblem> problems;
    problems.push_back(
        RaceProblem::thresholdScreen(costs, 9, query, distant));
    problems.push_back(
        RaceProblem::thresholdScreen(costs, 20, query, distant));
    api::BatchOutcome batch = engine.solveBatch(problems);
    ASSERT_TRUE(batch.schedule.has_value());
    EXPECT_FALSE(batch.results[0].accepted);
    EXPECT_TRUE(batch.results[1].accepted);
    EXPECT_EQ(batch.schedule->accepted[0], batch.results[0].accepted);
    EXPECT_EQ(batch.schedule->accepted[1], batch.results[1].accepted);
    // Busy cycles: 9 (aborted at its own threshold) + 13 (completed).
    EXPECT_EQ(batch.busyCycles(), 22u);
}

TEST(ApiEngine, ZeroThresholdScreenRejectsOnBothBackends)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceProblem p = RaceProblem::thresholdScreen(
        costs, 0, dna("ACTG"), dna("ACTG"));
    for (BackendKind backend :
         {BackendKind::Behavioral, BackendKind::GateLevel}) {
        RaceEngine engine(configFor(backend));
        RaceResult r = engine.solve(p);
        EXPECT_FALSE(r.accepted);
        EXPECT_FALSE(r.completed);
        EXPECT_EQ(r.cyclesUsed, 0u);
        EXPECT_EQ(r.score, bio::kScoreInfinity);
    }
}

TEST(ApiEngine, MixedBatchHasNoSchedule)
{
    RaceEngine engine;
    std::vector<RaceProblem> problems;
    problems.push_back(RaceProblem::dtw({1, 2, 3}, {1, 2, 4}));
    problems.push_back(RaceProblem::pairwiseAlignment(
        ScoreMatrix::dnaShortestPath(), dna("ACT"), dna("AGT")));
    api::BatchOutcome batch = engine.solveBatch(problems);
    EXPECT_EQ(batch.results.size(), 2u);
    EXPECT_FALSE(batch.schedule.has_value());
}

TEST(ApiEngine, EstimatesAreAttachedAndPlausible)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceEngine engine;
    RaceResult r = engine.solve(RaceProblem::pairwiseAlignment(
        costs, dna("ACTGAGA"), dna("GATTCGA")));
    ASSERT_TRUE(r.estimate.has_value());
    EXPECT_GT(r.estimate->wallTimeNs, 0.0);
    EXPECT_GT(r.estimate->areaUm2, 0.0);
    EXPECT_GT(r.estimate->energyJ, 0.0);
    EXPECT_FALSE(r.describe().empty());
    EXPECT_FALSE(r.arrivalTable().empty());
}

TEST(ApiEngine, EngineThresholdAppliesToPlainAlignment)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    EngineConfig config;
    config.threshold = 5;
    RaceEngine engine(config);
    RaceResult r = engine.solve(RaceProblem::pairwiseAlignment(
        costs, dna("ACTGAGA"), dna("GATTCGA"))); // cost 10 > 5
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.cyclesUsed, 5u);
    EXPECT_EQ(r.score, 10); // score still exact outside screening
}

TEST(ApiEngine, CancelledSolveReturnsTypedAbort)
{
    RaceEngine engine;
    core::CancelToken token;
    token.cancel();
    RaceProblem problem = RaceProblem::pairwiseAlignment(
        ScoreMatrix::dnaShortestPath(), dna("GATTACA"), dna("GCATGCT"));
    problem.cancel = &token;
    const RaceResult r = engine.solve(problem);
    EXPECT_TRUE(r.cancelled);
    EXPECT_FALSE(r.completed);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.score, bio::kScoreInfinity);
    EXPECT_TRUE(r.nodeArrival.empty())
        << "a cancelled race must reveal no mapping detail";
}

TEST(ApiEngine, UncancelledTokenLeavesTheSolveBitIdentical)
{
    RaceEngine engine;
    RaceProblem plain = RaceProblem::pairwiseAlignment(
        ScoreMatrix::dnaShortestPath(), dna("GATTACA"), dna("GCATGCT"));
    const RaceResult expected = engine.solve(plain);

    core::CancelToken idle; // live but never fired
    RaceProblem tokened = plain;
    tokened.cancel = &idle;
    const RaceResult r = engine.solve(tokened);
    EXPECT_FALSE(r.cancelled);
    EXPECT_EQ(r.score, expected.score);
    EXPECT_EQ(r.racedCost, expected.racedCost);
    EXPECT_EQ(r.latencyCycles, expected.latencyCycles);
    EXPECT_EQ(r.events, expected.events);
    EXPECT_EQ(r.cellsFired, expected.cellsFired);
    EXPECT_EQ(r.nodeArrival, expected.nodeArrival);
}

} // namespace
