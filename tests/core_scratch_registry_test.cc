/**
 * @file
 * Regression tests for the "scratch arenas never shrink" bug and the
 * registry that makes their bytes visible to the serving memory
 * budget.
 *
 * The kernels' thread_local scratch (BucketCalendar rings and gap
 * rows) grows to each solve's high-water mark and, before
 * shrinkToFit() existed, never gave a byte back: one oversized solve
 * pinned megabytes in an idle worker forever.  These tests nail the
 * contract from both ends -- the arena really shrinks, and the
 * registry's janitor-facing API (lease, publish, shrinkIdle,
 * tombstones) reclaims without ever touching a live or dead arena.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "rl/core/race_grid.h"
#include "rl/core/scratch_registry.h"
#include "rl/core/wavefront.h"

namespace {

using namespace racelogic;

bio::Sequence
dna(const std::string &s)
{
    return bio::Sequence(bio::Alphabet("ACGT"), s);
}

std::string
longDna(size_t n)
{
    static const char letters[] = "ACGT";
    std::string s;
    s.reserve(n);
    uint32_t state = 0x9E3779B9u;
    for (size_t i = 0; i < n; ++i) {
        state = state * 1664525u + 1013904223u;
        s.push_back(letters[(state >> 24) & 3]);
    }
    return s;
}

TEST(ScratchShrink, RaceGridScratchReleasesItsHighWater)
{
    core::RaceGridAligner aligner(bio::ScoreMatrix::dnaShortestPath());
    core::RaceGridScratch scratch;
    EXPECT_EQ(scratch.residentBytes(), 0u);

    // One oversized solve grows the calendar arena and gap rows...
    (void)aligner.align(dna(longDna(600)), dna(longDna(600)),
                        sim::kTickInfinity, scratch);
    const size_t grown = scratch.residentBytes();
    EXPECT_GT(grown, 0u);

    // ...a small solve keeps all of it resident (the bug: capacity is
    // retained across reset())...
    (void)aligner.align(dna("GATTACA"), dna("GCATGCT"),
                        sim::kTickInfinity, scratch);
    EXPECT_EQ(scratch.residentBytes(), grown);

    // ...and shrinkToFit() is the one call that gives it back.
    scratch.shrinkToFit();
    EXPECT_EQ(scratch.residentBytes(), 0u);

    // The arena regrows on demand: shrinking is never a correctness
    // event, just a capacity one.
    core::RaceGridResult after =
        aligner.align(dna("GATTACA"), dna("GCATGCT"),
                      sim::kTickInfinity, scratch);
    EXPECT_TRUE(after.completed);
    EXPECT_GT(scratch.residentBytes(), 0u);
}

TEST(ScratchShrink, CalendarShrinkDropsResidentBytes)
{
    core::BucketCalendar calendar;
    calendar.reset(/*ring=*/4096);
    for (uint32_t cell = 0; cell < 512; ++cell)
        calendar.push(cell, cell % 4096);
    EXPECT_GT(calendar.residentBytes(), 0u);
    calendar.shrinkToFit();
    EXPECT_EQ(calendar.residentBytes(), 0u);
}

TEST(ScratchRegistry, LeasePublishesAndShrinkAllReclaims)
{
    core::ScratchRegistry &registry = core::ScratchRegistry::instance();
    const size_t baseline = registry.totalResidentBytes();

    core::RaceGridScratch scratch;
    core::ScratchRegistration reg([&scratch](bool shrink) {
        if (shrink)
            scratch.shrinkToFit();
        return scratch.residentBytes();
    });

    core::RaceGridAligner aligner(bio::ScoreMatrix::dnaShortestPath());
    {
        core::ScratchLease lease(reg.entry());
        (void)aligner.align(dna(longDna(300)), dna(longDna(300)),
                            sim::kTickInfinity, scratch);
    }
    const size_t grown = scratch.residentBytes();
    EXPECT_GT(grown, 0u);
    EXPECT_GE(registry.totalResidentBytes(), baseline + grown);

    // The janitor's hammer: reclaim everything idle, immediately.
    EXPECT_GE(registry.shrinkAll(), grown);
    EXPECT_EQ(scratch.residentBytes(), 0u);
    EXPECT_LE(registry.totalResidentBytes(), baseline);
}

TEST(ScratchRegistry, ThrowingSolveStillPublishesHonestBytes)
{
    core::RaceGridScratch scratch;
    core::ScratchRegistration reg([&scratch](bool shrink) {
        if (shrink)
            scratch.shrinkToFit();
        return scratch.residentBytes();
    });
    core::RaceGridAligner aligner(bio::ScoreMatrix::dnaShortestPath());

    // The dispatcher tolerates throwing jobs, so the lease must too:
    // when a solve throws after growing the arena, the destructor
    // still publishes the real high-water -- hiding those bytes from
    // the brownout budget would defeat the accounting.
    EXPECT_THROW(
        {
            core::ScratchLease lease(reg.entry());
            (void)aligner.align(dna(longDna(300)), dna(longDna(300)),
                                sim::kTickInfinity, scratch);
            throw std::runtime_error("job failed after the race");
        },
        std::runtime_error);
    const size_t grown = scratch.residentBytes();
    EXPECT_GT(grown, 0u);
    EXPECT_EQ(reg.entry().residentBytes.load(), grown);

    // Published means reclaimable: the janitor can still see and
    // shrink the orphaned capacity.
    EXPECT_GE(core::ScratchRegistry::instance().shrinkAll(), grown);
    EXPECT_EQ(scratch.residentBytes(), 0u);
}

TEST(ScratchRegistry, ShrinkNeverTouchesABusyLease)
{
    core::RaceGridScratch scratch;
    core::ScratchRegistration reg([&scratch](bool shrink) {
        if (shrink)
            scratch.shrinkToFit();
        return scratch.residentBytes();
    });

    core::RaceGridAligner aligner(bio::ScoreMatrix::dnaShortestPath());
    core::ScratchLease lease(reg.entry());
    (void)aligner.align(dna(longDna(200)), dna(longDna(200)),
                        sim::kTickInfinity, scratch);
    const size_t mid = scratch.residentBytes();
    ASSERT_GT(mid, 0u);

    // The owner holds the lease: a concurrent shrink pass must skip
    // this arena entirely (try_lock), not block and not clear it.
    std::thread janitor([] {
        (void)core::ScratchRegistry::instance().shrinkAll();
    });
    janitor.join();
    EXPECT_EQ(scratch.residentBytes(), mid);
}

TEST(ScratchRegistry, ShrinkIdleSparesRecentlyActiveWorkers)
{
    core::RaceGridScratch scratch;
    core::ScratchRegistration reg([&scratch](bool shrink) {
        if (shrink)
            scratch.shrinkToFit();
        return scratch.residentBytes();
    });
    core::RaceGridAligner aligner(bio::ScoreMatrix::dnaShortestPath());
    {
        core::ScratchLease lease(reg.entry());
        (void)aligner.align(dna(longDna(200)), dna(longDna(200)),
                            sim::kTickInfinity, scratch);
    }
    ASSERT_GT(scratch.residentBytes(), 0u);

    // Released a microsecond ago: an hour-long idle cutoff spares it.
    (void)core::ScratchRegistry::instance().shrinkIdle(
        std::chrono::hours(1));
    EXPECT_GT(scratch.residentBytes(), 0u);

    // A zero cutoff reclaims it.
    (void)core::ScratchRegistry::instance().shrinkAll();
    EXPECT_EQ(scratch.residentBytes(), 0u);
}

TEST(ScratchRegistry, DeadThreadsLeaveSafeTombstones)
{
    core::ScratchRegistry &registry = core::ScratchRegistry::instance();
    const size_t before = registry.entryCount();

    // A worker thread registers, grows its arena, publishes, dies.
    std::thread worker([] {
        core::RaceGridScratch scratch;
        core::ScratchRegistration reg([&scratch](bool shrink) {
            if (shrink)
                scratch.shrinkToFit();
            return scratch.residentBytes();
        });
        core::RaceGridAligner aligner(
            bio::ScoreMatrix::dnaShortestPath());
        core::ScratchLease lease(reg.entry());
        (void)aligner.align(dna(longDna(200)), dna(longDna(200)),
                            sim::kTickInfinity, scratch);
    });
    worker.join();

    // The slot is leaked (entryCount grew) but retracted: it reports
    // zero bytes, and shrink passes must skip it instead of calling a
    // hook into freed thread_local storage.
    EXPECT_EQ(registry.entryCount(), before + 1);
    (void)registry.shrinkAll(); // must not crash
    (void)registry.shrinkAll();
}

} // namespace
