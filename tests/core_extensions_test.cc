/**
 * @file
 * Tests for the extension modules: race-native traceback, the
 * asynchronous/analog race (Fig. 3d), and the gate-level clock-gated
 * fabric (§4.3 realized in real enable logic).
 */

#include <gtest/gtest.h>

#include "rl/bio/align_dp.h"
#include "rl/core/async_race.h"
#include "rl/core/clock_gating.h"
#include "rl/core/gated_grid_circuit.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/core/traceback.h"
#include "rl/graph/generate.h"
#include "rl/graph/paths.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

// ---------------------------------------------------------- traceback

class RaceTraceback : public ::testing::TestWithParam<int> {};

TEST_P(RaceTraceback, RecoversAValidOptimalAlignment)
{
    util::Rng rng(14000 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    core::RaceGridAligner racer(m);
    size_t n = 1 + rng.index(20);
    size_t k = 1 + rng.index(20);
    Sequence a = Sequence::random(rng, Alphabet::dna(), n);
    Sequence b = Sequence::random(rng, Alphabet::dna(), k);
    core::RaceGridResult raced = racer.align(a, b);
    bio::Alignment alignment =
        core::tracebackFromRace(raced, a, b, m);
    EXPECT_EQ(alignment.score, raced.score);
    EXPECT_EQ(bio::checkAlignment(a, b, m, alignment), "");
}

TEST_P(RaceTraceback, AgreesWithDpTracebackExactly)
{
    // Same tie-breaking policy => byte-identical alignments.
    util::Rng rng(15000 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    core::RaceGridAligner racer(m);
    Sequence a = Sequence::random(rng, Alphabet::dna(),
                                  1 + rng.index(15));
    Sequence b = Sequence::random(rng, Alphabet::dna(),
                                  1 + rng.index(15));
    bio::Alignment from_race =
        core::tracebackFromRace(racer.align(a, b), a, b, m);
    bio::Alignment from_dp = bio::globalAlign(a, b, m);
    EXPECT_EQ(from_race.alignedA, from_dp.alignedA);
    EXPECT_EQ(from_race.alignedB, from_dp.alignedB);
    EXPECT_EQ(from_race.path, from_dp.path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaceTraceback, ::testing::Range(0, 12));

TEST(RaceTraceback, PaperExampleAlignment)
{
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    core::RaceGridAligner racer(m);
    Sequence q(Alphabet::dna(), "GATTCGA");
    Sequence p(Alphabet::dna(), "ACTGAGA");
    auto raced = racer.align(q, p);
    auto alignment = core::tracebackFromRace(raced, q, p, m);
    EXPECT_EQ(alignment.score, 10);
    EXPECT_EQ(alignment.matches, 4u); // N + M - score = 14 - 10
    EXPECT_EQ(alignment.mismatches, 0u);
    EXPECT_EQ(alignment.indels, 6u);
}

// -------------------------------------------------------- analog race

TEST(AsyncRace, ZeroSigmaEqualsDigitalRace)
{
    util::Rng rng(21);
    graph::Dag d = graph::randomDag(rng, 40, 0.15, {1, 6});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    core::AnalogDelayModel ideal{2.5, 0.0};
    auto analog = core::raceDagAnalog(d, {source}, core::RaceType::Or,
                                      ideal, rng);
    auto dp = graph::solveDag(d, {source}, graph::Objective::Shortest);
    for (graph::NodeId node = 0; node < d.nodeCount(); ++node) {
        if (!dp.reached(node))
            continue;
        EXPECT_NEAR(analog.arrivalNs[node],
                    double(dp.distance[node]) * 2.5, 1e-9)
            << "node " << node;
    }
    (void)sink;
}

TEST(AsyncRace, AndTypeZeroSigmaEqualsLongestPath)
{
    util::Rng rng(22);
    graph::Dag d = graph::layeredDag(rng, 5, 4, 0.6, {1, 5});
    std::vector<graph::NodeId> sources{0, 1, 2, 3};
    core::AnalogDelayModel ideal{1.0, 0.0};
    auto analog = core::raceDagAnalog(d, sources, core::RaceType::And,
                                      ideal, rng);
    auto dp = graph::solveDag(d, sources, graph::Objective::Longest);
    for (graph::NodeId node = 0; node < d.nodeCount(); ++node) {
        if (!dp.reached(node))
            continue;
        EXPECT_NEAR(analog.arrivalNs[node], double(dp.distance[node]),
                    1e-9);
    }
}

TEST(AsyncRace, VariationPerturbsButStaysPositive)
{
    util::Rng rng(23);
    graph::Dag d = graph::randomDag(rng, 30, 0.2, {1, 4});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    core::AnalogDelayModel noisy{1.0, 0.2};
    auto analog = core::raceDagAnalog(d, {source}, core::RaceType::Or,
                                      noisy, rng);
    for (double delay : analog.edgeDelaysNs)
        EXPECT_GT(delay, 0.0);
    EXPECT_TRUE(analog.fired(sink));
}

TEST(AsyncRace, RobustnessPerfectAtZeroSigma)
{
    util::Rng rng(24);
    graph::Dag d = graph::randomDag(rng, 25, 0.25, {1, 5});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    core::AnalogDelayModel ideal{1.0, 0.0};
    auto report = core::analyzeVariationRobustness(d, {source}, sink,
                                                   ideal, 20, rng);
    EXPECT_EQ(report.decisionCorrect, 20u);
    EXPECT_EQ(report.readoutExact, 20u);
    EXPECT_NEAR(report.maxRelativeError, 0.0, 1e-12);
}

TEST(AsyncRace, RobustnessDegradesMonotonicallyWithSigma)
{
    util::Rng rng(25);
    graph::Dag d = graph::randomDag(rng, 30, 0.2, {1, 6});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    core::AnalogDelayModel small_sigma{1.0, 0.02};
    core::AnalogDelayModel large_sigma{1.0, 0.5};
    auto small_report = core::analyzeVariationRobustness(
        d, {source}, sink, small_sigma, 60, rng);
    auto large_report = core::analyzeVariationRobustness(
        d, {source}, sink, large_sigma, 60, rng);
    EXPECT_GE(small_report.readoutRate(), large_report.readoutRate());
    EXPECT_LT(small_report.meanRelativeError,
              large_report.meanRelativeError);
    EXPECT_GT(small_report.readoutRate(), 0.9)
        << "2% device variation should rarely flip a readout";
}

// ------------------------------------------------- gated fabric (HW)

class GatedFabric
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{};

TEST_P(GatedFabric, ScoresIdenticalToUngatedFabric)
{
    auto [n, m_side] = GetParam();
    if (m_side > n)
        GTEST_SKIP();
    util::Rng rng(16000 + n * 13 + m_side);
    core::RaceGridCircuit plain(Alphabet::dna(), n, n);
    core::GatedRaceGridCircuit gated(Alphabet::dna(), n, n, m_side);
    for (int trial = 0; trial < 3; ++trial) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), n);
        Sequence b = Sequence::random(rng, Alphabet::dna(), n);
        auto r_plain = plain.align(a, b);
        auto r_gated = gated.align(a, b);
        ASSERT_TRUE(r_plain.completed && r_gated.completed);
        EXPECT_EQ(r_gated.score, r_plain.score)
            << a.str() << " vs " << b.str();
    }
}

TEST_P(GatedFabric, ClockActivityReducedVsUngated)
{
    auto [n, m_side] = GetParam();
    if (m_side >= n)
        GTEST_SKIP();
    util::Rng rng(17000 + n * 13 + m_side);
    core::RaceGridCircuit plain(Alphabet::dna(), n, n);
    core::GatedRaceGridCircuit gated(Alphabet::dna(), n, n, m_side);
    auto [a, b] = bio::worstCasePair(rng, Alphabet::dna(), n);
    plain.sim().clearActivity();
    plain.align(a, b);
    gated.sim().clearActivity();
    gated.align(a, b);
    EXPECT_LT(gated.sim().activity().clockedDffCycles,
              plain.sim().activity().clockedDffCycles);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndGranularities, GatedFabric,
    ::testing::Combine(::testing::Values<size_t>(4, 6, 8, 12),
                       ::testing::Values<size_t>(1, 2, 4)));

TEST(GatedFabric, MatchesBehavioralGatingAnalysisClosely)
{
    // The gate-level enable network and the behavioral window
    // analysis model the same §4.3 scheme; their cell-DFF clock
    // activities should agree within the wake/latch edge slack.
    const size_t n = 8, m_side = 2;
    util::Rng rng(31);
    auto [a, b] = bio::worstCasePair(rng, Alphabet::dna(), n);

    core::GatedRaceGridCircuit gated(Alphabet::dna(), n, n, m_side);
    gated.sim().clearActivity();
    auto run = gated.align(a, b);
    ASSERT_TRUE(run.completed);
    // Strip the un-gated boundary frame; only the cell array is the
    // gated C_clk term the behavioral analysis models.
    uint64_t gate_level =
        core::splitGatedClockActivity(gated.sim().activity(), n, n)
            .cellDffCycles;

    core::RaceGridAligner model(
        ScoreMatrix::dnaShortestPathInfMismatch());
    core::GatingAnalysis analysis =
        core::analyzeClockGating(model.align(a, b), m_side);

    double ratio = double(gate_level) /
                   double(analysis.gatedDffCycles);
    EXPECT_GT(ratio, 0.5) << gate_level << " vs "
                          << analysis.gatedDffCycles;
    EXPECT_LT(ratio, 2.0) << gate_level << " vs "
                          << analysis.gatedDffCycles;
}

TEST(GatedFabric, GatingOverheadIsCounted)
{
    core::GatedRaceGridCircuit gated(Alphabet::dna(), 8, 8, 4);
    EXPECT_EQ(gated.regions(), 4u);
    EXPECT_GT(gated.gatingGateCount(), 0u);
    // A few gates per region (wake OR, done AND, NOT, enable AND).
    EXPECT_LE(gated.gatingGateCount(), gated.regions() * 6);
}

// ----------------------------------------------------- banded scores

class BandedDp : public ::testing::TestWithParam<int> {};

TEST_P(BandedDp, WideBandMatchesExactScore)
{
    util::Rng rng(18000 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    Sequence a = Sequence::random(rng, Alphabet::dna(),
                                  1 + rng.index(24));
    Sequence b = Sequence::random(rng, Alphabet::dna(),
                                  1 + rng.index(24));
    size_t band = std::max(a.size(), b.size());
    EXPECT_EQ(bio::bandedGlobalScore(a, b, m, band),
              bio::globalScore(a, b, m));
}

TEST_P(BandedDp, NarrowBandNeverBeatsExact)
{
    util::Rng rng(19000 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    size_t n = 4 + rng.index(20);
    Sequence a = Sequence::random(rng, Alphabet::dna(), n);
    Sequence b = Sequence::random(rng, Alphabet::dna(), n);
    bio::Score exact = bio::globalScore(a, b, m);
    for (size_t band = 0; band <= n; ++band) {
        bio::Score banded = bio::bandedGlobalScore(a, b, m, band);
        if (banded != bio::kScoreInfinity) {
            EXPECT_GE(banded, exact) << "band " << band;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandedDp, ::testing::Range(0, 10));

TEST(BandedDp, BandNarrowerThanLengthGapIsInfeasible)
{
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    Sequence a(Alphabet::dna(), "ACGTACGT");
    Sequence b(Alphabet::dna(), "AC");
    EXPECT_EQ(bio::bandedGlobalScore(a, b, m, 2), bio::kScoreInfinity);
    EXPECT_EQ(bio::bandedGlobalScore(a, b, m, 6),
              bio::globalScore(a, b, m));
}

TEST(BandedDp, NearlyIdenticalStringsNeedOnlyTinyBand)
{
    util::Rng rng(33);
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    Sequence a = Sequence::random(rng, Alphabet::dna(), 40);
    Sequence b = mutate(rng, a, bio::MutationModel{0.05, 0.0, 0.0});
    EXPECT_EQ(bio::bandedGlobalScore(a, b, m, 2),
              bio::globalScore(a, b, m));
}

} // namespace
