/**
 * @file
 * Tests for dynamic time warping on Race Logic: the reference DP,
 * the lattice construction, and race/DP equivalence -- the second
 * "beyond sequence alignment" dynamic program in the library.
 */

#include <gtest/gtest.h>

#include "rl/apps/dtw.h"
#include "rl/graph/paths.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using apps::Sample;

TEST(DtwDp, IdenticalSignalsAreDistanceZero)
{
    std::vector<Sample> x{1, 5, 3, 2, 8};
    EXPECT_EQ(apps::dtwDistance(x, x), 0);
}

TEST(DtwDp, KnownSmallCase)
{
    // Classic example: warping absorbs the stretched plateau.
    std::vector<Sample> x{0, 2, 4, 4, 0};
    std::vector<Sample> y{0, 2, 4, 0};
    EXPECT_EQ(apps::dtwDistance(x, y), 0);
    std::vector<Sample> z{1, 2, 4, 0};
    EXPECT_EQ(apps::dtwDistance(x, z), 1);
}

TEST(DtwDp, SingleSamples)
{
    EXPECT_EQ(apps::dtwDistance({3}, {8}), 5);
    EXPECT_EQ(apps::dtwDistance({3}, {3}), 0);
}

TEST(DtwDp, SymmetricInArguments)
{
    util::Rng rng(51);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Sample> x(1 + rng.index(12));
        std::vector<Sample> y(1 + rng.index(12));
        for (auto &v : x)
            v = rng.uniformInt(-10, 10);
        for (auto &v : y)
            v = rng.uniformInt(-10, 10);
        EXPECT_EQ(apps::dtwDistance(x, y), apps::dtwDistance(y, x));
    }
}

TEST(DtwDp, TimeShiftCostsLittleEuclideanCostsMuch)
{
    util::Rng rng(52);
    auto base = apps::quantizedSine(rng, 48, 2.0, 40.0);
    auto shifted = apps::quantizedSine(rng, 48, 2.0, 40.0, 0.6);
    int64_t dtw = apps::dtwDistance(base, shifted);
    int64_t euclid = 0;
    for (size_t t = 0; t < base.size(); ++t)
        euclid += std::abs(base[t] - shifted[t]);
    EXPECT_LT(dtw, euclid / 3)
        << "warping should absorb most of a phase shift";
}

class DtwRaceVsDp : public ::testing::TestWithParam<int> {};

TEST_P(DtwRaceVsDp, RaceDistanceEqualsDp)
{
    util::Rng rng(21000 + GetParam());
    std::vector<Sample> x(1 + rng.index(16));
    std::vector<Sample> y(1 + rng.index(16));
    for (auto &v : x)
        v = rng.uniformInt(0, 12);
    for (auto &v : y)
        v = rng.uniformInt(0, 12);
    auto raced = apps::raceDtw(x, y);
    EXPECT_EQ(raced.distance, apps::dtwDistance(x, y));
    EXPECT_EQ(raced.latencyCycles,
              static_cast<sim::Tick>(raced.distance));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtwRaceVsDp, ::testing::Range(0, 15));

TEST(DtwGraph, LatticeShape)
{
    std::vector<Sample> x{1, 2, 3};
    std::vector<Sample> y{1, 2};
    auto g = apps::makeDtwGraph(x, y);
    EXPECT_EQ(g.dag.nodeCount(), 3u * 2 + 1); // cells + source
    auto dp = graph::solveDag(g.dag, {g.source},
                              graph::Objective::Shortest);
    EXPECT_EQ(dp.distance[g.sink], apps::dtwDistance(x, y));
}

TEST(DtwGraph, ZeroWeightEdgesRaceAsWires)
{
    // Identical signals: every lattice edge weighs 0, the race
    // completes at cycle 0.
    std::vector<Sample> x{4, 4, 4, 4};
    auto raced = apps::raceDtw(x, x);
    EXPECT_EQ(raced.distance, 0);
    EXPECT_EQ(raced.latencyCycles, 0u);
}

TEST(QuantizedSine, ShapeAndDeterminism)
{
    util::Rng a(7), b(7);
    auto s1 = apps::quantizedSine(a, 32, 1.0, 20.0, 0.0, 2.0);
    auto s2 = apps::quantizedSine(b, 32, 1.0, 20.0, 0.0, 2.0);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1.size(), 32u);
    Sample peak = 0;
    for (Sample v : s1)
        peak = std::max(peak, std::abs(v));
    EXPECT_GT(peak, 15);
    EXPECT_LE(peak, 23);
}

} // namespace
