/**
 * @file
 * Tests for the reference DP aligners, including the paper's running
 * example (P = ACTGAGA vs Q = GATTCGA, Figs. 1 and 4) and the
 * structural identities the reproduction leans on.
 */

#include <gtest/gtest.h>

#include "rl/bio/align_dp.h"
#include "rl/bio/score_matrix.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::Score;
using bio::ScoreMatrix;
using bio::Sequence;

Sequence
dna(const std::string &text)
{
    return Sequence(Alphabet::dna(), text);
}

// --------------------------------------------------- paper's example

TEST(PaperExample, Fig4cScoreIsTen)
{
    // Fig. 4c: best alignment score between ACTGAGA and GATTCGA
    // under the Fig. 2b matrix (mismatch raised to infinity) is 10.
    Sequence p = dna("ACTGAGA");
    Sequence q = dna("GATTCGA");
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    EXPECT_EQ(bio::globalScore(q, p, m), 10);
}

TEST(PaperExample, LcsIdentity)
{
    // With mismatch = infinity, cost = N + M - LCS: the Fig. 1
    // strings share a length-4 common subsequence (e.g. A T G A).
    Sequence p = dna("ACTGAGA");
    Sequence q = dna("GATTCGA");
    EXPECT_EQ(bio::lcsLength(p, q), 4u);
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    EXPECT_EQ(bio::globalScore(q, p, m),
              Score(p.size() + q.size() - bio::lcsLength(p, q)));
}

TEST(PaperExample, Fig4cFullDpTable)
{
    // The cycle-count table printed inside Fig. 4c, verified cell by
    // cell (rows = GATTCGA, columns = ACTGAGA).
    Sequence p = dna("ACTGAGA");
    Sequence q = dna("GATTCGA");
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    util::Grid<Score> t = bio::dpTable(q, p, m);
    const Score expect[8][8] = {
        {0, 1, 2, 3, 4, 5, 6, 7},
        {1, 2, 3, 4, 4, 5, 6, 7},
        {2, 2, 3, 4, 5, 5, 6, 7},
        {3, 3, 4, 4, 5, 6, 7, 8},
        {4, 4, 5, 5, 6, 7, 8, 9},
        {5, 5, 5, 6, 7, 8, 9, 10},
        {6, 6, 6, 7, 7, 8, 9, 10},
        {7, 7, 7, 8, 8, 8, 9, 10},
    };
    for (size_t i = 0; i < 8; ++i)
        for (size_t j = 0; j < 8; ++j)
            EXPECT_EQ(t(i, j), expect[i][j])
                << "cell (" << i << "," << j << ")";
}

TEST(PaperExample, Fig1AlignmentBounds)
{
    // "the number of matches plus the number of mismatches plus the
    // number of indels ... can never exceed N + M".
    Sequence p = dna("ACTGAGA");
    Sequence q = dna("GATTCGA");
    auto a = bio::globalAlign(p, q, ScoreMatrix::dnaShortestPath());
    EXPECT_LE(a.matches + a.mismatches + a.indels,
              p.size() + q.size());
    EXPECT_EQ(bio::checkAlignment(p, q, ScoreMatrix::dnaShortestPath(),
                                  a),
              "");
}

// ----------------------------------------------------- basic corners

TEST(GlobalAlign, IdenticalStrings)
{
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    Sequence s = dna("ACGTACGT");
    EXPECT_EQ(bio::globalScore(s, s, m), Score(s.size()));
    auto a = bio::globalAlign(s, s, m);
    EXPECT_EQ(a.matches, s.size());
    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(a.indels, 0u);
}

TEST(GlobalAlign, EmptyStrings)
{
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    Sequence e(Alphabet::dna());
    Sequence s = dna("ACGT");
    EXPECT_EQ(bio::globalScore(e, e, m), 0);
    EXPECT_EQ(bio::globalScore(e, s, m), 4);
    EXPECT_EQ(bio::globalScore(s, e, m), 4);
}

TEST(GlobalAlign, CompleteMismatchCostsAllIndels)
{
    // With mismatch = infinity, fully-disjoint strings can only be
    // aligned by deleting one and inserting the other: cost N + M.
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    EXPECT_EQ(bio::globalScore(dna("AAAA"), dna("CCCC"), m), 8);
}

TEST(GlobalAlign, SimilarityKindMaximizes)
{
    ScoreMatrix m = ScoreMatrix::dnaLongestPath();
    EXPECT_EQ(bio::globalScore(dna("ACGT"), dna("ACGT"), m), 4);
    EXPECT_EQ(bio::globalScore(dna("AAAA"), dna("CCCC"), m), 0);
    // One shared letter -> best score 1.
    EXPECT_EQ(bio::globalScore(dna("AAAA"), dna("CCAC"), m), 1);
}

TEST(GlobalAlign, TracebackValidOnRandomPairs)
{
    util::Rng rng(11);
    ScoreMatrix cost = ScoreMatrix::dnaShortestPath();
    ScoreMatrix inf = ScoreMatrix::dnaShortestPathInfMismatch();
    ScoreMatrix sim = ScoreMatrix::blosum62();
    for (int trial = 0; trial < 30; ++trial) {
        size_t n = 1 + rng.index(20);
        size_t m = 1 + rng.index(20);
        Sequence a = Sequence::random(rng, Alphabet::dna(), n);
        Sequence b = Sequence::random(rng, Alphabet::dna(), m);
        EXPECT_EQ(bio::checkAlignment(a, b, cost,
                                      bio::globalAlign(a, b, cost)),
                  "");
        EXPECT_EQ(bio::checkAlignment(a, b, inf,
                                      bio::globalAlign(a, b, inf)),
                  "");
        Sequence pa = Sequence::random(rng, Alphabet::protein(), n);
        Sequence pb = Sequence::random(rng, Alphabet::protein(), m);
        EXPECT_EQ(bio::checkAlignment(pa, pb, sim,
                                      bio::globalAlign(pa, pb, sim)),
                  "");
    }
}

TEST(GlobalAlign, TwoRowScoreMatchesFullTable)
{
    util::Rng rng(12);
    ScoreMatrix m = ScoreMatrix::blosum62();
    for (int trial = 0; trial < 15; ++trial) {
        Sequence a = Sequence::random(rng, Alphabet::protein(),
                                      1 + rng.index(25));
        Sequence b = Sequence::random(rng, Alphabet::protein(),
                                      1 + rng.index(25));
        auto table = bio::dpTable(a, b, m);
        EXPECT_EQ(bio::globalScore(a, b, m),
                  table(a.size(), b.size()));
    }
}

// --------------------------------------------------------- Hirschberg

class Hirschberg : public ::testing::TestWithParam<int> {};

TEST_P(Hirschberg, OptimalAndValidOnRandomPairs)
{
    util::Rng rng(26000 + GetParam());
    ScoreMatrix cost = ScoreMatrix::dnaShortestPath();
    ScoreMatrix inf = ScoreMatrix::dnaShortestPathInfMismatch();
    ScoreMatrix sim = ScoreMatrix::blosum62();
    {
        Sequence a = Sequence::random(rng, Alphabet::dna(),
                                      rng.index(30));
        Sequence b = Sequence::random(rng, Alphabet::dna(),
                                      rng.index(30));
        for (const ScoreMatrix *m : {&cost, &inf}) {
            auto h = bio::hirschbergAlign(a, b, *m);
            EXPECT_EQ(h.score, bio::globalScore(a, b, *m));
            EXPECT_EQ(bio::checkAlignment(a, b, *m, h), "");
        }
    }
    {
        Sequence a = Sequence::random(rng, Alphabet::protein(),
                                      1 + rng.index(20));
        Sequence b = Sequence::random(rng, Alphabet::protein(),
                                      1 + rng.index(20));
        auto h = bio::hirschbergAlign(a, b, sim);
        EXPECT_EQ(h.score, bio::globalScore(a, b, sim));
        EXPECT_EQ(bio::checkAlignment(a, b, sim, h), "");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Hirschberg, ::testing::Range(0, 15));

TEST(HirschbergEdge, EmptyAndSingletonInputs)
{
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    Sequence e(Alphabet::dna());
    Sequence s = dna("ACGT");
    EXPECT_EQ(bio::hirschbergAlign(e, s, m).score, 4);
    EXPECT_EQ(bio::hirschbergAlign(s, e, m).score, 4);
    EXPECT_EQ(bio::hirschbergAlign(e, e, m).score, 0);
    EXPECT_EQ(bio::hirschbergAlign(dna("A"), s, m).score,
              bio::globalScore(dna("A"), s, m));
}

TEST(HirschbergEdge, LongSequencesLinearSpacePath)
{
    // The point of Hirschberg: long inputs, full-table memory never
    // allocated, result still optimal.
    util::Rng rng(27);
    Sequence a = Sequence::random(rng, Alphabet::dna(), 400);
    Sequence b = mutate(rng, a, bio::MutationModel::uniform(0.1));
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    auto h = bio::hirschbergAlign(a, b, m);
    EXPECT_EQ(h.score, bio::globalScore(a, b, m));
    EXPECT_EQ(bio::checkAlignment(a, b, m, h), "");
}

// -------------------------------------------------------- Levenshtein

TEST(Levenshtein, KnownDistances)
{
    EXPECT_EQ(bio::levenshtein(dna("ACGT"), dna("ACGT")), 0);
    EXPECT_EQ(bio::levenshtein(dna("ACGT"), dna("AGT")), 1);
    EXPECT_EQ(bio::levenshtein(dna("AC"), dna("CA")), 2);
    EXPECT_EQ(bio::levenshtein(dna(""), dna("ACGT")), 4);
}

TEST(Levenshtein, MatchesUnitEditMatrixDp)
{
    util::Rng rng(13);
    ScoreMatrix unit = ScoreMatrix::unitEdit(Alphabet::dna());
    for (int trial = 0; trial < 25; ++trial) {
        Sequence a = Sequence::random(rng, Alphabet::dna(),
                                      rng.index(18));
        Sequence b = Sequence::random(rng, Alphabet::dna(),
                                      rng.index(18));
        EXPECT_EQ(bio::levenshtein(a, b),
                  bio::globalScore(a, b, unit));
    }
}

TEST(Levenshtein, MetricProperties)
{
    util::Rng rng(14);
    for (int trial = 0; trial < 15; ++trial) {
        Sequence a = Sequence::random(rng, Alphabet::dna(),
                                      1 + rng.index(12));
        Sequence b = Sequence::random(rng, Alphabet::dna(),
                                      1 + rng.index(12));
        Sequence c = Sequence::random(rng, Alphabet::dna(),
                                      1 + rng.index(12));
        Score ab = bio::levenshtein(a, b);
        Score ba = bio::levenshtein(b, a);
        Score bc = bio::levenshtein(b, c);
        Score ac = bio::levenshtein(a, c);
        EXPECT_EQ(ab, ba);                  // symmetry
        EXPECT_LE(ac, ab + bc);             // triangle inequality
        EXPECT_EQ(bio::levenshtein(a, a), 0);
    }
}

// ---------------------------------------------------------------- LCS

TEST(Lcs, KnownValues)
{
    EXPECT_EQ(bio::lcsLength(dna("ACGT"), dna("ACGT")), 4u);
    EXPECT_EQ(bio::lcsLength(dna("AAAA"), dna("CCCC")), 0u);
    EXPECT_EQ(bio::lcsLength(dna("ACGT"), dna("AGT")), 3u);
}

TEST(Lcs, InfMismatchCostIdentityOnRandomPairs)
{
    util::Rng rng(15);
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    for (int trial = 0; trial < 30; ++trial) {
        Sequence a = Sequence::random(rng, Alphabet::dna(),
                                      1 + rng.index(24));
        Sequence b = Sequence::random(rng, Alphabet::dna(),
                                      1 + rng.index(24));
        EXPECT_EQ(bio::globalScore(a, b, m),
                  Score(a.size() + b.size() -
                        2 * bio::lcsLength(a, b)) +
                      Score(bio::lcsLength(a, b)));
    }
}

// ---------------------------------------------------- Smith-Waterman

TEST(LocalAlign, FindsEmbeddedMotif)
{
    ScoreMatrix sim(Alphabet::dna(), bio::ScoreKind::Similarity);
    for (bio::Symbol s = 0; s < 4; ++s) {
        sim.setGap(s, -2);
        for (bio::Symbol t = 0; t < 4; ++t)
            sim.setPair(s, t, s == t ? 2 : -1);
    }
    Sequence a = dna("TTTTACGTACGTTTTT");
    Sequence b = dna("GGACGTACGAGG");
    auto local = bio::localAlign(a, b, sim);
    EXPECT_GE(local.score, 2 * 8 - 3); // the ACGTACG core
    EXPECT_GT(local.endA, local.beginA);
    EXPECT_EQ(local.alignedA.size(), local.alignedB.size());
}

TEST(LocalAlign, DisjointStringsScoreZero)
{
    ScoreMatrix sim(Alphabet::dna(), bio::ScoreKind::Similarity);
    for (bio::Symbol s = 0; s < 4; ++s) {
        sim.setGap(s, -2);
        for (bio::Symbol t = 0; t < 4; ++t)
            sim.setPair(s, t, s == t ? 2 : -3);
    }
    auto local = bio::localAlign(dna("AAAA"), dna("CCCC"), sim);
    EXPECT_EQ(local.score, 0);
    EXPECT_TRUE(local.alignedA.empty());
}

TEST(LocalAlign, AtLeastGlobalOnPerfectMatch)
{
    ScoreMatrix blosum = ScoreMatrix::blosum62();
    Sequence s(Alphabet::protein(), "WWHKTW");
    auto local = bio::localAlign(s, s, blosum);
    EXPECT_EQ(local.score, bio::globalScore(s, s, blosum));
}

TEST(LocalAlignDeath, RejectsCostMatrix)
{
    Sequence s = dna("ACGT");
    EXPECT_DEATH(bio::localAlign(s, s, ScoreMatrix::dnaShortestPath()),
                 "similarity");
}

// -------------------------------------------------- checkAlignment

TEST(CheckAlignment, DetectsCorruptedScore)
{
    Sequence a = dna("ACGT");
    Sequence b = dna("AGT");
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    auto al = bio::globalAlign(a, b, m);
    al.score += 1;
    EXPECT_NE(bio::checkAlignment(a, b, m, al), "");
}

TEST(CheckAlignment, DetectsBrokenPath)
{
    Sequence a = dna("ACGT");
    Sequence b = dna("AGT");
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    auto al = bio::globalAlign(a, b, m);
    al.path.pop_back();
    EXPECT_NE(bio::checkAlignment(a, b, m, al), "");
}

} // namespace
