/**
 * @file
 * The central equivalence of the paper, tested both ways: an OR-type
 * race equals shortest-path DP and an AND-type race equals
 * longest-path DP, for the event-driven backend and for compiled
 * gate-level circuits.
 */

#include <gtest/gtest.h>

#include "rl/circuit/sim_sync.h"
#include "rl/core/race_network.h"
#include "rl/graph/generate.h"
#include "rl/graph/paths.h"
#include "rl/graph/topo.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using core::RaceOutcome;
using core::RaceType;
using graph::Dag;
using graph::NodeId;
using graph::Objective;

// ------------------------------------------------------ event backend

TEST(RaceDag, Fig3OrRaceTakesTwoCycles)
{
    Dag d = graph::makeFig3ExampleDag();
    RaceOutcome out = core::raceDag(d, {0, 1}, RaceType::Or);
    // "it takes two cycles for the '1' signal to propagate to the
    // output node".
    EXPECT_EQ(out.at(4).time(), 2u);
}

TEST(RaceDag, Fig3AndRaceComputesLongestPath)
{
    Dag d = graph::makeFig3ExampleDag();
    RaceOutcome out = core::raceDag(d, {0, 1}, RaceType::And);
    auto dp = graph::solveDag(d, {0, 1}, Objective::Longest);
    ASSERT_TRUE(core::andRaceMatchesDp(d, {0, 1}));
    EXPECT_EQ(out.at(4).time(),
              static_cast<sim::Tick>(dp.distance[4]));
}

TEST(RaceDag, UnreachableNodesNeverFire)
{
    Dag d(3);
    d.addEdge(0, 1, 2);
    RaceOutcome out = core::raceDag(d, {0}, RaceType::Or);
    EXPECT_TRUE(out.at(1).fired());
    EXPECT_FALSE(out.at(2).fired());
}

TEST(RaceDag, ZeroWeightEdgesPropagateSameTick)
{
    Dag d(3);
    d.addEdge(0, 1, 0);
    d.addEdge(1, 2, 0);
    RaceOutcome out = core::raceDag(d, {0}, RaceType::Or);
    EXPECT_EQ(out.at(2).time(), 0u);
}

TEST(RaceDag, AndNodeWithDeadInputStallsForever)
{
    // Node 2 has an in-edge from unreachable node 1: the AND gate
    // waits forever -- the hardware semantics the docs call out.
    Dag d(4);
    d.addEdge(0, 2, 1);
    d.addEdge(1, 2, 1);
    d.addEdge(2, 3, 1);
    EXPECT_FALSE(core::andRaceMatchesDp(d, {0}));
    RaceOutcome out = core::raceDag(d, {0}, RaceType::And);
    EXPECT_FALSE(out.at(2).fired());
    EXPECT_FALSE(out.at(3).fired());
}

TEST(RaceDagDeath, NegativeWeightsRejected)
{
    Dag d(2);
    d.addEdge(0, 1, -1);
    EXPECT_EXIT(core::raceDag(d, {0}, RaceType::Or),
                ::testing::ExitedWithCode(1), "negative");
}

class RaceVsDp : public ::testing::TestWithParam<int> {};

TEST_P(RaceVsDp, OrRaceEqualsShortestPathEverywhere)
{
    util::Rng rng(500 + GetParam());
    Dag d = graph::randomDag(rng, 60, 0.12, {1, 7});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    RaceOutcome out = core::raceDag(d, {source}, RaceType::Or);
    auto dp = graph::solveDag(d, {source}, Objective::Shortest);
    for (NodeId node = 0; node < d.nodeCount(); ++node) {
        if (dp.reached(node)) {
            ASSERT_TRUE(out.at(node).fired()) << "node " << node;
            EXPECT_EQ(out.at(node).time(),
                      static_cast<sim::Tick>(dp.distance[node]))
                << "node " << node;
        } else {
            EXPECT_FALSE(out.at(node).fired()) << "node " << node;
        }
    }
    (void)sink;
}

TEST_P(RaceVsDp, AndRaceEqualsLongestPathEverywhere)
{
    util::Rng rng(900 + GetParam());
    // Layered DAGs guarantee every node's predecessors are reachable
    // from the sources, which is the condition for AND-race == DP.
    Dag d = graph::layeredDag(rng, 6, 5, 0.5, {1, 9});
    std::vector<NodeId> sources;
    for (NodeId n = 0; n < 5; ++n)
        sources.push_back(n);
    ASSERT_TRUE(core::andRaceMatchesDp(d, sources));
    RaceOutcome out = core::raceDag(d, sources, RaceType::And);
    auto dp = graph::solveDag(d, sources, Objective::Longest);
    for (NodeId node = 0; node < d.nodeCount(); ++node) {
        if (!dp.reached(node))
            continue;
        ASSERT_TRUE(out.at(node).fired()) << "node " << node;
        EXPECT_EQ(out.at(node).time(),
                  static_cast<sim::Tick>(dp.distance[node]))
            << "node " << node;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaceVsDp, ::testing::Range(0, 20));

// -------------------------------------------------- compiled circuits

class CompiledRace : public ::testing::TestWithParam<int> {};

TEST_P(CompiledRace, GateLevelOrRaceMatchesEventBackend)
{
    util::Rng rng(1300 + GetParam());
    Dag d = graph::randomDag(rng, 24, 0.2, {0, 5});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    RaceOutcome event = core::raceDag(d, {source}, RaceType::Or);

    core::RaceCircuit rc =
        core::compileRaceCircuit(d, {source}, RaceType::Or);
    const uint64_t budget = 24ull * 6 + 10;

    // Check the sink arrival cycle, then spot-check every node's
    // level at a mid-race cycle against the event backend.
    circuit::SyncSim sim(rc.netlist);
    for (circuit::NetId in : rc.sourceInputs)
        sim.setInput(in, true);
    auto arrival = sim.runUntil(rc.nodeNets[sink], true, budget);
    ASSERT_TRUE(arrival.has_value());
    EXPECT_EQ(*arrival, event.at(sink).time());

    circuit::SyncSim fresh(rc.netlist);
    for (circuit::NetId in : rc.sourceInputs)
        fresh.setInput(in, true);
    sim::Tick mid = event.at(sink).time() / 2;
    for (sim::Tick c = 0; c < mid; ++c)
        fresh.tick();
    for (NodeId node = 0; node < d.nodeCount(); ++node) {
        bool fired_by_mid =
            event.at(node).fired() && event.at(node).time() <= mid;
        EXPECT_EQ(fresh.value(rc.nodeNets[node]), fired_by_mid)
            << "node " << node << " at cycle " << mid;
    }
}

TEST_P(CompiledRace, GateLevelAndRaceMatchesEventBackend)
{
    util::Rng rng(1700 + GetParam());
    Dag d = graph::layeredDag(rng, 5, 4, 0.5, {1, 4});
    std::vector<NodeId> sources{0, 1, 2, 3};
    RaceOutcome event = core::raceDag(d, sources, RaceType::And);

    core::RaceCircuit rc =
        core::compileRaceCircuit(d, sources, RaceType::And);
    circuit::SyncSim sim(rc.netlist);
    for (circuit::NetId in : rc.sourceInputs)
        sim.setInput(in, true);
    NodeId deepest = 0;
    sim::Tick latest = 0;
    for (NodeId node = 0; node < d.nodeCount(); ++node) {
        if (event.at(node).fired() && event.at(node).time() >= latest) {
            latest = event.at(node).time();
            deepest = node;
        }
    }
    auto arrival = sim.runUntil(rc.nodeNets[deepest], true, latest + 4);
    ASSERT_TRUE(arrival.has_value());
    EXPECT_EQ(*arrival, latest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledRace, ::testing::Range(0, 12));

TEST(CompiledRace, CircuitShapeMatchesConstruction)
{
    Dag d = graph::makeFig3ExampleDag();
    core::RaceCircuit rc =
        core::compileRaceCircuit(d, {0, 1}, RaceType::Or);
    auto counts = rc.netlist.typeCounts();
    // Total delay stages equal the sum of edge weights.
    graph::Weight total = 0;
    for (const auto &e : d.edges())
        total += e.weight;
    EXPECT_EQ(counts[size_t(circuit::GateType::Dff)],
              static_cast<size_t>(total));
    EXPECT_EQ(rc.sourceInputs.size(), 2u);
}

} // namespace
