/**
 * @file
 * End-to-end integration tests: the public RaceAligner API, triple
 * agreement between Race Logic / systolic baseline / DP oracle, and
 * a full screening pipeline.
 */

#include <gtest/gtest.h>

#include "rl/bio/align_dp.h"
#include "rl/core/race_aligner.h"
#include "rl/core/threshold.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::Backend;
using core::RaceAligner;

TEST(RaceAligner, CostMatrixPassthrough)
{
    RaceAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    Sequence p(Alphabet::dna(), "ACTGAGA");
    Sequence q(Alphabet::dna(), "GATTCGA");
    auto out = aligner.align(q, p);
    EXPECT_EQ(out.score, 10);
    EXPECT_EQ(out.racedCost, 10);
    EXPECT_EQ(out.latencyCycles, 10u);
    EXPECT_FALSE(aligner.conversion().has_value());
}

TEST(RaceAligner, SimilarityMatrixAutoConverts)
{
    RaceAligner aligner(ScoreMatrix::blosum62());
    ASSERT_TRUE(aligner.conversion().has_value());
    EXPECT_EQ(aligner.conversion()->bias, 6);
    Sequence a(Alphabet::protein(), "HEAGAWGHEE");
    Sequence b(Alphabet::protein(), "PAWHEAE");
    auto out = aligner.align(a, b);
    EXPECT_EQ(out.score,
              bio::globalScore(a, b, ScoreMatrix::blosum62()));
    EXPECT_GT(out.latencyCycles, 0u);
}

class AlignerVsOracles : public ::testing::TestWithParam<int> {};

TEST_P(AlignerVsOracles, TripleAgreementRaceSystolicDp)
{
    // The load-bearing claim of the whole reproduction: three
    // completely independent engines -- the temporal race, the
    // mod-4 systolic array, and the textbook DP -- produce the same
    // score on random inputs.
    util::Rng rng(11000 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceAligner race(m);
    systolic::LiptonLoprestiArray sys(m);
    for (int trial = 0; trial < 5; ++trial) {
        size_t n = 1 + rng.index(28);
        size_t k = 1 + rng.index(28);
        Sequence a = Sequence::random(rng, Alphabet::dna(), n);
        Sequence b = Sequence::random(rng, Alphabet::dna(), k);
        bio::Score dp = bio::globalScore(a, b, m);
        EXPECT_EQ(race.align(a, b).score, dp);
        EXPECT_EQ(sys.align(a, b).score, dp);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignerVsOracles,
                         ::testing::Range(0, 10));

class GateLevelBackend : public ::testing::TestWithParam<int> {};

TEST_P(GateLevelBackend, CrossChecksBehavioralModel)
{
    // Backend::GateLevel synthesizes a real netlist per comparison
    // and asserts agreement internally; any divergence aborts.
    util::Rng rng(12000 + GetParam());
    RaceAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch(),
                        Backend::GateLevel);
    size_t n = 1 + rng.index(6);
    size_t k = 1 + rng.index(6);
    Sequence a = Sequence::random(rng, Alphabet::dna(), n);
    Sequence b = Sequence::random(rng, Alphabet::dna(), k);
    auto out = aligner.align(a, b);
    EXPECT_EQ(out.score,
              bio::globalScore(
                  a, b, ScoreMatrix::dnaShortestPathInfMismatch()));
}

TEST_P(GateLevelBackend, Blosum62GateLevelRoundTrip)
{
    util::Rng rng(13000 + GetParam());
    RaceAligner aligner(ScoreMatrix::blosum62(), Backend::GateLevel);
    // Tiny strings: each generalized protein cell is ~10^3 gates.
    Sequence a = Sequence::random(rng, Alphabet::protein(), 2);
    Sequence b = Sequence::random(rng, Alphabet::protein(), 2);
    auto out = aligner.align(a, b);
    EXPECT_EQ(out.score,
              bio::globalScore(a, b, ScoreMatrix::blosum62()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateLevelBackend,
                         ::testing::Range(0, 5));

TEST(ScreeningPipeline, EndToEndRecallAndPrecisionProxy)
{
    // Section 6 workload: screen a database where a minority of
    // entries are genuine relatives of the query.  With a sane
    // threshold the screener keeps relatives and rejects chance
    // similarities -- checked against the exact DP filter rather
    // than the generator's ground truth (mutation can occasionally
    // produce a distant relative; the hardware is exact either way).
    util::Rng rng(99);
    auto wl = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), 32, 80, 0.3,
        bio::MutationModel{0.04, 0.02, 0.02});
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    bio::Score threshold = 44;
    core::ThresholdScreener screener(m, threshold);
    auto stats = screener.screenDatabase(wl.query, wl.database);
    for (size_t i = 0; i < wl.database.size(); ++i) {
        bool dp_similar =
            bio::globalScore(wl.query, wl.database[i], m) <= threshold;
        EXPECT_EQ(stats.accepted[i], dp_similar) << "entry " << i;
    }
    EXPECT_GT(stats.acceptedCount, 0u);
    EXPECT_LT(stats.acceptedCount, wl.database.size());
    EXPECT_GT(stats.speedup(), 1.0);
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults)
{
    // The whole stack is deterministic under a fixed seed --
    // required for reproducible experiments.
    auto run = [] {
        util::Rng rng(555);
        RaceAligner aligner(ScoreMatrix::blosum62());
        Sequence a = Sequence::random(rng, Alphabet::protein(), 24);
        Sequence b = Sequence::random(rng, Alphabet::protein(), 20);
        auto out = aligner.align(a, b);
        return std::make_pair(out.score, out.latencyCycles);
    };
    EXPECT_EQ(run(), run());
}

} // namespace
