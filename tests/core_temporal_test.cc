/**
 * @file
 * Property tests for the temporal-value algebra: the min-plus and
 * max-plus semiring laws that make Race Logic compute DP.
 */

#include <gtest/gtest.h>

#include "rl/core/temporal.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using core::TemporalValue;
using core::firstArrival;
using core::lastArrival;

TemporalValue
randomValue(util::Rng &rng)
{
    if (rng.bernoulli(0.15))
        return TemporalValue::never();
    return TemporalValue::at(rng.uniformInt(0, 1000));
}

TEST(Temporal, BasicConstruction)
{
    EXPECT_FALSE(TemporalValue::never().fired());
    EXPECT_TRUE(TemporalValue::at(3).fired());
    EXPECT_EQ(TemporalValue::at(3).time(), 3u);
    EXPECT_FALSE(TemporalValue().fired());
}

TEST(Temporal, DelayAddsAndNeverStaysNever)
{
    EXPECT_EQ(TemporalValue::at(4).delayed(3).time(), 7u);
    EXPECT_FALSE(TemporalValue::never().delayed(3).fired());
    EXPECT_EQ(TemporalValue::at(4).delayed(0).time(), 4u);
}

TEST(Temporal, OrGateIsMin)
{
    auto a = TemporalValue::at(3);
    auto b = TemporalValue::at(9);
    EXPECT_EQ(firstArrival(a, b).time(), 3u);
    EXPECT_EQ(firstArrival(b, a).time(), 3u);
    EXPECT_EQ(firstArrival(a, TemporalValue::never()).time(), 3u);
}

TEST(Temporal, AndGateIsMax)
{
    auto a = TemporalValue::at(3);
    auto b = TemporalValue::at(9);
    EXPECT_EQ(lastArrival(a, b).time(), 9u);
    EXPECT_FALSE(lastArrival(a, TemporalValue::never()).fired())
        << "an AND gate with a dead input never fires";
}

TEST(Temporal, NaryOperators)
{
    EXPECT_EQ(firstArrival({TemporalValue::at(5), TemporalValue::at(2),
                            TemporalValue::at(8)})
                  .time(),
              2u);
    EXPECT_EQ(lastArrival({TemporalValue::at(5), TemporalValue::at(2),
                           TemporalValue::at(8)})
                  .time(),
              8u);
}

TEST(Temporal, DeathOnReadingNever)
{
    EXPECT_DEATH(TemporalValue::never().time(), "never-arriving");
}

class TemporalLaws : public ::testing::TestWithParam<int> {};

TEST_P(TemporalLaws, SemiringProperties)
{
    util::Rng rng(3000 + GetParam());
    for (int i = 0; i < 200; ++i) {
        TemporalValue a = randomValue(rng);
        TemporalValue b = randomValue(rng);
        TemporalValue c = randomValue(rng);
        sim::Tick d = rng.uniformInt(0, 50);

        // Commutativity and associativity of both "additions".
        EXPECT_EQ(firstArrival(a, b), firstArrival(b, a));
        EXPECT_EQ(lastArrival(a, b), lastArrival(b, a));
        EXPECT_EQ(firstArrival(firstArrival(a, b), c),
                  firstArrival(a, firstArrival(b, c)));
        EXPECT_EQ(lastArrival(lastArrival(a, b), c),
                  lastArrival(a, lastArrival(b, c)));

        // Identities: never is the identity of min; t=0 of max.
        EXPECT_EQ(firstArrival(a, TemporalValue::never()), a);
        EXPECT_EQ(lastArrival(a, TemporalValue::at(0)), a);

        // Delay distributes over both (the semiring "multiply"):
        // (a min b) + d = (a + d) min (b + d), same for max.
        EXPECT_EQ(firstArrival(a, b).delayed(d),
                  firstArrival(a.delayed(d), b.delayed(d)));
        EXPECT_EQ(lastArrival(a, b).delayed(d),
                  lastArrival(a.delayed(d), b.delayed(d)));

        // Idempotence.
        EXPECT_EQ(firstArrival(a, a), a);
        EXPECT_EQ(lastArrival(a, a), a);

        // Absorption of never in max.
        EXPECT_EQ(lastArrival(a, TemporalValue::never()),
                  TemporalValue::never());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalLaws, ::testing::Range(0, 8));

} // namespace
