/**
 * @file
 * Unit and property tests for rl/graph: DAG structure, topological
 * order, the DP path oracles, and the random generators.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "rl/graph/dag.h"
#include "rl/graph/generate.h"
#include "rl/graph/paths.h"
#include "rl/graph/topo.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using graph::Dag;
using graph::NodeId;
using graph::Objective;
using graph::Weight;

Dag
diamond()
{
    // 0 -> 1 (1), 0 -> 2 (5), 1 -> 3 (1), 2 -> 3 (1)
    Dag d(4);
    d.addEdge(0, 1, 1);
    d.addEdge(0, 2, 5);
    d.addEdge(1, 3, 1);
    d.addEdge(2, 3, 1);
    return d;
}

// ----------------------------------------------------------- structure

TEST(Dag, NodeAndEdgeCounting)
{
    Dag d = diamond();
    EXPECT_EQ(d.nodeCount(), 4u);
    EXPECT_EQ(d.edgeCount(), 4u);
    EXPECT_EQ(d.inDegree(3), 2u);
    EXPECT_EQ(d.outDegree(0), 2u);
    EXPECT_EQ(d.sources(), (std::vector<NodeId>{0}));
    EXPECT_EQ(d.sinks(), (std::vector<NodeId>{3}));
}

TEST(Dag, WeightsExtremes)
{
    Dag d = diamond();
    EXPECT_EQ(d.minWeight(), 1);
    EXPECT_EQ(d.maxWeight(), 5);
}

TEST(Dag, Labels)
{
    Dag d;
    NodeId a = d.addNode("root");
    EXPECT_EQ(d.label(a), "root");
    NodeId b = d.addNode();
    EXPECT_EQ(d.label(b), "");
}

TEST(Dag, AcyclicDetection)
{
    Dag d = diamond();
    EXPECT_TRUE(d.isAcyclic());
    d.addEdge(3, 0, 1); // close the loop
    EXPECT_FALSE(d.isAcyclic());
}

TEST(DagDeath, SelfLoopRejected)
{
    Dag d(2);
    EXPECT_EXIT(d.addEdge(1, 1, 1), ::testing::ExitedWithCode(1),
                "self-loop");
}

TEST(DagDeath, ValidateAcyclicOnCycle)
{
    Dag d(2);
    d.addEdge(0, 1, 1);
    d.addEdge(1, 0, 1);
    EXPECT_EXIT(d.validateAcyclic(), ::testing::ExitedWithCode(1),
                "cycle");
}

// ----------------------------------------------------------- topology

TEST(Topo, OrderRespectsEdges)
{
    util::Rng rng(1);
    Dag d = graph::randomDag(rng, 40, 0.15, {1, 5});
    auto order = graph::topologicalOrder(d);
    std::vector<size_t> position(d.nodeCount());
    for (size_t i = 0; i < order.size(); ++i)
        position[order[i]] = i;
    for (const auto &e : d.edges())
        EXPECT_LT(position[e.from], position[e.to]);
}

TEST(Topo, OrderIsDeterministicSmallestFirst)
{
    Dag d(3); // no edges: expect 0, 1, 2
    auto order = graph::topologicalOrder(d);
    EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Topo, Reachability)
{
    Dag d = diamond();
    auto from0 = graph::reachableFrom(d, 0);
    EXPECT_TRUE(from0[0] && from0[1] && from0[2] && from0[3]);
    auto from1 = graph::reachableFrom(d, 1);
    EXPECT_FALSE(from1[0]);
    EXPECT_FALSE(from1[2]);
    EXPECT_TRUE(from1[3]);
    auto to3 = graph::canReach(d, 3);
    EXPECT_TRUE(to3[0] && to3[1] && to3[2] && to3[3]);
    auto to1 = graph::canReach(d, 1);
    EXPECT_TRUE(to1[0]);
    EXPECT_FALSE(to1[2]);
}

TEST(Topo, Depth)
{
    Dag d = diamond();
    EXPECT_EQ(graph::depth(d), 2u);
    Dag chain(5);
    for (NodeId i = 0; i + 1 < 5; ++i)
        chain.addEdge(i, i + 1, 1);
    EXPECT_EQ(graph::depth(chain), 4u);
}

// ------------------------------------------------------------- paths

TEST(Paths, DiamondShortestAndLongest)
{
    Dag d = diamond();
    auto s = graph::solveDag(d, {0}, Objective::Shortest);
    EXPECT_EQ(s.distance[3], 2);
    auto l = graph::solveDag(d, {0}, Objective::Longest);
    EXPECT_EQ(l.distance[3], 6);
}

TEST(Paths, ExtractPathIsConsistent)
{
    Dag d = diamond();
    auto s = graph::solveDag(d, {0}, Objective::Shortest);
    auto path = graph::extractPath(s, 3);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 3u);
    EXPECT_EQ(graph::pathWeight(d, path), s.distance[3]);
}

TEST(Paths, UnreachableNodes)
{
    Dag d(3);
    d.addEdge(0, 1, 1); // node 2 isolated
    auto s = graph::solveDag(d, {0}, Objective::Shortest);
    EXPECT_TRUE(s.reached(1));
    EXPECT_FALSE(s.reached(2));
    EXPECT_TRUE(graph::extractPath(s, 2).empty());
}

TEST(Paths, MultipleSources)
{
    Dag d(4);
    d.addEdge(0, 2, 10);
    d.addEdge(1, 2, 1);
    d.addEdge(2, 3, 1);
    auto s = graph::solveDag(d, {0, 1}, Objective::Shortest);
    EXPECT_EQ(s.distance[2], 1);
    EXPECT_EQ(s.distance[3], 2);
    auto l = graph::solveDag(d, {0, 1}, Objective::Longest);
    EXPECT_EQ(l.distance[3], 11);
}

TEST(Paths, CountPaths)
{
    Dag d = diamond();
    EXPECT_EQ(graph::countPaths(d, 0, 3), 2u);
    // An k-stage ladder has 2^k paths.
    Dag ladder(2 * 6);
    for (int k = 0; k + 2 < 12; k += 2) {
        ladder.addEdge(k, k + 2, 1);
        ladder.addEdge(k, k + 3, 1);
        ladder.addEdge(k + 1, k + 2, 1);
        ladder.addEdge(k + 1, k + 3, 1);
    }
    EXPECT_EQ(graph::countPaths(ladder, 0, 10), 16u);
}

TEST(Paths, CountPathsSaturatesAtCap)
{
    Dag d = diamond();
    EXPECT_EQ(graph::countPaths(d, 0, 3, 1), 1u);
}

/** Brute-force path enumeration oracle for small graphs. */
void
allPathWeights(const Dag &d, NodeId node, NodeId sink, Weight acc,
               std::vector<Weight> &out)
{
    if (node == sink) {
        out.push_back(acc);
        return;
    }
    for (uint32_t idx : d.outEdges(node)) {
        const auto &e = d.edges()[idx];
        allPathWeights(d, e.to, sink, acc + e.weight, out);
    }
}

class RandomDagOracle : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagOracle, DpMatchesBruteForceEnumeration)
{
    util::Rng rng(1000 + GetParam());
    Dag d = graph::randomDag(rng, 9, 0.35, {1, 6});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    std::vector<Weight> weights;
    allPathWeights(d, source, sink, 0, weights);
    ASSERT_FALSE(weights.empty());
    auto s = graph::solveDag(d, {source}, Objective::Shortest);
    auto l = graph::solveDag(d, {source}, Objective::Longest);
    EXPECT_EQ(s.distance[sink],
              *std::min_element(weights.begin(), weights.end()));
    EXPECT_EQ(l.distance[sink],
              *std::max_element(weights.begin(), weights.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagOracle,
                         ::testing::Range(0, 25));

// --------------------------------------------------------- generators

TEST(Generate, LayeredDagShape)
{
    util::Rng rng(5);
    Dag d = graph::layeredDag(rng, 4, 5, 0.4, {1, 3});
    EXPECT_EQ(d.nodeCount(), 20u);
    EXPECT_TRUE(d.isAcyclic());
    // Everything in layer 0 reaches something; everything in the last
    // layer is reachable.
    auto reach = graph::reachableFromAny(
        d, {0, 1, 2, 3, 4});
    for (NodeId n = 15; n < 20; ++n)
        EXPECT_TRUE(reach[n]) << "node " << n;
}

TEST(Generate, GridDagShape)
{
    util::Rng rng(6);
    Dag d = graph::gridDag(rng, 3, 4, {1, 2}, true);
    EXPECT_EQ(d.nodeCount(), 20u);
    // Edges: horizontal 4*(3+1)=16, vertical 3*(4+1)=15, diag 12.
    EXPECT_EQ(d.edgeCount(), 16u + 15u + 12u);
    EXPECT_TRUE(d.isAcyclic());
}

TEST(Generate, GridDagWithoutDiagonals)
{
    util::Rng rng(7);
    Dag d = graph::gridDag(rng, 2, 2, {1, 1}, false);
    EXPECT_EQ(d.edgeCount(), 2u * 3u + 2u * 3u);
}

TEST(Generate, RandomDagAcyclicAcrossSeeds)
{
    for (uint64_t seed = 0; seed < 10; ++seed) {
        util::Rng rng(seed);
        Dag d = graph::randomDag(rng, 30, 0.2, {1, 9});
        EXPECT_TRUE(d.isAcyclic()) << "seed " << seed;
        for (const auto &e : d.edges()) {
            EXPECT_GE(e.weight, 1);
            EXPECT_LE(e.weight, 9);
        }
    }
}

TEST(Generate, SuperEndpoints)
{
    util::Rng rng(8);
    Dag d = graph::randomDag(rng, 12, 0.2, {1, 4});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    EXPECT_EQ(d.sources(), (std::vector<NodeId>{source}));
    EXPECT_EQ(d.sinks(), (std::vector<NodeId>{sink}));
}

// ------------------------------------------------------- Fig. 3 graph

TEST(Fig3, ShortestPathIsTwoAsInPaper)
{
    Dag d = graph::makeFig3ExampleDag();
    auto s = graph::solveDag(d, {0, 1}, Objective::Shortest);
    // "it takes two cycles for the '1' signal to propagate to the
    // output node and ... this corresponds to the shortest path"
    EXPECT_EQ(s.distance[4], 2);
}

TEST(Fig3, LongestPath)
{
    Dag d = graph::makeFig3ExampleDag();
    auto l = graph::solveDag(d, {0, 1}, Objective::Longest);
    EXPECT_EQ(l.distance[4], 4); // A -> C -> D -> E = 2 + 1 + 1
}

} // namespace
