/**
 * @file
 * The serve layer's anti-drift contract, pinned by tests:
 *
 *  1. Every library rl::ErrorCode maps to exactly one wire Status
 *     and one WireError (statusForCode / wireErrorForCode are total
 *     and match the table in docs/errors.md).
 *  2. Decode-accepted implies library-valid: any request payload
 *     serve::decodeRequest() accepts -- including randomly mutated
 *     and truncated ones -- builds problems api::validateProblem()
 *     approves, so no engine fatal is reachable from wire bytes.
 *  3. The product-state budget surfaces end to end: a GraphAlign
 *     request over maxProductStates earns a typed ResourceExhausted
 *     reply, the rejection is counted, and the daemon keeps serving.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rl/api/api.h"
#include "rl/pangraph/gfa.h"
#include "rl/serve/client.h"
#include "rl/serve/server.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using namespace racelogic::serve;
using Status = racelogic::serve::Status; // not rl::Status (library errors)

bio::ScoreMatrix
fig2b()
{
    return bio::ScoreMatrix::dnaShortestPath();
}

std::shared_ptr<const pangraph::VariationGraph>
bubbleGraph()
{
    const std::string gfa = "H\tVN:Z:1.0\n"
                            "S\ts1\tACG\n"
                            "S\ts2\tT\n"
                            "S\ts3\tC\n"
                            "S\ts4\tGGA\n"
                            "L\ts1\t+\ts2\t+\t0M\n"
                            "L\ts1\t+\ts3\t+\t0M\n"
                            "L\ts2\t+\ts4\t+\t0M\n"
                            "L\ts3\t+\ts4\t+\t0M\n";
    std::istringstream in(gfa);
    return std::make_shared<pangraph::VariationGraph>(
        pangraph::readGfa(in, bio::Alphabet("ACGT")));
}

// ----------------------------------------------- the mapping, pinned

TEST(ServeAntiDrift, EveryErrorCodeMapsToExactlyOneWireStatus)
{
    using racelogic::ErrorCode;
    const std::vector<std::pair<ErrorCode, Status>> expected = {
        {ErrorCode::Ok, Status::Ok},
        {ErrorCode::InvalidArgument, Status::BadRequest},
        {ErrorCode::ParseError, Status::BadRequest},
        {ErrorCode::Unsupported, Status::BadRequest},
        {ErrorCode::NotFound, Status::BadRequest},
        {ErrorCode::Oversized, Status::Oversized},
        {ErrorCode::ResourceExhausted, Status::ResourceExhausted},
    };
    for (const auto &[code, status] : expected)
        EXPECT_EQ(statusForCode(code), status)
            << "code " << static_cast<int>(code);

    const std::vector<std::pair<ErrorCode, WireError>> decode = {
        {ErrorCode::Ok, WireError::None},
        {ErrorCode::InvalidArgument, WireError::BadRequest},
        {ErrorCode::ParseError, WireError::BadRequest},
        {ErrorCode::Unsupported, WireError::BadRequest},
        {ErrorCode::NotFound, WireError::BadRequest},
        {ErrorCode::Oversized, WireError::Oversized},
        {ErrorCode::ResourceExhausted, WireError::Oversized},
    };
    for (const auto &[code, wire] : decode)
        EXPECT_EQ(wireErrorForCode(code), wire)
            << "code " << static_cast<int>(code);
}

// -------------------------------- decode-accepted => library-valid

/** Mirror AlignServer::handleRequest's problem construction. */
std::vector<api::RaceProblem>
buildProblems(Request &request,
              const std::shared_ptr<const pangraph::VariationGraph> &g,
              const bio::ScoreMatrix &graphMatrix)
{
    std::vector<api::RaceProblem> problems;
    switch (request.tag) {
    case RequestTag::Pairwise:
        problems.push_back(api::RaceProblem::pairwiseAlignment(
            *request.matrix, *request.a, *request.b));
        break;
    case RequestTag::Affine:
        problems.push_back(api::RaceProblem::affineAlignment(
            *request.matrix,
            bio::AffineGapCosts{request.open, request.extend},
            *request.a, *request.b));
        break;
    case RequestTag::Screen:
        problems.push_back(api::RaceProblem::thresholdScreen(
            *request.matrix, request.threshold, *request.a,
            *request.b));
        break;
    case RequestTag::Dtw:
        problems.push_back(api::RaceProblem::dtw(
            std::move(request.x), std::move(request.y)));
        break;
    case RequestTag::GraphAlign:
        problems.push_back(api::RaceProblem::graphAlign(
            graphMatrix, *request.read, g, request.threshold));
        break;
    case RequestTag::MapReads:
        for (bio::Sequence &read : request.reads)
            problems.push_back(api::RaceProblem::graphAlign(
                graphMatrix, std::move(read), g, request.threshold));
        break;
    case RequestTag::Stats:
    case RequestTag::Ping:
    case RequestTag::Metrics:
    case RequestTag::Health:
        break;
    }
    return problems;
}

TEST(ServeAntiDrift, DecodeAcceptedImpliesValidateOk)
{
    auto graph = bubbleGraph();
    const bio::ScoreMatrix graphMatrix = fig2b();
    util::Rng rng(20260808);

    auto randomDna = [&](size_t maxLen) {
        static const char letters[] = "ACGT";
        std::string s;
        const size_t n =
            static_cast<size_t>(rng.uniformInt(0, maxLen));
        for (size_t i = 0; i < n; ++i)
            s.push_back(letters[rng.uniformInt(0, 3)]);
        return s;
    };

    size_t accepted = 0, rejected = 0;
    for (int round = 0; round < 400; ++round) {
        // A valid payload of a random kind ...
        std::vector<uint8_t> payload;
        switch (rng.uniformInt(0, 5)) {
        case 0:
            payload = encodePairwise(1, fig2b(), randomDna(24),
                                     randomDna(24));
            break;
        case 1:
            payload = encodeAffine(2, fig2b(), 3, 1,
                                   randomDna(23) + "A",
                                   randomDna(23) + "C");
            break;
        case 2:
            payload = encodeScreen(
                3, fig2b(),
                static_cast<bio::Score>(rng.uniformInt(0, 40)),
                randomDna(24), randomDna(24));
            break;
        case 3: {
            std::vector<apps::Sample> x, y;
            for (int i = 0, n = rng.uniformInt(1, 16); i < n; ++i)
                x.push_back(rng.uniformInt(0, 64));
            for (int i = 0, n = rng.uniformInt(1, 16); i < n; ++i)
                y.push_back(rng.uniformInt(0, 64));
            payload = encodeDtw(4, x, y);
            break;
        }
        case 4:
            payload = encodeGraphAlign(
                5, randomDna(16),
                static_cast<bio::Score>(rng.uniformInt(0, 20)));
            break;
        default:
            payload = encodeMapReads(
                6, ">r1\n" + randomDna(15) + "A\n>r2\nACGT\n",
                static_cast<bio::Score>(rng.uniformInt(0, 20)));
            break;
        }

        // ... then usually corrupted: flipped bytes or truncation.
        const int mutation = rng.uniformInt(0, 3);
        if (mutation == 1 && !payload.empty()) {
            for (int flips = rng.uniformInt(1, 8); flips > 0; --flips)
                payload[static_cast<size_t>(rng.uniformInt(
                    0, payload.size() - 1))] ^=
                    static_cast<uint8_t>(rng.uniformInt(1, 255));
        } else if (mutation == 2 && !payload.empty()) {
            payload.resize(static_cast<size_t>(
                rng.uniformInt(0, payload.size() - 1)));
        }

        Request request;
        const WireError error =
            decodeRequest(payload, graph->alphabet(), request);
        if (error != WireError::None) {
            ++rejected;
            continue;
        }
        ++accepted;
        std::vector<api::RaceProblem> problems =
            buildProblems(request, graph, graphMatrix);
        for (const api::RaceProblem &problem : problems) {
            racelogic::Status deep = api::validateProblem(problem);
            EXPECT_TRUE(deep.ok())
                << "decode accepted a payload validateProblem "
                   "rejects: "
                << deep.message();
        }
    }
    // The generator must exercise both verdicts or the property is
    // vacuous.
    EXPECT_GT(accepted, 50u);
    EXPECT_GT(rejected, 50u);
}

// -------------------------------- the budget, end to end on a socket

TEST(ServeAntiDrift, ProductStateBudgetRejectsTypedAndDaemonServesOn)
{
    ServerConfig cfg;
    cfg.tcpPort = 0;
    cfg.workers = 2;
    cfg.queueDepth = 8;
    cfg.graph = bubbleGraph();
    cfg.graphMatrix = fig2b();
    // Tiny compute budget: the bubble graph has 8 label characters
    // (9 positions), so any read of 2+ bp builds a product of
    // (m+1)*9+1 >= 28 states.
    cfg.engine.maxProductStates = 20;

    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());
    ASSERT_TRUE(client.ok());

    // Over budget: typed ResourceExhausted, with the budget in the
    // message, and the rejection counted.
    ASSERT_TRUE(client.submitGraphAlign(71, "ACGTTGGA", 8));
    Response response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::ResourceExhausted);
    EXPECT_NE(response.message.find("budget"), std::string::npos);

    // The daemon is unharmed: a modest pairwise solve still works...
    ASSERT_TRUE(client.submitPairwise(72, fig2b(), "ACGT", "AGGT"));
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::Ok);
    ASSERT_TRUE(response.solve.has_value());

    // ... and the ledger shows exactly one compute-budget rejection.
    // The completed count is retired by the dispatcher *after* the
    // solve's reply is flushed, so poll briefly instead of racing it.
    uint32_t statsId = 73;
    for (int attempt = 0;; ++attempt) {
        ASSERT_TRUE(client.submitStats(statsId++));
        ASSERT_TRUE(client.receive(response));
        ASSERT_TRUE(response.queueStats.has_value());
        if (response.queueStats->completed >= 1 || attempt >= 200)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(response.queueStats->rejectedResource, 1u);
    EXPECT_EQ(response.queueStats->completed, 1u);

    server.stop();
}

// A solve under the budget still runs: the ceiling is a ceiling,
// not a switch that disables graph alignment.
TEST(ServeAntiDrift, UnderBudgetGraphAlignStillSolves)
{
    ServerConfig cfg;
    cfg.tcpPort = 0;
    cfg.workers = 1;
    cfg.graph = bubbleGraph();
    cfg.graphMatrix = fig2b();
    cfg.engine.maxProductStates = 1000;

    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());
    ASSERT_TRUE(client.ok());

    // Race-ready weights price even matches at >= 1, so an exact
    // 7 bp walk costs 7; 20 accepts it comfortably.
    ASSERT_TRUE(client.submitGraphAlign(81, "ACGTGGA", 20));
    Response response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::Ok);
    ASSERT_TRUE(response.solve.has_value());
    EXPECT_TRUE(response.solve->accepted);

    server.stop();
}

} // namespace
